// Google-benchmark microbenchmarks of the compiler itself: SMG
// construction, dimension analysis, slicing, search-space enumeration and
// full compilation. These back the paper's claim that the SMG abstraction's
// analysis and transformation passes are lightweight (Sec. 6.5).
#include <benchmark/benchmark.h>

#include "src/core/spacefusion.h"
#include "src/schedule/lowering.h"
#include "src/schedule/pipeline.h"
#include "src/schedule/resource_aware.h"
#include "src/sim/memory_sim.h"
#include "src/slicing/slicers.h"
#include "src/support/logging.h"
#include "src/tuning/tuner.h"

namespace spacefusion {
namespace {

void BM_BuildSmgMha(benchmark::State& state) {
  Graph g = BuildMha(32 * 12, state.range(0), state.range(0), 64);
  for (auto _ : state) {
    auto built = BuildSmg(g);
    benchmark::DoNotOptimize(built);
  }
}
BENCHMARK(BM_BuildSmgMha)->Arg(256)->Arg(1024)->Arg(8192);

void BM_DimAnalysis(benchmark::State& state) {
  Graph g = BuildMha(32 * 12, 1024, 1024, 64);
  auto built = BuildSmg(g);
  for (auto _ : state) {
    auto dims = AnalyzeAllDims(built->smg);
    benchmark::DoNotOptimize(dims);
  }
}
BENCHMARK(BM_DimAnalysis);

void BM_TemporalSlicerMha(benchmark::State& state) {
  Graph g = BuildMha(32 * 12, 1024, 1024, 64);
  auto built = BuildSmg(g);
  std::vector<DimId> spatial = SpatialSlicer::GetDims(built->smg);
  for (auto _ : state) {
    auto choice = TemporalSlicer::GetPriorDim(g, *built, spatial);
    benchmark::DoNotOptimize(choice);
  }
}
BENCHMARK(BM_TemporalSlicerMha);

void BM_SlicingPipelineMha(benchmark::State& state) {
  Graph g = BuildMha(32 * 12, 1024, 1024, 64);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  for (auto _ : state) {
    auto pipeline = RunSlicingPipeline(g, rc, SlicingOptions());
    benchmark::DoNotOptimize(pipeline);
  }
}
BENCHMARK(BM_SlicingPipelineMha);

void BM_CompileSubgraph(benchmark::State& state) {
  std::vector<Graph> graphs;
  graphs.push_back(BuildMha(32 * 12, 1024, 1024, 64));
  graphs.push_back(BuildMlp(8, 4096, 256, 256));
  graphs.push_back(BuildLayerNormGraph(8192, 8192));
  const Graph& g = graphs[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    Compiler compiler{CompileOptions(AmpereA100())};  // fresh: no cache hits
    auto compiled = compiler.Compile(g);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileSubgraph)->Arg(0)->Arg(1)->Arg(2);

// The tuning hot loop with staged-fidelity screening off (Arg 0) and at the
// default top-K (Arg 1): the gap between the two is the win the Table 4/5
// compile-time numbers ride on.
void BM_TuneKernelMha(benchmark::State& state) {
  Graph g = BuildMha(32 * 12, 1024, 1024, 64);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  CostModel cost(AmpereA100());
  auto sliced = ResourceAwareSlicing(g, rc);
  SF_CHECK(sliced.ok());
  TunerOptions options;
  options.screen_top_k = state.range(0) == 0 ? 0 : -1;
  for (auto _ : state) {
    SlicingResult work = *sliced;
    TuningStats stats = TuneKernel(&work, cost, rc, options);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_TuneKernelMha)->Arg(0)->Arg(1);

// Trace-driven memory simulation of one lowered MHA kernel with the
// reuse-distance streaming shortcut off (Arg 0) and on (Arg 1).
void BM_MemorySimKernel(benchmark::State& state) {
  Graph g = BuildMha(32 * 12, 1024, 1024, 64);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  auto sliced = ResourceAwareSlicing(g, rc);
  SF_CHECK(sliced.ok());
  AddressMap am;
  KernelSpec spec = LowerSchedule(sliced->schedule, &am);
  for (auto _ : state) {
    MemorySim sim(AmpereA100());
    sim.set_streaming_shortcut(state.range(0) != 0);
    ExecutionReport rep = sim.Run({spec});
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_MemorySimKernel)->Arg(0)->Arg(1);

void BM_CompileBertModel(benchmark::State& state) {
  ModelGraph model = BuildModel(GetModelConfig(ModelKind::kBert, 32, 512));
  for (auto _ : state) {
    Compiler compiler{CompileOptions(AmpereA100())};
    auto compiled = compiler.CompileModel(model);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileBertModel);

}  // namespace
}  // namespace spacefusion

int main(int argc, char** argv) {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
