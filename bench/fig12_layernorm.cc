// Reproduces paper Fig. 12: fused LayerNorm performance. Speedups over the
// unfused PyTorch baseline for PyTorch Op, NVIDIA Apex, LN Triton, and
// SpaceFusion across input sizes (M = N) and architectures.
//
// Paper reference: SpaceFusion avg 7.25x over PyTorch; up to 1.59x over
// PyTorch Op, 2.46x over Apex, 4.03x over LN Triton. Volta sweeps to 16K,
// Ampere/Hopper to 32K.
#include "bench/bench_util.h"

namespace spacefusion {
namespace {

void Run() {
  PrintHeader("Figure 12: Fused LayerNorm — speedup over unfused PyTorch");
  auto pytorch = MakePyTorchBaseline();
  std::vector<std::unique_ptr<Baseline>> fused;
  fused.push_back(MakeTorchOpLayerNorm());
  fused.push_back(MakeApexLayerNorm());
  fused.push_back(MakeTritonLayerNorm());

  double sf_sum = 0.0;
  int sf_count = 0;

  for (const GpuArch& arch : AllArchitectures()) {
    std::vector<std::int64_t> sizes = {1024, 2048, 4096, 8192, 16384};
    if (arch.name != "Volta") {
      sizes.push_back(32768);
    }
    std::printf("\n[%s]\n", arch.name.c_str());
    std::vector<std::string> cols;
    for (std::int64_t s : sizes) {
      cols.push_back(s >= 1024 ? std::to_string(s / 1024) + "K" : std::to_string(s));
    }
    PrintSeriesHeader("impl \\ M=N", cols);

    std::vector<std::vector<double>> rows(fused.size() + 1);
    for (std::int64_t size : sizes) {
      Graph g = BuildLayerNormGraph(size, size);
      double base = BaselineTimeUs(g, *pytorch, arch);
      for (size_t i = 0; i < fused.size(); ++i) {
        rows[i].push_back(Speedup(base, BaselineTimeUs(g, *fused[i], arch)));
      }
      double sf = Speedup(base, SpaceFusionTimeUs(g, arch));
      rows.back().push_back(sf);
      if (sf > 0) {
        sf_sum += sf;
        ++sf_count;
      }
    }
    for (size_t i = 0; i < fused.size(); ++i) {
      PrintRow(fused[i]->name(), rows[i]);
    }
    PrintRow("SpaceFusion", rows.back());
  }
  std::printf("\nSpaceFusion avg speedup over PyTorch: %.2fx (paper: 7.25x)\n",
              sf_count ? sf_sum / sf_count : 0.0);
}

}  // namespace
}  // namespace spacefusion

int main() {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  spacefusion::Run();
  spacefusion::EmitBenchMetrics("fig12_layernorm");
  return 0;
}
