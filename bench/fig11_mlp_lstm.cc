// Reproduces paper Fig. 11: fused MLP (vs cuBLASLt) and fused LSTM cell
// (vs cuBLAS) subgraph performance across the three architectures.
//
// Paper reference: MLP max 3.15x / avg 2.35x over cuBLASLt (2..20 fused
// layers, N=K<=256); LSTM max 2.87x / avg 2.29x over cuBLAS (hidden
// 128..1024).
#include "bench/bench_util.h"

namespace spacefusion {
namespace {

void RunMlp() {
  PrintHeader("Figure 11(a): Fused MLP layers — speedup of SpaceFusion over cuBLASLt");
  auto cublaslt = MakeCublasLtBaseline();
  const std::int64_t nk = 256;  // fusion opportunity exists for N=K <= 256

  for (const GpuArch& arch : AllArchitectures()) {
    std::printf("\n[%s]  (N=K=%lld; series = computational scale M)\n", arch.name.c_str(),
                static_cast<long long>(nk));
    std::vector<std::string> cols;
    std::vector<int> layer_counts = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
    for (int layers : layer_counts) {
      cols.push_back(std::to_string(layers));
    }
    PrintSeriesHeader("M \\ layers", cols);

    double sum = 0.0, max = 0.0;
    int count = 0;
    for (std::int64_t m : {512, 2048, 8192}) {
      std::vector<double> speedups;
      for (int layers : layer_counts) {
        Graph g = BuildMlp(layers, m, nk, nk);
        double s = Speedup(BaselineTimeUs(g, *cublaslt, arch), SpaceFusionTimeUs(g, arch));
        speedups.push_back(s);
        if (s > 0) {
          sum += s;
          max = std::max(max, s);
          ++count;
        }
      }
      PrintRow(std::to_string(m), speedups);
    }
    std::printf("  %s summary: max %.2fx, avg %.2fx (paper: max 3.15x, avg 2.35x)\n",
                arch.name.c_str(), max, count ? sum / count : 0.0);
  }
}

void RunLstm() {
  PrintHeader("Figure 11(b): Fused LSTM cell — speedup of SpaceFusion over cuBLAS");
  auto cublas = MakeCublasBaseline();
  const std::int64_t batch = 256;

  std::vector<std::string> cols = {"128", "256", "512", "1k"};
  std::printf("\n(batch=%lld; columns = hidden state features)\n",
              static_cast<long long>(batch));
  PrintSeriesHeader("arch \\ hidden", cols);
  for (const GpuArch& arch : AllArchitectures()) {
    std::vector<double> speedups;
    double sum = 0.0, max = 0.0;
    for (std::int64_t hidden : {128, 256, 512, 1024}) {
      Graph g = BuildLstmCell(batch, hidden, hidden);
      double s = Speedup(BaselineTimeUs(g, *cublas, arch), SpaceFusionTimeUs(g, arch));
      speedups.push_back(s);
      sum += s;
      max = std::max(max, s);
    }
    PrintRow(arch.name, speedups);
    std::printf("  %s summary: max %.2fx, avg %.2fx (paper: max 2.87x, avg 2.29x)\n",
                arch.name.c_str(), max, sum / 4.0);
  }
}

}  // namespace
}  // namespace spacefusion

int main() {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  spacefusion::RunMlp();
  spacefusion::RunLstm();
  spacefusion::EmitBenchMetrics("fig11_mlp_lstm");
  return 0;
}
