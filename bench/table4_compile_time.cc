// Reproduces paper Table 4: compilation-time breakdown for MHA.
//
// The scheduling phases (TS.getPriorDim+TS.slice, enumCfg,
// SS.getDims+SS.slice) are measured as real wall-clock time of this
// implementation; the auto-tuning column is the emulated time the
// measurement runs (20 warm-up + 100 timed executions per configuration,
// with the alpha=0.25 early-quit) would take on the GPU, computed from the
// simulator — mirroring how the paper's tuner spends its time.
//
// Paper reference (A100): MHA(32,1024): scheduling ~20ms total, tuning
// 33.04s, total 36.33s; MHA(32,256): tuning 29.55s, total 33.41s.
#include "bench/bench_util.h"
#include "src/schedule/search_space.h"
#include "src/support/string_util.h"
#include "src/support/thread_pool.h"
#include "src/slicing/slicers.h"
#include "src/tuning/tuner.h"

namespace spacefusion {
namespace {

void Run() {
  PrintHeader("Table 4: Compilation time breakdown for MHA (Ampere)");
  GpuArch arch = AmpereA100();
  ResourceConfig rc = ResourceConfig::FromArch(arch);

  std::printf("%-16s %22s %12s %22s %12s %12s\n", "Workload", "TS.getPriorDim+slice", "enumCfg",
              "SS.getDims+SS.slice", "Tuning", "Total");

  for (std::int64_t seq : {1024, 256}) {
    Graph g = BuildMha(32 * 12, seq, seq, 64);

    // SS phase.
    WallTimer timer;
    StatusOr<SmgBuildResult> built = BuildSmg(g);
    std::vector<DimId> spatial = SpatialSlicer::GetDims(built->smg);
    double ss_ms = timer.ElapsedMs();

    // TS phase.
    timer.Reset();
    StatusOr<TemporalChoice> choice = TemporalSlicer::GetPriorDim(g, *built, spatial);
    double ts_ms = timer.ElapsedMs();

    // Config enumeration.
    timer.Reset();
    SmgSchedule sched;
    sched.graph = g;
    sched.built = std::move(built).value();
    for (DimId d : spatial) {
      sched.spatial.push_back({d, 1});
    }
    if (choice.ok()) {
      sched.has_temporal = true;
      sched.temporal = {choice->dim, sched.built.smg.dim(choice->dim).extent};
      sched.plan = choice->plan;
    }
    SlicingResult result;
    result.configs =
        EnumerateConfigs(&sched, rc, /*include_temporal=*/true, SearchOptions(),
                         &result.footprints);
    double enum_ms = timer.ElapsedMs();

    // Tuning: emulated on-GPU measurement time (staged: the analytical
    // screen admits top-K configs to the modeled measurement runs).
    result.schedule = sched;
    CostModel cost(arch);
    TuningStats stats = TuneKernel(&result, cost, rc);

    // Host-side tuning wall-clock: the config sweep is the compiler's
    // dominant parallel loop (SPACEFUSION_JOBS), so it is timed over
    // repeated sweeps for a stable per-sweep figure. The sweep is
    // deterministic, so every iteration retunes to the same schedule.
    constexpr int kSweeps = 400;
    WallTimer tune_timer;
    for (int i = 0; i < kSweeps; ++i) {
      TuneKernel(&result, cost, rc);
    }
    double tune_wall_ms = tune_timer.ElapsedMs() / kSweeps;

    double total_s = stats.simulated_tuning_seconds + (ss_ms + ts_ms + enum_ms) * 1e-3;
    char label[32];
    std::snprintf(label, sizeof(label), "MHA(32,%lld)", static_cast<long long>(seq));
    RecordBenchValue(StrCat(label, ".scheduling_ms"), ss_ms + ts_ms + enum_ms);
    RecordBenchValue(StrCat(label, ".tuning_s"), stats.simulated_tuning_seconds);
    RecordBenchValue(StrCat(label, ".total_s"), total_s);
    RecordBenchValue(StrCat(label, ".configs_screened"), stats.configs_screened);
    RecordBenchValue(StrCat(label, ".configs_tried"), stats.configs_tried);
    RecordBenchValue(StrCat(label, ".tune_wall_ms"), tune_wall_ms);
    std::printf("%-16s %19.2f ms %9.2f ms %19.2f ms %10.2f s %10.2f s\n", label, ts_ms, enum_ms,
                ss_ms, stats.simulated_tuning_seconds, total_s);
    std::printf("  (%d configs screened, %d measured, %d early-quit; host sweep %.3f ms at"
                " %d jobs)\n",
                stats.configs_screened, stats.configs_tried, stats.configs_early_quit,
                tune_wall_ms, GlobalThreadPool().concurrency());
  }
  RecordBenchValue("jobs", GlobalThreadPool().concurrency());
  std::printf("\nPaper reference: MHA(32,1024) tuning 33.04s / total 36.33s;"
              " MHA(32,256) tuning 29.55s / total 33.41s.\n");
}

}  // namespace
}  // namespace spacefusion

int main() {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  spacefusion::Run();
  spacefusion::EmitBenchMetrics("table4_compile_time");
  return 0;
}
