// Reproduces paper Fig. 13: fused Multi-Head Attention performance.
// Speedups over the unfused PyTorch baseline for FlashAttention (CUDA v1),
// Triton FlashAttention, FlashAttention 2, and SpaceFusion, across sequence
// lengths, batch sizes 1 and 32, and the three architectures. FlashAttention
// CUDA kernels have no Volta support (absent entries, as in the paper).
//
// Paper reference: SpaceFusion max 10.35x / avg 5.40x over PyTorch, and
// comparable to FlashAttention 2.
#include "bench/bench_util.h"

namespace spacefusion {
namespace {

void Run() {
  PrintHeader("Figure 13: Fused MHA — speedup over unfused PyTorch");
  auto pytorch = MakePyTorchBaseline();
  std::vector<std::unique_ptr<Baseline>> fused;
  fused.push_back(MakeFlashAttention1());
  fused.push_back(MakeTritonFlashAttention());
  fused.push_back(MakeFlashAttention2());

  const std::int64_t heads = 12;
  const std::int64_t head_dim = 64;

  double sf_sum = 0.0, sf_max = 0.0;
  int sf_count = 0;

  for (std::int64_t batch : {1, 32}) {
    for (const GpuArch& arch : AllArchitectures()) {
      std::vector<std::int64_t> seqs = {64, 128, 256, 512, 1024};
      if (arch.name != "Volta") {
        seqs.push_back(2048);
        seqs.push_back(8192);
      }
      std::printf("\n[batch=%lld, %s]  (heads=12, head_dim=64)\n",
                  static_cast<long long>(batch), arch.name.c_str());
      std::vector<std::string> cols;
      for (std::int64_t s : seqs) {
        cols.push_back(s >= 1024 ? std::to_string(s / 1024) + "k" : std::to_string(s));
      }
      PrintSeriesHeader("impl \\ seq", cols);

      std::vector<std::vector<double>> rows(fused.size() + 1);
      for (std::int64_t seq : seqs) {
        Graph g = BuildMha(batch * heads, seq, seq, head_dim);
        double base = BaselineTimeUs(g, *pytorch, arch);
        for (size_t i = 0; i < fused.size(); ++i) {
          rows[i].push_back(Speedup(base, BaselineTimeUs(g, *fused[i], arch)));
        }
        double sf = Speedup(base, SpaceFusionTimeUs(g, arch));
        rows.back().push_back(sf);
        if (sf > 0) {
          sf_sum += sf;
          sf_max = std::max(sf_max, sf);
          ++sf_count;
        }
      }
      for (size_t i = 0; i < fused.size(); ++i) {
        PrintRow(fused[i]->name(), rows[i]);
      }
      PrintRow("SpaceFusion", rows.back());
    }
  }
  std::printf("\nSpaceFusion vs PyTorch: max %.2fx, avg %.2fx (paper: max 10.35x, avg 5.40x)\n",
              sf_max, sf_count ? sf_sum / sf_count : 0.0);
}

}  // namespace
}  // namespace spacefusion

int main() {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  spacefusion::Run();
  spacefusion::EmitBenchMetrics("fig13_mha");
  return 0;
}
