// Reproduces paper Fig. 14: end-to-end Transformer inference. Speedups over
// the HuggingFace-PyTorch baseline for SpaceFusion, TensorRT, Kernl,
// BladeDISC (AStitch) and NNFusion (Welder), across five models, batch sizes
// 1 and 32, and the three architectures. Missing entries mirror the paper's
// support gaps (NNFusion: Volta only; BladeDISC: no Hopper).
//
// Paper reference: SpaceFusion max 8.79x / avg 3.54x over PyTorch; avg 1.27x
// over TensorRT, 1.34x over Kernl, 2.27x over BladeDISC, 1.21x over
// NNFusion (Volta).
#include "bench/bench_util.h"

namespace spacefusion {
namespace {

double SpaceFusionModelTimeUs(const ModelGraph& model, const GpuArch& arch) {
  StatusOr<CompiledModel> compiled = CompileModelWithSpaceFusion(model, CompileOptions(arch));
  return compiled.ok() ? compiled->total.time_us : -1.0;
}

double BaselineModelTimeUs(const ModelGraph& model, const Baseline& baseline,
                           const GpuArch& arch) {
  std::optional<ExecutionReport> report = EstimateModelWithBaseline(model, baseline, arch);
  return report ? report->time_us : -1.0;
}

void Run() {
  PrintHeader("Figure 14: End-to-end model inference — speedup over PyTorch (HuggingFace)");
  auto pytorch = MakePyTorchBaseline();
  std::vector<std::unique_ptr<Baseline>> engines;
  engines.push_back(MakeTensorRtBaseline());
  engines.push_back(MakeKernlBaseline());
  engines.push_back(MakeAStitchBaseline());  // BladeDISC
  engines.push_back(MakeWelderBaseline());   // NNFusion

  struct Agg {
    double sum = 0, max = 0;
    int n = 0;
    void Add(double v) {
      if (v > 0) {
        sum += v;
        max = std::max(max, v);
        ++n;
      }
    }
    double avg() const { return n ? sum / n : 0; }
  };
  Agg sf_vs_pt;
  std::vector<Agg> sf_vs_engine(engines.size());

  for (std::int64_t batch : {1, 32}) {
    for (const GpuArch& arch : AllArchitectures()) {
      std::printf("\n[batch=%lld, %s]  (seq 512 / ViT 224px)\n",
                  static_cast<long long>(batch), arch.name.c_str());
      std::vector<std::string> cols = {"SpaceFusion", "TensorRT", "Kernl", "BladeDISC",
                                       "NNFusion"};
      PrintSeriesHeader("model \\ engine", cols);

      for (ModelKind kind : AllModelKinds()) {
        std::int64_t seq = kind == ModelKind::kViT ? 224 : 512;
        ModelGraph model = BuildModel(GetModelConfig(kind, batch, seq));
        double base = BaselineModelTimeUs(model, *pytorch, arch);
        double sf = SpaceFusionModelTimeUs(model, arch);

        std::vector<double> row;
        row.push_back(Speedup(base, sf));
        sf_vs_pt.Add(Speedup(base, sf));
        for (size_t i = 0; i < engines.size(); ++i) {
          double t = BaselineModelTimeUs(model, *engines[i], arch);
          row.push_back(Speedup(base, t));
          sf_vs_engine[i].Add(Speedup(t, sf));
        }
        PrintRow(ModelKindName(kind), row);
      }
    }
  }

  std::printf("\nSpaceFusion vs PyTorch : max %.2fx, avg %.2fx (paper: max 8.79x, avg 3.54x)\n",
              sf_vs_pt.max, sf_vs_pt.avg());
  const char* names[] = {"TensorRT", "Kernl", "BladeDISC", "NNFusion"};
  const double paper[] = {1.27, 1.34, 2.27, 1.21};
  for (size_t i = 0; i < sf_vs_engine.size(); ++i) {
    std::printf("SpaceFusion vs %-9s: avg %.2fx (paper: %.2fx)\n", names[i],
                sf_vs_engine[i].avg(), paper[i]);
  }
}

}  // namespace
}  // namespace spacefusion

int main() {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  spacefusion::Run();
  spacefusion::EmitBenchMetrics("fig14_end_to_end");
  return 0;
}
