// Reproduces paper Fig. 16: (a) ablation study over the slicing and
// auto-scheduling components, (b) sensitivity to input sizes, (c)
// sensitivity to architectures.
//
// Paper reference: Base(SS) >= 51% of full SpaceFusion, Base+AS up to 79%,
// Base+TS 72-89%; Volta:Ampere:Hopper perf ratio ~1:2.26:4.34 at batch 32
// (peak-ratio 1:2.79:6.75, diluted by CPU-side overhead).
#include <algorithm>

#include "bench/bench_util.h"

namespace spacefusion {
namespace {

double ModelTimeUs(const ModelGraph& model, const CompileOptions& options) {
  StatusOr<CompiledModel> compiled = CompileModelWithSpaceFusion(model, options);
  return compiled.ok() ? compiled->total.time_us : -1.0;
}

CompileOptions Variant(const GpuArch& arch, bool temporal, bool autosched) {
  CompileOptions options{arch};
  options.enable_temporal_slicing = temporal;
  options.enable_auto_scheduling = autosched;
  return options;
}

void RunAblation() {
  PrintHeader("Figure 16(a): Ablation — performance normalized to full SpaceFusion");
  GpuArch arch = AmpereA100();
  for (std::int64_t batch : {1, 32}) {
    std::printf("\n[batch=%lld, %s]\n", static_cast<long long>(batch), arch.name.c_str());
    PrintSeriesHeader("model", {"Base(SS)", "Base+AS", "Base+TS", "SpaceFusion"});
    for (ModelKind kind : AllModelKinds()) {
      std::int64_t seq = kind == ModelKind::kViT ? 224 : 512;
      ModelGraph model = BuildModel(GetModelConfig(kind, batch, seq));
      double base_ss = ModelTimeUs(model, Variant(arch, false, false));
      double base_as = ModelTimeUs(model, Variant(arch, false, true));
      double base_ts = ModelTimeUs(model, Variant(arch, true, false));
      double full = ModelTimeUs(model, Variant(arch, true, true));
      PrintRow(ModelKindName(kind),
               {full / base_ss, full / base_as, full / base_ts, 1.0});
    }
  }
}

void RunInputSensitivity() {
  PrintHeader(
      "Figure 16(b): Sensitivity to input sizes — normalized to each model's best\n"
      "(small/medium/large = prompt 128/512/1024; ViT 224/448/768 px)");
  GpuArch arch = AmpereA100();
  for (std::int64_t batch : {1, 32}) {
    std::printf("\n[batch=%lld]\n", static_cast<long long>(batch));
    PrintSeriesHeader("model", {"Small", "Medium", "Large"});
    auto pytorch = MakePyTorchBaseline();
    for (ModelKind kind : AllModelKinds()) {
      std::vector<std::int64_t> seqs = kind == ModelKind::kViT
                                           ? std::vector<std::int64_t>{224, 448, 768}
                                           : std::vector<std::int64_t>{128, 512, 1024};
      std::vector<double> gains;
      for (std::int64_t seq : seqs) {
        ModelGraph model = BuildModel(GetModelConfig(kind, batch, seq));
        double sf = ModelTimeUs(model, CompileOptions(arch));
        auto base = EstimateModelWithBaseline(model, *pytorch, arch);
        gains.push_back(base && sf > 0 ? base->time_us / sf : -1.0);
      }
      double best = *std::max_element(gains.begin(), gains.end());
      std::vector<double> normalized;
      for (double gain : gains) {
        normalized.push_back(gain > 0 && best > 0 ? gain / best : -1.0);
      }
      PrintRow(ModelKindName(kind), normalized);
    }
  }
}

void RunArchSensitivity() {
  PrintHeader(
      "Figure 16(c): Sensitivity to architectures — SpaceFusion performance (1/time)\n"
      "and speedup over PyTorch, normalized to Volta");
  auto pytorch = MakePyTorchBaseline();
  for (std::int64_t batch : {1, 32}) {
    std::printf("\n[batch=%lld]\n", static_cast<long long>(batch));
    PrintSeriesHeader("model", {"PerfV", "PerfA", "PerfH", "SuV", "SuA", "SuH"});
    double perf_sum[3] = {0, 0, 0};
    int n = 0;
    for (ModelKind kind : AllModelKinds()) {
      std::int64_t seq = kind == ModelKind::kViT ? 224 : 512;
      ModelGraph model = BuildModel(GetModelConfig(kind, batch, seq));
      std::vector<double> perf, speedup;
      for (const GpuArch& arch : AllArchitectures()) {
        double sf = ModelTimeUs(model, CompileOptions(arch));
        perf.push_back(sf > 0 ? 1.0 / sf : -1.0);
        auto base = EstimateModelWithBaseline(model, *pytorch, arch);
        speedup.push_back(base && sf > 0 ? base->time_us / sf : -1.0);
      }
      std::vector<double> row;
      for (double p : perf) {
        row.push_back(p / perf[0]);
      }
      for (double s : speedup) {
        row.push_back(s / speedup[0]);
      }
      for (int i = 0; i < 3; ++i) {
        perf_sum[i] += perf[i] / perf[0];
      }
      ++n;
      PrintRow(ModelKindName(kind), row);
    }
    std::printf("  avg perf ratio Volta:Ampere:Hopper = 1 : %.2f : %.2f"
                " (paper batch-32: 1 : 2.26 : 4.34; FP16 peak ratio 1 : 2.79 : 6.75)\n",
                perf_sum[1] / n, perf_sum[2] / n);
  }
}

}  // namespace
}  // namespace spacefusion

int main() {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  spacefusion::RunAblation();
  spacefusion::RunInputSensitivity();
  spacefusion::RunArchSensitivity();
  spacefusion::EmitBenchMetrics("fig16_ablation");
  return 0;
}
