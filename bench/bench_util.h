// Shared helpers for the evaluation harness: every bench binary regenerates
// one table or figure of the paper (see DESIGN.md's per-experiment index)
// and prints the same rows/series the paper reports.
//
// Besides the human-readable tables, each bench can emit a machine-readable
// metrics JSON: RecordBenchValue() collects the headline numbers the bench
// prints, and EmitBenchMetrics() writes them together with a snapshot of
// the process-wide metrics registry to
// $SPACEFUSION_METRICS_DIR/<bench>.metrics.json (a no-op when the variable
// is unset, so default runs stay side-effect free).
#ifndef SPACEFUSION_BENCH_BENCH_UTIL_H_
#define SPACEFUSION_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/spacefusion.h"
#include "src/support/logging.h"

namespace spacefusion {

// Wall-clock stopwatch for bench phases.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedSeconds() const { return ElapsedMs() * 1e-3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Headline values this bench binary has produced (label -> number).
inline std::map<std::string, double>& BenchValues() {
  static std::map<std::string, double> values;
  return values;
}

inline void RecordBenchValue(const std::string& key, double value) {
  BenchValues()[key] = value;
}

// Writes <SPACEFUSION_METRICS_DIR>/<bench_name>.metrics.json with the
// recorded headline values and the global metrics snapshot. Returns true if
// a file was written.
inline bool EmitBenchMetrics(const std::string& bench_name) {
  const char* dir = std::getenv("SPACEFUSION_METRICS_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return false;
  }
  std::string json = "{\"bench\":\"" + bench_name + "\",\"values\":{";
  bool first = true;
  for (const auto& [key, value] : BenchValues()) {
    if (!first) {
      json += ",";
    }
    first = false;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    json += "\"" + key + "\":" + buf;
  }
  json += "},\"metrics\":" + MetricsRegistry::Global().Snapshot().ToJson() + "}\n";

  std::string path = std::string(dir) + "/" + bench_name + ".metrics.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    SF_LOG(Warning) << "cannot write bench metrics to " << path;
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\n[metrics written to %s]\n", path.c_str());
  return true;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintSeriesHeader(const std::string& row_label,
                              const std::vector<std::string>& columns) {
  std::printf("%-28s", row_label.c_str());
  for (const std::string& c : columns) {
    std::printf(" %12s", c.c_str());
  }
  std::printf("\n");
}

inline void PrintRow(const std::string& label, const std::vector<double>& values,
                     const char* format = "%12.2f") {
  std::printf("%-28s", label.c_str());
  for (double v : values) {
    if (v <= 0) {
      std::printf(" %12s", "-");
    } else {
      std::printf(" ");
      std::printf(format, v);
    }
  }
  std::printf("\n");
}

// Simulated time of one subgraph under SpaceFusion (µs), or -1 on failure.
inline double SpaceFusionTimeUs(const Graph& graph, const GpuArch& arch) {
  StatusOr<ExecutionReport> report = EstimateGraphWithSpaceFusion(graph, arch);
  return report.ok() ? report->time_us : -1.0;
}

// Simulated time of one subgraph under a baseline (µs), or -1 if the
// baseline does not support it on this architecture.
inline double BaselineTimeUs(const Graph& graph, const Baseline& baseline, const GpuArch& arch) {
  std::optional<ExecutionReport> report = EstimateGraphWithBaseline(graph, baseline, arch);
  return report ? report->time_us : -1.0;
}

inline double Speedup(double baseline_us, double ours_us) {
  if (baseline_us <= 0 || ours_us <= 0) {
    return -1.0;
  }
  return baseline_us / ours_us;
}

}  // namespace spacefusion

#endif  // SPACEFUSION_BENCH_BENCH_UTIL_H_
