// Shared helpers for the evaluation harness: every bench binary regenerates
// one table or figure of the paper (see DESIGN.md's per-experiment index)
// and prints the same rows/series the paper reports.
#ifndef SPACEFUSION_BENCH_BENCH_UTIL_H_
#define SPACEFUSION_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/core/spacefusion.h"
#include "src/support/logging.h"

namespace spacefusion {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintSeriesHeader(const std::string& row_label,
                              const std::vector<std::string>& columns) {
  std::printf("%-28s", row_label.c_str());
  for (const std::string& c : columns) {
    std::printf(" %12s", c.c_str());
  }
  std::printf("\n");
}

inline void PrintRow(const std::string& label, const std::vector<double>& values,
                     const char* format = "%12.2f") {
  std::printf("%-28s", label.c_str());
  for (double v : values) {
    if (v <= 0) {
      std::printf(" %12s", "-");
    } else {
      std::printf(" ");
      std::printf(format, v);
    }
  }
  std::printf("\n");
}

// Simulated time of one subgraph under SpaceFusion (µs), or -1 on failure.
inline double SpaceFusionTimeUs(const Graph& graph, const GpuArch& arch) {
  StatusOr<ExecutionReport> report = EstimateGraphWithSpaceFusion(graph, arch);
  return report.ok() ? report->time_us : -1.0;
}

// Simulated time of one subgraph under a baseline (µs), or -1 if the
// baseline does not support it on this architecture.
inline double BaselineTimeUs(const Graph& graph, const Baseline& baseline, const GpuArch& arch) {
  std::optional<ExecutionReport> report = EstimateGraphWithBaseline(graph, baseline, arch);
  return report ? report->time_us : -1.0;
}

inline double Speedup(double baseline_us, double ours_us) {
  if (baseline_us <= 0 || ours_us <= 0) {
    return -1.0;
  }
  return baseline_us / ours_us;
}

}  // namespace spacefusion

#endif  // SPACEFUSION_BENCH_BENCH_UTIL_H_
