// Reproduces paper Table 6: fusion patterns analysis. Counts the distinct
// fused subgraphs containing at least two All-to-One mappings discovered by
// SpaceFusion, NNFusion (Welder policy: tile-graph fusion, no dependency
// transformation) and BladeDISC (AStitch policy: memory-intensive stitching)
// across 14 compiled evaluation instances from 9 model/structure types,
// de-duplicated by operator topology and split into compute-intensive-only
// (CI), memory-intensive-only (MI), and mixed CI+MI patterns.
//
// Paper reference: SpaceFusion 50 / NNFusion 30 / BladeDISC 14 patterns;
// CI-only 5/3/0, MI-only 15/14/14, CI+MI 30/13/0.
#include <set>

#include "bench/bench_util.h"
#include "src/graph/builder.h"
#include "src/schedule/pipeline.h"

namespace spacefusion {
namespace {

struct PatternCounter {
  std::set<std::uint64_t> seen;
  FusionPatternStats stats;

  void Count(const Graph& kernel_graph) {
    int a2o = 0;
    bool ci = false, mi = false;
    for (const Op& op : kernel_graph.ops()) {
      if (op.kind == OpKind::kMatMul || op.kind == OpKind::kReduce) {
        ++a2o;
      }
      (op.compute_intensive() ? ci : mi) = true;
    }
    if (a2o < 2 || !seen.insert(kernel_graph.TopologyHash()).second) {
      return;
    }
    ++stats.total;
    if (ci && mi) {
      ++stats.ci_and_mi;
    } else if (ci) {
      ++stats.ci_only;
    } else {
      ++stats.mi_only;
    }
  }

  // Counts a contiguous op range as one fused kernel (AStitch MI runs).
  void CountRange(const Graph& graph, int begin, int end) {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    int a2o = 0;
    bool ci = false, mi = false;
    for (int i = begin; i < end; ++i) {
      const Op& op = graph.op(i);
      mix(static_cast<std::uint64_t>(op.kind));
      mix(static_cast<std::uint64_t>(op.attrs.unary));
      mix(static_cast<std::uint64_t>(op.attrs.binary));
      mix(static_cast<std::uint64_t>(op.attrs.reduce));
      if (op.kind == OpKind::kMatMul || op.kind == OpKind::kReduce) {
        ++a2o;
      }
      (op.compute_intensive() ? ci : mi) = true;
    }
    if (a2o < 2 || !seen.insert(h).second) {
      return;
    }
    ++stats.total;
    if (ci && mi) {
      ++stats.ci_and_mi;
    } else if (ci) {
      ++stats.ci_only;
    } else {
      ++stats.mi_only;
    }
  }
};

void CountWelder(const Graph& graph, const GpuArch& arch, PatternCounter* counter) {
  SlicingOptions options;
  options.allow_uta = false;
  options.search.min_block = 16;
  StatusOr<PipelineResult> pipeline =
      RunSlicingPipeline(graph, ResourceConfig::FromArch(arch), options);
  if (!pipeline.ok()) {
    return;
  }
  for (const SlicingResult& kernel : pipeline->candidates.front().kernels) {
    counter->Count(kernel.schedule.graph);
  }
}

// SpaceFusion's fusion space strictly contains the tile-graph space: count
// the fully fused candidates (with UTA), the Sec.-5.3 split candidates, and
// the no-UTA schedules a tile-graph compiler would find.
void CountSpaceFusion(const Graph& graph, const GpuArch& arch, PatternCounter* counter) {
  ResourceConfig rc = ResourceConfig::FromArch(arch);
  for (const Graph& component : SplitConnectedComponents(graph)) {
    StatusOr<PipelineResult> fused = RunSlicingPipeline(component, rc, SlicingOptions());
    if (fused.ok()) {
      for (const ProgramCandidate& candidate : fused->candidates) {
        for (const SlicingResult& kernel : candidate.kernels) {
          counter->Count(kernel.schedule.graph);
        }
      }
    }
    for (const Graph& piece : SplitAtComputeBoundaries(component)) {
      StatusOr<PipelineResult> split = RunSlicingPipeline(piece, rc, SlicingOptions());
      if (split.ok()) {
        for (const SlicingResult& kernel : split->candidates.front().kernels) {
          counter->Count(kernel.schedule.graph);
        }
      }
    }
    CountWelder(component, arch, counter);
  }
}

void CountAStitch(const Graph& graph, PatternCounter* counter) {
  const int n = static_cast<int>(graph.ops().size());
  int i = 0;
  while (i < n) {
    if (graph.op(i).kind == OpKind::kMatMul) {
      ++i;  // CI singleton: never a multi-reduction fused pattern
      continue;
    }
    int j = i;
    while (j < n && graph.op(j).kind != OpKind::kMatMul) {
      ++j;
    }
    counter->CountRange(graph, i, j);
    i = j;
  }
}

void Run() {
  PrintHeader("Table 6: Fusion patterns analysis (14 compiled instances, 9 structure types)");
  GpuArch arch = AmpereA100();

  // The 14 evaluation instances: 5 models x {batch 1, 32} + 4 subgraphs.
  std::vector<ModelGraph> models;
  for (ModelKind kind : AllModelKinds()) {
    for (std::int64_t batch : {1, 32}) {
      std::int64_t seq = kind == ModelKind::kViT ? 224 : 512;
      models.push_back(BuildModel(GetModelConfig(kind, batch, seq)));
    }
  }
  std::vector<Graph> subgraphs;
  // A pure GEMM chain (low-rank bottleneck): the CI-ops-only fusion row.
  {
    GraphBuilder b("gemm_chain");
    TensorId x = b.Input("x", Shape({4096, 256}));
    TensorId w1 = b.Weight("w1", Shape({256, 64}));
    TensorId w2 = b.Weight("w2", Shape({64, 256}));
    b.MarkOutput(b.MatMul(b.MatMul(x, w1), w2));
    subgraphs.push_back(b.Build());
  }
  subgraphs.push_back(BuildMlp(8, 4096, 256, 256));
  subgraphs.push_back(BuildLstmCell(256, 1024, 1024));
  subgraphs.push_back(BuildLayerNormGraph(8192, 8192));
  subgraphs.push_back(BuildMha(32 * 12, 1024, 1024, 64));

  PatternCounter sf_counter;
  PatternCounter welder;
  PatternCounter astitch;
  for (const ModelGraph& model : models) {
    for (const Subprogram& sub : model.subprograms) {
      CountSpaceFusion(sub.graph, arch, &sf_counter);
      CountWelder(sub.graph, arch, &welder);
      CountAStitch(sub.graph, &astitch);
    }
  }
  for (const Graph& g : subgraphs) {
    CountSpaceFusion(g, arch, &sf_counter);
    CountWelder(g, arch, &welder);
    CountAStitch(g, &astitch);
  }
  FusionPatternStats sf = sf_counter.stats;

  PrintSeriesHeader("patterns (>=2 All-to-Ones)", {"SpaceFusion", "NNFusion", "BladeDISC"});
  PrintRow("# discovered", {static_cast<double>(sf.total), static_cast<double>(welder.stats.total),
                            static_cast<double>(astitch.stats.total)},
           "%12.0f");
  PrintRow("# CI ops only", {static_cast<double>(sf.ci_only),
                             static_cast<double>(welder.stats.ci_only),
                             static_cast<double>(astitch.stats.ci_only)},
           "%12.0f");
  PrintRow("# MI ops only", {static_cast<double>(sf.mi_only),
                             static_cast<double>(welder.stats.mi_only),
                             static_cast<double>(astitch.stats.mi_only)},
           "%12.0f");
  PrintRow("# CI and MI ops", {static_cast<double>(sf.ci_and_mi),
                               static_cast<double>(welder.stats.ci_and_mi),
                               static_cast<double>(astitch.stats.ci_and_mi)},
           "%12.0f");
  std::printf("\nPaper reference: 50/30/14 total; CI 5/3/0; MI 15/14/14; CI+MI 30/13/0.\n"
              "The key property reproduced: only SpaceFusion fuses across CI and MI operators\n"
              "when dependency transformation is required; AStitch never fuses CI ops at all.\n");
}

}  // namespace
}  // namespace spacefusion

int main() {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  spacefusion::Run();
  spacefusion::EmitBenchMetrics("table6_fusion_patterns");
  return 0;
}
