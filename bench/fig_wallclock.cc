// Real fused-vs-unfused wall-clock on the host CPU (BENCH_exec.json).
//
// Unlike the fig11-16 benches, which report *modeled* GPU time, this bench
// executes compiled programs for real through the native JIT path and
// times them: fused JIT (the tuned temporal/spatial schedule with inlined
// elementwise chains) against unfused JIT (reference_mode codegen — one
// loop nest per op, every intermediate materialized) and against the
// schedule interpreter. The fused win must come from locality and fewer
// memory passes, not from parallelism: everything runs single threaded.
//
//   fig_wallclock --json BENCH_exec.json --repeats 5
//
// Exit code 0 only when fused JIT beats unfused JIT on MHA and LayerNorm
// (the paper's two flagship fusion workloads); sf-stats diffs the JSON
// against bench/BENCH_exec.baseline.json with a generous threshold.
#include <unistd.h>

#include <chrono>
#include <fstream>

#include "bench/bench_util.h"
#include "src/exec/jit_executor.h"
#include "src/obs/report.h"

namespace spacefusion {
namespace {

struct Workload {
  std::string name;
  Graph graph;
};

struct Timing {
  double fused_us = 0.0;
  double unfused_us = 0.0;
  double interpret_us = 0.0;
};

double OneRunUs(const std::function<void()>& run) {
  const auto start = std::chrono::steady_clock::now();
  run();
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
      .count();
}

// Best-of-N after one untimed warm-up (the warm-up pays for kernel
// emission and toolchain builds; the timed runs hit the in-memory cache).
double BestOfUs(int repeats, const std::function<void()>& run) {
  run();
  double best = OneRunUs(run);
  for (int i = 1; i < repeats; ++i) {
    best = std::min(best, OneRunUs(run));
  }
  return best;
}

StatusOr<Timing> TimeGraph(const Graph& g, int repeats, JitExecutor* fused,
                           JitExecutor* unfused) {
  Compiler compiler{CompileOptions(AmpereA100())};
  SF_ASSIGN_OR_RETURN(CompiledSubprogram compiled, compiler.Compile(g));
  const TensorEnv inputs = MakeGraphInputs(g, /*seed=*/7);

  Timing t;
  TensorEnv out;
  const std::int64_t fallbacks_before = fused->stats().fallbacks;
  t.fused_us = BestOfUs(repeats, [&] {
    SF_CHECK(fused->RunProgram(compiled.program, g, inputs, &out).ok());
  });
  t.unfused_us = BestOfUs(repeats, [&] {
    SF_CHECK(unfused->RunProgram(compiled.program, g, inputs, &out).ok());
  });
  t.interpret_us = BestOfUs(repeats, [&] {
    SF_CHECK(RunScheduledProgram(compiled.program, g, inputs, &out).ok());
  });
  if (fused->stats().fallbacks != fallbacks_before) {
    return Internal("fused jit fell back to the interpreter on " + g.name() +
                    "; the wall-clock would not measure native code");
  }
  return t;
}

std::string Json(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

int Run(int argc, char** argv) {
  std::string json_path;
  int repeats = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if ((flag == "--json" || flag == "--repeats") && i + 1 < argc) {
      const std::string value = argv[++i];
      if (flag == "--json") {
        json_path = value;
      } else {
        repeats = std::atoi(value.c_str());
      }
      continue;
    }
    std::fprintf(stderr, "usage: fig_wallclock [--json PATH] [--repeats N]\n");
    return 2;
  }
  if (repeats < 1) {
    repeats = 1;
  }

  PrintHeader("Wall-clock: fused JIT vs unfused JIT vs interpreter (host CPU)");

  // Both executors share one on-disk cache directory; their kernels cannot
  // alias (the codegen options digest is part of every key).
  const std::string cache_dir = "/tmp/sf-wallclock-" + std::to_string(::getpid());
  JitExecutorOptions fused_options;
  fused_options.cache.dir = cache_dir;
  JitExecutor fused(fused_options);

  JitExecutorOptions unfused_options;
  unfused_options.cache.dir = cache_dir;
  unfused_options.codegen.reference_mode = true;
  unfused_options.codegen.fuse_elementwise = false;
  JitExecutor unfused(unfused_options);

  std::vector<Workload> workloads;
  workloads.push_back({"mha", BuildMha(/*batch_heads=*/8, /*seq_q=*/256, /*seq_kv=*/256,
                                       /*head_dim=*/64)});
  workloads.push_back({"layernorm", BuildLayerNormGraph(/*m=*/512, /*n=*/4096)});
  workloads.push_back({"mlp", BuildMlp(/*num_layers=*/2, /*m=*/256, /*n=*/512, /*k=*/512)});
  workloads.push_back({"ffn", BuildFfn(/*tokens=*/256, /*hidden=*/768, /*ffn_dim=*/3072,
                                       UnaryKind::kGelu, NormKind::kLayerNorm)});

  std::printf("%-12s %14s %14s %14s %10s\n", "workload", "fused jit us", "unfused jit us",
              "interpret us", "speedup");
  std::string workloads_json;
  bool mha_wins = false;
  bool layernorm_wins = false;
  for (const Workload& w : workloads) {
    StatusOr<Timing> timed = TimeGraph(w.graph, repeats, &fused, &unfused);
    if (!timed.ok()) {
      std::fprintf(stderr, "fig_wallclock: %s: %s\n", w.name.c_str(),
                   timed.status().ToString().c_str());
      return 1;
    }
    const Timing& t = timed.value();
    const double speedup = t.fused_us > 0.0 ? t.unfused_us / t.fused_us : 0.0;
    std::printf("%-12s %14.1f %14.1f %14.1f %9.2fx\n", w.name.c_str(), t.fused_us, t.unfused_us,
                t.interpret_us, speedup);
    RecordBenchValue(w.name + "/fused_jit_us", t.fused_us);
    RecordBenchValue(w.name + "/unfused_jit_us", t.unfused_us);
    // The measured fused/unfused ratio goes out as a CompileReport (when
    // SPACEFUSION_REPORT_DIR is set): the calibration record that pairs the
    // modeled cost path with a real wall-clock observation.
    if (ReportSink* sink = EnvReportSink(); sink != nullptr) {
      CompileReport measured;
      measured.request_id = "wallclock-" + w.name;
      measured.model = w.name;
      measured.graph_fingerprint = w.graph.StructuralHash();
      measured.outcome = "measured";
      measured.wall_ms = t.fused_us / 1000.0;
      measured.measured_speedup = speedup;
      sink->Emit(measured);
    }
    if (!workloads_json.empty()) {
      workloads_json += ",";
    }
    workloads_json += "\"" + w.name + "\":{\"fused_jit_us\":" + Json(t.fused_us) +
                      ",\"unfused_jit_us\":" + Json(t.unfused_us) +
                      ",\"interpret_us\":" + Json(t.interpret_us) +
                      ",\"fused_speedup\":" + Json(speedup) + "}";
    if (w.name == "mha") {
      mha_wins = t.fused_us < t.unfused_us;
    }
    if (w.name == "layernorm") {
      layernorm_wins = t.fused_us < t.unfused_us;
    }
  }

  // Whole-zoo execution: every unique subprogram of each model once,
  // jit vs interpreter (fused schedules both times).
  std::printf("\n%-12s %14s %14s\n", "model", "jit us", "interpret us");
  const int model_repeats = std::min(repeats, 3);
  for (ModelKind kind : AllModelKinds()) {
    ModelGraph model = BuildModel(GetModelConfig(kind, /*batch=*/1, /*seq=*/64));
    Compiler compiler{CompileOptions(AmpereA100())};
    // Distinct subprograms once each (repeat counts would only scale every
    // column by the same factor); the compiler's program cache makes the
    // repeated Compile calls free.
    double jit_us = 0.0;
    double interpret_us = 0.0;
    std::uint64_t sub_seed = 1;
    std::vector<std::uint64_t> seen;
    for (const Subprogram& sub : model.subprograms) {
      const std::uint64_t fp = sub.graph.StructuralHash();
      bool dup = false;
      for (std::uint64_t s : seen) {
        dup = dup || s == fp;
      }
      if (dup) {
        continue;
      }
      seen.push_back(fp);
      StatusOr<CompiledSubprogram> compiled = compiler.Compile(sub.graph);
      if (!compiled.ok()) {
        std::fprintf(stderr, "fig_wallclock: %s/%s: %s\n", ModelKindName(kind),
                     sub.graph.name().c_str(), compiled.status().ToString().c_str());
        return 1;
      }
      const TensorEnv inputs = MakeGraphInputs(sub.graph, sub_seed++);
      TensorEnv out;
      jit_us += BestOfUs(model_repeats, [&] {
        SF_CHECK(fused.RunProgram(compiled->program, sub.graph, inputs, &out).ok());
      });
      interpret_us += BestOfUs(model_repeats, [&] {
        SF_CHECK(RunScheduledProgram(compiled->program, sub.graph, inputs, &out).ok());
      });
    }
    std::printf("%-12s %14.1f %14.1f\n", ModelKindName(kind), jit_us, interpret_us);
    if (!workloads_json.empty()) {
      workloads_json += ",";
    }
    workloads_json += std::string("\"model_") + ModelKindName(kind) +
                      "\":{\"jit_us\":" + Json(jit_us) +
                      ",\"interpret_us\":" + Json(interpret_us) + "}";
  }

  const JitKernelCache::Stats cache = fused.cache().stats();
  const double lookups = static_cast<double>(cache.memory_hits + cache.disk_hits + cache.builds +
                                             cache.failures);
  const double hit_rate =
      lookups > 0.0 ? static_cast<double>(cache.memory_hits + cache.disk_hits) / lookups : 0.0;
  std::printf("\njit cache: %lld built, %lld memory hit(s), %lld disk hit(s), hit rate %.3f\n",
              static_cast<long long>(cache.builds), static_cast<long long>(cache.memory_hits),
              static_cast<long long>(cache.disk_hits), hit_rate);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "fig_wallclock: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << "{\"bench\":\"fig_wallclock\",\"repeats\":" << repeats << ",\"workloads\":{"
        << workloads_json << "},\"jit_cache\":{\"kernels_built\":" << cache.builds
        << ",\"hits\":" << (cache.memory_hits + cache.disk_hits)
        << ",\"hit_rate\":" << Json(hit_rate) << ",\"build_time_ms\":" << Json(cache.build_ms)
        << "}}\n";
  }
  EmitBenchMetrics("fig_wallclock");

  if (!mha_wins || !layernorm_wins) {
    std::fprintf(stderr,
                 "fig_wallclock: fused JIT did not beat unfused JIT on %s%s%s — the fusion "
                 "speedup claim does not hold on this host\n",
                 mha_wins ? "" : "mha", !mha_wins && !layernorm_wins ? " and " : "",
                 layernorm_wins ? "" : "layernorm");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace spacefusion

int main(int argc, char** argv) {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  return spacefusion::Run(argc, argv);
}
