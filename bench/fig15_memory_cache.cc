// Reproduces paper Fig. 15: memory & cache analysis. L1 / L2 cache miss
// counts and device-memory data movement for representative subgraphs,
// normalized to SpaceFusion (lower is better), measured with the
// trace-driven memory simulator on the Ampere configuration.
//
// Fused baselines per subgraph follow the paper: cuBLASLt for MLP,
// PyTorch Op for LN, FlashAttention for MHA; the unfused baseline is
// per-operator PyTorch.
//
// Paper reference: up to 83.0% fewer L1 misses, 94.1% fewer L2 misses, and
// 96.45% less data movement than the baselines; LN data movement avg 5.25x
// lower than unfused, MHA avg 18.98x.
#include "bench/bench_util.h"
#include "src/schedule/lowering.h"
#include "src/tuning/tuner.h"

namespace spacefusion {
namespace {

struct Workload {
  std::string label;
  Graph graph;
  std::unique_ptr<Baseline> fused;
};

std::vector<KernelSpec> SpaceFusionKernels(const Graph& graph, const GpuArch& arch) {
  Compiler compiler{CompileOptions(arch)};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(graph);
  if (!compiled.ok()) {
    return {};
  }
  return compiled->kernels;
}

void Run() {
  GpuArch arch = AmpereA100();
  PrintHeader(
      "Figure 15: Memory & cache analysis (Ampere) — L1 misses / L2 misses / DRAM traffic,\n"
      "normalized to SpaceFusion (lower is better; SpaceFusion = 1.0)");

  std::vector<Workload> workloads;
  workloads.push_back({"MLP(4, 1K)", BuildMlp(4, 1024, 256, 256), MakeCublasLtBaseline()});
  workloads.push_back({"MLP(8, 4K)", BuildMlp(8, 4096, 256, 256), MakeCublasLtBaseline()});
  workloads.push_back({"LN(4K)", BuildLayerNormGraph(4096, 4096), MakeTorchOpLayerNorm()});
  workloads.push_back({"LN(16K)", BuildLayerNormGraph(16384, 16384), MakeTorchOpLayerNorm()});
  workloads.push_back({"MHA(32, 1K)", BuildMha(32 * 12, 1024, 1024, 64), MakeFlashAttention1()});
  workloads.push_back({"MHA(32, 2K)", BuildMha(32 * 12, 2048, 2048, 64), MakeFlashAttention1()});

  auto pytorch = MakePyTorchBaseline();

  PrintSeriesHeader("workload", {"L1 fused", "L1 unfused", "L2 fused", "L2 unfused",
                                 "DRAM fused", "DRAM unfused"});

  double ln_dram_gain = 0.0, mha_dram_gain = 0.0;
  int ln_n = 0, mha_n = 0;

  for (Workload& w : workloads) {
    std::vector<KernelSpec> sf = SpaceFusionKernels(w.graph, arch);
    AddressMap am_fused, am_unfused;
    std::vector<KernelSpec> fused = w.fused->Plan(w.graph, arch, &am_fused);
    std::vector<KernelSpec> unfused = pytorch->Plan(w.graph, arch, &am_unfused);

    ExecutionReport sf_rep = SimulateMemory(sf, arch);
    ExecutionReport fused_rep = SimulateMemory(fused, arch);
    ExecutionReport unfused_rep = SimulateMemory(unfused, arch);

    auto norm = [](std::int64_t v, std::int64_t base) {
      return base > 0 ? static_cast<double>(v) / static_cast<double>(base) : -1.0;
    };
    PrintRow(w.label, {norm(fused_rep.l1_misses, sf_rep.l1_misses),
                       norm(unfused_rep.l1_misses, sf_rep.l1_misses),
                       norm(fused_rep.l2_misses, sf_rep.l2_misses),
                       norm(unfused_rep.l2_misses, sf_rep.l2_misses),
                       norm(fused_rep.dram_bytes, sf_rep.dram_bytes),
                       norm(unfused_rep.dram_bytes, sf_rep.dram_bytes)});

    if (w.label.rfind("LN", 0) == 0) {
      ln_dram_gain += norm(unfused_rep.dram_bytes, sf_rep.dram_bytes);
      ++ln_n;
    }
    if (w.label.rfind("MHA", 0) == 0) {
      mha_dram_gain += norm(unfused_rep.dram_bytes, sf_rep.dram_bytes);
      ++mha_n;
    }
  }
  std::printf("\nAvg DRAM-traffic reduction vs unfused: LN %.2fx (paper 5.25x), MHA %.2fx"
              " (paper 18.98x)\n",
              ln_n ? ln_dram_gain / ln_n : 0.0, mha_n ? mha_dram_gain / mha_n : 0.0);
}

}  // namespace
}  // namespace spacefusion

int main() {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  spacefusion::Run();
  spacefusion::EmitBenchMetrics("fig15_memory_cache");
  return 0;
}
