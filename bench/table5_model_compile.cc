// Reproduces paper Table 5: model compilation time for BladeDISC, TensorRT,
// and SpaceFusion on BERT, ViT and T5.
//
// SpaceFusion's column is this implementation's real scheduling wall time
// plus the emulated on-GPU tuning time (as in Table 4). The baselines are
// modeled from their published mechanisms:
//   * BladeDISC performs JIT analysis/transformation and NVCC compilation of
//     every stitched kernel (dominated by per-kernel JIT compilation);
//   * TensorRT measures a subset of hand-tuned tactic combinations per
//     layer at engine-build time (dominated by timed test runs).
//
// Paper reference: Bert 176.2/141.1/68.4 s, ViT 155.8/213.4/76.9 s,
// T5 356.1/306.9/131.7 s (BladeDISC / TensorRT / SpaceFusion); SpaceFusion
// compiles ~2.4x faster on average.
#include <set>

#include "bench/bench_util.h"

namespace spacefusion {
namespace {

// BladeDISC: per unique fused kernel, JIT analysis + nvcc compilation.
double ModelBladeDiscCompileSeconds(const ModelGraph& model, const GpuArch& arch) {
  const double kJitSecondsPerKernel = 7.5;   // nvcc + ptxas for one kernel
  const double kAnalysisSecondsPerOp = 0.2;
  auto astitch = MakeAStitchBaseline();
  std::set<std::uint64_t> seen;
  double seconds = 0.0;
  for (const Subprogram& sub : model.subprograms) {
    if (seen.count(sub.graph.StructuralHash()) > 0) {
      continue;
    }
    seen.insert(sub.graph.StructuralHash());
    AddressMap am;
    std::vector<KernelSpec> kernels = astitch->Plan(sub.graph, arch, &am);
    seconds += static_cast<double>(kernels.size()) * kJitSecondsPerKernel +
               static_cast<double>(sub.graph.ops().size()) * kAnalysisSecondsPerOp;
  }
  return seconds;
}

// TensorRT: per unique layer, timed tactic search over library kernels.
double ModelTensorRtCompileSeconds(const ModelGraph& model, const GpuArch& arch) {
  const int kTacticsPerKernel = 28;
  const int kRunsPerTactic = 60;
  const double kBuilderOverheadSeconds = 30.0;
  auto trt = MakeTensorRtBaseline();
  CostModel cost(arch);
  std::set<std::uint64_t> seen;
  double seconds = kBuilderOverheadSeconds;
  for (const Subprogram& sub : model.subprograms) {
    if (seen.count(sub.graph.StructuralHash()) > 0) {
      continue;
    }
    seen.insert(sub.graph.StructuralHash());
    AddressMap am;
    for (const KernelSpec& k : trt->Plan(sub.graph, arch, &am)) {
      seconds += cost.EstimateKernel(k).time_us * 1e-6 * kTacticsPerKernel * kRunsPerTactic;
      seconds += 1.5;  // per-kernel builder bookkeeping
    }
  }
  return seconds;
}

double SpaceFusionCompileSeconds(const ModelGraph& model, const GpuArch& arch) {
  StatusOr<CompiledModel> compiled = CompileModelWithSpaceFusion(model, CompileOptions(arch));
  return compiled.ok() ? compiled->compile_time.total_s() : -1.0;
}

void Run() {
  PrintHeader("Table 5: Model compilation time (Ampere, seconds)");
  GpuArch arch = AmpereA100();
  PrintSeriesHeader("model", {"BladeDISC", "TensorRT", "SpaceFusion"});

  double ratio_disc = 0, ratio_trt = 0;
  int n = 0;
  for (ModelKind kind : {ModelKind::kBert, ModelKind::kViT, ModelKind::kT5}) {
    std::int64_t seq = kind == ModelKind::kViT ? 224 : 512;
    ModelGraph model = BuildModel(GetModelConfig(kind, /*batch=*/32, seq));
    double disc = ModelBladeDiscCompileSeconds(model, arch);
    double trt = ModelTensorRtCompileSeconds(model, arch);
    double sf = SpaceFusionCompileSeconds(model, arch);
    PrintRow(ModelKindName(kind), {disc, trt, sf});
    if (sf > 0) {
      ratio_disc += disc / sf;
      ratio_trt += trt / sf;
      ++n;
    }
  }
  std::printf("\nSpaceFusion compiles %.2fx faster than BladeDISC and %.2fx faster than"
              " TensorRT on average (paper: 2.44x and 2.39x).\n",
              n ? ratio_disc / n : 0.0, n ? ratio_trt / n : 0.0);
  std::printf("Baseline compile times are modeled from their mechanisms (JIT kernel\n"
              "compilation / tactic measurement); see EXPERIMENTS.md.\n");
}

}  // namespace
}  // namespace spacefusion

int main() {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  spacefusion::Run();
  spacefusion::EmitBenchMetrics("table5_model_compile");
  return 0;
}
