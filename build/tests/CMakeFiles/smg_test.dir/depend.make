# Empty dependencies file for smg_test.
# This may be replaced when dependencies are built.
