file(REMOVE_RECURSE
  "CMakeFiles/smg_test.dir/smg_test.cc.o"
  "CMakeFiles/smg_test.dir/smg_test.cc.o.d"
  "smg_test"
  "smg_test.pdb"
  "smg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
