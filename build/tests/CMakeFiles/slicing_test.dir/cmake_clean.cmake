file(REMOVE_RECURSE
  "CMakeFiles/slicing_test.dir/slicing_test.cc.o"
  "CMakeFiles/slicing_test.dir/slicing_test.cc.o.d"
  "slicing_test"
  "slicing_test.pdb"
  "slicing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slicing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
