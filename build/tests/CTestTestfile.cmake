# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/smg_test[1]_include.cmake")
include("/root/repo/build/tests/slicing_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
