# Empty compiler generated dependencies file for transformer_service.
# This may be replaced when dependencies are built.
