file(REMOVE_RECURSE
  "CMakeFiles/transformer_service.dir/transformer_service.cpp.o"
  "CMakeFiles/transformer_service.dir/transformer_service.cpp.o.d"
  "transformer_service"
  "transformer_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformer_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
