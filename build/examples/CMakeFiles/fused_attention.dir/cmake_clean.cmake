file(REMOVE_RECURSE
  "CMakeFiles/fused_attention.dir/fused_attention.cpp.o"
  "CMakeFiles/fused_attention.dir/fused_attention.cpp.o.d"
  "fused_attention"
  "fused_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fused_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
