# Empty compiler generated dependencies file for fused_attention.
# This may be replaced when dependencies are built.
