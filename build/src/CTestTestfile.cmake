# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("tensor")
subdirs("graph")
subdirs("smg")
subdirs("slicing")
subdirs("sim")
subdirs("schedule")
subdirs("exec")
subdirs("codegen")
subdirs("baselines")
subdirs("tuning")
subdirs("core")
