# Empty dependencies file for sf_baselines.
# This may be replaced when dependencies are built.
