
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/attention_baselines.cc" "src/baselines/CMakeFiles/sf_baselines.dir/attention_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/sf_baselines.dir/attention_baselines.cc.o.d"
  "/root/repo/src/baselines/compiler_baselines.cc" "src/baselines/CMakeFiles/sf_baselines.dir/compiler_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/sf_baselines.dir/compiler_baselines.cc.o.d"
  "/root/repo/src/baselines/kernel_library.cc" "src/baselines/CMakeFiles/sf_baselines.dir/kernel_library.cc.o" "gcc" "src/baselines/CMakeFiles/sf_baselines.dir/kernel_library.cc.o.d"
  "/root/repo/src/baselines/layernorm_baselines.cc" "src/baselines/CMakeFiles/sf_baselines.dir/layernorm_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/sf_baselines.dir/layernorm_baselines.cc.o.d"
  "/root/repo/src/baselines/patterns.cc" "src/baselines/CMakeFiles/sf_baselines.dir/patterns.cc.o" "gcc" "src/baselines/CMakeFiles/sf_baselines.dir/patterns.cc.o.d"
  "/root/repo/src/baselines/simple_baselines.cc" "src/baselines/CMakeFiles/sf_baselines.dir/simple_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/sf_baselines.dir/simple_baselines.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/sf_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/slicing/CMakeFiles/sf_slicing.dir/DependInfo.cmake"
  "/root/repo/build/src/smg/CMakeFiles/sf_smg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sf_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
