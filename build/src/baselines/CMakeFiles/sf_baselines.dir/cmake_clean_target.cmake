file(REMOVE_RECURSE
  "libsf_baselines.a"
)
