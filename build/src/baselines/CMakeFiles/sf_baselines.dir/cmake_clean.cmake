file(REMOVE_RECURSE
  "CMakeFiles/sf_baselines.dir/attention_baselines.cc.o"
  "CMakeFiles/sf_baselines.dir/attention_baselines.cc.o.d"
  "CMakeFiles/sf_baselines.dir/compiler_baselines.cc.o"
  "CMakeFiles/sf_baselines.dir/compiler_baselines.cc.o.d"
  "CMakeFiles/sf_baselines.dir/kernel_library.cc.o"
  "CMakeFiles/sf_baselines.dir/kernel_library.cc.o.d"
  "CMakeFiles/sf_baselines.dir/layernorm_baselines.cc.o"
  "CMakeFiles/sf_baselines.dir/layernorm_baselines.cc.o.d"
  "CMakeFiles/sf_baselines.dir/patterns.cc.o"
  "CMakeFiles/sf_baselines.dir/patterns.cc.o.d"
  "CMakeFiles/sf_baselines.dir/simple_baselines.cc.o"
  "CMakeFiles/sf_baselines.dir/simple_baselines.cc.o.d"
  "libsf_baselines.a"
  "libsf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
