file(REMOVE_RECURSE
  "CMakeFiles/sf_core.dir/compiler.cc.o"
  "CMakeFiles/sf_core.dir/compiler.cc.o.d"
  "CMakeFiles/sf_core.dir/model_runner.cc.o"
  "CMakeFiles/sf_core.dir/model_runner.cc.o.d"
  "libsf_core.a"
  "libsf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
