file(REMOVE_RECURSE
  "CMakeFiles/sf_smg.dir/smg.cc.o"
  "CMakeFiles/sf_smg.dir/smg.cc.o.d"
  "CMakeFiles/sf_smg.dir/smg_builder.cc.o"
  "CMakeFiles/sf_smg.dir/smg_builder.cc.o.d"
  "libsf_smg.a"
  "libsf_smg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_smg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
