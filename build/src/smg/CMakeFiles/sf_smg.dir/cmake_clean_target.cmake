file(REMOVE_RECURSE
  "libsf_smg.a"
)
