# Empty compiler generated dependencies file for sf_smg.
# This may be replaced when dependencies are built.
