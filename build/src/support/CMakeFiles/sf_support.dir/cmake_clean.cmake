file(REMOVE_RECURSE
  "CMakeFiles/sf_support.dir/logging.cc.o"
  "CMakeFiles/sf_support.dir/logging.cc.o.d"
  "CMakeFiles/sf_support.dir/status.cc.o"
  "CMakeFiles/sf_support.dir/status.cc.o.d"
  "CMakeFiles/sf_support.dir/string_util.cc.o"
  "CMakeFiles/sf_support.dir/string_util.cc.o.d"
  "libsf_support.a"
  "libsf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
