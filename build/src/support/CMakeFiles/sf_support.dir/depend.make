# Empty dependencies file for sf_support.
# This may be replaced when dependencies are built.
