
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/arch.cc" "src/sim/CMakeFiles/sf_sim.dir/arch.cc.o" "gcc" "src/sim/CMakeFiles/sf_sim.dir/arch.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/sf_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/sf_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/sim/CMakeFiles/sf_sim.dir/cost_model.cc.o" "gcc" "src/sim/CMakeFiles/sf_sim.dir/cost_model.cc.o.d"
  "/root/repo/src/sim/kernel.cc" "src/sim/CMakeFiles/sf_sim.dir/kernel.cc.o" "gcc" "src/sim/CMakeFiles/sf_sim.dir/kernel.cc.o.d"
  "/root/repo/src/sim/memory_sim.cc" "src/sim/CMakeFiles/sf_sim.dir/memory_sim.cc.o" "gcc" "src/sim/CMakeFiles/sf_sim.dir/memory_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
