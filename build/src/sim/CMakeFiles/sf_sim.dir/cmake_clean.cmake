file(REMOVE_RECURSE
  "CMakeFiles/sf_sim.dir/arch.cc.o"
  "CMakeFiles/sf_sim.dir/arch.cc.o.d"
  "CMakeFiles/sf_sim.dir/cache.cc.o"
  "CMakeFiles/sf_sim.dir/cache.cc.o.d"
  "CMakeFiles/sf_sim.dir/cost_model.cc.o"
  "CMakeFiles/sf_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/sf_sim.dir/kernel.cc.o"
  "CMakeFiles/sf_sim.dir/kernel.cc.o.d"
  "CMakeFiles/sf_sim.dir/memory_sim.cc.o"
  "CMakeFiles/sf_sim.dir/memory_sim.cc.o.d"
  "libsf_sim.a"
  "libsf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
