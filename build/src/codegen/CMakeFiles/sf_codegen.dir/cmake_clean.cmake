file(REMOVE_RECURSE
  "CMakeFiles/sf_codegen.dir/triton_codegen.cc.o"
  "CMakeFiles/sf_codegen.dir/triton_codegen.cc.o.d"
  "libsf_codegen.a"
  "libsf_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
