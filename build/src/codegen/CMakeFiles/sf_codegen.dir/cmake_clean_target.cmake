file(REMOVE_RECURSE
  "libsf_codegen.a"
)
