# Empty dependencies file for sf_codegen.
# This may be replaced when dependencies are built.
