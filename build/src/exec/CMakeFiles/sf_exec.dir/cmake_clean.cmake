file(REMOVE_RECURSE
  "CMakeFiles/sf_exec.dir/reference_executor.cc.o"
  "CMakeFiles/sf_exec.dir/reference_executor.cc.o.d"
  "CMakeFiles/sf_exec.dir/schedule_executor.cc.o"
  "CMakeFiles/sf_exec.dir/schedule_executor.cc.o.d"
  "libsf_exec.a"
  "libsf_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
