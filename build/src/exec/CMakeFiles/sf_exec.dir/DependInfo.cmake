
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/reference_executor.cc" "src/exec/CMakeFiles/sf_exec.dir/reference_executor.cc.o" "gcc" "src/exec/CMakeFiles/sf_exec.dir/reference_executor.cc.o.d"
  "/root/repo/src/exec/schedule_executor.cc" "src/exec/CMakeFiles/sf_exec.dir/schedule_executor.cc.o" "gcc" "src/exec/CMakeFiles/sf_exec.dir/schedule_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/sf_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/slicing/CMakeFiles/sf_slicing.dir/DependInfo.cmake"
  "/root/repo/build/src/smg/CMakeFiles/sf_smg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
