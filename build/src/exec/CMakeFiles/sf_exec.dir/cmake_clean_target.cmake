file(REMOVE_RECURSE
  "libsf_exec.a"
)
