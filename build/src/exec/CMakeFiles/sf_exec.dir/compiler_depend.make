# Empty compiler generated dependencies file for sf_exec.
# This may be replaced when dependencies are built.
