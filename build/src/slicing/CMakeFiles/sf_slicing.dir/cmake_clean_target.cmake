file(REMOVE_RECURSE
  "libsf_slicing.a"
)
