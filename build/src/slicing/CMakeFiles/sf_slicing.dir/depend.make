# Empty dependencies file for sf_slicing.
# This may be replaced when dependencies are built.
