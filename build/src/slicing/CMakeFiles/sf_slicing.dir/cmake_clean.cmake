file(REMOVE_RECURSE
  "CMakeFiles/sf_slicing.dir/dim_analysis.cc.o"
  "CMakeFiles/sf_slicing.dir/dim_analysis.cc.o.d"
  "CMakeFiles/sf_slicing.dir/slicers.cc.o"
  "CMakeFiles/sf_slicing.dir/slicers.cc.o.d"
  "CMakeFiles/sf_slicing.dir/update_functions.cc.o"
  "CMakeFiles/sf_slicing.dir/update_functions.cc.o.d"
  "libsf_slicing.a"
  "libsf_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
