file(REMOVE_RECURSE
  "CMakeFiles/sf_tuning.dir/tuner.cc.o"
  "CMakeFiles/sf_tuning.dir/tuner.cc.o.d"
  "libsf_tuning.a"
  "libsf_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
