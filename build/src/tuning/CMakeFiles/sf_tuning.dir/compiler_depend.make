# Empty compiler generated dependencies file for sf_tuning.
# This may be replaced when dependencies are built.
