file(REMOVE_RECURSE
  "libsf_tuning.a"
)
