file(REMOVE_RECURSE
  "CMakeFiles/sf_tensor.dir/shape.cc.o"
  "CMakeFiles/sf_tensor.dir/shape.cc.o.d"
  "CMakeFiles/sf_tensor.dir/tensor.cc.o"
  "CMakeFiles/sf_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/sf_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/sf_tensor.dir/tensor_ops.cc.o.d"
  "libsf_tensor.a"
  "libsf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
