
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cc" "src/graph/CMakeFiles/sf_graph.dir/builder.cc.o" "gcc" "src/graph/CMakeFiles/sf_graph.dir/builder.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/sf_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/sf_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/models.cc" "src/graph/CMakeFiles/sf_graph.dir/models.cc.o" "gcc" "src/graph/CMakeFiles/sf_graph.dir/models.cc.o.d"
  "/root/repo/src/graph/op.cc" "src/graph/CMakeFiles/sf_graph.dir/op.cc.o" "gcc" "src/graph/CMakeFiles/sf_graph.dir/op.cc.o.d"
  "/root/repo/src/graph/subgraphs.cc" "src/graph/CMakeFiles/sf_graph.dir/subgraphs.cc.o" "gcc" "src/graph/CMakeFiles/sf_graph.dir/subgraphs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/sf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
