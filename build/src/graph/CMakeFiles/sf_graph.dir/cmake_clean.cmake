file(REMOVE_RECURSE
  "CMakeFiles/sf_graph.dir/builder.cc.o"
  "CMakeFiles/sf_graph.dir/builder.cc.o.d"
  "CMakeFiles/sf_graph.dir/graph.cc.o"
  "CMakeFiles/sf_graph.dir/graph.cc.o.d"
  "CMakeFiles/sf_graph.dir/models.cc.o"
  "CMakeFiles/sf_graph.dir/models.cc.o.d"
  "CMakeFiles/sf_graph.dir/op.cc.o"
  "CMakeFiles/sf_graph.dir/op.cc.o.d"
  "CMakeFiles/sf_graph.dir/subgraphs.cc.o"
  "CMakeFiles/sf_graph.dir/subgraphs.cc.o.d"
  "libsf_graph.a"
  "libsf_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
