file(REMOVE_RECURSE
  "libsf_schedule.a"
)
