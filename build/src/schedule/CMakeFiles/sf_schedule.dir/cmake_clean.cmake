file(REMOVE_RECURSE
  "CMakeFiles/sf_schedule.dir/lowering.cc.o"
  "CMakeFiles/sf_schedule.dir/lowering.cc.o.d"
  "CMakeFiles/sf_schedule.dir/memory_planner.cc.o"
  "CMakeFiles/sf_schedule.dir/memory_planner.cc.o.d"
  "CMakeFiles/sf_schedule.dir/partitioner.cc.o"
  "CMakeFiles/sf_schedule.dir/partitioner.cc.o.d"
  "CMakeFiles/sf_schedule.dir/pipeline.cc.o"
  "CMakeFiles/sf_schedule.dir/pipeline.cc.o.d"
  "CMakeFiles/sf_schedule.dir/resource_aware.cc.o"
  "CMakeFiles/sf_schedule.dir/resource_aware.cc.o.d"
  "CMakeFiles/sf_schedule.dir/schedule_ir.cc.o"
  "CMakeFiles/sf_schedule.dir/schedule_ir.cc.o.d"
  "CMakeFiles/sf_schedule.dir/search_space.cc.o"
  "CMakeFiles/sf_schedule.dir/search_space.cc.o.d"
  "libsf_schedule.a"
  "libsf_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
