# Empty compiler generated dependencies file for sf_schedule.
# This may be replaced when dependencies are built.
