
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/lowering.cc" "src/schedule/CMakeFiles/sf_schedule.dir/lowering.cc.o" "gcc" "src/schedule/CMakeFiles/sf_schedule.dir/lowering.cc.o.d"
  "/root/repo/src/schedule/memory_planner.cc" "src/schedule/CMakeFiles/sf_schedule.dir/memory_planner.cc.o" "gcc" "src/schedule/CMakeFiles/sf_schedule.dir/memory_planner.cc.o.d"
  "/root/repo/src/schedule/partitioner.cc" "src/schedule/CMakeFiles/sf_schedule.dir/partitioner.cc.o" "gcc" "src/schedule/CMakeFiles/sf_schedule.dir/partitioner.cc.o.d"
  "/root/repo/src/schedule/pipeline.cc" "src/schedule/CMakeFiles/sf_schedule.dir/pipeline.cc.o" "gcc" "src/schedule/CMakeFiles/sf_schedule.dir/pipeline.cc.o.d"
  "/root/repo/src/schedule/resource_aware.cc" "src/schedule/CMakeFiles/sf_schedule.dir/resource_aware.cc.o" "gcc" "src/schedule/CMakeFiles/sf_schedule.dir/resource_aware.cc.o.d"
  "/root/repo/src/schedule/schedule_ir.cc" "src/schedule/CMakeFiles/sf_schedule.dir/schedule_ir.cc.o" "gcc" "src/schedule/CMakeFiles/sf_schedule.dir/schedule_ir.cc.o.d"
  "/root/repo/src/schedule/search_space.cc" "src/schedule/CMakeFiles/sf_schedule.dir/search_space.cc.o" "gcc" "src/schedule/CMakeFiles/sf_schedule.dir/search_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/slicing/CMakeFiles/sf_slicing.dir/DependInfo.cmake"
  "/root/repo/build/src/smg/CMakeFiles/sf_smg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sf_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
