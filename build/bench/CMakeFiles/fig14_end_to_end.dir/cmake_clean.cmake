file(REMOVE_RECURSE
  "CMakeFiles/fig14_end_to_end.dir/fig14_end_to_end.cc.o"
  "CMakeFiles/fig14_end_to_end.dir/fig14_end_to_end.cc.o.d"
  "fig14_end_to_end"
  "fig14_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
