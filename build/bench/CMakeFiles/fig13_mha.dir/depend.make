# Empty dependencies file for fig13_mha.
# This may be replaced when dependencies are built.
