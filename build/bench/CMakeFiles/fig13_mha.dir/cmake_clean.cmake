file(REMOVE_RECURSE
  "CMakeFiles/fig13_mha.dir/fig13_mha.cc.o"
  "CMakeFiles/fig13_mha.dir/fig13_mha.cc.o.d"
  "fig13_mha"
  "fig13_mha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
