# Empty dependencies file for fig15_memory_cache.
# This may be replaced when dependencies are built.
