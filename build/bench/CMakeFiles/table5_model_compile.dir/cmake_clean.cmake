file(REMOVE_RECURSE
  "CMakeFiles/table5_model_compile.dir/table5_model_compile.cc.o"
  "CMakeFiles/table5_model_compile.dir/table5_model_compile.cc.o.d"
  "table5_model_compile"
  "table5_model_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_model_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
