
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table5_model_compile.cc" "bench/CMakeFiles/table5_model_compile.dir/table5_model_compile.cc.o" "gcc" "bench/CMakeFiles/table5_model_compile.dir/table5_model_compile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/sf_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sf_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sf_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/sf_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/slicing/CMakeFiles/sf_slicing.dir/DependInfo.cmake"
  "/root/repo/build/src/smg/CMakeFiles/sf_smg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
