# Empty dependencies file for table6_fusion_patterns.
# This may be replaced when dependencies are built.
