file(REMOVE_RECURSE
  "CMakeFiles/table6_fusion_patterns.dir/table6_fusion_patterns.cc.o"
  "CMakeFiles/table6_fusion_patterns.dir/table6_fusion_patterns.cc.o.d"
  "table6_fusion_patterns"
  "table6_fusion_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_fusion_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
