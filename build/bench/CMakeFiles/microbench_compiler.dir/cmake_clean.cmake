file(REMOVE_RECURSE
  "CMakeFiles/microbench_compiler.dir/microbench_compiler.cc.o"
  "CMakeFiles/microbench_compiler.dir/microbench_compiler.cc.o.d"
  "microbench_compiler"
  "microbench_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
