# Empty dependencies file for microbench_compiler.
# This may be replaced when dependencies are built.
