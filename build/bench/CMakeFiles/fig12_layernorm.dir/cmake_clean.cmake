file(REMOVE_RECURSE
  "CMakeFiles/fig12_layernorm.dir/fig12_layernorm.cc.o"
  "CMakeFiles/fig12_layernorm.dir/fig12_layernorm.cc.o.d"
  "fig12_layernorm"
  "fig12_layernorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_layernorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
