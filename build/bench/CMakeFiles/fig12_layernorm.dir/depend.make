# Empty dependencies file for fig12_layernorm.
# This may be replaced when dependencies are built.
