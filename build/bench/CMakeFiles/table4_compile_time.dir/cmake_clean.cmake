file(REMOVE_RECURSE
  "CMakeFiles/table4_compile_time.dir/table4_compile_time.cc.o"
  "CMakeFiles/table4_compile_time.dir/table4_compile_time.cc.o.d"
  "table4_compile_time"
  "table4_compile_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
