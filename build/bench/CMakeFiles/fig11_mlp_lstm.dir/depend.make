# Empty dependencies file for fig11_mlp_lstm.
# This may be replaced when dependencies are built.
