file(REMOVE_RECURSE
  "CMakeFiles/fig11_mlp_lstm.dir/fig11_mlp_lstm.cc.o"
  "CMakeFiles/fig11_mlp_lstm.dir/fig11_mlp_lstm.cc.o.d"
  "fig11_mlp_lstm"
  "fig11_mlp_lstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mlp_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
