// sf-stats: aggregate and diff compile observability artifacts.
//
// Summarizes one run — a SPACEFUSION_REPORT_DIR of CompileReports, an
// sf-compile --json file, a BENCH_compile.json, or a BENCH_exec.json
// wall-clock execution benchmark — printing outcome
// counts and the top-N slowest models/passes; or diffs two runs and flags
// compile-time regressions. Diffs compare only deterministic modeled
// quantities unless --include-wall is given, so a CI gate against a
// checked-in baseline never trips on runner speed.
//
//   sf-stats reports/                         # summarize a report directory
//   sf-stats COMPILE_times.json --top 3
//   sf-stats --diff BENCH_compile.baseline.json BENCH_compile.json
//   sf-stats --diff base.json current.json --threshold 25 --include-wall
//
// Exit codes: 0 clean, 1 regression(s) found, 2 usage or load error.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/obs/stats.h"
#include "src/support/logging.h"

namespace spacefusion {
namespace {

int Usage() {
  std::cerr << "usage: sf-stats RUN [--top N]\n"
               "       sf-stats --diff BASE CURRENT [--threshold PCT] [--include-wall]\n"
               "\n"
               "  RUN / BASE / CURRENT  a report directory (SPACEFUSION_REPORT_DIR), an\n"
               "                        sf-compile --json file, a single *.report.json,\n"
               "                        a BENCH_compile.json from sf-bench-json, or a\n"
               "                        BENCH_exec.json from fig_wallclock\n"
               "  --top N               how many slowest models/passes to list (default 5)\n"
               "  --threshold PCT       regression threshold in percent (default 10)\n"
               "  --include-wall        also diff wall-clock keys (machine dependent)\n"
               "\n"
               "exit codes: 0 clean, 1 regression(s), 2 usage/load error\n";
  return 2;
}

int Run(int argc, char** argv) {
  bool diff_mode = false;
  int top_n = 5;
  DiffOptions diff_options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--diff") {
      diff_mode = true;
      continue;
    }
    if (flag == "--include-wall") {
      diff_options.include_wall = true;
      continue;
    }
    if (flag == "--top" || flag == "--threshold") {
      if (i + 1 >= argc) {
        return Usage();
      }
      std::string value = argv[++i];
      if (flag == "--top") {
        top_n = std::atoi(value.c_str());
      } else {
        diff_options.threshold = std::atof(value.c_str()) / 100.0;
      }
      continue;
    }
    if (!flag.empty() && flag[0] == '-') {
      return Usage();
    }
    paths.push_back(flag);
  }
  if (top_n < 1 || diff_options.threshold < 0.0) {
    return Usage();
  }
  if ((diff_mode && paths.size() != 2) || (!diff_mode && paths.size() != 1)) {
    return Usage();
  }

  std::vector<RunStats> runs;
  for (const std::string& path : paths) {
    StatusOr<RunStats> run = LoadRunStats(path);
    if (!run.ok()) {
      std::cerr << "sf-stats: " << run.status().message() << "\n";
      return 2;
    }
    runs.push_back(std::move(run).value());
  }

  if (!diff_mode) {
    std::cout << RenderSummary(runs[0], top_n);
    return 0;
  }

  DiffResult diff = DiffRuns(runs[0], runs[1], diff_options);
  std::cout << "base:    " << runs[0].source << " (" << runs[0].format << ")\n"
            << "current: " << runs[1].source << " (" << runs[1].format << ")\n"
            << RenderDiff(diff, diff_options);
  return diff.regressions > 0 ? 1 : 0;
}

}  // namespace
}  // namespace spacefusion

int main(int argc, char** argv) {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  return spacefusion::Run(argc, argv);
}
