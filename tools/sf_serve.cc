// sf-serve: the SpaceFusion compile daemon.
//
// Serves NDJSON compile requests (src/serve/protocol.h) over an AF_UNIX
// stream socket — one connection per client, one request object per line —
// or over stdin/stdout with --stdio. Requests from concurrent connections
// are admitted through a ServeServer, so identical in-flight compiles
// coalesce, per-client quotas and deadlines apply, and results persist to
// the program cache directory: restarting the daemon with the same
// --cache-dir serves previously compiled models as "persistent_hit" without
// re-tuning.
//
//   sf-serve --socket /tmp/sf-serve.sock --cache-dir /tmp/sf-cache &
//   sf-serve --stdio < requests.ndjson
//
// A request whose model is "shutdown" stops the daemon after it is
// acknowledged (how CI tears the daemon down without signals). SIGINT /
// SIGTERM also shut down cleanly.
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/server.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {
namespace {

std::atomic<bool> g_stop{false};
std::atomic<int> g_listen_fd{-1};

void RequestStop() {
  g_stop.store(true);
  const int fd = g_listen_fd.load();
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);  // unblocks accept()
  }
}

void HandleSignal(int) { RequestStop(); }

int Usage() {
  std::cerr
      << "usage: sf-serve --socket PATH [options]\n"
         "       sf-serve --stdio [options]\n"
         "\n"
         "  --socket PATH     listen on an AF_UNIX stream socket at PATH\n"
         "  --stdio           serve one NDJSON stream on stdin/stdout\n"
         "  --workers N       compile worker threads (default: 2)\n"
         "  --max-inflight N  admission bound on distinct compile jobs (default: 64)\n"
         "  --quota N         max unfinished requests per client (default: 8)\n"
         "  --cache-dir DIR   persistent program cache directory\n"
         "                    (default: SPACEFUSION_CACHE_DIR; empty disables)\n"
         "  --jit             prewarm native kernels through the JIT cache at\n"
         "                    <cache-dir>/kernels; a warm restart rebuilds nothing\n"
         "\n"
         "protocol: one JSON request per line in, one JSON response per line out;\n"
         "a request with \"model\":\"shutdown\" stops the daemon after the reply.\n";
  return 2;
}

// Handles one request line; sets *stop when the daemon should exit.
std::string HandleLine(ServeServer* server, const std::string& line, bool* stop) {
  StatusOr<ServeRequest> request = ServeRequestFromJson(line);
  if (!request.ok()) {
    ServeResponse bad;
    bad.status = StatusCodeName(request.status().code());
    bad.error = request.status().message();
    return ServeResponseToJson(bad);
  }
  if (request->model == "shutdown") {
    ServeResponse ack;
    ack.id = request->id;
    ack.model = "shutdown";
    *stop = true;
    return ServeResponseToJson(ack);
  }
  return ServeResponseToJson(server->Handle(std::move(request).value()));
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void ServeConnection(ServeServer* server, int fd) {
  std::string buffer;
  char chunk[4096];
  while (!g_stop.load()) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) {
        continue;
      }
      bool stop = false;
      std::string response = HandleLine(server, line, &stop);
      response.push_back('\n');
      if (!WriteAll(fd, response)) {
        ::close(fd);
        return;
      }
      if (stop) {
        RequestStop();
        ::close(fd);
        return;
      }
    }
  }
  ::close(fd);
}

int RunStdio(ServeServer* server) {
  std::string line;
  while (!g_stop.load() && std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;
    }
    bool stop = false;
    std::cout << HandleLine(server, line, &stop) << "\n" << std::flush;
    if (stop) {
      break;
    }
  }
  return 0;
}

int RunSocket(ServeServer* server, const std::string& path) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "sf-serve: socket(): " << std::strerror(errno) << "\n";
    return 1;
  }
  ::unlink(path.c_str());  // a previous daemon's leftover name
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "sf-serve: socket path too long: " << path << "\n";
    ::close(listen_fd);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    std::cerr << "sf-serve: cannot listen on " << path << ": " << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  g_listen_fd.store(listen_fd);
  // Readiness line on stderr: scripts wait for it (or for the socket file).
  std::cerr << "sf-serve: listening on " << path << "\n" << std::flush;

  std::vector<std::thread> connections;
  while (!g_stop.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !g_stop.load()) {
        continue;
      }
      break;
    }
    connections.emplace_back(ServeConnection, server, fd);
  }
  for (std::thread& t : connections) {
    t.join();
  }
  g_listen_fd.store(-1);
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  std::string socket_path;
  bool stdio = false;
  ServeServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--stdio") {
      stdio = true;
      continue;
    }
    if (flag == "--jit") {
      options.prewarm_jit = true;
      continue;
    }
    if (flag == "--socket" || flag == "--workers" || flag == "--max-inflight" ||
        flag == "--quota" || flag == "--cache-dir") {
      if (i + 1 >= argc) {
        return Usage();
      }
      const std::string value = argv[++i];
      if (flag == "--socket") {
        socket_path = value;
      } else if (flag == "--workers") {
        options.workers = std::atoi(value.c_str());
      } else if (flag == "--max-inflight") {
        options.max_inflight_jobs = std::atoi(value.c_str());
      } else if (flag == "--quota") {
        options.per_client_inflight = std::atoi(value.c_str());
      } else {
        options.cache_dir = value;
      }
      continue;
    }
    return Usage();
  }
  if (stdio == !socket_path.empty()) {
    // Exactly one of --stdio / --socket.
    return Usage();
  }
  if (options.workers < 1 || options.max_inflight_jobs < 1 || options.per_client_inflight < 1) {
    return Usage();
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);  // a client hanging up must not kill the daemon

  ServeServer server(options);
  return stdio ? RunStdio(&server) : RunSocket(&server, socket_path);
}

}  // namespace
}  // namespace spacefusion

int main(int argc, char** argv) {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  return spacefusion::Run(argc, argv);
}
