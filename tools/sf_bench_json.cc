// sf-bench-json: compile-time benchmark emitting machine-readable JSON.
//
// Compiles the Table 5 models (BERT, ViT, T5 at batch 32) twice — with the
// staged-fidelity screening default and with screening disabled — and writes
// BENCH_compile.json: per model, the wall compile time, the modeled compile
// seconds (emulated on-GPU tuning + scheduling, the Table 5 metric), the
// config counts at each fidelity stage, whether both modes selected the same
// program, and the resulting speedup. CI uploads the file as an artifact;
// there are no pass/fail thresholds here.
//
// Usage: sf-bench-json [output.json]   (default: BENCH_compile.json)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/spacefusion.h"
#include "src/support/logging.h"

namespace spacefusion {
namespace {

struct ModeResult {
  double wall_ms = 0.0;
  double modeled_s = 0.0;  // Table 5 compile seconds: tuning_s + scheduling
  long long configs_screened = 0;
  long long configs_evaluated = 0;
  std::string fingerprint;
};

ModeResult CompileOnce(const ModelGraph& model, int screen_top_k) {
  CompileOptions options(AmpereA100());
  options.tuner.screen_top_k = screen_top_k;

  auto start = std::chrono::steady_clock::now();
  StatusOr<CompiledModel> compiled = CompileModelWithSpaceFusion(model, options);
  auto end = std::chrono::steady_clock::now();
  SF_CHECK(compiled.ok()) << compiled.status().ToString();

  ModeResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  r.modeled_s = compiled->compile_time.total_s();
  for (const CompiledSubprogram& sub : compiled->unique_subprograms) {
    r.configs_screened += sub.tuning.configs_screened;
    r.configs_evaluated += sub.tuning.configs_tried;
    for (const SmgSchedule& kernel : sub.program.kernels) {
      r.fingerprint += kernel.ToString();
    }
  }
  return r;
}

int Run(const std::string& out_path) {
  SetLogThreshold(LogLevel::kWarning);
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }

  std::fprintf(out, "{\n  \"benchmark\": \"table5_model_compile\",\n  \"arch\": \"A100\",\n");
  std::fprintf(out, "  \"models\": {\n");

  double speedup_log_sum = 0.0;
  int n = 0;
  bool all_identical = true;
  const ModelKind kinds[] = {ModelKind::kBert, ModelKind::kViT, ModelKind::kT5};
  for (ModelKind kind : kinds) {
    std::int64_t seq = kind == ModelKind::kViT ? 224 : 512;
    ModelGraph model = BuildModel(GetModelConfig(kind, /*batch=*/32, seq));

    ModeResult screened = CompileOnce(model, /*screen_top_k=*/-1);
    ModeResult exhaustive = CompileOnce(model, /*screen_top_k=*/0);
    bool identical = screened.fingerprint == exhaustive.fingerprint;
    all_identical = all_identical && identical;
    double speedup = screened.modeled_s > 0 ? exhaustive.modeled_s / screened.modeled_s : 0.0;
    speedup_log_sum += std::log(std::max(speedup, 1e-12));
    ++n;

    std::fprintf(out,
                 "    \"%s\": {\n"
                 "      \"screened\": {\"compile_ms\": %.3f, \"modeled_compile_s\": %.6f, "
                 "\"configs_screened\": %lld, \"configs_evaluated\": %lld},\n"
                 "      \"exhaustive\": {\"compile_ms\": %.3f, \"modeled_compile_s\": %.6f, "
                 "\"configs_screened\": %lld, \"configs_evaluated\": %lld},\n"
                 "      \"fingerprint_identical\": %s,\n"
                 "      \"modeled_speedup\": %.3f,\n"
                 "      \"wall_speedup\": %.3f\n"
                 "    }%s\n",
                 ModelKindName(kind), screened.wall_ms, screened.modeled_s,
                 screened.configs_screened, screened.configs_evaluated, exhaustive.wall_ms,
                 exhaustive.modeled_s, exhaustive.configs_screened, exhaustive.configs_evaluated,
                 identical ? "true" : "false", speedup,
                 screened.wall_ms > 0 ? exhaustive.wall_ms / screened.wall_ms : 0.0,
                 kind == ModelKind::kT5 ? "" : ",");
    std::printf("%-6s modeled %.3fs -> %.3fs (%.2fx), evaluated %lld -> %lld configs, %s\n",
                ModelKindName(kind), exhaustive.modeled_s, screened.modeled_s, speedup,
                exhaustive.configs_evaluated, screened.configs_evaluated,
                identical ? "same program" : "PROGRAM CHANGED");
  }

  double geomean = n > 0 ? std::exp(speedup_log_sum / n) : 0.0;
  std::fprintf(out, "  },\n  \"geomean_modeled_speedup\": %.3f,\n", geomean);
  std::fprintf(out, "  \"all_fingerprints_identical\": %s\n}\n", all_identical ? "true" : "false");
  std::fclose(out);
  std::printf("geomean modeled compile speedup: %.2fx -> %s\n", geomean, out_path.c_str());
  return all_identical ? 0 : 2;
}

}  // namespace
}  // namespace spacefusion

int main(int argc, char** argv) {
  std::string out = argc > 1 ? argv[1] : "BENCH_compile.json";
  return spacefusion::Run(out);
}
