// sf-compile: pass-level compile driver (the counterpart to sf-verify).
//
// Compiles built-in models by name through the CompilerEngine, prints the
// per-model compile-time breakdown / tuning statistics / cache behavior,
// optionally dumps IR after selected passes, and exports timings + the full
// metrics snapshot as JSON. Exit code 0 only when every requested model
// compiled without a diagnostic.
//
//   sf-compile --model all --json COMPILE_times.json
//   sf-compile --model bert --arch H100 --dump-after-pass SlicingPipeline
//   sf-compile --model all --shared-cache   # cross-model program-cache reuse
//   sf-compile --model bert --metrics       # final MetricsSnapshot as text
//   sf-compile --model bert --openmetrics   # Prometheus text exposition
//   sf-compile --model all --report-dir reports/   # per-request CompileReports
//   sf-compile --list
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/codegen/cpp_codegen.h"
#include "src/codegen/triton_codegen.h"
#include "src/core/engine.h"
#include "src/core/model_runner.h"
#include "src/graph/models.h"
#include "src/support/file_util.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {
namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

int Usage() {
  std::cerr
      << "usage: sf-compile [--model NAME|all] [--batch N] [--seq N] [--arch NAME]\n"
         "                  [--mode off|phase|full] [--dump-after-pass PASS[,PASS...]|all]\n"
         "                  [--shared-cache] [--bucketed] [--json PATH] [--report-dir DIR]\n"
         "                  [--emit-kernels DIR] [--metrics] [--metrics-json]\n"
         "                  [--openmetrics] [--list]\n"
         "\n"
         "  --model           built-in model to compile (default: all)\n"
         "  --batch           batch size (default: 1)\n"
         "  --seq             sequence length / image side for ViT (default: 128)\n"
         "  --bucketed        compile through the shape-bucketed path: the shape is\n"
         "                    rounded to its bucket (SPACEFUSION_SHAPE_BUCKETS) and the\n"
         "                    JSON gains shape/bucket/bucket_hit/transfer_seeded\n"
         "  --arch            target architecture: V100, A100, H100 (default: A100)\n"
         "  --mode            verification level (default: SPACEFUSION_VERIFY, else phase)\n"
         "  --dump-after-pass dump compilation artifacts after these passes (stderr)\n"
         "  --shared-cache    serve all models from one engine (cross-model program cache)\n"
         "  --json            write per-model timing/metrics JSON to PATH\n"
         "  --report-dir      write one CompileReport JSON per engine request to DIR\n"
         "                    (same as setting SPACEFUSION_REPORT_DIR)\n"
         "  --emit-kernels    dump the generated code of every compiled kernel to DIR:\n"
         "                    <model>-s<I>-k<J>.cc (native C++ the JIT builds, named\n"
         "                    inside by its content-hash symbol) and .triton (GPU text)\n"
         "  --metrics         print the final MetricsSnapshot as text to stdout\n"
         "  --metrics-json    print the final MetricsSnapshot as JSON to stdout\n"
         "  --openmetrics     print the final snapshot as OpenMetrics exposition\n"
         "  --list            print the built-in model and architecture names and exit\n";
  return 2;
}

StatusOr<ModelKind> ModelKindFromName(const std::string& name) {
  for (ModelKind kind : AllModelKinds()) {
    if (ToLower(ModelKindName(kind)) == ToLower(name)) {
      return kind;
    }
  }
  return NotFound(StrCat("unknown model \"", name, "\""));
}

StatusOr<GpuArch> ArchFromName(const std::string& name) {
  for (const GpuArch& arch : AllArchitectures()) {
    if (ToLower(arch.name) == ToLower(name)) {
      return arch;
    }
  }
  return NotFound(StrCat("unknown architecture \"", name, "\""));
}

struct ModelResult {
  std::string model;
  Status status;
  double wall_ms = 0.0;
  CompiledModel compiled;
};

std::string ModelJson(const ModelResult& r, const CompilerEngine& engine) {
  if (!r.status.ok()) {
    return StrCat("{\"model\":\"", r.model, "\",\"status\":\"", r.status.ToString(), "\"}");
  }
  const CompiledModel& m = r.compiled;
  long long screened = 0;
  long long tried = 0;
  for (const CompiledSubprogram& sub : m.unique_subprograms) {
    screened += sub.tuning.configs_screened;
    tried += sub.tuning.configs_tried;
  }
  CompilerEngine::CacheStats cache = engine.cache_stats();
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "{\"model\":\"%s\",\"status\":\"OK\",\"request_id\":\"%s\",\"wall_ms\":%.3f,"
                "\"unique_subprograms\":%d,\"cache_hits\":%d,"
                "\"compile\":{\"slicing_ms\":%.3f,\"enum_cfg_ms\":%.3f,"
                "\"tuning_s\":%.6f,\"total_s\":%.6f},"
                "\"estimate_us\":%.3f,"
                "\"configs_screened\":%lld,\"configs_tried\":%lld,"
                "\"engine_cache\":{\"hits\":%lld,\"misses\":%lld,\"collisions\":%lld}",
                r.model.c_str(), m.report.request_id.c_str(), r.wall_ms,
                static_cast<int>(m.unique_subprograms.size()), m.cache_hits,
                m.compile_time.slicing_ms, m.compile_time.enum_cfg_ms, m.compile_time.tuning_s,
                m.compile_time.total_s(), m.total.time_us, screened, tried,
                static_cast<long long>(cache.hits), static_cast<long long>(cache.misses),
                static_cast<long long>(cache.collisions));
  std::string json = buf;
  // Shape routing (--bucketed; empty shape/bucket on plain compiles).
  json += StrCat(",\"shape\":\"", m.report.shape, "\",\"bucket\":\"", m.report.bucket,
                 "\",\"bucket_hit\":", m.report.bucket_hit ? "true" : "false",
                 ",\"transfer_seeded\":", m.report.transfer_seeded);
  // Per-pass wall breakdown from the merged CompileReport, so sf-stats can
  // reproduce and diff it per model.
  json += ",\"passes\":{";
  for (size_t i = 0; i < m.report.passes.size(); ++i) {
    char pass_buf[128];
    std::snprintf(pass_buf, sizeof(pass_buf), "%s\"%s\":%.3f", i > 0 ? "," : "",
                  m.report.passes[i].pass.c_str(), m.report.passes[i].wall_ms);
    json += pass_buf;
  }
  json += "}}";
  return json;
}

// --emit-kernels: one .cc (the exact native C++ source the JIT compiles,
// named inside by its content-hash symbol) and one .triton (GPU text) per
// kernel of every unique subprogram. Returns pairs written.
int EmitKernelSources(const std::string& dir, const std::string& model,
                      const CompiledModel& compiled) {
  int written = 0;
  for (size_t s = 0; s < compiled.unique_subprograms.size(); ++s) {
    const ScheduledProgram& program = compiled.unique_subprograms[s].program;
    for (size_t k = 0; k < program.kernels.size(); ++k) {
      const std::string base =
          StrCat(dir, "/", model, "-s", static_cast<int>(s), "-k", static_cast<int>(k));
      StatusOr<CppKernel> cpp = EmitCppKernel(program.kernels[k]);
      Status cc_written = cpp.ok() ? AtomicWriteFile(base + ".cc", cpp.value().source)
                                   : cpp.status();
      Status triton_written =
          AtomicWriteFile(base + ".triton", EmitTritonKernel(program.kernels[k]));
      if (cc_written.ok() && triton_written.ok()) {
        ++written;
      } else {
        std::cerr << "sf-compile: --emit-kernels failed for " << base << ": "
                  << (cc_written.ok() ? triton_written : cc_written).ToString() << "\n";
      }
    }
  }
  return written;
}

int Run(int argc, char** argv) {
  std::string model_arg = "all";
  std::int64_t batch = 1;
  std::int64_t seq = 128;
  GpuArch arch = AmpereA100();
  VerifyMode mode = VerifyModeFromEnv(VerifyMode::kPhase);
  std::string json_path;
  std::string emit_kernels_dir;
  bool shared_cache = false;
  bool bucketed = false;
  bool print_metrics = false;
  bool print_metrics_json = false;
  bool print_openmetrics = false;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--list") {
      for (ModelKind kind : AllModelKinds()) {
        std::cout << ModelKindName(kind) << "\n";
      }
      for (const GpuArch& a : AllArchitectures()) {
        std::cout << a.name << "\n";
      }
      return 0;
    }
    if (flag == "--shared-cache") {
      shared_cache = true;
      continue;
    }
    if (flag == "--bucketed") {
      bucketed = true;
      continue;
    }
    if (flag == "--metrics") {
      print_metrics = true;
      continue;
    }
    if (flag == "--metrics-json") {
      print_metrics_json = true;
      continue;
    }
    if (flag == "--openmetrics") {
      print_openmetrics = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Usage();
    }
    std::string value = argv[++i];
    if (flag == "--model") {
      model_arg = value;
    } else if (flag == "--batch") {
      batch = std::atoll(value.c_str());
    } else if (flag == "--seq") {
      seq = std::atoll(value.c_str());
    } else if (flag == "--arch") {
      StatusOr<GpuArch> parsed = ArchFromName(value);
      if (!parsed.ok()) {
        std::cerr << "sf-compile: " << parsed.status().message() << " (see --list)\n";
        return 2;
      }
      arch = parsed.value();
    } else if (flag == "--mode") {
      StatusOr<VerifyMode> parsed = ParseVerifyMode(value);
      if (!parsed.ok()) {
        std::cerr << "sf-compile: " << parsed.status().message() << "\n";
        return 2;
      }
      mode = parsed.value();
    } else if (flag == "--dump-after-pass") {
      // The PassManager reads the spec from the environment per compile, so
      // the flag is just a setenv (and composes with an inherited value).
      setenv("SPACEFUSION_DUMP_AFTER_PASS", value.c_str(), /*overwrite=*/1);
    } else if (flag == "--json") {
      json_path = value;
    } else if (flag == "--emit-kernels") {
      emit_kernels_dir = value;
    } else if (flag == "--report-dir") {
      // EnvReportSink reads the variable lazily at the first emit, so the
      // flag is just a setenv, like --dump-after-pass.
      setenv("SPACEFUSION_REPORT_DIR", value.c_str(), /*overwrite=*/1);
    } else {
      return Usage();
    }
  }
  if (batch < 1 || seq < 1) {
    std::cerr << "sf-compile: --batch and --seq must be positive\n";
    return 2;
  }

  std::vector<ModelKind> kinds;
  if (ToLower(model_arg) == "all") {
    kinds = AllModelKinds();
  } else {
    StatusOr<ModelKind> kind = ModelKindFromName(model_arg);
    if (!kind.ok()) {
      std::cerr << "sf-compile: " << kind.status().message() << " (see --list)\n";
      return 2;
    }
    kinds.push_back(kind.value());
  }

  CompileOptions options(arch);
  options.verify = mode;
  // One engine per model keeps the per-model timings cold; --shared-cache
  // keeps one engine so structurally repeated subprograms across models are
  // served from the program cache (engine.cache.hits).
  CompilerEngine shared_engine{EngineOptions(options)};

  bool all_ok = true;
  std::string json = StrCat("{\"arch\":\"", arch.name, "\",\"batch\":", batch, ",\"seq\":", seq,
                            ",\"models\":[");
  for (size_t i = 0; i < kinds.size(); ++i) {
    ModelGraph model = BuildModel(GetModelConfig(kinds[i], batch, seq));
    CompilerEngine cold_engine{EngineOptions(options)};
    CompilerEngine& engine = shared_cache ? shared_engine : cold_engine;

    ModelResult r;
    r.model = ModelKindName(kinds[i]);
    auto start = std::chrono::steady_clock::now();
    if (bucketed) {
      StatusOr<ShapeCompileResult> compiled =
          engine.CompileModelForShape(kinds[i], ShapeKey{batch, seq}, options);
      r.wall_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
              .count();
      if (compiled.ok()) {
        r.compiled = std::move(compiled->compiled);
      } else {
        r.status = compiled.status();
        all_ok = false;
      }
    } else {
      StatusOr<CompiledModel> compiled = CompileModelWithSpaceFusion(model, options, &engine);
      r.wall_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
              .count();
      if (compiled.ok()) {
        r.compiled = std::move(compiled).value();
      } else {
        r.status = compiled.status();
        all_ok = false;
      }
    }

    if (i > 0) {
      json += ",";
    }
    json += ModelJson(r, engine);

    std::cout << r.model << " (batch=" << batch << ", seq=" << seq << ", " << arch.name << "): ";
    if (!r.status.ok()) {
      std::cout << "compile rejected\n" << r.status.ToString() << "\n";
      continue;
    }
    CompilerEngine::CacheStats cache = engine.cache_stats();
    std::printf(
        "%d unique subprogram(s), %d repeat hit(s), est %.1f us\n"
        "  scheduling %.2f ms, enumeration %.2f ms, tuning %.3f s, total %.3f s"
        " (wall %.1f ms)\n"
        "  engine cache: %lld hit(s), %lld miss(es), %lld collision(s)\n",
        static_cast<int>(r.compiled.unique_subprograms.size()), r.compiled.cache_hits,
        r.compiled.total.time_us, r.compiled.compile_time.slicing_ms,
        r.compiled.compile_time.enum_cfg_ms, r.compiled.compile_time.tuning_s,
        r.compiled.compile_time.total_s(), r.wall_ms, static_cast<long long>(cache.hits),
        static_cast<long long>(cache.misses), static_cast<long long>(cache.collisions));
    if (!r.compiled.report.bucket.empty()) {
      std::printf("  shape %s -> bucket %s (%s, %lld transfer-seeded config(s))\n",
                  r.compiled.report.shape.c_str(), r.compiled.report.bucket.c_str(),
                  r.compiled.report.bucket_hit ? "bucket hit" : "tuned cold",
                  static_cast<long long>(r.compiled.report.transfer_seeded));
    }
    if (!emit_kernels_dir.empty()) {
      int pairs = EmitKernelSources(emit_kernels_dir, r.model, r.compiled);
      std::printf("  emitted %d kernel source pair(s) to %s\n", pairs, emit_kernels_dir.c_str());
    }
  }
  json += StrCat("],\n\"metrics\":", MetricsRegistry::Global().Snapshot().ToJson(), "}\n");

  if (print_metrics || print_metrics_json || print_openmetrics) {
    MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    if (print_metrics) {
      std::cout << snapshot.ToText();
    }
    if (print_metrics_json) {
      std::cout << snapshot.ToJson() << "\n";
    }
    if (print_openmetrics) {
      std::cout << RenderOpenMetrics(snapshot);
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "sf-compile: cannot write " << json_path << "\n";
      return 2;
    }
    out << json;
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace spacefusion

int main(int argc, char** argv) {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  return spacefusion::Run(argc, argv);
}
