// sf-analyze: standalone static race/alias analysis driver.
//
// Loads built-in models by name, compiles them, and runs the SFV06xx race
// analyzer (src/analysis) over every unique compiled subprogram: cross-block
// write-write and read-write footprint intersection, out-of-plan accesses,
// and spill-slot aliasing. Prints (or exports as JSON) the diagnostic
// report. Exit code 0 means zero findings across every requested model —
// CI runs `sf-analyze --model all` as the clean-schedule gate.
//
//   sf-analyze --model all
//   sf-analyze --model bert --batch 8 --seq 256 --json report.json
//   sf-analyze --list
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/race_analyzer.h"
#include "src/core/compiler.h"
#include "src/graph/models.h"
#include "src/support/string_util.h"

namespace spacefusion {
namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

int Usage() {
  std::cerr << "usage: sf-analyze [--model NAME|all] [--batch N] [--seq N]\n"
               "                  [--json PATH] [--list]\n"
               "\n"
               "  --model   built-in model to analyze (default: all)\n"
               "  --batch   batch size (default: 1)\n"
               "  --seq     sequence length / image side for ViT (default: 128)\n"
               "  --json    write the diagnostic report to PATH as JSON\n"
               "  --list    print the built-in model names and exit\n";
  return 2;
}

StatusOr<ModelKind> ModelKindFromName(const std::string& name) {
  for (ModelKind kind : AllModelKinds()) {
    if (ToLower(ModelKindName(kind)) == ToLower(name)) {
      return kind;
    }
  }
  return NotFound(StrCat("unknown model \"", name, "\""));
}

struct ModelReport {
  std::string model;
  int unique_subprograms = 0;
  DiagnosticReport report;
  Status compile_status;  // non-OK when the compile itself was rejected

  bool ok() const { return compile_status.ok() && report.ok(); }
};

ModelReport AnalyzeModel(ModelKind kind, std::int64_t batch, std::int64_t seq) {
  ModelReport out;
  out.model = ModelKindName(kind);

  ModelGraph model = BuildModel(GetModelConfig(kind, batch, seq));
  Compiler compiler((CompileOptions()));

  StatusOr<CompiledModel> compiled = compiler.CompileModel(model);
  if (!compiled.ok()) {
    out.compile_status = compiled.status();
    return out;
  }

  // The source graph of each unique subprogram is recovered by replaying
  // CompileModel's first-seen dedup order (same scheme as sf-verify).
  std::map<std::uint64_t, bool> seen;
  size_t index = 0;
  for (const Subprogram& sub : model.subprograms) {
    std::uint64_t key = sub.graph.StructuralHash();
    if (seen.count(key) > 0) {
      continue;
    }
    seen.emplace(key, true);
    if (index >= compiled.value().unique_subprograms.size()) {
      break;
    }
    const CompiledSubprogram& unique = compiled.value().unique_subprograms[index++];
    out.report.Merge(AnalyzeCompiledProgram(unique.program, sub.graph));
  }
  out.unique_subprograms = static_cast<int>(index);
  return out;
}

std::string ReportJson(const ModelReport& r) {
  return StrCat("{\"model\":\"", r.model, "\",\"unique_subprograms\":", r.unique_subprograms,
                ",\"compile_status\":\"", r.compile_status.ok() ? "OK" : r.compile_status.ToString(),
                "\",\"report\":", r.report.ToJson(), "}");
}

int Run(int argc, char** argv) {
  std::string model_arg = "all";
  std::int64_t batch = 1;
  std::int64_t seq = 128;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--list") {
      for (ModelKind kind : AllModelKinds()) {
        std::cout << ModelKindName(kind) << "\n";
      }
      return 0;
    }
    if (i + 1 >= argc) {
      return Usage();
    }
    std::string value = argv[++i];
    if (flag == "--model") {
      model_arg = value;
    } else if (flag == "--batch") {
      batch = std::atoll(value.c_str());
    } else if (flag == "--seq") {
      seq = std::atoll(value.c_str());
    } else if (flag == "--json") {
      json_path = value;
    } else {
      return Usage();
    }
  }
  if (batch < 1 || seq < 1) {
    std::cerr << "sf-analyze: --batch and --seq must be positive\n";
    return 2;
  }

  std::vector<ModelKind> kinds;
  if (ToLower(model_arg) == "all") {
    kinds = AllModelKinds();
  } else {
    StatusOr<ModelKind> kind = ModelKindFromName(model_arg);
    if (!kind.ok()) {
      std::cerr << "sf-analyze: " << kind.status().message() << " (see --list)\n";
      return 2;
    }
    kinds.push_back(kind.value());
  }

  bool all_ok = true;
  std::string json = "[";
  for (size_t i = 0; i < kinds.size(); ++i) {
    ModelReport r = AnalyzeModel(kinds[i], batch, seq);
    all_ok = all_ok && r.ok();
    if (i > 0) {
      json += ",";
    }
    json += ReportJson(r);

    std::cout << r.model << " (batch=" << batch << ", seq=" << seq << "): ";
    if (!r.compile_status.ok()) {
      std::cout << "compile rejected\n" << r.compile_status.ToString() << "\n";
    } else if (r.report.empty()) {
      std::cout << r.unique_subprograms << " unique subprogram(s), no findings\n";
    } else {
      std::cout << r.unique_subprograms << " unique subprogram(s), " << r.report.error_count()
                << " finding(s), " << r.report.warning_count() << " warning(s)\n"
                << r.report.ToString() << "\n";
    }
  }
  json += "]";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "sf-analyze: cannot write " << json_path << "\n";
      return 2;
    }
    out << json << "\n";
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace spacefusion

int main(int argc, char** argv) { return spacefusion::Run(argc, argv); }
