// sf-client: command-line client for the sf-serve compile daemon.
//
// Connects to an sf-serve AF_UNIX socket and drives NDJSON compile requests
// through it. One connection per worker thread, so a --threads storm
// exercises the daemon's request coalescing: every thread asks for the same
// model at once and the responses show how many rode along on a single
// compile.
//
//   sf-client --socket /tmp/sf-serve.sock --model bert
//   sf-client --socket /tmp/sf-serve.sock --model all --json
//   sf-client --socket /tmp/sf-serve.sock --model t5 --threads 8 --count 4
//   sf-client --socket /tmp/sf-serve.sock --shutdown
//
// Exit status is 0 only if every request got an ok response.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/protocol.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {
namespace {

int Usage() {
  std::cerr
      << "usage: sf-client --socket PATH [options]\n"
         "\n"
         "  --socket PATH     sf-serve AF_UNIX socket to connect to\n"
         "  --model NAME      bert|albert|t5|vit|llama2|all (default: all)\n"
         "  --batch N         batch size (default: 1)\n"
         "  --seq N[,N...]    sequence length(s); a comma list storms the daemon\n"
         "                    with mixed shapes (default: 128)\n"
         "  --arch NAME       v100|a100|h100 (default: a100)\n"
         "  --client NAME     client id for the daemon's per-client quota\n"
         "  --deadline-ms N   per-request deadline (default: none)\n"
         "  --threads N       concurrent connections (default: 1)\n"
         "  --count N         requests per thread per model (default: 1)\n"
         "  --retry-ms N      keep retrying the connect for N ms (default: 5000)\n"
         "  --json            print raw response lines instead of a summary\n"
         "  --shutdown        send a shutdown request and exit\n";
  return 2;
}

// Connects with retries so "start daemon & run client" scripts need no
// explicit synchronization on the socket appearing.
int ConnectWithRetry(const std::string& path, int retry_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "sf-client: socket path too long: " << path << "\n";
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::milliseconds(retry_ms);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      std::cerr << "sf-client: socket(): " << std::strerror(errno) << "\n";
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= give_up) {
      std::cerr << "sf-client: cannot connect to " << path << ": " << std::strerror(errno)
                << "\n";
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

bool SendLine(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + sent, framed.size() - sent);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool ReadLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      *line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      return false;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

struct ClientConfig {
  std::string socket_path;
  std::vector<std::string> models;
  int batch = 1;
  std::vector<int> seqs = {128};
  std::string arch = "a100";
  std::string client = "sf-client";
  std::int64_t deadline_ms = 0;
  int threads = 1;
  int count = 1;
  int retry_ms = 5000;
  bool json = false;
};

struct Tally {
  std::mutex mu;
  int sent = 0;
  int ok = 0;
  int coalesced = 0;
  int bucket_hits = 0;
  long long transfer_seeded = 0;
  int failed = 0;
};

void RunThread(const ClientConfig& config, int thread_index, Tally* tally) {
  const int fd = ConnectWithRetry(config.socket_path, config.retry_ms);
  if (fd < 0) {
    std::lock_guard<std::mutex> lock(tally->mu);
    tally->failed += config.count * static_cast<int>(config.models.size());
    return;
  }
  std::string buffer;
  for (int i = 0; i < config.count; ++i) {
    for (const std::string& model : config.models) {
     for (const int seq : config.seqs) {
      ServeRequest request;
      request.id = StrCat("t", thread_index, "-", model, "-s", seq, "-", i);
      request.client = config.client;
      request.model = model;
      request.batch = config.batch;
      request.seq = seq;
      request.arch = config.arch;
      request.deadline_ms = config.deadline_ms;
      {
        std::lock_guard<std::mutex> lock(tally->mu);
        ++tally->sent;
      }
      std::string line;
      if (!SendLine(fd, ServeRequestToJson(request)) || !ReadLine(fd, &buffer, &line)) {
        std::lock_guard<std::mutex> lock(tally->mu);
        ++tally->failed;
        std::cerr << "sf-client: connection lost on request " << request.id << "\n";
        ::close(fd);
        return;
      }
      StatusOr<ServeResponse> response = ServeResponseFromJson(line);
      std::lock_guard<std::mutex> lock(tally->mu);
      if (!response.ok()) {
        ++tally->failed;
        std::cerr << "sf-client: unparsable response: " << line << "\n";
        continue;
      }
      if (response->ok()) {
        ++tally->ok;
        if (response->coalesced) {
          ++tally->coalesced;
        }
        if (response->bucket_hit) {
          ++tally->bucket_hits;
        }
        tally->transfer_seeded += response->transfer_seeded;
      } else {
        ++tally->failed;
      }
      if (config.json) {
        std::cout << line << "\n";
      } else if (response->ok()) {
        std::printf(
            "%-14s %-16s outcome=%-14s coalesced=%d shape=%s bucket=%s bucket_hit=%d "
            "time_us=%.3f wall_ms=%.2f\n",
            request.id.c_str(), response->model.c_str(), response->outcome.c_str(),
            response->coalesced ? 1 : 0, response->shape.c_str(), response->bucket.c_str(),
            response->bucket_hit ? 1 : 0, response->estimate.time_us, response->wall_ms);
      } else {
        std::printf("%-14s %-16s %s: %s\n", request.id.c_str(), model.c_str(),
                    response->status.c_str(), response->error.c_str());
      }
     }
    }
  }
  ::close(fd);
}

int SendShutdown(const ClientConfig& config) {
  const int fd = ConnectWithRetry(config.socket_path, config.retry_ms);
  if (fd < 0) {
    return 1;
  }
  std::string buffer;
  std::string line;
  const bool ok = SendLine(fd, "{\"id\":\"shutdown\",\"model\":\"shutdown\"}") &&
                  ReadLine(fd, &buffer, &line);
  ::close(fd);
  if (!ok) {
    std::cerr << "sf-client: shutdown request got no reply\n";
    return 1;
  }
  if (config.json) {
    std::cout << line << "\n";
  }
  return 0;
}

int Run(int argc, char** argv) {
  ClientConfig config;
  std::string model = "all";
  bool shutdown = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      config.json = true;
      continue;
    }
    if (flag == "--shutdown") {
      shutdown = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Usage();
    }
    const std::string value = argv[++i];
    if (flag == "--socket") {
      config.socket_path = value;
    } else if (flag == "--model") {
      model = value;
    } else if (flag == "--batch") {
      config.batch = std::atoi(value.c_str());
    } else if (flag == "--seq") {
      config.seqs.clear();
      size_t start = 0;
      while (start <= value.size()) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos) {
          comma = value.size();
        }
        config.seqs.push_back(std::atoi(value.substr(start, comma - start).c_str()));
        start = comma + 1;
      }
    } else if (flag == "--arch") {
      config.arch = value;
    } else if (flag == "--client") {
      config.client = value;
    } else if (flag == "--deadline-ms") {
      config.deadline_ms = std::atoll(value.c_str());
    } else if (flag == "--threads") {
      config.threads = std::atoi(value.c_str());
    } else if (flag == "--count") {
      config.count = std::atoi(value.c_str());
    } else if (flag == "--retry-ms") {
      config.retry_ms = std::atoi(value.c_str());
    } else {
      return Usage();
    }
  }
  if (config.socket_path.empty() || config.threads < 1 || config.count < 1 ||
      config.batch < 1 || config.seqs.empty()) {
    return Usage();
  }
  for (const int seq : config.seqs) {
    if (seq < 1) {
      return Usage();
    }
  }
  if (shutdown) {
    return SendShutdown(config);
  }
  if (model == "all") {
    config.models = {"bert", "albert", "t5", "vit", "llama2"};
  } else {
    config.models = {model};
  }

  Tally tally;
  std::vector<std::thread> threads;
  threads.reserve(config.threads);
  for (int t = 0; t < config.threads; ++t) {
    threads.emplace_back(RunThread, std::cref(config), t, &tally);
  }
  for (std::thread& t : threads) {
    t.join();
  }

  if (!config.json) {
    std::printf(
        "sf-client: %d sent, %d ok (%d coalesced, %d bucket hits, %lld transfer-seeded), "
        "%d failed\n",
        tally.sent, tally.ok, tally.coalesced, tally.bucket_hits, tally.transfer_seeded,
        tally.failed);
  }
  return tally.failed == 0 && tally.sent > 0 ? 0 : 1;
}

}  // namespace
}  // namespace spacefusion

int main(int argc, char** argv) {
  spacefusion::SetLogThreshold(spacefusion::LogLevel::kWarning);
  return spacefusion::Run(argc, argv);
}
