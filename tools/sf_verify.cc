// sf-verify: standalone phase-boundary verification driver.
//
// Loads built-in models by name, compiles them with the requested
// SPACEFUSION_VERIFY level, re-runs the static checkers over every unique
// compiled subprogram, and prints (or exports as JSON) the diagnostic
// report. Exit code 0 means zero errors across every requested model.
//
//   sf-verify --model all --mode full
//   sf-verify --model bert --batch 8 --seq 256 --json report.json
//   sf-verify --list
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/race_analyzer.h"
#include "src/core/compiler.h"
#include "src/graph/models.h"
#include "src/support/string_util.h"
#include "src/verify/verifier.h"

namespace spacefusion {
namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

int Usage() {
  std::cerr << "usage: sf-verify [--model NAME|all] [--batch N] [--seq N]\n"
               "                 [--mode off|phase|full] [--analyze] [--json PATH]\n"
               "                 [--metrics] [--metrics-json] [--list]\n"
               "\n"
               "  --model        built-in model to verify (default: all)\n"
               "  --batch        batch size (default: 1)\n"
               "  --seq          sequence length / image side for ViT (default: 128)\n"
               "  --mode         verification level (default: SPACEFUSION_VERIFY, else full)\n"
               "  --analyze      additionally run the SFV06xx race analyzer (sf-analyze)\n"
               "  --json         write the diagnostic report to PATH as JSON\n"
               "  --metrics      print the final MetricsSnapshot as text to stdout\n"
               "  --metrics-json print the final MetricsSnapshot as JSON to stdout\n"
               "  --list         print the built-in model names and exit\n";
  return 2;
}

StatusOr<ModelKind> ModelKindFromName(const std::string& name) {
  for (ModelKind kind : AllModelKinds()) {
    if (ToLower(ModelKindName(kind)) == ToLower(name)) {
      return kind;
    }
  }
  return NotFound(StrCat("unknown model \"", name, "\""));
}

struct ModelReport {
  std::string model;
  int unique_subprograms = 0;
  DiagnosticReport report;
  Status compile_status;  // non-OK when the compile itself was rejected

  bool ok() const { return compile_status.ok() && report.ok(); }
};

ModelReport VerifyModel(ModelKind kind, std::int64_t batch, std::int64_t seq, VerifyMode mode,
                        bool analyze) {
  ModelReport out;
  out.model = ModelKindName(kind);

  ModelGraph model = BuildModel(GetModelConfig(kind, batch, seq));
  CompileOptions options;
  options.verify = mode;
  Compiler compiler(options);

  StatusOr<CompiledModel> compiled = compiler.CompileModel(model);
  if (!compiled.ok()) {
    out.compile_status = compiled.status();
    return out;
  }

  // Re-run the checkers over every unique subprogram so warnings (which do
  // not fail the compile) also land in the report. The source graphs are
  // recovered by replaying CompileModel's first-seen dedup order.
  ResourceConfig rc = ResourceConfig::FromArch(options.arch);
  std::map<std::uint64_t, bool> seen;
  size_t index = 0;
  for (const Subprogram& sub : model.subprograms) {
    std::uint64_t key = sub.graph.StructuralHash();
    if (seen.count(key) > 0) {
      continue;
    }
    seen.emplace(key, true);
    if (index >= compiled.value().unique_subprograms.size()) {
      break;
    }
    const CompiledSubprogram& unique = compiled.value().unique_subprograms[index++];
    if (mode != VerifyMode::kOff) {
      DiagnosticReport sub_report = VerifyCompiledProgram(unique.program, sub.graph, rc);
      out.report.Merge(std::move(sub_report));
    }
    if (analyze) {
      out.report.Merge(AnalyzeCompiledProgram(unique.program, sub.graph));
    }
  }
  out.unique_subprograms = static_cast<int>(index);
  return out;
}

std::string ReportJson(const ModelReport& r, VerifyMode mode) {
  return StrCat("{\"model\":\"", r.model, "\",\"mode\":\"", VerifyModeName(mode),
                "\",\"unique_subprograms\":", r.unique_subprograms, ",\"compile_status\":\"",
                r.compile_status.ok() ? "OK" : r.compile_status.ToString(),
                "\",\"report\":", r.report.ToJson(), "}");
}

int Run(int argc, char** argv) {
  std::string model_arg = "all";
  std::int64_t batch = 1;
  std::int64_t seq = 128;
  VerifyMode mode = VerifyModeFromEnv(VerifyMode::kFull);
  std::string json_path;
  bool analyze = false;
  bool print_metrics = false;
  bool print_metrics_json = false;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--analyze") {
      analyze = true;
      continue;
    }
    if (flag == "--list") {
      for (ModelKind kind : AllModelKinds()) {
        std::cout << ModelKindName(kind) << "\n";
      }
      return 0;
    }
    if (flag == "--metrics") {
      print_metrics = true;
      continue;
    }
    if (flag == "--metrics-json") {
      print_metrics_json = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Usage();
    }
    std::string value = argv[++i];
    if (flag == "--model") {
      model_arg = value;
    } else if (flag == "--batch") {
      batch = std::atoll(value.c_str());
    } else if (flag == "--seq") {
      seq = std::atoll(value.c_str());
    } else if (flag == "--mode") {
      StatusOr<VerifyMode> parsed = ParseVerifyMode(value);
      if (!parsed.ok()) {
        std::cerr << "sf-verify: " << parsed.status().message() << "\n";
        return 2;
      }
      mode = parsed.value();
    } else if (flag == "--json") {
      json_path = value;
    } else {
      return Usage();
    }
  }
  if (batch < 1 || seq < 1) {
    std::cerr << "sf-verify: --batch and --seq must be positive\n";
    return 2;
  }

  std::vector<ModelKind> kinds;
  if (ToLower(model_arg) == "all") {
    kinds = AllModelKinds();
  } else {
    StatusOr<ModelKind> kind = ModelKindFromName(model_arg);
    if (!kind.ok()) {
      std::cerr << "sf-verify: " << kind.status().message() << " (see --list)\n";
      return 2;
    }
    kinds.push_back(kind.value());
  }

  bool all_ok = true;
  std::string json = "[";
  for (size_t i = 0; i < kinds.size(); ++i) {
    ModelReport r = VerifyModel(kinds[i], batch, seq, mode, analyze);
    all_ok = all_ok && r.ok();
    if (i > 0) {
      json += ",";
    }
    json += ReportJson(r, mode);

    std::cout << r.model << " (batch=" << batch << ", seq=" << seq
              << ", mode=" << VerifyModeName(mode) << "): ";
    if (!r.compile_status.ok()) {
      std::cout << "compile rejected\n" << r.compile_status.ToString() << "\n";
    } else if (r.report.empty()) {
      std::cout << r.unique_subprograms << " unique subprogram(s), no diagnostics\n";
    } else {
      std::cout << r.unique_subprograms << " unique subprogram(s), " << r.report.error_count()
                << " error(s), " << r.report.warning_count() << " warning(s)\n"
                << r.report.ToString() << "\n";
    }
  }
  json += "]";

  if (print_metrics || print_metrics_json) {
    MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    if (print_metrics) {
      std::cout << snapshot.ToText();
    }
    if (print_metrics_json) {
      std::cout << snapshot.ToJson() << "\n";
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "sf-verify: cannot write " << json_path << "\n";
      return 2;
    }
    out << json << "\n";
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace spacefusion

int main(int argc, char** argv) { return spacefusion::Run(argc, argv); }
