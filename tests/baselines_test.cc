#include <gtest/gtest.h>

#include "src/baselines/baseline.h"
#include "src/baselines/patterns.h"
#include "src/core/model_runner.h"
#include "src/graph/builder.h"
#include "src/graph/subgraphs.h"

namespace spacefusion {
namespace {

// --- Pattern detection -----------------------------------------------------

TEST(PatternTest, DetectsMha) {
  EXPECT_EQ(static_cast<int>(DetectPattern(BuildMha(4, 64, 64, 32))),
            static_cast<int>(GraphPattern::kMha));
}

TEST(PatternTest, DetectsLayerNorm) {
  EXPECT_EQ(static_cast<int>(DetectPattern(BuildLayerNormGraph(64, 64))),
            static_cast<int>(GraphPattern::kLayerNorm));
}

TEST(PatternTest, DetectsGemmChain) {
  EXPECT_EQ(static_cast<int>(DetectPattern(BuildMlp(3, 64, 32, 32))),
            static_cast<int>(GraphPattern::kGemmChain));
  EXPECT_EQ(static_cast<int>(DetectPattern(BuildLstmCell(8, 16, 16))),
            static_cast<int>(GraphPattern::kGemmChain));
  // FFN has matmuls + a variance chain: classified as gemm-chain (TensorRT
  // would handle the GEMMs and the LN separately).
  EXPECT_EQ(static_cast<int>(
                DetectPattern(BuildFfn(16, 32, 64, UnaryKind::kGelu, NormKind::kLayerNorm))),
            static_cast<int>(GraphPattern::kGemmChain));
}

TEST(PatternTest, ExtractsMhaDims) {
  Graph g = BuildMha(6, 48, 96, 32);
  MhaDims d = ExtractMhaDims(g);
  EXPECT_EQ(d.batch_heads, 6);
  EXPECT_EQ(d.seq_q, 48);
  EXPECT_EQ(d.seq_kv, 96);
  EXPECT_EQ(d.head_dim, 32);
}

// --- Unfused / library baselines ---------------------------------------------

TEST(UnfusedTest, OneKernelPerOp) {
  Graph ln = BuildLayerNormGraph(64, 128);
  AddressMap am;
  auto kernels = MakePyTorchBaseline()->Plan(ln, AmpereA100(), &am);
  EXPECT_EQ(kernels.size(), ln.ops().size());  // 9 MI kernels
}

TEST(UnfusedTest, MhaMaterializesProbabilityMatrix) {
  Graph g = BuildMha(8, 512, 512, 64);
  AddressMap am;
  auto kernels = MakePyTorchBaseline()->Plan(g, AmpereA100(), &am);
  std::int64_t total_writes = 0;
  for (const KernelSpec& k : kernels) {
    total_writes += k.TotalWriteBytes();
  }
  // Far more than the boundary outputs: QK-sized intermediates dominate.
  std::int64_t out_bytes = 8 * 512 * 64 * 2;
  EXPECT_GT(total_writes, 10 * out_bytes);
}

TEST(CublasLtTest, FusesGemmEpilogues) {
  Graph mlp = BuildMlp(4, 128, 64, 64);
  AddressMap am;
  auto lt = MakeCublasLtBaseline()->Plan(mlp, AmpereA100(), &am);
  // One kernel per layer (GEMM + bias + ReLU fused).
  EXPECT_EQ(lt.size(), 4u);
  AddressMap am2;
  auto eager = MakeCublasBaseline()->Plan(mlp, AmpereA100(), &am2);
  EXPECT_EQ(eager.size(), 12u);  // 3 kernels per layer
}

TEST(CublasLtTest, LstmEndsUpWithFourKernels) {
  // The paper: cuBLASLt fuses the first GEMM's bias, leaving 4 kernels.
  Graph lstm = BuildLstmCell(32, 64, 64);
  AddressMap am;
  auto lt = MakeCublasLtBaseline()->Plan(lstm, AmpereA100(), &am);
  AddressMap am2;
  auto eager = MakeCublasBaseline()->Plan(lstm, AmpereA100(), &am2);
  EXPECT_LT(lt.size(), eager.size());
}

// --- Hand-fused attention ------------------------------------------------------

TEST(FlashAttentionTest, CudaKernelsLackVoltaSupport) {
  Graph g = BuildMha(8, 256, 256, 64);
  EXPECT_FALSE(MakeFlashAttention1()->Supports(g, VoltaV100()));
  EXPECT_FALSE(MakeFlashAttention2()->Supports(g, VoltaV100()));
  EXPECT_TRUE(MakeTritonFlashAttention()->Supports(g, VoltaV100()));
  EXPECT_TRUE(MakeFlashAttention2()->Supports(g, AmpereA100()));
}

TEST(FlashAttentionTest, OnlySupportsMha) {
  Graph ln = BuildLayerNormGraph(64, 64);
  EXPECT_FALSE(MakeFlashAttention2()->Supports(ln, AmpereA100()));
}

TEST(FlashAttentionTest, Fa2ParallelizesQueries) {
  Graph g = BuildMha(4, 1024, 1024, 64);
  AddressMap am1, am2;
  auto fa1 = MakeFlashAttention1()->Plan(g, AmpereA100(), &am1);
  auto fa2 = MakeFlashAttention2()->Plan(g, AmpereA100(), &am2);
  ASSERT_EQ(fa1.size(), 1u);
  ASSERT_EQ(fa2.size(), 1u);
  EXPECT_GT(fa2[0].grid, fa1[0].grid);
}

TEST(FlashAttentionTest, TrafficIsBoundaryOnly) {
  Graph g = BuildMha(4, 512, 512, 64);
  AddressMap am;
  auto plan = MakeFlashAttention2()->Plan(g, AmpereA100(), &am);
  std::int64_t reads = 0;
  for (const TensorTraffic& r : plan[0].reads) {
    reads += r.unique_bytes;
  }
  EXPECT_EQ(reads, 3 * 4 * 512 * 64 * 2);
}

// --- LayerNorm baselines ----------------------------------------------------------

TEST(LayerNormBaselinesTest, SingleFusedKernel) {
  Graph ln = BuildLayerNormGraph(128, 256);
  for (auto make : {MakeTorchOpLayerNorm, MakeApexLayerNorm, MakeTritonLayerNorm}) {
    auto baseline = make();
    ASSERT_TRUE(baseline->Supports(ln, AmpereA100()));
    AddressMap am;
    EXPECT_EQ(baseline->Plan(ln, AmpereA100(), &am).size(), 1u) << baseline->name();
  }
}

TEST(LayerNormBaselinesTest, TwoPassCostsMoreThanOnePass) {
  Graph ln = BuildLayerNormGraph(16384, 16384);
  GpuArch arch = AmpereA100();
  auto one = EstimateGraphWithBaseline(ln, *MakeTorchOpLayerNorm(), arch);
  auto two = EstimateGraphWithBaseline(ln, *MakeApexLayerNorm(), arch);
  ASSERT_TRUE(one && two);
  EXPECT_GT(two->time_us, one->time_us);
}

// --- Compiler baselines --------------------------------------------------------------

TEST(AStitchTest, FusesMiRunsOnly) {
  Graph g = BuildMha(4, 256, 256, 64);
  AddressMap am;
  auto kernels = MakeAStitchBaseline()->Plan(g, AmpereA100(), &am);
  // GEMM, stitched softmax run, GEMM.
  EXPECT_EQ(kernels.size(), 3u);
}

TEST(AStitchTest, PureMiGraphBecomesOneKernel) {
  Graph ln = BuildLayerNormGraph(128, 128);
  AddressMap am;
  auto kernels = MakeAStitchBaseline()->Plan(ln, AmpereA100(), &am);
  EXPECT_EQ(kernels.size(), 1u);
}

TEST(AStitchTest, NoHopperSupport) {
  Graph ln = BuildLayerNormGraph(64, 64);
  EXPECT_FALSE(MakeAStitchBaseline()->Supports(ln, HopperH100()));
  EXPECT_TRUE(MakeAStitchBaseline()->Supports(ln, AmpereA100()));
}

TEST(WelderTest, VoltaOnly) {
  Graph g = BuildMha(4, 128, 128, 32);
  EXPECT_TRUE(MakeWelderBaseline()->Supports(g, VoltaV100()));
  EXPECT_FALSE(MakeWelderBaseline()->Supports(g, AmpereA100()));
}

TEST(WelderTest, ShortSequenceFusesLongSequencePartitions) {
  GpuArch volta = VoltaV100();
  AddressMap am1, am2;
  auto short_plan = MakeWelderBaseline()->Plan(BuildMha(4, 128, 128, 32), volta, &am1);
  auto long_plan = MakeWelderBaseline()->Plan(BuildMha(4, 2048, 2048, 64), volta, &am2);
  // Without dependency transformation, long sequences cannot stay fused.
  EXPECT_GT(long_plan.size(), short_plan.size());
}

TEST(EngineBaselinesTest, DispatchOnPattern) {
  GpuArch arch = AmpereA100();
  AddressMap am;
  auto trt = MakeTensorRtBaseline();
  EXPECT_EQ(trt->Plan(BuildMha(4, 256, 256, 64), arch, &am).size(), 1u);
  AddressMap am2;
  EXPECT_EQ(trt->Plan(BuildLayerNormGraph(64, 64), arch, &am2).size(), 1u);
  AddressMap am3;
  EXPECT_EQ(trt->Plan(BuildMlp(3, 64, 32, 32), arch, &am3).size(), 3u);  // epilogue fused
}

TEST(EngineBaselinesTest, KernlKeepsTorchGemms) {
  GpuArch arch = AmpereA100();
  AddressMap am;
  auto kernl = MakeKernlBaseline();
  // Kernl does not fuse GEMM epilogues: 3 kernels per MLP layer.
  EXPECT_EQ(kernl->Plan(BuildMlp(2, 64, 32, 32), arch, &am).size(), 6u);
}

TEST(ModelRunnerTest, UnsupportedBaselineReturnsNullopt) {
  ModelGraph model = BuildModel(GetModelConfig(ModelKind::kBert, 1, 128));
  auto result = EstimateModelWithBaseline(model, *MakeWelderBaseline(), AmpereA100());
  EXPECT_FALSE(result.has_value());
  auto on_volta = EstimateModelWithBaseline(model, *MakeWelderBaseline(), VoltaV100());
  EXPECT_TRUE(on_volta.has_value());
}

}  // namespace
}  // namespace spacefusion
