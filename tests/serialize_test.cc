// The persistent-program serialization battery. The warm-start contract of
// sf-serve rests on two properties proved here: serialization is canonical
// (decode + re-encode reproduces the bytes exactly, for every model the
// paper compiles) and deserialization is total over hostile bytes (any
// truncation, bit flip, or mutation yields a Status, never a crash, and
// never silently changes a compile result — the checksum and validators
// catch it first).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/program_store.h"
#include "src/graph/models.h"
#include "src/support/binary_io.h"
#include "src/support/file_util.h"

namespace spacefusion {
namespace {

CompiledModel CompileFor(ModelKind kind) {
  CompilerEngine engine(EngineOptions{});
  ModelGraph model = BuildModel(GetModelConfig(kind, /*batch=*/1, /*seq=*/128));
  StatusOr<CompiledModel> compiled = engine.CompileModel(model);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).value();
}

std::string ModelBytes(const CompiledModel& model) {
  ByteWriter w;
  SerializeCompiledModel(model, &w);
  return w.Take();
}

bool ReportsBitIdentical(const ExecutionReport& a, const ExecutionReport& b) {
  return a.time_us == b.time_us && a.kernel_count == b.kernel_count && a.flops == b.flops &&
         a.dram_bytes == b.dram_bytes && a.l1_accesses == b.l1_accesses &&
         a.l1_misses == b.l1_misses && a.l2_accesses == b.l2_accesses &&
         a.l2_misses == b.l2_misses;
}

// A PersistedProgram with real key context around the model's first
// subprogram, the shape the daemon writes to disk.
PersistedProgram MakePersisted(ModelKind kind) {
  CompiledModel compiled = CompileFor(kind);
  ModelGraph model = BuildModel(GetModelConfig(kind, 1, 128));
  PersistedProgram persisted;
  persisted.arch = "Ampere";
  persisted.options_digest = CompileOptionsDigest(CompileOptions{});
  persisted.fingerprint = model.subprograms.front().graph.StructuralHash();
  persisted.canonical = model.subprograms.front().graph.CanonicalForm();
  persisted.compiled = compiled.unique_subprograms.front();
  persisted.compiled.request_id.clear();  // not persisted (see program_store.h)
  return persisted;
}

TEST(SerializeTest, EveryModelRoundTripsByteIdentical) {
  for (ModelKind kind : AllModelKinds()) {
    CompiledModel original = CompileFor(kind);
    const std::string bytes = ModelBytes(original);

    ByteReader r(bytes);
    CompiledModel reloaded;
    Status status = DeserializeCompiledModel(&r, &reloaded);
    ASSERT_TRUE(status.ok()) << ModelKindName(kind) << ": " << status.ToString();
    EXPECT_EQ(r.remaining(), 0u);

    // Canonical: re-serialization reproduces the exact bytes (request_id is
    // not part of the format, so the originals' ids don't perturb this).
    EXPECT_EQ(ModelBytes(reloaded), ModelBytes(original)) << ModelKindName(kind);

    // Bit-identical modeled results, the warm-start contract.
    EXPECT_TRUE(ReportsBitIdentical(reloaded.total, original.total)) << ModelKindName(kind);
    ASSERT_EQ(reloaded.unique_subprograms.size(), original.unique_subprograms.size());
    for (size_t i = 0; i < reloaded.unique_subprograms.size(); ++i) {
      const CompiledSubprogram& a = reloaded.unique_subprograms[i];
      const CompiledSubprogram& b = original.unique_subprograms[i];
      EXPECT_TRUE(ReportsBitIdentical(a.estimate, b.estimate));
      EXPECT_EQ(a.tuning.simulated_tuning_seconds, b.tuning.simulated_tuning_seconds);
      EXPECT_EQ(a.tuning.best_time_us, b.tuning.best_time_us);
      EXPECT_EQ(a.kernels.size(), b.kernels.size());
      EXPECT_TRUE(a.request_id.empty());  // deliberately dropped
    }
    EXPECT_EQ(reloaded.cache_hits, original.cache_hits);
    EXPECT_EQ(reloaded.compile_time.tuning_s, original.compile_time.tuning_s);
  }
}

TEST(SerializeTest, PersistedProgramRoundTripsByteIdentical) {
  const PersistedProgram persisted = MakePersisted(ModelKind::kBert);
  const std::string blob = EncodePersistedProgram(persisted);

  PersistedProgram decoded;
  Status status = DecodePersistedProgram(blob, &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(decoded.arch, persisted.arch);
  EXPECT_EQ(decoded.options_digest, persisted.options_digest);
  EXPECT_EQ(decoded.fingerprint, persisted.fingerprint);
  EXPECT_EQ(decoded.canonical, persisted.canonical);
  EXPECT_TRUE(ReportsBitIdentical(decoded.compiled.estimate, persisted.compiled.estimate));
  EXPECT_EQ(EncodePersistedProgram(decoded), blob);
}

TEST(SerializeTest, EveryTruncationIsRejectedNotCrash) {
  const std::string blob = EncodePersistedProgram(MakePersisted(ModelKind::kBert));
  ASSERT_GT(blob.size(), 16u);
  PersistedProgram decoded;
  // Every header truncation, then sampled payload truncations.
  for (size_t len = 0; len < 32; ++len) {
    EXPECT_FALSE(DecodePersistedProgram(blob.substr(0, len), &decoded).ok()) << len;
  }
  for (size_t len = 32; len < blob.size(); len += 97) {
    EXPECT_FALSE(DecodePersistedProgram(blob.substr(0, len), &decoded).ok()) << len;
  }
  EXPECT_FALSE(DecodePersistedProgram(blob.substr(0, blob.size() - 1), &decoded).ok());
  // Trailing garbage is also rejected, not ignored.
  EXPECT_FALSE(DecodePersistedProgram(blob + "x", &decoded).ok());
}

TEST(SerializeTest, EveryFlippedByteIsRejected) {
  const std::string blob = EncodePersistedProgram(MakePersisted(ModelKind::kBert));
  PersistedProgram decoded;
  // The 16-byte header exhaustively, the payload sampled: a flip lands in
  // the magic, the version, the checksum, or the checksummed payload — all
  // four must reject.
  for (size_t i = 0; i < blob.size(); i = i < 16 ? i + 1 : i + 131) {
    std::string mutated = blob;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    EXPECT_FALSE(DecodePersistedProgram(mutated, &decoded).ok()) << "offset " << i;
  }
}

TEST(SerializeTest, FutureSchemaVersionIsUnsupported) {
  std::string blob = EncodePersistedProgram(MakePersisted(ModelKind::kBert));
  // Bytes 4..7 are the little-endian schema version.
  blob[4] = static_cast<char>(kProgramBlobSchemaVersion + 1);
  PersistedProgram decoded;
  Status status = DecodePersistedProgram(blob, &decoded);
  EXPECT_EQ(status.code(), StatusCode::kUnsupported) << status.ToString();

  blob[4] = 0;  // version 0 never existed: corrupt, not "old"
  EXPECT_EQ(DecodePersistedProgram(blob, &decoded).code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, CacheDistinguishesMissStaleAndCorrupt) {
  const std::string dir = testing::TempDir() + "/sf_serialize_cache";
  std::filesystem::remove_all(dir);
  PersistentProgramCache cache(dir);
  const PersistedProgram persisted = MakePersisted(ModelKind::kBert);
  const std::uint64_t fp = persisted.fingerprint;
  const std::uint64_t digest = persisted.options_digest;

  CompiledSubprogram out;
  std::string detail;
  // Nothing stored yet.
  EXPECT_EQ(cache.Load(fp, digest, "Ampere", persisted.canonical, &out),
            PersistentProgramCache::LoadResult::kMiss);

  ASSERT_TRUE(cache.Store(fp, digest, "Ampere", persisted.canonical, persisted.compiled).ok());
  EXPECT_EQ(cache.Load(fp, digest, "Ampere", persisted.canonical, &out),
            PersistentProgramCache::LoadResult::kHit);
  EXPECT_TRUE(ReportsBitIdentical(out.estimate, persisted.compiled.estimate));

  // Same file, different requesting context: stale, with a reason.
  EXPECT_EQ(cache.Load(fp, digest, "Volta", persisted.canonical, &out, &detail),
            PersistentProgramCache::LoadResult::kStale);
  EXPECT_FALSE(detail.empty());
  EXPECT_EQ(cache.Load(fp, digest, "Ampere", persisted.canonical + "!", &out),
            PersistentProgramCache::LoadResult::kStale);

  // Garbage at the entry path: corrupt, never a crash.
  ASSERT_TRUE(AtomicWriteFile(cache.EntryPath(fp, digest), "not a program blob").ok());
  EXPECT_EQ(cache.Load(fp, digest, "Ampere", persisted.canonical, &out, &detail),
            PersistentProgramCache::LoadResult::kCorrupt);
  EXPECT_FALSE(detail.empty());

  // Empty file (e.g. a crashed non-atomic writer would leave one): corrupt.
  ASSERT_TRUE(AtomicWriteFile(cache.EntryPath(fp, digest), "").ok());
  EXPECT_EQ(cache.Load(fp, digest, "Ampere", persisted.canonical, &out),
            PersistentProgramCache::LoadResult::kCorrupt);
}

// Deterministic xorshift64 so the fuzz corpus is identical on every run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

 private:
  std::uint64_t state_;
};

TEST(SerializeTest, FuzzedBlobsNeverCrashTheDecoder) {
  const std::string blob = EncodePersistedProgram(MakePersisted(ModelKind::kViT));
  Rng rng(0x5eedf00dULL);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = blob;
    // 1-8 byte mutations, sometimes followed by a truncation. A "mutation"
    // can write the byte already there, so an accepted decode is legal only
    // for a blob that is still byte-identical to the original.
    const int flips = 1 + static_cast<int>(rng.Next() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Next() % mutated.size()] = static_cast<char>(rng.Next());
    }
    if (rng.Next() % 4 == 0) {
      mutated.resize(rng.Next() % (mutated.size() + 1));
    }
    PersistedProgram decoded;
    if (DecodePersistedProgram(mutated, &decoded).ok()) {
      EXPECT_EQ(mutated, blob);
    }
  }
}

TEST(SerializeTest, FuzzedPayloadsNeverCrashTheValidators) {
  // The checksum shields DecodePersistedProgram from most mutations; the
  // structural validators behind it must hold on their own. Feed mutated
  // *payload* bytes straight to DeserializeCompiledModel.
  CompiledModel model = CompileFor(ModelKind::kT5);
  const std::string bytes = ModelBytes(model);
  Rng rng(0xf022edULL);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = bytes;
    const int flips = 1 + static_cast<int>(rng.Next() % 6);
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Next() % mutated.size()] = static_cast<char>(rng.Next());
    }
    if (rng.Next() % 3 == 0) {
      mutated.resize(rng.Next() % (mutated.size() + 1));
    }
    ByteReader r(mutated);
    CompiledModel reloaded;
    // Either outcome is legal (a flip inside a double payload decodes
    // fine); crashing or hanging is not — and an accepted decode must
    // re-serialize canonically.
    if (DeserializeCompiledModel(&r, &reloaded).ok() && r.remaining() == 0) {
      EXPECT_EQ(ModelBytes(reloaded), mutated);
    }
  }
}

}  // namespace
}  // namespace spacefusion
