#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/builder.h"
#include "src/graph/subgraphs.h"
#include "src/slicing/slicers.h"
#include "src/smg/smg_builder.h"

namespace spacefusion {
namespace {

SmgBuildResult Build(const Graph& g) {
  auto built = BuildSmg(g);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

DimId DimWithExtent(const Smg& smg, std::int64_t extent) {
  for (DimId d = 0; d < smg.num_dims(); ++d) {
    if (smg.dim(d).extent == extent) {
      return d;
    }
  }
  return kNoDim;
}

// --- Dim classification (paper Table 3) -----------------------------------

TEST(DimAnalysisTest, MhaClassesMatchTable3) {
  Graph g = BuildMha(/*bh=*/4, /*sq=*/32, /*skv=*/48, /*d=*/16);
  SmgBuildResult built = Build(g);
  const Smg& smg = built.smg;

  DimId bh = DimWithExtent(smg, 4);
  DimId sq = DimWithExtent(smg, 32);
  DimId skv = DimWithExtent(smg, 48);
  ASSERT_NE(bh, kNoDim);
  ASSERT_NE(sq, kNoDim);
  ASSERT_NE(skv, kNoDim);

  // Batch-heads: every space carries it (except weights-free graph inputs
  // lacking it only via the scale constant's input O2As) -> spatially ok.
  EXPECT_TRUE(AnalyzeDim(smg, bh).SpatialSliceable());
  // Query rows: only input One-to-Alls (K, V reuse) -> spatially ok.
  DimAnalysis sq_analysis = AnalyzeDim(smg, sq);
  EXPECT_TRUE(sq_analysis.SpatialSliceable());
  // KV sequence: carries the dependent All-to-One chain.
  DimAnalysis skv_analysis = AnalyzeDim(smg, skv);
  EXPECT_EQ(static_cast<int>(skv_analysis.cls), static_cast<int>(DimClass::kDependentA2O));
  EXPECT_FALSE(skv_analysis.SpatialSliceable());
  EXPECT_EQ(skv_analysis.all_to_ones.size(), 3u);  // max, sum, dot
}

TEST(DimAnalysisTest, LayerNormVarianceChainIsDependent) {
  Graph g = BuildLayerNormGraph(16, 64);
  SmgBuildResult built = Build(g);
  DimId n = DimWithExtent(built.smg, 64);
  DimAnalysis analysis = AnalyzeDim(built.smg, n);
  EXPECT_EQ(static_cast<int>(analysis.cls), static_cast<int>(DimClass::kDependentA2O));
}

TEST(DimAnalysisTest, SingleGemmContractionIsIndependent) {
  GraphBuilder b("gemm");
  TensorId x = b.Input("x", Shape({8, 32}));
  TensorId w = b.Weight("w", Shape({32, 16}));
  b.MarkOutput(b.MatMul(x, w));
  Graph g = b.Build();
  SmgBuildResult built = Build(g);
  DimId k = DimWithExtent(built.smg, 32);
  DimAnalysis analysis = AnalyzeDim(built.smg, k);
  EXPECT_EQ(static_cast<int>(analysis.cls), static_cast<int>(DimClass::kIndependentA2O));
}

TEST(DimAnalysisTest, FreeDimHasNoMappings) {
  // A pure element-wise graph: every dim is free.
  GraphBuilder b("ew");
  TensorId x = b.Input("x", Shape({8, 8}));
  b.MarkOutput(b.Relu(x));
  Graph g = b.Build();
  SmgBuildResult built = Build(g);
  for (DimId d = 0; d < built.smg.num_dims(); ++d) {
    EXPECT_EQ(static_cast<int>(AnalyzeDim(built.smg, d).cls),
              static_cast<int>(DimClass::kFree));
  }
}

// --- Spatial slicer ---------------------------------------------------------

TEST(SpatialSlicerTest, MhaSlicesBatchAndQueryRows) {
  Graph g = BuildMha(4, 32, 48, 16);
  SmgBuildResult built = Build(g);
  std::vector<DimId> dims = SpatialSlicer::GetDims(built.smg);
  // Exactly bh and seq_q (head_dim of the output is reused... check).
  ASSERT_FALSE(dims.empty());
  const Smg& smg = built.smg;
  for (DimId d : dims) {
    EXPECT_TRUE(AnalyzeDim(smg, d).SpatialSliceable());
  }
  // The kv dim must NOT be spatially sliceable.
  DimId skv = DimWithExtent(smg, 48);
  EXPECT_EQ(std::count(dims.begin(), dims.end(), skv), 0);
}

TEST(SpatialSlicerTest, LayerNormSlicesRowsOnly) {
  Graph g = BuildLayerNormGraph(128, 64);
  SmgBuildResult built = Build(g);
  std::vector<DimId> dims = SpatialSlicer::GetDims(built.smg);
  ASSERT_EQ(dims.size(), 1u);
  EXPECT_EQ(built.smg.dim(dims[0]).extent, 128);
}

TEST(SpatialSlicerTest, MlpSlicesBatchRowsOnly) {
  Graph g = BuildMlp(3, 256, 64, 64);
  SmgBuildResult built = Build(g);
  std::vector<DimId> dims = SpatialSlicer::GetDims(built.smg);
  ASSERT_EQ(dims.size(), 1u);
  EXPECT_EQ(built.smg.dim(dims[0]).extent, 256);
}

// --- Temporal slicer --------------------------------------------------------

TEST(TemporalSlicerTest, MhaPicksKvSequence) {
  Graph g = BuildMha(4, 32, 512, 16);
  SmgBuildResult built = Build(g);
  std::vector<DimId> spatial = SpatialSlicer::GetDims(built.smg);
  auto choice = TemporalSlicer::GetPriorDim(g, built, spatial);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_EQ(built.smg.dim(choice->dim).extent, 512);
  EXPECT_EQ(choice->plan.aggregations.size(), 3u);
  EXPECT_TRUE(choice->plan.AnyUpdate());
}

TEST(TemporalSlicerTest, UtaDisabledRejectsMhaKvDim) {
  Graph g = BuildMha(4, 32, 512, 16);
  SmgBuildResult built = Build(g);
  std::vector<DimId> spatial = SpatialSlicer::GetDims(built.smg);
  auto choice = TemporalSlicer::GetPriorDim(g, built, spatial, /*allow_uta=*/false);
  if (choice.ok()) {
    // A fallback dim may exist (an independent contraction), but it must not
    // be the kv dim and must not need update functions.
    EXPECT_NE(built.smg.dim(choice->dim).extent, 512);
    EXPECT_FALSE(choice->plan.AnyUpdate());
  }
}

TEST(TemporalSlicerTest, PriorityFollowsDataVolume) {
  Graph g = BuildMha(2, 16, 256, 8);
  SmgBuildResult built = Build(g);
  std::vector<DimId> spatial = SpatialSlicer::GetDims(built.smg);
  std::vector<DimId> candidates = TemporalSlicer::CandidateDims(built.smg, spatial);
  ASSERT_GE(candidates.size(), 2u);
  EXPECT_GE(built.smg.DataVolumeAlongDim(candidates[0]),
            built.smg.DataVolumeAlongDim(candidates[1]));
}

// --- Update-function generation (paper Fig. 8) ------------------------------

TEST(UpdateFunctionsTest, MhaUpdateFunctionsMatchPaper) {
  Graph g = BuildMha(2, 16, 64, 8);
  SmgBuildResult built = Build(g);
  DimId skv = DimWithExtent(built.smg, 64);
  auto plan = DeriveTemporalPlan(g, built, skv);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->aggregations.size(), 3u);

  const ReductionAggregation& max_agg = plan->aggregations[0];
  const ReductionAggregation& sum_agg = plan->aggregations[1];
  const ReductionAggregation& out_agg = plan->aggregations[2];

  // Max: running max, no update (aggrMax in the paper's Fig. 7).
  EXPECT_EQ(static_cast<int>(max_agg.combiner), static_cast<int>(ReduceOpKind::kMax));
  EXPECT_FALSE(max_agg.NeedsUpdate());

  // Sum: updateSum(old) = old * exp(max_old - max_new).
  EXPECT_EQ(static_cast<int>(sum_agg.combiner), static_cast<int>(ReduceOpKind::kSum));
  ASSERT_EQ(sum_agg.update.size(), 1u);
  EXPECT_EQ(static_cast<int>(sum_agg.update[0].prim), static_cast<int>(FactorPrim::kExpNeg));
  EXPECT_EQ(sum_agg.update[0].power, 1);
  EXPECT_EQ(sum_agg.update[0].source, max_agg.op);

  // Out: updateOut(old) = old * sum_old/sum_new * exp(max_old - max_new).
  ASSERT_EQ(out_agg.update.size(), 2u);
  bool has_exp = false, has_ratio = false;
  for (const UpdateFactor& f : out_agg.update) {
    if (f.prim == FactorPrim::kExpNeg && f.source == max_agg.op && f.power == 1) {
      has_exp = true;
    }
    if (f.prim == FactorPrim::kIdent && f.source == sum_agg.op && f.power == -1) {
      has_ratio = true;
    }
  }
  EXPECT_TRUE(has_exp);
  EXPECT_TRUE(has_ratio);
}

TEST(UpdateFunctionsTest, FactorMultiplierValues) {
  UpdateFactor exp_f;
  exp_f.prim = FactorPrim::kExpNeg;
  exp_f.power = 1;
  EXPECT_NEAR(exp_f.Multiplier(2.0f, 3.0f), std::exp(-1.0f), 1e-6f);

  UpdateFactor ratio;
  ratio.prim = FactorPrim::kIdent;
  ratio.power = -1;
  EXPECT_NEAR(ratio.Multiplier(4.0f, 8.0f), 0.5f, 1e-6f);

  UpdateFactor square;
  square.prim = FactorPrim::kIdent;
  square.power = 2;
  EXPECT_NEAR(square.Multiplier(2.0f, 4.0f), 4.0f, 1e-6f);
}

TEST(UpdateFunctionsTest, LayerNormChainIsNotPostposable) {
  // mean -> (x - mean)^2 -> mean: the square blocks postposition, so the
  // norm dim must be rejected (paper Table 3's dagger case).
  Graph g = BuildLayerNormGraph(16, 64);
  SmgBuildResult built = Build(g);
  DimId n = DimWithExtent(built.smg, 64);
  auto plan = DeriveTemporalPlan(g, built, n);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnsupported);
}

TEST(UpdateFunctionsTest, StandaloneSoftmaxOutputStreamsStale) {
  // softmax's own output extends along the reduced dim and depends on the
  // running sum: slicing it would write stale slices -> rejected.
  GraphBuilder b("softmax");
  TensorId x = b.Input("x", Shape({16, 64}));
  b.MarkOutput(b.Softmax(x));
  Graph g = b.Build();
  SmgBuildResult built = Build(g);
  DimId n = DimWithExtent(built.smg, 64);
  auto plan = DeriveTemporalPlan(g, built, n);
  EXPECT_FALSE(plan.ok());
}

TEST(UpdateFunctionsTest, IndependentContractionUsesSimpleAggregate) {
  GraphBuilder b("gemm");
  TensorId x = b.Input("x", Shape({8, 128}));
  TensorId w = b.Weight("w", Shape({128, 16}));
  b.MarkOutput(b.MatMul(x, w));
  Graph g = b.Build();
  SmgBuildResult built = Build(g);
  DimId k = DimWithExtent(built.smg, 128);
  auto plan = DeriveTemporalPlan(g, built, k);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->aggregations.size(), 1u);
  EXPECT_FALSE(plan->AnyUpdate());
  EXPECT_EQ(static_cast<int>(plan->aggregations[0].combiner),
            static_cast<int>(ReduceOpKind::kSum));
}

TEST(UpdateFunctionsTest, PureStreamingDimHasEmptyPlan) {
  GraphBuilder b("bias");
  TensorId x = b.Input("x", Shape({8, 64}));
  TensorId bias = b.Weight("bias", Shape({64}));
  b.MarkOutput(b.Add(x, bias));
  Graph g = b.Build();
  SmgBuildResult built = Build(g);
  for (DimId d = 0; d < built.smg.num_dims(); ++d) {
    auto plan = DeriveTemporalPlan(g, built, d);
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(plan->aggregations.empty());
  }
}

TEST(UpdateFunctionsTest, PlanToStringMentionsFactors) {
  Graph g = BuildMha(2, 16, 64, 8);
  SmgBuildResult built = Build(g);
  DimId skv = DimWithExtent(built.smg, 64);
  auto plan = DeriveTemporalPlan(g, built, skv);
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString(g);
  EXPECT_NE(text.find("exp("), std::string::npos);
  EXPECT_NE(text.find("combiner=max"), std::string::npos);
}

}  // namespace
}  // namespace spacefusion
