// JIT execution battery: the native-codegen path (cpp_codegen -> jit_cache
// -> JitExecutor) must produce the interpreter's answers on every workload,
// warm-start from disk without re-invoking the toolchain, and degrade to
// the interpreter — never crash — on corrupt cache entries or a broken
// toolchain.
//
// Tolerance policy (see DESIGN.md "Native codegen & JIT kernel cache"): the
// emitted C++ replays the interpreter's exact per-element operation order
// and is built with -ffp-contract=off. On x86-64 without FMA codegen the
// host build cannot contract either, so outputs are bit-identical; on other
// targets we allow a tight relative tolerance.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/codegen/cpp_codegen.h"
#include "src/codegen/jit_cache.h"
#include "src/core/model_runner.h"
#include "src/core/spacefusion.h"
#include "src/exec/jit_executor.h"
#include "src/graph/models.h"
#include "src/graph/subgraphs.h"
#include "src/support/file_util.h"
#include "src/support/thread_pool.h"
#include "tests/random_graph.h"

namespace spacefusion {
namespace {

using testing_util::RandomGraph;

#if defined(__x86_64__) && !defined(__FMA__)
// Host build can't contract a*b+c into fma, and the jit flags forbid it:
// the native kernels replay the interpreter bit for bit.
constexpr float kParityTolerance = 0.0f;
#else
constexpr float kParityTolerance = 1e-4f;
#endif

std::string UniqueTestDir(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "sf-jit-test-" + std::to_string(::getpid()) + "-" + tag + "-" +
         std::to_string(counter++);
}

// One kernel cache shared by every parity test in the process: kernels are
// content-addressed, so reuse across tests is exactly the production
// behavior and keeps the battery from re-invoking the toolchain for
// identical shapes.
JitExecutor& SharedExecutor() {
  static JitExecutor* executor = []() {
    JitExecutorOptions options;
    options.cache.dir = UniqueTestDir("shared");
    return new JitExecutor(options);
  }();
  return *executor;
}

StatusOr<CompiledSubprogram> CompileGraph(const Graph& g) {
  Compiler compiler{CompileOptions(AmpereA100())};
  return compiler.Compile(g);
}

// Compiles `g`, runs the program through the interpreter and through
// `executor`, and checks every graph output against both the interpreter
// and the unfused reference.
void ExpectJitMatchesInterpreter(const Graph& g, std::uint64_t seed, JitExecutor& executor,
                                 float tolerance = kParityTolerance) {
  StatusOr<CompiledSubprogram> compiled = CompileGraph(g);
  ASSERT_TRUE(compiled.ok()) << g.ToString() << "\n" << compiled.status().ToString();

  TensorEnv inputs = MakeGraphInputs(g, seed);
  TensorEnv interpreted;
  ASSERT_TRUE(RunScheduledProgram(compiled->program, g, inputs, &interpreted).ok());

  TensorEnv jitted;
  Status st = executor.RunProgram(compiled->program, g, inputs, &jitted);
  ASSERT_TRUE(st.ok()) << st.ToString();

  TensorEnv reference = inputs;
  RunReference(g, &reference);

  for (TensorId out : g.OutputIds()) {
    const size_t i = static_cast<size_t>(out);
    EXPECT_LE(MaxRelDiff(jitted[i], interpreted[i]), tolerance)
        << "jit diverges from interpreter on " << g.tensor(out).name << "\n"
        << g.ToString();
    EXPECT_LT(MaxRelDiff(jitted[i], reference[i]), 1e-2f)
        << "jit diverges from reference on " << g.tensor(out).name << "\n"
        << g.ToString();
  }
}

class JitExecutorTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetGlobalThreadPool(); }
};

TEST_F(JitExecutorTest, MhaMatchesInterpreter) {
  Graph g = BuildMha(/*batch_heads=*/4, /*seq_q=*/32, /*seq_kv=*/32, /*head_dim=*/16);
  ExpectJitMatchesInterpreter(g, /*seed=*/11, SharedExecutor());
  EXPECT_GT(SharedExecutor().stats().jit_runs, 0);
  EXPECT_EQ(SharedExecutor().stats().fallbacks, 0);
}

TEST_F(JitExecutorTest, MaskedMhaMatchesInterpreter) {
  Graph g = BuildMha(/*batch_heads=*/2, /*seq_q=*/24, /*seq_kv=*/24, /*head_dim=*/8,
                     /*masked=*/true);
  ExpectJitMatchesInterpreter(g, /*seed=*/12, SharedExecutor());
}

TEST_F(JitExecutorTest, LayerNormMatchesInterpreter) {
  Graph g = BuildLayerNormGraph(/*m=*/48, /*n=*/96);
  ExpectJitMatchesInterpreter(g, /*seed=*/13, SharedExecutor());
}

TEST_F(JitExecutorTest, MlpMatchesInterpreter) {
  Graph g = BuildMlp(/*num_layers=*/3, /*m=*/16, /*n=*/32, /*k=*/24);
  ExpectJitMatchesInterpreter(g, /*seed=*/14, SharedExecutor());
}

TEST_F(JitExecutorTest, FfnMatchesInterpreter) {
  Graph g = BuildFfn(/*tokens=*/32, /*hidden=*/48, /*ffn_dim=*/96, UnaryKind::kGelu,
                     NormKind::kLayerNorm);
  ExpectJitMatchesInterpreter(g, /*seed=*/15, SharedExecutor());
}

TEST_F(JitExecutorTest, SwigluFfnMatchesInterpreter) {
  Graph g = BuildSwigluFfn(/*tokens=*/24, /*hidden=*/32, /*ffn_dim=*/64);
  ExpectJitMatchesInterpreter(g, /*seed=*/16, SharedExecutor());
}

// Acceptance criterion: SPACEFUSION_EXEC=jit runs all 5 zoo models with
// outputs matching the interpreter within the documented tolerance.
TEST_F(JitExecutorTest, AllZooModelsMatchInterpreter) {
  for (ModelKind kind : AllModelKinds()) {
    ModelGraph model = BuildModel(GetModelConfig(kind, /*batch=*/1, /*seq=*/64));
    // Parity per unique subprogram graph: repetitions execute the same
    // kernels on different values, which adds runtime but no coverage.
    std::vector<std::string> seen;
    std::uint64_t seed = 100;
    for (const Subprogram& sub : model.subprograms) {
      std::string print = sub.graph.ToString();
      bool dup = false;
      for (const std::string& s : seen) {
        dup = dup || s == print;
      }
      if (dup) {
        continue;
      }
      seen.push_back(print);
      SCOPED_TRACE(std::string(ModelKindName(kind)) + " / " + sub.graph.name());
      ExpectJitMatchesInterpreter(sub.graph, seed++, SharedExecutor());
    }
  }
  EXPECT_EQ(SharedExecutor().stats().fallbacks, 0);
}

// A broken toolchain must not break execution: every kernel falls back to
// the interpreter and the program still produces reference answers.
TEST_F(JitExecutorTest, BrokenToolchainFallsBackToInterpreter) {
  JitExecutorOptions options;
  options.cache.dir = UniqueTestDir("broken-toolchain");
  options.cache.compiler = "/bin/false";
  JitExecutor executor(options);

  Graph g = BuildLayerNormGraph(/*m=*/16, /*n=*/32);
  ExpectJitMatchesInterpreter(g, /*seed=*/21, executor, /*tolerance=*/0.0f);
  EXPECT_EQ(executor.stats().jit_runs, 0);
  EXPECT_GT(executor.stats().fallbacks, 0);
  EXPECT_GT(executor.cache().stats().failures, 0);
}

// Differential corpus: random graphs, one executor, jit vs interpreter.
class JitDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { ResetGlobalThreadPool(); }
};

TEST_P(JitDifferentialTest, JitMatchesInterpreterOnRandomGraphs) {
  // Seed stride disjoint from fuzz_test's and differential_test's corpora.
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 40503001ULL + 17;
  Graph g = RandomGraph(seed);
  ASSERT_TRUE(g.Validate().ok());
  ExpectJitMatchesInterpreter(g, seed ^ 0xA5, SharedExecutor());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitDifferentialTest, ::testing::Range(0, 8));

class JitCacheTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetGlobalThreadPool(); }

  // Emits the single-kernel program for a small graph.
  CppKernel EmitOneKernel(const Graph& g) {
    StatusOr<CompiledSubprogram> compiled = CompileGraph(g);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    EXPECT_FALSE(compiled->program.kernels.empty());
    StatusOr<CppKernel> kernel = EmitCppKernel(compiled->program.kernels[0]);
    EXPECT_TRUE(kernel.ok()) << kernel.status().ToString();
    return kernel.value();
  }
};

// Acceptance criterion: a second process pointed at the same cache dir
// performs ZERO toolchain invocations.
TEST_F(JitCacheTest, WarmStartFromDiskSkipsToolchain) {
  const std::string dir = UniqueTestDir("warm");
  CppKernel kernel = EmitOneKernel(BuildLayerNormGraph(8, 16));

  JitCacheOptions cold_options;
  cold_options.dir = dir;
  {
    JitKernelCache cold(cold_options);
    StatusOr<JitKernelCache::Kernel> built = cold.GetOrBuild(kernel);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    EXPECT_TRUE(built->built);
    EXPECT_EQ(cold.stats().toolchain_invocations, 1);
    // Second lookup in the same process: in-memory hit, still one build.
    ASSERT_TRUE(cold.GetOrBuild(kernel).ok());
    EXPECT_EQ(cold.stats().memory_hits, 1);
    EXPECT_EQ(cold.stats().toolchain_invocations, 1);
  }

  // "Restarted" cache on the same directory: served from disk, no build.
  JitKernelCache warm(cold_options);
  StatusOr<JitKernelCache::Kernel> loaded = warm.GetOrBuild(kernel);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->from_disk);
  EXPECT_FALSE(loaded->built);
  EXPECT_EQ(warm.stats().toolchain_invocations, 0);
  EXPECT_EQ(warm.stats().disk_hits, 1);
}

TEST_F(JitCacheTest, CorruptEntryIsEvictedAndRebuilt) {
  const std::string dir = UniqueTestDir("corrupt");
  CppKernel kernel = EmitOneKernel(BuildLayerNormGraph(8, 16));

  JitCacheOptions options;
  options.dir = dir;
  std::string so_path;
  {
    JitKernelCache cache(options);
    StatusOr<JitKernelCache::Kernel> built = cache.GetOrBuild(kernel);
    ASSERT_TRUE(built.ok());
    so_path = dir + "/";
    char hex[20];
    std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(built->key));
    so_path += std::string(hex) + ".sfk.so";
  }
  // Truncate the .so into garbage.
  {
    std::ofstream f(so_path, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(f.good());
    f << "not an ELF object";
  }

  JitKernelCache cache(options);
  StatusOr<JitKernelCache::Kernel> rebuilt = cache.GetOrBuild(kernel);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(rebuilt->built);
  EXPECT_EQ(cache.stats().corrupt, 1);
  EXPECT_EQ(cache.stats().builds, 1);
}

// A valid shared object that lacks the expected symbol (e.g. written by a
// different emitter version at the same path) is corrupt, not a crash.
TEST_F(JitCacheTest, StaleSymbolIsCorrupt) {
  const std::string dir = UniqueTestDir("stale");
  CppKernel a = EmitOneKernel(BuildLayerNormGraph(8, 16));
  CppKernel b = EmitOneKernel(BuildLayerNormGraph(12, 16));
  ASSERT_NE(a.key, b.key);

  JitCacheOptions options;
  options.dir = dir;
  auto entry_so = [&](std::uint64_t entry_key) {
    char hex[20];
    std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(entry_key));
    return dir + "/" + std::string(hex) + ".sfk.so";
  };

  std::uint64_t a_entry = 0;
  {
    JitKernelCache cache(options);
    StatusOr<JitKernelCache::Kernel> built = cache.GetOrBuild(a);
    ASSERT_TRUE(built.ok());
    a_entry = built->key;
  }
  // Probe b's entry key without building: compilation disabled.
  std::uint64_t b_entry = 0;
  {
    JitCacheOptions probe = options;
    probe.allow_compile = false;
    JitKernelCache cache(probe);
    StatusOr<JitKernelCache::Kernel> missing = cache.GetOrBuild(b);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  }
  // Plant kernel a's perfectly valid .so at kernel b's path.
  {
    StatusOr<std::string> blob = ReadFileToString(entry_so(a_entry));
    ASSERT_TRUE(blob.ok());
    // Discover b's entry path by planting at every possible location is
    // overkill — rebuild b once to learn it, then overwrite.
    JitKernelCache cache(options);
    StatusOr<JitKernelCache::Kernel> built = cache.GetOrBuild(b);
    ASSERT_TRUE(built.ok());
    b_entry = built->key;
    ASSERT_TRUE(AtomicWriteFile(entry_so(b_entry), blob.value()).ok());
  }

  JitKernelCache cache(options);
  StatusOr<JitKernelCache::Kernel> rebuilt = cache.GetOrBuild(b);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(rebuilt->built);
  EXPECT_EQ(cache.stats().corrupt, 1);
}

// allow_compile=false + corrupt entry: the cache reports NotFound (after
// evicting), and an executor on top of it falls back to the interpreter
// with correct outputs — the "never crash" contract.
TEST_F(JitCacheTest, CorruptEntryWithCompileDisabledFallsBack) {
  const std::string dir = UniqueTestDir("corrupt-nocompile");
  Graph g = BuildLayerNormGraph(8, 16);
  CppKernel kernel = EmitOneKernel(g);

  JitCacheOptions options;
  options.dir = dir;
  std::uint64_t entry_key = 0;
  {
    JitKernelCache cache(options);
    StatusOr<JitKernelCache::Kernel> built = cache.GetOrBuild(kernel);
    ASSERT_TRUE(built.ok());
    entry_key = built->key;
  }
  char hex[20];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(entry_key));
  const std::string so_path = dir + "/" + std::string(hex) + ".sfk.so";
  {
    std::ofstream f(so_path, std::ios::trunc | std::ios::binary);
    f << "garbage";
  }

  JitExecutorOptions exec_options;
  exec_options.cache.dir = dir;
  exec_options.cache.allow_compile = false;
  JitExecutor executor(exec_options);
  ExpectJitMatchesInterpreter(g, /*seed=*/31, executor, /*tolerance=*/0.0f);
  EXPECT_GT(executor.stats().fallbacks, 0);
  EXPECT_EQ(executor.cache().stats().corrupt, 1);
  EXPECT_EQ(executor.cache().stats().toolchain_invocations, 0);
}

TEST_F(JitCacheTest, MissingEntryWithCompileDisabledIsNotFound) {
  JitCacheOptions options;
  options.dir = UniqueTestDir("nocompile");
  options.allow_compile = false;
  JitKernelCache cache(options);
  CppKernel kernel = EmitOneKernel(BuildLayerNormGraph(8, 16));
  StatusOr<JitKernelCache::Kernel> missing = cache.GetOrBuild(kernel);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cache.stats().toolchain_invocations, 0);
}

class CppCodegenTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetGlobalThreadPool(); }
};

TEST_F(CppCodegenTest, EmissionIsDeterministic) {
  StatusOr<CompiledSubprogram> compiled = CompileGraph(BuildMha(2, 32, 32, 16));
  ASSERT_TRUE(compiled.ok());
  StatusOr<std::string> first = EmitCppProgram(compiled->program);
  StatusOr<std::string> second = EmitCppProgram(compiled->program);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
}

TEST_F(CppCodegenTest, BakesShapesAsConstants) {
  Graph g = BuildMha(2, 32, 32, 16);
  StatusOr<CompiledSubprogram> compiled = CompileGraph(g);
  ASSERT_TRUE(compiled.ok());
  StatusOr<CppKernel> kernel = EmitCppKernel(compiled->program.kernels[0]);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  // The ABI is fixed and the symbol carries the content hash.
  EXPECT_NE(kernel->source.find("extern \"C\" int " + kernel->symbol), std::string::npos);
  EXPECT_EQ(kernel->symbol.rfind("sf_k_", 0), 0u);
  EXPECT_EQ(kernel->symbol.size(), 5u + 16u);
  // No runtime shape parameters: extents live in the source as literals.
  EXPECT_EQ(kernel->source.find("shape"), std::string::npos);
  EXPECT_FALSE(kernel->input_ids.empty());
  EXPECT_FALSE(kernel->output_ids.empty());
}

TEST_F(CppCodegenTest, OptionsChangeTheKey) {
  StatusOr<CompiledSubprogram> compiled = CompileGraph(BuildLayerNormGraph(8, 16));
  ASSERT_TRUE(compiled.ok());
  CppCodegenOptions plain;
  CppCodegenOptions reference;
  reference.reference_mode = true;
  StatusOr<CppKernel> a = EmitCppKernel(compiled->program.kernels[0], plain);
  StatusOr<CppKernel> b = EmitCppKernel(compiled->program.kernels[0], reference);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->key, b->key);
  EXPECT_NE(CppCodegenOptionsDigest(plain), CppCodegenOptionsDigest(reference));
}

// reference_mode disables temporal slicing and fused elementwise chains;
// its output must still match the interpreter (it IS the unfused op
// stream), which anchors the fused-vs-unfused wall-clock benchmark.
TEST_F(CppCodegenTest, ReferenceModeMatchesInterpreter) {
  JitExecutorOptions options;
  options.cache.dir = UniqueTestDir("refmode");
  options.codegen.reference_mode = true;
  options.codegen.fuse_elementwise = false;
  JitExecutor executor(options);
  Graph g = BuildMha(2, 16, 16, 8);
  ExpectJitMatchesInterpreter(g, /*seed=*/41, executor, /*tolerance=*/1e-4f);
  EXPECT_GT(executor.stats().jit_runs, 0);
  EXPECT_EQ(executor.stats().fallbacks, 0);
}

TEST(JitBackendTest, ExecBackendFromEnvParses) {
  const char* saved = std::getenv("SPACEFUSION_EXEC");
  std::string saved_value = saved != nullptr ? saved : "";

  ::unsetenv("SPACEFUSION_EXEC");
  EXPECT_EQ(ExecBackendFromEnv(), ExecBackend::kInterpret);
  ::setenv("SPACEFUSION_EXEC", "interpret", 1);
  EXPECT_EQ(ExecBackendFromEnv(), ExecBackend::kInterpret);
  ::setenv("SPACEFUSION_EXEC", "jit", 1);
  EXPECT_EQ(ExecBackendFromEnv(), ExecBackend::kJit);
  ::setenv("SPACEFUSION_EXEC", "warp-drive", 1);
  EXPECT_EQ(ExecBackendFromEnv(), ExecBackend::kInterpret);

  if (saved != nullptr) {
    ::setenv("SPACEFUSION_EXEC", saved_value.c_str(), 1);
  } else {
    ::unsetenv("SPACEFUSION_EXEC");
  }
  EXPECT_STREQ(ExecBackendName(ExecBackend::kJit), "jit");
  EXPECT_STREQ(ExecBackendName(ExecBackend::kInterpret), "interpret");
}

// ---------------------------------------------------------------------------
// Engine prewarm: with prewarm_jit + a cache_dir, a cold engine builds every
// kernel .so at compile time and a second engine on the same directory
// serves both the program and the kernels from disk — zero toolchain
// invocations on the warm restart (the property the CI serve step asserts
// daemon-wide through sf-serve --jit).

class CapturingReportSink : public ReportSink {
 public:
  void Emit(const CompileReport& report) override { reports.push_back(report); }
  std::vector<CompileReport> reports;
};

TEST(JitPrewarmTest, WarmEngineRestartInvokesNoToolchain) {
  const std::string dir = UniqueTestDir("prewarm");
  Graph g = BuildMha(4, 64, 64, 32);

  EngineOptions options{CompileOptions(AmpereA100())};
  options.cache_dir = dir;
  options.prewarm_jit = true;

  CapturingReportSink cold_sink;
  {
    EngineOptions cold_options = options;
    cold_options.report_sink = &cold_sink;
    CompilerEngine engine{cold_options};
    ASSERT_NE(engine.jit_cache(), nullptr);
    ASSERT_TRUE(engine.Compile(g).ok());
    EXPECT_GT(engine.jit_cache()->stats().builds, 0);
  }
  ASSERT_EQ(cold_sink.reports.size(), 1u);
  EXPECT_EQ(cold_sink.reports[0].outcome, "cold");
  EXPECT_GT(cold_sink.reports[0].jit_kernels_built, 0);
  EXPECT_GT(cold_sink.reports[0].jit_build_ms, 0.0);

  CapturingReportSink warm_sink;
  {
    EngineOptions warm_options = options;
    warm_options.report_sink = &warm_sink;
    CompilerEngine engine{warm_options};
    ASSERT_NE(engine.jit_cache(), nullptr);
    ASSERT_TRUE(engine.Compile(g).ok());
    const JitKernelCache::Stats stats = engine.jit_cache()->stats();
    EXPECT_EQ(stats.toolchain_invocations, 0);
    EXPECT_EQ(stats.builds, 0);
    EXPECT_GT(stats.disk_hits, 0);
  }
  ASSERT_EQ(warm_sink.reports.size(), 1u);
  EXPECT_EQ(warm_sink.reports[0].outcome, "persistent_hit");
  EXPECT_EQ(warm_sink.reports[0].jit_kernels_built, 0);
  EXPECT_GT(warm_sink.reports[0].jit_kernels_cached, 0);
}

}  // namespace
}  // namespace spacefusion
