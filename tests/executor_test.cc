// Numerical equivalence of fused schedules vs the unfused reference — the
// end-to-end proof that slicing + UTA (online softmax et al.) is exact.
#include <gtest/gtest.h>

#include <tuple>

#include "src/exec/schedule_executor.h"
#include "src/graph/builder.h"
#include "src/graph/subgraphs.h"
#include "src/schedule/pipeline.h"
#include "src/sim/arch.h"
#include "src/tuning/tuner.h"

namespace spacefusion {
namespace {

constexpr float kTol = 5e-3f;  // fp32 accumulation over different orders

// Compiles `graph`, forces the given temporal step when possible, runs the
// fused schedule and compares every output against the reference.
void ExpectFusedMatchesReference(const Graph& graph, std::int64_t want_step,
                                 const GpuArch& arch = AmpereA100()) {
  ResourceConfig rc = ResourceConfig::FromArch(arch);
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(graph, rc);
  ASSERT_TRUE(sliced.ok()) << sliced.status().ToString();

  // Prefer a config with the requested temporal step.
  const ScheduleConfig* chosen = nullptr;
  for (const ScheduleConfig& c : sliced->configs) {
    if (want_step > 0 && c.use_temporal && c.temporal_step == want_step) {
      chosen = &c;
      break;
    }
    if (want_step == 0 && !c.use_temporal) {
      chosen = &c;
      break;
    }
  }
  if (chosen == nullptr) {
    chosen = &sliced->configs.front();
  }
  sliced->schedule.ApplyConfig(*chosen);
  PlanMemory(&sliced->schedule, rc);

  TensorEnv env = MakeGraphInputs(graph, /*seed=*/99);
  TensorEnv ref = env;
  RunReference(graph, &ref);
  ASSERT_TRUE(RunSchedule(sliced->schedule, &env).ok());

  for (TensorId out : graph.OutputIds()) {
    float diff = MaxRelDiff(env[static_cast<size_t>(out)], ref[static_cast<size_t>(out)]);
    EXPECT_LT(diff, kTol) << graph.name() << " output " << graph.tensor(out).name
                          << " step=" << want_step;
  }
}

// --- MHA: the flagship UTA case ---------------------------------------------

class MhaEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(MhaEquivalenceTest, FusedEqualsReference) {
  auto [seq_kv, head_dim, step] = GetParam();
  Graph g = BuildMha(/*bh=*/3, /*sq=*/24, seq_kv, head_dim);
  ExpectFusedMatchesReference(g, step);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MhaEquivalenceTest,
    ::testing::Combine(::testing::Values<std::int64_t>(64, 128, 160),  // seq_kv (incl. non-pow2)
                       ::testing::Values<std::int64_t>(16, 32),        // head_dim
                       ::testing::Values<std::int64_t>(16, 32, 64)));  // temporal step

TEST(MhaEquivalenceTest, MaskedAttention) {
  Graph g = BuildMha(2, 16, 96, 16, /*masked=*/true);
  ExpectFusedMatchesReference(g, 32);
}

TEST(MhaEquivalenceTest, StepLargerThanExtentDegradesToSinglePass) {
  Graph g = BuildMha(2, 16, 48, 16);
  ExpectFusedMatchesReference(g, 0);  // no temporal slicing
}

TEST(MhaEquivalenceTest, DifferentStepsAgreeWithEachOther) {
  Graph g = BuildMha(2, 16, 128, 16);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, rc);
  ASSERT_TRUE(sliced.ok());

  TensorEnv inputs = MakeGraphInputs(g, 5);
  std::vector<Tensor> outs;
  for (std::int64_t step : {16, 32, 64}) {
    for (const ScheduleConfig& c : sliced->configs) {
      if (c.use_temporal && c.temporal_step == step) {
        sliced->schedule.ApplyConfig(c);
        PlanMemory(&sliced->schedule, rc);
        TensorEnv env = inputs;
        ASSERT_TRUE(RunSchedule(sliced->schedule, &env).ok());
        outs.push_back(env[static_cast<size_t>(g.OutputIds()[0])]);
        break;
      }
    }
  }
  ASSERT_GE(outs.size(), 2u);
  for (size_t i = 1; i < outs.size(); ++i) {
    EXPECT_LT(MaxRelDiff(outs[i], outs[0]), 1e-3f);
  }
}

// --- Other subgraphs ---------------------------------------------------------

class SubgraphEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST(SubgraphEquivalence, MlpChain) {
  ExpectFusedMatchesReference(BuildMlp(4, 64, 32, 32), /*want_step=*/0);
}

TEST(SubgraphEquivalence, MlpChainTemporal) {
  // Whatever temporal dim the slicer picked, execution stays exact.
  ExpectFusedMatchesReference(BuildMlp(3, 64, 64, 64), /*want_step=*/16);
}

TEST(SubgraphEquivalence, LstmCell) {
  ExpectFusedMatchesReference(BuildLstmCell(16, 32, 48), 0);
  ExpectFusedMatchesReference(BuildLstmCell(16, 32, 48), 16);
}

TEST(SubgraphEquivalence, LayerNorm) {
  ExpectFusedMatchesReference(BuildLayerNormGraph(32, 128), 0);
}

TEST(SubgraphEquivalence, Ffn) {
  ExpectFusedMatchesReference(BuildFfn(32, 64, 128, UnaryKind::kGelu, NormKind::kLayerNorm), 0);
}

TEST(SubgraphEquivalence, AttnOut) {
  ExpectFusedMatchesReference(BuildAttnOut(32, 64, NormKind::kLayerNorm), 0);
}

TEST(SubgraphEquivalence, SwigluFfn) {
  ExpectFusedMatchesReference(BuildSwigluFfn(32, 64, 128), 0);
}

TEST(SubgraphEquivalence, RmsNormAttnOut) {
  ExpectFusedMatchesReference(BuildAttnOut(32, 64, NormKind::kRmsNorm), 0);
}

TEST(SubgraphEquivalence, QkvProjMultiOutput) {
  ExpectFusedMatchesReference(BuildQkvProj(32, 64, 64), 0);
}

// --- Partitioned programs -----------------------------------------------------

TEST(PartitionedExecutionTest, SplitProgramMatchesReference) {
  // A LayerNorm whose row tile cannot fit the budget: `centered` must cross
  // the variance reduction, so the fused SMG is unschedulable and the
  // pipeline has to partition it.
  Graph g = BuildLayerNormGraph(32, 4096);
  ResourceConfig tiny;
  tiny.smem_per_block_max = 4 * 1024;
  tiny.reg_per_block_max = 32 * 1024;
  SlicingOptions options;
  StatusOr<PipelineResult> pipeline = RunSlicingPipeline(g, tiny, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_GT(pipeline->candidates.front().kernels.size(), 1u) << "expected a partition";

  ScheduledProgram program;
  for (SlicingResult& k : pipeline->candidates.front().kernels) {
    ApplyExpertConfig(&k, tiny);
    program.kernels.push_back(k.schedule);
  }

  TensorEnv inputs = MakeGraphInputs(g, 7);
  TensorEnv ref = inputs;
  RunReference(g, &ref);
  TensorEnv outs;
  ASSERT_TRUE(RunScheduledProgram(program, g, inputs, &outs).ok());
  for (TensorId out : g.OutputIds()) {
    EXPECT_LT(MaxRelDiff(outs[static_cast<size_t>(out)], ref[static_cast<size_t>(out)]), kTol);
  }
}

TEST(PartitionedExecutionTest, SinglePartitionProgramAlsoRuns) {
  Graph g = BuildMha(2, 16, 64, 16);
  ResourceConfig rc = ResourceConfig::FromArch(HopperH100());
  StatusOr<PipelineResult> pipeline = RunSlicingPipeline(g, rc, SlicingOptions());
  ASSERT_TRUE(pipeline.ok());
  ScheduledProgram program;
  for (SlicingResult& k : pipeline->candidates.front().kernels) {
    ApplyExpertConfig(&k, rc);
    program.kernels.push_back(k.schedule);
  }
  TensorEnv inputs = MakeGraphInputs(g, 3);
  TensorEnv ref = inputs;
  RunReference(g, &ref);
  TensorEnv outs;
  ASSERT_TRUE(RunScheduledProgram(program, g, inputs, &outs).ok());
  EXPECT_LT(MaxRelDiff(outs[static_cast<size_t>(g.OutputIds()[0])],
                       ref[static_cast<size_t>(g.OutputIds()[0])]),
            kTol);
}

// --- Reference executor --------------------------------------------------------

TEST(ReferenceExecutorTest, FillsAllTensors) {
  Graph g = BuildLstmCell(4, 8, 8);
  TensorEnv env = MakeGraphInputs(g, 1);
  RunReference(g, &env);
  for (const TensorInfo& t : g.tensors()) {
    EXPECT_TRUE(env[static_cast<size_t>(t.id)].defined()) << t.name;
  }
}

TEST(ReferenceExecutorTest, ConstantsSplat) {
  GraphBuilder b("c");
  TensorId x = b.Input("x", Shape({4}));
  TensorId scaled = b.Scale(x, 2.0f);
  b.MarkOutput(scaled);
  Graph g = b.Build();
  TensorEnv env = MakeGraphInputs(g, 1);
  RunReference(g, &env);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(env[static_cast<size_t>(scaled)].at(i),
                    env[static_cast<size_t>(x)].at(i) * 2.0f);
  }
}

}  // namespace
}  // namespace spacefusion
