#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/spacefusion.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace spacefusion {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker, enough to prove the emitted trace / metrics
// documents are well-formed (objects, arrays, strings with escapes, numbers,
// bools, null). Chrome refuses malformed traces silently, so the tests
// validate the whole document, not just substrings.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character: must be escaped
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void SpinFor(std::chrono::microseconds duration) {
  auto end = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < end) {
  }
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TraceTest, DisabledByDefaultAndSpansAreNoOps) {
  EXPECT_FALSE(TracingEnabled());
  // Spans (and their args) outside any session or accumulator must not
  // record or crash.
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span("noop.span");
    span.Arg("i", i);
    EXPECT_FALSE(span.active());
  }
}

TEST(TraceTest, SessionCapturesSpansWithNames) {
  TraceSession session;
  EXPECT_TRUE(TracingEnabled());
  {
    SF_TRACE_SPAN("test.alpha");
    SpinFor(std::chrono::microseconds(100));
  }
  {
    SF_TRACE_SPAN("test.beta", "custom_cat");
  }
  ASSERT_TRUE(session.Stop().ok());
  EXPECT_FALSE(TracingEnabled());

  ASSERT_EQ(session.events().size(), 2u);
  EXPECT_EQ(session.events()[0].name, "test.alpha");
  EXPECT_EQ(session.events()[0].cat, "compile");
  EXPECT_GT(session.events()[0].dur_us, 0.0);
  EXPECT_EQ(session.events()[1].name, "test.beta");
  EXPECT_EQ(session.events()[1].cat, "custom_cat");
}

TEST(TraceTest, NestedSpansHaveContainedTimestamps) {
  TraceSession session;
  {
    ScopedSpan outer("test.outer");
    SpinFor(std::chrono::microseconds(50));
    {
      ScopedSpan inner("test.inner");
      SpinFor(std::chrono::microseconds(50));
    }
    SpinFor(std::chrono::microseconds(50));
  }
  ASSERT_TRUE(session.Stop().ok());

  // Spans finish inner-first.
  ASSERT_EQ(session.events().size(), 2u);
  const TraceEvent& inner = session.events()[0];
  const TraceEvent& outer = session.events()[1];
  EXPECT_EQ(inner.name, "test.inner");
  EXPECT_EQ(outer.name, "test.outer");
  EXPECT_EQ(inner.tid, outer.tid);
  // Chrome reconstructs nesting from containment: inner must start no
  // earlier and end no later than outer.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  EXPECT_LT(inner.dur_us, outer.dur_us);
}

TEST(TraceTest, SpanArgsAreTypedAndEscaped) {
  TraceSession session;
  {
    ScopedSpan span("test.args");
    span.Arg("count", std::int64_t{42})
        .Arg("ratio", 0.5)
        .Arg("label", std::string("quote\" backslash\\ newline\n"));
  }
  ASSERT_TRUE(session.Stop().ok());

  ASSERT_EQ(session.events().size(), 1u);
  ASSERT_EQ(session.events()[0].args.size(), 3u);
  EXPECT_EQ(session.events()[0].args[0].json_value, "42");
  EXPECT_EQ(session.events()[0].args[1].json_value, "0.5");

  std::string json = session.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(TraceTest, ToJsonIsValidChromeTraceShape) {
  TraceSession session;
  {
    SF_TRACE_SPAN("test.one");
    SF_TRACE_SPAN("test.two");
  }
  ASSERT_TRUE(session.Stop().ok());

  std::string json = session.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // The complete-event fields Chrome/Perfetto require.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

TEST(TraceTest, EmptySessionStillSerializes) {
  TraceSession session;
  ASSERT_TRUE(session.Stop().ok());
  EXPECT_TRUE(session.events().empty());
  EXPECT_TRUE(JsonChecker(session.ToJson()).Valid());
}

TEST(TraceTest, SessionWritesFile) {
  std::string path = testing::TempDir() + "/spacefusion_session.trace.json";
  {
    TraceSession session(path);
    SF_TRACE_SPAN("test.file_span");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("test.file_span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, EnvVariableActivatesTracing) {
  std::string path = testing::TempDir() + "/spacefusion_env.trace.json";
  ASSERT_EQ(setenv("SPACEFUSION_TRACE", path.c_str(), /*overwrite=*/1), 0);
  ASSERT_TRUE(StartTraceFromEnv());
  EXPECT_TRUE(TracingEnabled());
  {
    SF_TRACE_SPAN("test.env_span");
  }
  ASSERT_TRUE(FlushEnvTrace().ok());
  EXPECT_FALSE(TracingEnabled());
  ASSERT_EQ(unsetenv("SPACEFUSION_TRACE"), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonChecker(buffer.str()).Valid());
  EXPECT_NE(buffer.str().find("test.env_span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, EnvActivationIgnoredWhenUnset) {
  unsetenv("SPACEFUSION_TRACE");
  EXPECT_FALSE(StartTraceFromEnv());
  EXPECT_TRUE(FlushEnvTrace().ok());  // nothing active: no-op
}

TEST(TraceTest, SpansFromMultipleThreadsGetDistinctTids) {
  TraceSession session;
  std::thread t1([] { SF_TRACE_SPAN("test.thread"); });
  std::thread t2([] { SF_TRACE_SPAN("test.thread"); });
  t1.join();
  t2.join();
  ASSERT_TRUE(session.Stop().ok());
  ASSERT_EQ(session.events().size(), 2u);
  EXPECT_NE(session.events()[0].tid, session.events()[1].tid);
}

// ---------------------------------------------------------------------------
// PhaseAccumulator

TEST(PhaseAccumulatorTest, SumsSpansByExactNameWithoutSession) {
  ASSERT_FALSE(TracingEnabled());
  PhaseAccumulator phases;
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span("phase.work");
    SpinFor(std::chrono::microseconds(200));
  }
  {
    SF_TRACE_SPAN("phase.other");
  }
  EXPECT_EQ(phases.SpanCount("phase.work"), 3);
  EXPECT_EQ(phases.SpanCount("phase.other"), 1);
  EXPECT_EQ(phases.SpanCount("phase.absent"), 0);
  EXPECT_GT(phases.TotalMs("phase.work"), 0.0);
  EXPECT_EQ(phases.TotalMs("phase.absent"), 0.0);
}

TEST(PhaseAccumulatorTest, NestedAccumulatorsBothObserve) {
  PhaseAccumulator outer;
  {
    PhaseAccumulator inner;
    SF_TRACE_SPAN("phase.nested");
  }
  // The span completed while both accumulators were open.
  EXPECT_EQ(outer.SpanCount("phase.nested"), 1);
  // After the inner accumulator closes, new spans only reach the outer one.
  {
    SF_TRACE_SPAN("phase.after");
  }
  EXPECT_EQ(outer.SpanCount("phase.after"), 1);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, CounterArithmetic) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(MetricsTest, CounterIsThreadSafe) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(MetricsTest, GaugeHoldsLastValue) {
  Gauge gauge;
  gauge.Set(0.25);
  gauge.Set(0.75);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.75);
}

TEST(MetricsTest, HistogramArithmetic) {
  Histogram histogram;
  histogram.Observe(1.0);
  histogram.Observe(3.0);
  histogram.Observe(100.0);
  HistogramStats stats = histogram.stats();
  EXPECT_EQ(stats.count, 3);
  EXPECT_DOUBLE_EQ(stats.sum, 104.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_NEAR(stats.mean(), 104.0 / 3.0, 1e-12);

  // Bucket bounds are 4^i: 1.0 -> bucket 0, 3.0 -> bucket 1 (<=4),
  // 100.0 -> bucket 4 (<=256).
  ASSERT_EQ(stats.bucket_counts.size(), static_cast<size_t>(Histogram::kNumBuckets));
  EXPECT_EQ(stats.bucket_counts[0], 1);
  EXPECT_EQ(stats.bucket_counts[1], 1);
  EXPECT_EQ(stats.bucket_counts[4], 1);
  std::int64_t total = 0;
  for (std::int64_t b : stats.bucket_counts) {
    total += b;
  }
  EXPECT_EQ(total, stats.count);
}

TEST(MetricsTest, HistogramOverflowBucket) {
  Histogram histogram;
  histogram.Observe(1e12);  // beyond the largest finite bound
  HistogramStats stats = histogram.stats();
  EXPECT_EQ(stats.bucket_counts.back(), 1);
}

TEST(MetricsTest, EmptyHistogramStats) {
  Histogram histogram;
  HistogramStats stats = histogram.stats();
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.bucket_counts.size(), static_cast<size_t>(Histogram::kNumBuckets));
}

TEST(MetricsTest, RegistryFindsSameMetricByName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("obs_test.same_counter");
  Counter& b = registry.GetCounter("obs_test.same_counter");
  EXPECT_EQ(&a, &b);
  a.Increment(7);
  EXPECT_EQ(b.value(), 7);
  a.Reset();
}

TEST(MetricsTest, ResetZeroesInPlaceKeepingReferencesValid) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("obs_test.reset_counter");
  Gauge& gauge = registry.GetGauge("obs_test.reset_gauge");
  Histogram& histogram = registry.GetHistogram("obs_test.reset_histogram");
  counter.Increment(5);
  gauge.Set(2.5);
  histogram.Observe(1.0);

  registry.Reset();

  // The SF_COUNTER_ADD-style cached references must still be the live
  // objects after Reset.
  EXPECT_EQ(counter.value(), 0);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.stats().count, 0);
  counter.Increment();
  EXPECT_EQ(registry.Snapshot().counter("obs_test.reset_counter"), 1);
  counter.Reset();
}

TEST(MetricsTest, SnapshotJsonIsValid) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test.snap_counter").Increment(3);
  registry.GetGauge("obs_test.snap_gauge").Set(0.5);
  registry.GetHistogram("obs_test.snap_histogram").Observe(2.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("obs_test.snap_counter"), 3);
  EXPECT_DOUBLE_EQ(snapshot.gauge("obs_test.snap_gauge"), 0.5);
  EXPECT_EQ(snapshot.counter("obs_test.does_not_exist"), 0);

  std::string json = snapshot.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"obs_test.snap_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.snap_histogram\""), std::string::npos);
}

TEST(MetricsTest, MacrosRecordIntoGlobalRegistry) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  std::int64_t before = registry.Snapshot().counter("obs_test.macro_counter");
  SF_COUNTER_ADD("obs_test.macro_counter", 2);
  SF_GAUGE_SET("obs_test.macro_gauge", 9.0);
  SF_HISTOGRAM_OBSERVE("obs_test.macro_histogram", 5.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("obs_test.macro_counter"), before + 2);
  EXPECT_DOUBLE_EQ(snapshot.gauge("obs_test.macro_gauge"), 9.0);
  EXPECT_GE(snapshot.histograms.at("obs_test.macro_histogram").count, 1);
}

// ---------------------------------------------------------------------------
// End-to-end: the instrumented compiler feeds spans and metrics

TEST(ObsIntegrationTest, CompileRecordsPhaseSpansAndMetrics) {
  MetricsRegistry::Global().Reset();
  TraceSession session;

  Graph mha = BuildMha(/*batch_heads=*/4, /*seq_q=*/128, /*seq_kv=*/128, /*head_dim=*/64);
  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(mha);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_TRUE(session.Stop().ok());

  // The acceptance phases all appear in the trace.
  std::set<std::string> names;
  for (const TraceEvent& e : session.events()) {
    names.insert(e.name);
  }
  for (const char* required :
       {"compiler.compile", "compiler.pipeline", "slicing.resource_aware", "slicing.spatial",
        "search.enum_cfg", "tuner.measure", "compiler.lower", "sim.cost_estimate"}) {
    EXPECT_TRUE(names.count(required)) << "missing span " << required;
  }
  EXPECT_TRUE(JsonChecker(session.ToJson()).Valid());

  // CompileTimeBreakdown is span-derived and self-consistent.
  EXPECT_GE(compiled->compile_time.slicing_ms, 0.0);
  EXPECT_GE(compiled->compile_time.enum_cfg_ms, 0.0);
  EXPECT_GT(compiled->compile_time.slicing_ms + compiled->compile_time.enum_cfg_ms, 0.0);
  EXPECT_GT(compiled->compile_time.tuning_s, 0.0);
  EXPECT_GE(compiled->compile_time.total_s(), compiled->compile_time.tuning_s);

  // And the metrics registry saw the same compile.
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("compiler.subprograms_compiled"), 1);
  EXPECT_EQ(snapshot.counter("tuner.configs_tried"), compiled->tuning.configs_tried);
  EXPECT_GT(snapshot.counter("search.configs_enumerated"), 0);
  EXPECT_GT(snapshot.counter("sim.kernels_estimated"), 0);
}

TEST(ObsIntegrationTest, CompileCacheHitsAreCounted) {
  MetricsRegistry::Global().Reset();
  Graph mha = BuildMha(4, 64, 64, 64);
  Compiler compiler{CompileOptions(AmpereA100())};
  ASSERT_TRUE(compiler.Compile(mha).ok());
  ASSERT_TRUE(compiler.Compile(mha).ok());  // structural-hash cache hit
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("compiler.cache_misses"), 1);
  EXPECT_EQ(snapshot.counter("compiler.cache_hits"), 1);
}

TEST(ObsIntegrationTest, CompiledModelCarriesMetricsSnapshot) {
  MetricsRegistry::Global().Reset();
  ModelGraph model = BuildModel(GetModelConfig(ModelKind::kBert, /*batch=*/1, /*seq=*/64));
  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledModel> compiled = compiler.CompileModel(model);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_GT(compiled->metrics.counter("compiler.subprograms_compiled"), 0);
  EXPECT_GT(compiled->metrics.counter("tuner.configs_tried"), 0);
  EXPECT_TRUE(JsonChecker(compiled->metrics.ToJson()).Valid());
}

}  // namespace
}  // namespace spacefusion
