#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/core/spacefusion.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"
#include "src/support/string_util.h"

namespace spacefusion {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker, enough to prove the emitted trace / metrics
// documents are well-formed (objects, arrays, strings with escapes, numbers,
// bools, null). Chrome refuses malformed traces silently, so the tests
// validate the whole document, not just substrings.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character: must be escaped
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void SpinFor(std::chrono::microseconds duration) {
  auto end = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < end) {
  }
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TraceTest, DisabledByDefaultAndSpansAreNoOps) {
  EXPECT_FALSE(TracingEnabled());
  // Spans (and their args) outside any session or accumulator must not
  // record or crash.
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span("noop.span");
    span.Arg("i", i);
    EXPECT_FALSE(span.active());
  }
}

TEST(TraceTest, SessionCapturesSpansWithNames) {
  TraceSession session;
  EXPECT_TRUE(TracingEnabled());
  {
    SF_TRACE_SPAN("test.alpha");
    SpinFor(std::chrono::microseconds(100));
  }
  {
    SF_TRACE_SPAN("test.beta", "custom_cat");
  }
  ASSERT_TRUE(session.Stop().ok());
  EXPECT_FALSE(TracingEnabled());

  ASSERT_EQ(session.events().size(), 2u);
  EXPECT_EQ(session.events()[0].name, "test.alpha");
  EXPECT_EQ(session.events()[0].cat, "compile");
  EXPECT_GT(session.events()[0].dur_us, 0.0);
  EXPECT_EQ(session.events()[1].name, "test.beta");
  EXPECT_EQ(session.events()[1].cat, "custom_cat");
}

TEST(TraceTest, NestedSpansHaveContainedTimestamps) {
  TraceSession session;
  {
    ScopedSpan outer("test.outer");
    SpinFor(std::chrono::microseconds(50));
    {
      ScopedSpan inner("test.inner");
      SpinFor(std::chrono::microseconds(50));
    }
    SpinFor(std::chrono::microseconds(50));
  }
  ASSERT_TRUE(session.Stop().ok());

  // Spans finish inner-first.
  ASSERT_EQ(session.events().size(), 2u);
  const TraceEvent& inner = session.events()[0];
  const TraceEvent& outer = session.events()[1];
  EXPECT_EQ(inner.name, "test.inner");
  EXPECT_EQ(outer.name, "test.outer");
  EXPECT_EQ(inner.tid, outer.tid);
  // Chrome reconstructs nesting from containment: inner must start no
  // earlier and end no later than outer.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  EXPECT_LT(inner.dur_us, outer.dur_us);
}

TEST(TraceTest, SpanArgsAreTypedAndEscaped) {
  TraceSession session;
  {
    ScopedSpan span("test.args");
    span.Arg("count", std::int64_t{42})
        .Arg("ratio", 0.5)
        .Arg("label", std::string("quote\" backslash\\ newline\n"));
  }
  ASSERT_TRUE(session.Stop().ok());

  ASSERT_EQ(session.events().size(), 1u);
  ASSERT_EQ(session.events()[0].args.size(), 3u);
  EXPECT_EQ(session.events()[0].args[0].json_value, "42");
  EXPECT_EQ(session.events()[0].args[1].json_value, "0.5");

  std::string json = session.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(TraceTest, ToJsonIsValidChromeTraceShape) {
  TraceSession session;
  {
    SF_TRACE_SPAN("test.one");
    SF_TRACE_SPAN("test.two");
  }
  ASSERT_TRUE(session.Stop().ok());

  std::string json = session.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // The complete-event fields Chrome/Perfetto require.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

TEST(TraceTest, EmptySessionStillSerializes) {
  TraceSession session;
  ASSERT_TRUE(session.Stop().ok());
  EXPECT_TRUE(session.events().empty());
  EXPECT_TRUE(JsonChecker(session.ToJson()).Valid());
}

TEST(TraceTest, SessionWritesFile) {
  std::string path = testing::TempDir() + "/spacefusion_session.trace.json";
  {
    TraceSession session(path);
    SF_TRACE_SPAN("test.file_span");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("test.file_span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, EnvVariableActivatesTracing) {
  std::string path = testing::TempDir() + "/spacefusion_env.trace.json";
  ASSERT_EQ(setenv("SPACEFUSION_TRACE", path.c_str(), /*overwrite=*/1), 0);
  ASSERT_TRUE(StartTraceFromEnv());
  EXPECT_TRUE(TracingEnabled());
  {
    SF_TRACE_SPAN("test.env_span");
  }
  ASSERT_TRUE(FlushEnvTrace().ok());
  EXPECT_FALSE(TracingEnabled());
  ASSERT_EQ(unsetenv("SPACEFUSION_TRACE"), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonChecker(buffer.str()).Valid());
  EXPECT_NE(buffer.str().find("test.env_span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, EnvActivationIgnoredWhenUnset) {
  unsetenv("SPACEFUSION_TRACE");
  EXPECT_FALSE(StartTraceFromEnv());
  EXPECT_TRUE(FlushEnvTrace().ok());  // nothing active: no-op
}

TEST(TraceTest, SpansFromMultipleThreadsGetDistinctTids) {
  TraceSession session;
  std::thread t1([] { SF_TRACE_SPAN("test.thread"); });
  std::thread t2([] { SF_TRACE_SPAN("test.thread"); });
  t1.join();
  t2.join();
  ASSERT_TRUE(session.Stop().ok());
  ASSERT_EQ(session.events().size(), 2u);
  EXPECT_NE(session.events()[0].tid, session.events()[1].tid);
}

// ---------------------------------------------------------------------------
// PhaseAccumulator

TEST(PhaseAccumulatorTest, SumsSpansByExactNameWithoutSession) {
  ASSERT_FALSE(TracingEnabled());
  PhaseAccumulator phases;
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span("phase.work");
    SpinFor(std::chrono::microseconds(200));
  }
  {
    SF_TRACE_SPAN("phase.other");
  }
  EXPECT_EQ(phases.SpanCount("phase.work"), 3);
  EXPECT_EQ(phases.SpanCount("phase.other"), 1);
  EXPECT_EQ(phases.SpanCount("phase.absent"), 0);
  EXPECT_GT(phases.TotalMs("phase.work"), 0.0);
  EXPECT_EQ(phases.TotalMs("phase.absent"), 0.0);
}

TEST(PhaseAccumulatorTest, NestedAccumulatorsBothObserve) {
  PhaseAccumulator outer;
  {
    PhaseAccumulator inner;
    SF_TRACE_SPAN("phase.nested");
  }
  // The span completed while both accumulators were open.
  EXPECT_EQ(outer.SpanCount("phase.nested"), 1);
  // After the inner accumulator closes, new spans only reach the outer one.
  {
    SF_TRACE_SPAN("phase.after");
  }
  EXPECT_EQ(outer.SpanCount("phase.after"), 1);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, CounterArithmetic) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(MetricsTest, CounterIsThreadSafe) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(MetricsTest, GaugeHoldsLastValue) {
  Gauge gauge;
  gauge.Set(0.25);
  gauge.Set(0.75);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.75);
}

TEST(MetricsTest, HistogramArithmetic) {
  Histogram histogram;
  histogram.Observe(1.0);
  histogram.Observe(3.0);
  histogram.Observe(100.0);
  HistogramStats stats = histogram.stats();
  EXPECT_EQ(stats.count, 3);
  EXPECT_DOUBLE_EQ(stats.sum, 104.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_NEAR(stats.mean(), 104.0 / 3.0, 1e-12);

  // Bucket bounds are 4^i: 1.0 -> bucket 0, 3.0 -> bucket 1 (<=4),
  // 100.0 -> bucket 4 (<=256).
  ASSERT_EQ(stats.bucket_counts.size(), static_cast<size_t>(Histogram::kNumBuckets));
  EXPECT_EQ(stats.bucket_counts[0], 1);
  EXPECT_EQ(stats.bucket_counts[1], 1);
  EXPECT_EQ(stats.bucket_counts[4], 1);
  std::int64_t total = 0;
  for (std::int64_t b : stats.bucket_counts) {
    total += b;
  }
  EXPECT_EQ(total, stats.count);
}

TEST(MetricsTest, HistogramOverflowBucket) {
  Histogram histogram;
  histogram.Observe(1e12);  // beyond the largest finite bound
  HistogramStats stats = histogram.stats();
  EXPECT_EQ(stats.bucket_counts.back(), 1);
}

TEST(MetricsTest, EmptyHistogramStats) {
  Histogram histogram;
  HistogramStats stats = histogram.stats();
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.bucket_counts.size(), static_cast<size_t>(Histogram::kNumBuckets));
}

TEST(MetricsTest, RegistryFindsSameMetricByName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("obs_test.same_counter");
  Counter& b = registry.GetCounter("obs_test.same_counter");
  EXPECT_EQ(&a, &b);
  a.Increment(7);
  EXPECT_EQ(b.value(), 7);
  a.Reset();
}

TEST(MetricsTest, ResetZeroesInPlaceKeepingReferencesValid) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("obs_test.reset_counter");
  Gauge& gauge = registry.GetGauge("obs_test.reset_gauge");
  Histogram& histogram = registry.GetHistogram("obs_test.reset_histogram");
  counter.Increment(5);
  gauge.Set(2.5);
  histogram.Observe(1.0);

  registry.Reset();

  // The SF_COUNTER_ADD-style cached references must still be the live
  // objects after Reset.
  EXPECT_EQ(counter.value(), 0);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.stats().count, 0);
  counter.Increment();
  EXPECT_EQ(registry.Snapshot().counter("obs_test.reset_counter"), 1);
  counter.Reset();
}

TEST(MetricsTest, SnapshotJsonIsValid) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test.snap_counter").Increment(3);
  registry.GetGauge("obs_test.snap_gauge").Set(0.5);
  registry.GetHistogram("obs_test.snap_histogram").Observe(2.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("obs_test.snap_counter"), 3);
  EXPECT_DOUBLE_EQ(snapshot.gauge("obs_test.snap_gauge"), 0.5);
  EXPECT_EQ(snapshot.counter("obs_test.does_not_exist"), 0);

  std::string json = snapshot.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"obs_test.snap_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.snap_histogram\""), std::string::npos);
}

TEST(MetricsTest, MacrosRecordIntoGlobalRegistry) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  std::int64_t before = registry.Snapshot().counter("obs_test.macro_counter");
  SF_COUNTER_ADD("obs_test.macro_counter", 2);
  SF_GAUGE_SET("obs_test.macro_gauge", 9.0);
  SF_HISTOGRAM_OBSERVE("obs_test.macro_histogram", 5.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("obs_test.macro_counter"), before + 2);
  EXPECT_DOUBLE_EQ(snapshot.gauge("obs_test.macro_gauge"), 9.0);
  EXPECT_GE(snapshot.histograms.at("obs_test.macro_histogram").count, 1);
}

// ---------------------------------------------------------------------------
// Histogram quantiles

TEST(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  Histogram histogram;
  HistogramStats stats = histogram.stats();
  EXPECT_DOUBLE_EQ(stats.p50(), 0.0);
  EXPECT_DOUBLE_EQ(stats.p95(), 0.0);
  EXPECT_DOUBLE_EQ(stats.p99(), 0.0);
  EXPECT_DOUBLE_EQ(stats.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats.quantile(1.0), 0.0);
}

TEST(MetricsTest, QuantileOfSingleSampleIsExact) {
  Histogram histogram;
  histogram.Observe(7.5);
  HistogramStats stats = histogram.stats();
  EXPECT_DOUBLE_EQ(stats.quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(stats.p50(), 7.5);
  EXPECT_DOUBLE_EQ(stats.p99(), 7.5);
  EXPECT_DOUBLE_EQ(stats.quantile(1.0), 7.5);
}

TEST(MetricsTest, QuantilesAreOrderedAndClampedToObservedRange) {
  Histogram histogram;
  for (double v : {1.0, 2.0, 3.0, 5.0, 10.0, 50.0, 200.0, 900.0}) {
    histogram.Observe(v);
  }
  HistogramStats stats = histogram.stats();
  EXPECT_LE(stats.p50(), stats.p95());
  EXPECT_LE(stats.p95(), stats.p99());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    double value = stats.quantile(q);
    EXPECT_GE(value, stats.min) << "q=" << q;
    EXPECT_LE(value, stats.max) << "q=" << q;
  }
  // Out-of-range q is clamped, not undefined.
  EXPECT_DOUBLE_EQ(stats.quantile(-1.0), stats.quantile(0.0));
  EXPECT_DOUBLE_EQ(stats.quantile(2.0), stats.quantile(1.0));
}

TEST(MetricsTest, HistogramRejectsNonFiniteObservations) {
  Histogram histogram;
  histogram.Observe(std::numeric_limits<double>::quiet_NaN());
  histogram.Observe(std::numeric_limits<double>::infinity());
  histogram.Observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(histogram.stats().count, 0);

  histogram.Observe(2.0);
  histogram.Observe(std::numeric_limits<double>::quiet_NaN());
  HistogramStats stats = histogram.stats();
  EXPECT_EQ(stats.count, 1);
  EXPECT_DOUBLE_EQ(stats.sum, 2.0);
  EXPECT_FALSE(std::isnan(stats.p99()));
}

// ---------------------------------------------------------------------------
// OpenMetrics exposition

TEST(OpenMetricsTest, EmptySnapshotRendersJustTheTerminator) {
  MetricsSnapshot empty;
  EXPECT_EQ(RenderOpenMetrics(empty), "# EOF\n");
}

TEST(OpenMetricsTest, CountersGaugesAndHistogramsRender) {
  MetricsSnapshot snapshot;
  snapshot.counters["engine.cache.hits"] = 3;
  snapshot.gauges["sim.l2_hit_rate"] = 0.5;
  Histogram histogram;
  histogram.Observe(2.0);
  histogram.Observe(100.0);
  snapshot.histograms["pass.Tune.ms"] = histogram.stats();

  std::string text = RenderOpenMetrics(snapshot);
  // Names sanitized to [a-zA-Z0-9_:]; counters gain the _total suffix.
  EXPECT_NE(text.find("# TYPE engine_cache_hits counter"), std::string::npos) << text;
  EXPECT_NE(text.find("engine_cache_hits_total 3"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE sim_l2_hit_rate gauge"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE pass_Tune_ms histogram"), std::string::npos) << text;
  // Cumulative buckets with a final +Inf bound, plus _sum and _count.
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos) << text;
  EXPECT_NE(text.find("pass_Tune_ms_sum"), std::string::npos) << text;
  EXPECT_NE(text.find("pass_Tune_ms_count 2"), std::string::npos) << text;
  // Document terminator is last.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetricsTest, LabeledSeriesGroupUnderOneFamily) {
  MetricsSnapshot snapshot;
  snapshot.counters["engine.cache.hits"] = 1;
  snapshot.counters[LabeledMetricName("engine.cache.hits", "request_id", "req-000001")] = 2;
  snapshot.counters[LabeledMetricName("engine.cache.hits", "request_id", "req-000002")] = 3;

  std::string text = RenderOpenMetrics(snapshot);
  // One # TYPE line for the family, three samples.
  size_t first_type = text.find("# TYPE engine_cache_hits counter");
  ASSERT_NE(first_type, std::string::npos) << text;
  EXPECT_EQ(text.find("# TYPE engine_cache_hits counter", first_type + 1), std::string::npos);
  EXPECT_NE(text.find("engine_cache_hits_total 1"), std::string::npos) << text;
  EXPECT_NE(text.find("engine_cache_hits_total{request_id=\"req-000001\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("engine_cache_hits_total{request_id=\"req-000002\"} 3"), std::string::npos)
      << text;
}

TEST(OpenMetricsTest, LabelValuesAreEscaped) {
  std::string name = LabeledMetricName("m", "k", "quote\" backslash\\ newline\n");
  EXPECT_NE(name.find("\\\""), std::string::npos);
  EXPECT_NE(name.find("\\\\"), std::string::npos);
  EXPECT_EQ(name.find('\n'), std::string::npos);
}

TEST(MetricsTest, SnapshotToTextListsEveryMetricOnce) {
  MetricsRegistry::Global().Reset();
  MetricsRegistry::Global().GetCounter("obs_test.text_counter").Increment(4);
  MetricsRegistry::Global().GetHistogram("obs_test.text_histogram").Observe(3.0);
  std::string text = MetricsRegistry::Global().Snapshot().ToText();
  EXPECT_NE(text.find("obs_test.text_counter"), std::string::npos) << text;
  EXPECT_NE(text.find("obs_test.text_histogram"), std::string::npos) << text;
  EXPECT_NE(text.find("p99="), std::string::npos) << text;
  MetricsRegistry::Global().Reset();
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorderTest, RecordsAndRendersEventsInOrder) {
  FlightRecorder recorder(8);
  recorder.Record("req-000001", "engine", "request start");
  recorder.Record("req-000001", "pass", "BuildSmg done in 0.1ms");
  recorder.Record("", "engine", "process event");

  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0);
  EXPECT_EQ(events[1].seq, 1);
  EXPECT_EQ(events[0].request_id, "req-000001");
  EXPECT_EQ(events[0].category, "engine");
  EXPECT_EQ(events[1].message, "BuildSmg done in 0.1ms");
  EXPECT_GE(events[1].elapsed_ms, events[0].elapsed_ms);
  EXPECT_EQ(recorder.dropped(), 0);

  std::string rendered = recorder.Render();
  EXPECT_NE(rendered.find("3 event(s)"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("[req-000001] pass: BuildSmg done in 0.1ms"), std::string::npos)
      << rendered;
}

TEST(FlightRecorderTest, WraparoundKeepsNewestAndCountsDropped) {
  constexpr size_t kCapacity = 4;
  FlightRecorder recorder(kCapacity);
  for (int i = 0; i < 10; ++i) {
    recorder.Record("req", "test", StrCat("event ", i));
  }
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  EXPECT_EQ(recorder.dropped(), 10 - static_cast<std::int64_t>(kCapacity));
  // Oldest-first, contiguous, ending at the newest event; seq never reused.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, static_cast<std::int64_t>(6 + i));
    EXPECT_EQ(events[i].message, StrCat("event ", 6 + i));
  }
  EXPECT_NE(recorder.Render().find("6 older event(s) overwritten"), std::string::npos)
      << recorder.Render();

  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.dropped(), 0);
}

TEST(FlightRecorderTest, ConcurrentRecordsAllLandWithUniqueSeq) {
  FlightRecorder recorder(1024);
  constexpr int kThreads = 8;
  constexpr int kEvents = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kEvents; ++i) {
        recorder.Record(StrCat("req-", t), "test", StrCat("event ", i));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kEvents));
  std::set<std::int64_t> seqs;
  for (const FlightEvent& e : events) {
    seqs.insert(e.seq);
  }
  EXPECT_EQ(seqs.size(), events.size());
  EXPECT_EQ(recorder.dropped(), 0);
}

// Regression: elapsed_ms used to be sampled before taking the recorder lock,
// so two racing Records could commit ascending seq numbers with descending
// timestamps. The clock is now read in the same critical section that
// assigns seq, making (seq, elapsed_ms) jointly monotone.
TEST(FlightRecorderTest, ConcurrentTimestampsAreMonotoneInSeqOrder) {
  FlightRecorder recorder(4096);
  constexpr int kThreads = 8;
  constexpr int kEvents = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kEvents; ++i) {
        recorder.Record(StrCat("req-", t), "race", StrCat("event ", i));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kEvents));
  for (size_t i = 1; i < events.size(); ++i) {
    ASSERT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_GE(events[i].elapsed_ms, events[i - 1].elapsed_ms)
        << "timestamp inversion at seq " << events[i].seq;
  }
}

// Render takes one critical section for both the event snapshot and the
// dropped-count header, so the header can never disagree with the events
// printed below it even while other threads keep recording.
TEST(FlightRecorderTest, RenderIsInternallyConsistentUnderConcurrentRecords) {
  FlightRecorder recorder(64);
  std::atomic<bool> stop{false};
  std::thread writer([&recorder, &stop] {
    std::int64_t i = 0;
    while (!stop.load()) {
      recorder.Record("", "bg", StrCat("event ", i++));
    }
  });
  for (int i = 0; i < 50; ++i) {
    std::string rendered = recorder.Render();
    // Header formats either "flight recorder: N event(s)" or appends
    // ", M older event(s) overwritten"; count the event lines that follow.
    size_t newline = rendered.find('\n');
    ASSERT_NE(newline, std::string::npos) << rendered;
    std::int64_t lines = 0;
    for (size_t p = newline; p != std::string::npos; p = rendered.find('\n', p + 1)) {
      ++lines;
    }
    std::int64_t claimed = 0;
    ASSERT_EQ(std::sscanf(rendered.c_str(), "flight recorder: %ld", &claimed), 1)
        << rendered;
    EXPECT_EQ(lines - 1, claimed) << rendered;  // trailing newline ends last line
  }
  stop.store(true);
  writer.join();
}

TEST(FlightRecorderTest, DumpToFailureLogWritesUnderReportDir) {
  std::string dir = testing::TempDir() + "/sf_flight_dump";
  std::filesystem::remove_all(dir);
  ASSERT_EQ(setenv("SPACEFUSION_REPORT_DIR", dir.c_str(), /*overwrite=*/1), 0);

  FlightRecorder recorder(8);
  recorder.Record("req-000042", "engine", "request failed");
  recorder.DumpToFailureLog("req-000042", "test-induced failure");
  ASSERT_EQ(unsetenv("SPACEFUSION_REPORT_DIR"), 0);

  std::ifstream in(dir + "/flight-req-000042.log");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("test-induced failure"), std::string::npos);
  EXPECT_NE(buffer.str().find("request failed"), std::string::npos);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// CompileReport serialization

CompileReport FullyPopulatedReport() {
  CompileReport report;
  report.request_id = "req-000007";
  report.model = "Bert";
  report.graph_fingerprint = 0xDEADBEEFCAFEF00DULL;  // exceeds int53: string round-trip
  report.options_digest = 0xFFFFFFFFFFFFFFFFULL;
  report.outcome = "cold";
  report.status_message = "";
  report.cache_collision = true;
  report.wall_ms = 12.5;
  report.passes = {{"BuildSmg", 1.25, 1.0}, {"Tune", 8.0, 31.5}};
  report.configs_enumerated = 400;
  report.configs_screened = 100;
  report.configs_admitted = 25;
  report.tuning_seconds = 1.75;
  report.verifier_errors = 1;
  report.verifier_warnings = 2;
  report.diagnostics = {{"SFV0103", "error", "SFV0103 [error] graph(m): shape mismatch"}};
  report.kernels = 3;
  report.smem_bytes = 49152;
  report.reg_bytes = 65536;
  report.modeled_time_us = 321.5;
  return report;
}

TEST(CompileReportTest, JsonRoundTripPreservesEveryField) {
  CompileReport report = FullyPopulatedReport();
  std::string json = report.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;

  StatusOr<CompileReport> restored = CompileReport::FromJson(json);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const CompileReport& r = restored.value();
  EXPECT_EQ(r.request_id, report.request_id);
  EXPECT_EQ(r.model, report.model);
  EXPECT_EQ(r.graph_fingerprint, report.graph_fingerprint);
  EXPECT_EQ(r.options_digest, report.options_digest);
  EXPECT_EQ(r.outcome, report.outcome);
  EXPECT_EQ(r.status_message, report.status_message);
  EXPECT_EQ(r.cache_collision, report.cache_collision);
  EXPECT_DOUBLE_EQ(r.wall_ms, report.wall_ms);
  ASSERT_EQ(r.passes.size(), report.passes.size());
  for (size_t i = 0; i < r.passes.size(); ++i) {
    EXPECT_EQ(r.passes[i].pass, report.passes[i].pass);
    EXPECT_DOUBLE_EQ(r.passes[i].wall_ms, report.passes[i].wall_ms);
    EXPECT_DOUBLE_EQ(r.passes[i].cpu_ms, report.passes[i].cpu_ms);
  }
  EXPECT_EQ(r.configs_enumerated, report.configs_enumerated);
  EXPECT_EQ(r.configs_screened, report.configs_screened);
  EXPECT_EQ(r.configs_admitted, report.configs_admitted);
  EXPECT_DOUBLE_EQ(r.tuning_seconds, report.tuning_seconds);
  EXPECT_EQ(r.verifier_errors, report.verifier_errors);
  EXPECT_EQ(r.verifier_warnings, report.verifier_warnings);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].code, "SFV0103");
  EXPECT_EQ(r.diagnostics[0].severity, "error");
  EXPECT_EQ(r.diagnostics[0].message, report.diagnostics[0].message);
  EXPECT_EQ(r.kernels, report.kernels);
  EXPECT_EQ(r.smem_bytes, report.smem_bytes);
  EXPECT_EQ(r.reg_bytes, report.reg_bytes);
  EXPECT_DOUBLE_EQ(r.modeled_time_us, report.modeled_time_us);
  EXPECT_DOUBLE_EQ(r.PassWallMs("Tune"), 8.0);
  EXPECT_DOUBLE_EQ(r.PassWallMs("NoSuchPass"), 0.0);
}

TEST(CompileReportTest, FromJsonRejectsNewerSchemaAndGarbage) {
  std::string json = FullyPopulatedReport().ToJson();
  std::string newer = json;
  size_t pos = newer.find("\"schema_version\":1");
  ASSERT_NE(pos, std::string::npos) << json;
  newer.replace(pos, std::string("\"schema_version\":1").size(), "\"schema_version\":999");
  EXPECT_FALSE(CompileReport::FromJson(newer).ok());
  EXPECT_FALSE(CompileReport::FromJson("not json at all").ok());
  EXPECT_FALSE(CompileReport::FromJson("[1,2,3]").ok());
}

TEST(CompileReportTest, DirectoryReportSinkWritesOneFilePerReport) {
  std::string dir = testing::TempDir() + "/sf_report_sink";
  std::filesystem::remove_all(dir);
  DirectoryReportSink sink(dir);
  CompileReport report = FullyPopulatedReport();
  sink.Emit(report);

  std::ifstream in(dir + "/req-000007.report.json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  StatusOr<CompileReport> restored = CompileReport::FromJson(buffer.str());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().graph_fingerprint, report.graph_fingerprint);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// sf-stats aggregation and regression diffing

TEST(StatsTest, WallClockKeyDetection) {
  EXPECT_TRUE(IsWallClockKey("bert/req-000001/wall/compile_ms"));
  EXPECT_TRUE(IsWallClockKey("wall/total_ms"));
  EXPECT_TRUE(IsWallClockKey("bert/wall/pass/Tune"));
  EXPECT_FALSE(IsWallClockKey("bert/modeled_compile_s"));
  EXPECT_FALSE(IsWallClockKey("bert/wallpaper_count"));  // component match, not substring
  EXPECT_FALSE(IsWallClockKey(""));
}

std::string WriteTempReport(const std::string& name, const CompileReport& report) {
  std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << report.ToJson() << "\n";
  return path;
}

TEST(StatsTest, DiffFlagsInjectedModeledRegressionAndIgnoresWall) {
  CompileReport base = FullyPopulatedReport();
  base.outcome = "cold";
  base.tuning_seconds = 1.0;
  base.wall_ms = 10.0;

  CompileReport current = base;
  current.tuning_seconds = 1.5;  // +50%: well past the 10% threshold
  current.wall_ms = 500.0;       // wall regression must NOT trip the default diff

  std::string base_path = WriteTempReport("sf_stats_base.report.json", base);
  std::string current_path = WriteTempReport("sf_stats_current.report.json", current);
  StatusOr<RunStats> base_run = LoadRunStats(base_path);
  StatusOr<RunStats> current_run = LoadRunStats(current_path);
  ASSERT_TRUE(base_run.ok()) << base_run.status().ToString();
  ASSERT_TRUE(current_run.ok()) << current_run.status().ToString();
  EXPECT_EQ(base_run.value().format, "report");

  DiffOptions options;
  DiffResult diff = DiffRuns(base_run.value(), current_run.value(), options);
  ASSERT_EQ(diff.regressions, 1) << RenderDiff(diff, options);
  bool found = false;
  for (const DiffEntry& entry : diff.entries) {
    if (entry.regression) {
      found = true;
      EXPECT_NE(entry.key.find("tuning_seconds"), std::string::npos) << entry.key;
      EXPECT_NEAR(entry.delta_pct, 50.0, 1e-6);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(RenderDiff(diff, options).find("REGRESSION"), std::string::npos);

  // Opting into wall keys surfaces the wall regression too.
  options.include_wall = true;
  DiffResult with_wall = DiffRuns(base_run.value(), current_run.value(), options);
  EXPECT_GT(with_wall.regressions, diff.regressions);

  // Identical runs never regress, at any threshold.
  DiffResult self = DiffRuns(base_run.value(), base_run.value(), DiffOptions());
  EXPECT_EQ(self.regressions, 0);

  std::remove(base_path.c_str());
  std::remove(current_path.c_str());
}

TEST(StatsTest, ReportDirLoadsEveryReportAndSummarizes) {
  std::string dir = testing::TempDir() + "/sf_stats_dir";
  std::filesystem::remove_all(dir);
  DirectoryReportSink sink(dir);

  CompileReport cold = FullyPopulatedReport();
  CompileReport hit = FullyPopulatedReport();
  hit.request_id = "req-000008";
  hit.outcome = "cache_hit";
  CompileReport failed = FullyPopulatedReport();
  failed.request_id = "req-000009";
  failed.outcome = "error";
  failed.status_message = "invalid argument: SFV0103 ...";
  sink.Emit(cold);
  sink.Emit(hit);
  sink.Emit(failed);

  StatusOr<RunStats> run = LoadRunStats(dir);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().format, "report_dir");
  EXPECT_EQ(run.value().reports.size(), 3u);
  EXPECT_FALSE(run.value().series.empty());

  std::string summary = RenderSummary(run.value(), /*top_n=*/3);
  EXPECT_NE(summary.find("1 cold"), std::string::npos) << summary;
  EXPECT_NE(summary.find("1 cache hit(s)"), std::string::npos) << summary;
  EXPECT_NE(summary.find("1 error(s)"), std::string::npos) << summary;
  std::filesystem::remove_all(dir);
}

TEST(StatsTest, LoadRejectsMissingPath) {
  EXPECT_FALSE(LoadRunStats(testing::TempDir() + "/sf_stats_does_not_exist.json").ok());
}

// ---------------------------------------------------------------------------
// Obs state guards: Reset / TraceSession vs concurrent compiles

// MetricsRegistry::Reset and TraceSession start/stop take the exclusive side
// of the obs state lock; engine requests hold the shared side. Churning all
// three from different threads must be data-race free (the TSan CI job runs
// this test) and must never crash or deadlock.
TEST(ObsGuardTest, ResetAndTraceSessionsDuringConcurrentCompiles) {
  CompilerEngine engine{CompileOptions()};
  std::atomic<bool> stop{false};
  std::atomic<int> compiles_done{0};

  std::vector<std::thread> compilers;
  for (int t = 0; t < 2; ++t) {
    compilers.emplace_back([&engine, &compiles_done, t] {
      for (int i = 0; i < 3; ++i) {
        // Distinct shapes per iteration defeat the program cache so every
        // request runs the full pipeline under the shared lock.
        Graph g = BuildMlp(2, 64 + 16 * t + 16 * i, 64, 64);
        StatusOr<CompiledSubprogram> compiled = engine.Compile(g);
        EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
        compiles_done.fetch_add(1);
      }
    });
  }
  std::thread resetter([&stop] {
    while (!stop.load()) {
      MetricsRegistry::Global().Reset();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread tracer([&stop] {
    while (!stop.load()) {
      TraceSession session;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      EXPECT_TRUE(session.Stop().ok());
    }
  });

  for (std::thread& t : compilers) {
    t.join();
  }
  stop.store(true);
  resetter.join();
  tracer.join();
  EXPECT_EQ(compiles_done.load(), 6);
  MetricsRegistry::Global().Reset();
}

// ---------------------------------------------------------------------------
// End-to-end: the instrumented compiler feeds spans and metrics

TEST(ObsIntegrationTest, CompileRecordsPhaseSpansAndMetrics) {
  MetricsRegistry::Global().Reset();
  TraceSession session;

  Graph mha = BuildMha(/*batch_heads=*/4, /*seq_q=*/128, /*seq_kv=*/128, /*head_dim=*/64);
  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(mha);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_TRUE(session.Stop().ok());

  // The acceptance phases all appear in the trace.
  std::set<std::string> names;
  for (const TraceEvent& e : session.events()) {
    names.insert(e.name);
  }
  for (const char* required :
       {"compiler.compile", "compiler.pipeline", "slicing.resource_aware", "slicing.spatial",
        "search.enum_cfg", "tuner.measure", "compiler.lower", "sim.cost_estimate"}) {
    EXPECT_TRUE(names.count(required)) << "missing span " << required;
  }
  EXPECT_TRUE(JsonChecker(session.ToJson()).Valid());

  // CompileTimeBreakdown is span-derived and self-consistent.
  EXPECT_GE(compiled->compile_time.slicing_ms, 0.0);
  EXPECT_GE(compiled->compile_time.enum_cfg_ms, 0.0);
  EXPECT_GT(compiled->compile_time.slicing_ms + compiled->compile_time.enum_cfg_ms, 0.0);
  EXPECT_GT(compiled->compile_time.tuning_s, 0.0);
  EXPECT_GE(compiled->compile_time.total_s(), compiled->compile_time.tuning_s);

  // And the metrics registry saw the same compile.
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("compiler.subprograms_compiled"), 1);
  EXPECT_EQ(snapshot.counter("tuner.configs_tried"), compiled->tuning.configs_tried);
  EXPECT_GT(snapshot.counter("search.configs_enumerated"), 0);
  EXPECT_GT(snapshot.counter("sim.kernels_estimated"), 0);
}

TEST(ObsIntegrationTest, CompileCacheHitsAreCounted) {
  MetricsRegistry::Global().Reset();
  Graph mha = BuildMha(4, 64, 64, 64);
  Compiler compiler{CompileOptions(AmpereA100())};
  ASSERT_TRUE(compiler.Compile(mha).ok());
  ASSERT_TRUE(compiler.Compile(mha).ok());  // structural-hash cache hit
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("compiler.cache_misses"), 1);
  EXPECT_EQ(snapshot.counter("compiler.cache_hits"), 1);
}

TEST(ObsIntegrationTest, CompiledModelCarriesMetricsSnapshot) {
  MetricsRegistry::Global().Reset();
  ModelGraph model = BuildModel(GetModelConfig(ModelKind::kBert, /*batch=*/1, /*seq=*/64));
  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledModel> compiled = compiler.CompileModel(model);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_GT(compiled->metrics.counter("compiler.subprograms_compiled"), 0);
  EXPECT_GT(compiled->metrics.counter("tuner.configs_tried"), 0);
  EXPECT_TRUE(JsonChecker(compiled->metrics.ToJson()).Valid());
}

}  // namespace
}  // namespace spacefusion
