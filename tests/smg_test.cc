#include <gtest/gtest.h>

#include "src/graph/builder.h"
#include "src/graph/subgraphs.h"
#include "src/smg/smg_builder.h"

namespace spacefusion {
namespace {

// A single GEMM's SMG must match the paper's Fig. 3: data spaces
// Query(M,-,K), Key(-,N,K), QK(M,N,-); an iteration space GEMM(M,N,K); two
// One-to-All input mappings and one All-to-One(dot) output mapping.
TEST(SmgBuilderTest, SingleGemmMatchesFig3) {
  GraphBuilder b("gemm");
  TensorId q = b.Input("query", Shape({32, 16}));
  TensorId k = b.Input("key", Shape({24, 16}));
  b.MarkOutput(b.MatMul(q, k, false, /*transpose_b=*/true));
  Graph g = b.Build();

  auto built = BuildSmg(g);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const Smg& smg = built->smg;

  EXPECT_EQ(smg.num_dims(), 3);  // M, N, K
  // 3 data spaces + 1 iteration space.
  EXPECT_EQ(smg.spaces().size(), 4u);

  int o2a = 0, a2o = 0, o2o = 0;
  for (const Mapping& m : smg.mappings()) {
    switch (m.kind) {
      case MappingKind::kOneToAll:
        ++o2a;
        break;
      case MappingKind::kAllToOne:
        ++a2o;
        EXPECT_EQ(static_cast<int>(m.reduce), static_cast<int>(ReduceOpKind::kDot));
        break;
      case MappingKind::kOneToOne:
        ++o2o;
        break;
    }
  }
  EXPECT_EQ(o2a, 2);
  EXPECT_EQ(a2o, 1);
  EXPECT_EQ(o2o, 0);

  // Query is reused along N; Key along M; the contraction runs along K.
  SpaceId q_space = built->tensor_space[static_cast<size_t>(q)];
  SpaceId k_space = built->tensor_space[static_cast<size_t>(k)];
  DimId q_dir = kNoDim, k_dir = kNoDim, reduce_dir = kNoDim;
  for (const Mapping& m : smg.mappings()) {
    if (m.kind == MappingKind::kOneToAll && m.src == q_space) {
      q_dir = m.dim;
    }
    if (m.kind == MappingKind::kOneToAll && m.src == k_space) {
      k_dir = m.dim;
    }
    if (m.kind == MappingKind::kAllToOne) {
      reduce_dir = m.dim;
    }
  }
  // Q lacks exactly the N dim, K lacks exactly the M dim.
  EXPECT_FALSE(smg.space(q_space).HasDim(q_dir));
  EXPECT_FALSE(smg.space(k_space).HasDim(k_dir));
  // The contracted dim is shared by both inputs.
  EXPECT_TRUE(smg.space(q_space).HasDim(reduce_dir));
  EXPECT_TRUE(smg.space(k_space).HasDim(reduce_dir));
  EXPECT_EQ(smg.dim(reduce_dir).extent, 16);
}

// The MHA SMG (paper Fig. 5): the computation in (Dim2, Dim1, Dim0) has
// 6 One-to-Alls and 4 All-to-Ones from the two GEMMs and the softmax.
// (The scale-by-1/sqrt(d) constant adds input One-to-Alls on top.)
TEST(SmgBuilderTest, MhaMappingStructureMatchesFig5) {
  Graph g = BuildMha(4, 32, 48, 16);
  auto built = BuildSmg(g);
  ASSERT_TRUE(built.ok());
  const Smg& smg = built->smg;

  // Dims: batch-heads, seq_q, head_dim (d2), seq_kv, out head_dim (d4).
  EXPECT_EQ(smg.num_dims(), 5);

  int a2o = 0;
  int non_const_o2a = 0;
  for (const Mapping& m : smg.mappings()) {
    if (m.kind == MappingKind::kAllToOne) {
      ++a2o;
    }
    if (m.kind == MappingKind::kOneToAll &&
        smg.space(m.src).role != DataRole::kConstant) {
      ++non_const_o2a;
    }
  }
  EXPECT_EQ(a2o, 4);           // GEMM1-dot, max, sum, GEMM2-dot
  EXPECT_EQ(non_const_o2a, 6);  // Q, K (GEMM1); max, sum broadcasts; Div, V (GEMM2)

  // Three of the four All-to-Ones are geometrically parallel (along the kv
  // dim); GEMM1's is orthogonal.
  std::map<DimId, int> a2o_dims;
  for (const Mapping& m : smg.mappings()) {
    if (m.kind == MappingKind::kAllToOne) {
      a2o_dims[m.dim]++;
    }
  }
  int max_parallel = 0;
  for (const auto& [dim, count] : a2o_dims) {
    max_parallel = std::max(max_parallel, count);
  }
  EXPECT_EQ(max_parallel, 3);
  EXPECT_EQ(a2o_dims.size(), 2u);
}

TEST(SmgBuilderTest, DimensionAlignmentSharesIntermediateSpaces) {
  // Two chained matmuls: the K dim of the second equals the N dim of the
  // first — alignment must produce ONE global dim for both.
  GraphBuilder b("chain");
  TensorId x = b.Input("x", Shape({8, 16}));
  TensorId w1 = b.Weight("w1", Shape({16, 32}));
  TensorId w2 = b.Weight("w2", Shape({32, 4}));
  TensorId mid = b.MatMul(x, w1);
  b.MarkOutput(b.MatMul(mid, w2));
  Graph g = b.Build();
  auto built = BuildSmg(g);
  ASSERT_TRUE(built.ok());
  // Dims: M(8), K1(16), N1=K2(32), N2(4) -> exactly 4 global dims.
  EXPECT_EQ(built->smg.num_dims(), 4);
}

TEST(SmgBuilderTest, ElementwiseIsOneToOne) {
  GraphBuilder b("ew");
  TensorId x = b.Input("x", Shape({8, 8}));
  TensorId y = b.Input("y", Shape({8, 8}));
  b.MarkOutput(b.Add(b.Relu(x), y));
  Graph g = b.Build();
  auto built = BuildSmg(g);
  ASSERT_TRUE(built.ok());
  for (const Mapping& m : built->smg.mappings()) {
    EXPECT_EQ(static_cast<int>(m.kind), static_cast<int>(MappingKind::kOneToOne));
  }
}

TEST(SmgBuilderTest, BroadcastStatsAreOtherOneToAll) {
  GraphBuilder b("sm");
  TensorId x = b.Input("x", Shape({8, 32}));
  b.MarkOutput(b.Softmax(x));
  Graph g = b.Build();
  auto built = BuildSmg(g);
  ASSERT_TRUE(built.ok());
  const Smg& smg = built->smg;
  int intermediate_o2a = 0;
  for (const Mapping& m : smg.mappings()) {
    if (m.kind == MappingKind::kOneToAll &&
        smg.space(m.src).role == DataRole::kIntermediate) {
      ++intermediate_o2a;
      EXPECT_FALSE(smg.IsInputOneToAll(m));
    }
  }
  EXPECT_EQ(intermediate_o2a, 2);  // max and sum broadcast back along N
}

TEST(SmgBuilderTest, AxisOfDimRoundTrips) {
  Graph g = BuildMha(4, 32, 48, 16);
  auto built = BuildSmg(g);
  ASSERT_TRUE(built.ok());
  for (const TensorInfo& t : g.tensors()) {
    for (int axis = 0; axis < t.shape.rank(); ++axis) {
      DimId d = built->tensor_axis_dims[static_cast<size_t>(t.id)][static_cast<size_t>(axis)];
      if (t.shape.dim(axis) > 1) {
        ASSERT_NE(d, kNoDim);
        EXPECT_EQ(built->smg.dim(d).extent, t.shape.dim(axis));
        EXPECT_EQ(built->AxisOfDim(t.id, d), axis);
      } else {
        EXPECT_EQ(d, kNoDim);
      }
    }
  }
}

TEST(SmgTest, ReachesFollowsMappingDirection) {
  Graph g = BuildMha(2, 8, 8, 4);
  auto built = BuildSmg(g);
  ASSERT_TRUE(built.ok());
  const Smg& smg = built->smg;
  SpaceId q = built->tensor_space[static_cast<size_t>(g.InputIds()[0])];
  SpaceId out = built->tensor_space[static_cast<size_t>(g.OutputIds()[0])];
  EXPECT_TRUE(smg.Reaches(q, out));
  EXPECT_FALSE(smg.Reaches(out, q));
}

TEST(SmgTest, DataVolumeAlongDimPrefersKvSeq) {
  // With seq_kv >> head_dim, more data-space volume lies along the kv dim,
  // which is why the temporal slicer prefers it.
  Graph g = BuildMha(2, 64, 512, 16);
  auto built = BuildSmg(g);
  ASSERT_TRUE(built.ok());
  const Smg& smg = built->smg;
  DimId kv = kNoDim, feat = kNoDim;
  for (DimId d = 0; d < smg.num_dims(); ++d) {
    if (smg.dim(d).extent == 512) {
      kv = d;
    }
  }
  // head_dim appears twice (QK contraction and output feature); take any.
  for (DimId d = 0; d < smg.num_dims(); ++d) {
    if (smg.dim(d).extent == 16) {
      feat = d;
    }
  }
  ASSERT_NE(kv, kNoDim);
  ASSERT_NE(feat, kNoDim);
  EXPECT_GT(smg.DataVolumeAlongDim(kv), smg.DataVolumeAlongDim(feat));
}

TEST(SmgTest, ToStringMentionsMappings) {
  Graph g = BuildLayerNormGraph(8, 16);
  auto built = BuildSmg(g);
  ASSERT_TRUE(built.ok());
  std::string dump = built->smg.ToString();
  EXPECT_NE(dump.find("A2O"), std::string::npos);
  EXPECT_NE(dump.find("O2A"), std::string::npos);
}

}  // namespace
}  // namespace spacefusion
