// Staged-fidelity cost evaluation tests: ScreenKernel's lower-bound
// guarantee versus EstimateKernel (the admissibility property the tuner's
// stage-1 screening relies on), screening on/off selection identity on every
// built-in model, and exactness of the range-batched cache entry points
// against the per-line reference loop.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/core/spacefusion.h"
#include "src/schedule/lowering.h"
#include "src/schedule/resource_aware.h"
#include "src/sim/cache.h"
#include "src/sim/cost_model.h"
#include "src/sim/memory_sim.h"
#include "src/tuning/tuner.h"

namespace spacefusion {
namespace {

// --- (a) ScreenKernel is a lower bound on EstimateKernel --------------------

KernelSpec RandomSpec(std::mt19937* rng) {
  std::uniform_int_distribution<int> grid_log(0, 20);
  std::uniform_int_distribution<int> threads_pick(0, 1);
  std::uniform_int_distribution<std::int64_t> smem(0, 96 * 1024);
  std::uniform_int_distribution<std::int64_t> regs(16 * 1024, 64 * 1024);
  std::uniform_int_distribution<int> flops_log(10, 40);
  std::uniform_real_distribution<double> eff(0.2, 1.0);
  std::uniform_real_distribution<double> bw(0.5, 1.0);
  std::uniform_int_distribution<int> n_reads(0, 4);
  std::uniform_int_distribution<int> n_writes(0, 2);
  std::uniform_int_distribution<int> bytes_log(10, 30);
  std::uniform_real_distribution<double> touches(1.0, 4.0);
  std::uniform_int_distribution<int> coin(0, 1);

  KernelSpec k;
  k.name = "rand";
  k.grid = std::int64_t{1} << grid_log(*rng);
  k.threads_per_block = threads_pick(*rng) == 0 ? 128 : 256;
  k.smem_per_block = smem(*rng);
  k.regs_per_block_bytes = regs(*rng);
  k.flops = std::int64_t{1} << flops_log(*rng);
  k.compute_efficiency = eff(*rng);
  k.bandwidth_efficiency = bw(*rng);
  int nr = n_reads(*rng);
  for (int i = 0; i < nr; ++i) {
    TensorTraffic r;
    r.unique_bytes = std::int64_t{1} << bytes_log(*rng);
    r.per_block_bytes =
        coin(*rng) != 0 ? r.unique_bytes / k.grid : r.unique_bytes / std::max<std::int64_t>(1, k.grid / 4);
    if (r.per_block_bytes <= 0) {
      r.per_block_bytes = r.unique_bytes;
    }
    r.touches_per_byte = coin(*rng) != 0 ? 1.0 : touches(*rng);
    r.shared_across_blocks = coin(*rng) != 0;
    k.reads.push_back(r);
  }
  int nw = n_writes(*rng);
  for (int i = 0; i < nw; ++i) {
    TensorTraffic w;
    w.unique_bytes = std::int64_t{1} << bytes_log(*rng);
    k.writes.push_back(w);
  }
  return k;
}

TEST(ScreenKernelTest, LowerBoundsEstimateOnRandomizedSpecs) {
  std::mt19937 rng(42);
  for (const GpuArch& arch : AllArchitectures()) {
    CostModel cm(arch);
    for (int trial = 0; trial < 400; ++trial) {
      KernelSpec k = RandomSpec(&rng);
      double screen = cm.ScreenKernel(k);
      double full = cm.EstimateKernel(k).time_us;
      EXPECT_LE(screen, full + 1e-9)
          << arch.name << " trial " << trial << ": screening score exceeds full fidelity";
      EXPECT_GT(screen, 0.0);
    }
  }
}

TEST(ScreenKernelTest, UnlaunchableKernelGetsSamePenalty) {
  CostModel cm(AmpereA100());
  KernelSpec k;
  k.grid = 64;
  k.smem_per_block = 10 * 1024 * 1024;  // way over any per-SM budget
  EXPECT_EQ(cm.ScreenKernel(k), cm.EstimateKernel(k).time_us);
}

// The bound must also hold through the two lowering paths the tuner actually
// compares: LowerForScreening on the enumeration-time footprint versus full
// ApplyConfig + PlanMemory + LowerSchedule, for every config in a real sweep.
TEST(ScreenKernelTest, ScreeningScoreLowerBoundsFullLoweringAcrossSweep) {
  Graph g = BuildMha(8, 512, 512, 64);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, rc);
  ASSERT_TRUE(sliced.ok()) << sliced.status().ToString();
  ASSERT_EQ(sliced->footprints.size(), sliced->configs.size());
  ASSERT_GT(sliced->configs.size(), 0u);

  CostModel cost(AmpereA100());
  ScreenContext ctx = MakeScreenContext(sliced->schedule);
  for (size_t i = 0; i < sliced->configs.size(); ++i) {
    sliced->schedule.ApplyConfig(sliced->configs[i]);
    PlanMemory(&sliced->schedule, rc);
    AddressMap probe;
    double full = cost.EstimateKernel(LowerSchedule(sliced->schedule, &probe)).time_us;
    double screen = cost.ScreenKernel(LowerForScreening(ctx, sliced->footprints[i]));
    EXPECT_LE(screen, full + 1e-9) << "config " << i << ": inadmissible screening score";
  }
}

// --- (b) screening on/off picks the same config on every model --------------

std::string ProgramFingerprint(const CompiledModel& compiled) {
  std::string out;
  for (const CompiledSubprogram& sub : compiled.unique_subprograms) {
    for (const SmgSchedule& kernel : sub.program.kernels) {
      out += kernel.ToString();
    }
  }
  return out;
}

TEST(ScreeningTest, OnOffPicksSameScheduleOnAllModels) {
  for (ModelKind kind : AllModelKinds()) {
    ModelGraph model = BuildModel(GetModelConfig(kind, /*batch=*/1, /*seq=*/128));

    auto compile = [&](int screen_top_k) {
      CompileOptions options(AmpereA100());
      options.tuner.screen_top_k = screen_top_k;
      Compiler compiler{options};
      StatusOr<CompiledModel> compiled = compiler.CompileModel(model);
      EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
      return compiled;
    };

    StatusOr<CompiledModel> screened = compile(/*screen_top_k=*/-1);  // default top-K
    StatusOr<CompiledModel> full = compile(/*screen_top_k=*/0);      // exhaustive
    ASSERT_TRUE(screened.ok() && full.ok()) << ModelKindName(kind);

    EXPECT_EQ(ProgramFingerprint(*screened), ProgramFingerprint(*full))
        << ModelKindName(kind) << ": screening changed the selected schedule";
    EXPECT_EQ(screened->total.time_us, full->total.time_us) << ModelKindName(kind);

    // Screening must actually cut the number of full-fidelity evaluations.
    int screened_tried = 0, full_tried = 0;
    for (const CompiledSubprogram& sub : screened->unique_subprograms) {
      screened_tried += sub.tuning.configs_tried;
      if (sub.tuning.configs_screened > 0) {  // small sweeps skip screening
        EXPECT_GE(sub.tuning.configs_screened, sub.tuning.configs_tried) << ModelKindName(kind);
      }
    }
    for (const CompiledSubprogram& sub : full->unique_subprograms) {
      full_tried += sub.tuning.configs_tried;
    }
    EXPECT_LT(screened_tried, full_tried) << ModelKindName(kind);
  }
}

// --- (c) range-batched cache entry points equal the per-line loop -----------

struct CacheShape {
  std::int64_t capacity;
  int line;
  int assoc;
};

TEST(CacheBatchTest, AccessRangeMatchesPerLineLoopOnRandomizedTraces) {
  std::mt19937 rng(7);
  const CacheShape shapes[] = {
      {256, 64, 4}, {4096, 64, 4}, {16 * 1024, 128, 8}, {8192, 32, 2}, {64 * 1024, 128, 16}};
  std::uniform_int_distribution<std::int64_t> base_pick(0, (1 << 18) - 1);
  std::uniform_int_distribution<std::int64_t> bytes_pick(1, 8192);
  std::uniform_int_distribution<int> reset_pick(0, 39);

  for (const CacheShape& s : shapes) {
    // `batched` exercises AccessRange + AccessLines (the simulator's L1->L2
    // nesting); `reference` replays the identical stream one line at a time.
    SetAssociativeCache l1_batched(s.capacity, s.line, s.assoc);
    SetAssociativeCache l1_reference(s.capacity, s.line, s.assoc);
    SetAssociativeCache l2_batched(s.capacity * 8, s.line, s.assoc);
    SetAssociativeCache l2_reference(s.capacity * 8, s.line, s.assoc);

    for (int op = 0; op < 300; ++op) {
      if (reset_pick(rng) == 0) {
        l1_batched.Reset();
        l1_reference.Reset();
      }
      std::int64_t base = base_pick(rng);
      std::int64_t bytes = bytes_pick(rng);

      std::vector<std::int64_t> missed;
      std::int64_t batched_misses = l1_batched.AccessRange(base, bytes, &missed);
      std::int64_t l2_batched_misses = l2_batched.AccessLines(missed);

      std::int64_t ref_misses = 0, l2_ref_misses = 0;
      std::vector<std::int64_t> ref_missed;
      for (std::int64_t a = (base / s.line) * s.line; a <= base + bytes - 1; a += s.line) {
        if (!l1_reference.Access(a)) {
          ++ref_misses;
          ref_missed.push_back(a);
          if (!l2_reference.Access(a)) {
            ++l2_ref_misses;
          }
        }
      }

      ASSERT_EQ(batched_misses, ref_misses) << "op " << op;
      ASSERT_EQ(missed, ref_missed) << "op " << op;
      ASSERT_EQ(l2_batched_misses, l2_ref_misses) << "op " << op;
    }

    EXPECT_EQ(l1_batched.stats().accesses, l1_reference.stats().accesses);
    EXPECT_EQ(l1_batched.stats().hits, l1_reference.stats().hits);
    EXPECT_EQ(l1_batched.stats().misses, l1_reference.stats().misses);
    EXPECT_EQ(l2_batched.stats().accesses, l2_reference.stats().accesses);
    EXPECT_EQ(l2_batched.stats().hits, l2_reference.stats().hits);
    EXPECT_EQ(l2_batched.stats().misses, l2_reference.stats().misses);
  }
}

// --- Hit-rate pin for a real lowered kernel ---------------------------------

// MHA(384 heads, seq 256) lowered at the slicer's initial config, replayed
// through the memory simulator: gauges pinned to the pure-trace values
// captured before the fast path landed (acceptance bar: within 1%).
TEST(MemorySimPinTest, MhaFirstConfigHitRates) {
  Graph g = BuildMha(32 * 12, 256, 256, 64);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, rc);
  ASSERT_TRUE(sliced.ok()) << sliced.status().ToString();

  AddressMap am;
  KernelSpec spec = LowerSchedule(sliced->schedule, &am);
  MemorySim sim(AmpereA100());
  ExecutionReport rep = sim.Run({spec});

  ASSERT_GT(rep.l1_accesses, 0);
  ASSERT_GT(rep.l2_accesses, 0);
  double l2_hit = 1.0 - static_cast<double>(rep.l2_misses) / static_cast<double>(rep.l2_accesses);
  EXPECT_NEAR(l2_hit, 0.997923, 0.01);
  EXPECT_EQ(rep.dram_bytes, 26017774);
  EXPECT_EQ(rep.l1_accesses, 50429952);
  EXPECT_EQ(rep.l2_accesses, 50528256);
}

}  // namespace
}  // namespace spacefusion
