// Determinism of the parallel auto-tuning engine: compilation output —
// chosen ScheduleConfigs, cost-model values, simulated tuning seconds —
// must be bit-identical at every SPACEFUSION_JOBS value, across repeated
// runs, and with or without the cost cache. Also pins the serial on-GPU
// measurement model behind TuningStats::simulated_tuning_seconds (Table 4/5)
// so host-side parallelization can never silently change the paper numbers.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "src/codegen/cpp_codegen.h"
#include "src/codegen/triton_codegen.h"
#include "src/core/engine.h"
#include "src/core/program_store.h"
#include "src/core/spacefusion.h"
#include "src/obs/report.h"
#include "src/support/file_util.h"
#include "src/schedule/lowering.h"
#include "src/schedule/resource_aware.h"
#include "src/sim/cost_cache.h"
#include "src/support/thread_pool.h"
#include "src/tuning/tuner.h"

namespace spacefusion {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetGlobalThreadPool(); }
};

SlicingResult MhaSlicingResult(std::int64_t seq) {
  Graph g = BuildMha(/*batch_heads=*/32 * 12, seq, seq, /*head_dim=*/64);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, rc);
  EXPECT_TRUE(sliced.ok()) << sliced.status().ToString();
  return std::move(sliced).value();
}

bool StatsIdentical(const TuningStats& a, const TuningStats& b) {
  return a.configs_screened == b.configs_screened && a.configs_tried == b.configs_tried &&
         a.configs_early_quit == b.configs_early_quit && a.best_time_us == b.best_time_us &&
         a.simulated_tuning_seconds == b.simulated_tuning_seconds;
}

TEST_F(DeterminismTest, TuneKernelTwiceIsIdentical) {
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  CostModel cost(AmpereA100());
  ResetGlobalThreadPool(8);

  SlicingResult first = MhaSlicingResult(256);
  SlicingResult second = first;
  TuningStats stats1 = TuneKernel(&first, cost, rc);
  TuningStats stats2 = TuneKernel(&second, cost, rc);
  EXPECT_TRUE(StatsIdentical(stats1, stats2));
  EXPECT_EQ(first.schedule.ToString(), second.schedule.ToString());

  // Re-tuning an already tuned result is idempotent (the sweep probes
  // clones; the incoming block sizes are irrelevant).
  TuningStats stats3 = TuneKernel(&first, cost, rc);
  EXPECT_TRUE(StatsIdentical(stats1, stats3));
}

TEST_F(DeterminismTest, TuneKernelIdenticalAcrossJobCountsAndCache) {
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  CostModel cost(AmpereA100());

  ResetGlobalThreadPool(1);
  SlicingResult serial = MhaSlicingResult(256);
  TuningStats serial_stats = TuneKernel(&serial, cost, rc);

  ResetGlobalThreadPool(8);
  SlicingResult parallel = MhaSlicingResult(256);
  TuningStats parallel_stats = TuneKernel(&parallel, cost, rc);
  EXPECT_TRUE(StatsIdentical(serial_stats, parallel_stats));
  EXPECT_EQ(serial.schedule.ToString(), parallel.schedule.ToString());

  // A memoizing cache replays the same pure function: identical stats, and
  // the second tune is answered entirely from cache.
  CostCache cache;
  SlicingResult cached = MhaSlicingResult(256);
  TuningStats cached_stats = TuneKernel(&cached, cost, rc, TunerOptions(), &cache);
  EXPECT_TRUE(StatsIdentical(serial_stats, cached_stats));
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, cached_stats.configs_tried);

  TuningStats replay_stats = TuneKernel(&cached, cost, rc, TunerOptions(), &cache);
  EXPECT_TRUE(StatsIdentical(serial_stats, replay_stats));
  EXPECT_EQ(cache.stats().hits, replay_stats.configs_tried);
  EXPECT_EQ(cache.stats().misses, cached_stats.configs_tried);
}

// Compiling a whole model must select identical schedules and report
// identical cost-model values at SPACEFUSION_JOBS=1 and =8.
TEST_F(DeterminismTest, CompileModelIdenticalAcrossJobCounts) {
  ModelGraph model = BuildModel(GetModelConfig(ModelKind::kBert, /*batch=*/1, /*seq=*/128));

  auto fingerprint = [&](int jobs) {
    ResetGlobalThreadPool(jobs);
    Compiler compiler{CompileOptions(AmpereA100())};
    StatusOr<CompiledModel> compiled = compiler.CompileModel(model);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    std::string out;
    for (const CompiledSubprogram& sub : compiled->unique_subprograms) {
      for (const SmgSchedule& kernel : sub.program.kernels) {
        out += kernel.ToString();
      }
      char line[128];
      std::snprintf(line, sizeof(line), "est=%.17g tune=%.17g tried=%d\n", sub.estimate.time_us,
                    sub.tuning.simulated_tuning_seconds, sub.tuning.configs_tried);
      out += line;
    }
    char total[128];
    std::snprintf(total, sizeof(total), "total=%.17g tuning_s=%.17g", compiled->total.time_us,
                  compiled->compile_time.tuning_s);
    out += total;
    return out;
  };

  std::string serial = fingerprint(1);
  std::string parallel = fingerprint(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

// Both code emitters — Triton text and the native C++ the JIT compiles —
// must be byte-identical across job counts and across repeated compiles:
// the jit cache content-addresses kernels by a hash of the emitted source,
// so any nondeterminism here would shatter cache hit rates (and the
// --emit-kernels artifacts would churn between CI runs).
TEST_F(DeterminismTest, EmittedKernelSourceIdenticalAcrossJobCounts) {
  Graph g = BuildMha(/*batch_heads=*/12, /*seq_q=*/128, /*seq_kv=*/128, /*head_dim=*/64);

  auto emit = [&](int jobs) {
    ResetGlobalThreadPool(jobs);
    Compiler compiler{CompileOptions(AmpereA100())};
    StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    std::string triton = EmitTritonProgram(compiled->program);
    StatusOr<std::string> cpp = EmitCppProgram(compiled->program);
    EXPECT_TRUE(cpp.ok()) << cpp.status().ToString();
    return triton + "\n=====\n" + (cpp.ok() ? cpp.value() : "");
  };

  std::string serial = emit(1);
  std::string serial_again = emit(1);
  std::string parallel = emit(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, serial_again) << "emitters are nondeterministic across repeated compiles";
  EXPECT_EQ(serial, parallel) << "emitted kernel source depends on SPACEFUSION_JOBS";
}

// Regression pin for the Table 4/5 fix: simulated_tuning_seconds models the
// GPU measuring configurations *serially* (20 warm-up + 100 timed runs per
// config, early-quit at alpha x the incumbent's total), independent of how
// many host threads evaluated the cost model. The independent re-derivation
// below must match the tuner bit-for-bit at jobs=8.
TEST_F(DeterminismTest, SimulatedTuningSecondsModelsSerialMeasurement) {
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  CostModel cost(AmpereA100());
  TunerOptions options;
  // The serial reference below replays the measurement schedule over the
  // FULL sweep; disable stage-1 screening so every config reaches the
  // modeled GPU. (Screening interaction is covered by
  // ScreeningPreservesSelectionAcrossJobCounts.)
  options.screen_top_k = 0;

  SlicingResult result = MhaSlicingResult(256);
  std::vector<ScheduleConfig> configs = result.configs;
  SmgSchedule probe = result.schedule;

  // Serial reference: replay the measurement schedule one config at a time.
  double expected_seconds = 0.0;
  double best_time = 0.0;
  double best_total = 0.0;
  bool have_best = false;
  const int total_runs = options.warmup_runs + options.timed_runs;
  for (const ScheduleConfig& config : configs) {
    probe.ApplyConfig(config);
    PlanMemory(&probe, rc);
    AddressMap addresses;
    double t = cost.EstimateKernel(LowerSchedule(probe, &addresses)).time_us;
    double full = t * total_runs;
    double charged = full;
    if (have_best && full > options.early_quit_alpha * best_total) {
      charged = std::min(full, options.early_quit_alpha * best_total + t);
    }
    expected_seconds += charged * 1e-6;
    if (!have_best || t < best_time) {
      have_best = true;
      best_time = t;
      best_total = full;
    }
  }

  ResetGlobalThreadPool(8);
  TuningStats stats = TuneKernel(&result, cost, rc, options);
  EXPECT_EQ(stats.simulated_tuning_seconds, expected_seconds);

  // Pin against the known value for this MHA(32,256) kernel on A100 so a
  // future change to the measurement model cannot slip through silently.
  // (Loose relative tolerance: the value must survive libm differences
  // across toolchains, not bit-rot within one.)
  EXPECT_NEAR(stats.simulated_tuning_seconds, 1.14336, 0.01);
}

// Acceptance gate for staged-fidelity tuning: on every built-in model, the
// schedules the compiler selects with stage-1 screening enabled (the
// default) are bit-identical to the exhaustive screening-off sweep, at every
// job count — and each mode's fingerprint is itself identical across job
// counts. Only the schedule/program part is compared; tuning *seconds*
// legitimately shrink when fewer configs reach the modeled GPU.
TEST_F(DeterminismTest, ScreeningPreservesSelectionAcrossJobCounts) {
  for (ModelKind kind : AllModelKinds()) {
    ModelGraph model = BuildModel(GetModelConfig(kind, /*batch=*/1, /*seq=*/128));

    auto fingerprint = [&](int jobs, int screen_top_k) {
      ResetGlobalThreadPool(jobs);
      CompileOptions options(AmpereA100());
      options.tuner.screen_top_k = screen_top_k;
      Compiler compiler{options};
      StatusOr<CompiledModel> compiled = compiler.CompileModel(model);
      EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
      std::string out;
      for (const CompiledSubprogram& sub : compiled->unique_subprograms) {
        for (const SmgSchedule& kernel : sub.program.kernels) {
          out += kernel.ToString();
        }
        char line[64];
        std::snprintf(line, sizeof(line), "est=%.17g\n", sub.estimate.time_us);
        out += line;
      }
      return out;
    };

    std::string screened_serial = fingerprint(1, /*screen_top_k=*/-1);
    std::string screened_parallel = fingerprint(8, /*screen_top_k=*/-1);
    std::string full_serial = fingerprint(1, /*screen_top_k=*/0);
    std::string full_parallel = fingerprint(8, /*screen_top_k=*/0);

    EXPECT_FALSE(screened_serial.empty()) << ModelKindName(kind);
    EXPECT_EQ(screened_serial, screened_parallel) << ModelKindName(kind);
    EXPECT_EQ(full_serial, full_parallel) << ModelKindName(kind);
    EXPECT_EQ(screened_serial, full_serial)
        << ModelKindName(kind) << ": screening changed the selected schedule";
  }
}

// Acceptance gate for the pass-manager/engine refactor: on every built-in
// model, compiling through a CompilerEngine yields bit-identical schedules,
// estimates, and simulated tuning seconds at SPACEFUSION_JOBS=1 and =8 —
// and an engine serving the model from its program cache reports the same
// fingerprint as the cold compile.
TEST_F(DeterminismTest, EngineCompileIdenticalAcrossJobCountsAllModels) {
  for (ModelKind kind : AllModelKinds()) {
    ModelGraph model = BuildModel(GetModelConfig(kind, /*batch=*/1, /*seq=*/128));

    auto model_fingerprint = [](const CompiledModel& compiled) {
      std::string out;
      for (const CompiledSubprogram& sub : compiled.unique_subprograms) {
        for (const SmgSchedule& kernel : sub.program.kernels) {
          out += kernel.ToString();
        }
        char line[160];
        std::snprintf(line, sizeof(line), "est=%.17g tune=%.17g tried=%d screened=%d\n",
                      sub.estimate.time_us, sub.tuning.simulated_tuning_seconds,
                      sub.tuning.configs_tried, sub.tuning.configs_screened);
        out += line;
      }
      char total[128];
      std::snprintf(total, sizeof(total), "total=%.17g tuning_s=%.17g", compiled.total.time_us,
                    compiled.compile_time.tuning_s);
      out += total;
      return out;
    };

    auto cold = [&](int jobs) {
      ResetGlobalThreadPool(jobs);
      CompilerEngine engine{CompileOptions(AmpereA100())};
      StatusOr<CompiledModel> compiled = engine.CompileModel(model);
      EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
      return model_fingerprint(*compiled);
    };

    std::string serial = cold(1);
    std::string parallel = cold(8);
    EXPECT_FALSE(serial.empty()) << ModelKindName(kind);
    EXPECT_EQ(serial, parallel) << ModelKindName(kind);

    // Second compile on one engine is served from the program cache and
    // must be indistinguishable from the cold result.
    ResetGlobalThreadPool(8);
    CompilerEngine engine{CompileOptions(AmpereA100())};
    StatusOr<CompiledModel> first = engine.CompileModel(model);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    StatusOr<CompiledModel> cached = engine.CompileModel(model);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    EXPECT_GE(engine.cache_stats().hits, 1) << ModelKindName(kind);
    EXPECT_EQ(model_fingerprint(*first), serial) << ModelKindName(kind);
    EXPECT_EQ(model_fingerprint(*cached), serial) << ModelKindName(kind);
  }
}

// The persistent program cache joins the determinism contract: an engine
// warming from disk (a restarted daemon) must produce schedules, estimates,
// and simulated tuning seconds bit-identical to the cold compile that wrote
// the cache — at every SPACEFUSION_JOBS value, since a persistent hit must
// not depend on tuner parallelism at all.
TEST_F(DeterminismTest, WarmFromDiskIdenticalToColdAllModels) {
  const std::string cache_dir = testing::TempDir() + "/sf_determinism_warm_cache";
  std::filesystem::remove_all(cache_dir);

  auto model_fingerprint = [](const CompiledModel& compiled) {
    std::string out;
    for (const CompiledSubprogram& sub : compiled.unique_subprograms) {
      for (const SmgSchedule& kernel : sub.program.kernels) {
        out += kernel.ToString();
      }
      char line[160];
      std::snprintf(line, sizeof(line), "est=%.17g tune=%.17g tried=%d screened=%d\n",
                    sub.estimate.time_us, sub.tuning.simulated_tuning_seconds,
                    sub.tuning.configs_tried, sub.tuning.configs_screened);
      out += line;
    }
    char total[128];
    std::snprintf(total, sizeof(total), "total=%.17g tuning_s=%.17g", compiled.total.time_us,
                  compiled.compile_time.tuning_s);
    out += total;
    return out;
  };

  auto compile_with_cache = [&](ModelKind kind, int jobs, std::string* outcome,
                                CompilerEngine::CacheStats* stats) {
    ResetGlobalThreadPool(jobs);
    EngineOptions options{CompileOptions(AmpereA100())};
    options.cache_dir = cache_dir;
    CompilerEngine engine(options);
    ModelGraph model = BuildModel(GetModelConfig(kind, /*batch=*/1, /*seq=*/128));
    StatusOr<CompiledModel> compiled = engine.CompileModel(model);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    *outcome = compiled->report.outcome;
    *stats = engine.cache_stats();
    return model_fingerprint(*compiled);
  };

  for (ModelKind kind : AllModelKinds()) {
    std::string outcome;
    CompilerEngine::CacheStats stats;
    const std::string cold = compile_with_cache(kind, /*jobs=*/1, &outcome, &stats);
    // Albert shares Bert's subprogram structure, so by the time it compiles
    // the cache already holds its programs; everything else starts cold.
    ASSERT_TRUE(outcome == "cold" || kind == ModelKind::kAlbert) << ModelKindName(kind);

    for (int jobs : {1, 8}) {
      const std::string warm = compile_with_cache(kind, jobs, &outcome, &stats);
      EXPECT_EQ(warm, cold) << ModelKindName(kind) << " jobs=" << jobs;
      EXPECT_EQ(outcome, "persistent_hit") << ModelKindName(kind) << " jobs=" << jobs;
      EXPECT_GT(stats.persistent_hits, 0) << ModelKindName(kind);
      EXPECT_EQ(stats.persistent_stale, 0);
      EXPECT_EQ(stats.persistent_corrupt, 0);
    }
  }
}

// Stale entries — written under a different key context, here a different
// architecture — are silently ignored: the engine compiles cold, the result
// is bit-identical to a never-cached compile, and only the stale counter
// betrays that anything was found on disk.
TEST_F(DeterminismTest, StaleCacheEntriesFallBackToColdSilently) {
  const std::string cache_dir = testing::TempDir() + "/sf_determinism_stale_cache";
  std::filesystem::remove_all(cache_dir);

  EngineOptions options{CompileOptions(AmpereA100())};
  options.cache_dir = cache_dir;
  ModelGraph model = BuildModel(GetModelConfig(ModelKind::kBert, /*batch=*/1, /*seq=*/128));

  ResetGlobalThreadPool(8);
  std::string cold_schedules;
  {
    CompilerEngine engine(options);
    StatusOr<CompiledModel> compiled = engine.CompileModel(model);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    for (const CompiledSubprogram& sub : compiled->unique_subprograms) {
      for (const SmgSchedule& kernel : sub.program.kernels) {
        cold_schedules += kernel.ToString();
      }
    }
  }

  // Rewrite every entry as if it had been compiled for another arch: the
  // file is intact (checksum passes) but the key context no longer matches.
  for (const std::string& name : ListDirectory(cache_dir)) {
    const std::string path = cache_dir + "/" + name;
    StatusOr<std::string> bytes = ReadFileToString(path);
    ASSERT_TRUE(bytes.ok());
    PersistedProgram entry;
    ASSERT_TRUE(DecodePersistedProgram(*bytes, &entry).ok());
    entry.arch = "Volta";
    ASSERT_TRUE(AtomicWriteFile(path, EncodePersistedProgram(entry)).ok());
  }

  CompilerEngine engine(options);
  StatusOr<CompiledModel> recompiled = engine.CompileModel(model);
  ASSERT_TRUE(recompiled.ok()) << recompiled.status().ToString();
  EXPECT_EQ(recompiled->report.outcome, "cold");
  std::string stale_schedules;
  for (const CompiledSubprogram& sub : recompiled->unique_subprograms) {
    for (const SmgSchedule& kernel : sub.program.kernels) {
      stale_schedules += kernel.ToString();
    }
  }
  EXPECT_EQ(stale_schedules, cold_schedules);
  CompilerEngine::CacheStats stats = engine.cache_stats();
  EXPECT_GT(stats.persistent_stale, 0);
  EXPECT_EQ(stats.persistent_hits, 0);
  EXPECT_EQ(stats.persistent_corrupt, 0);
}

// ---------------------------------------------------------------------------
// Observability must be a pure observer: turning reporting on (a capturing
// sink plus per-request labeled metrics) cannot change a single bit of the
// compilation output, and the always-on instrumentation (report assembly,
// flight recorder) must cost ~nothing when no sink is attached.

class NullReportSink : public ReportSink {
 public:
  void Emit(const CompileReport& report) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++emitted_;
    last_ = report;
  }
  int emitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return emitted_;
  }

 private:
  mutable std::mutex mu_;
  int emitted_ = 0;
  CompileReport last_;
};

TEST_F(DeterminismTest, SchedulesBitIdenticalWithReportingOnAndOff) {
  ModelGraph model = BuildModel(GetModelConfig(ModelKind::kBert, /*batch=*/1, /*seq=*/128));

  auto model_fingerprint = [](const CompiledModel& compiled) {
    std::string out;
    for (const CompiledSubprogram& sub : compiled.unique_subprograms) {
      for (const SmgSchedule& kernel : sub.program.kernels) {
        out += kernel.ToString();
      }
      char line[160];
      std::snprintf(line, sizeof(line), "est=%.17g tune=%.17g tried=%d\n", sub.estimate.time_us,
                    sub.tuning.simulated_tuning_seconds, sub.tuning.configs_tried);
      out += line;
    }
    char total[128];
    std::snprintf(total, sizeof(total), "total=%.17g tuning_s=%.17g", compiled.total.time_us,
                  compiled.compile_time.tuning_s);
    out += total;
    return out;
  };

  ResetGlobalThreadPool(8);
  CompilerEngine plain{CompileOptions(AmpereA100())};
  StatusOr<CompiledModel> off = plain.CompileModel(model);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  NullReportSink sink;
  EngineOptions reporting{CompileOptions(AmpereA100())};
  reporting.report_sink = &sink;
  reporting.label_metrics_by_request = true;
  CompilerEngine observed{reporting};
  StatusOr<CompiledModel> on = observed.CompileModel(model);
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  EXPECT_GT(sink.emitted(), 0);  // reporting actually ran
  EXPECT_EQ(model_fingerprint(*off), model_fingerprint(*on));
  // The merged model report mirrors the result it rides on.
  EXPECT_EQ(on->report.modeled_time_us, on->total.time_us);
  EXPECT_EQ(on->report.outcome, "cold");
}

TEST_F(DeterminismTest, ReportingOverheadIsNegligible) {
  // Median cold-compile wall time with default (sink-less) reporting vs a
  // live sink + labeled metrics. Locally the delta is well under 1%; the
  // bound is deliberately loose (2x on the median of 5) so scheduler noise
  // on shared CI runners can never flake this test while a real O(compile)
  // regression — e.g. rendering every report to JSON on the hot path —
  // still trips it.
  ResetGlobalThreadPool(4);
  Graph g = BuildMha(4, 128, 128, 64);

  auto median_compile_ms = [&](bool with_reporting) {
    NullReportSink sink;
    std::vector<double> samples;
    for (int i = 0; i < 5; ++i) {
      EngineOptions options{CompileOptions(AmpereA100())};
      options.enable_program_cache = false;  // every iteration compiles cold
      if (with_reporting) {
        options.report_sink = &sink;
        options.label_metrics_by_request = true;
      }
      CompilerEngine engine{options};
      auto start = std::chrono::steady_clock::now();
      StatusOr<CompiledSubprogram> compiled = engine.Compile(g);
      EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
      samples.push_back(
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
              .count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };

  double off_ms = median_compile_ms(false);
  double on_ms = median_compile_ms(true);
  EXPECT_GT(off_ms, 0.0);
  EXPECT_LT(on_ms, off_ms * 2.0 + 1.0)
      << "reporting on: " << on_ms << " ms vs off: " << off_ms << " ms";
}

}  // namespace
}  // namespace spacefusion
