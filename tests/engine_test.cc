// Tests for CompilerEngine (src/core/engine): the cross-model structural
// program cache (hit/miss/collision semantics, options digest), equality of
// cached and cold-compiled results, and thread-safety of concurrent compile
// requests against one engine.
#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/graph/models.h"
#include "src/graph/subgraphs.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"

namespace spacefusion {
namespace {

std::string ProgramFingerprint(const CompiledSubprogram& sub) {
  std::string fp;
  for (const SmgSchedule& kernel : sub.program.kernels) {
    fp += kernel.ToString();
  }
  return fp;
}

void ExpectSameReport(const ExecutionReport& a, const ExecutionReport& b) {
  EXPECT_EQ(a.time_us, b.time_us);
  EXPECT_EQ(a.kernel_count, b.kernel_count);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
  EXPECT_EQ(a.l2_accesses, b.l2_accesses);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
}

// Two single-subprogram "models" whose graphs have different tensor/op/graph
// names but identical structure: the second compile must be a structural
// cache hit with an estimate identical to the cold compile.
TEST(EngineCacheTest, CrossModelStructuralHit) {
  MetricsRegistry::Global().Reset();
  CompilerEngine engine{CompileOptions()};

  Graph first = BuildMha(4, 64, 64, 32);
  StatusOr<CompiledSubprogram> cold = engine.Compile(first);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(engine.cache_stats().hits, 0);
  EXPECT_EQ(engine.cache_stats().misses, 1);

  // Same constructor arguments produce the same structure; the graph and its
  // tensors keep their own (identical) generated names, so rename everything
  // to prove the cache is structural, not name-based.
  Graph second = BuildMha(4, 64, 64, 32);
  second.set_name("mha_from_another_model");

  StatusOr<CompiledSubprogram> warm = engine.Compile(second);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(engine.cache_stats().hits, 1);
  EXPECT_EQ(engine.cache_stats().misses, 1);
  EXPECT_EQ(engine.cache_stats().collisions, 0);
  EXPECT_EQ(engine.program_cache_size(), 1);

  // Acceptance pin: the cached result is indistinguishable from the cold one.
  ExpectSameReport(warm->estimate, cold->estimate);
  EXPECT_EQ(ProgramFingerprint(*warm), ProgramFingerprint(*cold));
  EXPECT_EQ(warm->tuning.simulated_tuning_seconds, cold->tuning.simulated_tuning_seconds);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snapshot.counter("engine.cache.hits"), 1);
  EXPECT_GE(snapshot.counter("engine.cache.misses"), 1);
}

TEST(EngineCacheTest, CrossModelHitThroughCompileModel) {
  CompilerEngine engine{CompileOptions()};

  // Model A lists the QKV projection twice (intra-model repeat); model B
  // lists it five times plus an MLP only it has.
  ModelGraph model_a;
  model_a.subprograms.push_back({BuildQkvProj(128, 256, 256), /*repeat=*/1});
  model_a.subprograms.push_back({BuildQkvProj(128, 256, 256), /*repeat=*/1});
  ModelGraph model_b;
  for (int i = 0; i < 5; ++i) {
    model_b.subprograms.push_back({BuildQkvProj(128, 256, 256), /*repeat=*/1});
  }
  model_b.subprograms.push_back({BuildMlp(1, 64, 64, 64), /*repeat=*/1});

  StatusOr<CompiledModel> a = engine.CompileModel(model_a);
  ASSERT_TRUE(a.ok());
  CompilerEngine::CacheStats after_a = engine.cache_stats();
  EXPECT_EQ(after_a.hits, 0);
  EXPECT_EQ(after_a.misses, 1);

  StatusOr<CompiledModel> b = engine.CompileModel(model_b);
  ASSERT_TRUE(b.ok());
  CompilerEngine::CacheStats after_b = engine.cache_stats();
  EXPECT_EQ(after_b.hits, 1);  // model B's QKV projection reuses model A's
  EXPECT_EQ(after_b.misses, 2);

  // The shared subprogram compiles to the same estimate in both models.
  ExpectSameReport(a->unique_subprograms[0].estimate, b->unique_subprograms[0].estimate);
  // Intra-model repeats stay a separate statistic from cross-model reuse.
  EXPECT_EQ(a->cache_hits, 1);
  EXPECT_EQ(b->cache_hits, 4);
}

TEST(EngineCacheTest, MissOnDifferentArchitecture) {
  CompilerEngine engine{CompileOptions()};
  Graph g = BuildMlp(2, 64, 64, 64);
  ASSERT_TRUE(engine.Compile(g).ok());

  CompileOptions volta{VoltaV100()};
  StatusOr<CompiledSubprogram> on_volta = engine.Compile(g, volta);
  ASSERT_TRUE(on_volta.ok());

  CompilerEngine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 2);  // same structure, different options digest
  EXPECT_EQ(engine.program_cache_size(), 2);
}

TEST(EngineCacheTest, MissOnDifferentOptionsDigest) {
  CompilerEngine engine{CompileOptions()};
  Graph g = BuildMlp(2, 64, 64, 64);
  ASSERT_TRUE(engine.Compile(g).ok());

  CompileOptions exhaustive;
  exhaustive.tuner.screen_top_k = 0;
  ASSERT_TRUE(engine.Compile(g, exhaustive).ok());
  EXPECT_EQ(engine.cache_stats().misses, 2);

  // Repeating either options flavor now hits its own entry.
  ASSERT_TRUE(engine.Compile(g).ok());
  ASSERT_TRUE(engine.Compile(g, exhaustive).ok());
  EXPECT_EQ(engine.cache_stats().hits, 2);
  EXPECT_EQ(engine.cache_stats().misses, 2);
}

TEST(EngineCacheTest, OptionsDigestIsStableAndSensitive) {
  CompileOptions a;
  CompileOptions b;
  EXPECT_EQ(CompileOptionsDigest(a), CompileOptionsDigest(b));

  b.arch = HopperH100();
  EXPECT_NE(CompileOptionsDigest(a), CompileOptionsDigest(b));

  CompileOptions c;
  c.tuner.screen_top_k = 0;
  EXPECT_NE(CompileOptionsDigest(a), CompileOptionsDigest(c));

  CompileOptions d;
  d.enable_auto_scheduling = false;
  EXPECT_NE(CompileOptionsDigest(a), CompileOptionsDigest(d));

  CompileOptions e;
  e.verify = VerifyMode::kFull;
  EXPECT_NE(CompileOptionsDigest(a), CompileOptionsDigest(e));
}

// Forcing every graph onto one fingerprint bucket exercises the
// canonical-form comparison: structurally different graphs must not be
// served each other's programs, and the mismatches are counted.
TEST(EngineCacheTest, FingerprintCollisionFallsBackToCanonicalComparison) {
  MetricsRegistry::Global().Reset();
  EngineOptions options{CompileOptions()};
  options.fingerprint_fn = [](const Graph&) { return 42ULL; };
  CompilerEngine engine{options};

  Graph mha = BuildMha(4, 64, 64, 32);
  Graph mlp = BuildMlp(2, 64, 64, 64);

  StatusOr<CompiledSubprogram> cold_mha = engine.Compile(mha);
  ASSERT_TRUE(cold_mha.ok());
  StatusOr<CompiledSubprogram> cold_mlp = engine.Compile(mlp);
  ASSERT_TRUE(cold_mlp.ok());

  CompilerEngine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_GE(stats.collisions, 1);  // mlp walked past mha's entry
  EXPECT_EQ(engine.program_cache_size(), 2);  // both live in bucket 42

  // Both graphs still hit their own entries afterwards, with the right
  // programs.
  StatusOr<CompiledSubprogram> warm_mlp = engine.Compile(mlp);
  ASSERT_TRUE(warm_mlp.ok());
  StatusOr<CompiledSubprogram> warm_mha = engine.Compile(mha);
  ASSERT_TRUE(warm_mha.ok());
  EXPECT_EQ(engine.cache_stats().hits, 2);
  EXPECT_EQ(ProgramFingerprint(*warm_mlp), ProgramFingerprint(*cold_mlp));
  EXPECT_EQ(ProgramFingerprint(*warm_mha), ProgramFingerprint(*cold_mha));
  EXPECT_NE(ProgramFingerprint(*warm_mha), ProgramFingerprint(*warm_mlp));

  EXPECT_GE(MetricsRegistry::Global().Snapshot().counter("engine.cache.collisions"), 1);
}

// Determinism pin: an engine-cached compile equals a cold compile from a
// fresh engine bit-for-bit, across everything a caller can observe.
TEST(EngineCacheTest, CachedEqualsColdBitForBit) {
  CompilerEngine warm_engine{CompileOptions()};
  Graph g = BuildMha(8, 128, 128, 64);
  ASSERT_TRUE(warm_engine.Compile(g).ok());
  StatusOr<CompiledSubprogram> cached = warm_engine.Compile(g);
  ASSERT_TRUE(cached.ok());
  ASSERT_EQ(warm_engine.cache_stats().hits, 1);

  CompilerEngine cold_engine{CompileOptions()};
  StatusOr<CompiledSubprogram> cold = cold_engine.Compile(g);
  ASSERT_TRUE(cold.ok());

  EXPECT_EQ(ProgramFingerprint(*cached), ProgramFingerprint(*cold));
  ExpectSameReport(cached->estimate, cold->estimate);
  EXPECT_EQ(cached->tuning.simulated_tuning_seconds, cold->tuning.simulated_tuning_seconds);
  EXPECT_EQ(cached->tuning.configs_tried, cold->tuning.configs_tried);
  EXPECT_EQ(cached->tuning.configs_screened, cold->tuning.configs_screened);
  EXPECT_EQ(cached->tuning.configs_early_quit, cold->tuning.configs_early_quit);
  EXPECT_EQ(cached->candidate_programs, cold->candidate_programs);
  ASSERT_EQ(cached->kernels.size(), cold->kernels.size());
}

TEST(EngineCacheTest, DisabledCacheCompilesEveryRequestCold) {
  EngineOptions options{CompileOptions()};
  options.enable_program_cache = false;
  CompilerEngine engine{options};

  Graph g = BuildMlp(2, 64, 64, 64);
  StatusOr<CompiledSubprogram> first = engine.Compile(g);
  StatusOr<CompiledSubprogram> second = engine.Compile(g);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.cache_stats().hits, 0);
  EXPECT_EQ(engine.program_cache_size(), 0);
  // Determinism holds regardless: both cold compiles agree.
  EXPECT_EQ(ProgramFingerprint(*first), ProgramFingerprint(*second));
}

// Many threads, mixed duplicate and distinct graphs, one engine. Run under
// TSan by the concurrency CI job (test name contains "Engine").
TEST(EngineConcurrencyTest, ParallelCompileRequestsShareTheCache) {
  CompilerEngine engine{CompileOptions()};
  constexpr int kThreads = 8;

  std::vector<Graph> graphs;
  graphs.push_back(BuildMha(4, 64, 64, 32));
  graphs.push_back(BuildMlp(2, 64, 64, 64));
  graphs.push_back(BuildQkvProj(128, 256, 256));

  std::vector<std::string> fingerprints(kThreads);
  std::vector<Status> statuses(kThreads, Status::Ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Graph& g = graphs[static_cast<size_t>(t) % graphs.size()];
      StatusOr<CompiledSubprogram> compiled = engine.Compile(g);
      if (compiled.ok()) {
        fingerprints[static_cast<size_t>(t)] = ProgramFingerprint(*compiled);
      } else {
        statuses[static_cast<size_t>(t)] = compiled.status();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(statuses[static_cast<size_t>(t)].ok())
        << statuses[static_cast<size_t>(t)].ToString();
    // Every thread compiling the same graph got the same program.
    EXPECT_EQ(fingerprints[static_cast<size_t>(t)],
              fingerprints[static_cast<size_t>(t) % graphs.size()]);
  }
  CompilerEngine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(engine.program_cache_size(), 3);
  // Racing threads may both miss the same graph before either inserts, so
  // misses can exceed the distinct-graph count; accounting still balances.
  EXPECT_GE(stats.misses, 3);
  EXPECT_EQ(stats.hits + stats.misses, kThreads);
}

TEST(EngineConcurrencyTest, ParallelCompileModelRequests) {
  CompilerEngine engine{CompileOptions()};
  constexpr int kThreads = 4;

  std::vector<StatusOr<CompiledModel>> results;
  results.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    results.push_back(NotFound("not run"));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ModelGraph model;
      model.subprograms.push_back({BuildMha(4, 64, 64, 32), /*repeat=*/2});
      model.subprograms.push_back({BuildMlp(2, 64, 64, 64), /*repeat=*/3});
      results[static_cast<size_t>(t)] = engine.CompileModel(model);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_TRUE(results[static_cast<size_t>(t)].ok());
    ExpectSameReport(results[static_cast<size_t>(t)]->total, results[0]->total);
    EXPECT_EQ(results[static_cast<size_t>(t)]->compile_time.tuning_s,
              results[0]->compile_time.tuning_s);
  }
  EXPECT_EQ(engine.program_cache_size(), 2);
}

// ---------------------------------------------------------------------------
// CompileReports: every request — cold, cache hit, failed, collided — emits
// one correctly attributed report to the engine's sink.

class CapturingReportSink : public ReportSink {
 public:
  void Emit(const CompileReport& report) override {
    std::lock_guard<std::mutex> lock(mu_);
    reports_.push_back(report);
  }

  std::vector<CompileReport> reports() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reports_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<CompileReport> reports_;
};

TEST(EngineReportTest, ColdThenCacheHitOutcomes) {
  CapturingReportSink sink;
  EngineOptions options{CompileOptions()};
  options.report_sink = &sink;
  CompilerEngine engine{options};

  Graph g = BuildMha(4, 64, 64, 32);
  StatusOr<CompiledSubprogram> cold = engine.Compile(g);
  ASSERT_TRUE(cold.ok());
  StatusOr<CompiledSubprogram> warm = engine.Compile(g);
  ASSERT_TRUE(warm.ok());

  std::vector<CompileReport> reports = sink.reports();
  ASSERT_EQ(reports.size(), 2u);
  const CompileReport& first = reports[0];
  const CompileReport& second = reports[1];

  EXPECT_EQ(first.outcome, "cold");
  EXPECT_FALSE(first.request_id.empty());
  EXPECT_EQ(first.graph_fingerprint, g.StructuralHash());
  EXPECT_EQ(first.options_digest, CompileOptionsDigest(engine.options()));
  EXPECT_FALSE(first.passes.empty());
  EXPECT_GT(first.PassWallMs("Tune"), 0.0);
  EXPECT_GT(first.wall_ms, 0.0);
  EXPECT_GT(first.configs_enumerated, 0);
  EXPECT_GT(first.configs_admitted, 0);
  EXPECT_GT(first.tuning_seconds, 0.0);
  EXPECT_GT(first.kernels, 0);
  EXPECT_GT(first.modeled_time_us, 0.0);
  EXPECT_FALSE(first.cache_collision);
  EXPECT_TRUE(first.status_message.empty());
  // The request id on the compiled program matches its report.
  EXPECT_EQ(cold->request_id, first.request_id);

  EXPECT_EQ(second.outcome, "cache_hit");
  EXPECT_NE(second.request_id, first.request_id);
  EXPECT_EQ(second.graph_fingerprint, first.graph_fingerprint);
  // Cache hits run no passes but still summarize the served program.
  EXPECT_TRUE(second.passes.empty());
  EXPECT_EQ(second.modeled_time_us, first.modeled_time_us);
  EXPECT_EQ(second.kernels, first.kernels);
  EXPECT_EQ(warm->request_id, second.request_id);

  // Reports round-trip through their JSON wire format.
  StatusOr<CompileReport> parsed = CompileReport::FromJson(first.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().request_id, first.request_id);
}

TEST(EngineReportTest, FailedCompileEmitsErrorReportWithDiagnostics) {
  // The SFV0103 idiom: a unary op whose output shape disagrees with its
  // input fails the BuildSmg entry verifier.
  Graph g("malformed");
  TensorInfo in;
  in.name = "x";
  in.shape = Shape({8, 16});
  in.kind = TensorKind::kInput;
  TensorId x = g.AddTensor(std::move(in));
  TensorInfo out;
  out.name = "y";
  out.shape = Shape({8, 8});
  out.kind = TensorKind::kOutput;
  TensorId y = g.AddTensor(std::move(out));
  Op op;
  op.kind = OpKind::kUnary;
  op.inputs = {x};
  op.output = y;
  op.name = "op";
  g.AddOp(std::move(op));

  CapturingReportSink sink;
  CompileOptions compile_options;
  compile_options.verify = VerifyMode::kPhase;
  EngineOptions options{compile_options};
  options.report_sink = &sink;
  CompilerEngine engine{options};

  StatusOr<CompiledSubprogram> compiled = engine.Compile(g);
  ASSERT_FALSE(compiled.ok());

  std::vector<CompileReport> reports = sink.reports();
  ASSERT_EQ(reports.size(), 1u);
  const CompileReport& report = reports[0];
  EXPECT_EQ(report.outcome, "error");
  EXPECT_NE(report.status_message.find("SFV0103"), std::string::npos) << report.status_message;
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_EQ(report.diagnostics[0].code, "SFV0103");
  EXPECT_EQ(report.diagnostics[0].severity, "error");
  EXPECT_GE(report.verifier_errors, 1);
  EXPECT_GT(report.wall_ms, 0.0);
}

TEST(EngineReportTest, CacheCollisionIsFlaggedOnTheCollidingRequest) {
  CapturingReportSink sink;
  EngineOptions options{CompileOptions()};
  options.fingerprint_fn = [](const Graph&) { return 42ULL; };
  options.report_sink = &sink;
  CompilerEngine engine{options};

  ASSERT_TRUE(engine.Compile(BuildMha(4, 64, 64, 32)).ok());
  ASSERT_TRUE(engine.Compile(BuildMlp(2, 64, 64, 64)).ok());

  std::vector<CompileReport> reports = sink.reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_FALSE(reports[0].cache_collision);
  EXPECT_TRUE(reports[1].cache_collision);
  // The collision compiles fresh: still a cold outcome, not a hit.
  EXPECT_EQ(reports[1].outcome, "cold");
}

// The ISSUE acceptance gate: N threads compiling distinct graphs through
// one engine produce N reports, each attributed to the graph its thread
// compiled (by fingerprint) under a unique request id.
TEST(EngineReportTest, ConcurrentRequestsGetCorrectlyAttributedReports) {
  CapturingReportSink sink;
  EngineOptions options{CompileOptions()};
  options.report_sink = &sink;
  // Per-request labeled metrics stay attributable under concurrency.
  options.label_metrics_by_request = true;
  CompilerEngine engine{options};

  constexpr int kThreads = 4;
  std::vector<Graph> graphs;
  for (int t = 0; t < kThreads; ++t) {
    graphs.push_back(BuildMlp(2, 64 + 32 * t, 64, 64));  // structurally distinct
  }

  std::vector<std::string> request_ids(kThreads);
  std::vector<Status> statuses(kThreads, Status::Ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      StatusOr<CompiledSubprogram> compiled = engine.Compile(graphs[static_cast<size_t>(t)]);
      if (compiled.ok()) {
        request_ids[static_cast<size_t>(t)] = compiled->request_id;
      } else {
        statuses[static_cast<size_t>(t)] = compiled.status();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  std::vector<CompileReport> reports = sink.reports();
  ASSERT_EQ(reports.size(), static_cast<size_t>(kThreads));
  std::set<std::string> unique_ids;
  for (const CompileReport& report : reports) {
    unique_ids.insert(report.request_id);
  }
  EXPECT_EQ(unique_ids.size(), reports.size());

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(statuses[static_cast<size_t>(t)].ok())
        << statuses[static_cast<size_t>(t)].ToString();
    // The report carrying this thread's request id describes this thread's
    // graph — attribution never crosses requests.
    const CompileReport* mine = nullptr;
    for (const CompileReport& report : reports) {
      if (report.request_id == request_ids[static_cast<size_t>(t)]) {
        mine = &report;
      }
    }
    ASSERT_NE(mine, nullptr) << request_ids[static_cast<size_t>(t)];
    EXPECT_EQ(mine->graph_fingerprint, graphs[static_cast<size_t>(t)].StructuralHash());
    EXPECT_EQ(mine->outcome, "cold");
    EXPECT_FALSE(mine->passes.empty());
  }

  // Each request's labeled cache-miss counter is its own time series.
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (const std::string& id : request_ids) {
    EXPECT_EQ(
        snapshot.counter(LabeledMetricName("engine.cache.misses", "request_id", id)), 1)
        << id;
  }
}

// --- Persistent-cache admission (race analysis) ---------------------------

// A program the race analyzer rejects must never reach the on-disk cache:
// the compile itself still succeeds (the caller gets its program), but no
// entry is written and the rejection is counted.
TEST(EngineAdmissionTest, RacyProgramIsNeverPersisted) {
  const std::string cache_dir = testing::TempDir() + "/sf_engine_admission_cache";
  std::filesystem::remove_all(cache_dir);

  EngineOptions options{CompileOptions()};
  options.cache_dir = cache_dir;
  options.admission_analysis = [](const ScheduledProgram&, const Graph& graph) {
    DiagnosticReport report;
    report.AddError("SFV0601", "race", graph.name(), "injected write-write race");
    return report;
  };
  CompilerEngine engine(std::move(options));

  StatusOr<CompiledSubprogram> compiled = engine.Compile(BuildMlp(2, 64, 64, 64));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  EXPECT_EQ(engine.cache_stats().analysis_rejected, 1);
  int entries = 0;
  if (std::filesystem::exists(cache_dir)) {
    for (const auto& e : std::filesystem::directory_iterator(cache_dir)) {
      entries += e.is_regular_file() ? 1 : 0;
    }
  }
  EXPECT_EQ(entries, 0) << "racy program was written to the persistent cache";

  // A fresh engine on the same directory must compile cold: nothing to hit.
  EngineOptions warm_options{CompileOptions()};
  warm_options.cache_dir = cache_dir;
  CompilerEngine warm(std::move(warm_options));
  StatusOr<CompiledSubprogram> again = warm.Compile(BuildMlp(2, 64, 64, 64));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(warm.cache_stats().persistent_hits, 0);
  std::filesystem::remove_all(cache_dir);
}

// The default admission analysis passes clean programs through: the entry
// lands on disk and a restarted engine serves it as a persistent hit.
TEST(EngineAdmissionTest, CleanProgramPersistsAndWarmServes) {
  const std::string cache_dir = testing::TempDir() + "/sf_engine_admission_clean";
  std::filesystem::remove_all(cache_dir);

  {
    EngineOptions options{CompileOptions()};
    options.cache_dir = cache_dir;
    CompilerEngine engine(std::move(options));
    StatusOr<CompiledSubprogram> compiled = engine.Compile(BuildMlp(2, 64, 64, 64));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    EXPECT_EQ(engine.cache_stats().analysis_rejected, 0);
  }

  EngineOptions options{CompileOptions()};
  options.cache_dir = cache_dir;
  CompilerEngine warm(std::move(options));
  StatusOr<CompiledSubprogram> served = warm.Compile(BuildMlp(2, 64, 64, 64));
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(warm.cache_stats().persistent_hits, 1);
  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace spacefusion
