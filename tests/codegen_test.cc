#include <gtest/gtest.h>

#include "src/codegen/triton_codegen.h"
#include "src/graph/subgraphs.h"
#include "src/schedule/pipeline.h"
#include "src/schedule/resource_aware.h"
#include "src/support/string_util.h"
#include "src/sim/arch.h"
#include "src/tuning/tuner.h"

namespace spacefusion {
namespace {

SmgSchedule MakeMhaSchedule() {
  Graph g = BuildMha(4, 128, 512, 64);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, rc);
  EXPECT_TRUE(sliced.ok());
  ApplyExpertConfig(&*sliced, rc);
  return sliced->schedule;
}

TEST(CodegenTest, MhaKernelContainsFlashAttentionStructure) {
  SmgSchedule sched = MakeMhaSchedule();
  ASSERT_TRUE(sched.has_temporal);
  std::string code = EmitTritonKernel(sched);

  // Kernel skeleton.
  EXPECT_NE(code.find("@triton.jit"), std::string::npos);
  EXPECT_NE(code.find("tl.program_id(0)"), std::string::npos);
  EXPECT_NE(code.find("for "), std::string::npos);  // temporal loop
  EXPECT_NE(code.find("STEP"), std::string::npos);

  // Both GEMMs as tl.dot, the softmax as max/exp/sum.
  EXPECT_NE(code.find("tl.dot("), std::string::npos);
  EXPECT_NE(code.find("tl.exp("), std::string::npos);
  EXPECT_NE(code.find("tl.max("), std::string::npos);
  EXPECT_NE(code.find("tl.sum("), std::string::npos);

  // The generated update functions: online-softmax rescaling of the
  // running sum and output (exp(old-new) factors).
  EXPECT_NE(code.find("Update-then-Aggregate"), std::string::npos);
  EXPECT_NE(code.find("_new"), std::string::npos);
  EXPECT_NE(code.find("tl.exp(1 * ("), std::string::npos);

  // Output store and launch stub.
  EXPECT_NE(code.find("tl.store("), std::string::npos);
  EXPECT_NE(code.find("grid = ("), std::string::npos);
}

TEST(CodegenTest, StraightLineKernelHasNoLoop) {
  Graph g = BuildLayerNormGraph(64, 256);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, rc);
  ASSERT_TRUE(sliced.ok());
  ApplyExpertConfig(&*sliced, rc);
  std::string code = EmitTritonKernel(sliced->schedule);
  EXPECT_EQ(code.find("for "), std::string::npos);
  EXPECT_NE(code.find("tl.sqrt("), std::string::npos);
  EXPECT_NE(code.find("tl.sum("), std::string::npos);
}

TEST(CodegenTest, CommentsCanBeDisabled) {
  SmgSchedule sched = MakeMhaSchedule();
  CodegenOptions options;
  options.emit_comments = false;
  options.emit_launch_stub = false;
  std::string code = EmitTritonKernel(sched, options);
  EXPECT_EQ(code.find("# spatial slicing"), std::string::npos);
  EXPECT_EQ(code.find("grid = ("), std::string::npos);
}

TEST(CodegenTest, ProgramEmitsEveryKernel) {
  Graph g = BuildLayerNormGraph(32, 4096);
  ResourceConfig tiny;
  tiny.smem_per_block_max = 4 * 1024;
  tiny.reg_per_block_max = 32 * 1024;
  StatusOr<PipelineResult> pipeline = RunSlicingPipeline(g, tiny, SlicingOptions());
  ASSERT_TRUE(pipeline.ok());
  ScheduledProgram program;
  for (SlicingResult& k : pipeline->candidates.front().kernels) {
    ApplyExpertConfig(&k, tiny);
    program.kernels.push_back(k.schedule);
  }
  ASSERT_GT(program.kernels.size(), 1u);
  std::string code = EmitTritonProgram(program);
  EXPECT_NE(code.find("import triton"), std::string::npos);
  EXPECT_NE(code.find(StrCat("kernel ", program.kernels.size(), "/")), std::string::npos);
}

TEST(CodegenTest, IdentifiersAreSanitized) {
  Graph g = BuildMha(2, 16, 64, 16);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, rc);
  ASSERT_TRUE(sliced.ok());
  ApplyExpertConfig(&*sliced, rc);
  std::string code = EmitTritonKernel(sliced->schedule);
  // Tensor names contain '.' which is illegal in Python identifiers; the
  // emitted code must never produce e.g. "qk.out_ptr".
  EXPECT_EQ(code.find(".out_ptr"), std::string::npos);
}

}  // namespace
}  // namespace spacefusion
