#include <gtest/gtest.h>

#include "src/graph/builder.h"
#include "src/graph/models.h"
#include "src/graph/subgraphs.h"

namespace spacefusion {
namespace {

TEST(BuilderTest, LinearShapesAndKinds) {
  GraphBuilder b("t");
  TensorId x = b.Input("x", Shape({8, 16}));
  TensorId w = b.Weight("w", Shape({16, 4}));
  TensorId bias = b.Weight("b", Shape({4}));
  TensorId out = b.Linear(x, w, bias);
  b.MarkOutput(out);
  Graph g = b.Build();
  EXPECT_EQ(g.tensor(out).shape, Shape({8, 4}));
  EXPECT_EQ(g.tensor(out).kind, TensorKind::kOutput);
  EXPECT_EQ(g.ops().size(), 2u);  // matmul + bias add
  EXPECT_TRUE(g.Validate().ok());
}

TEST(BuilderTest, SoftmaxDecomposition) {
  GraphBuilder b("t");
  TensorId x = b.Input("x", Shape({4, 8}));
  b.MarkOutput(b.Softmax(x));
  Graph g = b.Build();
  // max, sub, exp, sum, div.
  EXPECT_EQ(g.ops().size(), 5u);
  int reduces = 0;
  for (const Op& op : g.ops()) {
    if (op.kind == OpKind::kReduce) {
      ++reduces;
    }
  }
  EXPECT_EQ(reduces, 2);
}

TEST(BuilderTest, ConstantDoesNotPromoteDtype) {
  GraphBuilder b("t");
  TensorId x = b.Input("x", Shape({4, 8}));  // f16
  TensorId scaled = b.Scale(x, 0.5f);
  b.MarkOutput(scaled);
  Graph g = b.Build();
  EXPECT_EQ(g.tensor(scaled).dtype, DType::kF16);
}

TEST(GraphTest, ProducerConsumerLinks) {
  GraphBuilder b("t");
  TensorId x = b.Input("x", Shape({4}));
  TensorId y = b.Relu(x);
  TensorId z = b.Add(y, y);
  b.MarkOutput(z);
  Graph g = b.Build();
  EXPECT_EQ(g.producer(x), -1);
  EXPECT_EQ(g.producer(y), 0);
  // The add reads y twice: one consumer entry per input slot.
  ASSERT_EQ(g.consumers(y).size(), 2u);
  EXPECT_EQ(g.consumers(y)[0], 1);
  EXPECT_EQ(g.consumers(y)[1], 1);
}

TEST(GraphTest, ValidateCatchesBadShape) {
  Graph g("bad");
  TensorInfo a;
  a.name = "a";
  a.shape = Shape({2, 2});
  a.kind = TensorKind::kInput;
  TensorId ta = g.AddTensor(a);
  TensorInfo o;
  o.name = "o";
  o.shape = Shape({3, 3});  // wrong: unary preserves shape
  o.kind = TensorKind::kOutput;
  TensorId to = g.AddTensor(o);
  Op op;
  op.kind = OpKind::kUnary;
  op.inputs = {ta};
  op.output = to;
  op.name = "u";
  g.AddOp(op);
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphTest, StructuralHashIgnoresNames) {
  Graph a = BuildMlp(2, 64, 32, 32);
  Graph b = BuildMlp(2, 64, 32, 32);
  b.set_name("renamed");
  EXPECT_EQ(a.StructuralHash(), b.StructuralHash());
  Graph c = BuildMlp(2, 64, 32, 16);
  EXPECT_NE(a.StructuralHash(), c.StructuralHash());
}

TEST(GraphTest, TopologyHashIgnoresShapes) {
  Graph a = BuildMha(4, 64, 64, 32);
  Graph b = BuildMha(8, 128, 128, 64);
  EXPECT_EQ(a.TopologyHash(), b.TopologyHash());
  EXPECT_NE(a.StructuralHash(), b.StructuralHash());
  Graph c = BuildMha(4, 64, 64, 32, /*masked=*/true);
  EXPECT_NE(a.TopologyHash(), c.TopologyHash());
}

TEST(GraphTest, FlopsOfMatmul) {
  GraphBuilder b("t");
  TensorId x = b.Input("x", Shape({8, 16}));
  TensorId w = b.Weight("w", Shape({16, 4}));
  b.MarkOutput(b.MatMul(x, w));
  Graph g = b.Build();
  EXPECT_EQ(g.TotalFlops(), 2 * 8 * 4 * 16);
}

TEST(SubgraphsTest, MlpLayerCount) {
  Graph g = BuildMlp(5, 128, 64, 64);
  int matmuls = 0;
  for (const Op& op : g.ops()) {
    matmuls += op.kind == OpKind::kMatMul ? 1 : 0;
  }
  EXPECT_EQ(matmuls, 5);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(SubgraphsTest, MhaShapes) {
  Graph g = BuildMha(6, 32, 48, 16);
  ASSERT_EQ(g.OutputIds().size(), 1u);
  EXPECT_EQ(g.tensor(g.OutputIds()[0]).shape, Shape({6, 32, 16}));
  // Two matmuls (QK^T and PV).
  int matmuls = 0;
  for (const Op& op : g.ops()) {
    matmuls += op.kind == OpKind::kMatMul ? 1 : 0;
  }
  EXPECT_EQ(matmuls, 2);
}

TEST(SubgraphsTest, MaskedMhaHasMaskInput) {
  Graph g = BuildMha(2, 8, 8, 4, /*masked=*/true);
  EXPECT_EQ(g.InputIds().size(), 4u);  // q, k, v, mask
}

TEST(SubgraphsTest, LayerNormOpCount) {
  Graph g = BuildLayerNormGraph(16, 32);
  // mean, sub, square, mean, add-eps, sqrt, div, mul-gamma, add-beta.
  EXPECT_EQ(g.ops().size(), 9u);
}

TEST(SubgraphsTest, LstmCellBuilds) {
  Graph g = BuildLstmCell(8, 16, 32);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.tensor(g.OutputIds()[0]).shape, Shape({8, 32}));
}

TEST(SubgraphsTest, FfnAndSwiglu) {
  Graph ffn = BuildFfn(64, 128, 512, UnaryKind::kGelu, NormKind::kLayerNorm);
  EXPECT_TRUE(ffn.Validate().ok());
  Graph swiglu = BuildSwigluFfn(64, 128, 512);
  EXPECT_TRUE(swiglu.Validate().ok());
  int matmuls = 0;
  for (const Op& op : swiglu.ops()) {
    matmuls += op.kind == OpKind::kMatMul ? 1 : 0;
  }
  EXPECT_EQ(matmuls, 3);  // gate, up, down
}

class ModelBuildTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelBuildTest, BuildsAndValidates) {
  ModelConfig config = GetModelConfig(GetParam(), /*batch=*/2, /*seq=*/128);
  ModelGraph model = BuildModel(config);
  EXPECT_FALSE(model.subprograms.empty());
  for (const Subprogram& sub : model.subprograms) {
    EXPECT_TRUE(sub.graph.Validate().ok()) << sub.graph.name();
    EXPECT_GE(sub.repeat, 1);
  }
  EXPECT_GT(model.TotalFlops(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelBuildTest, ::testing::ValuesIn(AllModelKinds()),
                         [](const ::testing::TestParamInfo<ModelKind>& info) {
                           return ModelKindName(info.param);
                         });

TEST(ModelTest, ConfigsMatchPublishedArchitectures) {
  ModelConfig bert = GetModelConfig(ModelKind::kBert, 1, 128);
  EXPECT_EQ(bert.hidden, 768);
  EXPECT_EQ(bert.num_layers, 12);
  EXPECT_EQ(bert.heads, 12);
  EXPECT_EQ(bert.head_dim(), 64);

  ModelConfig llama = GetModelConfig(ModelKind::kLlama2, 1, 128);
  EXPECT_EQ(llama.hidden, 4096);
  EXPECT_EQ(llama.num_layers, 32);
  EXPECT_EQ(llama.ffn_dim, 11008);
  EXPECT_TRUE(llama.gated_ffn);
  EXPECT_EQ(static_cast<int>(llama.norm), static_cast<int>(NormKind::kRmsNorm));

  ModelConfig vit = GetModelConfig(ModelKind::kViT, 1, 224);
  EXPECT_EQ(vit.seq, 14 * 14 + 1);  // 224/16 patches + class token

  ModelConfig t5 = GetModelConfig(ModelKind::kT5, 1, 128);
  EXPECT_EQ(t5.decoder_layers, 12);
}

TEST(ModelTest, LlamaIsLarger) {
  ModelGraph bert = BuildModel(GetModelConfig(ModelKind::kBert, 1, 256));
  ModelGraph llama = BuildModel(GetModelConfig(ModelKind::kLlama2, 1, 256));
  EXPECT_GT(llama.TotalFlops(), 10 * bert.TotalFlops());
}

}  // namespace
}  // namespace spacefusion
