// Negative coverage for the static race analyzer (src/analysis): each
// SFV06xx code gets at least one deliberately racy or malformed schedule
// that must surface its exact diagnostic, plus positive gates — every
// built-in model compiles to schedules the analyzer finds clean, and the
// analyzer's presence never changes what the compiler produces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/race_analyzer.h"
#include "src/core/compiler.h"
#include "src/core/engine.h"
#include "src/graph/builder.h"
#include "src/graph/models.h"
#include "src/schedule/memory_planner.h"
#include "src/schedule/resource_aware.h"

namespace spacefusion {
namespace {

Graph SoftmaxGraph() {
  GraphBuilder b("softmax");
  TensorId x = b.Input("x", Shape({64, 128}));
  b.MarkOutput(b.Softmax(x));
  return b.Build();
}

// A sliced, configured, memory-planned softmax kernel — the analyzer's
// clean baseline that each negative test doctors one way.
SmgSchedule PlannedSoftmax() {
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(SoftmaxGraph(), ResourceConfig());
  EXPECT_TRUE(sliced.ok()) << sliced.status().ToString();
  SlicingResult sr = std::move(sliced).value();
  if (!sr.configs.empty()) {
    sr.schedule.ApplyConfig(sr.configs.front());
  }
  PlanMemory(&sr.schedule, ResourceConfig());
  return sr.schedule;
}

// First spatially sliced dim that actually yields >1 block (the concurrency
// the race checks quantify over). The doctored tests need one to exist.
DimId FirstParallelDim(const SmgSchedule& s) {
  for (const DimSlice& slice : s.spatial) {
    const FusedDim& dim = s.built.smg.dim(slice.dim);
    if ((dim.extent + slice.block - 1) / slice.block > 1) {
      return slice.dim;
    }
  }
  return kNoDim;
}

// An intermediate tensor with a producer, a consumer, and full extent along
// `dim` — the shape every doctoring below starts from.
TensorId TensorAlongDim(const SmgSchedule& s, DimId dim) {
  for (const TensorInfo& t : s.graph.tensors()) {
    if (t.kind != TensorKind::kIntermediate) {
      continue;
    }
    const Space& space = s.built.smg.space(s.built.tensor_space[static_cast<size_t>(t.id)]);
    if (space.HasDim(dim) && s.graph.producer(t.id) >= 0 && !s.graph.consumers(t.id).empty()) {
      return t.id;
    }
  }
  return kInvalidTensor;
}

void RemoveDim(std::vector<DimId>* dims, DimId dim) {
  for (size_t i = 0; i < dims->size(); ++i) {
    if ((*dims)[i] == dim) {
      dims->erase(dims->begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

// --- Mode plumbing --------------------------------------------------------

TEST(AnalyzeModeTest, ParseAndEnv) {
  EXPECT_EQ(ParseAnalyzeMode("off").value(), AnalyzeMode::kOff);
  EXPECT_EQ(ParseAnalyzeMode("phase").value(), AnalyzeMode::kPhase);
  EXPECT_EQ(ParseAnalyzeMode("on").value(), AnalyzeMode::kPhase);
  EXPECT_FALSE(ParseAnalyzeMode("PHASE").ok());
  EXPECT_FALSE(ParseAnalyzeMode("full").ok());

  setenv("SPACEFUSION_ANALYZE", "phase", 1);
  EXPECT_EQ(AnalyzeModeFromEnv(), AnalyzeMode::kPhase);
  setenv("SPACEFUSION_ANALYZE", "bogus", 1);
  EXPECT_EQ(AnalyzeModeFromEnv(AnalyzeMode::kOff), AnalyzeMode::kOff);
  unsetenv("SPACEFUSION_ANALYZE");
  EXPECT_EQ(AnalyzeModeFromEnv(), AnalyzeMode::kOff);
  EXPECT_EQ(AnalyzeModeFromEnv(AnalyzeMode::kPhase), AnalyzeMode::kPhase);
}

// --- Positive baseline ----------------------------------------------------

TEST(RaceAnalyzerTest, CleanScheduleHasNoFindings) {
  SmgSchedule schedule = PlannedSoftmax();
  DiagnosticReport report;
  AnalyzeSchedule(schedule, &report);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

// --- SFV0601: write-write overlap -----------------------------------------

TEST(RaceAnalyzerTest, WriteWriteRaceAcrossBlocks) {
  SmgSchedule schedule = PlannedSoftmax();
  DimId par = FirstParallelDim(schedule);
  ASSERT_NE(par, kNoDim);
  TensorId victim = TensorAlongDim(schedule, par);
  ASSERT_NE(victim, kInvalidTensor);

  // Shared between blocks, but the buffer no longer extends along the
  // parallel dim: every block's writer covers the full extent, so the
  // producing op races with itself across blocks.
  schedule.memory.tensor_level[static_cast<size_t>(victim)] = MemLevel::kGlobal;
  Space& space =
      schedule.built.smg.space(schedule.built.tensor_space[static_cast<size_t>(victim)]);
  RemoveDim(&space.dims, par);

  DiagnosticReport report;
  AnalyzeSchedule(schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0601")) << report.ToString();
}

// --- SFV0602: read-write overlap without ordering edge --------------------

TEST(RaceAnalyzerTest, ReadWriteRaceWithoutOrderingEdge) {
  SmgSchedule schedule = PlannedSoftmax();
  DimId par = FirstParallelDim(schedule);
  ASSERT_NE(par, kNoDim);
  TensorId victim = TensorAlongDim(schedule, par);
  ASSERT_NE(victim, kInvalidTensor);

  // The buffer and its writer stay tiled along the parallel dim (writes are
  // disjoint), but one reader's iteration space is stripped of the dim: its
  // read covers the full extent and overlaps the writes of every other
  // block, with no ordering edge between blocks.
  schedule.memory.tensor_level[static_cast<size_t>(victim)] = MemLevel::kGlobal;
  OpId reader = schedule.graph.consumers(victim).front();
  Space& iter =
      schedule.built.smg.space(schedule.built.op_space[static_cast<size_t>(reader)]);
  RemoveDim(&iter.dims, par);

  DiagnosticReport report;
  AnalyzeSchedule(schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0602")) << report.ToString();
  EXPECT_FALSE(report.HasCode("SFV0601")) << report.ToString();
}

// --- SFV0603: access outside the memory plan ------------------------------

TEST(RaceAnalyzerTest, TruncatedMemoryPlanIsOutOfPlan) {
  SmgSchedule schedule = PlannedSoftmax();
  ASSERT_FALSE(schedule.memory.tensor_level.empty());
  schedule.memory.tensor_level.pop_back();
  DiagnosticReport report;
  AnalyzeSchedule(schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0603")) << report.ToString();
}

TEST(RaceAnalyzerTest, DegenerateSliceWindowIsOutOfPlan) {
  SmgSchedule schedule = PlannedSoftmax();
  ASSERT_FALSE(schedule.spatial.empty());
  schedule.spatial.front().block = 0;  // not a window
  DiagnosticReport report;
  AnalyzeSchedule(schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0603")) << report.ToString();
}

TEST(RaceAnalyzerTest, SliceWiderThanExtentIsOutOfPlan) {
  SmgSchedule schedule = PlannedSoftmax();
  ASSERT_FALSE(schedule.spatial.empty());
  DimId d = schedule.spatial.front().dim;
  schedule.spatial.front().block = schedule.built.smg.dim(d).extent + 7;
  DiagnosticReport report;
  AnalyzeSchedule(schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0603")) << report.ToString();
}

TEST(RaceAnalyzerTest, WriteToReadOnlyBufferIsOutOfPlan) {
  SmgSchedule schedule = PlannedSoftmax();
  DimId par = FirstParallelDim(schedule);
  ASSERT_NE(par, kNoDim);
  TensorId victim = TensorAlongDim(schedule, par);
  ASSERT_NE(victim, kInvalidTensor);
  // An op now writes a kInput buffer: outside the writable plan region.
  schedule.graph.tensor(victim).kind = TensorKind::kInput;
  DiagnosticReport report;
  AnalyzeSchedule(schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0603")) << report.ToString();
}

TEST(RaceAnalyzerTest, InconsistentIndexTablesAreOutOfPlan) {
  SmgSchedule schedule = PlannedSoftmax();
  ASSERT_FALSE(schedule.built.tensor_space.empty());
  schedule.built.tensor_space.back() = 9999;  // space outside the SMG
  DiagnosticReport report;
  AnalyzeSchedule(schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0603")) << report.ToString();
}

// --- SFV0604: aliased spill slots -----------------------------------------

TEST(RaceAnalyzerTest, UndersizedArenaAliasesSpillSlots) {
  SmgSchedule schedule = PlannedSoftmax();
  // Shrink the recorded arenas below the liveness peak the plan implies:
  // slot assignment must then alias simultaneously live tiles.
  bool has_on_chip = false;
  for (MemLevel level : schedule.memory.tensor_level) {
    has_on_chip = has_on_chip || level == MemLevel::kShared || level == MemLevel::kRegister;
  }
  ASSERT_TRUE(has_on_chip);
  schedule.memory.smem_bytes = 0;
  schedule.memory.reg_bytes = 0;
  DiagnosticReport report;
  AnalyzeSchedule(schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0604")) << report.ToString();
}

TEST(RaceAnalyzerTest, RecordedArenaAtPeakIsClean) {
  // The planner's own arenas are exactly the liveness peak; the analyzer's
  // recomputation must agree, not flag legal plans.
  SmgSchedule schedule = PlannedSoftmax();
  DiagnosticReport report;
  AnalyzeSchedule(schedule, &report);
  EXPECT_FALSE(report.HasCode("SFV0604")) << report.ToString();
}

// --- Whole-program entry point --------------------------------------------

TEST(RaceAnalyzerTest, CompiledProgramContextNamesKernels) {
  Graph g = SoftmaxGraph();
  Compiler compiler((CompileOptions()));
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  DiagnosticReport report = AnalyzeCompiledProgram(compiled.value().program, g);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- Clean gate: every built-in model analyzes clean ----------------------

TEST(RaceAnalyzerTest, AllBuiltinModelsAnalyzeClean) {
  for (ModelKind kind : AllModelKinds()) {
    ModelGraph model = BuildModel(GetModelConfig(kind, /*batch=*/1, /*seq=*/64));
    Compiler compiler((CompileOptions()));
    StatusOr<CompiledModel> compiled = compiler.CompileModel(model);
    ASSERT_TRUE(compiled.ok()) << ModelKindName(kind) << ": " << compiled.status().ToString();

    // Recover each unique subprogram's source graph by replaying
    // CompileModel's first-seen dedup order (the sf-analyze scheme).
    std::map<std::uint64_t, bool> seen;
    size_t index = 0;
    for (const Subprogram& sub : model.subprograms) {
      std::uint64_t key = sub.graph.StructuralHash();
      if (seen.count(key) > 0) {
        continue;
      }
      seen.emplace(key, true);
      ASSERT_LT(index, compiled.value().unique_subprograms.size());
      const CompiledSubprogram& unique = compiled.value().unique_subprograms[index++];
      DiagnosticReport report = AnalyzeCompiledProgram(unique.program, sub.graph);
      EXPECT_TRUE(report.empty())
          << ModelKindName(kind) << "/" << sub.graph.name() << ":\n" << report.ToString();
    }
  }
}

// --- Determinism: the analyzer never changes the compiled program ---------

TEST(RaceAnalyzerTest, AnalyzerOnOffCompilesBitIdentical) {
  Graph g = SoftmaxGraph();

  CompileOptions off;
  off.analyze = AnalyzeMode::kOff;
  CompileOptions on;
  on.analyze = AnalyzeMode::kPhase;
  EXPECT_EQ(CompileOptionsDigest(off), CompileOptionsDigest(on))
      << "analyze mode must not change the cache key";

  Compiler compiler_off(off);
  Compiler compiler_on(on);
  StatusOr<CompiledSubprogram> a = compiler_off.Compile(g);
  StatusOr<CompiledSubprogram> b = compiler_on.Compile(g);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ASSERT_EQ(a.value().program.kernels.size(), b.value().program.kernels.size());
  for (size_t i = 0; i < a.value().program.kernels.size(); ++i) {
    EXPECT_EQ(a.value().program.kernels[i].ToString(), b.value().program.kernels[i].ToString());
  }
  EXPECT_EQ(a.value().estimate.time_us, b.value().estimate.time_us);
}

}  // namespace
}  // namespace spacefusion
