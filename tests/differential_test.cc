// Differential-testing suite: for a corpus of randomly generated graphs
// (shared generators in tests/random_graph.h), every schedule the compiler
// chooses must execute — via the fused ScheduleExecutor — to the same
// values as the unfused ReferenceExecutor, under serial (SPACEFUSION_JOBS=1)
// and parallel (=8) tuning alike. The parallel compile must also choose
// exactly the schedules the serial compile chose: the thread pool's
// determinism contract (indexed results + serial argmin reduction) makes
// job count invisible to compilation output.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/spacefusion.h"
#include "src/support/thread_pool.h"
#include "tests/random_graph.h"

namespace spacefusion {
namespace {

using testing_util::RandomGraph;

// Compiles `g` at the given job count and checks the fused program against
// the unfused reference on every graph output. Returns a fingerprint of
// every chosen schedule (exact block sizes, temporal steps, memory plan)
// plus the bit-exact cost estimate.
std::string CompileAndCheck(const Graph& g, int jobs, std::uint64_t input_seed) {
  ResetGlobalThreadPool(jobs);
  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  EXPECT_TRUE(compiled.ok()) << g.ToString() << "\n" << compiled.status().ToString();
  if (!compiled.ok()) {
    return "";
  }

  TensorEnv inputs = MakeGraphInputs(g, input_seed);
  TensorEnv reference = inputs;
  RunReference(g, &reference);
  TensorEnv outputs;
  Status st = RunScheduledProgram(compiled->program, g, inputs, &outputs);
  EXPECT_TRUE(st.ok()) << st.ToString();
  if (st.ok()) {
    for (TensorId out : g.OutputIds()) {
      float diff = MaxRelDiff(outputs[static_cast<size_t>(out)],
                              reference[static_cast<size_t>(out)]);
      EXPECT_LT(diff, 1e-2f) << "jobs=" << jobs << "\n" << g.ToString();
    }
  }

  std::string fingerprint;
  for (const SmgSchedule& kernel : compiled->program.kernels) {
    fingerprint += kernel.ToString();
    fingerprint += "\n";
  }
  char cost[64];
  std::snprintf(cost, sizeof(cost), "estimate=%.17g tuning=%.17g", compiled->estimate.time_us,
                compiled->tuning.simulated_tuning_seconds);
  fingerprint += cost;
  return fingerprint;
}

class DifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  // Later suites expect the default pool; put it back after each override.
  void TearDown() override { ResetGlobalThreadPool(); }
};

TEST_P(DifferentialTest, FusedMatchesReferenceAtEveryJobCount) {
  // A corpus disjoint from fuzz_test's (different seed stride).
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 7;
  Graph g = RandomGraph(seed);
  ASSERT_TRUE(g.Validate().ok());

  std::string serial = CompileAndCheck(g, /*jobs=*/1, /*input_seed=*/seed ^ 0x5F);
  std::string parallel = CompileAndCheck(g, /*jobs=*/8, /*input_seed=*/seed ^ 0x5F);
  EXPECT_EQ(serial, parallel) << "schedule choice depends on SPACEFUSION_JOBS\n" << g.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(0, 24));

// The expert-config (no auto-scheduling) path never touches the tuner's
// parallel sweep; it must also stay numerically sound so the ablation
// variants keep working under the parallel pipeline stages.
class DifferentialExpertTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { ResetGlobalThreadPool(); }
};

TEST_P(DifferentialExpertTest, ExpertConfigsMatchReference) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 9176101ULL + 3;
  Graph g = RandomGraph(seed);
  ASSERT_TRUE(g.Validate().ok());

  ResetGlobalThreadPool(8);
  CompileOptions options{AmpereA100()};
  options.enable_auto_scheduling = false;
  Compiler compiler{options};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  TensorEnv inputs = MakeGraphInputs(g, 99);
  TensorEnv reference = inputs;
  RunReference(g, &reference);
  TensorEnv outputs;
  ASSERT_TRUE(RunScheduledProgram(compiled->program, g, inputs, &outputs).ok());
  for (TensorId out : g.OutputIds()) {
    EXPECT_LT(MaxRelDiff(outputs[static_cast<size_t>(out)],
                         reference[static_cast<size_t>(out)]),
              1e-2f)
        << g.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialExpertTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace spacefusion
