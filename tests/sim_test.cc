// GPU simulator tests: cache model, analytic cost model, trace-driven
// memory simulation.
#include <gtest/gtest.h>

#include "src/sim/arch.h"
#include "src/sim/cache.h"
#include "src/sim/cost_model.h"
#include "src/sim/memory_sim.h"

namespace spacefusion {
namespace {

// --- Cache ------------------------------------------------------------------

TEST(CacheTest, HitsAfterFirstTouch) {
  SetAssociativeCache cache(1024, 64, 4);
  EXPECT_FALSE(cache.Access(0));
  EXPECT_TRUE(cache.Access(0));
  EXPECT_TRUE(cache.Access(32));  // same line
  EXPECT_FALSE(cache.Access(64));
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 2);
}

TEST(CacheTest, LruEvictsOldest) {
  // 1 set, 2 ways, 64B lines.
  SetAssociativeCache cache(128, 64, 2);
  cache.Access(0);       // A
  cache.Access(64);      // B
  cache.Access(0);       // A hit: B is now LRU
  cache.Access(128);     // C evicts B
  EXPECT_TRUE(cache.Access(0));     // A survives
  EXPECT_FALSE(cache.Access(64));   // B gone
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes) {
  SetAssociativeCache cache(4096, 64, 4);
  // Two sequential passes over 16KB: cyclic eviction -> second pass misses.
  for (int pass = 0; pass < 2; ++pass) {
    cache.AccessRange(0, 16384);
  }
  EXPECT_GT(cache.stats().MissRate(), 0.9);
}

TEST(CacheTest, WorkingSetWithinCacheReuses) {
  SetAssociativeCache cache(64 * 1024, 64, 8);
  for (int pass = 0; pass < 4; ++pass) {
    cache.AccessRange(0, 16384);
  }
  // 1 miss pass + 3 hit passes = 25% misses.
  EXPECT_NEAR(cache.stats().MissRate(), 0.25, 0.05);
}

TEST(CacheTest, TrueLruVictimSelection) {
  // 1 set, 4 ways: fill the set, touch the oldest way, and verify the
  // second-oldest is the one evicted (regression for a dead
  // `victim->tag == line` clause that used to shadow the LRU comparison).
  SetAssociativeCache cache(256, 64, 4);
  cache.Access(0);                 // A
  cache.Access(64);                // B
  cache.Access(128);               // C
  cache.Access(192);               // D
  EXPECT_TRUE(cache.Access(0));    // touch A: B is now LRU
  cache.Access(256);               // E must evict B
  EXPECT_TRUE(cache.Access(0));    // A survives
  EXPECT_TRUE(cache.Access(128));  // C survives
  EXPECT_TRUE(cache.Access(192));  // D survives
  EXPECT_TRUE(cache.Access(256));  // E resident
  EXPECT_FALSE(cache.Access(64));  // B was the victim
}

TEST(CacheTest, ResetClearsResidencyAndStats) {
  SetAssociativeCache cache(1024, 64, 4);
  cache.AccessRange(0, 1024);
  cache.Reset();
  EXPECT_EQ(cache.stats().accesses, 0);
  EXPECT_FALSE(cache.Access(0));  // cold again after the epoch bump
  EXPECT_TRUE(cache.Access(0));
}

TEST(CacheTest, AccessRangeCountsLines) {
  SetAssociativeCache cache(1 << 20, 128, 8);
  EXPECT_EQ(cache.AccessRange(0, 1024), 8);   // 1024/128
  EXPECT_EQ(cache.AccessRange(0, 1024), 0);   // all hits
  EXPECT_EQ(cache.AccessRange(100, 100), 0);  // within cached lines
}

// --- Architectures -------------------------------------------------------------

TEST(ArchTest, PresetsScaleUpward) {
  GpuArch v = VoltaV100(), a = AmpereA100(), h = HopperH100();
  EXPECT_LT(v.fp16_tflops, a.fp16_tflops);
  EXPECT_LT(a.fp16_tflops, h.fp16_tflops);
  EXPECT_LT(v.dram_gbps, a.dram_gbps);
  EXPECT_LT(a.dram_gbps, h.dram_gbps);
  EXPECT_LT(v.smem_per_sm, a.smem_per_sm);
  EXPECT_EQ(AllArchitectures().size(), 3u);
}

// --- Cost model ------------------------------------------------------------------

KernelSpec SimpleKernel() {
  KernelSpec k;
  k.name = "k";
  k.grid = 1024;
  k.threads_per_block = 256;
  k.smem_per_block = 16 * 1024;
  k.regs_per_block_bytes = 32 * 1024;
  k.flops = 1'000'000'000;
  TensorTraffic r;
  r.tensor = "in";
  r.unique_bytes = 64 * 1024 * 1024;
  r.per_block_bytes = r.unique_bytes / k.grid;
  k.reads.push_back(r);
  TensorTraffic w;
  w.tensor = "out";
  w.unique_bytes = 64 * 1024 * 1024;
  k.writes.push_back(w);
  return k;
}

TEST(CostModelTest, OccupancyLimits) {
  CostModel cm(AmpereA100());
  KernelSpec k = SimpleKernel();
  int bps = cm.BlocksPerSm(k);
  EXPECT_GT(bps, 0);
  k.smem_per_block = 100 * 1024;
  EXPECT_EQ(cm.BlocksPerSm(k), 1);
  k.smem_per_block = 200 * 1024;  // over the per-SM budget
  EXPECT_EQ(cm.BlocksPerSm(k), 0);
}

TEST(CostModelTest, UnlaunchableKernelIsPenalized) {
  CostModel cm(VoltaV100());
  KernelSpec k = SimpleKernel();
  k.smem_per_block = 200 * 1024;
  EXPECT_GT(cm.EstimateKernel(k).time_us, 1e9);
}

TEST(CostModelTest, MoreTrafficCostsMore) {
  CostModel cm(AmpereA100());
  KernelSpec k = SimpleKernel();
  double base = cm.EstimateKernel(k).time_us;
  k.reads[0].unique_bytes *= 4;
  k.reads[0].per_block_bytes *= 4;
  EXPECT_GT(cm.EstimateKernel(k).time_us, base);
}

TEST(CostModelTest, SharedOperandWithinL2IsFetchedOnce) {
  CostModel cm(AmpereA100());
  TensorTraffic r;
  r.unique_bytes = 8 * 1024 * 1024;  // fits in 40MB L2
  r.per_block_bytes = r.unique_bytes;
  r.shared_across_blocks = true;
  EXPECT_EQ(cm.DramReadBytes(r, /*grid=*/256), r.unique_bytes);
}

TEST(CostModelTest, SharedOperandBeyondL2Refetches) {
  CostModel cm(VoltaV100());  // 6MB L2
  TensorTraffic r;
  r.unique_bytes = 512LL * 1024 * 1024;
  r.per_block_bytes = r.unique_bytes;
  r.shared_across_blocks = true;
  std::int64_t dram = cm.DramReadBytes(r, /*grid=*/8);
  EXPECT_GT(dram, r.unique_bytes * 3);  // most re-reads spill
}

TEST(CostModelTest, MultiPassStreamBeyondL2CostsPerPass) {
  CostModel cm(VoltaV100());
  TensorTraffic r;
  r.unique_bytes = 1LL << 30;  // 1GB, far beyond L2
  r.per_block_bytes = r.unique_bytes / 1024;
  r.touches_per_byte = 2.0;  // two passes
  std::int64_t dram = cm.DramReadBytes(r, 1024);
  EXPECT_GT(dram, static_cast<std::int64_t>(1.9 * static_cast<double>(r.unique_bytes)));
}

TEST(CostModelTest, LaunchOverheadFloorsTinyKernels) {
  GpuArch arch = AmpereA100();
  CostModel cm(arch);
  KernelSpec k;
  k.grid = 1;
  k.flops = 10;
  EXPECT_GE(cm.EstimateKernel(k).time_us, arch.launch_overhead_us);
}

TEST(CostModelTest, SmallGridCannotSaturateBandwidth) {
  CostModel cm(AmpereA100());
  KernelSpec wide = SimpleKernel();
  KernelSpec narrow = SimpleKernel();
  narrow.grid = 2;
  narrow.reads[0].per_block_bytes = narrow.reads[0].unique_bytes / 2;
  double t_wide = cm.EstimateKernel(wide).dram_us;
  double t_narrow = cm.EstimateKernel(narrow).dram_us;
  EXPECT_GT(t_narrow, t_wide * 1.5);
}

TEST(CostModelTest, EstimateSumsKernels) {
  CostModel cm(AmpereA100());
  std::vector<KernelSpec> kernels{SimpleKernel(), SimpleKernel()};
  ExecutionReport r = cm.Estimate(kernels);
  EXPECT_EQ(r.kernel_count, 2);
  EXPECT_NEAR(r.time_us, 2 * cm.EstimateKernel(kernels[0]).time_us, 1e-6);
}

// --- Memory simulation ------------------------------------------------------------

TEST(MemorySimTest, FusionReducesTrafficAndMisses) {
  GpuArch arch = AmpereA100();
  AddressMap am;
  std::int64_t mb = 256LL * 1024 * 1024;

  // Unfused: producer writes a big intermediate, consumer reads it back.
  KernelSpec producer;
  producer.name = "producer";
  producer.grid = mb / 32768;
  TensorTraffic w;
  w.tensor = "intermediate";
  w.unique_bytes = mb;
  w.base_address = am.Assign("intermediate", mb);
  producer.writes.push_back(w);

  KernelSpec consumer;
  consumer.name = "consumer";
  consumer.grid = mb / 32768;
  TensorTraffic r;
  r.tensor = "intermediate";
  r.unique_bytes = mb;
  r.per_block_bytes = mb / consumer.grid;
  r.base_address = am.Assign("intermediate", mb);
  consumer.reads.push_back(r);

  MemorySim sim(arch);
  ExecutionReport unfused = sim.Run({producer, consumer});

  // Fused: the intermediate never exists.
  MemorySim sim2(arch);
  ExecutionReport fused = sim2.Run({});
  EXPECT_GT(unfused.dram_bytes, 0);
  EXPECT_EQ(fused.dram_bytes, 0);
  EXPECT_GT(unfused.l2_misses, 0);
}

TEST(MemorySimTest, L2ServesProducerConsumerReuseWhenSmall) {
  GpuArch arch = AmpereA100();
  AddressMap am;
  std::int64_t small = 4LL * 1024 * 1024;  // fits in 40MB L2

  KernelSpec producer;
  producer.grid = 64;
  TensorTraffic w;
  w.tensor = "t";
  w.unique_bytes = small;
  w.base_address = am.Assign("t", small);
  producer.writes.push_back(w);

  KernelSpec consumer;
  consumer.grid = 64;
  TensorTraffic r = w;
  r.per_block_bytes = small / consumer.grid;
  consumer.reads.push_back(r);

  MemorySim sim(arch);
  ExecutionReport rep = sim.Run({producer, consumer});
  // The consumer's reads mostly hit in L2 (installed by the producer).
  EXPECT_LT(static_cast<double>(rep.l2_misses),
            0.2 * static_cast<double>(rep.l2_accesses));
}

TEST(MemorySimTest, WriteTraceClampedToTensorEnd) {
  // grid=2, per_block=256B, unique=384B: block 1's write starts at byte 256
  // of the tensor and must stop at its last byte (383), not walk cache lines
  // past the allocation (regression for an unclamped `base + per_block - 1`).
  GpuArch arch = AmpereA100();  // 128B lines
  KernelSpec k;
  k.grid = 2;
  TensorTraffic w;
  w.tensor = "out";
  w.unique_bytes = 384;
  w.per_block_bytes = 256;
  w.base_address = 0;
  k.writes.push_back(w);

  MemorySim sim(arch);
  ExecutionReport rep = sim.Run({k});
  // Lines 0-1 from block 0, line 2 (clamped) from block 1. Unclamped, block 1
  // would also touch line 3 and report 512 bytes.
  EXPECT_EQ(rep.l2_accesses, 3);
  EXPECT_EQ(rep.dram_bytes, 3 * arch.cache_line_bytes);
}

// Builds the unfused producer->consumer pair over a `bytes`-sized
// intermediate used by the hit-rate pin tests below.
std::vector<KernelSpec> ProducerConsumerPair(std::int64_t bytes, std::int64_t grid) {
  KernelSpec producer;
  producer.name = "producer";
  producer.grid = grid;
  TensorTraffic w;
  w.tensor = "intermediate";
  w.unique_bytes = bytes;
  w.base_address = 0;
  producer.writes.push_back(w);

  KernelSpec consumer;
  consumer.name = "consumer";
  consumer.grid = grid;
  TensorTraffic r = w;
  r.per_block_bytes = bytes / grid;
  consumer.reads.push_back(r);
  return {producer, consumer};
}

// The next three tests pin the simulator's hit-rate gauges to the values the
// pure trace-driven implementation produced before the range-batched /
// analytical fast path landed. Acceptance bar: within 1%. (The integer DRAM
// counts are asserted exactly — the fast path reproduces them bit-for-bit.)

TEST(MemorySimTest, HitRatePinUnfused256Mb) {
  std::int64_t mb = 256LL * 1024 * 1024;
  MemorySim sim(AmpereA100());
  ExecutionReport rep = sim.Run(ProducerConsumerPair(mb, mb / 32768));
  double l1_hit = 1.0 - static_cast<double>(rep.l1_misses) / static_cast<double>(rep.l1_accesses);
  double l2_hit = 1.0 - static_cast<double>(rep.l2_misses) / static_cast<double>(rep.l2_accesses);
  EXPECT_NEAR(l1_hit, 0.0, 0.01);  // streaming: every line cold in L1
  EXPECT_NEAR(l2_hit, 0.5, 0.01);  // writes install, 256MB reads blow 40MB L2
  EXPECT_EQ(rep.dram_bytes, 536870912);
  EXPECT_EQ(rep.l1_accesses, 2097152);
  EXPECT_EQ(rep.l2_accesses, 4194304);
}

TEST(MemorySimTest, HitRatePinL2Reuse4Mb) {
  std::int64_t small = 4LL * 1024 * 1024;  // fits in 40MB L2
  MemorySim sim(AmpereA100());
  ExecutionReport rep = sim.Run(ProducerConsumerPair(small, 64));
  double l2_hit = 1.0 - static_cast<double>(rep.l2_misses) / static_cast<double>(rep.l2_accesses);
  EXPECT_NEAR(l2_hit, 1.0, 0.01);  // producer installed every line
  EXPECT_EQ(rep.dram_bytes, 4194304);
  EXPECT_EQ(rep.l1_accesses, 32768);
  EXPECT_EQ(rep.l2_accesses, 65536);
}

TEST(MemorySimTest, HitRatePinSampled64Gb) {
  KernelSpec big;
  big.grid = 1 << 20;
  TensorTraffic r;
  r.tensor = "huge";
  r.unique_bytes = 1LL << 36;  // 64GB
  r.per_block_bytes = r.unique_bytes / big.grid;
  r.base_address = 0;
  big.reads.push_back(r);

  MemorySim sim(AmpereA100());
  sim.set_access_budget(100000);
  ExecutionReport rep = sim.Run({big});
  EXPECT_EQ(rep.l1_misses, rep.l1_accesses);  // pure streaming: 0% hit
  EXPECT_EQ(rep.l2_misses, rep.l2_accesses);
  EXPECT_EQ(rep.dram_bytes, 68719476735);
}

TEST(MemorySimTest, StreamingShortcutMatchesTracePath) {
  // The analytical shortcut must be exact, not approximate: replaying the
  // same workload with the shortcut disabled (full trace) yields identical
  // counters.
  std::int64_t mb = 256LL * 1024 * 1024;
  std::vector<KernelSpec> kernels = ProducerConsumerPair(mb, mb / 32768);

  MemorySim fast(AmpereA100());
  ExecutionReport a = fast.Run(kernels);
  MemorySim slow(AmpereA100());
  slow.set_streaming_shortcut(false);
  ExecutionReport b = slow.Run(kernels);

  EXPECT_EQ(a.l1_accesses, b.l1_accesses);
  EXPECT_EQ(a.l1_misses, b.l1_misses);
  EXPECT_EQ(a.l2_accesses, b.l2_accesses);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
}

TEST(MemorySimTest, SamplingKeepsBudget) {
  GpuArch arch = AmpereA100();
  AddressMap am;
  KernelSpec big;
  big.grid = 1 << 20;
  TensorTraffic r;
  r.tensor = "huge";
  r.unique_bytes = 1LL << 36;  // 64GB
  r.per_block_bytes = r.unique_bytes / big.grid;
  r.base_address = am.Assign("huge", r.unique_bytes);
  big.reads.push_back(r);

  MemorySim sim(arch);
  sim.set_access_budget(100000);
  ExecutionReport rep = sim.Run({big});  // must terminate quickly
  // Scaled counts still reflect the full kernel.
  EXPECT_GT(rep.l1_accesses, static_cast<std::int64_t>(1e8));
}

TEST(ExecutionReportTest, ScaledMultipliesEverything) {
  ExecutionReport r;
  r.time_us = 10;
  r.dram_bytes = 100;
  r.kernel_count = 2;
  ExecutionReport s = r.Scaled(3);
  EXPECT_EQ(s.time_us, 30);
  EXPECT_EQ(s.dram_bytes, 300);
  EXPECT_EQ(s.kernel_count, 6);
}

TEST(AddressMapTest, StableAssignments) {
  AddressMap am;
  std::int64_t a = am.Assign("x", 1000);
  std::int64_t b = am.Assign("y", 1000);
  EXPECT_NE(a, b);
  EXPECT_EQ(am.Assign("x", 1000), a);
}

}  // namespace
}  // namespace spacefusion
