// Scheduler-layer tests: memory planning (Sec. 5.4), search space,
// resource-aware slicing (Alg. 1), partitioning (Alg. 2), lowering.
#include <gtest/gtest.h>

#include "src/graph/builder.h"
#include "src/graph/subgraphs.h"
#include "src/schedule/lowering.h"
#include "src/schedule/pipeline.h"
#include "src/sim/arch.h"

namespace spacefusion {
namespace {

ResourceConfig A100Rc() { return ResourceConfig::FromArch(AmpereA100()); }

SlicingResult SliceOrDie(const Graph& g, const ResourceConfig& rc) {
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, rc);
  EXPECT_TRUE(sliced.ok()) << sliced.status().ToString();
  return std::move(sliced).value();
}

// --- Memory planner ----------------------------------------------------------

TEST(MemoryPlannerTest, MhaLevelAssignments) {
  Graph g = BuildMha(2, 64, 256, 64);
  SlicingResult sliced = SliceOrDie(g, A100Rc());
  const SmgSchedule& sched = sliced.schedule;

  // Small staged inputs live in shared memory; the attention output is a
  // reduction sink accumulated in registers before the final write.
  for (const TensorInfo& t : g.tensors()) {
    MemLevel level = sched.memory.tensor_level[static_cast<size_t>(t.id)];
    if (t.kind == TensorKind::kConstant) {
      EXPECT_EQ(static_cast<int>(level), static_cast<int>(MemLevel::kRegister)) << t.name;
    }
    if (t.kind == TensorKind::kOutput) {
      EXPECT_EQ(static_cast<int>(level), static_cast<int>(MemLevel::kRegister)) << t.name;
    }
  }
  EXPECT_GT(sched.memory.smem_bytes, 0);
  EXPECT_GT(sched.memory.reg_bytes, 0);
}

TEST(MemoryPlannerTest, LargeWeightsAreStreamed) {
  Graph g = BuildMlp(2, 512, 256, 256);
  SlicingResult sliced = SliceOrDie(g, A100Rc());
  const SmgSchedule& sched = sliced.schedule;
  int streamed = 0;
  for (TensorId w : g.WeightIds()) {
    if (g.tensor(w).shape.rank() == 2 &&
        sched.memory.tensor_level[static_cast<size_t>(w)] == MemLevel::kGlobalStreamed) {
      ++streamed;
    }
  }
  EXPECT_EQ(streamed, 2);  // both 256x256 weight matrices exceed 16KB
}

TEST(MemoryPlannerTest, FootprintGrowsWithBlockSize) {
  Graph g = BuildLayerNormGraph(1024, 1024);
  SlicingResult sliced = SliceOrDie(g, A100Rc());
  SmgSchedule& sched = sliced.schedule;

  ScheduleConfig small;
  small.spatial_blocks = {1};
  sched.ApplyConfig(small);
  PlanMemory(&sched, A100Rc());
  std::int64_t small_smem = sched.memory.smem_bytes;

  ScheduleConfig big;
  big.spatial_blocks = {8};
  sched.ApplyConfig(big);
  PlanMemory(&sched, A100Rc());
  EXPECT_GT(sched.memory.smem_bytes, small_smem);
}

TEST(MemoryPlannerTest, StreamingIntermediatesAreCheap) {
  // A long element-wise chain must not accumulate register tiles: values
  // stream through per-thread registers.
  GraphBuilder b("chain");
  TensorId x = b.Input("x", Shape({256, 256}));
  TensorId cur = x;
  for (int i = 0; i < 10; ++i) {
    cur = b.Relu(b.Add(cur, cur));
  }
  b.MarkOutput(cur);
  Graph g = b.Build();
  SlicingResult sliced = SliceOrDie(g, A100Rc());
  EXPECT_LT(sliced.schedule.memory.reg_bytes, 64 * 1024);
}

TEST(MemoryPlannerTest, ValuesCrossingReductionsAreMaterialized) {
  // exp values are re-read after the row sum: the tile must live in smem.
  GraphBuilder b("sm");
  TensorId x = b.Input("x", Shape({64, 256}));
  TensorId sm = b.Softmax(x);
  TensorId w = b.Weight("w", Shape({256, 32}));
  b.MarkOutput(b.MatMul(sm, w));
  Graph g = b.Build();
  SlicingResult sliced = SliceOrDie(g, A100Rc());
  bool exp_in_smem = false;
  for (const TensorInfo& t : g.tensors()) {
    if (t.name.find("exp") != std::string::npos &&
        sliced.schedule.memory.tensor_level[static_cast<size_t>(t.id)] == MemLevel::kShared) {
      exp_in_smem = true;
    }
  }
  EXPECT_TRUE(exp_in_smem);
}

// --- Search space --------------------------------------------------------------

TEST(SearchSpaceTest, AllConfigsAreFeasible) {
  Graph g = BuildMha(4, 128, 512, 64);
  ResourceConfig rc = A100Rc();
  SlicingResult sliced = SliceOrDie(g, rc);
  ASSERT_FALSE(sliced.configs.empty());
  for (const ScheduleConfig& c : sliced.configs) {
    sliced.schedule.ApplyConfig(c);
    PlanMemory(&sliced.schedule, rc);
    EXPECT_TRUE(CheckResources(sliced.schedule, rc)) << c.ToString();
    for (std::int64_t b : c.spatial_blocks) {
      EXPECT_TRUE((b & (b - 1)) == 0 || b == sliced.schedule.built.smg.dim(0).extent)
          << "non-pow2 block " << b;
    }
  }
}

TEST(SearchSpaceTest, TighterBudgetShrinksSpace) {
  Graph g = BuildMha(4, 128, 512, 64);
  SlicingResult large = SliceOrDie(g, A100Rc());
  ResourceConfig tiny;
  tiny.smem_per_block_max = 16 * 1024;
  tiny.reg_per_block_max = 64 * 1024;
  StatusOr<SlicingResult> small = ResourceAwareSlicing(g, tiny);
  if (small.ok()) {
    EXPECT_LT(small->configs.size(), large.configs.size());
  }
}

TEST(SearchSpaceTest, MinBlockRespected) {
  Graph g = BuildMha(4, 128, 512, 64);
  SlicingOptions options;
  options.search.min_block = 16;
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, A100Rc(), options);
  ASSERT_TRUE(sliced.ok());
  const Smg& smg = sliced->schedule.built.smg;
  for (const ScheduleConfig& c : sliced->configs) {
    for (size_t i = 0; i < c.spatial_blocks.size(); ++i) {
      DimId d = sliced->schedule.spatial[i].dim;
      std::int64_t extent = smg.dim(d).extent;
      bool is_free = smg.MappingsAlongDim(d).empty();
      if (!is_free) {
        EXPECT_GE(c.spatial_blocks[i], std::min<std::int64_t>(16, extent));
      }
    }
  }
}

// --- Resource-aware slicing (Alg. 1) -------------------------------------------

TEST(ResourceAwareTest, MhaSchedulesWithTemporal) {
  Graph g = BuildMha(8, 1024, 1024, 64);
  SlicingResult sliced = SliceOrDie(g, A100Rc());
  EXPECT_TRUE(sliced.schedule.has_temporal);
  bool any_temporal_config = false;
  for (const ScheduleConfig& c : sliced.configs) {
    any_temporal_config |= c.use_temporal;
  }
  EXPECT_TRUE(any_temporal_config);
}

TEST(ResourceAwareTest, TemporalDisabledByOption) {
  Graph g = BuildMha(8, 256, 256, 64);
  SlicingOptions options;
  options.enable_temporal = false;
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, A100Rc(), options);
  ASSERT_TRUE(sliced.ok());
  EXPECT_FALSE(sliced->schedule.has_temporal);
}

TEST(ResourceAwareTest, UnschedulableWhenNothingFits) {
  // A gigantic LayerNorm row cannot fit any tile under a tiny budget.
  Graph g = BuildLayerNormGraph(64, 1 << 20);
  ResourceConfig tiny;
  tiny.smem_per_block_max = 4 * 1024;
  tiny.reg_per_block_max = 16 * 1024;
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, tiny);
  EXPECT_FALSE(sliced.ok());
  EXPECT_EQ(sliced.status().code(), StatusCode::kUnschedulable);
}

TEST(ResourceAwareTest, ScheduleToStringIsInformative) {
  Graph g = BuildMha(2, 64, 128, 32);
  SlicingResult sliced = SliceOrDie(g, A100Rc());
  std::string s = sliced.schedule.ToString();
  EXPECT_NE(s.find("grid="), std::string::npos);
  EXPECT_NE(s.find("smem="), std::string::npos);
}

// --- Partitioning (Alg. 2) -------------------------------------------------------

TEST(PartitionerTest, BoundariesSeparateReductions) {
  Graph g = BuildLayerNormGraph(64, 128);
  std::vector<int> cuts = SubSmgBoundaries(g);
  EXPECT_FALSE(cuts.empty());
  for (int cut : cuts) {
    EXPECT_GT(cut, 0);
    EXPECT_LT(cut, static_cast<int>(g.ops().size()));
  }
}

TEST(PartitionerTest, SplitGraphPreservesSemantics) {
  Graph g = BuildFfn(16, 32, 64, UnaryKind::kRelu, NormKind::kLayerNorm);
  std::vector<int> cuts = SubSmgBoundaries(g);
  ASSERT_FALSE(cuts.empty());
  int cut = cuts[cuts.size() / 2];
  auto [front, back] = SplitGraph(g, cut);
  EXPECT_TRUE(front.Validate().ok());
  EXPECT_TRUE(back.Validate().ok());
  EXPECT_EQ(front.ops().size() + back.ops().size(), g.ops().size());
  // The original output survives in the back graph under its name.
  for (TensorId out : g.OutputIds()) {
    bool found = false;
    for (TensorId t : back.OutputIds()) {
      found |= back.tensor(t).name == g.tensor(out).name;
    }
    for (TensorId t : front.OutputIds()) {
      found |= front.tensor(t).name == g.tensor(out).name;
    }
    EXPECT_TRUE(found) << g.tensor(out).name;
  }
}

TEST(PartitionerTest, SplitGraphCutTensorsBecomeBoundary) {
  Graph g = BuildMlp(3, 32, 16, 16);
  std::vector<int> cuts = SubSmgBoundaries(g);
  ASSERT_FALSE(cuts.empty());
  auto [front, back] = SplitGraph(g, cuts.front());
  int front_outputs = static_cast<int>(front.OutputIds().size());
  EXPECT_GE(front_outputs, 1);
  // Every front output appears as a back input with the same name.
  for (TensorId out : front.OutputIds()) {
    bool found = false;
    for (TensorId in : back.InputIds()) {
      if (back.tensor(in).name == front.tensor(out).name) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << front.tensor(out).name;
  }
}

TEST(PartitionerTest, PartitionOnceFindsLargestSchedulablePrefix) {
  Graph g = BuildLayerNormGraph(32, 4096);
  ResourceConfig tiny;
  tiny.smem_per_block_max = 4 * 1024;
  tiny.reg_per_block_max = 32 * 1024;
  // Only partition when the whole graph is indeed unschedulable.
  StatusOr<SlicingResult> whole = ResourceAwareSlicing(g, tiny);
  if (whole.ok()) {
    GTEST_SKIP() << "graph schedulable under tiny budget; nothing to partition";
  }
  StatusOr<PartitionOutcome> part = PartitionOnce(g, tiny, SlicingOptions());
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  EXPECT_TRUE(part->has_rest);
  EXPECT_FALSE(part->front.configs.empty());
}

TEST(PipelineTest, ConvergesToKernelSequence) {
  Graph g = BuildLayerNormGraph(32, 4096);
  ResourceConfig tiny;
  tiny.smem_per_block_max = 4 * 1024;
  tiny.reg_per_block_max = 32 * 1024;
  StatusOr<PipelineResult> pipeline = RunSlicingPipeline(g, tiny, SlicingOptions());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_GE(pipeline->candidates.front().kernels.size(), 1u);
  // Total op count across kernels covers the whole graph.
  size_t total_ops = 0;
  for (const SlicingResult& k : pipeline->candidates.front().kernels) {
    total_ops += k.schedule.graph.ops().size();
  }
  EXPECT_EQ(total_ops, g.ops().size());
}

// --- Lowering --------------------------------------------------------------------

TEST(LoweringTest, FusedMhaTrafficIsBoundaryOnly) {
  Graph g = BuildMha(8, 256, 256, 64);
  ResourceConfig rc = A100Rc();
  SlicingResult sliced = SliceOrDie(g, rc);
  AddressMap addresses;
  KernelSpec spec = LowerSchedule(sliced.schedule, &addresses);
  std::int64_t read_unique = 0;
  for (const TensorTraffic& r : spec.reads) {
    read_unique += r.unique_bytes;
  }
  // Q + K + V only; the probability matrix never reaches global memory.
  std::int64_t qkv = 3 * 8 * 256 * 64 * 2;
  EXPECT_EQ(read_unique, qkv);
  ASSERT_EQ(spec.writes.size(), 1u);
  EXPECT_EQ(spec.writes[0].unique_bytes, 8 * 256 * 64 * 2);
  EXPECT_GT(spec.flops, 0);
  EXPECT_GT(spec.grid, 0);
}

TEST(LoweringTest, MatmulTileEfficiencyMonotonic) {
  EXPECT_GT(MatmulTileEfficiency(64, 64), MatmulTileEfficiency(32, 32));
  EXPECT_GT(MatmulTileEfficiency(32, 32), MatmulTileEfficiency(8, 8));
}

TEST(LoweringTest, TemporalRecomputeChargesEpilogue) {
  // An MLP sliced temporally re-evaluates the row epilogue per intra-block.
  Graph g = BuildMlp(2, 64, 64, 64);
  ResourceConfig rc = A100Rc();
  SlicingResult sliced = SliceOrDie(g, rc);
  if (!sliced.schedule.has_temporal) {
    GTEST_SKIP() << "no temporal dim chosen";
  }
  ScheduleConfig with_t, without_t;
  bool have_t = false, have_nt = false;
  for (const ScheduleConfig& c : sliced.configs) {
    if (c.use_temporal && !have_t) {
      with_t = c;
      have_t = true;
    }
    if (!c.use_temporal && !have_nt) {
      without_t = c;
      have_nt = true;
    }
  }
  if (!have_t || !have_nt) {
    GTEST_SKIP();
  }
  with_t.spatial_blocks = without_t.spatial_blocks;
  AddressMap a1, a2;
  sliced.schedule.ApplyConfig(with_t);
  PlanMemory(&sliced.schedule, rc);
  KernelSpec temporal = LowerSchedule(sliced.schedule, &a1);
  sliced.schedule.ApplyConfig(without_t);
  PlanMemory(&sliced.schedule, rc);
  KernelSpec single = LowerSchedule(sliced.schedule, &a2);
  EXPECT_GE(temporal.flops, single.flops);
}

}  // namespace
}  // namespace spacefusion
