// Shared random-graph generators for the property-testing suites
// (fuzz_test.cc, differential_test.cc): deterministic per-seed graphs of
// chained 2-D ops that sweep slicing decisions, aggregation plans,
// partitioning and component splitting over shapes no hand-written test
// covers.
#ifndef SPACEFUSION_TESTS_RANDOM_GRAPH_H_
#define SPACEFUSION_TESTS_RANDOM_GRAPH_H_

#include <cstdint>

#include "src/graph/builder.h"
#include "src/support/string_util.h"

namespace spacefusion {
namespace testing_util {

// SplitMix64: deterministic per-seed randomness.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ULL + 1) {}

  std::uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::int64_t Range(std::int64_t lo, std::int64_t hi) {  // inclusive
    return lo + static_cast<std::int64_t>(Next() % static_cast<std::uint64_t>(hi - lo + 1));
  }

 private:
  std::uint64_t state_;
};

// Builds a random graph of chained 2-D ops over [rows, cols]-shaped values.
// Reductions reduce the last axis; matmuls contract it against a fresh
// weight; softmax/layernorm composites appear occasionally.
inline Graph RandomGraph(std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(StrCat("fuzz_", seed));
  std::int64_t rows = 8 << rng.Range(0, 2);   // 8..32
  std::int64_t cols = 16 << rng.Range(0, 2);  // 16..64

  TensorId cur = b.Input("x", Shape({rows, cols}));
  int ops = static_cast<int>(rng.Range(2, 7));
  int weight_count = 0;

  for (int i = 0; i < ops; ++i) {
    switch (rng.Range(0, 6)) {
      case 0: {  // matmul with a fresh weight (keeps cols as new N)
        std::int64_t n = 16 << rng.Range(0, 2);
        TensorId w = b.Weight(StrCat("w", weight_count++), Shape({cols, n}));
        cur = b.MatMul(cur, w);
        cols = n;
        break;
      }
      case 1:
        cur = b.Unary(static_cast<UnaryKind>(rng.Range(0, 4)), cur);  // exp..sigmoid
        break;
      case 2: {  // bias-style broadcast binary
        TensorId bias = b.Weight(StrCat("b", weight_count++), Shape({cols}));
        cur = b.Binary(BinaryKind::kAdd, cur, bias);
        break;
      }
      case 3: {  // row-stat broadcast (sub the row max: keeps values sane)
        TensorId stat = b.Reduce(ReduceKind::kMax, cur);
        cur = b.Binary(BinaryKind::kSub, cur, stat);
        break;
      }
      case 4:
        cur = b.Softmax(cur);
        break;
      case 5: {
        TensorId gamma = b.Weight(StrCat("g", weight_count++), Shape({cols}));
        cur = b.LayerNorm(cur, gamma, kInvalidTensor);
        break;
      }
      case 6:
        cur = b.Relu(cur);
        break;
    }
  }
  b.MarkOutput(cur);
  return b.Build();
}

}  // namespace testing_util
}  // namespace spacefusion

#endif  // SPACEFUSION_TESTS_RANDOM_GRAPH_H_
