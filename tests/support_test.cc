#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/support/logging.h"
#include "src/support/math_util.h"
#include "src/support/status.h"
#include "src/support/string_util.h"

namespace spacefusion {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Unschedulable("too big");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnschedulable);
  EXPECT_EQ(st.message(), "too big");
  EXPECT_EQ(st.ToString(), "UNSCHEDULABLE: too big");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnschedulable), "UNSCHEDULABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "UNSUPPORTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgument("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  SF_ASSIGN_OR_RETURN(int h, Half(x));
  SF_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  StatusOr<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  StatusOr<int> bad = Quarter(6);  // 6/2 = 3 is odd
  EXPECT_FALSE(bad.ok());
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(7, 2), 4);
  EXPECT_EQ(CeilDiv(8, 2), 4);
  EXPECT_EQ(CeilDiv(1, 2), 1);
  EXPECT_EQ(CeilDiv(0, 2), 0);
}

TEST(MathUtilTest, RoundUp) {
  EXPECT_EQ(RoundUp(7, 4), 8);
  EXPECT_EQ(RoundUp(8, 4), 8);
  EXPECT_EQ(RoundUp(1, 256), 256);
}

TEST(MathUtilTest, PowersOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_EQ(NextPowerOfTwo(5), 8);
  EXPECT_EQ(NextPowerOfTwo(8), 8);
  EXPECT_EQ(PrevPowerOfTwo(5), 4);
  EXPECT_EQ(PrevPowerOfTwo(8), 8);
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(9), 3);
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, StrJoin) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(StrJoin(v, ", "), "1, 2, 3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
}

TEST(StringUtilTest, StrSplit) {
  std::vector<std::string> parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("spacefusion", "space"));
  EXPECT_FALSE(StartsWith("space", "spacefusion"));
}

TEST(LoggingTest, ThresholdControlsEmission) {
  LogLevel old = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);

  testing::internal::CaptureStderr();
  SF_LOG(Info) << "suppressed-info";
  SF_LOG(Warning) << "suppressed-warning";
  SF_LOG(Error) << "emitted-error";
  std::string captured = testing::internal::GetCapturedStderr();

  EXPECT_EQ(captured.find("suppressed-info"), std::string::npos);
  EXPECT_EQ(captured.find("suppressed-warning"), std::string::npos);
  EXPECT_NE(captured.find("emitted-error"), std::string::npos);
  SetLogThreshold(old);
}

TEST(LoggingTest, MessagesAtOrAboveThresholdAreEmitted) {
  LogLevel old = GetLogThreshold();
  SetLogThreshold(LogLevel::kDebug);

  testing::internal::CaptureStderr();
  SF_LOG(Debug) << "debug-visible";
  SF_LOG(Info) << "info-visible";
  std::string captured = testing::internal::GetCapturedStderr();

  EXPECT_NE(captured.find("debug-visible"), std::string::npos);
  EXPECT_NE(captured.find("info-visible"), std::string::npos);
  SetLogThreshold(old);
}

TEST(LoggingTest, LineHasPrefixAndSingleTrailingNewline) {
  LogLevel old = GetLogThreshold();
  SetLogThreshold(LogLevel::kInfo);

  testing::internal::CaptureStderr();
  SF_LOG(Warning) << "format-probe";
  std::string captured = testing::internal::GetCapturedStderr();

  // "[W support_test.cc:NN] format-probe\n" — severity tag, basename (no
  // directories), and exactly one newline terminating the line.
  EXPECT_EQ(captured.find("[W support_test.cc:"), 0u);
  EXPECT_NE(captured.find("] format-probe\n"), std::string::npos);
  EXPECT_EQ(captured.find('/'), std::string::npos);
  ASSERT_FALSE(captured.empty());
  EXPECT_EQ(captured.back(), '\n');
  EXPECT_EQ(std::count(captured.begin(), captured.end(), '\n'), 1);
  SetLogThreshold(old);
}

TEST(LoggingTest, SuppressedMessageDoesNotEvaluateStreamOperands) {
  LogLevel old = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  SF_LOG(Info) << count();
  EXPECT_EQ(evaluations, 0);
  SF_LOG(Error) << count();
  EXPECT_EQ(evaluations, 1);
  SetLogThreshold(old);
}

}  // namespace
}  // namespace spacefusion
