#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/support/binary_io.h"
#include "src/support/file_util.h"
#include "src/support/logging.h"
#include "src/support/math_util.h"
#include "src/support/status.h"
#include "src/support/string_util.h"
#include "src/support/thread_pool.h"

namespace spacefusion {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Unschedulable("too big");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnschedulable);
  EXPECT_EQ(st.message(), "too big");
  EXPECT_EQ(st.ToString(), "UNSCHEDULABLE: too big");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnschedulable), "UNSCHEDULABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "UNSUPPORTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
}

TEST(StatusTest, ServingHelpersCarryTheirCodes) {
  EXPECT_EQ(DeadlineExceeded("too slow").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ResourceExhausted("quota").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(DataLoss("bad blob").code(), StatusCode::kDataLoss);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgument("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  SF_ASSIGN_OR_RETURN(int h, Half(x));
  SF_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  StatusOr<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  StatusOr<int> bad = Quarter(6);  // 6/2 = 3 is odd
  EXPECT_FALSE(bad.ok());
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(7, 2), 4);
  EXPECT_EQ(CeilDiv(8, 2), 4);
  EXPECT_EQ(CeilDiv(1, 2), 1);
  EXPECT_EQ(CeilDiv(0, 2), 0);
}

TEST(MathUtilTest, RoundUp) {
  EXPECT_EQ(RoundUp(7, 4), 8);
  EXPECT_EQ(RoundUp(8, 4), 8);
  EXPECT_EQ(RoundUp(1, 256), 256);
}

TEST(MathUtilTest, PowersOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_EQ(NextPowerOfTwo(5), 8);
  EXPECT_EQ(NextPowerOfTwo(8), 8);
  EXPECT_EQ(PrevPowerOfTwo(5), 4);
  EXPECT_EQ(PrevPowerOfTwo(8), 8);
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(9), 3);
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, StrJoin) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(StrJoin(v, ", "), "1, 2, 3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
}

TEST(StringUtilTest, StrSplit) {
  std::vector<std::string> parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("spacefusion", "space"));
  EXPECT_FALSE(StartsWith("space", "spacefusion"));
}

TEST(LoggingTest, ThresholdControlsEmission) {
  LogLevel old = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);

  testing::internal::CaptureStderr();
  SF_LOG(Info) << "suppressed-info";
  SF_LOG(Warning) << "suppressed-warning";
  SF_LOG(Error) << "emitted-error";
  std::string captured = testing::internal::GetCapturedStderr();

  EXPECT_EQ(captured.find("suppressed-info"), std::string::npos);
  EXPECT_EQ(captured.find("suppressed-warning"), std::string::npos);
  EXPECT_NE(captured.find("emitted-error"), std::string::npos);
  SetLogThreshold(old);
}

TEST(LoggingTest, MessagesAtOrAboveThresholdAreEmitted) {
  LogLevel old = GetLogThreshold();
  SetLogThreshold(LogLevel::kDebug);

  testing::internal::CaptureStderr();
  SF_LOG(Debug) << "debug-visible";
  SF_LOG(Info) << "info-visible";
  std::string captured = testing::internal::GetCapturedStderr();

  EXPECT_NE(captured.find("debug-visible"), std::string::npos);
  EXPECT_NE(captured.find("info-visible"), std::string::npos);
  SetLogThreshold(old);
}

TEST(LoggingTest, LineHasPrefixAndSingleTrailingNewline) {
  LogLevel old = GetLogThreshold();
  SetLogThreshold(LogLevel::kInfo);

  testing::internal::CaptureStderr();
  SF_LOG(Warning) << "format-probe";
  std::string captured = testing::internal::GetCapturedStderr();

  // "[W support_test.cc:NN] format-probe\n" — severity tag, basename (no
  // directories), and exactly one newline terminating the line.
  EXPECT_EQ(captured.find("[W support_test.cc:"), 0u);
  EXPECT_NE(captured.find("] format-probe\n"), std::string::npos);
  EXPECT_EQ(captured.find('/'), std::string::npos);
  ASSERT_FALSE(captured.empty());
  EXPECT_EQ(captured.back(), '\n');
  EXPECT_EQ(std::count(captured.begin(), captured.end(), '\n'), 1);
  SetLogThreshold(old);
}

TEST(LoggingTest, SuppressedMessageDoesNotEvaluateStreamOperands) {
  LogLevel old = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  SF_LOG(Info) << count();
  EXPECT_EQ(evaluations, 0);
  SF_LOG(Error) << count();
  EXPECT_EQ(evaluations, 1);
  SetLogThreshold(old);
}

TEST(ThreadPoolTest, ParseJobsAcceptsPositiveIntegers) {
  EXPECT_EQ(ParseJobs("1"), 1);
  EXPECT_EQ(ParseJobs("6"), 6);
  EXPECT_EQ(ParseJobs("  8  "), 8);  // strtol skips leading space; we skip trailing
  EXPECT_EQ(ParseJobs("256"), 256);
}

TEST(ThreadPoolTest, ParseJobsRejectsInvalidAsNoOverride) {
  EXPECT_EQ(ParseJobs(nullptr), 0);
  EXPECT_EQ(ParseJobs(""), 0);
  EXPECT_EQ(ParseJobs("0"), 0);
  EXPECT_EQ(ParseJobs("-3"), 0);
  EXPECT_EQ(ParseJobs("abc"), 0);
  EXPECT_EQ(ParseJobs("4x"), 0);
  EXPECT_EQ(ParseJobs("3.5"), 0);
}

TEST(ThreadPoolTest, ParseJobsClampsHugeValues) {
  EXPECT_EQ(ParseJobs("1000"), 256);
  EXPECT_EQ(ParseJobs("999999999999999999999"), 256);  // strtol saturates at LONG_MAX
}

TEST(ThreadPoolTest, DefaultJobCountIsAtLeastOne) { EXPECT_GE(DefaultJobCount(), 1); }

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  EXPECT_EQ(pool.concurrency(), 4);
  EXPECT_FALSE(pool.InPool());  // the test thread is not a worker

  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (std::future<void>& f : futures) {
    f.get();
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> f = pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);

  // The worker that ran the throwing task must survive for later tasks.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  EXPECT_EQ(pool.concurrency(), 1);

  std::thread::id submit_thread;
  pool.Submit([&submit_thread] { submit_thread = std::this_thread::get_id(); }).get();
  EXPECT_EQ(submit_thread, std::this_thread::get_id());

  std::vector<int> seen(100, 0);
  pool.ParallelFor(100, [&seen](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      ++seen[static_cast<size_t>(i)];
    }
  });
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 1), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 1337;
  std::vector<std::atomic<int>> seen(kN);
  pool.ParallelFor(kN, [&seen](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      ++seen[static_cast<size_t>(i)];
    }
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleElementRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&calls](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::thread::id chunk_thread;
  pool.ParallelFor(1, [&](std::int64_t begin, std::int64_t end) {
    ++calls;
    chunk_thread = std::this_thread::get_id();
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 1);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(chunk_thread, std::this_thread::get_id());  // n==1 stays on the caller
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](std::int64_t begin, std::int64_t) {
                                  if (begin == 0) {
                                    throw std::runtime_error("chunk failed");
                                  }
                                }),
               std::runtime_error);

  // The pool stays usable after a failed loop.
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&count](std::int64_t begin, std::int64_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 100);
}

// A task that submits a subtask and blocks on its future would deadlock a
// one-worker pool without the inline-execution guard.
TEST(ThreadPoolTest, NestedSubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(1);
  std::atomic<bool> inner_ran{false};
  std::atomic<bool> was_in_pool{false};
  pool.Submit([&] {
      was_in_pool = pool.InPool();
      pool.Submit([&inner_ran] { inner_ran = true; }).get();
    })
      .get();
  EXPECT_TRUE(was_in_pool.load());
  EXPECT_TRUE(inner_ran.load());
}

// A ParallelFor issued from inside a chunk of another ParallelFor must run
// serially inline rather than re-entering the queue.
TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  constexpr std::int64_t kOuter = 8;
  constexpr std::int64_t kInner = 16;
  std::vector<std::atomic<int>> seen(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t o = begin; o < end; ++o) {
      pool.ParallelFor(kInner, [&, o](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i) {
          ++seen[static_cast<size_t>(o * kInner + i)];
        }
      });
    }
  });
  for (std::int64_t i = 0; i < kOuter * kInner; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ResetGlobalThreadPoolHonorsJobOverride) {
  ResetGlobalThreadPool(5);
  EXPECT_EQ(GlobalThreadPool().concurrency(), 5);
  ResetGlobalThreadPool(1);
  EXPECT_EQ(GlobalThreadPool().workers(), 0);  // jobs=1 is exactly serial
  ResetGlobalThreadPool();
  EXPECT_EQ(GlobalThreadPool().concurrency(), DefaultJobCount());
}

// ---------------------------------------------------------------------------
// AtomicWriteFile: the write-tmp-then-rename discipline shared by the report
// sink and the persistent program cache. The invariant under test: a file
// that exists at the final path is complete — a reader can never load a
// partial write.

TEST(FileUtilTest, AtomicWriteRoundTripsAndCreatesParents) {
  const std::string dir = testing::TempDir() + "/sf_file_util/nested/deeper";
  std::filesystem::remove_all(testing::TempDir() + "/sf_file_util");
  const std::string path = dir + "/entry.bin";
  const std::string payload("binary\0payload\n", 15);
  ASSERT_TRUE(AtomicWriteFile(path, payload).ok());
  StatusOr<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);

  // Overwrite replaces atomically and leaves no temp residue behind.
  ASSERT_TRUE(AtomicWriteFile(path, "v2").ok());
  EXPECT_EQ(*ReadFileToString(path), "v2");
  EXPECT_EQ(ListDirectory(dir), std::vector<std::string>{"entry.bin"});
}

TEST(FileUtilTest, SimulatedPartialWriteIsNeverLoaded) {
  const std::string dir = testing::TempDir() + "/sf_file_util_partial";
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/entry.bin";
  // A writer that crashed mid-write leaves only a "<name>.tmp.<pid>.<seq>"
  // torso. Simulate one: the final path must stay invisible to readers.
  ASSERT_TRUE(AtomicWriteFile(dir + "/placeholder", "").ok());  // create dir
  {
    std::FILE* f = std::fopen((path + ".tmp.12345.0").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("torso of an interrupted wr", f);
    std::fclose(f);
  }
  EXPECT_EQ(ReadFileToString(path).status().code(), StatusCode::kNotFound);

  // A later complete write wins, and the stale torso stays inert.
  ASSERT_TRUE(AtomicWriteFile(path, "complete").ok());
  EXPECT_EQ(*ReadFileToString(path), "complete");
}

TEST(FileUtilTest, FailedWriteLeavesTheTargetUntouched) {
  const std::string dir = testing::TempDir() + "/sf_file_util_fail";
  std::filesystem::remove_all(dir);
  const std::string blocker = dir + "/blocker";
  ASSERT_TRUE(AtomicWriteFile(blocker, "intact").ok());
  // blocker is a regular file, so nothing can be written "inside" it.
  EXPECT_FALSE(AtomicWriteFile(blocker + "/child", "x").ok());
  EXPECT_EQ(*ReadFileToString(blocker), "intact");
}

TEST(FileUtilTest, ListDirectorySortsAndSkipsMissing) {
  const std::string dir = testing::TempDir() + "/sf_file_util_list";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(AtomicWriteFile(dir + "/b", "1").ok());
  ASSERT_TRUE(AtomicWriteFile(dir + "/a", "2").ok());
  EXPECT_EQ(ListDirectory(dir), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(ListDirectory(dir + "/no_such_dir").empty());
}

// ---------------------------------------------------------------------------
// Binary encoding: bit-exact doubles and a reader that treats its input as
// hostile.

TEST(BinaryIoTest, ScalarsRoundTripBitExactly) {
  ByteWriter w;
  w.U8(0xab);
  w.Bool(true);
  w.U32(0xdeadbeef);
  w.I64(-42);
  w.F64(0.1);     // not representable exactly in decimal
  w.F64(-0.0);    // sign bit must survive
  w.F64(5e-324);  // smallest denormal
  w.Str("schedule");
  const std::string bytes = w.bytes();

  ByteReader r(bytes);
  std::uint8_t u8 = 0;
  bool b = false;
  std::uint32_t u32 = 0;
  std::int64_t i64 = 0;
  double d1 = 0, d2 = 0, d3 = 0;
  std::string s;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.Bool(&b).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.I64(&i64).ok());
  ASSERT_TRUE(r.F64(&d1).ok());
  ASSERT_TRUE(r.F64(&d2).ok());
  ASSERT_TRUE(r.F64(&d3).ok());
  ASSERT_TRUE(r.Str(&s).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(u8, 0xab);
  EXPECT_TRUE(b);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d1, 0.1);
  EXPECT_TRUE(std::signbit(d2));
  EXPECT_EQ(d3, 5e-324);
  EXPECT_EQ(s, "schedule");
}

TEST(BinaryIoTest, EveryTruncationFailsCleanly) {
  ByteWriter w;
  w.U64(7);
  w.Str("hello");
  w.I64Vec({1, 2, 3});
  const std::string bytes = w.bytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string cut = bytes.substr(0, len);
    ByteReader r(cut);
    std::uint64_t u = 0;
    std::string s;
    std::vector<std::int64_t> v;
    // Some prefix of the reads fails; none may crash or read past the end.
    Status st = r.U64(&u);
    if (st.ok()) {
      st = r.Str(&s);
    }
    if (st.ok()) {
      st = r.I64Vec(&v);
    }
    EXPECT_FALSE(st.ok()) << "length " << len;
  }
}

TEST(BinaryIoTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  // A corrupted count claiming 2^60 elements must fail the remaining-bytes
  // check instead of trying to reserve exabytes.
  ByteWriter w;
  w.U64(1ULL << 60);
  const std::string bytes = w.bytes();
  ByteReader r(bytes);
  std::vector<std::int64_t> v;
  EXPECT_FALSE(r.I64Vec(&v).ok());
  EXPECT_TRUE(v.empty());

  ByteReader r2(bytes);
  std::string s;
  EXPECT_FALSE(r2.Str(&s).ok());
}

TEST(BinaryIoTest, NonCanonicalBoolByteIsRejected) {
  // Canonical serialization admits exactly one encoding per value.
  std::string two("\x02", 1);
  ByteReader r(two);
  bool b = false;
  EXPECT_FALSE(r.Bool(&b).ok());
}

TEST(BinaryIoTest, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace spacefusion
