// Tests for the pass-manager compile pipeline (src/pass): pass-list
// construction and ablation edits, run ordering and error short-circuiting,
// per-pass timings feeding CompileTimeBreakdown, verify hooks at phase
// boundaries, and the SPACEFUSION_DUMP_AFTER_PASS facility.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/graph/subgraphs.h"
#include "src/obs/metrics.h"
#include "src/pass/pass.h"
#include "src/schedule/memory_planner.h"

namespace spacefusion {
namespace {

std::vector<std::string> PassNames(const std::vector<std::unique_ptr<Pass>>& passes) {
  std::vector<std::string> names;
  for (const std::unique_ptr<Pass>& pass : passes) {
    names.push_back(pass->name());
  }
  return names;
}

TEST(PassListTest, DefaultListIsTheFig9Pipeline) {
  CompileOptions options;
  std::vector<std::string> names = PassNames(BuildCompilePassList(options));
  std::vector<std::string> expected = {"BuildSmg", "SlicingPipeline", "EnumerateConfigs",
                                       "Tune",     "PlanMemory",      "Lower",
                                       "Estimate"};
  EXPECT_EQ(names, expected);
}

TEST(PassListTest, DisablingAutoSchedulingSwapsTuneForExpertConfig) {
  CompileOptions options;
  options.enable_auto_scheduling = false;
  std::vector<std::string> names = PassNames(BuildCompilePassList(options));
  std::vector<std::string> expected = {"BuildSmg", "SlicingPipeline", "EnumerateConfigs",
                                       "ExpertConfig", "PlanMemory", "Lower", "Estimate"};
  EXPECT_EQ(names, expected);
}

TEST(PassListTest, FullVerifyAppendsAnalyze) {
  CompileOptions options;
  options.verify = VerifyMode::kFull;
  options.analyze = AnalyzeMode::kOff;
  std::vector<std::string> names = PassNames(BuildCompilePassList(options));
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.back(), "Analyze");
}

TEST(PassListTest, AnalyzePhaseAppendsAnalyzeWithoutFullVerify) {
  CompileOptions options;
  options.verify = VerifyMode::kPhase;
  options.analyze = AnalyzeMode::kPhase;
  std::vector<std::string> names = PassNames(BuildCompilePassList(options));
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.back(), "Analyze");

  options.analyze = AnalyzeMode::kOff;
  names = PassNames(BuildCompilePassList(options));
  ASSERT_FALSE(names.empty());
  EXPECT_NE(names.back(), "Analyze");
}

// --- PassManager mechanics ------------------------------------------------

class RecordingPass : public Pass {
 public:
  RecordingPass(const char* name, std::vector<std::string>* log, Status result = Status::Ok())
      : name_(name), log_(log), result_(std::move(result)) {}
  const char* name() const override { return name_; }
  Status Run(CompilationState* state) override {
    (void)state;
    log_->push_back(name_);
    return result_;
  }

 private:
  const char* name_;
  std::vector<std::string>* log_;
  Status result_;
};

CompilationState MinimalState(const Graph* graph, const CompileOptions* options) {
  CompilationState state;
  state.graph = graph;
  state.options = options;
  state.rc = ResourceConfig::FromArch(options->arch);
  return state;
}

TEST(PassManagerTest, RunsPassesInOrderAndTimesEach) {
  std::vector<std::string> log;
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(std::make_unique<RecordingPass>("A", &log));
  passes.push_back(std::make_unique<RecordingPass>("B", &log));
  passes.push_back(std::make_unique<RecordingPass>("C", &log));

  Graph g = BuildMlp(1, 8, 8, 8);
  CompileOptions options;
  CompilationState state = MinimalState(&g, &options);
  PassManager manager(std::move(passes));
  ASSERT_TRUE(manager.Run(&state).ok());

  EXPECT_EQ(log, (std::vector<std::string>{"A", "B", "C"}));
  ASSERT_EQ(manager.timings().size(), 3u);
  EXPECT_EQ(manager.timings()[0].pass, "A");
  EXPECT_EQ(manager.timings()[2].pass, "C");
  for (const PassTiming& timing : manager.timings()) {
    EXPECT_GE(timing.ms, 0.0);
  }
}

TEST(PassManagerTest, ErrorStopsThePipeline) {
  std::vector<std::string> log;
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(std::make_unique<RecordingPass>("A", &log));
  passes.push_back(
      std::make_unique<RecordingPass>("B", &log, Internal("pass B failed")));
  passes.push_back(std::make_unique<RecordingPass>("C", &log));

  Graph g = BuildMlp(1, 8, 8, 8);
  CompileOptions options;
  CompilationState state = MinimalState(&g, &options);
  PassManager manager(std::move(passes));
  Status status = manager.Run(&state);

  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(log, (std::vector<std::string>{"A", "B"}));  // C never ran
  EXPECT_EQ(manager.timings().size(), 2u);               // failed pass is still timed
}

TEST(PassManagerTest, PassMetricsAreRecorded) {
  MetricsRegistry::Global().Reset();
  std::vector<std::string> log;
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(std::make_unique<RecordingPass>("MetricsProbe", &log));

  Graph g = BuildMlp(1, 8, 8, 8);
  CompileOptions options;
  CompilationState state = MinimalState(&g, &options);
  PassManager manager(std::move(passes));
  ASSERT_TRUE(manager.Run(&state).ok());

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("pass.MetricsProbe.runs"), 1);
}

// --- The real pipeline through PassManager --------------------------------

// Drives the full compile pass list over a CompilationState by hand (the
// way CompilerEngine does) and checks the artifacts land in the store.
TEST(CompilePipelineTest, FullPassListProducesBestProgram) {
  Graph g = BuildMha(4, 64, 64, 32);
  CompileOptions options;
  CostModel cost(options.arch);
  CompilationState state = MinimalState(&g, &options);
  state.cost = &cost;

  PassManager manager(BuildCompilePassList(options));
  ASSERT_TRUE(manager.Run(&state).ok());

  EXPECT_FALSE(state.components.empty());
  EXPECT_EQ(state.components.size(), state.component_smgs.size());
  EXPECT_FALSE(state.pipeline.candidates.empty());
  EXPECT_GT(state.enumerated_configs, 0);
  EXPECT_EQ(state.candidates.size(), state.pipeline.candidates.size());
  ASSERT_TRUE(state.have_best);
  EXPECT_FALSE(state.best.program.kernels.empty());
  EXPECT_GT(state.best.estimate.time_us, 0.0);
  EXPECT_GT(state.total_tuning_s, 0.0);
  // Every pass ran and was timed.
  EXPECT_EQ(manager.timings().size(), 7u);
  EXPECT_GT(manager.PassMs("SlicingPipeline"), 0.0);
  // Span totals from inside the passes are visible afterwards (the
  // breakdown substrate).
  EXPECT_GT(manager.SpanTotalMs("search.enum_cfg"), 0.0);
}

TEST(CompilePipelineTest, ManualRunMatchesEngineCompile) {
  Graph g = BuildMha(4, 64, 64, 32);
  CompileOptions options;
  CostModel cost(options.arch);
  CompilationState state = MinimalState(&g, &options);
  state.cost = &cost;
  PassManager manager(BuildCompilePassList(options));
  ASSERT_TRUE(manager.Run(&state).ok());

  CompilerEngine engine{CompileOptions()};
  StatusOr<CompiledSubprogram> compiled = engine.Compile(g);
  ASSERT_TRUE(compiled.ok());

  ASSERT_EQ(state.best.program.kernels.size(), compiled->program.kernels.size());
  for (size_t i = 0; i < state.best.program.kernels.size(); ++i) {
    EXPECT_EQ(state.best.program.kernels[i].ToString(), compiled->program.kernels[i].ToString());
  }
  EXPECT_EQ(state.best.estimate.time_us, compiled->estimate.time_us);
  EXPECT_EQ(state.total_tuning_s, compiled->tuning.simulated_tuning_seconds);
}

TEST(CompilePipelineTest, BreakdownDerivesFromPassTimings) {
  CompilerEngine engine{CompileOptions()};
  StatusOr<CompiledSubprogram> compiled = engine.Compile(BuildMha(4, 64, 64, 32));
  ASSERT_TRUE(compiled.ok());
  EXPECT_GE(compiled->compile_time.slicing_ms, 0.0);
  EXPECT_GT(compiled->compile_time.enum_cfg_ms, 0.0);
  EXPECT_GT(compiled->compile_time.tuning_s, 0.0);
  EXPECT_GE(compiled->compile_time.total_s(), compiled->compile_time.tuning_s);
}

// --- Verify hooks ---------------------------------------------------------

TEST(PassVerifyTest, EntryHookRejectsMalformedGraph) {
  // Unary output shape disagrees with its input: SFV0103 at the BuildSmg
  // entry boundary.
  Graph g("malformed");
  TensorInfo in;
  in.name = "x";
  in.shape = Shape({8, 16});
  in.kind = TensorKind::kInput;
  TensorId x = g.AddTensor(std::move(in));
  TensorInfo out;
  out.name = "y";
  out.shape = Shape({8, 8});
  out.kind = TensorKind::kOutput;
  TensorId y = g.AddTensor(std::move(out));
  Op op;
  op.kind = OpKind::kUnary;
  op.inputs = {x};
  op.output = y;
  op.name = "op";
  g.AddOp(std::move(op));

  CompileOptions options;
  options.verify = VerifyMode::kPhase;
  CompilerEngine engine{options};
  StatusOr<CompiledSubprogram> compiled = engine.Compile(g);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(compiled.status().message().find("SFV0103"), std::string::npos);
}

TEST(PassVerifyTest, VerifyOffSkipsHooks) {
  // The same malformed graph dies later (or compiles into garbage) without
  // the entry hook; with kOff the manager must not call the hooks at all.
  // Use a *valid* graph and check hook-ordering instead: a pass whose
  // VerifyBefore always fails only fails the run when verification is on.
  class FailingVerifyPass : public Pass {
   public:
    const char* name() const override { return "FailingVerify"; }
    Status Run(CompilationState*) override { return Status::Ok(); }
    Status VerifyBefore(CompilationState*) override { return Internal("hook ran"); }
  };

  Graph g = BuildMlp(1, 8, 8, 8);
  for (VerifyMode mode : {VerifyMode::kOff, VerifyMode::kPhase}) {
    CompileOptions options;
    options.verify = mode;
    CompilationState state = MinimalState(&g, &options);
    std::vector<std::unique_ptr<Pass>> passes;
    passes.push_back(std::make_unique<FailingVerifyPass>());
    PassManager manager(std::move(passes));
    Status status = manager.Run(&state);
    EXPECT_EQ(status.ok(), mode == VerifyMode::kOff);
  }
}

// --- Dump-after-pass ------------------------------------------------------

TEST(PassDumpTest, SpecParsing) {
  EXPECT_FALSE(PassDumpRequested("", "Tune"));
  EXPECT_TRUE(PassDumpRequested("all", "Tune"));
  EXPECT_TRUE(PassDumpRequested("*", "BuildSmg"));
  EXPECT_TRUE(PassDumpRequested("Tune", "Tune"));
  EXPECT_FALSE(PassDumpRequested("Tune", "Lower"));
  EXPECT_TRUE(PassDumpRequested("BuildSmg,Lower", "Lower"));
  EXPECT_TRUE(PassDumpRequested("BuildSmg,Lower", "BuildSmg"));
  EXPECT_FALSE(PassDumpRequested("BuildSmg,Lower", "Tune"));
  EXPECT_FALSE(PassDumpRequested("Tune", "tune"));  // case-sensitive
}

TEST(PassDumpTest, SinkReceivesArtifactsAfterEveryPass) {
  Graph g = BuildMha(4, 64, 64, 32);
  CompileOptions options;
  CostModel cost(options.arch);
  CompilationState state = MinimalState(&g, &options);
  state.cost = &cost;

  std::vector<std::pair<std::string, std::string>> dumps;
  PassManagerOptions pm_options;
  pm_options.dump_after_pass = "all";
  pm_options.dump_sink = [&dumps](const std::string& pass, const std::string& text) {
    dumps.emplace_back(pass, text);
  };
  PassManager manager(BuildCompilePassList(options), std::move(pm_options));
  ASSERT_TRUE(manager.Run(&state).ok());

  ASSERT_EQ(dumps.size(), 7u);
  EXPECT_EQ(dumps.front().first, "BuildSmg");
  EXPECT_EQ(dumps.back().first, "Estimate");
  for (const auto& [pass, text] : dumps) {
    EXPECT_FALSE(text.empty()) << pass;
  }
  // Progressive rendering: the final dump carries the chosen program.
  EXPECT_NE(dumps.back().second.find("best:"), std::string::npos);
}

TEST(PassDumpTest, SingleNameSelectsOnePass) {
  Graph g = BuildMlp(1, 16, 16, 16);
  CompileOptions options;
  CostModel cost(options.arch);
  CompilationState state = MinimalState(&g, &options);
  state.cost = &cost;

  std::vector<std::string> dumped;
  PassManagerOptions pm_options;
  pm_options.dump_after_pass = "SlicingPipeline";
  pm_options.dump_sink = [&dumped](const std::string& pass, const std::string&) {
    dumped.push_back(pass);
  };
  PassManager manager(BuildCompilePassList(options), std::move(pm_options));
  ASSERT_TRUE(manager.Run(&state).ok());
  EXPECT_EQ(dumped, (std::vector<std::string>{"SlicingPipeline"}));
}

TEST(PassDumpTest, EnvVariableFeedsDefaultOptions) {
  ASSERT_EQ(setenv("SPACEFUSION_DUMP_AFTER_PASS", "Lower,Estimate", /*overwrite=*/1), 0);
  PassManagerOptions from_env;
  EXPECT_EQ(from_env.dump_after_pass, "Lower,Estimate");
  ASSERT_EQ(unsetenv("SPACEFUSION_DUMP_AFTER_PASS"), 0);
  PassManagerOptions without_env;
  EXPECT_TRUE(without_env.dump_after_pass.empty());
}

// --- Ablation equivalence -------------------------------------------------

TEST(PassAblationTest, ExpertConfigListCompilesWithoutTuning) {
  CompileOptions options;
  options.enable_auto_scheduling = false;
  CompilerEngine engine{options};
  StatusOr<CompiledSubprogram> compiled = engine.Compile(BuildMha(4, 64, 64, 32));
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->tuning.configs_tried, 0);
  EXPECT_EQ(compiled->tuning.simulated_tuning_seconds, 0.0);
  EXPECT_FALSE(compiled->program.kernels.empty());
}

}  // namespace
}  // namespace spacefusion
