#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/tensor.h"
#include "src/tensor/tensor_ops.h"

namespace spacefusion {
namespace {

TEST(ShapeTest, VolumeAndStrides) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.volume(), 24);
  std::vector<std::int64_t> strides = s.strides();
  EXPECT_EQ(strides, (std::vector<std::int64_t>{12, 4, 1}));
  EXPECT_EQ(s.FlatIndex({1, 2, 3}), 23);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
}

TEST(ShapeTest, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.volume(), 1);
}

TEST(TensorTest, ZerosAndFull) {
  Tensor z = Tensor::Zeros({2, 2});
  EXPECT_EQ(z.at(3), 0.0f);
  Tensor f = Tensor::Full({2, 2}, 1.5f);
  EXPECT_EQ(f.at(0), 1.5f);
  EXPECT_EQ(f.bytes(), 4 * 2);  // fp16 default
  Tensor f32 = Tensor::Full({2, 2}, 1.0f, DType::kF32);
  EXPECT_EQ(f32.bytes(), 4 * 4);
}

TEST(TensorTest, RandomIsDeterministic) {
  Tensor a = Tensor::Random({16}, 7);
  Tensor b = Tensor::Random({16}, 7);
  Tensor c = Tensor::Random({16}, 8);
  EXPECT_EQ(MaxAbsDiff(a, b), 0.0f);
  EXPECT_GT(MaxAbsDiff(a, c), 0.0f);
  for (std::int64_t i = 0; i < a.volume(); ++i) {
    EXPECT_GE(a.at(i), -1.0f);
    EXPECT_LT(a.at(i), 1.0f);
  }
}

TEST(TensorTest, CopiesShareBuffersCloneDoesNot) {
  Tensor a = Tensor::Zeros({4});
  Tensor shared = a;
  Tensor cloned = a.Clone();
  a.at(0) = 9.0f;
  EXPECT_EQ(shared.at(0), 9.0f);
  EXPECT_EQ(cloned.at(0), 0.0f);
}

TEST(TensorOpsTest, MatMulSmall) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({3, 2});
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  for (int i = 0; i < 6; ++i) {
    a.at(i) = static_cast<float>(i + 1);
    b.at(i) = static_cast<float>(i + 7);
  }
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(c.at(0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(2), 139.0f);
  EXPECT_FLOAT_EQ(c.at(3), 154.0f);
}

TEST(TensorOpsTest, MatMulTransposeIdentities) {
  Tensor a = Tensor::Random({5, 7}, 1);
  Tensor b = Tensor::Random({7, 4}, 2);
  Tensor expect = MatMul(a, b);
  // (A^T)^T B
  Tensor at = Transpose(a);
  EXPECT_LT(MaxAbsDiff(MatMul(at, b, /*transpose_a=*/true, false), expect), 1e-5f);
  // A (B^T)^T
  Tensor bt = Transpose(b);
  EXPECT_LT(MaxAbsDiff(MatMul(a, bt, false, /*transpose_b=*/true), expect), 1e-5f);
}

TEST(TensorOpsTest, BatchedMatMulBroadcastsBatchDims) {
  Tensor a = Tensor::Random({3, 4, 5}, 3);
  Tensor w = Tensor::Random({5, 2}, 4);  // no batch dims: broadcast
  Tensor c = MatMul(a, w);
  EXPECT_EQ(c.shape(), Shape({3, 4, 2}));
  // Each batch must equal its own 2-D matmul.
  for (std::int64_t batch = 0; batch < 3; ++batch) {
    Tensor slice = Tensor::Zeros({4, 5});
    for (std::int64_t i = 0; i < 20; ++i) {
      slice.at(i) = a.at(batch * 20 + i);
    }
    Tensor expect = MatMul(slice, w);
    for (std::int64_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(c.at(batch * 8 + i), expect.at(i), 1e-5f);
    }
  }
}

TEST(TensorOpsTest, BroadcastShapes) {
  EXPECT_EQ(BroadcastShape(Shape({4, 1}), Shape({4, 8})), Shape({4, 8}));
  EXPECT_EQ(BroadcastShape(Shape({8}), Shape({4, 8})), Shape({4, 8}));
  EXPECT_EQ(BroadcastShape(Shape({1}), Shape({2, 3})), Shape({2, 3}));
}

TEST(TensorOpsTest, BinaryBroadcastRowStat) {
  Tensor x = Tensor::Random({3, 4}, 5);
  Tensor stat = Reduce(ReduceKind::kMax, x);
  EXPECT_EQ(stat.shape(), Shape({3, 1}));
  Tensor sub = Binary(BinaryKind::kSub, x, stat);
  Tensor row_max = Reduce(ReduceKind::kMax, sub);
  for (std::int64_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(row_max.at(r), 0.0f, 1e-6f);  // max(x - rowmax) == 0
  }
}

TEST(TensorOpsTest, ReduceKinds) {
  Tensor x = Tensor::Zeros({1, 4});
  for (int i = 0; i < 4; ++i) {
    x.at(i) = static_cast<float>(i + 1);  // 1 2 3 4
  }
  EXPECT_FLOAT_EQ(Reduce(ReduceKind::kMax, x).at(0), 4.0f);
  EXPECT_FLOAT_EQ(Reduce(ReduceKind::kSum, x).at(0), 10.0f);
  EXPECT_FLOAT_EQ(Reduce(ReduceKind::kMean, x).at(0), 2.5f);
}

TEST(TensorOpsTest, UnaryFunctions) {
  EXPECT_FLOAT_EQ(EvalUnary(UnaryKind::kRelu, -2.0f), 0.0f);
  EXPECT_FLOAT_EQ(EvalUnary(UnaryKind::kRelu, 3.0f), 3.0f);
  EXPECT_NEAR(EvalUnary(UnaryKind::kSigmoid, 0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(EvalUnary(UnaryKind::kExp, 1.0f), std::exp(1.0f), 1e-6f);
  EXPECT_NEAR(EvalUnary(UnaryKind::kRsqrt, 4.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(EvalUnary(UnaryKind::kGelu, 0.0f), 0.0f, 1e-6f);
  // GELU is asymptotically identity for large x.
  EXPECT_NEAR(EvalUnary(UnaryKind::kGelu, 10.0f), 10.0f, 1e-3f);
}

class SoftmaxPropertyTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SoftmaxPropertyTest, RowsSumToOne) {
  std::int64_t n = GetParam();
  Tensor x = Tensor::Random({7, n}, 11 + static_cast<std::uint64_t>(n));
  Tensor sm = Softmax(x);
  Tensor sums = Reduce(ReduceKind::kSum, sm);
  for (std::int64_t r = 0; r < 7; ++r) {
    EXPECT_NEAR(sums.at(r), 1.0f, 1e-5f);
  }
  for (std::int64_t i = 0; i < sm.volume(); ++i) {
    EXPECT_GE(sm.at(i), 0.0f);
  }
}

TEST_P(SoftmaxPropertyTest, InvariantToRowShift) {
  std::int64_t n = GetParam();
  Tensor x = Tensor::Random({3, n}, 13);
  Tensor shifted = Binary(BinaryKind::kAdd, x, Tensor::Full({1}, 5.0f));
  EXPECT_LT(MaxAbsDiff(Softmax(x), Softmax(shifted)), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SoftmaxPropertyTest, ::testing::Values(1, 2, 5, 16, 63, 128));

class LayerNormPropertyTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(LayerNormPropertyTest, NormalizesRows) {
  std::int64_t n = GetParam();
  Tensor x = Tensor::Random({5, n}, 17);
  Tensor out = LayerNorm(x, Tensor(), Tensor(), 1e-6f);
  Tensor mean = Reduce(ReduceKind::kMean, out);
  Tensor var = Reduce(ReduceKind::kMean, Unary(UnaryKind::kSquare, out));
  for (std::int64_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(mean.at(r), 0.0f, 1e-4f);
    if (n > 1) {
      EXPECT_NEAR(var.at(r), 1.0f, 2e-2f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LayerNormPropertyTest, ::testing::Values(8, 64, 256, 1000));

TEST(TensorOpsTest, TransposeRoundTrip) {
  Tensor x = Tensor::Random({2, 3, 5}, 19);
  EXPECT_EQ(Transpose(x).shape(), Shape({2, 5, 3}));
  EXPECT_LT(MaxAbsDiff(Transpose(Transpose(x)), x), 1e-7f);
}

TEST(TensorOpsTest, MaxRelDiffScaleAware) {
  Tensor a = Tensor::Full({2}, 1000.0f);
  Tensor b = Tensor::Full({2}, 1001.0f);
  EXPECT_LT(MaxRelDiff(a, b), 2e-3f);
  EXPECT_GT(MaxAbsDiff(a, b), 0.5f);
}

}  // namespace
}  // namespace spacefusion
