// Focused tests for the pre-processing and candidate-program machinery
// added on top of the core pipeline: connected-component splitting,
// compute-boundary splitting (Sec. 5.3 candidates), mean-reduction Simple
// Aggregate, and the baseline planners' kernel-shape rules.
#include <gtest/gtest.h>

#include "src/core/spacefusion.h"
#include "src/schedule/partitioner.h"
#include "src/support/string_util.h"

namespace spacefusion {
namespace {

// --- SplitConnectedComponents -------------------------------------------------

TEST(ComponentsTest, QkvProjSplitsIntoThreeChains) {
  Graph g = BuildQkvProj(64, 128, 128);
  std::vector<Graph> components = SplitConnectedComponents(g);
  ASSERT_EQ(components.size(), 3u);
  size_t total_ops = 0;
  for (const Graph& c : components) {
    EXPECT_TRUE(c.Validate().ok());
    EXPECT_EQ(c.OutputIds().size(), 1u);
    total_ops += c.ops().size();
  }
  EXPECT_EQ(total_ops, g.ops().size());
}

TEST(ComponentsTest, ConnectedGraphStaysWhole) {
  Graph g = BuildMha(2, 16, 32, 8);
  std::vector<Graph> components = SplitConnectedComponents(g);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].ops().size(), g.ops().size());
}

TEST(ComponentsTest, SharedInputDoesNotConnectChains) {
  // Two independent consumers of the same input are separate components.
  GraphBuilder b("two");
  TensorId x = b.Input("x", Shape({8, 8}));
  b.MarkOutput(b.Relu(x));
  b.MarkOutput(b.Exp(x));
  Graph g = b.Build();
  EXPECT_EQ(SplitConnectedComponents(g).size(), 2u);
}

TEST(ComponentsTest, CompiledComponentsRunByName) {
  Graph g = BuildQkvProj(16, 32, 32);
  Compiler compiler{CompileOptions(AmpereA100())};
  auto compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok());
  EXPECT_GE(compiled->kernels.size(), 3u);

  TensorEnv inputs = MakeGraphInputs(g, 9);
  TensorEnv reference = inputs;
  RunReference(g, &reference);
  TensorEnv outputs;
  ASSERT_TRUE(RunScheduledProgram(compiled->program, g, inputs, &outputs).ok());
  for (TensorId out : g.OutputIds()) {
    EXPECT_LT(MaxRelDiff(outputs[static_cast<size_t>(out)],
                         reference[static_cast<size_t>(out)]),
              5e-3f);
  }
}

// --- SplitAtComputeBoundaries ---------------------------------------------------

TEST(ComputeBoundaryTest, IsolatesEveryMatmul) {
  Graph g = BuildSwigluFfn(32, 64, 128);
  std::vector<Graph> pieces = SplitAtComputeBoundaries(g);
  int matmul_pieces = 0;
  size_t total_ops = 0;
  for (const Graph& piece : pieces) {
    EXPECT_TRUE(piece.Validate().ok());
    int matmuls = 0;
    for (const Op& op : piece.ops()) {
      matmuls += op.kind == OpKind::kMatMul ? 1 : 0;
    }
    EXPECT_LE(matmuls, 1);
    matmul_pieces += matmuls;
    total_ops += piece.ops().size();
  }
  EXPECT_EQ(matmul_pieces, 3);  // gate, up, down projections
  EXPECT_EQ(total_ops, g.ops().size());
}

TEST(ComputeBoundaryTest, PureMiGraphIsOnePiece) {
  Graph g = BuildLayerNormGraph(16, 32);
  EXPECT_EQ(SplitAtComputeBoundaries(g).size(), 1u);
}

TEST(ComputeBoundaryTest, TunerPrefersSplitForGiantWeights) {
  // Llama-scale FFN: fusing all three 4096x11008 GEMMs into one kernel
  // re-streams ~90MB weights per block; the split candidate must win.
  Graph g = BuildSwigluFfn(2048, 4096, 11008);
  Compiler compiler{CompileOptions(AmpereA100())};
  auto compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok());
  EXPECT_GT(compiled->kernels.size(), 1u);
  EXPECT_GE(compiled->candidate_programs, 2);
}

TEST(ComputeBoundaryTest, TunerKeepsMhaFused) {
  Graph g = BuildMha(8, 512, 512, 64);
  Compiler compiler{CompileOptions(AmpereA100())};
  auto compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->kernels.size(), 1u);  // fused candidate wins
}

// --- Mean reductions under temporal slicing --------------------------------------

TEST(MeanAggregationTest, TemporalMeanIsExact) {
  // mean over the contraction-free last axis, consumed after the loop:
  // out = relu(x) summarized per row then re-expanded.
  GraphBuilder b("mean_sa");
  TensorId x = b.Input("x", Shape({16, 128}));
  TensorId act = b.Relu(x);
  TensorId mean = b.Reduce(ReduceKind::kMean, act);
  TensorId centered = b.Sub(act, mean);
  b.MarkOutput(centered);
  Graph g = b.Build();

  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, rc);
  ASSERT_TRUE(sliced.ok());

  // Force a temporal config if one exists; the centered output streams
  // along the dim and depends on the running mean, so the plan derivation
  // must have *rejected* temporal slicing of that dim.
  for (const ScheduleConfig& c : sliced->configs) {
    EXPECT_FALSE(c.use_temporal && sliced->schedule.has_temporal &&
                 sliced->schedule.built.smg.dim(sliced->schedule.temporal.dim).extent == 128)
        << "stale streamed output admitted";
  }

  TensorEnv inputs = MakeGraphInputs(g, 4);
  TensorEnv ref = inputs;
  RunReference(g, &ref);
  sliced->schedule.ApplyConfig(sliced->configs.front());
  PlanMemory(&sliced->schedule, rc);
  TensorEnv env = inputs;
  ASSERT_TRUE(RunSchedule(sliced->schedule, &env).ok());
  TensorId out = g.OutputIds()[0];
  EXPECT_LT(MaxRelDiff(env[static_cast<size_t>(out)], ref[static_cast<size_t>(out)]), 5e-3f);
}

TEST(MeanAggregationTest, MeanFeedingReductionSinkIsExactUnderSlicing) {
  // mean -> matmul: the mean collapses the row, the matmul contracts rows;
  // slicing the matmul contraction exercises the mean's running-sum +
  // finalize-divide publication.
  GraphBuilder b("mean_chain");
  TensorId x = b.Input("x", Shape({64, 96}));
  TensorId mean = b.Reduce(ReduceKind::kMean, x);        // [64, 1]
  TensorId w = b.Weight("w", Shape({64, 32}));
  b.MarkOutput(b.MatMul(mean, w, /*transpose_a=*/true));  // [1, 32]
  Graph g = b.Build();
  ASSERT_TRUE(g.Validate().ok());

  Compiler compiler{CompileOptions(AmpereA100())};
  auto compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  TensorEnv inputs = MakeGraphInputs(g, 6);
  TensorEnv ref = inputs;
  RunReference(g, &ref);
  TensorEnv outputs;
  ASSERT_TRUE(RunScheduledProgram(compiled->program, g, inputs, &outputs).ok());
  TensorId out = g.OutputIds()[0];
  EXPECT_LT(MaxRelDiff(outputs[static_cast<size_t>(out)], ref[static_cast<size_t>(out)]), 5e-3f);
}

// --- Baseline planner details ------------------------------------------------------

TEST(UnfusedPlannerTest, SoftmaxCollapsesToOneKernel) {
  GraphBuilder b("sm");
  TensorId x = b.Input("x", Shape({32, 64}));
  b.MarkOutput(b.Softmax(x));
  Graph g = b.Build();
  AddressMap am;
  auto kernels = PlanUnfused(g, &am, 0.8, /*fuse_softmax=*/true);
  EXPECT_EQ(kernels.size(), 1u);
  AddressMap am2;
  auto raw = PlanUnfused(g, &am2, 0.8, /*fuse_softmax=*/false);
  EXPECT_EQ(raw.size(), 5u);
}

TEST(UnfusedPlannerTest, ScaleAfterMatmulFoldsIntoAlpha) {
  Graph g = BuildMha(4, 64, 64, 16);
  AddressMap am;
  auto kernels = PlanUnfused(g, &am, 0.8);
  // qk gemm (scale folded) + softmax + pv gemm = 3 kernels.
  EXPECT_EQ(kernels.size(), 3u);
}

TEST(SharedBroadcastTest, RowStatsPartitionBiasShares) {
  EXPECT_FALSE(IsSharedBroadcastOperand(Shape({64, 1}), Shape({64, 128})));
  EXPECT_TRUE(IsSharedBroadcastOperand(Shape({128}), Shape({64, 128})));
  EXPECT_TRUE(IsSharedBroadcastOperand(Shape({1, 128}), Shape({64, 128})));
  EXPECT_FALSE(IsSharedBroadcastOperand(Shape({64, 128}), Shape({64, 128})));
}

TEST(GemmKernelTest, SkinnyProblemsShrinkTilesForOccupancy) {
  AddressMap am;
  KernelSpec skinny = MakeGemmKernel("s", 1, 256, 1024, 1024, 2, &am, "a", "b", "c");
  EXPECT_GE(skinny.grid, 64);
  AddressMap am2;
  KernelSpec fat = MakeGemmKernel("f", 1, 8192, 8192, 1024, 2, &am2, "a", "b", "c");
  EXPECT_GE(fat.grid, 4096);
}

}  // namespace
}  // namespace spacefusion
