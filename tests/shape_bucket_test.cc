// The dynamic-shape battery: bucketing policy and label parsing, per-tensor
// pad/slice layouts, the bucket-tagged cache keys (options digest and .sfpc
// blobs), the runtime dispatch table, and the two acceptance pins of the
// shape-bucket design — a new shape falling into an already-tuned bucket is
// served with zero tuner invocations, and config transfer from a neighboring
// bucket measurably cuts a cold bucket's tuning time. The differential suite
// at the bottom asserts bucket-dispatched execution against a direct compile
// at the exact shape for every zoo model, several shapes per bucket, under
// serial and parallel tuning alike.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/core/program_store.h"
#include "src/core/shape_dispatch.h"
#include "src/exec/jit_executor.h"
#include "src/exec/reference_executor.h"
#include "src/exec/schedule_executor.h"
#include "src/graph/models.h"
#include "src/graph/shape_bucket.h"
#include "src/graph/subgraphs.h"
#include "src/obs/metrics.h"
#include "src/obs/stats.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/sim/arch.h"
#include "src/support/thread_pool.h"

namespace spacefusion {
namespace {

// Sets (or unsets, for nullptr) an environment variable for one scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) {
      saved_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

std::string UniqueTestDir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = ::testing::TempDir() + "sf-shape-bucket-" +
                          std::to_string(::getpid()) + "-" + tag + "-" +
                          std::to_string(counter++);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ProgramFingerprint(const CompiledSubprogram& sub) {
  std::string fp;
  for (const SmgSchedule& kernel : sub.program.kernels) {
    fp += kernel.ToString();
  }
  return fp;
}

// ---- ShapeKey / labels ----------------------------------------------------

TEST(ShapeKeyTest, LabelRoundTrips) {
  const ShapeKey key{4, 384};
  EXPECT_EQ(key.Label(), "b4s384");
  StatusOr<ShapeKey> parsed = ParseShapeLabel("b4s384");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, key);
}

TEST(ShapeKeyTest, ParseRejectsMalformedLabels) {
  for (const char* bad : {"", "b2", "s128", "2s128", "b2s", "bXs8", "b2s8x", "b0s8", "b2s0",
                          "b-1s8", "b2s-8"}) {
    EXPECT_FALSE(ParseShapeLabel(bad).ok()) << bad;
  }
}

TEST(ShapeKeyTest, RoundUpPow2) {
  EXPECT_EQ(RoundUpPow2(1), 1);
  EXPECT_EQ(RoundUpPow2(2), 2);
  EXPECT_EQ(RoundUpPow2(3), 4);
  EXPECT_EQ(RoundUpPow2(100), 128);
  EXPECT_EQ(RoundUpPow2(128), 128);
  EXPECT_EQ(RoundUpPow2(129), 256);
}

// ---- BucketingPolicy ------------------------------------------------------

TEST(BucketingPolicyTest, PowersOfTwoRoundsBothAxesUp) {
  const BucketingPolicy policy = BucketingPolicy::PowersOfTwo();
  EXPECT_EQ(policy.BucketFor({3, 100}), (ShapeKey{4, 128}));
  EXPECT_EQ(policy.BucketFor({1, 128}), (ShapeKey{1, 128}));
  EXPECT_EQ(policy.BucketFor({1, 129}), (ShapeKey{1, 256}));
  EXPECT_FALSE(policy.is_identity());
}

TEST(BucketingPolicyTest, IdentityMapsEveryShapeToItself) {
  const BucketingPolicy policy = BucketingPolicy::Identity();
  EXPECT_EQ(policy.BucketFor({3, 100}), (ShapeKey{3, 100}));
  EXPECT_TRUE(policy.is_identity());
}

TEST(BucketingPolicyTest, FromSpecRoutesSeqAxisThroughExplicitBuckets) {
  StatusOr<BucketingPolicy> policy = BucketingPolicy::FromSpec("32,48,128");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy->BucketFor({1, 33}), (ShapeKey{1, 48}));
  EXPECT_EQ(policy->BucketFor({1, 48}), (ShapeKey{1, 48}));
  EXPECT_EQ(policy->BucketFor({1, 128}), (ShapeKey{1, 128}));
  // Above the largest listed bucket: power-of-two fallback.
  EXPECT_EQ(policy->BucketFor({1, 200}), (ShapeKey{1, 256}));
  // The batch axis always rounds to powers of two.
  EXPECT_EQ(policy->BucketFor({3, 40}), (ShapeKey{4, 48}));
}

TEST(BucketingPolicyTest, FromSpecRejectsMalformedSpecs) {
  for (const char* bad : {"", "abc", "48,32", "32,,64", "0,32", "-8,16"}) {
    EXPECT_FALSE(BucketingPolicy::FromSpec(bad).ok()) << bad;
  }
}

TEST(BucketingPolicyTest, FromEnvHonorsOverrideAndFallsBack) {
  {
    ScopedEnv env("SPACEFUSION_SHAPE_BUCKETS", "48,96");
    EXPECT_EQ(BucketingPolicy::FromEnv().BucketFor({1, 50}), (ShapeKey{1, 96}));
  }
  {
    // An invalid spec must not fail compiles: power-of-two fallback.
    ScopedEnv env("SPACEFUSION_SHAPE_BUCKETS", "not-a-spec");
    EXPECT_EQ(BucketingPolicy::FromEnv().BucketFor({1, 50}), (ShapeKey{1, 64}));
  }
  {
    ScopedEnv env("SPACEFUSION_SHAPE_BUCKETS", nullptr);
    EXPECT_EQ(BucketingPolicy::FromEnv().BucketFor({1, 50}), (ShapeKey{1, 64}));
  }
}

TEST(BucketingPolicyTest, BucketDistanceIsLog2L1) {
  EXPECT_EQ(BucketDistance({1, 128}, {1, 128}), 0.0);
  EXPECT_EQ(BucketDistance({1, 128}, {1, 256}), 1.0);
  EXPECT_EQ(BucketDistance({1, 256}, {1, 128}), 1.0);
  EXPECT_EQ(BucketDistance({2, 128}, {1, 256}), 2.0);
  // The nearest neighbor of b1s256 among {b1s128, b1s1024} is b1s128.
  EXPECT_LT(BucketDistance({1, 256}, {1, 128}), BucketDistance({1, 256}, {1, 1024}));
}

// ---- Pad / slice layouts --------------------------------------------------

TEST(PadSliceTest, TokensByHiddenRoundTripsLosslessly) {
  TensorLayout layout;
  layout.name = "x";
  layout.dims = {{SubDim{DimAxis::kBatch, 1}, SubDim{DimAxis::kSeq, 1}},
                 {SubDim{DimAxis::kFixed, 8}}};
  const AxisExtents exact{2, 5};
  const AxisExtents bucket{2, 8};
  EXPECT_EQ(LayoutShape(layout, exact), (Shape{10, 8}));
  EXPECT_EQ(LayoutShape(layout, bucket), (Shape{16, 8}));

  const Tensor t = Tensor::Random(LayoutShape(layout, exact), /*seed=*/11);
  StatusOr<Tensor> padded = PadToBucket(layout, t, exact, bucket);
  ASSERT_TRUE(padded.ok()) << padded.status().ToString();
  EXPECT_EQ(padded->shape(), LayoutShape(layout, bucket));
  // Padded rows (seq 5..7 of each batch) are zero-filled.
  EXPECT_EQ(padded->at({5, 0}), 0.0f);
  EXPECT_EQ(padded->at({8 + 6, 3}), 0.0f);
  // The real region survives: row (b=1, s=2) moved from flat row 7 to 10.
  EXPECT_EQ(padded->at({10, 4}), t.at({7, 4}));

  StatusOr<Tensor> back = SliceToExact(layout, *padded, exact, bucket);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->shape(), t.shape());
  EXPECT_EQ(MaxAbsDiff(*back, t), 0.0f);
}

TEST(PadSliceTest, AttentionMaskPadsKvColumnsWithMaskValue) {
  TensorLayout mask;
  mask.name = "mask";
  mask.dims = {{SubDim{DimAxis::kBatch, 1}, SubDim{DimAxis::kFixed, 2}},
               {SubDim{DimAxis::kSeq, 1}},
               {SubDim{DimAxis::kSeq, 1}}};
  mask.attn_mask = true;
  const AxisExtents exact{1, 3};
  const AxisExtents bucket{1, 4};
  const Tensor t = Tensor::Zeros(LayoutShape(mask, exact));
  StatusOr<Tensor> padded = PadToBucket(mask, t, exact, bucket);
  ASSERT_TRUE(padded.ok()) << padded.status().ToString();
  for (std::int64_t h = 0; h < 2; ++h) {
    for (std::int64_t q = 0; q < 4; ++q) {
      for (std::int64_t kv = 0; kv < 4; ++kv) {
        const float v = padded->at({h, q, kv});
        if (kv >= 3) {
          // Padded key/value columns are masked out hard, so the padded
          // softmax region underflows to exactly zero.
          EXPECT_EQ(v, kMaskPadValue) << h << "," << q << "," << kv;
        } else {
          // Real columns stay 0 even in padded query rows — a fully padded
          // row must remain NaN-free through softmax.
          EXPECT_EQ(v, 0.0f) << h << "," << q << "," << kv;
        }
      }
    }
  }
}

// ---- Bucket-tagged cache keys ---------------------------------------------

TEST(ShapeBucketKeyTest, OptionsDigestMixesTheBucket) {
  CompileOptions plain{AmpereA100()};
  CompileOptions bucketed = plain;
  bucketed.shape_bucket = "b1s128";
  CompileOptions other = plain;
  other.shape_bucket = "b1s256";
  EXPECT_NE(CompileOptionsDigest(plain), CompileOptionsDigest(bucketed));
  EXPECT_NE(CompileOptionsDigest(bucketed), CompileOptionsDigest(other));
  // Shape-agnostic compiles keep the legacy digest.
  EXPECT_EQ(CompileOptionsDigest(plain), CompileOptionsDigest(CompileOptions{AmpereA100()}));
}

TEST(ShapeBucketKeyTest, PersistentEntriesGoStaleAcrossBuckets) {
  const Graph g = BuildMha(2, 16, 16, 8);
  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok());

  const PersistentProgramCache cache(UniqueTestDir("sfpc"));
  const std::uint64_t fp = g.StructuralHash();
  const std::uint64_t digest = CompileOptionsDigest(compiler.options());
  const std::string arch = compiler.options().arch.name;
  const std::string canonical = g.CanonicalForm();
  ASSERT_TRUE(cache.Store(fp, digest, arch, canonical, *compiled, "b1s128").ok());

  CompiledSubprogram out;
  std::string detail;
  EXPECT_EQ(cache.Load(fp, digest, arch, canonical, &out, &detail, "b1s128"),
            PersistentProgramCache::LoadResult::kHit);
  // A shape-agnostic request must not be served a bucketed entry, nor a
  // bucketed request an entry from another bucket.
  EXPECT_EQ(cache.Load(fp, digest, arch, canonical, &out, &detail, ""),
            PersistentProgramCache::LoadResult::kStale);
  EXPECT_NE(detail.find("bucket"), std::string::npos) << detail;
  EXPECT_EQ(cache.Load(fp, digest, arch, canonical, &out, &detail, "b1s256"),
            PersistentProgramCache::LoadResult::kStale);
}

TEST(ShapeBucketKeyTest, PersistedProgramRoundTripsItsBucket) {
  const Graph g = BuildMha(2, 16, 16, 8);
  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok());

  PersistedProgram program;
  program.arch = "A100";
  program.options_digest = 7;
  program.fingerprint = 9;
  program.canonical = g.CanonicalForm();
  program.bucket = "b2s64";
  program.compiled = *compiled;
  PersistedProgram decoded;
  ASSERT_TRUE(DecodePersistedProgram(EncodePersistedProgram(program), &decoded).ok());
  EXPECT_EQ(decoded.bucket, "b2s64");
}

// ---- Bucketed model factory -----------------------------------------------

TEST(BucketedFactoryTest, SameBucketShapesBuildIdenticalGraphs) {
  const BucketingPolicy pow2 = BucketingPolicy::PowersOfTwo();
  for (ModelKind kind : AllModelKinds()) {
    const BucketedModel a = BuildModelBucketed(kind, {1, 20}, pow2);
    const BucketedModel b = BuildModelBucketed(kind, {1, 31}, pow2);
    EXPECT_EQ(a.bucket_key, b.bucket_key) << a.exact.name;
    ASSERT_EQ(a.model.subprograms.size(), b.model.subprograms.size()) << a.exact.name;
    for (size_t i = 0; i < a.model.subprograms.size(); ++i) {
      // Structural identity is what turns a second shape in a tuned bucket
      // into a pure cache hit.
      EXPECT_EQ(a.model.subprograms[i].graph.StructuralHash(),
                b.model.subprograms[i].graph.StructuralHash())
          << a.exact.name << " subprogram " << i;
    }
  }
}

TEST(BucketedFactoryTest, LayoutsParallelTheGraphInputsAndOutputs) {
  for (ModelKind kind : AllModelKinds()) {
    const BucketedModel m = BuildModelBucketed(kind, {1, 20}, BucketingPolicy::PowersOfTwo());
    ASSERT_EQ(m.layouts.size(), m.model.subprograms.size()) << m.exact.name;
    for (size_t i = 0; i < m.layouts.size(); ++i) {
      const Graph& g = m.model.subprograms[i].graph;
      EXPECT_EQ(m.layouts[i].inputs.size(), g.InputIds().size())
          << m.exact.name << "/" << g.name();
      EXPECT_EQ(m.layouts[i].outputs.size(), g.OutputIds().size())
          << m.exact.name << "/" << g.name();
      // Every input layout resolves to the declared tensor shape at the
      // bucket extents (the padding contract is per-dim exact).
      const std::vector<TensorId> inputs = g.InputIds();
      for (size_t j = 0; j < inputs.size(); ++j) {
        EXPECT_EQ(LayoutShape(m.layouts[i].inputs[j], m.BucketExtents()),
                  g.tensor(inputs[j]).shape)
            << m.exact.name << "/" << g.name() << " input " << j;
      }
    }
  }
}

TEST(BucketedFactoryTest, IdentityPolicyBuildsAtTheExactShape) {
  const BucketedModel m =
      BuildModelBucketed(ModelKind::kBert, {2, 33}, BucketingPolicy::Identity());
  EXPECT_EQ(m.bucket_key, (ShapeKey{2, 33}));
  EXPECT_EQ(m.exact.batch, m.bucket.batch);
  EXPECT_EQ(m.exact.seq, m.bucket.seq);
}

// ---- Engine: zero-tuner bucket hits and config transfer -------------------

TEST(ShapeBucketEngineTest, SecondShapeInBucketIsServedWithZeroTunerInvocations) {
  ScopedEnv env("SPACEFUSION_SHAPE_BUCKETS", nullptr);
  MetricsRegistry::Global().Reset();
  CompilerEngine engine{CompileOptions(AmpereA100())};

  StatusOr<ShapeCompileResult> cold = engine.CompileModelForShape(ModelKind::kBert, {1, 100});
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->bucketed.bucket_key.Label(), "b1s128");
  EXPECT_FALSE(cold->bucket_hit);
  EXPECT_EQ(cold->compiled.report.outcome, "cold");
  EXPECT_EQ(cold->compiled.report.shape, "b1s100");
  EXPECT_EQ(cold->compiled.report.bucket, "b1s128");
  EXPECT_GT(cold->compiled.compile_time.tuning_s, 0.0);
  EXPECT_EQ(engine.cache_stats().bucket_misses, 1);

  // The acceptance pin: a shape never compiled before, falling into an
  // already-tuned bucket, runs zero tuner invocations.
  StatusOr<ShapeCompileResult> warm = engine.CompileModelForShape(ModelKind::kBert, {1, 120});
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->bucket_hit);
  EXPECT_EQ(warm->compiled.report.outcome, "cache_hit");
  EXPECT_EQ(warm->compiled.report.shape, "b1s120");
  EXPECT_EQ(warm->compiled.report.bucket, "b1s128");
  EXPECT_TRUE(warm->compiled.report.bucket_hit);
  // compile_time reports the *stored* tuning cost of the served programs
  // (the warm-start contract: hits answer "what did these programs cost"),
  // so zero tuner work shows as zero Tune-pass wall time, not zero tuning_s.
  EXPECT_EQ(warm->compiled.compile_time.tuning_s, cold->compiled.compile_time.tuning_s);
  EXPECT_EQ(warm->compiled.report.PassWallMs("Tune"), 0.0);
  EXPECT_EQ(warm->transfer_seeded, 0);
  EXPECT_EQ(engine.cache_stats().bucket_hits, 1);

  // Both shapes execute the same programs, bit for bit.
  ASSERT_EQ(cold->compiled.unique_subprograms.size(), warm->compiled.unique_subprograms.size());
  for (size_t i = 0; i < cold->compiled.unique_subprograms.size(); ++i) {
    EXPECT_EQ(ProgramFingerprint(cold->compiled.unique_subprograms[i]),
              ProgramFingerprint(warm->compiled.unique_subprograms[i]));
  }
}

TEST(ShapeBucketEngineTest, TransferFromNeighborBucketCutsTuningTime) {
  ScopedEnv env("SPACEFUSION_SHAPE_BUCKETS", nullptr);
  CompilerEngine seeded{CompileOptions(AmpereA100())};
  StatusOr<ShapeCompileResult> first = seeded.CompileModelForShape(ModelKind::kBert, {1, 128});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->transfer_seeded, 0);  // nothing to transfer from yet

  StatusOr<ShapeCompileResult> neighbor = seeded.CompileModelForShape(ModelKind::kBert, {1, 200});
  ASSERT_TRUE(neighbor.ok());
  EXPECT_EQ(neighbor->bucketed.bucket_key.Label(), "b1s256");
  EXPECT_FALSE(neighbor->bucket_hit);
  EXPECT_GT(neighbor->transfer_seeded, 0);
  EXPECT_GT(neighbor->compiled.report.transfer_seeded, 0);
  EXPECT_EQ(seeded.cache_stats().transfer_seeded, neighbor->transfer_seeded);

  // The same bucket compiled cold on a fresh engine, without the b1s128
  // prior: no seeding, and strictly more simulated tuning time — the
  // neighbor's best config established a near-optimal incumbent early, so
  // more of the sweep early-quit.
  CompilerEngine fresh{CompileOptions(AmpereA100())};
  StatusOr<ShapeCompileResult> unseeded = fresh.CompileModelForShape(ModelKind::kBert, {1, 200});
  ASSERT_TRUE(unseeded.ok());
  EXPECT_EQ(unseeded->transfer_seeded, 0);
  EXPECT_LT(neighbor->compiled.compile_time.tuning_s, unseeded->compiled.compile_time.tuning_s);

  // Transfer reorders only *when* configs are measured, never what wins:
  // both engines must choose identical schedules.
  ASSERT_EQ(neighbor->compiled.unique_subprograms.size(),
            unseeded->compiled.unique_subprograms.size());
  for (size_t i = 0; i < neighbor->compiled.unique_subprograms.size(); ++i) {
    EXPECT_EQ(ProgramFingerprint(neighbor->compiled.unique_subprograms[i]),
              ProgramFingerprint(unseeded->compiled.unique_subprograms[i]));
  }
}

TEST(ShapeBucketEngineTest, RestartedEngineServesBucketFromDisk) {
  ScopedEnv env("SPACEFUSION_SHAPE_BUCKETS", nullptr);
  const std::string dir = UniqueTestDir("restart");
  EngineOptions options{CompileOptions(AmpereA100())};
  options.cache_dir = dir;
  std::string cold_fp;
  {
    CompilerEngine engine(options);
    StatusOr<ShapeCompileResult> cold = engine.CompileModelForShape(ModelKind::kT5, {1, 60});
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_EQ(cold->compiled.report.outcome, "cold");
    for (const CompiledSubprogram& sub : cold->compiled.unique_subprograms) {
      cold_fp += ProgramFingerprint(sub);
    }
  }
  // A restarted daemon: new engine, same cache dir, a different shape in the
  // same bucket — served from disk with zero tuner invocations.
  CompilerEngine engine(options);
  StatusOr<ShapeCompileResult> warm = engine.CompileModelForShape(ModelKind::kT5, {1, 50});
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->compiled.report.outcome, "persistent_hit");
  EXPECT_TRUE(warm->bucket_hit);
  EXPECT_EQ(warm->compiled.report.PassWallMs("Tune"), 0.0);
  EXPECT_EQ(engine.cache_stats().bucket_hits, 1);
  std::string warm_fp;
  for (const CompiledSubprogram& sub : warm->compiled.unique_subprograms) {
    warm_fp += ProgramFingerprint(sub);
  }
  EXPECT_EQ(warm_fp, cold_fp);
}

// ---- Dispatch table -------------------------------------------------------

TEST(ShapeDispatchTableTest, RoutesShapesToTheirBucketEntry) {
  ScopedEnv env("SPACEFUSION_SHAPE_BUCKETS", nullptr);
  CompilerEngine engine{CompileOptions(AmpereA100())};
  StatusOr<ShapeCompileResult> compiled = engine.CompileModelForShape(ModelKind::kBert, {1, 20});
  ASSERT_TRUE(compiled.ok());

  ShapeDispatchTable table(BucketingPolicy::PowersOfTwo());
  EXPECT_EQ(table.Route({1, 20}), nullptr);
  ASSERT_TRUE(table.Add(std::move(compiled).value()).ok());
  const ShapeDispatchTable::Entry* entry = table.Route({1, 20});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->result.bucketed.bucket_key.Label(), "b1s32");
  // Every shape in the bucket routes to the same entry; a shape outside
  // does not.
  EXPECT_EQ(table.Route({1, 31}), entry);
  EXPECT_EQ(table.EntryFor({1, 32}), entry);
  EXPECT_EQ(table.Route({1, 33}), nullptr);
  EXPECT_EQ(table.Route({2, 20}), nullptr);
  EXPECT_EQ(table.Buckets(), std::vector<std::string>{"b1s32"});
  // The dedupe replay aligns every subprogram with a compiled program.
  ASSERT_EQ(entry->sub_to_unique.size(), entry->result.bucketed.model.subprograms.size());
  for (size_t unique : entry->sub_to_unique) {
    EXPECT_LT(unique, entry->result.compiled.unique_subprograms.size());
  }
}

// ---- Serve protocol: shape fields and SFV0701 -----------------------------

TEST(ServeShapeProtocolTest, ShapeLabelParsesIntoBatchAndSeq) {
  StatusOr<ServeRequest> request =
      ServeRequestFromJson(R"({"id":"r","model":"bert","shape":"b2s96"})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->batch, 2);
  EXPECT_EQ(request->seq, 96);
}

TEST(ServeShapeProtocolTest, MalformedShapeFieldsAreSfv0701) {
  const std::vector<std::string> bad = {
      R"({"id":"r","model":"bert","seq":"abc"})",           // not a number
      R"({"id":"r","model":"bert","seq":2.5})",             // not integral
      R"({"id":"r","model":"bert","seq":0})",               // not positive
      R"({"id":"r","model":"bert","batch":-1})",            // not positive
      R"({"id":"r","model":"bert","shape":"nonsense"})",    // malformed label
      R"({"id":"r","model":"bert","shape":5})",             // label not a string
      R"({"id":"r","model":"bert","shape":"b1s64","seq":64})",  // ambiguous
  };
  for (const std::string& line : bad) {
    StatusOr<ServeRequest> request = ServeRequestFromJson(line);
    ASSERT_FALSE(request.ok()) << line;
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument) << line;
    EXPECT_NE(request.status().ToString().find("SFV0701"), std::string::npos)
        << request.status().ToString();
  }
}

TEST(ServeShapeProtocolTest, ResponseRoundTripsBucketFields) {
  ServeResponse response;
  response.id = "r";
  response.outcome = "cache_hit";
  response.shape = "b1s100";
  response.bucket = "b1s128";
  response.bucket_hit = true;
  response.transfer_seeded = 3;
  StatusOr<ServeResponse> parsed = ServeResponseFromJson(ServeResponseToJson(response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->shape, "b1s100");
  EXPECT_EQ(parsed->bucket, "b1s128");
  EXPECT_TRUE(parsed->bucket_hit);
  EXPECT_EQ(parsed->transfer_seeded, 3);

  // Pre-bucket responses parse with the fields defaulted, not rejected.
  StatusOr<ServeResponse> legacy = ServeResponseFromJson(R"({"id":"r","status":"ok"})");
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->bucket, "");
  EXPECT_FALSE(legacy->bucket_hit);
  EXPECT_EQ(legacy->transfer_seeded, 0);
}

// ---- Serve: bucket-level coalescing and bucket hits -----------------------

ServeRequest ShapeRequest(const std::string& id, const std::string& model, std::int64_t batch,
                          std::int64_t seq) {
  ServeRequest request;
  request.id = id;
  request.client = "test";
  request.model = model;
  request.batch = batch;
  request.seq = seq;
  return request;
}

TEST(ServeShapeTest, SameBucketRequestsCoalesceOntoOneCompile) {
  ScopedEnv env("SPACEFUSION_SHAPE_BUCKETS", nullptr);
  ServeServerOptions options;
  options.cache_dir.clear();
  options.start_paused = true;
  ServeServer server(options);

  std::future<ServeResponse> a = server.Submit(ShapeRequest("a", "bert", 1, 100));
  std::future<ServeResponse> b = server.Submit(ShapeRequest("b", "bert", 1, 120));
  std::future<ServeResponse> c = server.Submit(ShapeRequest("c", "bert", 1, 200));
  server.Resume();
  const ServeResponse ra = a.get();
  const ServeResponse rb = b.get();
  const ServeResponse rc = c.get();
  ASSERT_TRUE(ra.ok()) << ra.error;
  ASSERT_TRUE(rb.ok()) << rb.error;
  ASSERT_TRUE(rc.ok()) << rc.error;

  // Distinct exact shapes, one bucket, one compile.
  EXPECT_EQ(ra.shape, "b1s100");
  EXPECT_EQ(rb.shape, "b1s120");
  EXPECT_EQ(ra.bucket, "b1s128");
  EXPECT_EQ(rb.bucket, "b1s128");
  EXPECT_TRUE(rb.coalesced);
  EXPECT_FALSE(ra.coalesced);
  EXPECT_EQ(ra.estimate.time_us, rb.estimate.time_us);
  // A different bucket is its own job.
  EXPECT_EQ(rc.bucket, "b1s256");
  EXPECT_FALSE(rc.coalesced);
  EXPECT_EQ(server.stats().coalesced, 1);

  // A later shape in the tuned bucket: bucket hit, zero tuner invocations.
  const ServeResponse rd = server.Handle(ShapeRequest("d", "bert", 1, 97));
  ASSERT_TRUE(rd.ok()) << rd.error;
  EXPECT_TRUE(rd.bucket_hit);
  EXPECT_EQ(rd.outcome, "cache_hit");
  // Hits report the bucket's stored tuning cost, bit for bit.
  EXPECT_EQ(rd.tuning_seconds, ra.tuning_seconds);
}

TEST(ServeShapeTest, NeighborBucketIsTransferSeeded) {
  ScopedEnv env("SPACEFUSION_SHAPE_BUCKETS", nullptr);
  ServeServerOptions options;
  options.cache_dir.clear();
  ServeServer server(options);
  const ServeResponse first = server.Handle(ShapeRequest("r1", "bert", 1, 128));
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_EQ(first.transfer_seeded, 0);
  const ServeResponse second = server.Handle(ShapeRequest("r2", "bert", 1, 200));
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_FALSE(second.bucket_hit);
  EXPECT_GT(second.transfer_seeded, 0);
}

// ---- sf-stats: bucket series ----------------------------------------------

TEST(ShapeBucketStatsTest, ReportDirGrowsDiffableBucketSeries) {
  const std::string dir = UniqueTestDir("stats");
  CompileReport report;
  report.request_id = "q1";
  report.model = "bert";
  report.outcome = "cache_hit";
  report.shape = "b1s100";
  report.bucket = "b1s128";
  report.bucket_hit = true;
  report.transfer_seeded = 3;
  {
    std::ofstream out(dir + "/q1.report.json");
    out << report.ToJson() << "\n";
  }
  StatusOr<RunStats> run = LoadReportDirStats(dir);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->series.at("bert/q1/bucket/hits"), 1.0);
  EXPECT_EQ(run->series.at("bert/q1/bucket/misses"), 0.0);
  EXPECT_EQ(run->series.at("bert/q1/bucket/transfer_seeded"), 3.0);
  // Routing counters are deterministic, so --diff must compare them...
  EXPECT_FALSE(IsWallClockKey("bert/q1/bucket/hits"));
  // ...while the measured fused/unfused ratio is wall-clock and excluded.
  EXPECT_TRUE(IsWallClockKey("bert/q1/wall/measured_speedup"));
  const std::string summary = RenderSummary(*run, /*top_n=*/3);
  EXPECT_NE(summary.find("shape buckets: 1 bucketed report(s), 1 bucket hit(s)"),
            std::string::npos)
      << summary;
}

// ---- Differential suite: dispatch vs exact compile ------------------------

// Unique subprograms of `m` by structural hash, as (index, graph) pairs.
std::vector<size_t> UniqueSubprogramIndices(const BucketedModel& m) {
  std::set<std::uint64_t> seen;
  std::vector<size_t> out;
  for (size_t i = 0; i < m.model.subprograms.size(); ++i) {
    if (seen.insert(m.model.subprograms[i].graph.StructuralHash()).second) {
      out.push_back(i);
    }
  }
  return out;
}

class ShapeDispatchDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { ResetGlobalThreadPool(); }
};

TEST_P(ShapeDispatchDifferentialTest, DispatchMatchesExactCompileOnEveryZooModel) {
  const int jobs = GetParam();
  ResetGlobalThreadPool(jobs);
  ScopedEnv env("SPACEFUSION_SHAPE_BUCKETS", nullptr);
  CompilerEngine engine{CompileOptions(AmpereA100())};

  for (ModelKind kind : AllModelKinds()) {
    // Three shapes per bucket under serial tuning; the parallel leg re-checks
    // one shape per model (the compile itself is pinned job-count-invariant
    // by determinism_test and the fingerprint checks above). The sequence
    // lengths are deliberately tiny: padding 3 -> 4 runs the exact same
    // embed/slice/mask-fill code paths as 20 -> 32, and Llama2's
    // 4096x11008 matmuls on the interpreter price every extra token. ViT's
    // `seq` is the image side, which needs >= 16 for a patch grid.
    const bool vit = kind == ModelKind::kViT;
    const std::vector<std::int64_t> seqs =
        jobs == 1 ? (vit ? std::vector<std::int64_t>{20, 24, 32}
                         : std::vector<std::int64_t>{2, 3, 4})
                  : (vit ? std::vector<std::int64_t>{24} : std::vector<std::int64_t>{3});
    ShapeDispatchTable table(BucketingPolicy::PowersOfTwo());
    Compiler exact_compiler{CompileOptions(AmpereA100())};
    for (std::int64_t seq : seqs) {
      const ShapeKey shape{1, seq};
      if (table.Route(shape) == nullptr) {
        StatusOr<ShapeCompileResult> compiled = engine.CompileModelForShape(kind, shape);
        ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
        ASSERT_TRUE(table.Add(std::move(compiled).value()).ok());
      }
      const ShapeDispatchTable::Entry* entry = table.Route(shape);
      ASSERT_NE(entry, nullptr);
      const BucketedModel exact = BuildModelBucketed(kind, shape, BucketingPolicy::Identity());
      const bool at_bucket_boundary = exact.bucket_key == entry->result.bucketed.bucket_key;
      for (size_t i : UniqueSubprogramIndices(exact)) {
        const Graph& g = exact.model.subprograms[i].graph;
        const TensorEnv inputs = MakeGraphInputs(g, /*seed=*/static_cast<std::uint64_t>(seq) *
                                                                 131 +
                                                             i);
        // The op-by-op reference executor is the slowest path in the repo;
        // on Llama2 it would dominate the suite, and scheduled-vs-reference
        // parity is already pinned by differential_test. The direct exact
        // compile below is the ground truth dispatch is checked against.
        const bool check_reference = kind != ModelKind::kLlama2;
        TensorEnv reference = inputs;
        if (check_reference) {
          RunReference(g, &reference);
        }

        // The direct compile at the exact shape: the ground truth dispatch
        // is checked against.
        StatusOr<CompiledSubprogram> direct = exact_compiler.Compile(g);
        ASSERT_TRUE(direct.ok()) << direct.status().ToString();
        TensorEnv direct_out;
        ASSERT_TRUE(RunScheduledProgram(direct->program, g, inputs, &direct_out).ok());

        TensorEnv dispatched;
        const Status st = RunBucketedSubprogram(*entry, i, exact, inputs, &dispatched);
        ASSERT_TRUE(st.ok()) << ModelKindName(kind) << "/" << g.name() << " seq=" << seq << ": "
                             << st.ToString();
        for (TensorId out : g.OutputIds()) {
          const size_t id = static_cast<size_t>(out);
          const std::string where = std::string(ModelKindName(kind)) + "/" + g.name() +
                                    " seq=" + std::to_string(seq) + " jobs=" +
                                    std::to_string(jobs);
          EXPECT_LT(MaxRelDiff(dispatched[id], direct_out[id]), 1e-2f) << where;
          if (check_reference) {
            EXPECT_LT(MaxRelDiff(dispatched[id], reference[id]), 1e-2f) << where;
          }
          if (at_bucket_boundary) {
            // At the bucket extent the padding is a no-op and the programs
            // are structurally identical: dispatch must be bit-exact.
            EXPECT_EQ(MaxAbsDiff(dispatched[id], direct_out[id]), 0.0f) << where;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Jobs, ShapeDispatchDifferentialTest, ::testing::Values(1, 8));

TEST(ShapeDispatchJitTest, JitDispatchMatchesInterpreterDispatch) {
  ScopedEnv env("SPACEFUSION_SHAPE_BUCKETS", nullptr);
  CompilerEngine engine{CompileOptions(AmpereA100())};
  StatusOr<ShapeCompileResult> compiled = engine.CompileModelForShape(ModelKind::kBert, {1, 20});
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ShapeDispatchTable table(BucketingPolicy::PowersOfTwo());
  ASSERT_TRUE(table.Add(std::move(compiled).value()).ok());
  const ShapeDispatchTable::Entry* entry = table.Route({1, 20});
  ASSERT_NE(entry, nullptr);

  JitExecutorOptions jit_options;
  jit_options.cache.dir = UniqueTestDir("jit");
  JitExecutor jit(jit_options);
  BucketRunOptions jit_run;
  jit_run.backend = ExecBackend::kJit;
  jit_run.jit = &jit;

  const BucketedModel exact =
      BuildModelBucketed(ModelKind::kBert, {1, 20}, BucketingPolicy::Identity());
  for (size_t i : UniqueSubprogramIndices(exact)) {
    const Graph& g = exact.model.subprograms[i].graph;
    const TensorEnv inputs = MakeGraphInputs(g, /*seed=*/41 + i);
    TensorEnv interpreted;
    ASSERT_TRUE(RunBucketedSubprogram(*entry, i, exact, inputs, &interpreted).ok());
    TensorEnv jitted;
    const Status st = RunBucketedSubprogram(*entry, i, exact, inputs, &jitted, jit_run);
    ASSERT_TRUE(st.ok()) << g.name() << ": " << st.ToString();
    for (TensorId out : g.OutputIds()) {
      const size_t id = static_cast<size_t>(out);
      EXPECT_LT(MaxRelDiff(jitted[id], interpreted[id]), 1e-2f) << g.name();
    }
  }
}

}  // namespace
}  // namespace spacefusion
