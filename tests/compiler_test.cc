// Compiler facade and tuner tests: end-to-end compilation, compile caching,
// fusion-pattern statistics, ablation variants, and numerical validation of
// tuned, compiled programs.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/core/spacefusion.h"
#include "src/schedule/lowering.h"
#include "src/tuning/tuner.h"

namespace spacefusion {
namespace {

Compiler MakeCompiler(GpuArch arch = AmpereA100()) {
  return Compiler{CompileOptions(std::move(arch))};
}

TEST(CompilerTest, MhaCompilesToOneFusedKernel) {
  Compiler compiler = MakeCompiler();
  auto compiled = compiler.Compile(BuildMha(8, 512, 512, 64));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->kernels.size(), 1u);
  EXPECT_GT(compiled->estimate.time_us, 0);
  EXPECT_GT(compiled->tuning.configs_tried, 0);
}

TEST(CompilerTest, CompiledMhaIsNumericallyExact) {
  Compiler compiler = MakeCompiler();
  Graph g = BuildMha(3, 32, 96, 16);
  auto compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok());

  TensorEnv inputs = MakeGraphInputs(g, 21);
  TensorEnv ref = inputs;
  RunReference(g, &ref);
  TensorEnv outs;
  ASSERT_TRUE(RunScheduledProgram(compiled->program, g, inputs, &outs).ok());
  EXPECT_LT(MaxRelDiff(outs[static_cast<size_t>(g.OutputIds()[0])],
                       ref[static_cast<size_t>(g.OutputIds()[0])]),
            5e-3f);
}

class CompiledSubgraphNumericsTest : public ::testing::TestWithParam<int> {};

TEST_P(CompiledSubgraphNumericsTest, TunedProgramMatchesReference) {
  Graph g = [&]() {
    switch (GetParam()) {
      case 0:
        return BuildMlp(3, 48, 32, 32);
      case 1:
        return BuildLstmCell(16, 24, 24);
      case 2:
        return BuildLayerNormGraph(24, 96);
      case 3:
        return BuildFfn(24, 48, 96, UnaryKind::kGelu, NormKind::kLayerNorm);
      case 4:
        return BuildSwigluFfn(24, 48, 96);
      case 5:
        return BuildAttnOut(24, 48, NormKind::kLayerNorm);
      default:
        return BuildQkvProj(24, 48, 48);
    }
  }();
  Compiler compiler = MakeCompiler();
  auto compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  TensorEnv inputs = MakeGraphInputs(g, 31);
  TensorEnv ref = inputs;
  RunReference(g, &ref);
  TensorEnv outs;
  ASSERT_TRUE(RunScheduledProgram(compiled->program, g, inputs, &outs).ok());
  for (TensorId out : g.OutputIds()) {
    EXPECT_LT(MaxRelDiff(outs[static_cast<size_t>(out)], ref[static_cast<size_t>(out)]), 5e-3f)
        << g.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Subgraphs, CompiledSubgraphNumericsTest, ::testing::Range(0, 7));

TEST(CompilerTest, CacheHitsForRepeatedSubprograms) {
  Compiler compiler = MakeCompiler();
  Graph g = BuildMha(4, 128, 128, 32);
  auto first = compiler.Compile(g);
  ASSERT_TRUE(first.ok());
  auto second = compiler.Compile(g);
  ASSERT_TRUE(second.ok());
  // Cached: identical estimates, no extra tuning.
  EXPECT_EQ(first->estimate.time_us, second->estimate.time_us);
}

TEST(CompilerTest, ModelCompilationCompilesUniqueSubprogramsOnce) {
  Compiler compiler = MakeCompiler();
  ModelGraph bert = BuildModel(GetModelConfig(ModelKind::kBert, 1, 128));
  auto compiled = compiler.CompileModel(bert);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->unique_subprograms.size(), 4u);  // qkv, mha, attn_out, ffn
  EXPECT_EQ(compiled->cache_hits, 0);  // repeats folded into repeat counts
  EXPECT_GT(compiled->total.time_us, 0);
}

TEST(CompilerTest, AlbertBenefitsFromCompileCache) {
  // ALBERT's layers share weights: the model is literally the same
  // subprogram repeated, compiled once (paper Sec. 5 pre-processing).
  Compiler compiler = MakeCompiler();
  ModelGraph albert = BuildModel(GetModelConfig(ModelKind::kAlbert, 1, 128));
  auto compiled = compiler.CompileModel(albert);
  ASSERT_TRUE(compiled.ok());
  std::int64_t layer_count = 0;
  for (const Subprogram& sub : albert.subprograms) {
    layer_count += sub.repeat;
  }
  EXPECT_GT(layer_count, static_cast<std::int64_t>(compiled->unique_subprograms.size()));
}

TEST(CompilerTest, FusionStatsCountMultiReductionPatterns) {
  Compiler compiler = MakeCompiler();
  ASSERT_TRUE(compiler.Compile(BuildMha(4, 128, 128, 32)).ok());
  ASSERT_TRUE(compiler.Compile(BuildLayerNormGraph(64, 128)).ok());
  ASSERT_TRUE(compiler.Compile(BuildMlp(3, 64, 32, 32)).ok());
  FusionPatternStats stats = compiler.fusion_stats();
  EXPECT_GE(stats.total, 3);
  EXPECT_GT(stats.ci_and_mi, 0);  // MHA mixes GEMMs with softmax
  EXPECT_GT(stats.mi_only, 0);    // LayerNorm
  EXPECT_EQ(stats.total, stats.ci_only + stats.mi_only + stats.ci_and_mi);

  // Same topology at other shapes must not add new patterns.
  int before = compiler.fusion_stats().total;
  ASSERT_TRUE(compiler.Compile(BuildMha(8, 256, 256, 64)).ok());
  EXPECT_EQ(compiler.fusion_stats().total, before);
}

TEST(CompilerTest, CompileTimeBreakdownPopulated) {
  Compiler compiler = MakeCompiler();
  auto compiled = compiler.Compile(BuildMha(8, 1024, 1024, 64));
  ASSERT_TRUE(compiled.ok());
  EXPECT_GT(compiled->compile_time.tuning_s, 0.0);  // emulated measurement time
  EXPECT_GE(compiled->compile_time.slicing_ms, 0.0);
}

class AblationVariantTest : public ::testing::TestWithParam<int> {};

TEST_P(AblationVariantTest, VariantsCompileAndOrderSensibly) {
  CompileOptions options{AmpereA100()};
  switch (GetParam()) {
    case 0:  // Base(SS)
      options.enable_temporal_slicing = false;
      options.enable_auto_scheduling = false;
      break;
    case 1:  // Base+AS
      options.enable_temporal_slicing = false;
      break;
    case 2:  // Base+TS
      options.enable_auto_scheduling = false;
      break;
    default:  // full SpaceFusion
      break;
  }
  Compiler compiler{options};
  auto compiled = compiler.Compile(BuildMha(8, 512, 512, 64));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_GT(compiled->estimate.time_us, 0);
}

INSTANTIATE_TEST_SUITE_P(Variants, AblationVariantTest, ::testing::Range(0, 4));

TEST(AblationTest, FullSpaceFusionIsFastest) {
  Graph g = BuildMha(8, 1024, 1024, 64);
  double times[4];
  for (int v = 0; v < 4; ++v) {
    CompileOptions options{AmpereA100()};
    options.enable_temporal_slicing = v == 2 || v == 3;
    options.enable_auto_scheduling = v == 1 || v == 3;
    Compiler compiler{options};
    auto compiled = compiler.Compile(g);
    ASSERT_TRUE(compiled.ok());
    times[v] = compiled->estimate.time_us;
  }
  // Full (3) must not lose to any ablated variant.
  EXPECT_LE(times[3], times[0] * 1.001);
  EXPECT_LE(times[3], times[1] * 1.001);
  EXPECT_LE(times[3], times[2] * 1.001);
}

// --- Tuner --------------------------------------------------------------------

TEST(TunerTest, PicksCostMinimalConfig) {
  Graph g = BuildMha(8, 512, 512, 64);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, rc);
  ASSERT_TRUE(sliced.ok());
  CostModel cost(AmpereA100());
  TuningStats stats = TuneKernel(&*sliced, cost, rc);
  // Screening is on by default: every config is scored by stage 1, only the
  // admitted subset reaches full fidelity — and the winner must still be the
  // global optimum (checked against the exhaustive sweep below).
  EXPECT_EQ(stats.configs_screened, static_cast<int>(sliced->configs.size()));
  EXPECT_GT(stats.configs_tried, 0);
  EXPECT_LT(stats.configs_tried, static_cast<int>(sliced->configs.size()));
  EXPECT_GT(stats.best_time_us, 0);

  // No config may beat the chosen one.
  AddressMap am;
  double best = stats.best_time_us;
  for (const ScheduleConfig& c : sliced->configs) {
    sliced->schedule.ApplyConfig(c);
    PlanMemory(&sliced->schedule, rc);
    AddressMap probe;
    KernelSpec spec = LowerSchedule(sliced->schedule, &probe);
    EXPECT_GE(cost.EstimateKernel(spec).time_us, best - 1e-9);
  }
  (void)am;
}

TEST(TunerTest, EarlyQuitSavesMeasurementTime) {
  Graph g = BuildMha(8, 1024, 1024, 64);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  CostModel cost(AmpereA100());

  StatusOr<SlicingResult> a = ResourceAwareSlicing(g, rc);
  StatusOr<SlicingResult> b = ResourceAwareSlicing(g, rc);
  ASSERT_TRUE(a.ok() && b.ok());

  TunerOptions with_quit;
  TunerOptions without_quit;
  without_quit.enable_early_quit = false;
  TuningStats quick = TuneKernel(&*a, cost, rc, with_quit);
  TuningStats slow = TuneKernel(&*b, cost, rc, without_quit);
  EXPECT_LT(quick.simulated_tuning_seconds, slow.simulated_tuning_seconds);
  EXPECT_GT(quick.configs_early_quit, 0);
  EXPECT_EQ(quick.best_time_us, slow.best_time_us);  // same winner
}

// The facade delegates to a CompilerEngine, so one Compiler instance must
// serve concurrent Compile calls (run under TSan by the concurrency CI job).
TEST(CompilerTest, ConcurrentCompileOnOneInstance) {
  Compiler compiler = MakeCompiler();
  constexpr int kThreads = 6;
  std::vector<std::string> fingerprints(kThreads);
  std::vector<Status> statuses(kThreads, Status::Ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Graph g = t % 2 == 0 ? BuildMha(4, 128, 128, 32) : BuildMlp(2, 64, 64, 64);
      auto compiled = compiler.Compile(g);
      if (!compiled.ok()) {
        statuses[static_cast<size_t>(t)] = compiled.status();
        return;
      }
      std::string fp;
      for (const SmgSchedule& kernel : compiled->program.kernels) {
        fp += kernel.ToString();
      }
      fingerprints[static_cast<size_t>(t)] = fp;
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(statuses[static_cast<size_t>(t)].ok())
        << statuses[static_cast<size_t>(t)].ToString();
  }
  // All threads that compiled the same graph selected the same program.
  for (int t = 2; t < kThreads; ++t) {
    EXPECT_EQ(fingerprints[static_cast<size_t>(t)], fingerprints[static_cast<size_t>(t % 2)]);
  }
  EXPECT_EQ(compiler.engine().cache_stats().hits + compiler.engine().cache_stats().misses,
            kThreads);
}

TEST(TunerTest, ExpertConfigPrefersTemporalAnd64Tiles) {
  Graph g = BuildMha(8, 1024, 1024, 64);
  ResourceConfig rc = ResourceConfig::FromArch(AmpereA100());
  StatusOr<SlicingResult> sliced = ResourceAwareSlicing(g, rc);
  ASSERT_TRUE(sliced.ok());
  ApplyExpertConfig(&*sliced, rc);
  EXPECT_TRUE(sliced->schedule.has_temporal);
  EXPECT_GT(sliced->schedule.NumIntraBlocks(), 1);
}

}  // namespace
}  // namespace spacefusion
