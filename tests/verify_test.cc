// Negative coverage for the phase-boundary verifiers: each checker gets at
// least one deliberately broken IR and must report its exact SFV code —
// plus positive runs proving clean IR produces zero diagnostics.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>

#include "src/core/compiler.h"
#include "src/graph/builder.h"
#include "src/schedule/memory_planner.h"
#include "src/schedule/resource_aware.h"
#include "src/slicing/dim_analysis.h"
#include "src/smg/smg_builder.h"
#include "src/verify/verifier.h"

namespace spacefusion {
namespace {

Graph SoftmaxGraph() {
  GraphBuilder b("softmax");
  TensorId x = b.Input("x", Shape({64, 128}));
  b.MarkOutput(b.Softmax(x));
  return b.Build();
}

// A raw graph skeleton: tensors first, ops appended by the caller.
struct RawGraph {
  Graph g{"raw"};
  TensorId AddTensor(const char* name, Shape shape, TensorKind kind) {
    TensorInfo info;
    info.name = name;
    info.shape = std::move(shape);
    info.kind = kind;
    return g.AddTensor(std::move(info));
  }
  void AddUnary(TensorId in, TensorId out) {
    Op op;
    op.kind = OpKind::kUnary;
    op.inputs = {in};
    op.output = out;
    op.name = "op";
    g.AddOp(std::move(op));
  }
};

// --- Diagnostics engine ---------------------------------------------------

TEST(DiagnosticsTest, RenderingAndStatus) {
  DiagnosticReport report;
  report.SetContext("mha");
  report.AddError("SFV0101", "graph", "softmax_0", "bad tensor ref");
  report.AddWarning("SFV0108", "graph", "add_1", "dtype drift");

  EXPECT_EQ(report.error_count(), 1);
  EXPECT_EQ(report.warning_count(), 1);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCode("SFV0101"));
  EXPECT_FALSE(report.HasCode("SFV0999"));

  std::string text = report.ToString();
  EXPECT_NE(text.find("SFV0101 [error] graph(mha): softmax_0: bad tensor ref"),
            std::string::npos);

  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"code\":\"SFV0101\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);

  Status st = report.ToStatus();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("SFV0101"), std::string::npos);

  DiagnosticReport other;
  other.AddError("SFV0203", "smg", "m", "bad direction");
  report.Merge(std::move(other));
  EXPECT_EQ(report.error_count(), 2);
}

TEST(VerifyModeTest, ParseAndEnv) {
  EXPECT_EQ(ParseVerifyMode("off").value(), VerifyMode::kOff);
  EXPECT_EQ(ParseVerifyMode("phase").value(), VerifyMode::kPhase);
  EXPECT_EQ(ParseVerifyMode("full").value(), VerifyMode::kFull);
  EXPECT_FALSE(ParseVerifyMode("FULL").ok());

  setenv("SPACEFUSION_VERIFY", "full", 1);
  EXPECT_EQ(VerifyModeFromEnv(), VerifyMode::kFull);
  setenv("SPACEFUSION_VERIFY", "bogus", 1);
  EXPECT_EQ(VerifyModeFromEnv(VerifyMode::kOff), VerifyMode::kOff);
  unsetenv("SPACEFUSION_VERIFY");
  EXPECT_EQ(VerifyModeFromEnv(), VerifyMode::kPhase);
}

// --- GraphVerifier --------------------------------------------------------

TEST(GraphVerifierTest, CleanGraphHasNoDiagnostics) {
  DiagnosticReport report;
  VerifyGraph(SoftmaxGraph(), &report);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(GraphVerifierTest, UseBeforeDefIsACycle) {
  RawGraph raw;
  TensorId x = raw.AddTensor("x", Shape({8, 16}), TensorKind::kInput);
  TensorId a = raw.AddTensor("a", Shape({8, 16}), TensorKind::kOutput);
  TensorId b = raw.AddTensor("b", Shape({8, 16}), TensorKind::kIntermediate);
  raw.AddUnary(b, a);  // consumes b before op 1 produces it
  raw.AddUnary(x, b);
  DiagnosticReport report;
  VerifyGraph(raw.g, &report);
  EXPECT_TRUE(report.HasCode("SFV0102")) << report.ToString();
}

TEST(GraphVerifierTest, OutputShapeMismatch) {
  RawGraph raw;
  TensorId x = raw.AddTensor("x", Shape({8, 16}), TensorKind::kInput);
  TensorId y = raw.AddTensor("y", Shape({8, 8}), TensorKind::kOutput);
  raw.AddUnary(x, y);  // unary preserves shape; [8,8] != [8,16]
  DiagnosticReport report;
  VerifyGraph(raw.g, &report);
  EXPECT_TRUE(report.HasCode("SFV0103")) << report.ToString();
}

TEST(GraphVerifierTest, DanglingProducer) {
  RawGraph raw;
  raw.AddTensor("orphan", Shape({8}), TensorKind::kIntermediate);
  DiagnosticReport report;
  VerifyGraph(raw.g, &report);
  EXPECT_TRUE(report.HasCode("SFV0104")) << report.ToString();
}

TEST(GraphVerifierTest, ProducedBoundaryTensor) {
  RawGraph raw;
  TensorId x = raw.AddTensor("x", Shape({8, 16}), TensorKind::kInput);
  raw.AddUnary(x, x);  // an op writing a graph input
  DiagnosticReport report;
  VerifyGraph(raw.g, &report);
  EXPECT_TRUE(report.HasCode("SFV0105")) << report.ToString();
}

TEST(GraphVerifierTest, DoubleProduction) {
  RawGraph raw;
  TensorId x = raw.AddTensor("x", Shape({8, 16}), TensorKind::kInput);
  TensorId y = raw.AddTensor("y", Shape({8, 16}), TensorKind::kOutput);
  raw.AddUnary(x, y);
  raw.AddUnary(x, y);
  DiagnosticReport report;
  VerifyGraph(raw.g, &report);
  EXPECT_TRUE(report.HasCode("SFV0106")) << report.ToString();
}

TEST(GraphVerifierTest, WrongArity) {
  RawGraph raw;
  TensorId x = raw.AddTensor("x", Shape({8, 16}), TensorKind::kInput);
  TensorId y = raw.AddTensor("y", Shape({8, 16}), TensorKind::kOutput);
  Op op;
  op.kind = OpKind::kBinary;
  op.inputs = {x};  // binary with one operand
  op.output = y;
  op.name = "add";
  raw.g.AddOp(std::move(op));
  DiagnosticReport report;
  VerifyGraph(raw.g, &report);
  EXPECT_TRUE(report.HasCode("SFV0107")) << report.ToString();
}

// --- SmgVerifier ----------------------------------------------------------

struct MiniSmg {
  Smg smg{"mini"};
  DimId d0, d1;
  SpaceId input, output;
  MiniSmg() {
    d0 = smg.AddDim("d0", 8);
    d1 = smg.AddDim("d1", 16);
    Space in;
    in.name = "in";
    in.role = DataRole::kInput;
    in.dims = {d0};
    input = smg.AddSpace(std::move(in));
    Space out;
    out.name = "out";
    out.role = DataRole::kOutput;
    out.dims = {d0};
    output = smg.AddSpace(std::move(out));
  }
};

TEST(SmgVerifierTest, OneToOneCarryingDirectionDimIsArityMismatch) {
  MiniSmg m;
  Mapping map;
  map.src = m.input;
  map.dst = m.output;
  map.kind = MappingKind::kOneToOne;
  map.dim = m.d0;  // One-to-One must not carry a direction
  m.smg.AddMapping(map);
  DiagnosticReport report;
  VerifySmg(m.smg, &report);
  EXPECT_TRUE(report.HasCode("SFV0201")) << report.ToString();
}

TEST(SmgVerifierTest, InvalidDirectionDim) {
  MiniSmg m;
  Mapping map;
  map.src = m.input;
  map.dst = m.output;
  map.kind = MappingKind::kAllToOne;
  map.dim = 7;  // out of range
  m.smg.AddMapping(map);
  DiagnosticReport report;
  VerifySmg(m.smg, &report);
  EXPECT_TRUE(report.HasCode("SFV0202")) << report.ToString();
}

TEST(SmgVerifierTest, AllToOneDirectionMissingFromSource) {
  MiniSmg m;
  Mapping map;
  map.src = m.input;   // extends along d0 only
  map.dst = m.output;
  map.kind = MappingKind::kAllToOne;
  map.dim = m.d1;  // collapses a dim the source does not extend along
  m.smg.AddMapping(map);
  DiagnosticReport report;
  VerifySmg(m.smg, &report);
  EXPECT_TRUE(report.HasCode("SFV0203")) << report.ToString();
}

TEST(SmgVerifierTest, SpaceWithInvalidDim) {
  Smg smg("bad");
  smg.AddDim("d0", 8);
  Space s;
  s.name = "s";
  s.role = DataRole::kInput;
  s.dims = {3};  // only dim 0 exists
  smg.AddSpace(std::move(s));
  DiagnosticReport report;
  VerifySmg(smg, &report);
  EXPECT_TRUE(report.HasCode("SFV0204")) << report.ToString();
}

TEST(SmgVerifierTest, UnreachableSpace) {
  MiniSmg m;  // no mapping: the output space is unreachable from the input
  DiagnosticReport report;
  VerifySmg(m.smg, &report);
  EXPECT_TRUE(report.HasCode("SFV0205")) << report.ToString();
}

TEST(SmgVerifierTest, BuildResultExtentTamperDetected) {
  Graph g = SoftmaxGraph();
  StatusOr<SmgBuildResult> built = BuildSmg(g);
  ASSERT_TRUE(built.ok());
  {
    DiagnosticReport clean;
    VerifySmgBuild(g, built.value(), &clean);
    EXPECT_TRUE(clean.empty()) << clean.ToString();
  }
  // Detach an extent>1 tensor axis from its fused dim.
  built.value().tensor_axis_dims[0][0] = kNoDim;
  DiagnosticReport report;
  VerifySmgBuild(g, built.value(), &report);
  EXPECT_TRUE(report.HasCode("SFV0206")) << report.ToString();
}

TEST(SmgVerifierTest, BuildResultIndexTamperDetected) {
  Graph g = SoftmaxGraph();
  StatusOr<SmgBuildResult> built = BuildSmg(g);
  ASSERT_TRUE(built.ok());
  // Point a tensor at an iteration space.
  built.value().tensor_space[0] = built.value().op_space[0];
  DiagnosticReport report;
  VerifySmgBuild(g, built.value(), &report);
  EXPECT_TRUE(report.HasCode("SFV0207")) << report.ToString();
}

// --- SliceVerifier --------------------------------------------------------

SlicingResult SlicedSoftmax() {
  StatusOr<SlicingResult> sliced =
      ResourceAwareSlicing(SoftmaxGraph(), ResourceConfig());
  EXPECT_TRUE(sliced.ok()) << sliced.status().ToString();
  return std::move(sliced).value();
}

TEST(SliceVerifierTest, CleanSchedulePasses) {
  SlicingResult sr = SlicedSoftmax();
  DiagnosticReport report;
  VerifySlicing(sr.schedule, &report);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(SliceVerifierTest, UncoveredFusedDims) {
  SlicingResult sr = SlicedSoftmax();
  sr.schedule.spatial.clear();  // no dim is spatially covered
  DiagnosticReport report;
  VerifySlicing(sr.schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0303")) << report.ToString();
}

TEST(SliceVerifierTest, DimSlicedTwice) {
  SlicingResult sr = SlicedSoftmax();
  ASSERT_FALSE(sr.schedule.spatial.empty());
  sr.schedule.spatial.push_back(sr.schedule.spatial.front());
  DiagnosticReport report;
  VerifySlicing(sr.schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0301")) << report.ToString();
}

TEST(SliceVerifierTest, InvalidDimReference) {
  SlicingResult sr = SlicedSoftmax();
  ASSERT_FALSE(sr.schedule.spatial.empty());
  sr.schedule.spatial.front().dim = 99;
  DiagnosticReport report;
  VerifySlicing(sr.schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0302")) << report.ToString();
}

TEST(SliceVerifierTest, NonPositiveBlock) {
  SlicingResult sr = SlicedSoftmax();
  ASSERT_FALSE(sr.schedule.spatial.empty());
  sr.schedule.spatial.front().block = 0;
  DiagnosticReport report;
  VerifySlicing(sr.schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0304")) << report.ToString();
}

TEST(SliceVerifierTest, SpatiallySlicingAReductionDim) {
  SlicingResult sr = SlicedSoftmax();
  const Smg& smg = sr.schedule.built.smg;
  // Softmax reduces along the column dim: spatially slicing it cuts the
  // All-to-One and is illegal per the Table-3 classification.
  DimId bad = kNoDim;
  for (DimId d = 0; d < smg.num_dims(); ++d) {
    if (!AnalyzeDim(smg, d).SpatialSliceable()) {
      bad = d;
      break;
    }
  }
  ASSERT_NE(bad, kNoDim);
  bool already = false;
  for (const DimSlice& s : sr.schedule.spatial) {
    already = already || s.dim == bad;
  }
  ASSERT_FALSE(already);
  sr.schedule.spatial.push_back(DimSlice{bad, 16});
  DiagnosticReport report;
  VerifySlicing(sr.schedule, &report);
  EXPECT_TRUE(report.HasCode("SFV0305")) << report.ToString();
}

// --- ScheduleVerifier -----------------------------------------------------

// front computes e1.out from x; back computes r1.out (the program output)
// from e1.out — the partitioned form of x -> exp -> relu.
struct TwoKernelProgram {
  Graph source;
  ScheduledProgram program;
  TwoKernelProgram() {
    GraphBuilder src("src");
    TensorId x = src.Input("x", Shape({32, 64}));
    TensorId e = src.Unary(UnaryKind::kExp, x, "e1");
    TensorId r = src.Unary(UnaryKind::kRelu, e, "r1");
    src.MarkOutput(r);
    source = src.Build();

    GraphBuilder front("front");
    TensorId fx = front.Input("x", Shape({32, 64}));
    front.MarkOutput(front.Unary(UnaryKind::kExp, fx, "e1"));
    SmgSchedule k1;
    k1.graph = front.Build();

    GraphBuilder back("back");
    TensorId be = back.Input("e1.out", Shape({32, 64}));
    back.MarkOutput(back.Unary(UnaryKind::kRelu, be, "r1"));
    SmgSchedule k2;
    k2.graph = back.Build();

    program.kernels = {std::move(k1), std::move(k2)};
  }
};

TEST(ScheduleVerifierTest, DependencyPreservingOrderPasses) {
  TwoKernelProgram p;
  DiagnosticReport report;
  VerifySchedule(p.program, p.source, &report);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(ScheduleVerifierTest, BlockOrderViolatesDependency) {
  TwoKernelProgram p;
  std::swap(p.program.kernels[0], p.program.kernels[1]);
  DiagnosticReport report;
  VerifySchedule(p.program, p.source, &report);
  EXPECT_TRUE(report.HasCode("SFV0401")) << report.ToString();
}

TEST(ScheduleVerifierTest, MissingOutputProducer) {
  TwoKernelProgram p;
  p.program.kernels.pop_back();  // nobody computes r1.out any more
  DiagnosticReport report;
  VerifySchedule(p.program, p.source, &report);
  EXPECT_TRUE(report.HasCode("SFV0402")) << report.ToString();
}

TEST(ScheduleVerifierTest, AggregationOrderViolatesReductionChain) {
  SlicingResult sr = SlicedSoftmax();
  ScheduledProgram program;
  program.kernels = {sr.schedule};
  // Softmax reduces max then sum; aggregation rules must keep that serial
  // op order. Install them reversed to break the All-to-One chain.
  std::vector<OpId> reduces;
  for (const Op& op : sr.schedule.graph.ops()) {
    if (op.kind == OpKind::kReduce) {
      reduces.push_back(op.id);
    }
  }
  ASSERT_GE(reduces.size(), 2u);
  program.kernels[0].plan.aggregations.clear();
  for (auto it = reduces.rbegin(); it != reduces.rend(); ++it) {
    ReductionAggregation agg;
    agg.op = *it;
    program.kernels[0].plan.aggregations.push_back(agg);
  }
  DiagnosticReport report;
  VerifySchedule(program, sr.schedule.graph, &report);
  EXPECT_TRUE(report.HasCode("SFV0403")) << report.ToString();
}

// --- MemoryPlanVerifier ---------------------------------------------------

TEST(MemoryPlanVerifierTest, CleanPlanPasses) {
  SlicingResult sr = SlicedSoftmax();
  DiagnosticReport report;
  VerifyMemoryPlan(sr.schedule, ResourceConfig(), &report);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(MemoryPlanVerifierTest, StaleFootprintDetected) {
  SlicingResult sr = SlicedSoftmax();
  sr.schedule.memory.smem_bytes += 128;  // overlapping/stale allocation
  DiagnosticReport report;
  VerifyMemoryPlan(sr.schedule, ResourceConfig(), &report);
  EXPECT_TRUE(report.HasCode("SFV0502")) << report.ToString();
}

TEST(MemoryPlanVerifierTest, BudgetOverflowDetected) {
  SlicingResult sr = SlicedSoftmax();
  ASSERT_GT(sr.schedule.memory.reg_bytes, 1);
  ResourceConfig tiny;  // same smem budget => identical placement decisions
  tiny.reg_per_block_max = 1;
  DiagnosticReport report;
  VerifyMemoryPlan(sr.schedule, tiny, &report);
  EXPECT_TRUE(report.HasCode("SFV0501")) << report.ToString();
}

TEST(MemoryPlanVerifierTest, PlanSizeMismatchDetected) {
  SlicingResult sr = SlicedSoftmax();
  sr.schedule.memory.tensor_level.pop_back();
  DiagnosticReport report;
  VerifyMemoryPlan(sr.schedule, ResourceConfig(), &report);
  EXPECT_TRUE(report.HasCode("SFV0503")) << report.ToString();
}

// --- Builder error routing (no aborts on malformed user input) ------------

TEST(BuilderStatusTest, BroadcastMismatchReturnsStatus) {
  GraphBuilder b("bad");
  TensorId x = b.Input("x", Shape({8, 16}));
  TensorId y = b.Input("y", Shape({8, 17}));
  TensorId sum = b.Add(x, y);
  EXPECT_EQ(sum, kInvalidTensor);
  // Poison propagation: downstream emits keep returning kInvalidTensor.
  EXPECT_EQ(b.Relu(sum), kInvalidTensor);
  StatusOr<Graph> built = b.TryBuild();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("SFV0103"), std::string::npos)
      << built.status().ToString();
}

TEST(BuilderStatusTest, MatMulContractionMismatchReturnsStatus) {
  GraphBuilder b("bad");
  TensorId a = b.Input("a", Shape({8, 16}));
  TensorId w = b.Weight("w", Shape({32, 8}));
  EXPECT_EQ(b.MatMul(a, w), kInvalidTensor);
  StatusOr<Graph> built = b.TryBuild();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.status().message().find("SFV0103"), std::string::npos);
}

TEST(BuilderStatusTest, MarkOutputOnInputReturnsStatus) {
  GraphBuilder b("bad");
  TensorId x = b.Input("x", Shape({8}));
  b.MarkOutput(x);
  StatusOr<Graph> built = b.TryBuild();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.status().message().find("SFV0105"), std::string::npos);
}

TEST(BuilderStatusTest, InvalidTensorIdReturnsStatus) {
  GraphBuilder b("bad");
  EXPECT_EQ(b.Relu(kInvalidTensor), kInvalidTensor);
  StatusOr<Graph> built = b.TryBuild();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.status().message().find("SFV0101"), std::string::npos);
}

TEST(SmgBuilderStatusTest, AlignedExtentMismatchIsInvalidArgument) {
  // Hand-built graph whose unary forces two different extents onto one
  // aligned dim: y is declared [16, 8] against x [8, 16].
  RawGraph raw;
  TensorId x = raw.AddTensor("x", Shape({8, 16}), TensorKind::kInput);
  TensorId y = raw.AddTensor("y", Shape({16, 8}), TensorKind::kOutput);
  raw.AddUnary(x, y);
  StatusOr<SmgBuildResult> built = BuildSmg(raw.g);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("SFV0206"), std::string::npos);
}

TEST(SmgBuilderStatusTest, MatMulRankGuard) {
  RawGraph raw;
  TensorId a = raw.AddTensor("a", Shape({4}), TensorKind::kInput);
  TensorId b = raw.AddTensor("b", Shape({4}), TensorKind::kInput);
  TensorId c = raw.AddTensor("c", Shape({4, 4}), TensorKind::kOutput);
  Op op;
  op.kind = OpKind::kMatMul;
  op.inputs = {a, b};
  op.output = c;
  op.name = "mm";
  raw.g.AddOp(std::move(op));
  StatusOr<SmgBuildResult> built = BuildSmg(raw.g);
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.status().message().find("SFV0103"), std::string::npos);
}

// --- Compiler integration -------------------------------------------------

TEST(CompilerVerifyTest, PhaseModeRejectsBrokenGraphWithDiagnostics) {
  RawGraph raw;
  TensorId x = raw.AddTensor("x", Shape({8, 16}), TensorKind::kInput);
  TensorId y = raw.AddTensor("y", Shape({8, 8}), TensorKind::kOutput);
  raw.AddUnary(x, y);
  CompileOptions options;
  options.verify = VerifyMode::kPhase;
  Compiler compiler(options);
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(raw.g);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(compiled.status().message().find("SFV0103"), std::string::npos)
      << compiled.status().ToString();
}

TEST(CompilerVerifyTest, FullModeCompilesCleanGraph) {
  CompileOptions options;
  options.verify = VerifyMode::kFull;
  Compiler compiler(options);
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(SoftmaxGraph());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  // The final program also re-verifies clean outside the compiler.
  DiagnosticReport report = VerifyCompiledProgram(
      compiled->program, SoftmaxGraph(), ResourceConfig::FromArch(options.arch));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(CompilerVerifyTest, OffModeStillCompiles) {
  CompileOptions options;
  options.verify = VerifyMode::kOff;
  Compiler compiler(options);
  EXPECT_TRUE(compiler.Compile(SoftmaxGraph()).ok());
}

}  // namespace
}  // namespace spacefusion
