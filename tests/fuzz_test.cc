// Randomized end-to-end property testing: generate random (but valid)
// operator graphs, compile them with the full SpaceFusion pipeline, execute
// the tuned schedules, and require numerical equivalence with the unfused
// reference. This sweeps slicing decisions, aggregation plans, partitioning
// and component splitting over graph shapes no hand-written test covers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/analysis/race_analyzer.h"
#include "src/core/spacefusion.h"
#include "src/support/string_util.h"
#include "src/verify/verifier.h"
#include "tests/random_graph.h"

namespace spacefusion {
namespace {

using testing_util::RandomGraph;

class FuzzCompileTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCompileTest, CompiledProgramMatchesReference) {
  Graph g = RandomGraph(static_cast<std::uint64_t>(GetParam()) * 1000003ULL);
  ASSERT_TRUE(g.Validate().ok());

  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok()) << g.ToString() << "\n" << compiled.status().ToString();

  TensorEnv inputs = MakeGraphInputs(g, 77);
  TensorEnv reference = inputs;
  RunReference(g, &reference);
  TensorEnv outputs;
  Status st = RunScheduledProgram(compiled->program, g, inputs, &outputs);
  ASSERT_TRUE(st.ok()) << st.ToString();

  for (TensorId out : g.OutputIds()) {
    float diff = MaxRelDiff(outputs[static_cast<size_t>(out)],
                            reference[static_cast<size_t>(out)]);
    EXPECT_LT(diff, 1e-2f) << "seed " << GetParam() << "\n" << g.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCompileTest, ::testing::Range(0, 40));

class FuzzArchTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzArchTest, SchedulesAreFeasibleOnEveryArch) {
  Graph g = RandomGraph(static_cast<std::uint64_t>(GetParam()) * 7777ULL + 13);
  for (const GpuArch& arch : AllArchitectures()) {
    Compiler compiler{CompileOptions(arch)};
    StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
    ASSERT_TRUE(compiled.ok()) << arch.name << "\n" << g.ToString();
    EXPECT_GT(compiled->estimate.time_us, 0.0);
    for (const SmgSchedule& kernel : compiled->program.kernels) {
      EXPECT_LE(kernel.memory.smem_bytes, arch.smem_per_block_max) << arch.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzArchTest, ::testing::Range(0, 12));

// Verifier-seeded fuzzing: every random graph the pipeline accepts must come
// out clean under full verification, and every mutated (broken) graph must be
// rejected with at least one SFV diagnostic — never a crash.
class FuzzVerifyCleanTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzVerifyCleanTest, AcceptedProgramsVerifyClean) {
  Graph g = RandomGraph(static_cast<std::uint64_t>(GetParam()) * 424243ULL + 7);
  CompileOptions options{AmpereA100()};
  options.verify = VerifyMode::kFull;
  Compiler compiler{options};
  // Full mode checks every candidate program and enumerated config along the
  // way; any diagnostic fails the compile.
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok()) << g.ToString() << "\n" << compiled.status().ToString();

  DiagnosticReport report =
      VerifyCompiledProgram(compiled->program, g, ResourceConfig::FromArch(options.arch));
  EXPECT_EQ(report.error_count(), 0) << "seed " << GetParam() << "\n" << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzVerifyCleanTest, ::testing::Range(0, 16));

class FuzzVerifyRejectTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzVerifyRejectTest, MutatedGraphsCarryDiagnostics) {
  Graph g = RandomGraph(static_cast<std::uint64_t>(GetParam()) * 90001ULL + 3);

  // Break one invariant, rotating over mutation kinds by seed.
  switch (GetParam() % 3) {
    case 0: {  // declared output shape no longer matches the op semantics
      TensorId victim = g.OutputIds().front();
      std::vector<std::int64_t> dims = g.tensor(victim).shape.dims();
      dims.front() += 1;
      g.tensor(victim).shape = Shape(dims);
      break;
    }
    case 1:  // a produced tensor claims to be a graph input
      g.tensor(g.OutputIds().front()).kind = TensorKind::kInput;
      break;
    case 2:  // a consumed boundary tensor claims a producer it lacks
      g.tensor(g.InputIds().front()).kind = TensorKind::kIntermediate;
      break;
  }

  DiagnosticReport report;
  VerifyGraph(g, &report);
  ASSERT_GE(report.error_count(), 1) << "seed " << GetParam() << "\n" << g.ToString();
  for (const Diagnostic& d : report.diagnostics()) {
    EXPECT_EQ(d.code.rfind("SFV", 0), 0u) << d.ToString();
  }

  // The compiler's entry check rejects the same graph with the SFV codes
  // embedded in the returned status rather than crashing.
  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(compiled.status().message().find("SFV"), std::string::npos)
      << compiled.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzVerifyRejectTest, ::testing::Range(0, 18));

// --- Race-analyzer robustness ---------------------------------------------

// The analyzer's contract is "report, never crash": whatever mutation hits
// the schedule — degenerate or huge blocks, truncated memory plans,
// scrambled index tables, dangling dim references — AnalyzeSchedule must
// return normally (findings or not), because it runs on compiler-internal
// state precisely when that state may be wrong.
class FuzzAnalyzerTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzAnalyzerTest, MutatedSchedulesNeverCrashTheAnalyzer) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 99;
  Graph g = RandomGraph(seed);
  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok()) << g.ToString();

  // Deterministic xorshift stream drives the mutations.
  std::uint64_t rng = seed | 1;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int round = 0; round < 24; ++round) {
    ScheduledProgram program = compiled->program;  // fresh copy per round
    for (SmgSchedule& kernel : program.kernels) {
      switch (next() % 8) {
        case 0:
          if (!kernel.spatial.empty()) {
            kernel.spatial[next() % kernel.spatial.size()].block =
                static_cast<std::int64_t>(next() % 3) - 1;  // -1, 0, or 1
          }
          break;
        case 1:
          if (!kernel.spatial.empty()) {
            kernel.spatial[next() % kernel.spatial.size()].block = 1LL << 40;
          }
          break;
        case 2:
          if (!kernel.spatial.empty()) {
            kernel.spatial[next() % kernel.spatial.size()].dim =
                static_cast<DimId>(next() % 64) - 8;
          }
          break;
        case 3:
          if (!kernel.memory.tensor_level.empty()) {
            kernel.memory.tensor_level.resize(next() % kernel.memory.tensor_level.size());
          }
          break;
        case 4:
          if (!kernel.built.tensor_space.empty()) {
            kernel.built.tensor_space[next() % kernel.built.tensor_space.size()] =
                static_cast<SpaceId>(next() % 128) - 16;
          }
          break;
        case 5:
          if (!kernel.built.op_space.empty()) {
            kernel.built.op_space[next() % kernel.built.op_space.size()] =
                static_cast<SpaceId>(next() % 128) - 16;
          }
          break;
        case 6:
          kernel.memory.smem_bytes = static_cast<std::int64_t>(next() % 3) - 1;
          kernel.memory.reg_bytes = static_cast<std::int64_t>(next() % 3) - 1;
          break;
        case 7:
          kernel.has_temporal = true;
          kernel.temporal.dim = static_cast<DimId>(next() % 64) - 8;
          kernel.temporal.block = static_cast<std::int64_t>(next() % 5) - 2;
          break;
      }
    }
    DiagnosticReport report = AnalyzeCompiledProgram(program, g);
    (void)report;  // any verdict is fine; returning is the property
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAnalyzerTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace spacefusion
