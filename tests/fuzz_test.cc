// Randomized end-to-end property testing: generate random (but valid)
// operator graphs, compile them with the full SpaceFusion pipeline, execute
// the tuned schedules, and require numerical equivalence with the unfused
// reference. This sweeps slicing decisions, aggregation plans, partitioning
// and component splitting over graph shapes no hand-written test covers.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/core/spacefusion.h"
#include "src/support/string_util.h"
#include "tests/random_graph.h"

namespace spacefusion {
namespace {

using testing_util::RandomGraph;

class FuzzCompileTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCompileTest, CompiledProgramMatchesReference) {
  Graph g = RandomGraph(static_cast<std::uint64_t>(GetParam()) * 1000003ULL);
  ASSERT_TRUE(g.Validate().ok());

  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok()) << g.ToString() << "\n" << compiled.status().ToString();

  TensorEnv inputs = MakeGraphInputs(g, 77);
  TensorEnv reference = inputs;
  RunReference(g, &reference);
  TensorEnv outputs;
  Status st = RunScheduledProgram(compiled->program, g, inputs, &outputs);
  ASSERT_TRUE(st.ok()) << st.ToString();

  for (TensorId out : g.OutputIds()) {
    float diff = MaxRelDiff(outputs[static_cast<size_t>(out)],
                            reference[static_cast<size_t>(out)]);
    EXPECT_LT(diff, 1e-2f) << "seed " << GetParam() << "\n" << g.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCompileTest, ::testing::Range(0, 40));

class FuzzArchTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzArchTest, SchedulesAreFeasibleOnEveryArch) {
  Graph g = RandomGraph(static_cast<std::uint64_t>(GetParam()) * 7777ULL + 13);
  for (const GpuArch& arch : AllArchitectures()) {
    Compiler compiler{CompileOptions(arch)};
    StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
    ASSERT_TRUE(compiled.ok()) << arch.name << "\n" << g.ToString();
    EXPECT_GT(compiled->estimate.time_us, 0.0);
    for (const SmgSchedule& kernel : compiled->program.kernels) {
      EXPECT_LE(kernel.memory.smem_bytes, arch.smem_per_block_max) << arch.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzArchTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace spacefusion
