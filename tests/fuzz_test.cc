// Randomized end-to-end property testing: generate random (but valid)
// operator graphs, compile them with the full SpaceFusion pipeline, execute
// the tuned schedules, and require numerical equivalence with the unfused
// reference. This sweeps slicing decisions, aggregation plans, partitioning
// and component splitting over graph shapes no hand-written test covers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/spacefusion.h"
#include "src/support/string_util.h"
#include "src/verify/verifier.h"
#include "tests/random_graph.h"

namespace spacefusion {
namespace {

using testing_util::RandomGraph;

class FuzzCompileTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCompileTest, CompiledProgramMatchesReference) {
  Graph g = RandomGraph(static_cast<std::uint64_t>(GetParam()) * 1000003ULL);
  ASSERT_TRUE(g.Validate().ok());

  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok()) << g.ToString() << "\n" << compiled.status().ToString();

  TensorEnv inputs = MakeGraphInputs(g, 77);
  TensorEnv reference = inputs;
  RunReference(g, &reference);
  TensorEnv outputs;
  Status st = RunScheduledProgram(compiled->program, g, inputs, &outputs);
  ASSERT_TRUE(st.ok()) << st.ToString();

  for (TensorId out : g.OutputIds()) {
    float diff = MaxRelDiff(outputs[static_cast<size_t>(out)],
                            reference[static_cast<size_t>(out)]);
    EXPECT_LT(diff, 1e-2f) << "seed " << GetParam() << "\n" << g.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCompileTest, ::testing::Range(0, 40));

class FuzzArchTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzArchTest, SchedulesAreFeasibleOnEveryArch) {
  Graph g = RandomGraph(static_cast<std::uint64_t>(GetParam()) * 7777ULL + 13);
  for (const GpuArch& arch : AllArchitectures()) {
    Compiler compiler{CompileOptions(arch)};
    StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
    ASSERT_TRUE(compiled.ok()) << arch.name << "\n" << g.ToString();
    EXPECT_GT(compiled->estimate.time_us, 0.0);
    for (const SmgSchedule& kernel : compiled->program.kernels) {
      EXPECT_LE(kernel.memory.smem_bytes, arch.smem_per_block_max) << arch.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzArchTest, ::testing::Range(0, 12));

// Verifier-seeded fuzzing: every random graph the pipeline accepts must come
// out clean under full verification, and every mutated (broken) graph must be
// rejected with at least one SFV diagnostic — never a crash.
class FuzzVerifyCleanTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzVerifyCleanTest, AcceptedProgramsVerifyClean) {
  Graph g = RandomGraph(static_cast<std::uint64_t>(GetParam()) * 424243ULL + 7);
  CompileOptions options{AmpereA100()};
  options.verify = VerifyMode::kFull;
  Compiler compiler{options};
  // Full mode checks every candidate program and enumerated config along the
  // way; any diagnostic fails the compile.
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_TRUE(compiled.ok()) << g.ToString() << "\n" << compiled.status().ToString();

  DiagnosticReport report =
      VerifyCompiledProgram(compiled->program, g, ResourceConfig::FromArch(options.arch));
  EXPECT_EQ(report.error_count(), 0) << "seed " << GetParam() << "\n" << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzVerifyCleanTest, ::testing::Range(0, 16));

class FuzzVerifyRejectTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzVerifyRejectTest, MutatedGraphsCarryDiagnostics) {
  Graph g = RandomGraph(static_cast<std::uint64_t>(GetParam()) * 90001ULL + 3);

  // Break one invariant, rotating over mutation kinds by seed.
  switch (GetParam() % 3) {
    case 0: {  // declared output shape no longer matches the op semantics
      TensorId victim = g.OutputIds().front();
      std::vector<std::int64_t> dims = g.tensor(victim).shape.dims();
      dims.front() += 1;
      g.tensor(victim).shape = Shape(dims);
      break;
    }
    case 1:  // a produced tensor claims to be a graph input
      g.tensor(g.OutputIds().front()).kind = TensorKind::kInput;
      break;
    case 2:  // a consumed boundary tensor claims a producer it lacks
      g.tensor(g.InputIds().front()).kind = TensorKind::kIntermediate;
      break;
  }

  DiagnosticReport report;
  VerifyGraph(g, &report);
  ASSERT_GE(report.error_count(), 1) << "seed " << GetParam() << "\n" << g.ToString();
  for (const Diagnostic& d : report.diagnostics()) {
    EXPECT_EQ(d.code.rfind("SFV", 0), 0u) << d.ToString();
  }

  // The compiler's entry check rejects the same graph with the SFV codes
  // embedded in the returned status rather than crashing.
  Compiler compiler{CompileOptions(AmpereA100())};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(g);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(compiled.status().message().find("SFV"), std::string::npos)
      << compiled.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzVerifyRejectTest, ::testing::Range(0, 18));

}  // namespace
}  // namespace spacefusion
