// The serving-grade battery for ServeServer: request coalescing under a
// client storm, per-client quotas, deadline expiry that never poisons a
// cache, and the kill/restart cycle that must serve persistent hits
// bit-identical to the cold results it replaced.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/server.h"
#include "src/support/file_util.h"

namespace spacefusion {
namespace {

ServeRequest Request(const std::string& id, const std::string& model,
                     const std::string& client = "test", std::int64_t deadline_ms = 0) {
  ServeRequest request;
  request.id = id;
  request.client = client;
  request.model = model;
  request.deadline_ms = deadline_ms;
  return request;
}

// Options with persistence off unless a test opts in, whatever
// SPACEFUSION_CACHE_DIR says in the environment.
ServeServerOptions Options() {
  ServeServerOptions options;
  options.cache_dir.clear();
  return options;
}

TEST(ServeTest, ColdThenCacheHit) {
  ServeServer server(Options());
  ServeResponse first = server.Handle(Request("r1", "bert"));
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_EQ(first.outcome, "cold");
  EXPECT_EQ(first.model, "Bert");
  EXPECT_GT(first.estimate.time_us, 0.0);

  ServeResponse second = server.Handle(Request("r2", "bert"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.outcome, "cache_hit");
  // The modeled result is the cached one, bit for bit.
  EXPECT_EQ(second.estimate.time_us, first.estimate.time_us);
  EXPECT_EQ(second.tuning_seconds, first.tuning_seconds);

  ServeServer::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.coalesced, 0);
}

TEST(ServeTest, StormCoalescesOntoOneCompile) {
  ServeServerOptions options = Options();
  options.start_paused = true;
  options.per_client_inflight = 64;
  ServeServer server(options);

  // 8 clients storm the same model while the job gate is closed, plus one
  // distinct model that must NOT coalesce with them.
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(Request("storm-" + std::to_string(i), "t5",
                                            "client-" + std::to_string(i))));
  }
  futures.push_back(server.Submit(Request("other", "vit")));

  // Deterministic pre-compile assertions: one t5 job, one vit job, 7 riders.
  EXPECT_EQ(server.inflight_jobs(), 2);
  ServeServer::Stats admitted = server.stats();
  EXPECT_EQ(admitted.submitted, 9);
  EXPECT_EQ(admitted.coalesced, 7);

  server.Resume();
  int coalesced = 0;
  int cold = 0;
  for (std::future<ServeResponse>& f : futures) {
    ServeResponse response = f.get();
    ASSERT_TRUE(response.ok()) << response.error;
    coalesced += response.coalesced ? 1 : 0;
    cold += response.outcome == "cold" ? 1 : 0;
  }
  EXPECT_EQ(coalesced, 7);
  // Every t5 waiter was answered by the single cold compile of its job.
  EXPECT_EQ(cold, 9);

  ServeServer::Stats stats = server.stats();
  EXPECT_EQ(stats.compiles, 2);  // exactly one compile per unique fingerprint
  EXPECT_EQ(stats.completed, 9);
}

TEST(ServeTest, PerClientQuotaRejectsTheExcess) {
  ServeServerOptions options = Options();
  options.start_paused = true;
  options.per_client_inflight = 2;
  ServeServer server(options);

  std::future<ServeResponse> first = server.Submit(Request("q1", "bert", "greedy"));
  std::future<ServeResponse> second = server.Submit(Request("q2", "bert", "greedy"));
  std::future<ServeResponse> third = server.Submit(Request("q3", "bert", "greedy"));
  // A different client is not throttled by greedy's quota.
  std::future<ServeResponse> polite = server.Submit(Request("q4", "bert", "polite"));

  // The rejection is synchronous: the future is already resolved.
  ASSERT_EQ(third.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ServeResponse rejected = third.get();
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status, "RESOURCE_EXHAUSTED");

  server.Resume();
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
  EXPECT_TRUE(polite.get().ok());
  EXPECT_EQ(server.stats().rejected_quota, 1);

  // Quota slots were released on delivery: the client may come back.
  ServeResponse retry = server.Handle(Request("q5", "bert", "greedy"));
  EXPECT_TRUE(retry.ok());
}

TEST(ServeTest, AdmissionQueueBoundRejectsNewJobs) {
  ServeServerOptions options = Options();
  options.start_paused = true;
  options.max_inflight_jobs = 1;
  ServeServer server(options);

  std::future<ServeResponse> admitted = server.Submit(Request("a", "bert"));
  // A coalescing rider adds no job, so it is still admitted...
  std::future<ServeResponse> rider = server.Submit(Request("b", "bert", "other"));
  // ...but a distinct compile is past the bound.
  std::future<ServeResponse> overflow = server.Submit(Request("c", "llama2"));

  ASSERT_EQ(overflow.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ServeResponse rejected = overflow.get();
  EXPECT_EQ(rejected.status, "RESOURCE_EXHAUSTED");

  server.Resume();
  EXPECT_TRUE(admitted.get().ok());
  EXPECT_TRUE(rider.get().ok());
  EXPECT_EQ(server.stats().rejected_queue, 1);
}

TEST(ServeTest, ExpiredDeadlineSkipsTheCompileAndPoisonsNothing) {
  ServeServerOptions options = Options();
  options.start_paused = true;
  ServeServer server(options);

  std::future<ServeResponse> doomed =
      server.Submit(Request("d1", "bert", "test", /*deadline_ms=*/1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Resume();

  ServeResponse response = doomed.get();
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status, "DEADLINE_EXCEEDED");

  ServeServer::Stats stats = server.stats();
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_EQ(stats.compile_skipped, 1);
  EXPECT_EQ(stats.compiles, 0);
  // Nothing reached the engine: no cache entry, no counted traffic.
  EXPECT_EQ(server.engine().program_cache_size(), 0);

  // And the model still compiles cold afterwards — the cache was not
  // poisoned with an aborted entry.
  ServeResponse retry = server.Handle(Request("d2", "bert"));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.outcome, "cold");
}

TEST(ServeTest, ExpiredRiderDoesNotStarveItsJob) {
  ServeServerOptions options = Options();
  options.start_paused = true;
  ServeServer server(options);

  std::future<ServeResponse> patient = server.Submit(Request("p", "bert", "patient"));
  std::future<ServeResponse> hurried =
      server.Submit(Request("h", "bert", "hurried", /*deadline_ms=*/1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Resume();

  ServeResponse ok = patient.get();
  ASSERT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(ok.outcome, "cold");
  EXPECT_EQ(hurried.get().status, "DEADLINE_EXCEEDED");

  // The compile the patient waiter kept alive is cached for everyone.
  EXPECT_EQ(server.Handle(Request("p2", "bert")).outcome, "cache_hit");
  ServeServer::Stats stats = server.stats();
  EXPECT_EQ(stats.compiles, 2);
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_EQ(stats.compile_skipped, 0);
}

TEST(ServeTest, BadRequestsFailFast) {
  ServeServer server(Options());
  ServeResponse bad_model = server.Handle(Request("x", "resnet"));
  EXPECT_EQ(bad_model.status, "INVALID_ARGUMENT");
  ServeRequest bad_arch = Request("y", "bert");
  bad_arch.arch = "tpu";
  EXPECT_EQ(server.Handle(bad_arch).status, "INVALID_ARGUMENT");
  EXPECT_EQ(server.stats().failed, 2);
  EXPECT_EQ(server.stats().compiles, 0);
}

TEST(ServeTest, ShutdownDeliversEveryAdmittedResponse) {
  std::vector<std::future<ServeResponse>> futures;
  {
    ServeServerOptions options = Options();
    options.start_paused = true;
    ServeServer server(options);
    futures.push_back(server.Submit(Request("s1", "bert", "a")));
    futures.push_back(server.Submit(Request("s2", "bert", "b")));
    futures.push_back(server.Submit(Request("s3", "vit", "c")));
    // Destroyed while paused: the destructor resumes and drains.
  }
  for (std::future<ServeResponse>& f : futures) {
    ServeResponse response = f.get();  // a broken promise would throw here
    EXPECT_TRUE(response.ok()) << response.error;
  }
}

TEST(ServeTest, RestartServesBitIdenticalPersistentHits) {
  const std::string cache_dir = testing::TempDir() + "/sf_serve_restart_cache";
  std::filesystem::remove_all(cache_dir);
  const std::vector<std::string> models = {"bert", "albert", "t5", "vit", "llama2"};

  std::vector<ServeResponse> cold;
  {
    ServeServerOptions options = Options();
    options.cache_dir = cache_dir;
    ServeServer server(options);
    for (const std::string& model : models) {
      ServeResponse response = server.Handle(Request("cold-" + model, model));
      ASSERT_TRUE(response.ok()) << response.error;
      cold.push_back(response);
    }
  }  // kill the daemon

  ServeServerOptions options = Options();
  options.cache_dir = cache_dir;
  ServeServer restarted(options);
  for (size_t i = 0; i < models.size(); ++i) {
    ServeResponse warm = restarted.Handle(Request("warm-" + models[i], models[i]));
    ASSERT_TRUE(warm.ok()) << warm.error;
    // Albert shares Bert's subprogram structure, so once Bert's entries are
    // warmed into memory Albert is an in-memory hit; every other model must
    // come straight from disk. Nothing may compile cold.
    EXPECT_NE(warm.outcome, "cold") << models[i];
    if (models[i] != "albert") {
      EXPECT_EQ(warm.outcome, "persistent_hit") << models[i];
    }
    // Bit-identical modeled results across the restart (exact double
    // equality, no tolerance).
    EXPECT_EQ(warm.estimate.time_us, cold[i].estimate.time_us) << models[i];
    EXPECT_EQ(warm.estimate.flops, cold[i].estimate.flops);
    EXPECT_EQ(warm.estimate.dram_bytes, cold[i].estimate.dram_bytes);
    EXPECT_EQ(warm.tuning_seconds, cold[i].tuning_seconds) << models[i];
    EXPECT_EQ(warm.unique_subprograms, cold[i].unique_subprograms);
    EXPECT_EQ(warm.cache_hits, cold[i].cache_hits);
  }
  // Every unique subprogram came from disk, none from a fresh compile.
  CompilerEngine::CacheStats engine_stats = restarted.engine().cache_stats();
  EXPECT_GT(engine_stats.persistent_hits, 0);
  EXPECT_EQ(engine_stats.misses, engine_stats.persistent_hits);
  EXPECT_EQ(engine_stats.persistent_stale, 0);
  EXPECT_EQ(engine_stats.persistent_corrupt, 0);
}

TEST(ServeTest, CorruptCacheEntriesFallBackToColdCompiles) {
  const std::string cache_dir = testing::TempDir() + "/sf_serve_corrupt_cache";
  std::filesystem::remove_all(cache_dir);
  ServeServerOptions options = Options();
  options.cache_dir = cache_dir;
  ServeResponse cold;
  {
    ServeServer server(options);
    cold = server.Handle(Request("c", "bert"));
    ASSERT_TRUE(cold.ok());
  }
  // Vandalize every persisted entry.
  for (const std::string& name : ListDirectory(cache_dir)) {
    ASSERT_TRUE(AtomicWriteFile(cache_dir + "/" + name, "vandalized").ok());
  }
  ServeServer restarted(options);
  ServeResponse warm = restarted.Handle(Request("w", "bert"));
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(warm.outcome, "cold");  // fell back, did not crash or mis-serve
  EXPECT_EQ(warm.estimate.time_us, cold.estimate.time_us);
  EXPECT_GT(restarted.engine().cache_stats().persistent_corrupt, 0);
}

// Regression: a rejected first-time client must not leave a dead zero-count
// quota entry behind (Submit used to plant one via operator[] before the
// queue-full check, and nothing ever erased it).
TEST(ServeTest, RejectedClientsLeaveNoQuotaEntryBehind) {
  ServeServerOptions options = Options();
  options.start_paused = true;
  options.max_inflight_jobs = 1;
  ServeServer server(options);

  std::future<ServeResponse> admitted = server.Submit(Request("a", "bert", "worker"));
  EXPECT_EQ(server.tracked_clients(), 1);

  // Distinct compiles from distinct fresh clients, all rejected queue-full:
  // none of them may grow the quota map.
  std::vector<std::string> models = {"llama2", "t5", "vit"};
  for (size_t i = 0; i < models.size(); ++i) {
    std::future<ServeResponse> overflow =
        server.Submit(Request(std::string("r") + models[i], models[i], "drive-by-" + models[i]));
    ASSERT_EQ(overflow.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(overflow.get().status, "RESOURCE_EXHAUSTED");
  }
  EXPECT_EQ(server.tracked_clients(), 1) << "rejected clients leaked quota entries";

  server.Resume();
  EXPECT_TRUE(admitted.get().ok());
  // Delivery releases the admitted client's slot too: the map drains empty.
  EXPECT_EQ(server.tracked_clients(), 0);
}

// --- NDJSON protocol robustness -------------------------------------------

// Malformed or truncated wire lines must come back as status errors, never
// crashes: the daemon parses untrusted stdin.
TEST(ServeProtocolTest, MalformedRequestLinesAreRejectedNotFatal) {
  const std::vector<std::string> bad = {
      "",
      "   ",
      "not json at all",
      "{",
      "}",
      "[]",
      "42",
      "\"just a string\"",
      "{\"id\":}",
      "{\"id\":\"x\",",
      "{\"id\":\"x\" \"model\":\"bert\"}",
      // Field typing is lenient (wrong-typed values fall back to defaults),
      // so the semantic rejections are: missing/empty model, bad batch/seq.
      "{\"id\":\"x\"}",                         // model absent
      "{\"id\":\"x\",\"model\":\"\"}",          // model empty
      "{\"id\":\"x\",\"model\":[\"bert\"]}",    // non-string model -> empty
      "{\"id\":\"x\",\"model\":\"bert\",\"batch\":0}",
      "{\"id\":\"x\",\"model\":\"bert\",\"seq\":-3}",
  };
  for (const std::string& line : bad) {
    StatusOr<ServeRequest> parsed = ServeRequestFromJson(line);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << line;
  }
}

TEST(ServeProtocolTest, TruncatedRequestPrefixesNeverParseOrCrash) {
  ServeRequest request;
  request.id = "req-7";
  request.client = "cli \"quoted\" name";
  request.model = "bert";
  request.batch = 8;
  request.seq = 256;
  request.arch = "h100";
  request.deadline_ms = 1500;
  const std::string line = ServeRequestToJson(request);

  StatusOr<ServeRequest> full = ServeRequestFromJson(line);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full.value().id, request.id);
  EXPECT_EQ(full.value().client, request.client);
  EXPECT_EQ(full.value().batch, 8);

  // Every strict prefix is a truncated write; none may parse as a request.
  for (size_t cut = 0; cut < line.size(); ++cut) {
    StatusOr<ServeRequest> parsed = ServeRequestFromJson(line.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "accepted prefix of length " << cut;
  }
}

TEST(ServeProtocolTest, TruncatedResponsePrefixesNeverParseOrCrash) {
  ServeResponse response;
  response.id = "req-7";
  response.status = "ok";
  response.model = "bert";
  response.outcome = "cold";
  response.unique_subprograms = 4;
  response.tuning_seconds = 1.25;
  const std::string line = ServeResponseToJson(response);

  StatusOr<ServeResponse> full = ServeResponseFromJson(line);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full.value().id, response.id);
  EXPECT_EQ(full.value().outcome, "cold");

  for (size_t cut = 0; cut < line.size(); ++cut) {
    StatusOr<ServeResponse> parsed = ServeResponseFromJson(line.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "accepted prefix of length " << cut;
  }
}

}  // namespace
}  // namespace spacefusion
