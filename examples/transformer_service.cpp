// Deploying a Transformer inference service with SpaceFusion: compile whole
// models (the paper's end-to-end scenario), inspect the per-subprogram
// schedules, and compare serving latency against library-backed engines.
//
//   $ ./build/examples/transformer_service
#include <cstdio>

#include "src/core/spacefusion.h"
#include "src/support/logging.h"

int main() {
  using namespace spacefusion;
  SetLogThreshold(LogLevel::kWarning);
  GpuArch arch = AmpereA100();

  for (ModelKind kind : {ModelKind::kBert, ModelKind::kLlama2}) {
    ModelConfig config = GetModelConfig(kind, /*batch=*/8, /*seq=*/512);
    ModelGraph model = BuildModel(config);
    std::printf("==== %s (batch %lld, seq %lld, %d layers, hidden %lld) ====\n",
                config.name.c_str(), static_cast<long long>(config.batch),
                static_cast<long long>(config.seq), config.num_layers,
                static_cast<long long>(config.hidden));

    Compiler compiler{CompileOptions(arch)};
    StatusOr<CompiledModel> compiled = compiler.CompileModel(model);
    if (!compiled.ok()) {
      std::printf("  compile failed: %s\n", compiled.status().ToString().c_str());
      continue;
    }

    std::printf("  unique subprograms compiled: %zu (repetitions served from cache)\n",
                compiled->unique_subprograms.size());
    std::printf("  compile time: %.1f s tuning + %.1f ms scheduling\n",
                compiled->compile_time.tuning_s,
                compiled->compile_time.slicing_ms + compiled->compile_time.enum_cfg_ms);
    for (const CompiledSubprogram& sub : compiled->unique_subprograms) {
      std::printf("    %-28s %3zu kernel(s) %10.1f us/exec\n",
                  sub.program.kernels[0].graph.name().c_str(), sub.kernels.size(),
                  sub.estimate.time_us);
    }
    std::printf("  end-to-end: %.2f ms/inference (%d kernel launches)\n",
                compiled->total.time_us / 1000.0, compiled->total.kernel_count);

    for (auto make : {MakePyTorchBaseline, MakeTensorRtBaseline, MakeKernlBaseline}) {
      auto baseline = make();
      auto report = EstimateModelWithBaseline(model, *baseline, arch);
      if (report) {
        std::printf("  vs %-12s %8.2f ms  -> %.2fx speedup\n", baseline->name().c_str(),
                    report->time_us / 1000.0, report->time_us / compiled->total.time_us);
      }
    }
    std::printf("\n");
  }
  return 0;
}
