// Architecture explorer: shows how SpaceFusion's resource-aware scheduling
// adapts a workload's fusion schedule to different GPU configurations —
// including hypothetical ones passed on the command line.
//
//   $ ./build/examples/arch_explorer                 # V100 / A100 / H100
//   $ ./build/examples/arch_explorer 48 64           # 48KB smem, 64 SMs
#include <cstdio>
#include <cstdlib>

#include "src/core/spacefusion.h"
#include "src/schedule/lowering.h"
#include "src/support/logging.h"
#include "src/tuning/tuner.h"

namespace {

void Explore(const spacefusion::GpuArch& arch) {
  using namespace spacefusion;
  std::printf("==== %s: %d SMs, %.0f TFLOPS fp16, %.0f GB/s, %lld KB smem/block ====\n",
              arch.name.c_str(), arch.num_sms, arch.fp16_tflops, arch.dram_gbps,
              static_cast<long long>(arch.smem_per_block_max / 1024));

  ResourceConfig rc = ResourceConfig::FromArch(arch);
  CostModel cost(arch);

  struct Case {
    const char* label;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"MHA  (12h x 1k x 64)", BuildMha(12, 1024, 1024, 64)});
  cases.push_back({"LayerNorm 8K x 8K", BuildLayerNormGraph(8192, 8192)});
  cases.push_back({"MLP 8 x [4096,256]", BuildMlp(8, 4096, 256, 256)});

  for (Case& c : cases) {
    StatusOr<SlicingResult> sliced = ResourceAwareSlicing(c.graph, rc);
    if (!sliced.ok()) {
      std::printf("  %-22s UNSCHEDULABLE (%s)\n", c.label,
                  sliced.status().message().c_str());
      continue;
    }
    TuningStats stats = TuneKernel(&*sliced, cost, rc);
    std::printf("  %-22s %4zu configs -> %s\n", c.label, sliced->configs.size(),
                sliced->schedule.ToString().c_str());
    std::printf("  %-22s tuned best: %.1f us (%.2fs emulated tuning)\n", "",
                stats.best_time_us, stats.simulated_tuning_seconds);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spacefusion;
  SetLogThreshold(LogLevel::kWarning);

  if (argc >= 3) {
    GpuArch custom = AmpereA100();
    custom.name = "Custom";
    custom.smem_per_block_max = std::atoll(argv[1]) * 1024;
    custom.smem_per_sm = custom.smem_per_block_max;
    custom.num_sms = std::atoi(argv[2]);
    Explore(custom);
    return 0;
  }
  for (const GpuArch& arch : AllArchitectures()) {
    Explore(arch);
  }
  return 0;
}
