// Fused attention deep-dive: how SpaceFusion discovers the FlashAttention
// dataflow from first principles.
//
// Walks the pipeline step by step for a long-sequence attention workload:
// dimension classification (Table 3), spatial slicing, temporal-dim
// priority, Broadcast Postposition's update functions, the resource-checked
// search space, tuning, and a sequence-length sweep against FlashAttention.
//
//   $ ./build/examples/fused_attention
#include <cstdio>

#include "src/core/spacefusion.h"
#include "src/schedule/lowering.h"
#include "src/slicing/slicers.h"
#include "src/support/logging.h"
#include "src/tuning/tuner.h"

int main() {
  using namespace spacefusion;
  SetLogThreshold(LogLevel::kWarning);
  GpuArch arch = AmpereA100();
  ResourceConfig rc = ResourceConfig::FromArch(arch);

  Graph mha = BuildMha(/*batch_heads=*/32 * 12, /*seq_q=*/2048, /*seq_kv=*/2048,
                       /*head_dim=*/64);
  auto built = BuildSmg(mha);
  if (!built.ok()) {
    return 1;
  }

  // Step 1: classify every dimension of the fused space (paper Table 3).
  std::printf("== Dimension analysis ==\n");
  for (const DimAnalysis& a : AnalyzeAllDims(built->smg)) {
    std::printf("  %-4s extent %-6lld class %-16s %s\n",
                built->smg.dim(a.dim).name.c_str(),
                static_cast<long long>(built->smg.dim(a.dim).extent), DimClassName(a.cls),
                a.SpatialSliceable() ? "[spatially sliceable]" : "");
  }

  // Step 2: spatial slicing.
  std::vector<DimId> spatial = SpatialSlicer::GetDims(built->smg);
  std::printf("\nspatial dims:");
  for (DimId d : spatial) {
    std::printf(" %s", built->smg.dim(d).name.c_str());
  }
  std::printf("\n");

  // Step 3: temporal slicing with Update-then-Aggregate.
  auto choice = TemporalSlicer::GetPriorDim(mha, *built, spatial);
  if (choice.ok()) {
    std::printf("temporal dim: %s (priority by data volume)\n",
                built->smg.dim(choice->dim).name.c_str());
    std::printf("\n== Derived update functions ==\n%s\n", choice->plan.ToString(mha).c_str());
  }

  // Step 4: compile and sweep sequence lengths against FlashAttention.
  std::printf("== Sequence-length sweep (batch 32, A100, simulated) ==\n");
  std::printf("  %-8s %14s %14s %14s\n", "seq", "SpaceFusion", "FlashAttn2", "PyTorch");
  auto fa2 = MakeFlashAttention2();
  auto pytorch = MakePyTorchBaseline();
  for (std::int64_t seq : {256, 512, 1024, 2048, 4096}) {
    Graph g = BuildMha(32 * 12, seq, seq, 64);
    auto sf = EstimateGraphWithSpaceFusion(g, arch);
    auto fa = EstimateGraphWithBaseline(g, *fa2, arch);
    auto pt = EstimateGraphWithBaseline(g, *pytorch, arch);
    std::printf("  %-8lld %11.1f us %11.1f us %11.1f us\n", static_cast<long long>(seq),
                sf.ok() ? sf->time_us : -1.0, fa ? fa->time_us : -1.0,
                pt ? pt->time_us : -1.0);
  }
  return 0;
}
