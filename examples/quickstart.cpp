// Quickstart: compile a fused multi-head attention subgraph with
// SpaceFusion, inspect the Space-Mapping Graph and the generated schedule,
// validate the fused numerics against the unfused reference, and estimate
// the speedup on an A100.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "src/codegen/triton_codegen.h"
#include "src/core/spacefusion.h"
#include "src/support/logging.h"

int main() {
  using namespace spacefusion;
  SetLogThreshold(LogLevel::kWarning);

  // 1. Build the operator graph: per-head attention, 12 heads, seq 512.
  Graph mha = BuildMha(/*batch_heads=*/12, /*seq_q=*/512, /*seq_kv=*/512, /*head_dim=*/64);
  std::printf("== Operator graph ==\n%s\n\n", mha.ToString().c_str());

  // 2. Compile with SpaceFusion for an A100.
  GpuArch arch = AmpereA100();
  Compiler compiler{CompileOptions(arch)};
  StatusOr<CompiledSubprogram> compiled = compiler.Compile(mha);
  if (!compiled.ok()) {
    std::printf("compilation failed: %s\n", compiled.status().ToString().c_str());
    return 1;
  }

  std::printf("== Fused SMG ==\n%s\n",
              compiled->program.kernels[0].built.smg.ToString().c_str());
  std::printf("== Schedule ==\n%s\n", compiled->program.kernels[0].ToString().c_str());
  std::printf("\n== Update functions (Update-then-Aggregate) ==\n%s\n",
              compiled->program.kernels[0].plan.ToString(mha).c_str());

  // 3. Validate: run the fused schedule and compare with the reference.
  TensorEnv inputs = MakeGraphInputs(mha, /*seed=*/1);
  TensorEnv reference = inputs;
  RunReference(mha, &reference);
  TensorEnv outputs;
  Status st = RunScheduledProgram(compiled->program, mha, inputs, &outputs);
  if (!st.ok()) {
    std::printf("execution failed: %s\n", st.ToString().c_str());
    return 1;
  }
  TensorId out = mha.OutputIds()[0];
  std::printf("max relative error vs reference: %.2e\n",
              MaxRelDiff(outputs[static_cast<size_t>(out)],
                         reference[static_cast<size_t>(out)]));

  // 4. Compare against baselines on the simulator.
  std::printf("\n== Simulated performance on %s ==\n", arch.name.c_str());
  std::printf("  %-24s %10.1f us\n", "SpaceFusion (fused)", compiled->estimate.time_us);
  for (auto make : {MakePyTorchBaseline, MakeFlashAttention2}) {
    auto baseline = make();
    auto report = EstimateGraphWithBaseline(mha, *baseline, arch);
    if (report) {
      std::printf("  %-24s %10.1f us  (%.2fx vs SpaceFusion)\n", baseline->name().c_str(),
                  report->time_us, report->time_us / compiled->estimate.time_us);
    }
  }

  // 5. Show the generated Triton kernel.
  std::printf("\n== Generated kernel ==\n%s\n",
              EmitTritonKernel(compiled->program.kernels[0]).c_str());
  return 0;
}
