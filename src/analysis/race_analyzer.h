// Static race/alias analysis over lowered schedules and memory plans.
//
// A compiled SmgSchedule is a claim that its grid blocks can run
// concurrently without racing on shared buffers. This analyzer checks that
// claim symbolically: for every buffer the memory plan leaves in a level
// shared between blocks (kGlobal / kGlobalStreamed), it derives each
// accessing op's per-block footprint from the spatial slicing — along a
// block-parallel dim an access is either confined to the block's tile
// (the accessor's iteration space and the buffer both extend along the dim)
// or covers the full extent — and proves every cross-block write pair
// disjoint or write-free. Footprints form a two-point lattice per axis
// (block-tile < full extent); overlap is decided per parallel dim, so the
// verdict is exact for the slicing-induced rectangular footprints the
// lowering produces, with no false negatives.
//
// Findings are reported through the existing diagnostics engine as stable
// SFV06xx codes (catalog in DESIGN.md "Static race analysis"):
//   SFV0601  write-write overlap between concurrent blocks
//   SFV0602  read-write overlap with no ordering edge between blocks
//   SFV0603  access outside the memory plan / fused space
//   SFV0604  aliased spill slots (simultaneously live tiles exceed the
//            recorded on-chip arena, so slot assignment must alias)
//
// Wired in three places: an Analyze pass at compile exit (on in
// SPACEFUSION_VERIFY=full, opt-in via SPACEFUSION_ANALYZE=phase), the
// sf-analyze / sf-verify --analyze CLIs, and the CompilerEngine's
// persistent-cache admission gate (a racy program is never stored).
#ifndef SPACEFUSION_SRC_ANALYSIS_RACE_ANALYZER_H_
#define SPACEFUSION_SRC_ANALYSIS_RACE_ANALYZER_H_

#include <string>

#include "src/graph/graph.h"
#include "src/schedule/schedule_ir.h"
#include "src/support/status.h"
#include "src/verify/diagnostics.h"

namespace spacefusion {

// Whether the compiler runs the race analyzer at compile exit.
//   kOff    only when SPACEFUSION_VERIFY=full;
//   kPhase  on every compile, after the program is chosen.
// Analysis never changes the compiled program, so the mode is deliberately
// excluded from CompileOptionsDigest (cache keys match with it on or off).
enum class AnalyzeMode { kOff, kPhase };

const char* AnalyzeModeName(AnalyzeMode mode);

// Parses "off" / "phase" (case-sensitive; "on" is accepted as "phase").
StatusOr<AnalyzeMode> ParseAnalyzeMode(const std::string& text);

// Reads SPACEFUSION_ANALYZE from the environment; unset or empty yields
// `fallback`, unparsable values warn once and yield `fallback`.
AnalyzeMode AnalyzeModeFromEnv(AnalyzeMode fallback = AnalyzeMode::kOff);

// SFV06xx: race/alias findings of one schedule. Appends to `report` and
// never aborts, whatever the schedule's state — malformed index tables or
// slices are reported as SFV0603 and the footprint checks are skipped
// rather than computed from garbage.
void AnalyzeSchedule(const SmgSchedule& schedule, DiagnosticReport* report);

// Analyzes every kernel of a compiled program. Kernels execute in sequence
// (only blocks within one kernel are concurrent), so no cross-kernel pairs
// are formed. `source` provides the report context.
DiagnosticReport AnalyzeCompiledProgram(const ScheduledProgram& program, const Graph& source);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_ANALYSIS_RACE_ANALYZER_H_
