#include "src/analysis/race_analyzer.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "src/schedule/memory_planner.h"
#include "src/smg/smg.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

const char* AnalyzeModeName(AnalyzeMode mode) {
  switch (mode) {
    case AnalyzeMode::kOff:
      return "off";
    case AnalyzeMode::kPhase:
      return "phase";
  }
  return "?";
}

StatusOr<AnalyzeMode> ParseAnalyzeMode(const std::string& text) {
  if (text == "off") {
    return AnalyzeMode::kOff;
  }
  if (text == "phase" || text == "on") {
    return AnalyzeMode::kPhase;
  }
  return InvalidArgument(
      StrCat("unknown analyze mode \"", text, "\" (expected off or phase)"));
}

AnalyzeMode AnalyzeModeFromEnv(AnalyzeMode fallback) {
  const char* env = std::getenv("SPACEFUSION_ANALYZE");
  if (env == nullptr || env[0] == '\0') {
    return fallback;
  }
  StatusOr<AnalyzeMode> parsed = ParseAnalyzeMode(env);
  if (!parsed.ok()) {
    SF_LOG(Warning) << "SPACEFUSION_ANALYZE: " << parsed.status().message() << "; using "
                    << AnalyzeModeName(fallback);
    return fallback;
  }
  return parsed.value();
}

namespace {

constexpr const char* kPhaseRace = "race";

// Every footprint computation below indexes through these tables, so an
// inconsistent schedule is reported once as SFV0603 and analysis stops for
// the kernel instead of reading out of bounds. Returns true when sound.
bool CheckIndexTables(const SmgSchedule& s, DiagnosticReport* report) {
  const Graph& g = s.graph;
  const Smg& smg = s.built.smg;
  const size_t num_spaces = smg.spaces().size();
  if (s.built.tensor_space.size() != g.tensors().size() ||
      s.built.op_space.size() != g.ops().size()) {
    report->AddError("SFV0603", kPhaseRace, g.name(),
                     StrCat("SMG index tables cover ", s.built.tensor_space.size(), " tensor(s) / ",
                            s.built.op_space.size(), " op(s) but the graph has ",
                            g.tensors().size(), " / ", g.ops().size(),
                            ": footprints are underivable"));
    return false;
  }
  for (SpaceId sid : s.built.tensor_space) {
    if (sid < 0 || static_cast<size_t>(sid) >= num_spaces) {
      report->AddError("SFV0603", kPhaseRace, g.name(),
                       StrCat("tensor maps to space#", sid, " outside the SMG"));
      return false;
    }
  }
  for (SpaceId sid : s.built.op_space) {
    if (sid < 0 || static_cast<size_t>(sid) >= num_spaces) {
      report->AddError("SFV0603", kPhaseRace, g.name(),
                       StrCat("op maps to space#", sid, " outside the SMG"));
      return false;
    }
  }
  for (const Space& space : smg.spaces()) {
    for (DimId d : space.dims) {
      if (d < 0 || d >= smg.num_dims()) {
        report->AddError("SFV0603", kPhaseRace, space.name,
                         StrCat("space extends along dim#", d, " outside the fused space"));
        return false;
      }
    }
  }
  for (const Op& op : g.ops()) {
    bool bad = op.output < 0 || static_cast<size_t>(op.output) >= g.tensors().size();
    for (TensorId in : op.inputs) {
      bad = bad || in < 0 || static_cast<size_t>(in) >= g.tensors().size();
    }
    if (bad) {
      report->AddError("SFV0603", kPhaseRace, op.name,
                       "op references tensors outside the graph: footprints are underivable");
      return false;
    }
  }
  return true;
}

// Validates one sliced dim; a malformed slice claims a tile window outside
// the buffer region the plan allocated. Returns false on a finding.
bool CheckSlice(const SmgSchedule& s, const DimSlice& slice, const char* which,
                DiagnosticReport* report) {
  const Smg& smg = s.built.smg;
  if (slice.dim < 0 || slice.dim >= smg.num_dims()) {
    report->AddError("SFV0603", kPhaseRace, StrCat(which, " slice"),
                     StrCat("names dim#", slice.dim, " outside the fused space"));
    return false;
  }
  const FusedDim& dim = smg.dim(slice.dim);
  if (slice.block <= 0) {
    report->AddError("SFV0603", kPhaseRace, dim.name,
                     StrCat(which, " tile of ", slice.block, " element(s) is not a window"));
    return false;
  }
  if (slice.block > dim.extent) {
    report->AddError(
        "SFV0603", kPhaseRace, dim.name,
        StrCat(which, " tile [0,", slice.block, ") extends past the planned extent ", dim.extent));
    return false;
  }
  return true;
}

// Block-parallel dims: spatially sliced dims whose slicing yields more than
// one block. Only these create concurrency; a dim with one block (or the
// serial temporal dim) orders all accesses along it.
std::vector<DimId> BlockParallelDims(const SmgSchedule& s) {
  std::vector<DimId> multi;
  for (const DimSlice& slice : s.spatial) {
    const FusedDim& dim = s.built.smg.dim(slice.dim);
    std::int64_t blocks = (dim.extent + slice.block - 1) / slice.block;
    if (blocks > 1) {
      multi.push_back(slice.dim);
    }
  }
  return multi;
}

// Tile bytes of a tensor under the schedule's slicing (the planner's rule).
std::int64_t TileBytes(const SmgSchedule& s, TensorId tensor) {
  const Space& space = s.built.smg.space(s.built.tensor_space[static_cast<size_t>(tensor)]);
  std::int64_t elems = 1;
  for (DimId d : space.dims) {
    elems *= s.TileExtent(d);
  }
  return elems * space.elem_bytes;
}

bool IsReductionSink(const SmgSchedule& s, TensorId tensor) {
  const Smg& smg = s.built.smg;
  SpaceId sid = s.built.tensor_space[static_cast<size_t>(tensor)];
  for (MappingId mid : smg.incoming(sid)) {
    if (smg.mapping(mid).kind == MappingKind::kAllToOne) {
      return true;
    }
  }
  return false;
}

// SFV0601 / SFV0602: cross-block footprint intersection on shared buffers.
void CheckBlockRaces(const SmgSchedule& s, const std::vector<DimId>& parallel_dims,
                     DiagnosticReport* report) {
  const Graph& g = s.graph;
  const Smg& smg = s.built.smg;

  // Along parallel dim d, op `o`'s access of tensor `t` is confined to the
  // block's tile iff both the buffer and the accessor's iteration space
  // extend along d; otherwise the access covers the full extent.
  auto tiled_along = [&](const Space& tensor_space, OpId o, DimId d) {
    const Space& iter = smg.space(s.built.op_space[static_cast<size_t>(o)]);
    return tensor_space.HasDim(d) && iter.HasDim(d);
  };
  // Two accesses of the same buffer from two distinct blocks overlap unless
  // some parallel dim tiles them both (then blocks differing along it are
  // disjoint, and blocks agreeing along it are separated by another dim or
  // are the same block). Returns a witness dim when a racing pair exists.
  auto conflict_dim = [&](const Space& tensor_space, OpId a, OpId b) -> DimId {
    for (DimId d : parallel_dims) {
      if (!tiled_along(tensor_space, a, d) || !tiled_along(tensor_space, b, d)) {
        return d;
      }
    }
    return kNoDim;
  };

  for (const TensorInfo& t : g.tensors()) {
    MemLevel level = s.memory.tensor_level[static_cast<size_t>(t.id)];
    if (level != MemLevel::kGlobal && level != MemLevel::kGlobalStreamed) {
      continue;  // per-block private (registers / shared memory): no sharing
    }
    OpId writer = g.producer(t.id);
    if (writer < 0) {
      continue;  // read-only boundary buffer: reads never conflict
    }
    const Space& tensor_space = smg.space(s.built.tensor_space[static_cast<size_t>(t.id)]);

    // Write-write: the producing op runs in every block; its own footprints
    // must be pairwise disjoint across blocks.
    DimId ww = conflict_dim(tensor_space, writer, writer);
    if (ww != kNoDim) {
      report->AddError(
          "SFV0601", kPhaseRace, t.name,
          StrCat("op ", g.op(writer).name, " writes ", MemLevelName(level), " buffer ", t.name,
                 " from concurrent blocks with overlapping ranges along parallel dim ",
                 smg.dim(ww).name, " (write-write race)"));
    }

    // Read-write: every consumer in one block against the producer in
    // another. Blocks of one kernel are mutually unordered — there is no
    // ordering edge that could sequence the pair.
    for (OpId reader : g.consumers(t.id)) {
      DimId rw = conflict_dim(tensor_space, reader, writer);
      if (rw != kNoDim) {
        report->AddError(
            "SFV0602", kPhaseRace, t.name,
            StrCat("op ", g.op(reader).name, " reads ", MemLevelName(level), " buffer ", t.name,
                   " while op ", g.op(writer).name,
                   " writes it from a concurrent block, overlapping along parallel dim ",
                   smg.dim(rw).name, " with no ordering edge (read-write race)"));
        break;  // one finding per buffer
      }
    }
  }
}

// SFV0604: simultaneously live on-chip tiles vs. the recorded arena. The
// planner sizes the per-block shared/register arenas to the liveness peak;
// slot assignment packs live tiles into that arena. This recomputes the
// exact peak (sum of live tile bytes, mirroring the planner's liveness
// pass — deliberately not a first-fit simulation, whose fragmentation
// could exceed the peak on legal plans) from the *recorded* levels; if it
// exceeds the recorded arena, two live tiles must share slots.
void CheckSpillSlotAliasing(const SmgSchedule& s, DiagnosticReport* report) {
  const Graph& g = s.graph;
  constexpr std::int64_t kTransientRegisterBytes = 2048;  // planner's charge

  struct LiveTile {
    TensorId tensor;
    int start;
    int end;
    std::int64_t bytes;
    bool shared;  // kShared (vs. kRegister)
  };
  std::vector<LiveTile> tiles;
  const int num_ops = static_cast<int>(g.ops().size());
  for (const TensorInfo& t : g.tensors()) {
    MemLevel level = s.memory.tensor_level[static_cast<size_t>(t.id)];
    if ((level != MemLevel::kShared && level != MemLevel::kRegister) ||
        t.kind == TensorKind::kConstant) {
      continue;
    }
    std::int64_t elems =
        TileBytes(s, t.id) / std::max<std::int64_t>(1, DTypeSize(t.dtype));
    std::int64_t bytes = elems * OnChipElemBytes(level, DTypeSize(t.dtype));
    if (level == MemLevel::kRegister && !IsReductionSink(s, t.id)) {
      bytes = std::min(bytes, kTransientRegisterBytes);
    }
    const std::vector<OpId>& consumers = g.consumers(t.id);
    int start = 0;
    OpId prod = g.producer(t.id);
    if (prod >= 0) {
      start = prod;
    } else if (!consumers.empty()) {
      start = *std::min_element(consumers.begin(), consumers.end());
    }
    int end = num_ops;
    if (!consumers.empty() && t.kind != TensorKind::kOutput) {
      end = *std::max_element(consumers.begin(), consumers.end()) + 1;
    }
    tiles.push_back({t.id, start, end, bytes, level == MemLevel::kShared});
  }

  auto check_level = [&](bool shared, std::int64_t arena, const char* level_name) {
    std::vector<std::int64_t> delta(static_cast<size_t>(num_ops) + 2, 0);
    for (const LiveTile& tile : tiles) {
      if (tile.shared != shared) {
        continue;
      }
      delta[static_cast<size_t>(tile.start)] += tile.bytes;
      delta[static_cast<size_t>(tile.end)] -= tile.bytes;
    }
    std::int64_t live = 0;
    for (int i = 0; i < static_cast<int>(delta.size()); ++i) {
      live += delta[static_cast<size_t>(i)];
      if (live <= arena) {
        continue;
      }
      // First op index where the live set no longer fits: name two of the
      // tiles that must alias.
      std::vector<std::string> names;
      for (const LiveTile& tile : tiles) {
        if (tile.shared == shared && tile.start <= i && i < tile.end) {
          names.push_back(g.tensor(tile.tensor).name);
          if (names.size() == 2) {
            break;
          }
        }
      }
      report->AddError(
          "SFV0604", kPhaseRace, names.empty() ? std::string(level_name) : names.front(),
          StrCat(live, " byte(s) of ", level_name, " tiles are simultaneously live (",
                 StrJoin(names, ", "), ") but the recorded arena is ", arena,
                 " byte(s): spill-slot assignment must alias live tiles"));
      return;  // one finding per level
    }
  };
  check_level(/*shared=*/true, s.memory.smem_bytes, "shared-memory");
  check_level(/*shared=*/false, s.memory.reg_bytes, "register");
}

}  // namespace

void AnalyzeSchedule(const SmgSchedule& schedule, DiagnosticReport* report) {
  const Graph& g = schedule.graph;
  if (!CheckIndexTables(schedule, report)) {
    return;
  }
  bool slices_sound = true;
  for (const DimSlice& slice : schedule.spatial) {
    slices_sound = CheckSlice(schedule, slice, "spatial", report) && slices_sound;
  }
  if (schedule.has_temporal) {
    slices_sound = CheckSlice(schedule, schedule.temporal, "temporal", report) && slices_sound;
  }
  // Writes into read-only boundary buffers sit outside the writable plan
  // region whatever the slicing; report them even when slices are broken.
  for (const Op& op : g.ops()) {
    TensorKind kind = g.tensor(op.output).kind;
    if (kind == TensorKind::kInput || kind == TensorKind::kWeight ||
        kind == TensorKind::kConstant) {
      report->AddError("SFV0603", kPhaseRace, g.tensor(op.output).name,
                       StrCat("op ", op.name, " writes read-only ", TensorKindName(kind),
                              " buffer outside the writable plan region"));
    }
  }
  if (schedule.memory.tensor_level.size() != g.tensors().size()) {
    report->AddError("SFV0603", kPhaseRace, g.name(),
                     StrCat("memory plan places ", schedule.memory.tensor_level.size(), " of ",
                            g.tensors().size(), " tensor(s): accesses fall outside the plan"));
    return;
  }
  if (!slices_sound) {
    return;  // tile windows unreliable: footprint checks would be garbage
  }
  CheckBlockRaces(schedule, BlockParallelDims(schedule), report);
  CheckSpillSlotAliasing(schedule, report);
}

DiagnosticReport AnalyzeCompiledProgram(const ScheduledProgram& program, const Graph& source) {
  DiagnosticReport report;
  for (const SmgSchedule& kernel : program.kernels) {
    report.SetContext(kernel.graph.name());
    AnalyzeSchedule(kernel, &report);
  }
  report.SetContext(source.name());
  return report;
}

}  // namespace spacefusion
