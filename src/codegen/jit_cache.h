// Persistent JIT kernel cache: compiles emitted C++ kernels with the host
// toolchain into shared objects and dlopens them.
//
// Entries are content-addressed: the cache key mixes the kernel key (itself
// a hash of the emitted source, the codegen options digest, and the emitter
// version) with the compiler command and flags, so a toolchain or flag
// change can never serve a stale binary. On-disk layout, next to the
// engine's .sfpc program cache:
//
//   <dir>/<16-hex-key>.sfk.so    the compiled kernel
//   <dir>/<16-hex-key>.sfk.cc    the source it was built from (debugging)
//
// Lookup ladder per kernel: in-memory handle -> dlopen of the on-disk .so
// -> toolchain build (unless allow_compile is off). A .so that fails to
// dlopen or lacks the expected symbol is *corrupt*: it is counted
// (jit.cache.corrupt), unlinked, and rebuilt — callers that cannot rebuild
// fall back to the interpreter, never crash.
#ifndef SPACEFUSION_SRC_CODEGEN_JIT_CACHE_H_
#define SPACEFUSION_SRC_CODEGEN_JIT_CACHE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/codegen/cpp_codegen.h"
#include "src/support/status.h"
#include "src/support/thread_annotations.h"

namespace spacefusion {

// The kernel cache directory configured in the environment:
// SPACEFUSION_KERNEL_CACHE_DIR if set, else "<SPACEFUSION_CACHE_DIR>/kernels"
// if the program cache dir is set, else "" (per-process temp directory).
std::string KernelCacheDirFromEnv();

struct JitCacheOptions {
  // Cache directory; "" uses a per-process directory under the system temp
  // dir (kernels persist for the process lifetime only).
  std::string dir;
  // Host compiler command; "" uses $SPACEFUSION_CXX, else "c++".
  std::string compiler;
  // Compile flags. -ffp-contract=off keeps the JIT-compiled kernels from
  // contracting a*b+c into fma, which would break bit-parity with the
  // separately compiled interpreter.
  std::string flags = "-O3 -std=c++17 -fPIC -shared -ffp-contract=off";
  // When false, a kernel that is not already on disk is a NotFound error
  // instead of a toolchain invocation (callers then fall back to the
  // interpreter). Serving can use this to bound tail latency.
  bool allow_compile = true;
  // Keep the .sfk.cc source next to the .so for inspection.
  bool keep_sources = true;
};

class JitKernelCache {
 public:
  struct Stats {
    std::int64_t memory_hits = 0;  // served from the in-process handle map
    std::int64_t disk_hits = 0;    // dlopened a previously built .so
    std::int64_t builds = 0;       // toolchain invocations that succeeded
    std::int64_t corrupt = 0;      // undlopenable / symbol-less entries
    std::int64_t failures = 0;     // builds or loads that errored
    double build_ms = 0.0;         // cumulative wall time inside the toolchain
    // Every time the host compiler ran, successful or not. The CI serve
    // step asserts this stays 0 on a warm restart.
    std::int64_t toolchain_invocations = 0;
  };

  // A loaded, callable kernel.
  struct Kernel {
    CppKernelFn fn = nullptr;
    std::int64_t scratch_floats = 0;
    std::uint64_t key = 0;    // cache entry key (kernel key x toolchain)
    bool built = false;       // this call invoked the toolchain
    bool from_disk = false;   // this call dlopened a prebuilt entry
  };

  explicit JitKernelCache(JitCacheOptions options = JitCacheOptions());
  ~JitKernelCache();

  JitKernelCache(const JitKernelCache&) = delete;
  JitKernelCache& operator=(const JitKernelCache&) = delete;

  // Returns the callable for `kernel`, building and/or loading it as
  // needed. Thread-safe; concurrent requests for the same kernel build it
  // once.
  StatusOr<Kernel> GetOrBuild(const CppKernel& kernel);

  Stats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  struct Loaded {
    void* handle = nullptr;
    CppKernelFn fn = nullptr;
    std::int64_t scratch_floats = 0;
  };

  std::uint64_t EntryKey(const CppKernel& kernel) const;
  std::string EntryPath(std::uint64_t entry_key, const char* ext) const;
  // Compile kernel.source into `so_path`. Returns the toolchain wall time.
  StatusOr<double> Build(const CppKernel& kernel, const std::string& so_path)
      SF_REQUIRES(mu_);

  JitCacheOptions options_;
  std::string dir_;       // resolved cache directory
  std::string compiler_;  // resolved compiler command

  mutable Mutex mu_;
  std::map<std::uint64_t, Loaded> loaded_ SF_GUARDED_BY(mu_);
  Stats stats_ SF_GUARDED_BY(mu_);
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_CODEGEN_JIT_CACHE_H_
