// C++ kernel emission. The emitted code mirrors the schedule interpreter
// (src/exec/schedule_executor.cc) and the reference tensor kernels
// (src/tensor/tensor_ops.cc) operation for operation: same scalar formulas,
// same accumulation order, same temporal intra-block structure. Any change
// to either of those files that affects evaluation order must be reflected
// here (and bumps kEmitterVersion so cached shared objects self-invalidate).
#include "src/codegen/cpp_codegen.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/support/binary_io.h"
#include "src/support/logging.h"

namespace spacefusion {

std::uint64_t CppCodegenOptionsDigest(const CppCodegenOptions& options) {
  std::string blob = "sfcpp-options-v1|";
  blob += options.emit_comments ? "c1|" : "c0|";
  blob += options.fuse_elementwise ? "f1|" : "f0|";
  blob += options.reference_mode ? "r1" : "r0";
  return Fnv1a64(blob);
}

namespace {

// Emitter revision: mixed into every kernel key so stale cached .so files
// from an older emitter can never be served for a new emission scheme.
constexpr const char* kEmitterVersion = "sfcpp-v1";

std::string I64(std::int64_t v) { return std::to_string(v); }

std::vector<std::int64_t> RowMajorStrides(const std::vector<std::int64_t>& dims) {
  std::vector<std::int64_t> strides(dims.size(), 1);
  for (int i = static_cast<int>(dims.size()) - 2; i >= 0; --i) {
    strides[static_cast<size_t>(i)] =
        strides[static_cast<size_t>(i) + 1] * dims[static_cast<size_t>(i) + 1];
  }
  return strides;
}

std::int64_t Volume(const std::vector<std::int64_t>& dims) {
  std::int64_t v = 1;
  for (std::int64_t d : dims) {
    v *= d;
  }
  return v;
}

// How to address one tensor (or running buffer) inside the current pass:
// logical dims in the pass's frame plus the storage strides (which differ
// from the compact strides when a boundary tensor is read in place through
// a temporal-slice base offset).
struct Layout {
  std::string base;
  std::string base_offset;  // "" or "s0 * <stride>"
  std::vector<std::int64_t> dims;
  std::vector<std::int64_t> strides;
};

class CppEmitter {
 public:
  CppEmitter(const SmgSchedule& schedule, const CppCodegenOptions& options)
      : s_(schedule), g_(schedule.graph), opt_(options) {}

  StatusOr<CppKernel> Emit();

 private:
  // ---- planning ----
  void PlanAbi();
  void PlanInline();
  void PlanBuffers();
  void Alloc(const std::string& name, std::int64_t floats);

  const ReductionAggregation* AggOf(OpId op) const {
    auto it = agg_of_.find(op);
    return it == agg_of_.end() ? nullptr : it->second;
  }
  bool IsBoundary(TensorId t) const {
    TensorKind k = g_.tensor(t).kind;
    return k == TensorKind::kInput || k == TensorKind::kWeight || k == TensorKind::kConstant;
  }
  // Axis of `t` along the temporal dim (-1 when not temporally sliced).
  int TAxis(TensorId t) const { return temporal_ ? s_.built.AxisOfDim(t, tdim_) : -1; }
  bool IsStreamedOutput(TensorId t) const {
    return temporal_ && g_.tensor(t).kind == TensorKind::kOutput && TAxis(t) >= 0;
  }
  // Dims of `t` in the current pass's frame: the full shape with the
  // temporal axis (if any) replaced by the pass width.
  std::vector<std::int64_t> SliceDims(TensorId t, std::int64_t width) const;
  Layout ReadLayout(TensorId t, std::int64_t width) const;
  // Where the running reduction of `op` publishes to consumers.
  Layout PublishedLayout(OpId op) const;
  Layout FullLayout(const std::string& base, const std::vector<std::int64_t>& dims) const;

  // ---- emission ----
  void Line(const std::string& text);
  void Comment(const std::string& text);
  std::string NewVar(const char* stem);
  std::string Idx(const Layout& lay, const std::vector<std::string>& coords) const;
  int OpenLoops(const std::vector<std::int64_t>& dims, std::vector<std::string>* coords);
  void CloseLoops(int opened);
  std::vector<std::string> MapCoords(const std::vector<std::int64_t>& from_dims,
                                     const std::vector<std::string>& coords,
                                     const std::vector<std::int64_t>& to_dims) const;

  std::string EmitLoad(TensorId t, const std::vector<std::string>& coords, std::int64_t width);
  std::string EmitLoadMapped(TensorId t, const std::vector<std::int64_t>& frame,
                             const std::vector<std::string>& coords, std::int64_t width);
  std::string EmitScalarOp(const Op& op, const std::vector<std::int64_t>& frame,
                           const std::vector<std::string>& coords, std::int64_t width);

  Status EmitOp(const Op& op, std::int64_t width);
  void EmitElementwise(const Op& op, std::int64_t width);
  void EmitReduceTo(const Op& op, ReduceKind kind, const Layout& out, std::int64_t width);
  Status EmitMatMulTo(const Op& op, const Layout& out, std::int64_t width);
  Status EmitAggregated(const Op& op, const ReductionAggregation& agg, std::int64_t width);
  void EmitStreamCopy(TensorId t, std::int64_t width);
  Status EmitBlockBody(std::int64_t width);
  void EmitCopy(const Layout& dst, const Layout& src);

  const SmgSchedule& s_;
  const Graph& g_;
  CppCodegenOptions opt_;

  bool temporal_ = false;
  DimId tdim_ = kNoDim;
  std::int64_t extent_ = 0;
  std::int64_t step_ = 0;

  std::map<OpId, const ReductionAggregation*> agg_of_;
  std::set<OpId> factor_sources_;
  std::vector<bool> inlined_;
  std::vector<int> abi_in_;   // per TensorId: in[] slot or -1
  std::vector<int> abi_out_;  // per TensorId: out[] slot or -1
  std::vector<TensorId> input_ids_;
  std::vector<TensorId> output_ids_;

  std::vector<std::pair<std::string, std::int64_t>> scratch_bufs_;  // (name, offset)
  std::int64_t scratch_floats_ = 0;

  std::string body_;
  int indent_ = 1;
  int var_counter_ = 0;
};

std::vector<std::int64_t> CppEmitter::SliceDims(TensorId t, std::int64_t width) const {
  std::vector<std::int64_t> dims = g_.tensor(t).shape.dims();
  int axis = TAxis(t);
  if (axis >= 0) {
    dims[static_cast<size_t>(axis)] = width;
  }
  return dims;
}

Layout CppEmitter::FullLayout(const std::string& base,
                              const std::vector<std::int64_t>& dims) const {
  Layout lay;
  lay.base = base;
  lay.dims = dims;
  lay.strides = RowMajorStrides(dims);
  return lay;
}

Layout CppEmitter::PublishedLayout(OpId op) const {
  const ReductionAggregation* agg = AggOf(op);
  SF_CHECK(agg != nullptr);
  const std::string base =
      (agg->finalize_divide_by_extent ? "pub_o" : "acc_o") + I64(op);
  return FullLayout(base, g_.tensor(g_.op(op).output).shape.dims());
}

Layout CppEmitter::ReadLayout(TensorId t, std::int64_t width) const {
  const TensorInfo& info = g_.tensor(t);
  if (IsBoundary(t)) {
    // Boundary tensors are read in place: slice dims, full-shape strides,
    // and a temporal base offset instead of a materialized slice copy.
    Layout lay;
    lay.base = "i_t" + I64(t);
    lay.dims = SliceDims(t, width);
    lay.strides = RowMajorStrides(info.shape.dims());
    int axis = TAxis(t);
    if (axis >= 0) {
      lay.base_offset = "s0 * " + I64(lay.strides[static_cast<size_t>(axis)]);
    }
    return lay;
  }
  OpId producer = g_.producer(t);
  if (temporal_ && AggOf(producer) != nullptr) {
    return PublishedLayout(producer);
  }
  if (!temporal_ && info.kind == TensorKind::kOutput) {
    return FullLayout("o_t" + I64(t), info.shape.dims());
  }
  return FullLayout("s_t" + I64(t), SliceDims(t, width));
}

void CppEmitter::PlanAbi() {
  abi_in_.assign(g_.tensors().size(), -1);
  abi_out_.assign(g_.tensors().size(), -1);
  for (const TensorInfo& t : g_.tensors()) {
    if (IsBoundary(t.id)) {
      abi_in_[static_cast<size_t>(t.id)] = static_cast<int>(input_ids_.size());
      input_ids_.push_back(t.id);
    } else if (t.kind == TensorKind::kOutput) {
      abi_out_[static_cast<size_t>(t.id)] = static_cast<int>(output_ids_.size());
      output_ids_.push_back(t.id);
    }
  }
}

void CppEmitter::PlanInline() {
  inlined_.assign(g_.tensors().size(), false);
  if (!opt_.fuse_elementwise || opt_.reference_mode) {
    return;
  }
  for (const Op& op : g_.ops()) {
    if (op.kind != OpKind::kUnary && op.kind != OpKind::kBinary) {
      continue;
    }
    const TensorInfo& out = g_.tensor(op.output);
    if (out.kind != TensorKind::kIntermediate) {
      continue;
    }
    const std::vector<OpId>& consumers = g_.consumers(op.output);
    if (consumers.size() != 1) {
      continue;
    }
    const Op& consumer = g_.op(consumers[0]);
    int reads = 0;
    for (TensorId in : consumer.inputs) {
      if (in == op.output) {
        ++reads;
      }
    }
    if (reads != 1) {
      continue;
    }
    // Inlining is legal only when the consumer evaluates every element of
    // this input exactly once: unary and reduce always do; binary does
    // unless broadcasting replays the element; matmul never does.
    bool once = false;
    switch (consumer.kind) {
      case OpKind::kUnary:
      case OpKind::kReduce:
        once = true;
        break;
      case OpKind::kBinary:
        once = g_.tensor(consumer.output).shape == out.shape;
        break;
      case OpKind::kMatMul:
        once = false;
        break;
    }
    if (once) {
      inlined_[static_cast<size_t>(op.output)] = true;
    }
  }
}

void CppEmitter::Alloc(const std::string& name, std::int64_t floats) {
  scratch_floats_ = (scratch_floats_ + 15) & ~static_cast<std::int64_t>(15);
  scratch_bufs_.emplace_back(name, scratch_floats_);
  scratch_floats_ += std::max<std::int64_t>(floats, 1);
}

void CppEmitter::PlanBuffers() {
  for (const Op& op : g_.ops()) {
    const ReductionAggregation* agg = temporal_ ? AggOf(op.id) : nullptr;
    if (agg != nullptr) {
      const std::int64_t vol = g_.tensor(op.output).shape.volume();
      Alloc("acc_o" + I64(op.id), vol);
      Alloc("loc_o" + I64(op.id), vol);
      if (agg->finalize_divide_by_extent) {
        Alloc("pub_o" + I64(op.id), vol);
      }
      if (factor_sources_.count(op.id) > 0) {
        Alloc("old_o" + I64(op.id), vol);
      }
      continue;
    }
    TensorId t = op.output;
    if (inlined_[static_cast<size_t>(t)]) {
      continue;
    }
    if (!temporal_ && g_.tensor(t).kind == TensorKind::kOutput) {
      continue;  // written straight into out[]
    }
    Alloc("s_t" + I64(t), Volume(SliceDims(t, step_)));
  }
}

void CppEmitter::Line(const std::string& text) {
  body_.append(static_cast<size_t>(indent_) * 2, ' ');
  body_ += text;
  body_ += '\n';
}

void CppEmitter::Comment(const std::string& text) {
  if (opt_.emit_comments) {
    Line("// " + text);
  }
}

std::string CppEmitter::NewVar(const char* stem) { return stem + I64(var_counter_++); }

std::string CppEmitter::Idx(const Layout& lay, const std::vector<std::string>& coords) const {
  SF_CHECK_EQ(coords.size(), lay.dims.size());
  std::string off;
  auto add = [&off](const std::string& term) {
    if (!off.empty()) {
      off += " + ";
    }
    off += term;
  };
  if (!lay.base_offset.empty()) {
    add(lay.base_offset);
  }
  for (size_t a = 0; a < coords.size(); ++a) {
    if (coords[a] == "0") {
      continue;
    }
    add(lay.strides[a] == 1 ? coords[a] : coords[a] + " * " + I64(lay.strides[a]));
  }
  if (off.empty()) {
    off = "0";
  }
  return lay.base + "[" + off + "]";
}

int CppEmitter::OpenLoops(const std::vector<std::int64_t>& dims,
                          std::vector<std::string>* coords) {
  int opened = 0;
  for (std::int64_t d : dims) {
    if (d == 1) {
      coords->push_back("0");
      continue;
    }
    std::string v = NewVar("i");
    Line("for (std::int64_t " + v + " = 0; " + v + " < " + I64(d) + "; ++" + v + ") {");
    ++indent_;
    ++opened;
    coords->push_back(v);
  }
  return opened;
}

void CppEmitter::CloseLoops(int opened) {
  for (int i = 0; i < opened; ++i) {
    --indent_;
    Line("}");
  }
}

std::vector<std::string> CppEmitter::MapCoords(const std::vector<std::int64_t>& from_dims,
                                               const std::vector<std::string>& coords,
                                               const std::vector<std::int64_t>& to_dims) const {
  // Numpy-style right-aligned broadcast: extent-1 axes pin to 0.
  const int shift = static_cast<int>(from_dims.size()) - static_cast<int>(to_dims.size());
  SF_CHECK_GE(shift, 0);
  std::vector<std::string> mapped(to_dims.size());
  for (size_t a = 0; a < to_dims.size(); ++a) {
    mapped[a] = to_dims[a] == 1 ? "0" : coords[a + static_cast<size_t>(shift)];
  }
  return mapped;
}

std::string CppEmitter::EmitLoad(TensorId t, const std::vector<std::string>& coords,
                                 std::int64_t width) {
  if (inlined_[static_cast<size_t>(t)]) {
    return EmitScalarOp(g_.op(g_.producer(t)), SliceDims(t, width), coords, width);
  }
  Layout lay = ReadLayout(t, width);
  std::string v = NewVar("v");
  Line("const float " + v + " = " + Idx(lay, coords) + ";");
  return v;
}

std::string CppEmitter::EmitLoadMapped(TensorId t, const std::vector<std::int64_t>& frame,
                                       const std::vector<std::string>& coords,
                                       std::int64_t width) {
  return EmitLoad(t, MapCoords(frame, coords, SliceDims(t, width)), width);
}

namespace detail {

std::string UnaryExpr(UnaryKind kind, const std::string& x) {
  switch (kind) {
    case UnaryKind::kExp:
      return "std::exp(" + x + ")";
    case UnaryKind::kRelu:
      return "(" + x + " > 0.0f ? " + x + " : 0.0f)";
    case UnaryKind::kGelu:
      return "0.5f * " + x + " * (1.0f + std::tanh(0.7978845608f * (" + x + " + 0.044715f * " +
             x + " * " + x + " * " + x + ")))";
    case UnaryKind::kSigmoid:
      return "1.0f / (1.0f + std::exp(-" + x + "))";
    case UnaryKind::kTanh:
      return "std::tanh(" + x + ")";
    case UnaryKind::kSqrt:
      return "std::sqrt(" + x + ")";
    case UnaryKind::kRsqrt:
      return "1.0f / std::sqrt(" + x + ")";
    case UnaryKind::kNeg:
      return "-" + x;
    case UnaryKind::kSquare:
      return x + " * " + x;
    case UnaryKind::kRecip:
      return "1.0f / " + x;
  }
  return x;
}

std::string BinaryExpr(BinaryKind kind, const std::string& a, const std::string& b) {
  switch (kind) {
    case BinaryKind::kAdd:
      return a + " + " + b;
    case BinaryKind::kSub:
      return a + " - " + b;
    case BinaryKind::kMul:
      return a + " * " + b;
    case BinaryKind::kDiv:
      return a + " / " + b;
    case BinaryKind::kMax:
      return "(" + a + " > " + b + " ? " + a + " : " + b + ")";
  }
  return a;
}

}  // namespace detail

std::string CppEmitter::EmitScalarOp(const Op& op, const std::vector<std::int64_t>& frame,
                                     const std::vector<std::string>& coords,
                                     std::int64_t width) {
  std::string r = NewVar("v");
  if (op.kind == OpKind::kUnary) {
    std::string x = EmitLoadMapped(op.inputs[0], frame, coords, width);
    Line("const float " + r + " = " + detail::UnaryExpr(op.attrs.unary, x) + ";");
  } else {
    SF_CHECK(op.kind == OpKind::kBinary);
    std::string a = EmitLoadMapped(op.inputs[0], frame, coords, width);
    std::string b = EmitLoadMapped(op.inputs[1], frame, coords, width);
    Line("const float " + r + " = " + detail::BinaryExpr(op.attrs.binary, a, b) + ";");
  }
  return r;
}

void CppEmitter::EmitElementwise(const Op& op, std::int64_t width) {
  Layout out = ReadLayout(op.output, width);
  std::vector<std::string> coords;
  int opened = OpenLoops(out.dims, &coords);
  std::string v = EmitScalarOp(op, out.dims, coords, width);
  Line(Idx(out, coords) + " = " + v + ";");
  CloseLoops(opened);
}

void CppEmitter::EmitReduceTo(const Op& op, ReduceKind kind, const Layout& out,
                              std::int64_t width) {
  TensorId in = op.inputs[0];
  const std::vector<std::int64_t> in_dims = SliceDims(in, width);
  SF_CHECK_GE(in_dims.size(), 1u);
  const std::int64_t last = in_dims.back();
  std::vector<std::int64_t> outer(in_dims.begin(), in_dims.end() - 1);

  std::vector<std::string> coords;
  int opened = OpenLoops(outer, &coords);
  std::string acc = NewVar("acc");
  Line("float " + acc + " = " +
       (kind == ReduceKind::kMax ? "-std::numeric_limits<float>::infinity()" : "0.0f") + ";");
  std::string r = NewVar("r");
  Line("for (std::int64_t " + r + " = 0; " + r + " < " + I64(last) + "; ++" + r + ") {");
  ++indent_;
  std::vector<std::string> in_coords = coords;
  in_coords.push_back(r);
  std::string x = EmitLoad(in, in_coords, width);
  if (kind == ReduceKind::kMax) {
    Line(acc + " = std::max(" + acc + ", " + x + ");");
  } else {
    Line(acc + " += " + x + ";");
  }
  --indent_;
  Line("}");
  if (kind == ReduceKind::kMean) {
    Line(acc + " /= static_cast<float>(" + I64(last) + ");");
  }
  std::vector<std::string> out_coords = coords;
  out_coords.push_back("0");
  Line(Idx(out, out_coords) + " = " + acc + ";");
  CloseLoops(opened);
}

Status CppEmitter::EmitMatMulTo(const Op& op, const Layout& out, std::int64_t width) {
  Layout a = ReadLayout(op.inputs[0], width);
  Layout b = ReadLayout(op.inputs[1], width);
  const bool tra = op.attrs.transpose_a;
  const bool trb = op.attrs.transpose_b;
  const int ra = static_cast<int>(a.dims.size());
  const int rb = static_cast<int>(b.dims.size());
  const int ro = static_cast<int>(out.dims.size());
  if (ra < 2 || rb < 2 || ro < 2) {
    return Internal("cpp_codegen: matmul operand rank < 2");
  }
  const std::int64_t m = tra ? a.dims[static_cast<size_t>(ra - 1)] : a.dims[static_cast<size_t>(ra - 2)];
  const std::int64_t k = tra ? a.dims[static_cast<size_t>(ra - 2)] : a.dims[static_cast<size_t>(ra - 1)];
  const std::int64_t n = trb ? b.dims[static_cast<size_t>(rb - 2)] : b.dims[static_cast<size_t>(rb - 1)];

  // Index helper: batch coords (right-aligned, broadcast) + matrix coords.
  auto elem = [&](const Layout& lay, int rank, const std::vector<std::string>& batch,
                  const std::string& row, const std::string& col) {
    std::vector<std::string> cs(static_cast<size_t>(rank));
    const int nbatch = rank - 2;
    const int shift = (ro - 2) - nbatch;
    for (int ax = 0; ax < nbatch; ++ax) {
      cs[static_cast<size_t>(ax)] =
          lay.dims[static_cast<size_t>(ax)] == 1 ? "0" : batch[static_cast<size_t>(ax + shift)];
    }
    cs[static_cast<size_t>(rank - 2)] = row;
    cs[static_cast<size_t>(rank - 1)] = col;
    return Idx(lay, cs);
  };

  std::vector<std::int64_t> batch_dims(out.dims.begin(), out.dims.end() - 2);
  std::vector<std::string> batch;
  int opened = OpenLoops(batch_dims, &batch);

  std::string iv = NewVar("i");
  Line("for (std::int64_t " + iv + " = 0; " + iv + " < " + I64(m) + "; ++" + iv + ") {");
  ++indent_;
  auto out_elem = [&](const std::string& jv) {
    std::vector<std::string> cs = batch;
    cs.push_back(iv);
    cs.push_back(jv);
    return Idx(out, cs);
  };
  auto a_elem = [&](const std::string& kv) {
    return elem(a, ra, batch, tra ? kv : iv, tra ? iv : kv);
  };
  if (trb) {
    // B is [.., N, K]: the contraction is contiguous in both operands, so a
    // per-(i, j) dot product vectorizes cleanly. The accumulation order
    // (ascending kk from 0.0f) matches the reference MatMul exactly.
    std::string jv = NewVar("j");
    Line("for (std::int64_t " + jv + " = 0; " + jv + " < " + I64(n) + "; ++" + jv + ") {");
    ++indent_;
    std::string acc = NewVar("acc");
    Line("float " + acc + " = 0.0f;");
    std::string kv = NewVar("kk");
    Line("for (std::int64_t " + kv + " = 0; " + kv + " < " + I64(k) + "; ++" + kv + ") {");
    ++indent_;
    Line(acc + " += " + a_elem(kv) + " * " + elem(b, rb, batch, jv, kv) + ";");
    --indent_;
    Line("}");
    Line(out_elem(jv) + " = " + acc + ";");
    --indent_;
    Line("}");
  } else {
    // B is [.., K, N]: iterate kk outer and stream the contiguous N rows
    // (saxpy form). Each C[i, j] still accumulates ascending in kk from
    // 0.0f, so the result is bit-identical to the dot form.
    std::string jv0 = NewVar("j");
    Line("for (std::int64_t " + jv0 + " = 0; " + jv0 + " < " + I64(n) + "; ++" + jv0 + ") {");
    ++indent_;
    Line(out_elem(jv0) + " = 0.0f;");
    --indent_;
    Line("}");
    std::string kv = NewVar("kk");
    Line("for (std::int64_t " + kv + " = 0; " + kv + " < " + I64(k) + "; ++" + kv + ") {");
    ++indent_;
    std::string av = NewVar("v");
    Line("const float " + av + " = " + a_elem(kv) + ";");
    std::string jv = NewVar("j");
    Line("for (std::int64_t " + jv + " = 0; " + jv + " < " + I64(n) + "; ++" + jv + ") {");
    ++indent_;
    Line(out_elem(jv) + " += " + av + " * " + elem(b, rb, batch, kv, jv) + ";");
    --indent_;
    Line("}");
    --indent_;
    Line("}");
  }
  --indent_;
  Line("}");
  CloseLoops(opened);
  return Status::Ok();
}

void CppEmitter::EmitStreamCopy(TensorId t, std::int64_t width) {
  Comment("stream t" + I64(t) + " slice into the full output buffer");
  Layout src = ReadLayout(t, width);
  Layout dst;
  dst.base = "o_t" + I64(t);
  dst.dims = src.dims;
  dst.strides = RowMajorStrides(g_.tensor(t).shape.dims());
  int axis = TAxis(t);
  SF_CHECK_GE(axis, 0);
  dst.base_offset = "s0 * " + I64(dst.strides[static_cast<size_t>(axis)]);
  EmitCopy(dst, src);
}

void CppEmitter::EmitCopy(const Layout& dst, const Layout& src) {
  std::vector<std::string> coords;
  int opened = OpenLoops(src.dims, &coords);
  Line(Idx(dst, coords) + " = " + Idx(src, coords) + ";");
  CloseLoops(opened);
}

Status CppEmitter::EmitOp(const Op& op, std::int64_t width) {
  Comment("op" + I64(op.id) + " " + op.name + ": " + OpKindName(op.kind) + " -> t" +
          I64(op.output) + " " + g_.tensor(op.output).shape.ToString());
  switch (op.kind) {
    case OpKind::kUnary:
    case OpKind::kBinary:
      EmitElementwise(op, width);
      break;
    case OpKind::kReduce:
      EmitReduceTo(op, op.attrs.reduce, ReadLayout(op.output, width), width);
      break;
    case OpKind::kMatMul:
      SF_RETURN_IF_ERROR(EmitMatMulTo(op, ReadLayout(op.output, width), width));
      break;
  }
  if (IsStreamedOutput(op.output)) {
    EmitStreamCopy(op.output, width);
  }
  return Status::Ok();
}

Status CppEmitter::EmitAggregated(const Op& op, const ReductionAggregation& agg,
                                  std::int64_t width) {
  Comment("op" + I64(op.id) + " " + op.name + ": running " + OpKindName(op.kind) +
          " over the temporal dim (UTA)");
  const std::vector<std::int64_t> out_dims = g_.tensor(op.output).shape.dims();
  Layout loc = FullLayout("loc_o" + I64(op.id), out_dims);

  // Local contribution of this intra-block's slice.
  if (op.kind == OpKind::kMatMul) {
    SF_RETURN_IF_ERROR(EmitMatMulTo(op, loc, width));
  } else if (agg.finalize_divide_by_extent) {
    EmitReduceTo(op, ReduceKind::kSum, loc, width);  // raw partial sum
  } else {
    EmitReduceTo(op, op.attrs.reduce, loc, width);
  }

  // Update-then-Aggregate: rescale the old running value so it is
  // consistent with the freshest dependee reductions, then combine.
  Layout acc = FullLayout("acc_o" + I64(op.id), out_dims);
  std::vector<std::string> coords;
  int opened = OpenLoops(out_dims, &coords);
  std::string u = NewVar("u");
  Line("float " + u + " = " + Idx(acc, coords) + ";");
  for (const UpdateFactor& factor : agg.update) {
    const std::vector<std::int64_t> src_dims =
        g_.tensor(g_.op(factor.source).output).shape.dims();
    std::vector<std::string> sc = MapCoords(out_dims, coords, src_dims);
    Layout old_lay = FullLayout("old_o" + I64(factor.source), src_dims);
    Layout new_lay = PublishedLayout(factor.source);
    std::string ov = NewVar("v");
    Line("const float " + ov + " = " + Idx(old_lay, sc) + ";");
    std::string nv = NewVar("v");
    Line("const float " + nv + " = " + Idx(new_lay, sc) + ";");
    std::string mult = NewVar("mul");
    if (factor.prim == FactorPrim::kExpNeg) {
      Line("const float " + mult + " = std::exp(" + I64(factor.power) + ".0f * (" + ov +
           " - " + nv + "));");
    } else {
      std::string ratio = NewVar("rat");
      Line("const float " + ratio + " = " + nv + " / " + ov + ";");
      std::string res = NewVar("res");
      Line("float " + res + " = 1.0f;");
      const int reps = factor.power < 0 ? -factor.power : factor.power;
      for (int p = 0; p < reps; ++p) {
        Line(res + " *= " + ratio + ";");
      }
      if (factor.power < 0) {
        Line(res + " = 1.0f / " + res + ";");
      }
      Line("const float " + mult + " = " + res + ";");
    }
    Line(u + " = " + u + " * " + mult + ";");
  }
  std::string lv = NewVar("v");
  Line("const float " + lv + " = " + Idx(loc, coords) + ";");
  if (agg.combiner == ReduceOpKind::kMax) {
    Line(Idx(acc, coords) + " = (" + u + " > " + lv + " ? " + u + " : " + lv + ");");
  } else {
    Line(Idx(acc, coords) + " = " + u + " + " + lv + ";");
  }
  CloseLoops(opened);

  if (agg.finalize_divide_by_extent) {
    Comment("publish the running mean: acc * (1 / processed)");
    std::string inv = NewVar("inv");
    Line("const float " + inv + " = 1.0f / static_cast<float>(processed);");
    Layout pub = FullLayout("pub_o" + I64(op.id), out_dims);
    std::vector<std::string> pc;
    int po = OpenLoops(out_dims, &pc);
    Line(Idx(pub, pc) + " = " + Idx(acc, pc) + " * " + inv + ";");
    CloseLoops(po);
  }
  return Status::Ok();
}

Status CppEmitter::EmitBlockBody(std::int64_t width) {
  Line("(void)s0;");
  Line("processed += " + I64(width) + ";");
  // published_old snapshots live in the old_o buffers: zeroed before the
  // loop (the interpreter initializes `published` to zeros) and refreshed
  // at the end of each block body.
  for (const Op& op : g_.ops()) {
    const ReductionAggregation* agg = AggOf(op.id);
    if (agg == nullptr) {
      if (!inlined_[static_cast<size_t>(op.output)]) {
        SF_RETURN_IF_ERROR(EmitOp(op, width));
      }
      continue;
    }
    SF_RETURN_IF_ERROR(EmitAggregated(op, *agg, width));
  }
  for (OpId source : factor_sources_) {
    Comment("capture published value of op" + I64(source) + " for the next block's updates");
    EmitCopy(FullLayout("old_o" + I64(source), g_.tensor(g_.op(source).output).shape.dims()),
             PublishedLayout(source));
  }
  return Status::Ok();
}

StatusOr<CppKernel> CppEmitter::Emit() {
  temporal_ = !opt_.reference_mode && s_.has_temporal && s_.NumIntraBlocks() > 1;
  if (temporal_) {
    tdim_ = s_.temporal.dim;
    extent_ = s_.built.smg.dim(tdim_).extent;
    step_ = s_.temporal.block;
    for (const ReductionAggregation& agg : s_.plan.aggregations) {
      agg_of_[agg.op] = &agg;
      for (const UpdateFactor& factor : agg.update) {
        factor_sources_.insert(factor.source);
      }
    }
  }
  for (const Op& op : g_.ops()) {
    if (op.kind == OpKind::kMatMul &&
        (g_.tensor(op.inputs[0]).shape.rank() < 2 || g_.tensor(op.inputs[1]).shape.rank() < 2)) {
      return Internal("cpp_codegen: matmul operand rank < 2 in " + g_.name());
    }
  }

  PlanAbi();
  PlanInline();
  PlanBuffers();

  // ---- function body ----
  for (TensorId t : input_ids_) {
    Line("const float* __restrict__ i_t" + I64(t) + " = in[" +
         I64(abi_in_[static_cast<size_t>(t)]) + "];");
  }
  for (TensorId t : output_ids_) {
    Line("float* __restrict__ o_t" + I64(t) + " = out[" +
         I64(abi_out_[static_cast<size_t>(t)]) + "];");
  }
  for (const auto& [name, offset] : scratch_bufs_) {
    Line("float* __restrict__ " + name + " = scratch + " + I64(offset) + ";");
  }
  if (input_ids_.empty()) {
    Line("(void)in;");
  }
  if (scratch_bufs_.empty()) {
    Line("(void)scratch;");
  }

  if (!temporal_) {
    for (const Op& op : g_.ops()) {
      if (!inlined_[static_cast<size_t>(op.output)]) {
        SF_RETURN_IF_ERROR(EmitOp(op, /*width=*/0));
      }
    }
  } else {
    // Running-state initialization (mirrors the interpreter: max combiners
    // start at -inf, sums at zero, published snapshots at zero).
    for (const ReductionAggregation& agg : s_.plan.aggregations) {
      const std::int64_t vol = g_.tensor(g_.op(agg.op).output).shape.volume();
      const std::string init = agg.combiner == ReduceOpKind::kMax
                                   ? "-std::numeric_limits<float>::infinity()"
                                   : "0.0f";
      std::string z = NewVar("z");
      Line("for (std::int64_t " + z + " = 0; " + z + " < " + I64(vol) + "; ++" + z + ") {");
      ++indent_;
      Line("acc_o" + I64(agg.op) + "[" + z + "] = " + init + ";");
      if (agg.finalize_divide_by_extent) {
        Line("pub_o" + I64(agg.op) + "[" + z + "] = 0.0f;");
      }
      if (factor_sources_.count(agg.op) > 0) {
        Line("old_o" + I64(agg.op) + "[" + z + "] = 0.0f;");
      }
      --indent_;
      Line("}");
    }
    Line("std::int64_t processed = 0;");

    const std::int64_t remainder = extent_ % step_;
    const std::int64_t main_extent = extent_ - remainder;
    if (main_extent > 0) {
      Comment("temporal main loop: " + I64(main_extent / step_) + " full blocks of width " +
              I64(step_));
      Line("for (std::int64_t s0 = 0; s0 < " + I64(main_extent) + "; s0 += " + I64(step_) +
           ") {");
      ++indent_;
      SF_RETURN_IF_ERROR(EmitBlockBody(step_));
      --indent_;
      Line("}");
    }
    if (remainder > 0) {
      Comment("temporal remainder block of width " + I64(remainder));
      Line("{");
      ++indent_;
      Line("const std::int64_t s0 = " + I64(main_extent) + ";");
      SF_RETURN_IF_ERROR(EmitBlockBody(remainder));
      --indent_;
      Line("}");
    }
    Line("(void)processed;");

    // Final publication of non-streamed outputs (streamed ones were copied
    // block by block).
    for (TensorId t : output_ids_) {
      if (IsStreamedOutput(t)) {
        continue;
      }
      Comment("publish t" + I64(t));
      EmitCopy(FullLayout("o_t" + I64(t), g_.tensor(t).shape.dims()),
               ReadLayout(t, step_));
    }
  }
  Line("return 0;");

  // ---- assemble the translation unit ----
  std::string mode = opt_.reference_mode ? "reference (unfused per-op loops)"
                     : temporal_ ? "fused, temporal dim d" + I64(tdim_) + " extent " +
                                       I64(extent_) + " step " + I64(step_)
                                 : "fused, single pass";
  std::string src;
  src += "// Generated by SpaceFusion cpp_codegen (" + std::string(kEmitterVersion) +
         "). Do not edit.\n";
  src += "// kernel: " + g_.name() + "\n";
  src += "// mode: " + mode + "\n";
  src += "#include <algorithm>\n#include <cmath>\n#include <cstdint>\n#include <limits>\n\n";
  src += "extern \"C\" int @SYM@(const float* const* in, float* const* out, float* scratch) {\n";
  src += body_;
  src += "}\n";

  CppKernel kernel;
  kernel.scratch_floats = std::max<std::int64_t>(scratch_floats_, 1);
  kernel.input_ids = input_ids_;
  kernel.output_ids = output_ids_;

  std::string key_blob = std::string(kEmitterVersion) + "|" +
                         I64(static_cast<std::int64_t>(CppCodegenOptionsDigest(opt_))) + "|" +
                         src;
  kernel.key = Fnv1a64(key_blob);
  char sym[32];
  std::snprintf(sym, sizeof(sym), "sf_k_%016llx",
                static_cast<unsigned long long>(kernel.key));
  kernel.symbol = sym;
  size_t pos;
  while ((pos = src.find("@SYM@")) != std::string::npos) {
    src.replace(pos, 5, kernel.symbol);
  }
  kernel.source = std::move(src);
  return kernel;
}

}  // namespace

StatusOr<CppKernel> EmitCppKernel(const SmgSchedule& schedule, const CppCodegenOptions& options) {
  CppEmitter emitter(schedule, options);
  return emitter.Emit();
}

StatusOr<std::string> EmitCppProgram(const ScheduledProgram& program,
                                     const CppCodegenOptions& options) {
  std::string out;
  for (const SmgSchedule& kernel : program.kernels) {
    SF_ASSIGN_OR_RETURN(CppKernel emitted, EmitCppKernel(kernel, options));
    out += emitted.source;
    out += "\n";
  }
  return out;
}

}  // namespace spacefusion
