// Native C++ code generation for fused kernels.
//
// Where triton_codegen renders the Triton text a schedule *would* lower to,
// this backend emits C++ that actually runs on the host: one translation
// unit per kernel, with every extent, stride, tile width, and
// Update-then-Aggregate multiplier baked in as compile-time constants so
// the host compiler can unroll and vectorize the contiguous inner loops.
// The emitted function mirrors the schedule interpreter
// (src/exec/schedule_executor.cc) operation for operation — same scalar
// formulas, same accumulation order, same temporal intra-block structure —
// so with floating-point contraction disabled the compiled kernel is
// bit-identical to the interpreter on reassociation-free op streams.
//
// Emitted ABI (see CppKernelFn):
//   extern "C" int sf_k_<key>(const float* const* in, float* const* out,
//                             float* scratch);
// `in` holds one pointer per boundary tensor (kInput/kWeight/kConstant, in
// ascending TensorId order: CppKernel::input_ids), `out` one pointer per
// kOutput tensor (CppKernel::output_ids), and `scratch` is a caller-owned
// block of CppKernel::scratch_floats floats for intermediates and running
// accumulators. The return value is 0 (reserved for future error codes).
#ifndef SPACEFUSION_SRC_CODEGEN_CPP_CODEGEN_H_
#define SPACEFUSION_SRC_CODEGEN_CPP_CODEGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/schedule/schedule_ir.h"
#include "src/support/status.h"

namespace spacefusion {

struct CppCodegenOptions {
  // Annotate the emitted source with op/schedule provenance comments.
  bool emit_comments = true;
  // Inline single-consumer element-wise producers into their consumer's
  // loop (loop fusion). Preserves the per-element expression tree, so the
  // result stays bit-identical to the materialized form.
  bool fuse_elementwise = true;
  // Emit the *unfused* baseline instead: one full-extent loop nest per op,
  // every intermediate materialized, no temporal tiling and no inlining.
  // This is RunReference as native code — the fair "unfused" side of the
  // wall-clock comparison.
  bool reference_mode = false;
};

// Digest of every emission-affecting option; part of the kernel cache key.
std::uint64_t CppCodegenOptionsDigest(const CppCodegenOptions& options);

// Signature of a compiled kernel entry point.
using CppKernelFn = int (*)(const float* const* in, float* const* out, float* scratch);

// One emitted kernel: the full translation unit plus the ABI metadata the
// executor needs to marshal tensors.
struct CppKernel {
  std::string symbol;                 // "sf_k_<16 hex digits of key>"
  std::uint64_t key = 0;              // content hash of (source, options)
  std::string source;                 // complete C++ translation unit
  std::int64_t scratch_floats = 0;    // caller-provided scratch, in floats
  std::vector<TensorId> input_ids;    // ABI order of in[]
  std::vector<TensorId> output_ids;   // ABI order of out[]
};

// Emits the specialized C++ for one fused kernel. The schedule must have
// block sizes applied (ApplyConfig); the memory plan is not consulted.
StatusOr<CppKernel> EmitCppKernel(const SmgSchedule& schedule,
                                  const CppCodegenOptions& options = CppCodegenOptions());

// Concatenates the sources of every kernel of a partitioned program, in
// kernel order — for inspection (sf-compile --emit-kernels) and for the
// determinism tests. Byte-identical across repeated compiles of the same
// program with the same options.
StatusOr<std::string> EmitCppProgram(const ScheduledProgram& program,
                                     const CppCodegenOptions& options = CppCodegenOptions());

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_CODEGEN_CPP_CODEGEN_H_
