// Triton-flavored code generation.
//
// The paper integrates SpaceFusion with OpenAI Triton for intra-block code
// generation (Sec. 6). Real Triton cannot run in this environment, so this
// backend emits the *text* of the Triton kernel a schedule lowers to: grid
// decomposition over the spatial dims, staged tl.loads, the serial
// intra-block loop over the temporal dim, per-operator statements
// (tl.dot / tl.max / tl.sum / element-wise expressions), and the generated
// Update-then-Aggregate lines (the online-softmax rescalings of Fig. 7/8).
//
// The emitted kernels are what a user would paste into a Triton project;
// they also serve as a readable rendering of a schedule for debugging and
// for the documentation examples.
#ifndef SPACEFUSION_SRC_CODEGEN_TRITON_CODEGEN_H_
#define SPACEFUSION_SRC_CODEGEN_TRITON_CODEGEN_H_

#include <string>

#include "src/schedule/schedule_ir.h"

namespace spacefusion {

struct CodegenOptions {
  bool emit_launch_stub = true;  // also emit the host-side grid/launch code
  bool emit_comments = true;     // annotate statements with SMG provenance
};

// Renders one fused kernel. The schedule must have a memory plan (block
// sizes applied + PlanMemory run).
std::string EmitTritonKernel(const SmgSchedule& schedule,
                             const CodegenOptions& options = CodegenOptions());

// Renders every kernel of a partitioned program.
std::string EmitTritonProgram(const ScheduledProgram& program,
                              const CodegenOptions& options = CodegenOptions());

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_CODEGEN_TRITON_CODEGEN_H_
