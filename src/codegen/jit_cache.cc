#include "src/codegen/jit_cache.h"

#include <dlfcn.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>

#include "src/obs/metrics.h"
#include "src/support/binary_io.h"
#include "src/support/file_util.h"

namespace spacefusion {

std::string KernelCacheDirFromEnv() {
  const char* kernel_dir = std::getenv("SPACEFUSION_KERNEL_CACHE_DIR");
  if (kernel_dir != nullptr && kernel_dir[0] != '\0') {
    return kernel_dir;
  }
  const char* cache_dir = std::getenv("SPACEFUSION_CACHE_DIR");
  if (cache_dir != nullptr && cache_dir[0] != '\0') {
    return std::string(cache_dir) + "/kernels";
  }
  return "";
}

namespace {

std::string HexKey(std::uint64_t key) {
  char hex[20];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(key));
  return hex;
}

}  // namespace

JitKernelCache::JitKernelCache(JitCacheOptions options) : options_(std::move(options)) {
  dir_ = options_.dir;
  if (dir_.empty()) {
    std::error_code ec;
    std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
    if (ec) {
      tmp = ".";
    }
    dir_ = (tmp / ("sf-jit-" + std::to_string(::getpid()))).string();
  }
  compiler_ = options_.compiler;
  if (compiler_.empty()) {
    const char* env = std::getenv("SPACEFUSION_CXX");
    compiler_ = (env != nullptr && env[0] != '\0') ? env : "c++";
  }
}

JitKernelCache::~JitKernelCache() {
  MutexLock lock(mu_);
  for (auto& [key, loaded] : loaded_) {
    (void)key;
    if (loaded.handle != nullptr) {
      ::dlclose(loaded.handle);
    }
  }
}

std::uint64_t JitKernelCache::EntryKey(const CppKernel& kernel) const {
  std::string blob =
      "sfk-cache-v1|" + compiler_ + "|" + options_.flags + "|" + HexKey(kernel.key);
  return Fnv1a64(blob);
}

std::string JitKernelCache::EntryPath(std::uint64_t entry_key, const char* ext) const {
  return dir_ + "/" + HexKey(entry_key) + ext;
}

StatusOr<double> JitKernelCache::Build(const CppKernel& kernel, const std::string& so_path) {
  const std::string cc_path = so_path.substr(0, so_path.size() - 3) + ".cc";
  SF_RETURN_IF_ERROR(AtomicWriteFile(cc_path, kernel.source));

  const std::string tmp_so = so_path + ".tmp." + std::to_string(::getpid());
  const std::string log_path = so_path + ".log";
  const std::string cmd = compiler_ + " " + options_.flags + " -o \"" + tmp_so + "\" \"" +
                          cc_path + "\" 2> \"" + log_path + "\"";

  const auto start = std::chrono::steady_clock::now();
  const int rc = std::system(cmd.c_str());
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  ++stats_.toolchain_invocations;
  SF_COUNTER_ADD("jit.cache.toolchain_invocations", 1);

  if (rc != 0) {
    StatusOr<std::string> log_or = ReadFileToString(log_path);
    std::string log = log_or.ok() ? log_or.value() : "";
    if (log.size() > 500) {
      log.resize(500);
    }
    std::remove(tmp_so.c_str());
    std::remove(log_path.c_str());
    if (!options_.keep_sources) {
      std::remove(cc_path.c_str());
    }
    return Internal("jit: '" + compiler_ + "' failed (exit " + std::to_string(rc) +
                    ") building " + kernel.symbol + ": " + log);
  }
  std::remove(log_path.c_str());
  if (!options_.keep_sources) {
    std::remove(cc_path.c_str());
  }
  if (std::rename(tmp_so.c_str(), so_path.c_str()) != 0) {
    std::remove(tmp_so.c_str());
    return Internal("jit: rename into " + so_path + " failed");
  }
  return ms;
}

StatusOr<JitKernelCache::Kernel> JitKernelCache::GetOrBuild(const CppKernel& kernel) {
  const std::uint64_t entry_key = EntryKey(kernel);
  MutexLock lock(mu_);

  auto it = loaded_.find(entry_key);
  if (it != loaded_.end()) {
    ++stats_.memory_hits;
    SF_COUNTER_ADD("jit.cache.hits", 1);
    Kernel result;
    result.fn = it->second.fn;
    result.scratch_floats = it->second.scratch_floats;
    result.key = entry_key;
    return result;
  }
  SF_COUNTER_ADD("jit.cache.misses", 1);

  const std::string so_path = EntryPath(entry_key, ".sfk.so");
  void* handle = nullptr;
  CppKernelFn fn = nullptr;
  bool from_disk = false;
  bool built = false;

  if (::access(so_path.c_str(), F_OK) == 0) {
    handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle != nullptr) {
      fn = reinterpret_cast<CppKernelFn>(::dlsym(handle, kernel.symbol.c_str()));
    }
    if (handle != nullptr && fn != nullptr) {
      from_disk = true;
    } else {
      // Undlopenable or missing its symbol: a corrupt (or stale-emitter)
      // entry. Evict it; rebuild below if allowed.
      if (handle != nullptr) {
        ::dlclose(handle);
      }
      handle = nullptr;
      fn = nullptr;
      ++stats_.corrupt;
      SF_COUNTER_ADD("jit.cache.corrupt", 1);
      std::remove(so_path.c_str());
    }
  }

  if (fn == nullptr) {
    if (!options_.allow_compile) {
      ++stats_.failures;
      return NotFound("jit: kernel " + kernel.symbol +
                      " not in cache and compilation is disabled");
    }
    StatusOr<double> build_ms = Build(kernel, so_path);
    if (!build_ms.ok()) {
      ++stats_.failures;
      SF_COUNTER_ADD("jit.cache.build_failures", 1);
      return build_ms.status();
    }
    handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle != nullptr) {
      fn = reinterpret_cast<CppKernelFn>(::dlsym(handle, kernel.symbol.c_str()));
    }
    if (handle == nullptr || fn == nullptr) {
      const char* err = ::dlerror();
      if (handle != nullptr) {
        ::dlclose(handle);
      }
      ++stats_.failures;
      return Internal("jit: freshly built " + kernel.symbol +
                      " failed to load: " + (err != nullptr ? err : "unknown dlerror"));
    }
    ++stats_.builds;
    stats_.build_ms += build_ms.value();
    SF_COUNTER_ADD("jit.cache.builds", 1);
    built = true;
  } else {
    ++stats_.disk_hits;
    SF_COUNTER_ADD("jit.cache.disk_hits", 1);
  }

  Loaded loaded;
  loaded.handle = handle;
  loaded.fn = fn;
  loaded.scratch_floats = kernel.scratch_floats;
  loaded_[entry_key] = loaded;

  Kernel result;
  result.fn = fn;
  result.scratch_floats = kernel.scratch_floats;
  result.key = entry_key;
  result.built = built;
  result.from_disk = from_disk;
  return result;
}

JitKernelCache::Stats JitKernelCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace spacefusion
