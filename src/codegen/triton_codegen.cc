#include "src/codegen/triton_codegen.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

// Sanitizes a tensor/op name into a Python identifier.
std::string Ident(const std::string& name) {
  std::string out;
  for (char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out = "t_" + out;
  }
  return out;
}

const char* UnaryExpr(UnaryKind kind) {
  switch (kind) {
    case UnaryKind::kExp:
      return "tl.exp(%s)";
    case UnaryKind::kRelu:
      return "tl.maximum(%s, 0.0)";
    case UnaryKind::kGelu:
      return "0.5 * %s * (1.0 + tl.tanh(0.7978845608 * (%s + 0.044715 * %s * %s * %s)))";
    case UnaryKind::kSigmoid:
      return "tl.sigmoid(%s)";
    case UnaryKind::kTanh:
      return "tl.tanh(%s)";
    case UnaryKind::kSqrt:
      return "tl.sqrt(%s)";
    case UnaryKind::kRsqrt:
      return "1.0 / tl.sqrt(%s)";
    case UnaryKind::kNeg:
      return "-%s";
    case UnaryKind::kSquare:
      return "%s * %s";
    case UnaryKind::kRecip:
      return "1.0 / %s";
  }
  return "%s";
}

std::string FormatUnary(UnaryKind kind, const std::string& x) {
  std::string pattern = UnaryExpr(kind);
  std::string out;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == '%' && i + 1 < pattern.size() && pattern[i + 1] == 's') {
      out += x;
      ++i;
    } else {
      out.push_back(pattern[i]);
    }
  }
  return out;
}

std::string BinaryExpr(BinaryKind kind, const std::string& a, const std::string& b) {
  switch (kind) {
    case BinaryKind::kAdd:
      return StrCat(a, " + ", b);
    case BinaryKind::kSub:
      return StrCat(a, " - ", b);
    case BinaryKind::kMul:
      return StrCat(a, " * ", b);
    case BinaryKind::kDiv:
      return StrCat(a, " / ", b);
    case BinaryKind::kMax:
      return StrCat("tl.maximum(", a, ", ", b, ")");
  }
  return a;
}

class KernelEmitter {
 public:
  KernelEmitter(const SmgSchedule& schedule, const CodegenOptions& options)
      : sched_(schedule), graph_(schedule.graph), options_(options) {}

  std::string Emit() {
    CollectNames();
    EmitSignature();
    EmitGridDecomposition();
    EmitStagedLoads();
    if (sched_.has_temporal && sched_.NumIntraBlocks() > 1) {
      EmitRunningStateInit();
      EmitTemporalLoopBody();
    } else {
      EmitStraightLineBody();
    }
    EmitStores();
    if (options_.emit_launch_stub) {
      EmitLaunchStub();
    }
    return body_.str();
  }

 private:
  void Line(const std::string& text) { body_ << indent_ << text << "\n"; }
  void Blank() { body_ << "\n"; }

  std::string Var(TensorId id) const { return names_.at(id); }

  bool IsAggregated(OpId op) const {
    for (const ReductionAggregation& agg : sched_.plan.aggregations) {
      if (agg.op == op) {
        return true;
      }
    }
    return false;
  }

  const ReductionAggregation* AggregationOf(OpId op) const {
    for (const ReductionAggregation& agg : sched_.plan.aggregations) {
      if (agg.op == op) {
        return &agg;
      }
    }
    return nullptr;
  }

  void CollectNames() {
    for (const TensorInfo& t : graph_.tensors()) {
      names_[t.id] = Ident(t.name);
    }
  }

  void EmitSignature() {
    body_ << "@triton.jit\n";
    body_ << "def " << Ident(graph_.name()) << "_kernel(\n";
    std::vector<std::string> params;
    for (const TensorInfo& t : graph_.tensors()) {
      if (t.kind == TensorKind::kInput || t.kind == TensorKind::kWeight ||
          t.kind == TensorKind::kOutput) {
        params.push_back(StrCat(Var(t.id), "_ptr"));
      }
    }
    for (const DimSlice& s : sched_.spatial) {
      params.push_back(StrCat("BLOCK_", sched_.built.smg.dim(s.dim).name,
                              ": tl.constexpr"));
    }
    if (sched_.has_temporal) {
      params.push_back("STEP: tl.constexpr");
    }
    body_ << "    " << StrJoin(params, ", ") << "\n):\n";
    indent_ = "    ";
    if (options_.emit_comments) {
      Line(StrCat("# ", sched_.ToString()));
    }
  }

  void EmitGridDecomposition() {
    if (options_.emit_comments) {
      Line("# spatial slicing: one program per SMG block");
    }
    Line("pid = tl.program_id(0)");
    const Smg& smg = sched_.built.smg;
    for (size_t i = 0; i < sched_.spatial.size(); ++i) {
      const DimSlice& s = sched_.spatial[i];
      std::int64_t blocks = (smg.dim(s.dim).extent + s.block - 1) / s.block;
      Line(StrCat("pid_", smg.dim(s.dim).name, " = pid % ", blocks));
      if (i + 1 < sched_.spatial.size()) {
        Line(StrCat("pid = pid // ", blocks));
      }
    }
  }

  void EmitStagedLoads() {
    Blank();
    if (options_.emit_comments) {
      Line("# staged input tiles (shared memory)");
    }
    for (const TensorInfo& t : graph_.tensors()) {
      if (t.kind != TensorKind::kInput && t.kind != TensorKind::kWeight) {
        continue;
      }
      MemLevel level = sched_.memory.tensor_level[static_cast<size_t>(t.id)];
      // Tensors sliced along the temporal dim are loaded inside the loop.
      bool temporal_sliced = sched_.has_temporal &&
                             sched_.built.AxisOfDim(t.id, sched_.temporal.dim) >= 0;
      if (temporal_sliced) {
        continue;
      }
      if (level == MemLevel::kShared) {
        Line(StrCat(Var(t.id), " = tl.load(", Var(t.id), "_ptr + block_offsets)"));
      } else if (level == MemLevel::kGlobalStreamed && options_.emit_comments) {
        Line(StrCat("# ", Var(t.id), ": streamed from global memory (L2-resident)"));
      }
    }
    for (const TensorInfo& t : graph_.tensors()) {
      if (t.kind == TensorKind::kConstant) {
        Line(StrCat(Var(t.id), " = ", t.constant_value));
      }
    }
  }

  void EmitRunningStateInit() {
    Blank();
    if (options_.emit_comments) {
      Line("# running reductions (Update-then-Aggregate state)");
    }
    for (const ReductionAggregation& agg : sched_.plan.aggregations) {
      const Op& op = graph_.op(agg.op);
      std::string init =
          agg.combiner == ReduceOpKind::kMax ? "-float('inf')" : "0.0";
      Line(StrCat(Var(op.output), " = tl.full(acc_shape_", Var(op.output), ", ", init,
                  ", tl.float32)"));
    }
  }

  std::string OpExpression(const Op& op, bool sliced_operands) {
    switch (op.kind) {
      case OpKind::kMatMul: {
        std::string a = Var(op.inputs[0]);
        std::string b = Var(op.inputs[1]);
        if (op.attrs.transpose_a) {
          a = StrCat("tl.trans(", a, ")");
        }
        if (op.attrs.transpose_b) {
          b = StrCat("tl.trans(", b, ")");
        }
        return StrCat("tl.dot(", a, ", ", b, ")");
      }
      case OpKind::kUnary:
        return FormatUnary(op.attrs.unary, Var(op.inputs[0]));
      case OpKind::kBinary:
        return BinaryExpr(op.attrs.binary, Var(op.inputs[0]), Var(op.inputs[1]));
      case OpKind::kReduce: {
        const char* fn = op.attrs.reduce == ReduceKind::kMax ? "tl.max" : "tl.sum";
        std::string expr = StrCat(fn, "(", Var(op.inputs[0]), ", axis=1)");
        if (op.attrs.reduce == ReduceKind::kMean && !sliced_operands) {
          expr = StrCat(expr, " / ", "N");
        }
        return expr;
      }
    }
    return "";
  }

  void EmitAggregatedOp(const Op& op, const ReductionAggregation& agg) {
    std::string local = StrCat(Var(op.output), "_local");
    Line(StrCat(local, " = ", OpExpression(op, /*sliced_operands=*/true)));
    std::string old_value = Var(op.output);
    // Update-then-Aggregate: rescale the running value first (Fig. 7).
    for (const UpdateFactor& factor : agg.update) {
      const Op& src = graph_.op(factor.source);
      std::string src_new = StrCat(Var(src.output), "_new");
      std::string mult;
      if (factor.prim == FactorPrim::kExpNeg) {
        mult = StrCat("tl.exp(", factor.power, " * (", Var(src.output), " - ", src_new, "))");
      } else if (factor.power == -1) {
        mult = StrCat("(", Var(src.output), " / ", src_new, ")");
      } else {
        mult = StrCat("(", src_new, " / ", Var(src.output), ") ** ", factor.power);
      }
      old_value = StrCat(old_value, " * ", mult);
      updated_sources_.insert(factor.source);
    }
    std::string combined =
        agg.combiner == ReduceOpKind::kMax
            ? StrCat("tl.maximum(", old_value, ", ", local, ")")
            : StrCat(old_value, " + ", local);
    std::string target = updated_sources_.count(op.id) > 0
                             ? StrCat(Var(op.output), "_new")
                             : Var(op.output);
    Line(StrCat(target, " = ", combined));
  }

  void EmitOps() {
    // Running reductions referenced by later update factors publish under a
    // `_new` name first; find them up front.
    updated_sources_.clear();
    for (const ReductionAggregation& agg : sched_.plan.aggregations) {
      for (const UpdateFactor& factor : agg.update) {
        updated_sources_.insert(factor.source);
      }
    }

    for (const Op& op : graph_.ops()) {
      const ReductionAggregation* agg = AggregationOf(op.id);
      if (agg != nullptr && sched_.NumIntraBlocks() > 1) {
        if (options_.emit_comments) {
          Line(StrCat("# ", op.name, ": ",
                      agg->NeedsUpdate() ? "Update-then-Aggregate" : "Simple Aggregate"));
        }
        EmitAggregatedOp(op, *agg);
        continue;
      }
      Line(StrCat(Var(op.output), " = ", OpExpression(op, false)));
    }
    // Roll `_new` names over for the next intra-block.
    for (OpId src : updated_sources_) {
      if (sched_.NumIntraBlocks() > 1) {
        Line(StrCat(Var(graph_.op(src).output), " = ", Var(graph_.op(src).output), "_new"));
      }
    }
  }

  void EmitTemporalLoopBody() {
    Blank();
    const Smg& smg = sched_.built.smg;
    const std::string dim_name = smg.dim(sched_.temporal.dim).name;
    if (options_.emit_comments) {
      Line(StrCat("# temporal slicing along ", dim_name, " (",
                  std::to_string(sched_.NumIntraBlocks()), " intra-blocks of ",
                  std::to_string(sched_.temporal.block), ")"));
    }
    Line(StrCat("for ", dim_name, "0 in range(0, ", smg.dim(sched_.temporal.dim).extent,
                ", STEP):"));
    indent_ += "    ";
    for (const TensorInfo& t : graph_.tensors()) {
      bool temporal_sliced = sched_.built.AxisOfDim(t.id, sched_.temporal.dim) >= 0;
      bool boundary = t.kind == TensorKind::kInput || t.kind == TensorKind::kWeight;
      if (boundary && temporal_sliced) {
        Line(StrCat(Var(t.id), " = tl.load(", Var(t.id), "_ptr + ", dim_name,
                    "0 * stride + tile_offsets)"));
      }
    }
    EmitOps();
    indent_ = "    ";
  }

  void EmitStraightLineBody() {
    Blank();
    if (options_.emit_comments) {
      Line("# single intra-block: dataflow evaluated once");
    }
    EmitOps();
  }

  void EmitStores() {
    Blank();
    for (const TensorInfo& t : graph_.tensors()) {
      if (t.kind == TensorKind::kOutput) {
        Line(StrCat("tl.store(", Var(t.id), "_ptr + block_offsets, ", Var(t.id), ")"));
      }
    }
  }

  void EmitLaunchStub() {
    indent_ = "";
    Blank();
    body_ << "# host-side launch\n";
    body_ << "grid = (" << sched_.NumBlocks() << ",)\n";
    body_ << Ident(graph_.name()) << "_kernel[grid](...)"
          << "  # smem=" << sched_.memory.smem_bytes << "B"
          << " regs=" << sched_.memory.reg_bytes << "B\n";
  }

  const SmgSchedule& sched_;
  const Graph& graph_;
  CodegenOptions options_;
  std::map<TensorId, std::string> names_;
  std::set<OpId> updated_sources_;
  std::ostringstream body_;
  std::string indent_;
};

}  // namespace

std::string EmitTritonKernel(const SmgSchedule& schedule, const CodegenOptions& options) {
  KernelEmitter emitter(schedule, options);
  return emitter.Emit();
}

std::string EmitTritonProgram(const ScheduledProgram& program, const CodegenOptions& options) {
  std::ostringstream out;
  out << "import triton\nimport triton.language as tl\n\n";
  for (size_t i = 0; i < program.kernels.size(); ++i) {
    out << "# ---- kernel " << i + 1 << "/" << program.kernels.size() << " ----\n";
    out << EmitTritonKernel(program.kernels[i], options) << "\n";
  }
  return out.str();
}

}  // namespace spacefusion
