#include "src/graph/op.h"

namespace spacefusion {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kMatMul:
      return "matmul";
    case OpKind::kUnary:
      return "unary";
    case OpKind::kBinary:
      return "binary";
    case OpKind::kReduce:
      return "reduce";
  }
  return "?";
}

const char* ReduceOpKindName(ReduceOpKind kind) {
  switch (kind) {
    case ReduceOpKind::kMax:
      return "max";
    case ReduceOpKind::kSum:
      return "sum";
    case ReduceOpKind::kMean:
      return "mean";
    case ReduceOpKind::kDot:
      return "dot";
  }
  return "?";
}

namespace {
// Instruction cost per element: transcendentals go through the SFU / a
// polynomial expansion and cost far more than one FMA.
std::int64_t UnaryFlopCost(UnaryKind kind) {
  switch (kind) {
    case UnaryKind::kExp:
    case UnaryKind::kSigmoid:
    case UnaryKind::kTanh:
      return 8;
    case UnaryKind::kGelu:
      return 14;
    case UnaryKind::kSqrt:
    case UnaryKind::kRsqrt:
    case UnaryKind::kRecip:
      return 4;
    case UnaryKind::kRelu:
    case UnaryKind::kNeg:
    case UnaryKind::kSquare:
      return 1;
  }
  return 1;
}
}  // namespace

std::int64_t OpFlops(const Op& op, std::int64_t output_volume, std::int64_t contraction) {
  switch (op.kind) {
    case OpKind::kMatMul:
      return 2 * output_volume * contraction;
    case OpKind::kReduce:
      return output_volume * contraction;
    case OpKind::kUnary:
      return output_volume * UnaryFlopCost(op.attrs.unary);
    case OpKind::kBinary:
      return output_volume;
  }
  return output_volume;
}

}  // namespace spacefusion
