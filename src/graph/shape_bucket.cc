#include "src/graph/shape_bucket.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>

#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

std::string ShapeKey::Label() const { return StrCat("b", batch, "s", seq); }

StatusOr<ShapeKey> ParseShapeLabel(const std::string& label) {
  // Format: b<batch>s<seq>, both positive decimal integers.
  size_t s_pos = label.find('s', 1);
  if (label.size() < 4 || label[0] != 'b' || s_pos == std::string::npos) {
    return InvalidArgument("malformed shape label: \"" + label + "\"");
  }
  ShapeKey key;
  char* end = nullptr;
  const std::string batch_str = label.substr(1, s_pos - 1);
  const std::string seq_str = label.substr(s_pos + 1);
  key.batch = std::strtoll(batch_str.c_str(), &end, 10);
  if (batch_str.empty() || *end != '\0' || key.batch < 1) {
    return InvalidArgument("malformed shape label: \"" + label + "\"");
  }
  key.seq = std::strtoll(seq_str.c_str(), &end, 10);
  if (seq_str.empty() || *end != '\0' || key.seq < 1) {
    return InvalidArgument("malformed shape label: \"" + label + "\"");
  }
  return key;
}

std::int64_t RoundUpPow2(std::int64_t v) {
  std::int64_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

BucketingPolicy BucketingPolicy::PowersOfTwo() { return BucketingPolicy(); }

BucketingPolicy BucketingPolicy::Identity() {
  BucketingPolicy policy;
  policy.identity_ = true;
  return policy;
}

StatusOr<BucketingPolicy> BucketingPolicy::FromSpec(const std::string& spec) {
  BucketingPolicy policy;
  for (const std::string& piece : StrSplit(spec, ',')) {
    char* end = nullptr;
    const std::int64_t bucket = std::strtoll(piece.c_str(), &end, 10);
    if (piece.empty() || *end != '\0' || bucket < 1) {
      return InvalidArgument("SPACEFUSION_SHAPE_BUCKETS: \"" + piece +
                             "\" is not a positive integer in \"" + spec + "\"");
    }
    if (!policy.seq_buckets_.empty() && bucket <= policy.seq_buckets_.back()) {
      return InvalidArgument("SPACEFUSION_SHAPE_BUCKETS: buckets must be strictly ascending in \"" +
                             spec + "\"");
    }
    policy.seq_buckets_.push_back(bucket);
  }
  if (policy.seq_buckets_.empty()) {
    return InvalidArgument("SPACEFUSION_SHAPE_BUCKETS: empty bucket list");
  }
  return policy;
}

BucketingPolicy BucketingPolicy::FromEnv() {
  const char* spec = std::getenv("SPACEFUSION_SHAPE_BUCKETS");
  if (spec == nullptr || *spec == '\0') {
    return PowersOfTwo();
  }
  StatusOr<BucketingPolicy> parsed = FromSpec(spec);
  if (!parsed.ok()) {
    static std::once_flag warned;
    std::call_once(warned, [&] {
      SF_LOG(Warning) << parsed.status().ToString() << "; using power-of-two buckets";
    });
    return PowersOfTwo();
  }
  return std::move(parsed).value();
}

ShapeKey BucketingPolicy::BucketFor(const ShapeKey& shape) const {
  if (identity_) {
    return shape;
  }
  ShapeKey bucket;
  bucket.batch = RoundUpPow2(shape.batch);
  bucket.seq = RoundUpPow2(shape.seq);
  // An explicit seq list wins up to its largest bucket; beyond it the
  // power-of-two fallback keeps every shape routable.
  for (std::int64_t b : seq_buckets_) {
    if (b >= shape.seq) {
      bucket.seq = b;
      break;
    }
  }
  return bucket;
}

std::string BucketingPolicy::ToString() const {
  if (identity_) {
    return "identity";
  }
  if (seq_buckets_.empty()) {
    return "pow2";
  }
  std::string out = "seq{";
  for (size_t i = 0; i < seq_buckets_.size(); ++i) {
    out += (i > 0 ? "," : "") + StrCat(seq_buckets_[i]);
  }
  return out + "}+pow2";
}

double BucketDistance(const ShapeKey& a, const ShapeKey& b) {
  return std::abs(std::log2(static_cast<double>(a.seq)) - std::log2(static_cast<double>(b.seq))) +
         std::abs(std::log2(static_cast<double>(a.batch)) -
                  std::log2(static_cast<double>(b.batch)));
}

std::int64_t SubDimExtent(const SubDim& sub, const AxisExtents& extents) {
  switch (sub.axis) {
    case DimAxis::kFixed:
      return sub.extent;
    case DimAxis::kBatch:
      return extents.batch;
    case DimAxis::kSeq:
      return extents.seq;
  }
  return sub.extent;
}

Shape LayoutShape(const TensorLayout& layout, const AxisExtents& extents) {
  std::vector<std::int64_t> dims;
  dims.reserve(layout.dims.size());
  for (const std::vector<SubDim>& dim : layout.dims) {
    std::int64_t extent = 1;
    for (const SubDim& sub : dim) {
      extent *= SubDimExtent(sub, extents);
    }
    dims.push_back(extent);
  }
  return Shape(dims);
}

namespace {

// Flattens the layout into one sub-dim list (row-major over dims, then over
// sub-dims within a dim) with exact extents, bucket extents, and the
// row-major strides of the bucket-side (or exact-side) flattened tensor.
struct FlatLayout {
  std::vector<std::int64_t> exact;          // per sub-dim exact extent
  std::vector<std::int64_t> src_strides;    // strides in the source tensor
  std::vector<std::int64_t> dst_strides;    // strides in the destination tensor
};

std::vector<std::int64_t> SubDimStrides(const TensorLayout& layout, const AxisExtents& extents) {
  std::vector<std::int64_t> sizes;
  for (const std::vector<SubDim>& dim : layout.dims) {
    for (const SubDim& sub : dim) {
      sizes.push_back(SubDimExtent(sub, extents));
    }
  }
  std::vector<std::int64_t> strides(sizes.size(), 1);
  for (size_t i = sizes.size(); i-- > 1;) {
    strides[i - 1] = strides[i] * sizes[i];
  }
  return strides;
}

Status CheckShape(const char* what, const TensorLayout& layout, const Tensor& t,
                  const AxisExtents& extents) {
  const Shape want = LayoutShape(layout, extents);
  if (t.shape().dims() != want.dims()) {
    return InvalidArgument(StrCat("shape-bucket ", what, ": tensor \"", layout.name, "\" has shape ",
                                  t.shape().ToString(), ", layout expects ", want.ToString()));
  }
  return Status::Ok();
}

// Copies the full exact-extent sub-dim index space from src to dst, where
// both are flattened tensors addressed via the given sub-dim strides.
void CopyRegion(const std::vector<std::int64_t>& exact_extents,
                const std::vector<std::int64_t>& src_strides,
                const std::vector<std::int64_t>& dst_strides, const Tensor& src, Tensor* dst) {
  const size_t rank = exact_extents.size();
  std::vector<std::int64_t> index(rank, 0);
  while (true) {
    std::int64_t src_flat = 0;
    std::int64_t dst_flat = 0;
    for (size_t i = 0; i < rank; ++i) {
      src_flat += index[i] * src_strides[i];
      dst_flat += index[i] * dst_strides[i];
    }
    dst->at(dst_flat) = src.at(src_flat);
    size_t axis = rank;
    while (axis-- > 0) {
      if (++index[axis] < exact_extents[axis]) {
        break;
      }
      index[axis] = 0;
      if (axis == 0) {
        return;
      }
    }
  }
}

std::vector<std::int64_t> SubDimExtents(const TensorLayout& layout, const AxisExtents& extents) {
  std::vector<std::int64_t> out;
  for (const std::vector<SubDim>& dim : layout.dims) {
    for (const SubDim& sub : dim) {
      out.push_back(SubDimExtent(sub, extents));
    }
  }
  return out;
}

}  // namespace

StatusOr<Tensor> PadToBucket(const TensorLayout& layout, const Tensor& exact,
                             const AxisExtents& exact_extents, const AxisExtents& bucket_extents) {
  SF_RETURN_IF_ERROR(CheckShape("pad", layout, exact, exact_extents));
  const Shape bucket_shape = LayoutShape(layout, bucket_extents);
  Tensor bucket = Tensor::Zeros(bucket_shape, exact.dtype());
  if (layout.attn_mask && !bucket_shape.dims().empty()) {
    // Padded kv columns read -1e30 in *every* row so their softmax weight
    // underflows to exactly zero; padded query rows keep 0 in real columns
    // (a finite row — softmax of it is well defined and sliced away anyway).
    const std::int64_t cols = bucket_shape.dims().back();
    const std::int64_t exact_cols = LayoutShape(layout, exact_extents).dims().back();
    const std::int64_t rows = bucket_shape.volume() / cols;
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = exact_cols; c < cols; ++c) {
        bucket.at(r * cols + c) = kMaskPadValue;
      }
    }
  }
  CopyRegion(SubDimExtents(layout, exact_extents), SubDimStrides(layout, exact_extents),
             SubDimStrides(layout, bucket_extents), exact, &bucket);
  return bucket;
}

StatusOr<Tensor> SliceToExact(const TensorLayout& layout, const Tensor& bucket,
                              const AxisExtents& exact_extents, const AxisExtents& bucket_extents) {
  SF_RETURN_IF_ERROR(CheckShape("slice", layout, bucket, bucket_extents));
  Tensor exact = Tensor::Zeros(LayoutShape(layout, exact_extents), bucket.dtype());
  CopyRegion(SubDimExtents(layout, exact_extents), SubDimStrides(layout, bucket_extents),
             SubDimStrides(layout, exact_extents), bucket, &exact);
  return exact;
}

}  // namespace spacefusion
