#include "src/graph/models.h"

#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kBert:
      return "Bert";
    case ModelKind::kAlbert:
      return "Albert";
    case ModelKind::kT5:
      return "T5";
    case ModelKind::kViT:
      return "ViT";
    case ModelKind::kLlama2:
      return "Llama2";
  }
  return "?";
}

std::int64_t ModelGraph::TotalFlops() const {
  std::int64_t flops = 0;
  for (const Subprogram& sub : subprograms) {
    flops += sub.graph.TotalFlops() * sub.repeat;
  }
  return flops;
}

ModelConfig GetModelConfig(ModelKind kind, std::int64_t batch, std::int64_t seq) {
  ModelConfig c;
  c.kind = kind;
  c.batch = batch;
  c.seq = seq;
  switch (kind) {
    case ModelKind::kBert:
      // bert-base-uncased
      c.name = "Bert";
      c.num_layers = 12;
      c.hidden = 768;
      c.heads = 12;
      c.ffn_dim = 3072;
      c.activation = UnaryKind::kGelu;
      break;
    case ModelKind::kAlbert:
      // albert-base-v2: same geometry as BERT-base but the single layer's
      // weights are shared, so every repetition is the *same* subprogram.
      c.name = "Albert";
      c.num_layers = 12;
      c.hidden = 768;
      c.heads = 12;
      c.ffn_dim = 3072;
      c.activation = UnaryKind::kGelu;
      break;
    case ModelKind::kT5:
      // t5-base: 12 encoder + 12 decoder layers, ReLU FFN.
      c.name = "T5";
      c.num_layers = 12;
      c.decoder_layers = 12;
      c.hidden = 768;
      c.heads = 12;
      c.ffn_dim = 3072;
      c.activation = UnaryKind::kRelu;
      break;
    case ModelKind::kViT: {
      // ViT-B/16: `seq` is the image side; patches of 16x16 plus class token.
      c.name = "ViT";
      c.num_layers = 12;
      c.hidden = 768;
      c.heads = 12;
      c.ffn_dim = 3072;
      c.activation = UnaryKind::kGelu;
      std::int64_t side = seq;
      c.seq = (side / 16) * (side / 16) + 1;
      break;
    }
    case ModelKind::kLlama2:
      // Llama2-7B.
      c.name = "Llama2";
      c.num_layers = 32;
      c.hidden = 4096;
      c.heads = 32;
      c.ffn_dim = 11008;
      c.activation = UnaryKind::kSigmoid;  // used inside SwiGLU
      c.norm = NormKind::kRmsNorm;
      c.gated_ffn = true;
      c.causal_mask = true;
      break;
  }
  return c;
}

ModelGraph BuildModel(const ModelConfig& config) {
  ModelGraph model;
  model.config = config;
  std::int64_t tokens = config.tokens();
  std::int64_t bh = config.batch * config.heads;

  auto append_encoder_stack = [&](int layers, bool causal) {
    // The four subprograms of one layer; identical across layers, so the
    // repeat count carries the stack depth.
    model.subprograms.push_back({BuildQkvProj(tokens, config.hidden, config.hidden), layers});
    model.subprograms.push_back(
        {BuildMha(bh, config.seq, config.seq, config.head_dim(), causal), layers});
    model.subprograms.push_back({BuildAttnOut(tokens, config.hidden, config.norm), layers});
    if (config.gated_ffn) {
      model.subprograms.push_back({BuildSwigluFfn(tokens, config.hidden, config.ffn_dim), layers});
    } else {
      model.subprograms.push_back(
          {BuildFfn(tokens, config.hidden, config.ffn_dim, config.activation, config.norm),
           layers});
    }
  };

  append_encoder_stack(config.num_layers, config.causal_mask);

  if (config.decoder_layers > 0) {
    // Decoder: causal self-attention + cross-attention + FFN.
    model.subprograms.push_back(
        {BuildQkvProj(tokens, config.hidden, config.hidden), config.decoder_layers});
    model.subprograms.push_back(
        {BuildMha(bh, config.seq, config.seq, config.head_dim(), /*masked=*/true),
         config.decoder_layers});
    model.subprograms.push_back(
        {BuildAttnOut(tokens, config.hidden, config.norm), config.decoder_layers});
    // Cross-attention reads encoder keys/values (same seq length here).
    model.subprograms.push_back(
        {BuildMha(bh, config.seq, config.seq, config.head_dim(), /*masked=*/false),
         config.decoder_layers});
    model.subprograms.push_back(
        {BuildAttnOut(tokens, config.hidden, config.norm), config.decoder_layers});
    model.subprograms.push_back(
        {BuildFfn(tokens, config.hidden, config.ffn_dim, config.activation, config.norm),
         config.decoder_layers});
  }
  return model;
}

namespace {

// tokens = batch*seq rows by a fixed feature column.
TensorLayout TokensByFixed(const char* name, std::int64_t fixed) {
  TensorLayout layout;
  layout.name = name;
  layout.dims.push_back({SubDim{DimAxis::kBatch, 1}, SubDim{DimAxis::kSeq, 1}});
  layout.dims.push_back({SubDim{DimAxis::kFixed, fixed}});
  return layout;
}

// bh = batch*heads, then seq, then head_dim.
TensorLayout BhSeqHead(const char* name, std::int64_t heads, std::int64_t head_dim) {
  TensorLayout layout;
  layout.name = name;
  layout.dims.push_back({SubDim{DimAxis::kBatch, 1}, SubDim{DimAxis::kFixed, heads}});
  layout.dims.push_back({SubDim{DimAxis::kSeq, 1}});
  layout.dims.push_back({SubDim{DimAxis::kFixed, head_dim}});
  return layout;
}

TensorLayout AttnMask(const char* name) {
  TensorLayout layout;
  layout.name = name;
  layout.dims.push_back({SubDim{DimAxis::kSeq, 1}});
  layout.dims.push_back({SubDim{DimAxis::kSeq, 1}});
  layout.attn_mask = true;
  return layout;
}

SubprogramLayout QkvLayout(const ModelConfig& c) {
  SubprogramLayout layout;
  layout.inputs.push_back(TokensByFixed("x", c.hidden));
  for (const char* which : {"q", "k", "v"}) {
    layout.outputs.push_back(TokensByFixed(which, c.hidden));
  }
  return layout;
}

SubprogramLayout MhaLayout(const ModelConfig& c) {
  SubprogramLayout layout;
  layout.inputs.push_back(BhSeqHead("query", c.heads, c.head_dim()));
  layout.inputs.push_back(BhSeqHead("key", c.heads, c.head_dim()));
  layout.inputs.push_back(BhSeqHead("value", c.heads, c.head_dim()));
  layout.inputs.push_back(AttnMask("mask"));
  layout.outputs.push_back(BhSeqHead("out", c.heads, c.head_dim()));
  return layout;
}

SubprogramLayout AttnOutLayout(const ModelConfig& c) {
  SubprogramLayout layout;
  layout.inputs.push_back(TokensByFixed("attn", c.hidden));
  layout.inputs.push_back(TokensByFixed("residual", c.hidden));
  layout.outputs.push_back(TokensByFixed("out", c.hidden));
  return layout;
}

SubprogramLayout FfnLayout(const ModelConfig& c) {
  SubprogramLayout layout;
  layout.inputs.push_back(TokensByFixed("x", c.hidden));
  layout.outputs.push_back(TokensByFixed("out", c.hidden));
  return layout;
}

}  // namespace

BucketedModel BuildModelBucketed(ModelKind kind, const ShapeKey& shape,
                                 const BucketingPolicy& policy) {
  BucketedModel bm;
  bm.shape = shape;
  bm.bucket_key = policy.BucketFor(shape);
  bm.exact = GetModelConfig(kind, shape.batch, shape.seq);
  bm.bucket = GetModelConfig(kind, bm.bucket_key.batch, bm.bucket_key.seq);

  const ModelConfig& c = bm.bucket;
  bm.model.config = c;
  const std::int64_t tokens = c.tokens();
  const std::int64_t bh = c.batch * c.heads;

  auto append_layer_stack = [&](int layers) {
    // Same segmentation as BuildModel, but attention is *always* masked:
    // padded kv columns are neutralized through the mask tensor, so the
    // graph structure is identical for every shape in the bucket.
    bm.model.subprograms.push_back({BuildQkvProj(tokens, c.hidden, c.hidden), layers});
    bm.layouts.push_back(QkvLayout(c));
    bm.model.subprograms.push_back(
        {BuildMha(bh, c.seq, c.seq, c.head_dim(), /*masked=*/true), layers});
    bm.layouts.push_back(MhaLayout(c));
    bm.model.subprograms.push_back({BuildAttnOut(tokens, c.hidden, c.norm), layers});
    bm.layouts.push_back(AttnOutLayout(c));
    if (c.gated_ffn) {
      bm.model.subprograms.push_back({BuildSwigluFfn(tokens, c.hidden, c.ffn_dim), layers});
    } else {
      bm.model.subprograms.push_back(
          {BuildFfn(tokens, c.hidden, c.ffn_dim, c.activation, c.norm), layers});
    }
    bm.layouts.push_back(FfnLayout(c));
  };

  append_layer_stack(c.num_layers);

  if (c.decoder_layers > 0) {
    // Decoder: causal self-attention + cross-attention + FFN, all masked.
    bm.model.subprograms.push_back(
        {BuildQkvProj(tokens, c.hidden, c.hidden), c.decoder_layers});
    bm.layouts.push_back(QkvLayout(c));
    bm.model.subprograms.push_back(
        {BuildMha(bh, c.seq, c.seq, c.head_dim(), /*masked=*/true), c.decoder_layers});
    bm.layouts.push_back(MhaLayout(c));
    bm.model.subprograms.push_back(
        {BuildAttnOut(tokens, c.hidden, c.norm), c.decoder_layers});
    bm.layouts.push_back(AttnOutLayout(c));
    bm.model.subprograms.push_back(
        {BuildMha(bh, c.seq, c.seq, c.head_dim(), /*masked=*/true), c.decoder_layers});
    bm.layouts.push_back(MhaLayout(c));
    bm.model.subprograms.push_back(
        {BuildAttnOut(tokens, c.hidden, c.norm), c.decoder_layers});
    bm.layouts.push_back(AttnOutLayout(c));
    bm.model.subprograms.push_back(
        {BuildFfn(tokens, c.hidden, c.ffn_dim, c.activation, c.norm), c.decoder_layers});
    bm.layouts.push_back(FfnLayout(c));
  }
  return bm;
}

std::vector<ModelKind> AllModelKinds() {
  return {ModelKind::kBert, ModelKind::kAlbert, ModelKind::kT5, ModelKind::kViT,
          ModelKind::kLlama2};
}

}  // namespace spacefusion
