// Fluent construction of operator graphs.
//
// Composite helpers (Softmax, LayerNorm, RmsNorm, Linear, ...) emit the same
// primitive-op decompositions shown in the paper's Fig. 10 DFGs.
//
// Malformed user input (incompatible shapes, invalid tensor ids, marking a
// non-intermediate as output) does not abort: the first failure latches a
// sticky error status, the failing emit returns kInvalidTensor (which later
// emits silently propagate), and TryBuild() surfaces the status. Build()
// keeps the die-on-error contract for callers constructing known-good
// graphs.
#ifndef SPACEFUSION_SRC_GRAPH_BUILDER_H_
#define SPACEFUSION_SRC_GRAPH_BUILDER_H_

#include <string>

#include "src/graph/graph.h"

namespace spacefusion {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::string name = "graph") : graph_(std::move(name)) {}

  // --- Graph-boundary tensors -------------------------------------------
  TensorId Input(const std::string& name, Shape shape, DType dtype = DType::kF16);
  TensorId Weight(const std::string& name, Shape shape, DType dtype = DType::kF16);
  TensorId Constant(const std::string& name, float value);

  // --- Primitive ops ------------------------------------------------------
  TensorId MatMul(TensorId a, TensorId b, bool transpose_a = false, bool transpose_b = false,
                  const std::string& name = "");
  TensorId Unary(UnaryKind kind, TensorId x, const std::string& name = "");
  TensorId Binary(BinaryKind kind, TensorId a, TensorId b, const std::string& name = "");
  TensorId Reduce(ReduceKind kind, TensorId x, const std::string& name = "");

  // --- Composite helpers (primitive decompositions) -----------------------
  TensorId Add(TensorId a, TensorId b) { return Binary(BinaryKind::kAdd, a, b); }
  TensorId Sub(TensorId a, TensorId b) { return Binary(BinaryKind::kSub, a, b); }
  TensorId Mul(TensorId a, TensorId b) { return Binary(BinaryKind::kMul, a, b); }
  TensorId Div(TensorId a, TensorId b) { return Binary(BinaryKind::kDiv, a, b); }
  TensorId Relu(TensorId x) { return Unary(UnaryKind::kRelu, x); }
  TensorId Gelu(TensorId x) { return Unary(UnaryKind::kGelu, x); }
  TensorId Sigmoid(TensorId x) { return Unary(UnaryKind::kSigmoid, x); }
  TensorId Tanh(TensorId x) { return Unary(UnaryKind::kTanh, x); }
  TensorId Exp(TensorId x) { return Unary(UnaryKind::kExp, x); }
  TensorId Scale(TensorId x, float factor, const std::string& name = "");

  // max / sub / exp / sum / div over the last axis.
  TensorId Softmax(TensorId x);
  // mean / sub / square / mean / +eps / sqrt / div / *gamma / +beta.
  TensorId LayerNorm(TensorId x, TensorId gamma, TensorId beta, float eps = 1e-5f);
  // square / mean / +eps / rsqrt / mul / *gamma (Llama-family).
  TensorId RmsNorm(TensorId x, TensorId gamma, float eps = 1e-6f);
  // x @ w (+ bias broadcast over rows if bias is valid).
  TensorId Linear(TensorId x, TensorId w, TensorId bias = kInvalidTensor,
                  bool transpose_w = false);

  // Marks a tensor as a graph output (latches an error for non-intermediates).
  void MarkOutput(TensorId id);

  const Shape& shape(TensorId id) const { return graph_.tensor(id).shape; }

  // First construction error, or Ok. Sticky: once set, every subsequent emit
  // is a no-op returning kInvalidTensor.
  const Status& status() const { return status_; }

  // Finalizes the graph: any latched construction error or validation
  // failure is returned as a Status instead of aborting.
  StatusOr<Graph> TryBuild();

  // Finalizes and validates the graph (dies on invariant violations).
  Graph Build();

  Graph& graph() { return graph_; }

 private:
  TensorId EmitOp(OpKind kind, OpAttrs attrs, std::vector<TensorId> inputs,
                  const std::string& name);
  // Latches `status` if no earlier error is recorded.
  void Fail(Status status);

  Graph graph_;
  Status status_;
  int temp_counter_ = 0;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_GRAPH_BUILDER_H_
