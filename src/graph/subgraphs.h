// Builders for the evaluated subgraphs of the paper's Fig. 10, plus the
// transformer building blocks the end-to-end models are segmented into.
#ifndef SPACEFUSION_SRC_GRAPH_SUBGRAPHS_H_
#define SPACEFUSION_SRC_GRAPH_SUBGRAPHS_H_

#include <cstdint>

#include "src/graph/graph.h"

namespace spacefusion {

enum class NormKind { kLayerNorm, kRmsNorm };

// Fig. 10(a): `num_layers` stacked Linear+ReLU layers.
// X[m,k] -> (W[k,n], B[n], ReLU) -> (W[n,n], B[n], ReLU) -> ...
Graph BuildMlp(int num_layers, std::int64_t m, std::int64_t n, std::int64_t k);

// Fig. 10(b): simplified LSTM cell.
// x[batch,input_dim], h[batch,hidden], c[batch,hidden]:
//   s = x@W1 + b + h@W2;  i = sigmoid(s);  g = tanh(s);  c' = c + i*g
Graph BuildLstmCell(std::int64_t batch, std::int64_t input_dim, std::int64_t hidden);

// Fig. 10(c): LayerNorm over the last axis of a 2-D input (9 MI ops).
Graph BuildLayerNormGraph(std::int64_t m, std::int64_t n);

// Fig. 10(d): per-head multi-head attention core.
// Q[bh,sq,d], K[bh,skv,d], V[bh,skv,d]:
//   P = softmax(Q@K^T * 1/sqrt(d) (+ mask));  Out = P@V
Graph BuildMha(std::int64_t batch_heads, std::int64_t seq_q, std::int64_t seq_kv,
               std::int64_t head_dim, bool masked = false);

// --- Transformer-layer subprograms (model segmentation units) -------------

// QKV projection: x[tokens,hidden] -> three Linear outputs.
Graph BuildQkvProj(std::int64_t tokens, std::int64_t hidden, std::int64_t qkv_dim);

// Attention output projection + residual + norm.
Graph BuildAttnOut(std::int64_t tokens, std::int64_t hidden, NormKind norm);

// Feed-forward block: Linear -> activation -> Linear + residual + norm.
Graph BuildFfn(std::int64_t tokens, std::int64_t hidden, std::int64_t ffn_dim, UnaryKind act,
               NormKind norm);

// Llama-style gated FFN: (silu(x@Wg) * (x@Wu)) @ Wd + residual + RMSNorm.
Graph BuildSwigluFfn(std::int64_t tokens, std::int64_t hidden, std::int64_t ffn_dim);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_GRAPH_SUBGRAPHS_H_
