#include "src/graph/subgraphs.h"

#include <cmath>

#include "src/graph/builder.h"
#include "src/support/string_util.h"

namespace spacefusion {

Graph BuildMlp(int num_layers, std::int64_t m, std::int64_t n, std::int64_t k) {
  GraphBuilder b(StrCat("mlp_", num_layers, "x_", m, "x", n, "x", k));
  TensorId x = b.Input("x", Shape({m, k}));
  std::int64_t in_dim = k;
  for (int layer = 0; layer < num_layers; ++layer) {
    TensorId w = b.Weight(StrCat("w", layer), Shape({in_dim, n}));
    TensorId bias = b.Weight(StrCat("b", layer), Shape({n}));
    x = b.Relu(b.Linear(x, w, bias));
    in_dim = n;
  }
  b.MarkOutput(x);
  return b.Build();
}

Graph BuildLstmCell(std::int64_t batch, std::int64_t input_dim, std::int64_t hidden) {
  // Simplified cell matching the paper's Fig. 10(b): the cuBLAS baseline
  // executes it as 5 unfused kernels (GEMM, GEMM, add, sigmoid, mul).
  GraphBuilder b(StrCat("lstm_cell_", batch, "x", input_dim, "x", hidden));
  TensorId x = b.Input("x", Shape({batch, input_dim}));
  TensorId h = b.Input("h", Shape({batch, hidden}));
  TensorId c = b.Input("c", Shape({batch, hidden}));
  TensorId w1 = b.Weight("w1", Shape({input_dim, hidden}));
  TensorId w2 = b.Weight("w2", Shape({hidden, hidden}));

  TensorId z1 = b.MatMul(x, w1);
  TensorId z2 = b.MatMul(h, w2);
  TensorId s = b.Add(z1, z2);
  TensorId gate = b.Sigmoid(s);
  TensorId c_new = b.Mul(gate, c);
  b.MarkOutput(c_new);
  return b.Build();
}

Graph BuildLayerNormGraph(std::int64_t m, std::int64_t n) {
  GraphBuilder b(StrCat("layernorm_", m, "x", n));
  TensorId x = b.Input("x", Shape({m, n}));
  TensorId gamma = b.Weight("gamma", Shape({n}));
  TensorId beta = b.Weight("beta", Shape({n}));
  TensorId out = b.LayerNorm(x, gamma, beta);
  b.MarkOutput(out);
  return b.Build();
}

Graph BuildMha(std::int64_t batch_heads, std::int64_t seq_q, std::int64_t seq_kv,
               std::int64_t head_dim, bool masked) {
  GraphBuilder b(StrCat("mha_", batch_heads, "x", seq_q, "x", seq_kv, "x", head_dim));
  TensorId q = b.Input("query", Shape({batch_heads, seq_q, head_dim}));
  TensorId k = b.Input("key", Shape({batch_heads, seq_kv, head_dim}));
  TensorId v = b.Input("value", Shape({batch_heads, seq_kv, head_dim}));

  TensorId qk = b.MatMul(q, k, /*transpose_a=*/false, /*transpose_b=*/true, "qk");
  TensorId scaled = b.Scale(qk, 1.0f / std::sqrt(static_cast<float>(head_dim)));
  if (masked) {
    TensorId mask = b.Input("mask", Shape({seq_q, seq_kv}));
    scaled = b.Add(scaled, mask);
  }
  TensorId probs = b.Softmax(scaled);
  TensorId out = b.MatMul(probs, v, false, false, "out");
  b.MarkOutput(out);
  return b.Build();
}

Graph BuildQkvProj(std::int64_t tokens, std::int64_t hidden, std::int64_t qkv_dim) {
  GraphBuilder b(StrCat("qkv_proj_", tokens, "x", hidden));
  TensorId x = b.Input("x", Shape({tokens, hidden}));
  for (const char* which : {"q", "k", "v"}) {
    TensorId w = b.Weight(StrCat("w_", which), Shape({hidden, qkv_dim}));
    TensorId bias = b.Weight(StrCat("b_", which), Shape({qkv_dim}));
    b.MarkOutput(b.Linear(x, w, bias));
  }
  return b.Build();
}

Graph BuildAttnOut(std::int64_t tokens, std::int64_t hidden, NormKind norm) {
  GraphBuilder b(StrCat("attn_out_", tokens, "x", hidden));
  TensorId attn = b.Input("attn", Shape({tokens, hidden}));
  TensorId residual = b.Input("residual", Shape({tokens, hidden}));
  TensorId w = b.Weight("w_o", Shape({hidden, hidden}));
  TensorId bias = b.Weight("b_o", Shape({hidden}));
  TensorId proj = b.Linear(attn, w, bias);
  TensorId summed = b.Add(proj, residual);
  TensorId out;
  if (norm == NormKind::kLayerNorm) {
    TensorId gamma = b.Weight("gamma", Shape({hidden}));
    TensorId beta = b.Weight("beta", Shape({hidden}));
    out = b.LayerNorm(summed, gamma, beta);
  } else {
    TensorId gamma = b.Weight("gamma", Shape({hidden}));
    out = b.RmsNorm(summed, gamma);
  }
  b.MarkOutput(out);
  return b.Build();
}

Graph BuildFfn(std::int64_t tokens, std::int64_t hidden, std::int64_t ffn_dim, UnaryKind act,
               NormKind norm) {
  GraphBuilder b(StrCat("ffn_", tokens, "x", hidden, "x", ffn_dim));
  TensorId x = b.Input("x", Shape({tokens, hidden}));
  TensorId w1 = b.Weight("w1", Shape({hidden, ffn_dim}));
  TensorId b1 = b.Weight("b1", Shape({ffn_dim}));
  TensorId w2 = b.Weight("w2", Shape({ffn_dim, hidden}));
  TensorId b2 = b.Weight("b2", Shape({hidden}));
  TensorId mid = b.Unary(act, b.Linear(x, w1, b1));
  TensorId proj = b.Linear(mid, w2, b2);
  TensorId summed = b.Add(proj, x);
  TensorId out;
  if (norm == NormKind::kLayerNorm) {
    TensorId gamma = b.Weight("gamma", Shape({hidden}));
    TensorId beta = b.Weight("beta", Shape({hidden}));
    out = b.LayerNorm(summed, gamma, beta);
  } else {
    TensorId gamma = b.Weight("gamma", Shape({hidden}));
    out = b.RmsNorm(summed, gamma);
  }
  b.MarkOutput(out);
  return b.Build();
}

Graph BuildSwigluFfn(std::int64_t tokens, std::int64_t hidden, std::int64_t ffn_dim) {
  GraphBuilder b(StrCat("swiglu_ffn_", tokens, "x", hidden, "x", ffn_dim));
  TensorId x = b.Input("x", Shape({tokens, hidden}));
  TensorId wg = b.Weight("w_gate", Shape({hidden, ffn_dim}));
  TensorId wu = b.Weight("w_up", Shape({hidden, ffn_dim}));
  TensorId wd = b.Weight("w_down", Shape({ffn_dim, hidden}));
  TensorId gate = b.MatMul(x, wg);
  // SiLU(x) = x * sigmoid(x)
  TensorId silu = b.Mul(gate, b.Sigmoid(gate));
  TensorId up = b.MatMul(x, wu);
  TensorId mid = b.Mul(silu, up);
  TensorId down = b.MatMul(mid, wd);
  TensorId summed = b.Add(down, x);
  TensorId gamma = b.Weight("gamma", Shape({hidden}));
  TensorId out = b.RmsNorm(summed, gamma);
  b.MarkOutput(out);
  return b.Build();
}

}  // namespace spacefusion
