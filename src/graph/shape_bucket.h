// Shape buckets: the dynamic-shape axis of the compiler.
//
// Real traffic never has one sequence length, and every (model, shape) pair
// used to be a fresh compile. A ShapeKey names a runtime request shape
// (batch, seq); a BucketingPolicy rounds it up to a bucket shape; the engine
// compiles one schedule per *bucket* and a runtime dispatch table pads
// request tensors to the bucket extent, executes the bucket's program, and
// slices the outputs back. The per-tensor padding rules live here as
// SubprogramLayouts emitted by the bucketed model factory (models.h), so the
// dispatcher never has to guess which dims of a flattened tensor carry batch
// or sequence.
#ifndef SPACEFUSION_SRC_GRAPH_SHAPE_BUCKET_H_
#define SPACEFUSION_SRC_GRAPH_SHAPE_BUCKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"
#include "src/tensor/tensor.h"

namespace spacefusion {

// A runtime request shape. For ViT `seq` is the image side length in pixels,
// exactly as in GetModelConfig: bucketing happens on the *request* axis, the
// derived patch count follows monotonically.
struct ShapeKey {
  std::int64_t batch = 1;
  std::int64_t seq = 128;

  // Canonical spelling, e.g. "b1s128". Used as the cache bucket tag, in
  // CompileReports, and on the serve wire.
  std::string Label() const;
  bool operator==(const ShapeKey& other) const {
    return batch == other.batch && seq == other.seq;
  }
  bool operator!=(const ShapeKey& other) const { return !(*this == other); }
};

// Parses a "b<batch>s<seq>" label back into a ShapeKey.
StatusOr<ShapeKey> ParseShapeLabel(const std::string& label);

// Smallest power of two >= v (v >= 1).
std::int64_t RoundUpPow2(std::int64_t v);

// Rounds request shapes up to bucket shapes. The default buckets both axes
// to powers of two; SPACEFUSION_SHAPE_BUCKETS overrides the *seq* axis with
// an explicit ascending comma list (e.g. "32,48,128"), falling back to
// power-of-two round-up above the largest listed bucket. The identity
// policy maps every shape to itself — the exact-compile reference the
// differential suite checks dispatch against.
class BucketingPolicy {
 public:
  static BucketingPolicy PowersOfTwo();
  static BucketingPolicy Identity();
  // Parses a SPACEFUSION_SHAPE_BUCKETS-style spec (seq-axis comma list).
  static StatusOr<BucketingPolicy> FromSpec(const std::string& spec);
  // PowersOfTwo unless SPACEFUSION_SHAPE_BUCKETS is set and valid (an
  // invalid spec logs a warning and falls back rather than failing compiles).
  static BucketingPolicy FromEnv();

  ShapeKey BucketFor(const ShapeKey& shape) const;
  bool is_identity() const { return identity_; }
  std::string ToString() const;

 private:
  bool identity_ = false;
  std::vector<std::int64_t> seq_buckets_;  // ascending; empty => powers of two
};

// How far apart two buckets are for config-transfer purposes: L1 distance in
// log2 space over both axes. The tuner seeds a new bucket's screen from the
// nearest already-tuned bucket under this metric.
double BucketDistance(const ShapeKey& a, const ShapeKey& b);

// ---- Per-tensor padding layouts -----------------------------------------
//
// Model tensors flatten the (batch, seq) axes into grouped dims — tokens =
// batch*seq, bh = batch*heads — so padding a dim is not a suffix copy: it
// must decompose each dim into sub-dims, embed the exact extents into the
// bucket extents with strided copies, and remember which tensor is the
// additive attention mask (whose padded key/value columns must read -1e30,
// not 0, so the padded softmax region underflows to exactly zero).

enum class DimAxis {
  kFixed,  // a model hyper-parameter (hidden, head_dim, heads): never padded
  kBatch,  // scales with ShapeKey::batch
  kSeq,    // scales with the (derived) sequence length
};

struct SubDim {
  DimAxis axis = DimAxis::kFixed;
  std::int64_t extent = 1;  // used only when axis == kFixed
};

// Extents the kBatch/kSeq axes resolve to. `seq` is the *derived* sequence
// length (ModelConfig::seq — patch count for ViT), not the raw request axis.
struct AxisExtents {
  std::int64_t batch = 1;
  std::int64_t seq = 1;
};

std::int64_t SubDimExtent(const SubDim& sub, const AxisExtents& extents);

struct TensorLayout {
  std::string name;  // debugging only; matching is positional
  // One entry per tensor dim, each a row-major list of sub-dims whose
  // extents multiply to the dim extent (e.g. tokens = [kBatch, kSeq]).
  std::vector<std::vector<SubDim>> dims;
  // Additive attention mask: padded kv columns (last dim) are filled with
  // kMaskPadValue instead of zero.
  bool attn_mask = false;
};

// Additive-mask fill for padded key/value columns: exp(kMaskPadValue - max)
// underflows to exactly +0.0f, so the bucket softmax is bit-identical to the
// exact softmax on the real region (padding is a suffix, summation order of
// real elements is unchanged).
inline constexpr float kMaskPadValue = -1e30f;

// Padding rules for one subprogram: entries parallel to the graph's
// InputIds() / OutputIds() order. Weights are not listed — they are
// shape-invariant and copied through by the dispatcher.
struct SubprogramLayout {
  std::vector<TensorLayout> inputs;
  std::vector<TensorLayout> outputs;
};

// Shape of `layout` at the given axis extents.
Shape LayoutShape(const TensorLayout& layout, const AxisExtents& extents);

// Embeds `exact` (shaped LayoutShape(layout, exact_extents)) into a tensor
// at the bucket extents. Padding is zero-fill, except attention masks where
// padded kv columns read kMaskPadValue (padded query rows keep 0 in real
// columns, so even a fully padded row stays NaN-free through softmax).
StatusOr<Tensor> PadToBucket(const TensorLayout& layout, const Tensor& exact,
                             const AxisExtents& exact_extents,
                             const AxisExtents& bucket_extents);

// Inverse of PadToBucket's embedding: copies the real region of a
// bucket-shaped tensor back out to the exact shape.
StatusOr<Tensor> SliceToExact(const TensorLayout& layout, const Tensor& bucket,
                              const AxisExtents& exact_extents,
                              const AxisExtents& bucket_extents);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_GRAPH_SHAPE_BUCKET_H_
