#include "src/graph/builder.h"

#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

TensorId GraphBuilder::Input(const std::string& name, Shape shape, DType dtype) {
  TensorInfo info;
  info.name = name;
  info.shape = std::move(shape);
  info.dtype = dtype;
  info.kind = TensorKind::kInput;
  return graph_.AddTensor(std::move(info));
}

TensorId GraphBuilder::Weight(const std::string& name, Shape shape, DType dtype) {
  TensorInfo info;
  info.name = name;
  info.shape = std::move(shape);
  info.dtype = dtype;
  info.kind = TensorKind::kWeight;
  return graph_.AddTensor(std::move(info));
}

TensorId GraphBuilder::Constant(const std::string& name, float value) {
  TensorInfo info;
  info.name = name;
  info.shape = Shape({1});
  info.dtype = DType::kF32;
  info.kind = TensorKind::kConstant;
  info.constant_value = value;
  return graph_.AddTensor(std::move(info));
}

void GraphBuilder::Fail(Status status) {
  if (status_.ok()) {
    status_ = std::move(status);
  }
}

TensorId GraphBuilder::EmitOp(OpKind kind, OpAttrs attrs, std::vector<TensorId> inputs,
                              const std::string& name) {
  if (!status_.ok()) {
    return kInvalidTensor;
  }
  std::vector<Shape> in_shapes;
  in_shapes.reserve(inputs.size());
  // Output dtype follows the first non-constant operand (FP32 scalar
  // constants like 1/sqrt(d) must not promote the whole chain).
  DType dtype = DType::kF16;
  bool dtype_set = false;
  for (TensorId in : inputs) {
    if (in < 0 || in >= static_cast<TensorId>(graph_.tensors().size())) {
      Fail(InvalidArgument(StrCat("[SFV0101] ", OpKindName(kind),
                                  " references invalid tensor id ", in)));
      return kInvalidTensor;
    }
    in_shapes.push_back(graph_.tensor(in).shape);
    if (!dtype_set && graph_.tensor(in).kind != TensorKind::kConstant) {
      dtype = graph_.tensor(in).dtype;
      dtype_set = true;
    }
  }
  StatusOr<Shape> inferred = TryInferOpShape(kind, attrs, in_shapes);
  if (!inferred.ok()) {
    Fail(inferred.status());
    return kInvalidTensor;
  }
  Shape out_shape = std::move(inferred).value();

  std::string op_name = name.empty() ? StrCat(OpKindName(kind), "_", temp_counter_++) : name;

  TensorInfo out_info;
  out_info.name = StrCat(op_name, ".out");
  out_info.shape = std::move(out_shape);
  out_info.dtype = dtype;
  out_info.kind = TensorKind::kIntermediate;
  TensorId out = graph_.AddTensor(std::move(out_info));

  Op op;
  op.kind = kind;
  op.attrs = attrs;
  op.inputs = std::move(inputs);
  op.output = out;
  op.name = op_name;
  graph_.AddOp(std::move(op));
  return out;
}

TensorId GraphBuilder::MatMul(TensorId a, TensorId b, bool transpose_a, bool transpose_b,
                              const std::string& name) {
  OpAttrs attrs;
  attrs.transpose_a = transpose_a;
  attrs.transpose_b = transpose_b;
  return EmitOp(OpKind::kMatMul, attrs, {a, b}, name);
}

TensorId GraphBuilder::Unary(UnaryKind kind, TensorId x, const std::string& name) {
  OpAttrs attrs;
  attrs.unary = kind;
  return EmitOp(OpKind::kUnary, attrs, {x},
                name.empty() ? StrCat(UnaryKindName(kind), "_", temp_counter_++) : name);
}

TensorId GraphBuilder::Binary(BinaryKind kind, TensorId a, TensorId b, const std::string& name) {
  OpAttrs attrs;
  attrs.binary = kind;
  return EmitOp(OpKind::kBinary, attrs, {a, b},
                name.empty() ? StrCat(BinaryKindName(kind), "_", temp_counter_++) : name);
}

TensorId GraphBuilder::Reduce(ReduceKind kind, TensorId x, const std::string& name) {
  OpAttrs attrs;
  attrs.reduce = kind;
  return EmitOp(OpKind::kReduce, attrs, {x},
                name.empty() ? StrCat(ReduceKindName(kind), "_", temp_counter_++) : name);
}

TensorId GraphBuilder::Scale(TensorId x, float factor, const std::string& name) {
  TensorId c = Constant(StrCat("scale_", temp_counter_++), factor);
  return Binary(BinaryKind::kMul, x, c, name);
}

TensorId GraphBuilder::Softmax(TensorId x) {
  TensorId row_max = Reduce(ReduceKind::kMax, x);
  TensorId shifted = Binary(BinaryKind::kSub, x, row_max);
  TensorId exps = Unary(UnaryKind::kExp, shifted);
  TensorId row_sum = Reduce(ReduceKind::kSum, exps);
  return Binary(BinaryKind::kDiv, exps, row_sum);
}

TensorId GraphBuilder::LayerNorm(TensorId x, TensorId gamma, TensorId beta, float eps) {
  TensorId mean = Reduce(ReduceKind::kMean, x);
  TensorId centered = Binary(BinaryKind::kSub, x, mean);
  TensorId sq = Unary(UnaryKind::kSquare, centered);
  TensorId var = Reduce(ReduceKind::kMean, sq);
  TensorId eps_c = Constant(StrCat("eps_", temp_counter_++), eps);
  TensorId var_eps = Binary(BinaryKind::kAdd, var, eps_c);
  TensorId denom = Unary(UnaryKind::kSqrt, var_eps);
  TensorId normed = Binary(BinaryKind::kDiv, centered, denom);
  if (gamma != kInvalidTensor) {
    normed = Binary(BinaryKind::kMul, normed, gamma);
  }
  if (beta != kInvalidTensor) {
    normed = Binary(BinaryKind::kAdd, normed, beta);
  }
  return normed;
}

TensorId GraphBuilder::RmsNorm(TensorId x, TensorId gamma, float eps) {
  TensorId sq = Unary(UnaryKind::kSquare, x);
  TensorId ms = Reduce(ReduceKind::kMean, sq);
  TensorId eps_c = Constant(StrCat("eps_", temp_counter_++), eps);
  TensorId ms_eps = Binary(BinaryKind::kAdd, ms, eps_c);
  TensorId inv = Unary(UnaryKind::kRsqrt, ms_eps);
  TensorId normed = Binary(BinaryKind::kMul, x, inv);
  if (gamma != kInvalidTensor) {
    normed = Binary(BinaryKind::kMul, normed, gamma);
  }
  return normed;
}

TensorId GraphBuilder::Linear(TensorId x, TensorId w, TensorId bias, bool transpose_w) {
  TensorId out = MatMul(x, w, /*transpose_a=*/false, transpose_w);
  if (bias != kInvalidTensor) {
    out = Binary(BinaryKind::kAdd, out, bias);
  }
  return out;
}

void GraphBuilder::MarkOutput(TensorId id) {
  if (!status_.ok()) {
    return;
  }
  if (id < 0 || id >= static_cast<TensorId>(graph_.tensors().size())) {
    Fail(InvalidArgument(StrCat("[SFV0101] MarkOutput of invalid tensor id ", id)));
    return;
  }
  if (graph_.tensor(id).kind != TensorKind::kIntermediate) {
    Fail(InvalidArgument(StrCat("[SFV0105] only intermediate tensors can become outputs; ",
                                graph_.tensor(id).name, " is ",
                                TensorKindName(graph_.tensor(id).kind))));
    return;
  }
  graph_.tensor(id).kind = TensorKind::kOutput;
}

StatusOr<Graph> GraphBuilder::TryBuild() {
  SF_RETURN_IF_ERROR(status_);
  SF_RETURN_IF_ERROR(graph_.Validate());
  return std::move(graph_);
}

Graph GraphBuilder::Build() {
  StatusOr<Graph> graph = TryBuild();
  SF_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

}  // namespace spacefusion
