// Dataflow graphs (DFGs) of primitive tensor operators.
//
// A Graph is the unit the paper calls a "subprogram": the compiler segments a
// model into subprograms and builds one fused SMG per subprogram. Ops are
// stored in topological order (the builder only ever appends ops whose inputs
// already exist).
#ifndef SPACEFUSION_SRC_GRAPH_GRAPH_H_
#define SPACEFUSION_SRC_GRAPH_GRAPH_H_

#include <string>
#include <vector>

#include "src/graph/op.h"
#include "src/support/status.h"
#include "src/tensor/dtype.h"
#include "src/tensor/shape.h"

namespace spacefusion {

enum class TensorKind { kInput, kWeight, kConstant, kIntermediate, kOutput };

const char* TensorKindName(TensorKind kind);

struct TensorInfo {
  TensorId id = kInvalidTensor;
  std::string name;
  Shape shape;
  DType dtype = DType::kF16;
  TensorKind kind = TensorKind::kIntermediate;
  // For kConstant tensors: the splatted value.
  float constant_value = 0.0f;

  std::int64_t bytes() const { return shape.volume() * DTypeSize(dtype); }
};

class Graph {
 public:
  explicit Graph(std::string name = "graph") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  TensorId AddTensor(TensorInfo info);
  OpId AddOp(Op op);

  const std::vector<TensorInfo>& tensors() const { return tensors_; }
  const std::vector<Op>& ops() const { return ops_; }

  const TensorInfo& tensor(TensorId id) const { return tensors_[static_cast<size_t>(id)]; }
  TensorInfo& tensor(TensorId id) { return tensors_[static_cast<size_t>(id)]; }
  const Op& op(OpId id) const { return ops_[static_cast<size_t>(id)]; }

  // Op that produces `id`, or -1 for graph inputs/weights/constants.
  OpId producer(TensorId id) const { return producer_[static_cast<size_t>(id)]; }
  // Ops that read `id`.
  const std::vector<OpId>& consumers(TensorId id) const {
    return consumers_[static_cast<size_t>(id)];
  }

  std::vector<TensorId> InputIds() const;   // kInput tensors
  std::vector<TensorId> WeightIds() const;  // kWeight tensors
  std::vector<TensorId> OutputIds() const;  // kOutput tensors

  // Total FLOPs of all ops (matmul contraction counted).
  std::int64_t TotalFlops() const;
  // Bytes of all graph-boundary tensors (inputs + weights + outputs): the
  // minimum possible off-chip traffic of a perfectly fused implementation.
  std::int64_t BoundaryBytes() const;

  // Structural invariants: shapes consistent with op semantics, topological
  // op order, every output produced exactly once.
  Status Validate() const;

  // Graphs that compute the same thing up to tensor naming hash equal; used
  // for compile-once caching of repetitive subprograms (paper Sec. 5).
  std::uint64_t StructuralHash() const;

  // Like StructuralHash but ignoring tensor shapes: two instantiations of
  // the same operator topology collide. Used to count *distinct* fusion
  // patterns (paper Table 6).
  std::uint64_t TopologyHash() const;

  // Name-insensitive canonical rendering covering exactly the fields
  // StructuralHash mixes: two graphs have equal CanonicalForm iff they are
  // structurally identical. The engine's program cache compares this on
  // every fingerprint hit to rule out hash collisions.
  std::string CanonicalForm() const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<TensorInfo> tensors_;
  std::vector<Op> ops_;
  std::vector<OpId> producer_;
  std::vector<std::vector<OpId>> consumers_;
};

// Output shape implied by an op applied to input shapes. Malformed user
// input (wrong arity, incompatible broadcast, matmul rank/contraction
// mismatch) yields kInvalidArgument whose message carries the matching
// verifier code ("[SFV0103]" / "[SFV0107]") so callers surfacing it keep a
// machine-greppable diagnostic.
StatusOr<Shape> TryInferOpShape(OpKind kind, const OpAttrs& attrs,
                                const std::vector<Shape>& inputs);

// Like TryInferOpShape but dies on mismatch; for callers that have already
// validated their inputs.
Shape InferOpShape(OpKind kind, const OpAttrs& attrs, const std::vector<Shape>& inputs);

// Splits a graph into weakly-connected components, where ops are connected
// through *produced* tensors (sharing a graph input or weight does not
// connect two chains). Each component computes independent outputs and is
// fused into its own SMG: fusing disconnected chains into one kernel would
// make the fused computational space a cartesian product of unrelated dims.
// Returns the original graph unchanged when it is already connected.
std::vector<Graph> SplitConnectedComponents(const Graph& graph);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_GRAPH_GRAPH_H_
