// End-to-end model zoo: the five Transformer models of the paper's Sec. 6.2
// evaluation, expressed as sequences of subprograms with repeat counts.
//
// Fusion scheduling only depends on graph topology and shapes, so models are
// built from their published architecture hyper-parameters with synthetic
// weights (substitution documented in DESIGN.md).
#ifndef SPACEFUSION_SRC_GRAPH_MODELS_H_
#define SPACEFUSION_SRC_GRAPH_MODELS_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/shape_bucket.h"
#include "src/graph/subgraphs.h"

namespace spacefusion {

enum class ModelKind { kBert, kAlbert, kT5, kViT, kLlama2 };

const char* ModelKindName(ModelKind kind);

struct ModelConfig {
  ModelKind kind = ModelKind::kBert;
  std::string name;
  int num_layers = 12;
  std::int64_t hidden = 768;
  std::int64_t heads = 12;
  std::int64_t ffn_dim = 3072;
  std::int64_t batch = 1;
  std::int64_t seq = 128;
  UnaryKind activation = UnaryKind::kGelu;
  NormKind norm = NormKind::kLayerNorm;
  bool gated_ffn = false;       // Llama SwiGLU
  bool causal_mask = false;     // decoder-style attention
  int decoder_layers = 0;       // T5: extra decoder stack with cross-attention

  std::int64_t head_dim() const { return hidden / heads; }
  std::int64_t tokens() const { return batch * seq; }
};

// A subprogram plus how many times the model executes it. Identical
// repetitions are compiled once (paper Sec. 5, program pre-processing).
struct Subprogram {
  Graph graph;
  int repeat = 1;
};

struct ModelGraph {
  ModelConfig config;
  std::vector<Subprogram> subprograms;

  std::int64_t TotalFlops() const;
};

// Published architecture parameters for each model at (batch, seq).
// For ViT, `seq` is interpreted as the image side length in pixels
// (patch 16, +1 class token).
ModelConfig GetModelConfig(ModelKind kind, std::int64_t batch, std::int64_t seq);

// Expands a config into subprograms (QKV projection, per-head attention,
// attention output + norm, FFN + norm; cross-attention for T5 decoders).
ModelGraph BuildModel(const ModelConfig& config);

// All five evaluated models.
std::vector<ModelKind> AllModelKinds();

// ---- Shape-bucketed factory (dynamic shapes) -----------------------------

// A model built at its *bucket* shape, plus everything the runtime dispatch
// layer needs to serve the exact request shape from it: the exact and bucket
// configs and a per-subprogram padding layout. Unlike BuildModel, every
// attention core carries the additive mask input regardless of
// ModelConfig::causal_mask — masking is how padded key/value columns are
// neutralized, so the bucketed graphs are structurally mask-invariant and a
// causal vs. padding vs. no-op mask is purely a runtime tensor value.
struct BucketedModel {
  ShapeKey shape;        // the request shape (raw axis; image side for ViT)
  ShapeKey bucket_key;   // policy.BucketFor(shape)
  ModelConfig exact;     // config at the request shape (seq derived for ViT)
  ModelConfig bucket;    // config at the bucket shape
  ModelGraph model;      // graphs built at the bucket extents
  // Parallel to model.subprograms: positional padding rules for each
  // subprogram's inputs and outputs.
  std::vector<SubprogramLayout> layouts;

  AxisExtents ExactExtents() const { return {exact.batch, exact.seq}; }
  AxisExtents BucketExtents() const { return {bucket.batch, bucket.seq}; }
};

// Builds `kind` at the bucket that `policy` assigns to `shape`. With
// BucketingPolicy::Identity() this is the exact-shape reference compile the
// differential suite checks dispatch against. Graphs built by this factory
// for two shapes in the same bucket are structurally identical, which is
// what turns a new shape in a tuned bucket into a pure cache hit.
BucketedModel BuildModelBucketed(ModelKind kind, const ShapeKey& shape,
                                 const BucketingPolicy& policy);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_GRAPH_MODELS_H_
