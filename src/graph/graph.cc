#include "src/graph/graph.h"

#include <algorithm>
#include <functional>
#include <map>

#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

const char* TensorKindName(TensorKind kind) {
  switch (kind) {
    case TensorKind::kInput:
      return "input";
    case TensorKind::kWeight:
      return "weight";
    case TensorKind::kConstant:
      return "const";
    case TensorKind::kIntermediate:
      return "interm";
    case TensorKind::kOutput:
      return "output";
  }
  return "?";
}

TensorId Graph::AddTensor(TensorInfo info) {
  TensorId id = static_cast<TensorId>(tensors_.size());
  info.id = id;
  tensors_.push_back(std::move(info));
  producer_.push_back(-1);
  consumers_.emplace_back();
  return id;
}

OpId Graph::AddOp(Op op) {
  OpId id = static_cast<OpId>(ops_.size());
  op.id = id;
  SF_CHECK_NE(op.output, kInvalidTensor);
  producer_[static_cast<size_t>(op.output)] = id;
  for (TensorId in : op.inputs) {
    consumers_[static_cast<size_t>(in)].push_back(id);
  }
  ops_.push_back(std::move(op));
  return id;
}

namespace {
std::vector<TensorId> FilterTensors(const std::vector<TensorInfo>& tensors, TensorKind kind) {
  std::vector<TensorId> out;
  for (const TensorInfo& t : tensors) {
    if (t.kind == kind) {
      out.push_back(t.id);
    }
  }
  return out;
}
}  // namespace

std::vector<TensorId> Graph::InputIds() const { return FilterTensors(tensors_, TensorKind::kInput); }
std::vector<TensorId> Graph::WeightIds() const {
  return FilterTensors(tensors_, TensorKind::kWeight);
}
std::vector<TensorId> Graph::OutputIds() const {
  return FilterTensors(tensors_, TensorKind::kOutput);
}

std::int64_t Graph::TotalFlops() const {
  std::int64_t flops = 0;
  for (const Op& op : ops_) {
    const Shape& out = tensor(op.output).shape;
    std::int64_t contraction = 1;
    if (op.kind == OpKind::kMatMul) {
      const Shape& a = tensor(op.inputs[0]).shape;
      contraction = op.attrs.transpose_a ? a.dim(a.rank() - 2) : a.dim(a.rank() - 1);
    } else if (op.kind == OpKind::kReduce) {
      const Shape& in = tensor(op.inputs[0]).shape;
      contraction = in.dim(in.rank() - 1);
    }
    flops += OpFlops(op, out.volume(), contraction);
  }
  return flops;
}

std::int64_t Graph::BoundaryBytes() const {
  std::int64_t bytes = 0;
  for (const TensorInfo& t : tensors_) {
    if (t.kind == TensorKind::kInput || t.kind == TensorKind::kWeight ||
        t.kind == TensorKind::kOutput) {
      bytes += t.bytes();
    }
  }
  return bytes;
}

namespace {

// Broadcast result shape without the SF_CHECK abort of BroadcastShape:
// incompatible user shapes are an expected, reportable condition here.
StatusOr<Shape> TryBroadcastShape(const Shape& a, const Shape& b) {
  int rank = std::max(a.rank(), b.rank());
  std::vector<std::int64_t> dims(static_cast<size_t>(rank), 1);
  for (int i = 0; i < rank; ++i) {
    std::int64_t da = i < a.rank() ? a.dim(a.rank() - 1 - i) : 1;
    std::int64_t db = i < b.rank() ? b.dim(b.rank() - 1 - i) : 1;
    if (da != db && da != 1 && db != 1) {
      return InvalidArgument(StrCat("[SFV0103] incompatible broadcast: ", a.ToString(), " vs ",
                                    b.ToString()));
    }
    dims[static_cast<size_t>(rank - 1 - i)] = std::max(da, db);
  }
  return Shape(dims);
}

}  // namespace

StatusOr<Shape> TryInferOpShape(OpKind kind, const OpAttrs& attrs,
                                const std::vector<Shape>& inputs) {
  size_t want = (kind == OpKind::kUnary || kind == OpKind::kReduce) ? 1u : 2u;
  if (inputs.size() != want) {
    return InvalidArgument(StrCat("[SFV0107] ", OpKindName(kind), " expects ", want,
                                  " input(s), got ", inputs.size()));
  }
  switch (kind) {
    case OpKind::kMatMul: {
      const Shape& a = inputs[0];
      const Shape& b = inputs[1];
      if (a.rank() < 2 || b.rank() < 2) {
        return InvalidArgument(StrCat("[SFV0103] matmul operands need rank >= 2, got ",
                                      a.ToString(), " @ ", b.ToString()));
      }
      std::int64_t m = attrs.transpose_a ? a.dim(a.rank() - 1) : a.dim(a.rank() - 2);
      std::int64_t k = attrs.transpose_a ? a.dim(a.rank() - 2) : a.dim(a.rank() - 1);
      std::int64_t kb = attrs.transpose_b ? b.dim(b.rank() - 1) : b.dim(b.rank() - 2);
      std::int64_t n = attrs.transpose_b ? b.dim(b.rank() - 2) : b.dim(b.rank() - 1);
      if (k != kb) {
        return InvalidArgument(StrCat("[SFV0103] matmul contraction mismatch: ", a.ToString(),
                                      " @ ", b.ToString()));
      }
      Shape batch_a(std::vector<std::int64_t>(a.dims().begin(), a.dims().end() - 2));
      Shape batch_b(std::vector<std::int64_t>(b.dims().begin(), b.dims().end() - 2));
      SF_ASSIGN_OR_RETURN(Shape batch, TryBroadcastShape(batch_a, batch_b));
      std::vector<std::int64_t> dims = batch.dims();
      dims.push_back(m);
      dims.push_back(n);
      return Shape(dims);
    }
    case OpKind::kUnary:
      return inputs[0];
    case OpKind::kBinary:
      return TryBroadcastShape(inputs[0], inputs[1]);
    case OpKind::kReduce: {
      std::vector<std::int64_t> dims = inputs[0].dims();
      if (dims.empty()) {
        return InvalidArgument("[SFV0103] reduce needs a rank >= 1 operand");
      }
      dims.back() = 1;
      return Shape(dims);
    }
  }
  return Internal("unreachable op kind");
}

Shape InferOpShape(OpKind kind, const OpAttrs& attrs, const std::vector<Shape>& inputs) {
  StatusOr<Shape> shape = TryInferOpShape(kind, attrs, inputs);
  SF_CHECK(shape.ok()) << shape.status().ToString();
  return std::move(shape).value();
}

Status Graph::Validate() const {
  for (const Op& op : ops_) {
    std::vector<Shape> in_shapes;
    for (TensorId in : op.inputs) {
      if (in < 0 || in >= static_cast<TensorId>(tensors_.size())) {
        return Internal(StrCat("op ", op.name, " references invalid tensor ", in));
      }
      // Topological order: inputs must be graph-boundary or already produced.
      const TensorInfo& t = tensor(in);
      if (t.kind == TensorKind::kIntermediate || t.kind == TensorKind::kOutput) {
        OpId prod = producer(in);
        if (prod < 0 || prod >= op.id) {
          return Internal(StrCat("op ", op.name, " input ", t.name, " not yet produced"));
        }
      }
      in_shapes.push_back(t.shape);
    }
    StatusOr<Shape> expect = TryInferOpShape(op.kind, op.attrs, in_shapes);
    if (!expect.ok()) {
      return Internal(StrCat("op ", op.name, ": ", expect.status().message()));
    }
    if (expect.value() != tensor(op.output).shape) {
      return Internal(StrCat("op ", op.name, " output shape ", tensor(op.output).shape.ToString(),
                             " != inferred ", expect.value().ToString()));
    }
  }
  for (const TensorInfo& t : tensors_) {
    bool needs_producer =
        t.kind == TensorKind::kIntermediate || t.kind == TensorKind::kOutput;
    if (needs_producer && producer(t.id) < 0) {
      return Internal(StrCat("tensor ", t.name, " has no producer"));
    }
    if (!needs_producer && producer(t.id) >= 0) {
      return Internal(StrCat("boundary tensor ", t.name, " has a producer"));
    }
  }
  return Status::Ok();
}

std::uint64_t Graph::StructuralHash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;  // FNV prime
  };
  for (const TensorInfo& t : tensors_) {
    mix(static_cast<std::uint64_t>(t.kind));
    mix(static_cast<std::uint64_t>(t.dtype));
    for (std::int64_t d : t.shape.dims()) {
      mix(static_cast<std::uint64_t>(d));
    }
  }
  for (const Op& op : ops_) {
    mix(static_cast<std::uint64_t>(op.kind));
    mix(static_cast<std::uint64_t>(op.attrs.unary));
    mix(static_cast<std::uint64_t>(op.attrs.binary));
    mix(static_cast<std::uint64_t>(op.attrs.reduce));
    mix(op.attrs.transpose_a ? 7u : 3u);
    mix(op.attrs.transpose_b ? 11u : 5u);
    for (TensorId in : op.inputs) {
      mix(static_cast<std::uint64_t>(in) + 17u);
    }
    mix(static_cast<std::uint64_t>(op.output) + 31u);
  }
  return h;
}

std::vector<Graph> SplitConnectedComponents(const Graph& graph) {
  const int num_ops = static_cast<int>(graph.ops().size());
  // Union-find over ops, joined through produced tensors.
  std::vector<int> parent(static_cast<size_t>(num_ops));
  for (int i = 0; i < num_ops; ++i) {
    parent[static_cast<size_t>(i)] = i;
  }
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const Op& op : graph.ops()) {
    for (TensorId in : op.inputs) {
      OpId prod = graph.producer(in);
      if (prod >= 0) {
        parent[static_cast<size_t>(find(prod))] = find(op.id);
      }
    }
  }

  std::map<int, std::vector<OpId>> components;
  for (int i = 0; i < num_ops; ++i) {
    components[find(i)].push_back(i);
  }
  if (components.size() <= 1) {
    return {graph};
  }

  std::vector<Graph> out;
  int index = 0;
  for (const auto& [root, op_ids] : components) {
    Graph component(StrCat(graph.name(), ".c", index++));
    std::vector<TensorId> imported(graph.tensors().size(), kInvalidTensor);
    auto import_tensor = [&](TensorId old) {
      if (imported[static_cast<size_t>(old)] != kInvalidTensor) {
        return imported[static_cast<size_t>(old)];
      }
      TensorId fresh = component.AddTensor(graph.tensor(old));
      imported[static_cast<size_t>(old)] = fresh;
      return fresh;
    };
    for (OpId id : op_ids) {
      Op copy = graph.op(id);
      std::vector<TensorId> inputs;
      inputs.reserve(copy.inputs.size());
      for (TensorId in : copy.inputs) {
        inputs.push_back(import_tensor(in));
      }
      copy.inputs = std::move(inputs);
      copy.output = import_tensor(copy.output);
      component.AddOp(std::move(copy));
    }
    Status st = component.Validate();
    SF_CHECK(st.ok()) << st.ToString();
    out.push_back(std::move(component));
  }
  return out;
}

std::uint64_t Graph::TopologyHash() const {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const Op& op : ops_) {
    mix(static_cast<std::uint64_t>(op.kind));
    mix(static_cast<std::uint64_t>(op.attrs.unary));
    mix(static_cast<std::uint64_t>(op.attrs.binary));
    mix(static_cast<std::uint64_t>(op.attrs.reduce));
    for (TensorId in : op.inputs) {
      OpId prod = producer(in);
      // Encode dataflow structure via producing-op indices, not tensor ids.
      mix(static_cast<std::uint64_t>(prod + 2));
      mix(static_cast<std::uint64_t>(tensor(in).kind));
    }
  }
  return h;
}

std::string Graph::CanonicalForm() const {
  std::ostringstream out;
  for (const TensorInfo& t : tensors_) {
    out << "t" << static_cast<int>(t.kind) << "." << static_cast<int>(t.dtype) << ":";
    for (std::int64_t d : t.shape.dims()) {
      out << d << ",";
    }
    out << ";";
  }
  for (const Op& op : ops_) {
    out << "o" << static_cast<int>(op.kind) << "." << static_cast<int>(op.attrs.unary) << "."
        << static_cast<int>(op.attrs.binary) << "." << static_cast<int>(op.attrs.reduce) << "."
        << (op.attrs.transpose_a ? 1 : 0) << (op.attrs.transpose_b ? 1 : 0) << ":";
    for (TensorId in : op.inputs) {
      out << in << ",";
    }
    out << ">" << op.output << ";";
  }
  return out.str();
}

std::string Graph::ToString() const {
  std::ostringstream out;
  out << "graph " << name_ << " {\n";
  for (const TensorInfo& t : tensors_) {
    out << "  %" << t.id << " " << t.name << " : " << t.shape.ToString() << " "
        << TensorKindName(t.kind) << "\n";
  }
  for (const Op& op : ops_) {
    out << "  " << op.name << " = " << OpKindName(op.kind) << "(";
    out << StrJoin(op.inputs, ", ");
    out << ") -> %" << op.output << "\n";
  }
  out << "}";
  return out.str();
}

}  // namespace spacefusion
