// Primitive tensor operators and their decoupled dependency signatures.
//
// Graphs are expressed in four primitive operator kinds; non-element-wise
// library operators (Softmax, LayerNorm, ...) are built from them, exactly as
// the paper's Fig. 10 DFGs do. Each primitive declares which of the decoupled
// dependency patterns of Table 1 (One-to-One / One-to-All / All-to-One) it
// contributes, which is what the SMG builder materializes as space mappings.
#ifndef SPACEFUSION_SRC_GRAPH_OP_H_
#define SPACEFUSION_SRC_GRAPH_OP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/tensor_ops.h"

namespace spacefusion {

using TensorId = std::int32_t;
using OpId = std::int32_t;
inline constexpr TensorId kInvalidTensor = -1;

enum class OpKind {
  kMatMul,  // C[...,M,N] = A[...,M,K] @ B[...,K,N] (transpose flags on attrs)
  kUnary,   // element-wise unary
  kBinary,  // element-wise binary with broadcasting
  kReduce,  // last-axis reduction, keepdim
};

const char* OpKindName(OpKind kind);

// The reduction semantics attached to an All-to-One mapping.
enum class ReduceOpKind { kMax, kSum, kMean, kDot };

const char* ReduceOpKindName(ReduceOpKind kind);

struct OpAttrs {
  UnaryKind unary = UnaryKind::kExp;
  BinaryKind binary = BinaryKind::kAdd;
  ReduceKind reduce = ReduceKind::kSum;
  bool transpose_a = false;
  bool transpose_b = false;
};

struct Op {
  OpId id = -1;
  OpKind kind = OpKind::kUnary;
  OpAttrs attrs;
  std::vector<TensorId> inputs;
  TensorId output = kInvalidTensor;
  std::string name;

  // Memory-intensive (MI) vs compute-intensive (CI) classification used by
  // the paper's baselines (AStitch fuses MI only; Chimera CI only).
  bool compute_intensive() const { return kind == OpKind::kMatMul; }
};

// Approximate floating-point operations performed by an op with the given
// output volume and (for matmul) contraction length.
std::int64_t OpFlops(const Op& op, std::int64_t output_volume, std::int64_t contraction);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_GRAPH_OP_H_
