// Trace-driven memory-hierarchy simulation.
//
// Replays the tile-granular access stream of a kernel sequence through
// per-SM L1 caches and a shared L2, counting hits/misses and device-memory
// traffic — the measurements behind the paper's Fig. 15 memory & cache
// analysis. Large kernels are block-sampled and the counts rescaled so that
// simulation cost stays bounded.
#ifndef SPACEFUSION_SRC_SIM_MEMORY_SIM_H_
#define SPACEFUSION_SRC_SIM_MEMORY_SIM_H_

#include <vector>

#include "src/sim/arch.h"
#include "src/sim/cache.h"
#include "src/sim/kernel.h"

namespace spacefusion {

class MemorySim {
 public:
  explicit MemorySim(GpuArch arch);

  // Replays the kernels back-to-back (caches persist between kernels, so
  // producer-consumer tensor reuse through L2 is captured). Returns the
  // cache-level statistics; timing fields are not populated here.
  ExecutionReport Run(const std::vector<KernelSpec>& kernels);

  // Upper bound on simulated L1-line accesses per kernel before block
  // sampling kicks in.
  void set_access_budget(std::int64_t budget) { access_budget_ = budget; }

  // Disables the closed-form reuse-distance shortcut for streaming operands,
  // forcing every line through the trace path (for A/B tests and benchmarks).
  void set_streaming_shortcut(bool enabled) { streaming_shortcut_ = enabled; }

  // An operand qualifies for the analytical shortcut only when its footprint
  // is at least this multiple of L2 capacity: far enough past capacity that
  // under true LRU every line is provably evicted before any re-reference.
  static constexpr std::int64_t kStreamingCapacityMultiple = 2;

 private:
  void RunKernel(const KernelSpec& kernel, ExecutionReport* report);

  GpuArch arch_;
  SetAssociativeCache l2_;
  std::int64_t access_budget_ = 4'000'000;
  bool streaming_shortcut_ = true;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SIM_MEMORY_SIM_H_
