// Kernel launch descriptions — the common currency between SpaceFusion's
// lowered schedules, the baseline implementations, and the GPU simulator.
//
// A KernelSpec captures what the simulator needs: grid geometry, per-block
// resource usage (occupancy), arithmetic work, and the global-memory traffic
// pattern of every tensor the kernel touches.
#ifndef SPACEFUSION_SRC_SIM_KERNEL_H_
#define SPACEFUSION_SRC_SIM_KERNEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spacefusion {

// Global-memory traffic of one tensor within one kernel.
struct TensorTraffic {
  std::string tensor;

  // Distinct bytes of the tensor the whole kernel touches.
  std::int64_t unique_bytes = 0;
  // Bytes each thread block reads/writes of it.
  std::int64_t per_block_bytes = 0;
  // Average logical touches per byte at the L1 level (k-loop reuse etc.).
  double touches_per_byte = 1.0;
  // true: blocks read overlapping data (weights, broadcast operands) so
  // inter-block reuse is served by L2; false: blocks touch disjoint slices.
  bool shared_across_blocks = false;
  // Base address in the simulated flat address space (assigned by the
  // AddressMap so inter-kernel L2 reuse is visible to the trace simulator).
  std::int64_t base_address = 0;
};

struct KernelSpec {
  std::string name;
  std::int64_t grid = 1;
  int threads_per_block = 256;
  std::int64_t smem_per_block = 0;
  std::int64_t regs_per_block_bytes = 64 * 1024;
  std::int64_t flops = 0;
  // Fraction of tensor-core peak the inner tiles can reach (block-shape
  // dependent: tiny tiles under-utilize the MMA pipeline).
  double compute_efficiency = 0.8;
  // Fraction of peak memory bandwidth the implementation achieves
  // (vectorization, coalescing, tuning quality).
  double bandwidth_efficiency = 0.85;

  std::vector<TensorTraffic> reads;
  std::vector<TensorTraffic> writes;

  std::int64_t TotalReadBytes() const {
    std::int64_t b = 0;
    for (const TensorTraffic& t : reads) {
      b += t.per_block_bytes * grid;
    }
    return b;
  }
  std::int64_t TotalWriteBytes() const {
    std::int64_t b = 0;
    for (const TensorTraffic& t : writes) {
      b += t.unique_bytes;
    }
    return b;
  }
};

// Assigns stable simulated addresses to named tensors so that consecutive
// kernels touching the same tensor alias in the simulated caches.
class AddressMap {
 public:
  // Returns the base address of `tensor`, allocating `bytes` on first use.
  std::int64_t Assign(const std::string& tensor, std::int64_t bytes);

 private:
  struct Entry {
    std::string name;
    std::int64_t base;
    std::int64_t bytes;
  };
  std::vector<Entry> entries_;
  std::int64_t next_ = 0;
};

// Aggregate outcome of executing a kernel sequence on the simulator.
struct ExecutionReport {
  double time_us = 0.0;
  int kernel_count = 0;
  std::int64_t flops = 0;
  std::int64_t dram_bytes = 0;   // device-memory data movement
  std::int64_t l1_accesses = 0;
  std::int64_t l1_misses = 0;
  std::int64_t l2_accesses = 0;
  std::int64_t l2_misses = 0;

  ExecutionReport& operator+=(const ExecutionReport& other);
  // Scales every count and the time by `factor` (repeat-count expansion).
  ExecutionReport Scaled(double factor) const;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SIM_KERNEL_H_
