// GPU architecture configurations for the three evaluation platforms
// (paper Sec. 6: V100 / A100 / H100). These are the hardware resource
// configurations (RCfg) consumed by resource-aware slicing, and the machine
// parameters of the performance simulator that substitutes for real GPUs.
#ifndef SPACEFUSION_SRC_SIM_ARCH_H_
#define SPACEFUSION_SRC_SIM_ARCH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spacefusion {

struct GpuArch {
  std::string name;

  // Compute.
  int num_sms = 80;
  double fp16_tflops = 125.0;  // dense tensor-core peak
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;

  // On-chip memories (bytes).
  std::int64_t smem_per_sm = 96 * 1024;
  std::int64_t smem_per_block_max = 96 * 1024;
  std::int64_t regfile_per_sm = 256 * 1024;  // 64K 32-bit registers
  std::int64_t reg_per_block_max = 256 * 1024;
  std::int64_t l1_per_sm = 128 * 1024;
  std::int64_t l2_bytes = 6 * 1024 * 1024;

  // Bandwidths.
  double dram_gbps = 900.0;
  double l2_gbps = 2500.0;

  // Cache geometry.
  int cache_line_bytes = 128;
  int l2_assoc = 16;

  // Per-kernel launch + CPU-side overhead (microseconds). This is what
  // dilutes speedups on faster architectures (paper Sec. 6.4).
  double launch_overhead_us = 4.0;
};

// NVIDIA V100-SXM2-32GB (SM70).
GpuArch VoltaV100();
// NVIDIA A100-SXM4-80GB (SM80).
GpuArch AmpereA100();
// NVIDIA H100-SXM5-80GB (SM90).
GpuArch HopperH100();

// The three evaluation architectures, in paper order.
std::vector<GpuArch> AllArchitectures();

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SIM_ARCH_H_
