#include "src/sim/cost_cache.h"

#include "src/obs/metrics.h"

namespace spacefusion {

CostCache::Shard& CostCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

KernelCost CostCache::GetOrCompute(std::uint64_t kernel_sig, const std::string& config_key,
                                   const std::function<KernelCost()>& eval) {
  std::string key = std::to_string(kernel_sig) + "|" + config_key;
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      SF_COUNTER_ADD("cost_cache.hits", 1);
      {
        MutexLock slock(stats_mu_);
        ++stats_.hits;
      }
      return it->second;
    }
  }
  // Evaluate outside the shard lock: a concurrent miss on the same key
  // recomputes the same pure value, which beats serializing distinct keys
  // that happen to share a shard.
  KernelCost cost = eval();
  {
    MutexLock lock(shard.mu);
    shard.map.emplace(key, cost);
  }
  SF_COUNTER_ADD("cost_cache.misses", 1);
  {
    MutexLock slock(stats_mu_);
    ++stats_.misses;
  }
  return cost;
}

CostCache::Stats CostCache::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

std::int64_t CostCache::size() const {
  std::int64_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += static_cast<std::int64_t>(shard.map.size());
  }
  return total;
}

}  // namespace spacefusion
