// Set-associative LRU cache model used by the trace-driven memory simulator
// (Fig. 15 reproduction: L1/L2 miss counts and device-memory traffic).
#ifndef SPACEFUSION_SRC_SIM_CACHE_H_
#define SPACEFUSION_SRC_SIM_CACHE_H_

#include <cstdint>
#include <vector>

namespace spacefusion {

struct CacheStats {
  std::int64_t accesses = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;

  double MissRate() const { return accesses == 0 ? 0.0 : static_cast<double>(misses) / accesses; }
};

// A classic set-associative cache with true-LRU replacement. Addresses are
// byte addresses in a flat simulated address space.
//
// AccessRange / AccessLines are the primary entry points for the simulator's
// hot loop: they make the same per-line replacement decisions as a loop of
// Access calls but fold the whole batch into the stats with a single update,
// and AccessRange can hand the caller the miss stream the next cache level
// observes. Reset is O(1) via an epoch counter, so clearing a per-SM L1
// between sampled blocks does not rewrite the tag array.
class SetAssociativeCache {
 public:
  SetAssociativeCache(std::int64_t capacity_bytes, int line_bytes, int associativity);

  // Touches one line; returns true on hit.
  bool Access(std::int64_t address);

  // Touches all lines of a byte range; returns the number of misses. When
  // `missed_lines` is non-null the byte address of every missing line is
  // appended in range order — the access stream the next level sees.
  std::int64_t AccessRange(std::int64_t base, std::int64_t bytes,
                           std::vector<std::int64_t>* missed_lines = nullptr);

  // Probes a batch of line addresses (e.g. the missed_lines output of an
  // upstream AccessRange); returns the number of misses.
  std::int64_t AccessLines(const std::vector<std::int64_t>& line_addresses,
                           std::vector<std::int64_t>* missed_lines = nullptr);

  // Folds analytically derived traffic into the stats without touching the
  // tag arrays — bookkeeping for the reuse-distance shortcut, which proves
  // the hit/miss split in closed form instead of replaying lines.
  void RecordBypass(std::int64_t accesses, std::int64_t misses);

  void Reset();

  const CacheStats& stats() const { return stats_; }
  std::int64_t capacity_bytes() const { return capacity_; }
  int line_bytes() const { return line_bytes_; }

 private:
  struct Way {
    std::int64_t tag = -1;
    std::uint64_t last_use = 0;
    std::uint64_t epoch = 0;  // valid only when equal to the cache's epoch_
  };

  // Probes one line with no stats bookkeeping; returns true on hit.
  bool ProbeLine(std::int64_t line);

  std::int64_t capacity_;
  int line_bytes_;
  int assoc_;
  std::int64_t num_sets_;
  std::vector<Way> ways_;  // num_sets_ * assoc_
  std::uint64_t tick_ = 0;
  std::uint64_t epoch_ = 1;
  CacheStats stats_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SIM_CACHE_H_
