// Set-associative LRU cache model used by the trace-driven memory simulator
// (Fig. 15 reproduction: L1/L2 miss counts and device-memory traffic).
#ifndef SPACEFUSION_SRC_SIM_CACHE_H_
#define SPACEFUSION_SRC_SIM_CACHE_H_

#include <cstdint>
#include <vector>

namespace spacefusion {

struct CacheStats {
  std::int64_t accesses = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;

  double MissRate() const { return accesses == 0 ? 0.0 : static_cast<double>(misses) / accesses; }
};

// A classic set-associative cache with true-LRU replacement. Addresses are
// byte addresses in a flat simulated address space; AccessRange touches every
// line a [base, base+bytes) range covers.
class SetAssociativeCache {
 public:
  SetAssociativeCache(std::int64_t capacity_bytes, int line_bytes, int associativity);

  // Touches one line; returns true on hit.
  bool Access(std::int64_t address);

  // Touches all lines of a byte range; returns the number of misses.
  std::int64_t AccessRange(std::int64_t base, std::int64_t bytes);

  void Reset();

  const CacheStats& stats() const { return stats_; }
  std::int64_t capacity_bytes() const { return capacity_; }
  int line_bytes() const { return line_bytes_; }

 private:
  struct Way {
    std::int64_t tag = -1;
    std::uint64_t last_use = 0;
  };

  std::int64_t capacity_;
  int line_bytes_;
  int assoc_;
  std::int64_t num_sets_;
  std::vector<Way> ways_;  // num_sets_ * assoc_
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SIM_CACHE_H_
