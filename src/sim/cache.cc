#include "src/sim/cache.h"

#include "src/support/logging.h"
#include "src/support/math_util.h"

namespace spacefusion {

SetAssociativeCache::SetAssociativeCache(std::int64_t capacity_bytes, int line_bytes,
                                         int associativity)
    : capacity_(capacity_bytes), line_bytes_(line_bytes), assoc_(associativity) {
  SF_CHECK_GT(line_bytes_, 0);
  SF_CHECK_GT(assoc_, 0);
  num_sets_ = capacity_bytes / (static_cast<std::int64_t>(line_bytes_) * assoc_);
  if (num_sets_ < 1) {
    num_sets_ = 1;
  }
  ways_.assign(static_cast<size_t>(num_sets_ * assoc_), Way{});
}

bool SetAssociativeCache::ProbeLine(std::int64_t line) {
  ++tick_;
  std::int64_t set = line % num_sets_;
  Way* base = &ways_[static_cast<size_t>(set * assoc_)];

  Way* victim = base;
  for (int w = 0; w < assoc_; ++w) {
    Way& way = base[w];
    if (way.epoch != epoch_) {
      // Empty in this epoch. Fills are left-to-right within an epoch, so no
      // valid tag can live beyond this way — install here.
      victim = &way;
      break;
    }
    if (way.tag == line) {
      way.last_use = tick_;
      return true;
    }
    if (way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  victim->tag = line;
  victim->last_use = tick_;
  victim->epoch = epoch_;
  return false;
}

bool SetAssociativeCache::Access(std::int64_t address) {
  ++stats_.accesses;
  if (ProbeLine(address / line_bytes_)) {
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

std::int64_t SetAssociativeCache::AccessRange(std::int64_t base, std::int64_t bytes,
                                              std::vector<std::int64_t>* missed_lines) {
  if (bytes <= 0) {
    return 0;
  }
  std::int64_t first_line = base / line_bytes_;
  std::int64_t last_line = (base + bytes - 1) / line_bytes_;
  std::int64_t misses = 0;
  for (std::int64_t line = first_line; line <= last_line; ++line) {
    if (!ProbeLine(line)) {
      ++misses;
      if (missed_lines != nullptr) {
        missed_lines->push_back(line * line_bytes_);
      }
    }
  }
  std::int64_t accesses = last_line - first_line + 1;
  stats_.accesses += accesses;
  stats_.hits += accesses - misses;
  stats_.misses += misses;
  return misses;
}

std::int64_t SetAssociativeCache::AccessLines(const std::vector<std::int64_t>& line_addresses,
                                              std::vector<std::int64_t>* missed_lines) {
  std::int64_t misses = 0;
  for (std::int64_t address : line_addresses) {
    if (!ProbeLine(address / line_bytes_)) {
      ++misses;
      if (missed_lines != nullptr) {
        missed_lines->push_back(address);
      }
    }
  }
  stats_.accesses += static_cast<std::int64_t>(line_addresses.size());
  stats_.hits += static_cast<std::int64_t>(line_addresses.size()) - misses;
  stats_.misses += misses;
  return misses;
}

void SetAssociativeCache::RecordBypass(std::int64_t accesses, std::int64_t misses) {
  stats_.accesses += accesses;
  stats_.hits += accesses - misses;
  stats_.misses += misses;
}

void SetAssociativeCache::Reset() {
  ++epoch_;
  stats_ = CacheStats{};
}

}  // namespace spacefusion
