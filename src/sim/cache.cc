#include "src/sim/cache.h"

#include "src/support/logging.h"
#include "src/support/math_util.h"

namespace spacefusion {

SetAssociativeCache::SetAssociativeCache(std::int64_t capacity_bytes, int line_bytes,
                                         int associativity)
    : capacity_(capacity_bytes), line_bytes_(line_bytes), assoc_(associativity) {
  SF_CHECK_GT(line_bytes_, 0);
  SF_CHECK_GT(assoc_, 0);
  num_sets_ = capacity_bytes / (static_cast<std::int64_t>(line_bytes_) * assoc_);
  if (num_sets_ < 1) {
    num_sets_ = 1;
  }
  ways_.assign(static_cast<size_t>(num_sets_ * assoc_), Way{});
}

bool SetAssociativeCache::Access(std::int64_t address) {
  ++tick_;
  ++stats_.accesses;
  std::int64_t line = address / line_bytes_;
  std::int64_t set = line % num_sets_;
  Way* base = &ways_[static_cast<size_t>(set * assoc_)];

  Way* victim = base;
  for (int w = 0; w < assoc_; ++w) {
    Way& way = base[w];
    if (way.tag == line) {
      way.last_use = tick_;
      ++stats_.hits;
      return true;
    }
    if (way.last_use < victim->last_use || victim->tag == line) {
      victim = &way;
    }
    if (way.tag == -1) {
      victim = &way;
      break;
    }
  }
  victim->tag = line;
  victim->last_use = tick_;
  ++stats_.misses;
  return false;
}

std::int64_t SetAssociativeCache::AccessRange(std::int64_t base, std::int64_t bytes) {
  std::int64_t first_line = base / line_bytes_;
  std::int64_t last_line = (base + bytes - 1) / line_bytes_;
  std::int64_t misses = 0;
  for (std::int64_t line = first_line; line <= last_line; ++line) {
    if (!Access(line * line_bytes_)) {
      ++misses;
    }
  }
  return misses;
}

void SetAssociativeCache::Reset() {
  ways_.assign(ways_.size(), Way{});
  tick_ = 0;
  stats_ = CacheStats{};
}

}  // namespace spacefusion
