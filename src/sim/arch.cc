#include "src/sim/arch.h"

namespace spacefusion {

GpuArch VoltaV100() {
  GpuArch a;
  a.name = "Volta";
  a.num_sms = 80;
  a.fp16_tflops = 125.0;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 32;
  a.smem_per_sm = 96 * 1024;
  a.smem_per_block_max = 96 * 1024;
  a.regfile_per_sm = 256 * 1024;
  a.reg_per_block_max = 256 * 1024;
  a.l1_per_sm = 128 * 1024;
  a.l2_bytes = 6LL * 1024 * 1024;
  a.dram_gbps = 900.0;
  a.l2_gbps = 2500.0;
  a.launch_overhead_us = 3.5;
  return a;
}

GpuArch AmpereA100() {
  GpuArch a;
  a.name = "Ampere";
  a.num_sms = 108;
  a.fp16_tflops = 312.0;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 32;
  a.smem_per_sm = 164 * 1024;
  a.smem_per_block_max = 163 * 1024;
  a.regfile_per_sm = 256 * 1024;
  a.reg_per_block_max = 256 * 1024;
  a.l1_per_sm = 192 * 1024;
  a.l2_bytes = 40LL * 1024 * 1024;
  a.dram_gbps = 2039.0;
  a.l2_gbps = 5100.0;
  a.launch_overhead_us = 3.0;
  return a;
}

GpuArch HopperH100() {
  GpuArch a;
  a.name = "Hopper";
  a.num_sms = 132;
  a.fp16_tflops = 989.0;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 32;
  a.smem_per_sm = 228 * 1024;
  a.smem_per_block_max = 227 * 1024;
  a.regfile_per_sm = 256 * 1024;
  a.reg_per_block_max = 256 * 1024;
  a.l1_per_sm = 256 * 1024;
  a.l2_bytes = 50LL * 1024 * 1024;
  a.dram_gbps = 3350.0;
  a.l2_gbps = 8000.0;
  a.launch_overhead_us = 2.5;
  return a;
}

std::vector<GpuArch> AllArchitectures() { return {VoltaV100(), AmpereA100(), HopperH100()}; }

}  // namespace spacefusion
