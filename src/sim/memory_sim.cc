#include "src/sim/memory_sim.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/math_util.h"

namespace spacefusion {

MemorySim::MemorySim(GpuArch arch)
    : arch_(std::move(arch)), l2_(arch_.l2_bytes, arch_.cache_line_bytes, arch_.l2_assoc) {}

ExecutionReport MemorySim::Run(const std::vector<KernelSpec>& kernels) {
  ScopedSpan span("sim.memory_sim", "simulate");
  l2_.Reset();
  ExecutionReport report;
  for (const KernelSpec& k : kernels) {
    RunKernel(k, &report);
    ++report.kernel_count;
    report.flops += k.flops;
  }
  SF_COUNTER_ADD("sim.dram_bytes_simulated", report.dram_bytes);
  if (report.l1_accesses > 0) {
    SF_GAUGE_SET("sim.l1_hit_rate", 1.0 - static_cast<double>(report.l1_misses) /
                                              static_cast<double>(report.l1_accesses));
  }
  if (report.l2_accesses > 0) {
    SF_GAUGE_SET("sim.l2_hit_rate", 1.0 - static_cast<double>(report.l2_misses) /
                                              static_cast<double>(report.l2_accesses));
  }
  span.Arg("kernels", report.kernel_count).Arg("dram_bytes", report.dram_bytes);
  return report;
}

void MemorySim::RunKernel(const KernelSpec& kernel, ExecutionReport* report) {
  ScopedSpan span("sim.memory_sim_kernel", "simulate");
  span.Arg("grid", kernel.grid);
  const int line = arch_.cache_line_bytes;

  // Estimated L1-line accesses for the whole kernel; sample blocks if the
  // trace would exceed the budget.
  double projected = 0;
  for (const TensorTraffic& r : kernel.reads) {
    projected += static_cast<double>(r.per_block_bytes) * std::max(1.0, r.touches_per_byte) /
                 line * static_cast<double>(kernel.grid);
  }
  std::int64_t stride = 1;
  if (projected > static_cast<double>(access_budget_)) {
    stride = static_cast<std::int64_t>(projected / static_cast<double>(access_budget_)) + 1;
  }

  SetAssociativeCache l1(arch_.l1_per_sm, line, /*associativity=*/4);

  std::int64_t sim_blocks = 0;
  std::int64_t l1_acc = 0, l1_miss = 0, l2_acc = 0, l2_miss = 0, dram = 0;
  std::int64_t traced_lines = 0, analytic_lines = 0;
  std::vector<std::int64_t> missed;  // L1 miss stream handed to L2, reused per range.

  const std::int64_t streaming_floor = kStreamingCapacityMultiple * arch_.l2_bytes;
  // Closed-form reuse-distance shortcut: a block-private operand touched at
  // most once whose footprint is >= 2x L2 capacity provably misses on every
  // line. The stream is ascending and each line is referenced once per sweep,
  // so under true LRU a line is evicted (by at least capacity bytes of newer
  // installs) before any later sweep or kernel could re-reference it, and the
  // residue an earlier kernel left in L2 occupies the top-of-range addresses
  // while the stream starts at the bottom. L1 is reset per block and the
  // operand is touched once within the block, so L1 misses every line too.
  auto streams_past_l2 = [&](const TensorTraffic& r) {
    return streaming_shortcut_ && !r.shared_across_blocks && r.touches_per_byte <= 1.0 &&
           r.unique_bytes > r.per_block_bytes && r.unique_bytes >= streaming_floor;
  };

  for (std::int64_t b = 0; b < kernel.grid; b += stride) {
    ++sim_blocks;
    // Fresh block on (statistically) a fresh SM: private L1 state cleared.
    l1.Reset();
    for (const TensorTraffic& r : kernel.reads) {
      if (r.per_block_bytes <= 0) {
        continue;
      }
      std::int64_t base;
      if (r.shared_across_blocks || r.unique_bytes <= r.per_block_bytes) {
        base = r.base_address;
      } else {
        base = r.base_address + (b * r.per_block_bytes) % std::max<std::int64_t>(
                                    1, r.unique_bytes - r.per_block_bytes + 1);
      }
      const bool analytic = streams_past_l2(r);
      // Whole passes plus one partial pass approximating the average
      // touches-per-byte of this operand within a block.
      double touches = std::max(1.0, r.touches_per_byte);
      int full_passes = static_cast<int>(touches);
      std::int64_t partial_bytes =
          static_cast<std::int64_t>((touches - full_passes) * static_cast<double>(r.per_block_bytes));
      for (int pass = 0; pass <= full_passes; ++pass) {
        std::int64_t bytes = pass < full_passes ? r.per_block_bytes : partial_bytes;
        if (bytes <= 0) {
          continue;
        }
        std::int64_t first = base / line;
        std::int64_t last = (base + bytes - 1) / line;
        std::int64_t lines = last - first + 1;
        if (analytic) {
          l1_acc += lines;
          l1_miss += lines;
          l2_acc += lines;
          l2_miss += lines;
          dram += lines * line;
          l1.RecordBypass(lines, lines);
          l2_.RecordBypass(lines, lines);
          analytic_lines += lines;
          continue;
        }
        missed.clear();
        std::int64_t m1 = l1.AccessRange(base, bytes, &missed);
        std::int64_t m2 = l2_.AccessLines(missed);
        l1_acc += lines;
        l1_miss += m1;
        l2_acc += m1;
        l2_miss += m2;
        dram += m2 * line;
        traced_lines += lines;
      }
    }
    for (const TensorTraffic& w : kernel.writes) {
      std::int64_t per_block = w.per_block_bytes > 0
                                   ? w.per_block_bytes
                                   : CeilDiv(w.unique_bytes, std::max<std::int64_t>(1, kernel.grid));
      if (per_block <= 0) {
        continue;
      }
      std::int64_t base = w.base_address + (b * per_block) % std::max<std::int64_t>(1, w.unique_bytes);
      // Write-through no-allocate at L1; lines are installed in L2 and the
      // dirty data eventually reaches DRAM. The range is clamped to the
      // tensor's unique region: a block stride can place `base` near the end
      // of the tensor, and an unclamped `base + per_block - 1` would walk
      // cache lines past it.
      std::int64_t end = std::min(base + per_block - 1, w.base_address + w.unique_bytes - 1);
      if (end < base) {
        continue;
      }
      std::int64_t first = base / line;
      std::int64_t last = end / line;
      std::int64_t lines = last - first + 1;
      if (streaming_shortcut_ && w.unique_bytes >= streaming_floor) {
        // Same eviction argument as for streaming reads: an ascending
        // write-once stream >= 2x capacity installs every line as a miss.
        l2_.RecordBypass(lines, lines);
        analytic_lines += lines;
      } else {
        l2_.AccessRange(base, end - base + 1);
        traced_lines += lines;
      }
      l2_acc += lines;
      dram += lines * line;
    }
  }

  SF_COUNTER_ADD("sim.lines_traced", traced_lines);
  SF_COUNTER_ADD("sim.lines_analytic", analytic_lines);
  span.Arg("traced_lines", traced_lines).Arg("analytic_lines", analytic_lines);

  if (sim_blocks == 0) {
    return;
  }
  double scale = static_cast<double>(kernel.grid) / static_cast<double>(sim_blocks);
  report->l1_accesses += static_cast<std::int64_t>(static_cast<double>(l1_acc) * scale);
  report->l1_misses += static_cast<std::int64_t>(static_cast<double>(l1_miss) * scale);
  report->l2_accesses += static_cast<std::int64_t>(static_cast<double>(l2_acc) * scale);
  report->l2_misses += static_cast<std::int64_t>(static_cast<double>(l2_miss) * scale);
  report->dram_bytes += static_cast<std::int64_t>(static_cast<double>(dram) * scale);
}

}  // namespace spacefusion
