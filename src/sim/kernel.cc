#include "src/sim/kernel.h"

#include "src/support/math_util.h"

namespace spacefusion {

std::int64_t AddressMap::Assign(const std::string& tensor, std::int64_t bytes) {
  for (const Entry& e : entries_) {
    if (e.name == tensor) {
      return e.base;
    }
  }
  Entry e;
  e.name = tensor;
  e.base = next_;
  e.bytes = bytes;
  entries_.push_back(e);
  next_ += RoundUp(bytes, 256);
  return e.base;
}

ExecutionReport& ExecutionReport::operator+=(const ExecutionReport& other) {
  time_us += other.time_us;
  kernel_count += other.kernel_count;
  flops += other.flops;
  dram_bytes += other.dram_bytes;
  l1_accesses += other.l1_accesses;
  l1_misses += other.l1_misses;
  l2_accesses += other.l2_accesses;
  l2_misses += other.l2_misses;
  return *this;
}

ExecutionReport ExecutionReport::Scaled(double factor) const {
  ExecutionReport out = *this;
  out.time_us *= factor;
  out.kernel_count = static_cast<int>(out.kernel_count * factor);
  out.flops = static_cast<std::int64_t>(static_cast<double>(out.flops) * factor);
  out.dram_bytes = static_cast<std::int64_t>(static_cast<double>(out.dram_bytes) * factor);
  out.l1_accesses = static_cast<std::int64_t>(static_cast<double>(out.l1_accesses) * factor);
  out.l1_misses = static_cast<std::int64_t>(static_cast<double>(out.l1_misses) * factor);
  out.l2_accesses = static_cast<std::int64_t>(static_cast<double>(out.l2_accesses) * factor);
  out.l2_misses = static_cast<std::int64_t>(static_cast<double>(out.l2_misses) * factor);
  return out;
}

}  // namespace spacefusion
