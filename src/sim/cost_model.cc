#include "src/sim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/logging.h"
#include "src/support/math_util.h"

namespace spacefusion {

int CostModel::BlocksPerSm(const KernelSpec& kernel) const {
  int by_limit = arch_.max_blocks_per_sm;
  int by_threads = std::max(1, arch_.max_threads_per_sm / std::max(1, kernel.threads_per_block));
  int by_smem = kernel.smem_per_block > 0
                    ? static_cast<int>(arch_.smem_per_sm / kernel.smem_per_block)
                    : arch_.max_blocks_per_sm;
  int by_regs = kernel.regs_per_block_bytes > 0
                    ? static_cast<int>(arch_.regfile_per_sm / kernel.regs_per_block_bytes)
                    : arch_.max_blocks_per_sm;
  int blocks = std::min(std::min(by_limit, by_threads), std::min(by_smem, by_regs));
  return std::max(blocks, 0);
}

std::int64_t CostModel::DramReadBytes(const TensorTraffic& read, std::int64_t grid) const {
  double total = static_cast<double>(read.per_block_bytes) * static_cast<double>(grid) *
                 std::max(1.0, read.touches_per_byte);
  double unique = static_cast<double>(std::min<std::int64_t>(
      read.unique_bytes, static_cast<std::int64_t>(total) + 1));
  // Re-reads (multi-pass streams, operands shared across blocks) are served
  // by L2 while the footprint fits; beyond capacity, reuse degrades
  // linearly toward full re-fetch.
  double l2 = static_cast<double>(arch_.l2_bytes) * 0.85;
  if (unique <= l2) {
    return static_cast<std::int64_t>(unique);
  }
  double spill_fraction = (unique - l2) / unique;
  double rereads = std::max(0.0, total - unique);
  return static_cast<std::int64_t>(unique + rereads * spill_fraction);
}

KernelCost CostModel::EstimateKernel(const KernelSpec& kernel) const {
  // The tuner calls this once per candidate config: a counter is cheap
  // enough for that loop, a span is not.
  SF_COUNTER_ADD("sim.kernels_estimated", 1);
  KernelCost cost;

  int bps = BlocksPerSm(kernel);
  if (bps == 0) {
    // Kernel cannot launch under this architecture's per-block resources;
    // callers are expected to have resource-checked. Charge a huge penalty
    // so tuners never pick it.
    cost.time_us = 1e12;
    return cost;
  }
  cost.occupancy_blocks_per_sm = bps;

  std::int64_t concurrent = static_cast<std::int64_t>(bps) * arch_.num_sms;
  std::int64_t waves = CeilDiv(std::max<std::int64_t>(kernel.grid, 1), concurrent);
  double utilization = static_cast<double>(kernel.grid) / static_cast<double>(waves * concurrent);
  // Even a perfectly balanced launch cannot keep every SM busy if there are
  // fewer blocks than SMs.
  double sm_coverage =
      std::min(1.0, static_cast<double>(kernel.grid) / static_cast<double>(arch_.num_sms));

  // Compute time.
  double peak_flops = arch_.fp16_tflops * 1e6;  // flops per microsecond
  double eff = std::max(0.01, kernel.compute_efficiency * std::max(utilization, sm_coverage * 0.5));
  cost.compute_us = static_cast<double>(kernel.flops) / (peak_flops * eff);

  // DRAM time. A small grid cannot saturate the memory system: model the
  // achievable bandwidth as ramping up with SM coverage.
  std::int64_t dram_bytes = 0;
  double l2_bytes = 0;
  for (const TensorTraffic& r : kernel.reads) {
    dram_bytes += DramReadBytes(r, kernel.grid);
    l2_bytes += static_cast<double>(r.per_block_bytes) * static_cast<double>(kernel.grid) *
                std::max(1.0, r.touches_per_byte);
  }
  for (const TensorTraffic& w : kernel.writes) {
    dram_bytes += w.unique_bytes;
    l2_bytes += static_cast<double>(w.unique_bytes);
  }
  cost.dram_bytes = dram_bytes;
  double bw_frac =
      std::min(1.0, 0.12 + 0.88 * sm_coverage) * std::max(0.1, kernel.bandwidth_efficiency);
  double dram_bw = arch_.dram_gbps * 1e3 * bw_frac;  // bytes per microsecond
  cost.dram_us = static_cast<double>(dram_bytes) / dram_bw;

  double l2_bw = arch_.l2_gbps * 1e3 * bw_frac;
  cost.l2_us = l2_bytes / l2_bw;

  cost.time_us =
      arch_.launch_overhead_us + std::max(cost.compute_us, std::max(cost.dram_us, cost.l2_us));
  return cost;
}

double CostModel::ScreenKernel(const KernelSpec& kernel) const {
  SF_COUNTER_ADD("sim.kernels_screened", 1);
  int bps = BlocksPerSm(kernel);
  if (bps == 0) {
    return 1e12;
  }

  std::int64_t concurrent = static_cast<std::int64_t>(bps) * arch_.num_sms;
  std::int64_t waves = CeilDiv(std::max<std::int64_t>(kernel.grid, 1), concurrent);
  double utilization = static_cast<double>(kernel.grid) / static_cast<double>(waves * concurrent);
  double sm_coverage =
      std::min(1.0, static_cast<double>(kernel.grid) / static_cast<double>(arch_.num_sms));

  double peak_flops = arch_.fp16_tflops * 1e6;
  double eff = std::max(0.01, kernel.compute_efficiency * std::max(utilization, sm_coverage * 0.5));
  double compute_us = static_cast<double>(kernel.flops) / (peak_flops * eff);

  // No-reuse lower bound on read traffic: every operand costs at least its
  // footprint (or its full streamed volume if that is smaller), and
  // DramReadBytes only ever adds spill re-reads on top of that.
  std::int64_t dram_bytes = 0;
  double l2_bytes = 0;
  for (const TensorTraffic& r : kernel.reads) {
    double total = static_cast<double>(r.per_block_bytes) * static_cast<double>(kernel.grid) *
                   std::max(1.0, r.touches_per_byte);
    dram_bytes += std::min(r.unique_bytes, static_cast<std::int64_t>(total));
    l2_bytes += total;
  }
  for (const TensorTraffic& w : kernel.writes) {
    dram_bytes += w.unique_bytes;
    l2_bytes += static_cast<double>(w.unique_bytes);
  }
  double bw_frac =
      std::min(1.0, 0.12 + 0.88 * sm_coverage) * std::max(0.1, kernel.bandwidth_efficiency);
  double dram_us = static_cast<double>(dram_bytes) / (arch_.dram_gbps * 1e3 * bw_frac);
  double l2_us = l2_bytes / (arch_.l2_gbps * 1e3 * bw_frac);

  return arch_.launch_overhead_us + std::max(compute_us, std::max(dram_us, l2_us));
}

ExecutionReport CostModel::Estimate(const std::vector<KernelSpec>& kernels) const {
  ScopedSpan span("sim.cost_estimate", "simulate");
  ExecutionReport report;
  for (const KernelSpec& k : kernels) {
    KernelCost cost = EstimateKernel(k);
    report.time_us += cost.time_us;
    report.dram_bytes += cost.dram_bytes;
    report.flops += k.flops;
    ++report.kernel_count;
  }
  SF_COUNTER_ADD("sim.kernel_launches_estimated", report.kernel_count);
  SF_COUNTER_ADD("sim.dram_bytes_estimated", report.dram_bytes);
  span.Arg("kernels", report.kernel_count)
      .Arg("time_us", report.time_us)
      .Arg("dram_bytes", report.dram_bytes);
  return report;
}

}  // namespace spacefusion
