// Analytic GPU performance model.
//
// Estimates kernel time as max(compute, DRAM, L2) with occupancy-derived
// wave scheduling and a launch overhead per kernel. This is the fast model
// the auto-tuner measures candidate schedules against (substituting for the
// paper's on-GPU test runs); the trace-driven MemorySim provides the
// detailed cache statistics for the Fig. 15 analysis.
#ifndef SPACEFUSION_SRC_SIM_COST_MODEL_H_
#define SPACEFUSION_SRC_SIM_COST_MODEL_H_

#include <vector>

#include "src/sim/arch.h"
#include "src/sim/kernel.h"

namespace spacefusion {

struct KernelCost {
  double time_us = 0.0;
  double compute_us = 0.0;
  double dram_us = 0.0;
  double l2_us = 0.0;
  std::int64_t dram_bytes = 0;
  double occupancy_blocks_per_sm = 0.0;
};

class CostModel {
 public:
  explicit CostModel(GpuArch arch) : arch_(std::move(arch)) {}

  const GpuArch& arch() const { return arch_; }

  // Concurrent thread blocks one SM can host given the kernel's resources.
  int BlocksPerSm(const KernelSpec& kernel) const;

  // DRAM bytes a read stream costs, accounting for L2-served inter-block
  // reuse: a shared operand whose footprint fits in L2 is fetched once.
  std::int64_t DramReadBytes(const TensorTraffic& read, std::int64_t grid) const;

  KernelCost EstimateKernel(const KernelSpec& kernel) const;

  // Cheap screening score for the staged-fidelity tuner: a provable lower
  // bound on EstimateKernel(kernel).time_us for the same spec. Occupancy,
  // compute, and L2 terms are identical; the DRAM term drops the L2-spill
  // re-read model and charges only min(unique, streamed) bytes per operand,
  // which can never exceed DramReadBytes.
  double ScreenKernel(const KernelSpec& kernel) const;

  // Sums kernel costs (kernels execute back-to-back on one stream).
  ExecutionReport Estimate(const std::vector<KernelSpec>& kernels) const;

 private:
  GpuArch arch_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SIM_COST_MODEL_H_
