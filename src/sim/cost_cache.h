// Thread-safe memoization table in front of CostModel for tuner config
// evaluations.
//
// The tuner evaluates (apply config -> plan memory -> lower -> estimate)
// for every configuration of every kernel; identical SMG blocks recur both
// inside one model (repeated layers compile to the same kernels) and across
// candidate programs, so the same (kernel signature, config) pair is asked
// for repeatedly. The cache keys on an opaque signature the tuner derives
// from the schedule template plus the config's ToString() and stores the
// full KernelCost. Hits and misses are exported through the obs metrics
// registry as "cost_cache.hits" / "cost_cache.misses".
//
// Determinism: a cached value is exactly the value the evaluation would
// recompute (the evaluation is a pure function of the key), so tuning
// results are bit-identical with or without the cache, at any thread count.
#ifndef SPACEFUSION_SRC_SIM_COST_CACHE_H_
#define SPACEFUSION_SRC_SIM_COST_CACHE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "src/sim/cost_model.h"
#include "src/support/thread_annotations.h"

namespace spacefusion {

class CostCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
  };

  // Returns the cached cost for (kernel_sig, config_key), or computes it
  // with `eval` and inserts. `eval` may run concurrently for the same key
  // on a race (both compute the same pure value; one insert wins).
  KernelCost GetOrCompute(std::uint64_t kernel_sig, const std::string& config_key,
                          const std::function<KernelCost()>& eval);

  Stats stats() const;
  std::int64_t size() const;

 private:
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, KernelCost> map SF_GUARDED_BY(mu);
  };
  static constexpr int kNumShards = 16;

  Shard& ShardFor(const std::string& key);

  Shard shards_[kNumShards];
  mutable Mutex stats_mu_;
  Stats stats_ SF_GUARDED_BY(stats_mu_);
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SIM_COST_CACHE_H_
