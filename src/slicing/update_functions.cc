#include "src/slicing/update_functions.h"

#include <cmath>
#include <map>

#include "src/slicing/dim_analysis.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

float UpdateFactor::Multiplier(float old_v, float new_v) const {
  switch (prim) {
    case FactorPrim::kExpNeg:
      return std::exp(static_cast<float>(power) * (old_v - new_v));
    case FactorPrim::kIdent: {
      float ratio = new_v / old_v;
      float result = 1.0f;
      int p = power >= 0 ? power : -power;
      for (int i = 0; i < p; ++i) {
        result *= ratio;
      }
      return power >= 0 ? result : 1.0f / result;
    }
  }
  return 1.0f;
}

std::string UpdateFactor::ToString(const Graph& graph) const {
  const std::string& src = graph.op(source).name;
  if (prim == FactorPrim::kExpNeg) {
    return StrCat("exp(", power, "*(", src, ".old - ", src, ".new))");
  }
  return StrCat("(", src, ".new/", src, ".old)^", power);
}

bool TemporalPlan::AnyUpdate() const {
  for (const ReductionAggregation& agg : aggregations) {
    if (agg.NeedsUpdate()) {
      return true;
    }
  }
  return false;
}

std::string TemporalPlan::ToString(const Graph& graph) const {
  std::ostringstream out;
  for (const ReductionAggregation& agg : aggregations) {
    out << graph.op(agg.op).name << ": combiner=" << ReduceOpKindName(agg.combiner);
    if (agg.NeedsUpdate()) {
      out << " update=";
      for (const UpdateFactor& f : agg.update) {
        out << f.ToString(graph) << " ";
      }
    }
    out << "\n";
  }
  return out.str();
}

namespace {

// Dataflow state of one tensor w.r.t. a source reduction r.
struct Influence {
  enum class Kind {
    kUnrelated,  // value does not depend on r
    kSource,     // this *is* r's result (direct broadcast)
    kShifted,    // value = pure_part - r (additive; only exp() can absorb it)
    kFactored,   // value = pure_part * prod(g_i(r)^p_i)
    kFailed,     // influence not postposable
  };
  Kind kind = Kind::kUnrelated;
  std::vector<UpdateFactor> factors;  // for kFactored
};

// Merges factor lists (product of factors).
std::vector<UpdateFactor> MergeFactors(const std::vector<UpdateFactor>& a,
                                       const std::vector<UpdateFactor>& b, int b_power_scale) {
  std::vector<UpdateFactor> out = a;
  for (UpdateFactor f : b) {
    f.power *= b_power_scale;
    // Collapse with an existing primitive of the same shape/source.
    bool merged = false;
    for (UpdateFactor& existing : out) {
      if (existing.prim == f.prim && existing.source == f.source) {
        existing.power += f.power;
        merged = true;
        break;
      }
    }
    if (!merged) {
      out.push_back(f);
    }
  }
  // Drop cancelled primitives.
  std::vector<UpdateFactor> cleaned;
  for (const UpdateFactor& f : out) {
    if (f.power != 0) {
      cleaned.push_back(f);
    }
  }
  return cleaned;
}

bool SameFactors(const std::vector<UpdateFactor>& a, const std::vector<UpdateFactor>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (const UpdateFactor& fa : a) {
    bool found = false;
    for (const UpdateFactor& fb : b) {
      if (fa.prim == fb.prim && fa.source == fb.source && fa.power == fb.power) {
        found = true;
        break;
      }
    }
    if (!found) {
      return false;
    }
  }
  return true;
}

// Forward-propagates the influence of reduction op `source` through the
// graph; returns per-tensor influence states.
std::vector<Influence> PropagateInfluence(const Graph& graph, const SmgBuildResult& built,
                                          OpId source, DimId sliced_dim) {
  std::vector<Influence> state(graph.tensors().size());
  const Op& src_op = graph.op(source);
  state[static_cast<size_t>(src_op.output)].kind = Influence::Kind::kSource;

  const Smg& smg = built.smg;

  for (const Op& op : graph.ops()) {
    if (op.id <= source) {
      continue;  // topological order: nothing before the source is influenced
    }
    Influence& out = state[static_cast<size_t>(op.output)];

    std::vector<const Influence*> ins;
    ins.reserve(op.inputs.size());
    bool any_influence = false;
    bool any_failed = false;
    for (TensorId in : op.inputs) {
      const Influence& inf = state[static_cast<size_t>(in)];
      ins.push_back(&inf);
      if (inf.kind != Influence::Kind::kUnrelated) {
        any_influence = true;
      }
      if (inf.kind == Influence::Kind::kFailed) {
        any_failed = true;
      }
    }
    if (!any_influence) {
      out.kind = Influence::Kind::kUnrelated;
      continue;
    }
    if (any_failed) {
      out.kind = Influence::Kind::kFailed;
      continue;
    }

    auto fail = [&out]() { out.kind = Influence::Kind::kFailed; };

    switch (op.kind) {
      case OpKind::kUnary: {
        const Influence& x = *ins[0];
        if (op.attrs.unary == UnaryKind::kExp && x.kind == Influence::Kind::kShifted) {
          // exp(pure - r) = exp(pure) * exp(-r): the broadcast is postposed
          // into a multiplicative factor (Fig. 8 "b.sub postposition").
          out.kind = Influence::Kind::kFactored;
          UpdateFactor f;
          f.prim = FactorPrim::kExpNeg;
          f.source = source;
          f.power = 1;
          out.factors = {f};
        } else if (x.kind == Influence::Kind::kFactored && op.attrs.unary == UnaryKind::kNeg) {
          out = x;  // -(g*x) = g*(-x)
        } else if (x.kind == Influence::Kind::kFactored &&
                   op.attrs.unary == UnaryKind::kSquare) {
          out.kind = Influence::Kind::kFactored;
          out.factors = MergeFactors(x.factors, x.factors, 1);  // g^2
        } else if (x.kind == Influence::Kind::kFactored &&
                   op.attrs.unary == UnaryKind::kRecip) {
          out.kind = Influence::Kind::kFactored;
          out.factors = MergeFactors({}, x.factors, -1);
        } else {
          fail();
        }
        break;
      }
      case OpKind::kBinary: {
        const Influence& a = *ins[0];
        const Influence& b = *ins[1];
        switch (op.attrs.binary) {
          case BinaryKind::kSub:
            // pure - r: the canonical pre-exp shift.
            if (a.kind == Influence::Kind::kUnrelated && b.kind == Influence::Kind::kSource) {
              out.kind = Influence::Kind::kShifted;
            } else if (a.kind == Influence::Kind::kFactored &&
                       b.kind == Influence::Kind::kFactored &&
                       SameFactors(a.factors, b.factors)) {
              out = a;  // g*x - g*y = g*(x-y)
            } else {
              fail();
            }
            break;
          case BinaryKind::kAdd:
            if (a.kind == Influence::Kind::kFactored && b.kind == Influence::Kind::kFactored &&
                SameFactors(a.factors, b.factors)) {
              out = a;
            } else {
              fail();
            }
            break;
          case BinaryKind::kMul: {
            std::vector<UpdateFactor> factors;
            bool ok = true;
            for (const Influence* side : {&a, &b}) {
              if (side->kind == Influence::Kind::kSource) {
                UpdateFactor f;
                f.prim = FactorPrim::kIdent;
                f.source = source;
                f.power = 1;
                factors = MergeFactors(factors, {f}, 1);
              } else if (side->kind == Influence::Kind::kFactored) {
                factors = MergeFactors(factors, side->factors, 1);
              } else if (side->kind != Influence::Kind::kUnrelated) {
                ok = false;
              }
            }
            if (ok) {
              out.kind = Influence::Kind::kFactored;
              out.factors = std::move(factors);
            } else {
              fail();
            }
            break;
          }
          case BinaryKind::kDiv: {
            std::vector<UpdateFactor> factors;
            bool ok = true;
            // Numerator contributes factors with +1, denominator with -1.
            const Influence* sides[2] = {&a, &b};
            for (int side_i = 0; side_i < 2 && ok; ++side_i) {
              int scale = side_i == 0 ? 1 : -1;
              const Influence& side = *sides[side_i];
              if (side.kind == Influence::Kind::kSource) {
                UpdateFactor f;
                f.prim = FactorPrim::kIdent;
                f.source = source;
                f.power = 1;
                factors = MergeFactors(factors, {f}, scale);
              } else if (side.kind == Influence::Kind::kFactored) {
                factors = MergeFactors(factors, side.factors, scale);
              } else if (side.kind != Influence::Kind::kUnrelated) {
                ok = false;
              }
            }
            if (ok) {
              out.kind = Influence::Kind::kFactored;
              out.factors = std::move(factors);
            } else {
              fail();
            }
            break;
          }
          case BinaryKind::kMax:
            fail();
            break;
        }
        break;
      }
      case OpKind::kReduce:
      case OpKind::kMatMul: {
        const Mapping* a2o = nullptr;
        for (MappingId mid : smg.outgoing(built.op_space[static_cast<size_t>(op.id)])) {
          const Mapping& m = smg.mapping(mid);
          if (m.kind == MappingKind::kAllToOne) {
            a2o = &m;
          }
        }
        bool along_sliced = a2o != nullptr && a2o->dim == sliced_dim;
        if (along_sliced) {
          // This is itself a running reduction of the temporal loop. Any
          // factor arriving at its *inputs* becomes an update factor for it
          // (collected below); its *output* is an independent running state
          // variable whose drift is handled by its own update function, so
          // the source's influence must not propagate through it.
          out.kind = Influence::Kind::kUnrelated;
        } else {
          // A reduction along a different dim cannot, in general, commute
          // with the factor (the factor may vary along that dim).
          fail();
        }
        break;
      }
    }
  }
  return state;
}

}  // namespace

StatusOr<TemporalPlan> DeriveTemporalPlan(const Graph& graph, const SmgBuildResult& built,
                                          DimId dim) {
  const Smg& smg = built.smg;
  DimAnalysis analysis = AnalyzeDim(smg, dim);

  TemporalPlan plan;
  plan.dim = dim;

  if (analysis.all_to_ones.empty()) {
    return plan;  // only One-to-Alls: plain streaming, nothing to aggregate
  }

  // Outputs that extend along the sliced dim are written slice-by-slice as
  // the temporal loop streams. That is only exact if the slice values are
  // final when written, i.e. the output must not depend on a running
  // reduction along the dim (a standalone softmax output, for example,
  // would need every earlier slice rescaled when the running sum grows).
  {
    std::vector<bool> tainted(graph.tensors().size(), false);
    for (MappingId mid : analysis.all_to_ones) {
      tainted[static_cast<size_t>(graph.op(smg.mapping(mid).op).output)] = true;
    }
    for (const Op& op : graph.ops()) {
      for (TensorId in : op.inputs) {
        if (tainted[static_cast<size_t>(in)]) {
          tainted[static_cast<size_t>(op.output)] = true;
          break;
        }
      }
    }
    for (const TensorInfo& t : graph.tensors()) {
      if (t.kind == TensorKind::kOutput && tainted[static_cast<size_t>(t.id)] &&
          built.AxisOfDim(t.id, dim) >= 0) {
        return Unsupported(StrCat("output ", t.name, " streams along dim ", smg.dim(dim).name,
                                  " but depends on a running reduction; slices would be stale"));
      }
    }
  }

  // Base aggregations: each reduction combines with its own kind.
  std::vector<OpId> reduction_ops;
  for (MappingId mid : analysis.all_to_ones) {
    const Mapping& m = smg.mapping(mid);
    ReductionAggregation agg;
    agg.op = m.op;
    switch (m.reduce) {
      case ReduceOpKind::kMax:
        agg.combiner = ReduceOpKind::kMax;
        break;
      case ReduceOpKind::kSum:
      case ReduceOpKind::kDot:
        agg.combiner = ReduceOpKind::kSum;
        break;
      case ReduceOpKind::kMean:
        agg.combiner = ReduceOpKind::kSum;
        agg.finalize_divide_by_extent = true;
        break;
    }
    plan.aggregations.push_back(agg);
    reduction_ops.push_back(m.op);
  }

  if (analysis.cls == DimClass::kIndependentA2O) {
    return plan;  // Simple Aggregate suffices
  }
  SF_CHECK(analysis.cls == DimClass::kDependentA2O);

  // Update-then-Aggregate: for every earlier reduction, postpose its
  // broadcast influence and attach the resulting update factors to every
  // later reduction it reaches.
  for (size_t j = 0; j < reduction_ops.size(); ++j) {
    OpId source = reduction_ops[j];
    std::vector<Influence> influence = PropagateInfluence(graph, built, source, dim);
    for (size_t i = 0; i < reduction_ops.size(); ++i) {
      if (reduction_ops[i] == source) {
        continue;
      }
      const Op& target = graph.op(reduction_ops[i]);
      // The influence that flows *into* the target reduction.
      bool influenced = false;
      std::vector<UpdateFactor> factors;
      for (TensorId in : target.inputs) {
        const Influence& inf = influence[static_cast<size_t>(in)];
        if (inf.kind == Influence::Kind::kUnrelated) {
          continue;
        }
        if (inf.kind != Influence::Kind::kFactored) {
          return Unsupported(StrCat("broadcast postposition dead-ends between ",
                                    graph.op(source).name, " and ", target.name, " along dim ",
                                    smg.dim(dim).name));
        }
        influenced = true;
        factors = MergeFactors(factors, inf.factors, 1);
      }
      if (influenced) {
        // A max-combining reduction cannot absorb multiplicative updates.
        if (plan.aggregations[i].combiner == ReduceOpKind::kMax) {
          return Unsupported(StrCat("running-max reduction ", target.name,
                                    " depends on earlier reduction ", graph.op(source).name,
                                    "; no update function exists"));
        }
        plan.aggregations[i].update =
            MergeFactors(plan.aggregations[i].update, factors, 1);
      }
    }
  }
  return plan;
}

}  // namespace spacefusion
