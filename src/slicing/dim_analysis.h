// Per-dimension mapping analysis: the decision table the slicers consult
// (paper Table 3, "Slicer Applications for Mappings in the Dimension").
#ifndef SPACEFUSION_SRC_SLICING_DIM_ANALYSIS_H_
#define SPACEFUSION_SRC_SLICING_DIM_ANALYSIS_H_

#include <string>
#include <vector>

#include "src/smg/smg.h"

namespace spacefusion {

// How the directional mappings along one dimension constrain slicing.
enum class DimClass {
  kFree,            // no directional mappings: both slicers apply
  kInputO2AOnly,    // only input One-to-Alls: both slicers apply
  kOtherO2A,        // non-input One-to-All present, no All-to-One: temporal only
  kIndependentA2O,  // All-to-One(s) without inter-reduction dependencies:
                    // temporal via Simple Aggregate
  kDependentA2O,    // a dependency chain of All-to-Ones: temporal via
                    // Update-then-Aggregate — needs further analysis (△)
};

const char* DimClassName(DimClass c);

struct DimAnalysis {
  DimId dim = kNoDim;
  DimClass cls = DimClass::kFree;
  // All-to-One mappings along the dim, in topological (dependency) order.
  std::vector<MappingId> all_to_ones;
  // Non-input One-to-Alls along the dim.
  std::vector<MappingId> other_one_to_alls;

  bool SpatialSliceable() const {
    return cls == DimClass::kFree || cls == DimClass::kInputO2AOnly;
  }
  // Temporal sliceability of dependent chains additionally requires update
  // functions to exist; that is checked by the temporal slicer itself.
  bool TemporalCandidate() const { return true; }
};

// Classifies the mappings along dim `d` of `smg`.
DimAnalysis AnalyzeDim(const Smg& smg, DimId d);

// Classifies every dim.
std::vector<DimAnalysis> AnalyzeAllDims(const Smg& smg);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SLICING_DIM_ANALYSIS_H_
