#include "src/slicing/dim_analysis.h"

#include <algorithm>

namespace spacefusion {

const char* DimClassName(DimClass c) {
  switch (c) {
    case DimClass::kFree:
      return "free";
    case DimClass::kInputO2AOnly:
      return "input-o2a";
    case DimClass::kOtherO2A:
      return "other-o2a";
    case DimClass::kIndependentA2O:
      return "independent-a2o";
    case DimClass::kDependentA2O:
      return "dependent-a2o";
  }
  return "?";
}

DimAnalysis AnalyzeDim(const Smg& smg, DimId d) {
  DimAnalysis out;
  out.dim = d;

  bool any_other_o2a = false;
  bool any_input_o2a = false;
  for (MappingId mid : smg.MappingsAlongDim(d)) {
    const Mapping& m = smg.mapping(mid);
    if (m.kind == MappingKind::kAllToOne) {
      out.all_to_ones.push_back(mid);
    } else if (smg.IsInputOneToAll(m)) {
      any_input_o2a = true;
    } else {
      any_other_o2a = true;
      out.other_one_to_alls.push_back(mid);
    }
  }

  if (out.all_to_ones.empty()) {
    if (any_other_o2a) {
      out.cls = DimClass::kOtherO2A;
    } else if (any_input_o2a) {
      out.cls = DimClass::kInputO2AOnly;
    } else {
      out.cls = DimClass::kFree;
    }
    return out;
  }

  // Order All-to-Ones topologically: m1 precedes m2 when m1's sink reaches
  // m2's iteration space. Dependencies between them decide SA vs UTA.
  std::sort(out.all_to_ones.begin(), out.all_to_ones.end(), [&](MappingId a, MappingId b) {
    return smg.mapping(a).op < smg.mapping(b).op;
  });

  bool dependent = false;
  for (size_t i = 0; i < out.all_to_ones.size() && !dependent; ++i) {
    for (size_t j = 0; j < out.all_to_ones.size() && !dependent; ++j) {
      if (i == j) {
        continue;
      }
      const Mapping& mi = smg.mapping(out.all_to_ones[i]);
      const Mapping& mj = smg.mapping(out.all_to_ones[j]);
      // sink data space of one reduction feeding (transitively) the
      // iteration space of another makes the chain dependent.
      if (smg.Reaches(mi.dst, mj.src)) {
        dependent = true;
      }
    }
  }
  out.cls = dependent ? DimClass::kDependentA2O : DimClass::kIndependentA2O;
  return out;
}

std::vector<DimAnalysis> AnalyzeAllDims(const Smg& smg) {
  std::vector<DimAnalysis> out;
  out.reserve(static_cast<size_t>(smg.num_dims()));
  for (DimId d = 0; d < smg.num_dims(); ++d) {
    out.push_back(AnalyzeDim(smg, d));
  }
  return out;
}

}  // namespace spacefusion
