#include "src/slicing/slicers.h"

#include <algorithm>

#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

std::vector<DimId> SpatialSlicer::GetDims(const Smg& smg) {
  std::vector<DimId> dims;
  for (DimId d = 0; d < smg.num_dims(); ++d) {
    if (AnalyzeDim(smg, d).SpatialSliceable()) {
      dims.push_back(d);
    }
  }
  return dims;
}

std::vector<DimId> TemporalSlicer::CandidateDims(const Smg& smg,
                                                 const std::vector<DimId>& spatial_dims) {
  std::vector<DimId> candidates;
  for (DimId d = 0; d < smg.num_dims(); ++d) {
    if (std::find(spatial_dims.begin(), spatial_dims.end(), d) == spatial_dims.end()) {
      candidates.push_back(d);
    }
  }
  std::sort(candidates.begin(), candidates.end(), [&smg](DimId a, DimId b) {
    std::int64_t va = smg.DataVolumeAlongDim(a);
    std::int64_t vb = smg.DataVolumeAlongDim(b);
    if (va != vb) {
      return va > vb;
    }
    return a < b;
  });
  return candidates;
}

StatusOr<TemporalChoice> TemporalSlicer::GetPriorDim(const Graph& graph,
                                                     const SmgBuildResult& built,
                                                     const std::vector<DimId>& spatial_dims,
                                                     bool allow_uta) {
  for (DimId d : TemporalSlicer::CandidateDims(built.smg, spatial_dims)) {
    StatusOr<TemporalPlan> plan = DeriveTemporalPlan(graph, built, d);
    if (plan.ok() && !allow_uta && plan->AnyUpdate()) {
      SF_LOG(Debug) << "dim " << built.smg.dim(d).name
                    << " needs update functions; UTA disabled";
      continue;
    }
    if (plan.ok()) {
      TemporalChoice choice;
      choice.dim = d;
      choice.plan = std::move(plan).value();
      return choice;
    }
    SF_LOG(Debug) << "dim " << built.smg.dim(d).name << " not temporally sliceable: "
                  << plan.status().ToString();
  }
  return Status(StatusCode::kNotFound, StrCat("no temporally sliceable dim in ", graph.name()));
}

}  // namespace spacefusion
