// Spatial and temporal slicers (paper Sec. 4.2 / 4.3).
//
// The spatial slicer picks dimensions along which an SMG decomposes into
// independent, parallel SMG blocks (one per GPU thread block): a dim
// qualifies iff every directional mapping along it is an *input* One-to-All
// (slicing those never creates inter-block flow dependencies).
//
// The temporal slicer serializes one remaining dimension into sequentially
// executed intra-blocks to shrink the on-chip footprint, aggregating sliced
// All-to-Ones with Simple Aggregate or Update-then-Aggregate.
#ifndef SPACEFUSION_SRC_SLICING_SLICERS_H_
#define SPACEFUSION_SRC_SLICING_SLICERS_H_

#include <vector>

#include "src/slicing/dim_analysis.h"
#include "src/slicing/update_functions.h"

namespace spacefusion {

class SpatialSlicer {
 public:
  // All spatially sliceable dims of the SMG (Table 3 rows marked ⃝ for the
  // spatial slicer). Empty => the fused space cannot be parallelized.
  static std::vector<DimId> GetDims(const Smg& smg);
};

// A successful temporal-slicing decision.
struct TemporalChoice {
  DimId dim = kNoDim;
  TemporalPlan plan;
};

class TemporalSlicer {
 public:
  // Dims not already spatially sliced, ordered by slicing priority: a dim
  // with a larger volume of data spaces along it frees more on-chip memory
  // when sliced (Sec. 5.1).
  static std::vector<DimId> CandidateDims(const Smg& smg, const std::vector<DimId>& spatial_dims);

  // Picks the highest-priority candidate whose dependency pattern can be
  // sliced (deriving update functions where the All-to-Ones are dependent).
  // Returns kNotFound when no dim is temporally sliceable.
  //
  // `allow_uta=false` models tile-stitching compilers (Welder/NNFusion) that
  // cannot transform dependencies: dims whose plan needs update functions
  // are rejected, only Simple Aggregate survives.
  static StatusOr<TemporalChoice> GetPriorDim(const Graph& graph, const SmgBuildResult& built,
                                              const std::vector<DimId>& spatial_dims,
                                              bool allow_uta = true);
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SLICING_SLICERS_H_
