// Update-function generation for Update-then-Aggregate (paper Sec. 4.3).
//
// When a temporal slicer cuts a *dependency chain* of All-to-Ones (e.g.
// softmax-in-attention: max <- sum <- dot), later reductions must be
// recursively *updated* when earlier running reductions change. The paper
// derives the update functions by Broadcast Postposition: broadcasts of
// earlier reduction results are pushed past subsequent operators using
// algebraic rules until they become multiplicative scalar factors outside
// the later reduction; back-tracing the resulting update paths yields the
// update functions (Fig. 8).
//
// We implement postposition as a forward dataflow analysis over the operator
// graph: starting from each earlier reduction result r, track how r's
// influence propagates — as an additive shift (x - r), as a multiplicative
// factor (exp(-r), r, 1/r with integer powers), or not at all — through
// element-wise ops, divisions, and linear reductions. A later reduction
// whose input carries a pure multiplicative factor g(r) gets the update
// multiplier g(r_new) / g(r_old); any non-postposable pattern makes the
// chain non-sliceable (the △ entries of Table 3).
#ifndef SPACEFUSION_SRC_SLICING_UPDATE_FUNCTIONS_H_
#define SPACEFUSION_SRC_SLICING_UPDATE_FUNCTIONS_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/smg/smg_builder.h"
#include "src/support/status.h"

namespace spacefusion {

// Primitive factor shapes that survive postposition.
enum class FactorPrim {
  kExpNeg,  // g(r) = exp(-r)   (from the exp(x - r) pattern)
  kIdent,   // g(r) = r         (from multiplication; power -1 for division)
};

// One multiplicative primitive g(r)^power contributed by source reduction
// `source` (an op id of a reduce/matmul along the temporal dim).
struct UpdateFactor {
  FactorPrim prim = FactorPrim::kIdent;
  OpId source = -1;
  int power = 1;

  // The update multiplier applied to an old value when `source`'s running
  // reduction moves from `old_v` to `new_v`:
  //   kExpNeg: exp(power * (old_v - new_v))
  //   kIdent : (new_v / old_v)^power
  float Multiplier(float old_v, float new_v) const;

  std::string ToString(const Graph& graph) const;
};

// How one reduction along the temporal dim is carried across intra-blocks.
struct ReductionAggregation {
  OpId op = -1;                       // the reduce / matmul op
  ReduceOpKind combiner = ReduceOpKind::kSum;  // max or sum family
  // Update factors applied to the old running value before combining
  // (empty => Simple Aggregate).
  std::vector<UpdateFactor> update;
  // Mean reductions aggregate partial sums and divide by the full extent
  // when the temporal loop finishes.
  bool finalize_divide_by_extent = false;

  bool NeedsUpdate() const { return !update.empty(); }
};

// The full temporal-slicing plan for one dimension.
struct TemporalPlan {
  DimId dim = kNoDim;
  // In topological order of the owning ops.
  std::vector<ReductionAggregation> aggregations;
  bool AnyUpdate() const;

  std::string ToString(const Graph& graph) const;
};

// Derives the aggregation plan for slicing `dim`. Fails with kUnsupported
// when a dependent All-to-One chain has no algebraic update functions
// (Broadcast Postposition dead-ends), in which case the dim must not be
// temporally sliced.
StatusOr<TemporalPlan> DeriveTemporalPlan(const Graph& graph, const SmgBuildResult& built,
                                          DimId dim);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SLICING_UPDATE_FUNCTIONS_H_
