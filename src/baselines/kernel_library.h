// Shared constructors for baseline kernel specs: the analytic models of the
// hand-written CUDA/Triton kernels the paper compares against.
#ifndef SPACEFUSION_SRC_BASELINES_KERNEL_LIBRARY_H_
#define SPACEFUSION_SRC_BASELINES_KERNEL_LIBRARY_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/sim/kernel.h"

namespace spacefusion {

// A library GEMM (cuBLAS-class): 128x128-tiled, high tensor-core efficiency.
// `extra_reads` model fused epilogue operands (bias, residual).
KernelSpec MakeGemmKernel(const std::string& name, std::int64_t batch, std::int64_t m,
                          std::int64_t n, std::int64_t k, std::int64_t elem_bytes,
                          AddressMap* addresses, const std::string& a_name,
                          const std::string& b_name, const std::string& out_name,
                          double efficiency = 0.85);

// A memory-bound kernel: streams its reads once and writes its outputs once.
struct NamedBytes {
  std::string name;
  std::int64_t bytes = 0;
  double touches = 1.0;
  bool shared = false;  // broadcast operand (read by all blocks)
};
KernelSpec MakeMemoryBoundKernel(const std::string& name, const std::vector<NamedBytes>& reads,
                                 const std::vector<NamedBytes>& writes, AddressMap* addresses,
                                 std::int64_t flops = 0);

// One kernel per primitive op (the PyTorch-eager execution model). The
// gemm_efficiency distinguishes "PyTorch" (0.80) from "cuBLAS-tuned" (0.85).
// `fuse_softmax` collapses max/sub/exp/sum/div chains into a single kernel,
// matching torch.softmax (one CUDA kernel in eager mode).
std::vector<KernelSpec> PlanUnfused(const Graph& graph, AddressMap* addresses,
                                    double gemm_efficiency, bool fuse_softmax = true);

// Bytes of one tensor; convenience for planners.
std::int64_t TensorBytes(const Graph& graph, TensorId id);

// True when `operand` is re-read by every output block of an element-wise
// kernel over `out`: the operand broadcasts along *leading* output dims
// (bias [N] against [M, N]). Row statistics ([M, 1] against [M, N]) align
// with the row-major block partition and are read by their own block only.
bool IsSharedBroadcastOperand(const Shape& operand, const Shape& out);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_BASELINES_KERNEL_LIBRARY_H_
