// Compiler and inference-engine baselines:
//   * AStitch / BladeDISC — stitches memory-intensive ops into fused kernels
//     through shared/global memory; compute-intensive ops stay on cuBLAS.
//   * Welder / NNFusion   — tile-graph scheduling: fuses across operators by
//     aligning tile shapes in the memory hierarchy, but cannot transform
//     dependencies (no UTA) and keeps hardware-aligned tiles (>=16).
//   * TensorRT            — hand-tuned pattern library (fused MHA, fused LN,
//     GEMM+epilogue) picked by graph matching.
//   * Kernl               — Triton kernel library for Transformer patterns.
#include "src/baselines/baseline.h"
#include "src/baselines/patterns.h"
#include "src/schedule/lowering.h"
#include "src/schedule/pipeline.h"
#include "src/sim/cost_model.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

// ---------------------------------------------------------------------------
// AStitch (BladeDISC)
// ---------------------------------------------------------------------------
class AStitchBaseline : public Baseline {
 public:
  std::string name() const override { return "BladeDISC"; }

  bool Supports(const Graph& graph, const GpuArch& arch) const override {
    // The paper's BladeDISC setup is not fully supported on Hopper.
    return arch.name != "Hopper";
  }

  std::vector<KernelSpec> Plan(const Graph& graph, const GpuArch& arch,
                               AddressMap* addresses) const override {
    std::vector<KernelSpec> kernels;
    // Segment ops into CI singletons and maximal MI runs.
    const int n = static_cast<int>(graph.ops().size());
    int i = 0;
    while (i < n) {
      const Op& op = graph.op(i);
      if (op.kind == OpKind::kMatMul) {
        std::vector<KernelSpec> one = PlanSingleGemm(graph, op, addresses);
        kernels.insert(kernels.end(), one.begin(), one.end());
        ++i;
        continue;
      }
      int j = i;
      while (j < n && graph.op(j).kind != OpKind::kMatMul) {
        ++j;
      }
      kernels.push_back(PlanMiRun(graph, i, j, addresses));
      i = j;
    }
    return kernels;
  }

 private:
  static std::vector<KernelSpec> PlanSingleGemm(const Graph& graph, const Op& op,
                                                AddressMap* addresses) {
    const TensorInfo& a = graph.tensor(op.inputs[0]);
    const TensorInfo& b = graph.tensor(op.inputs[1]);
    const TensorInfo& out = graph.tensor(op.output);
    const Shape& os = out.shape;
    std::int64_t m = os.dim(os.rank() - 2);
    std::int64_t nn = os.dim(os.rank() - 1);
    std::int64_t batch = os.volume() / (m * nn);
    const Shape& as = a.shape;
    std::int64_t k = op.attrs.transpose_a ? as.dim(as.rank() - 2) : as.dim(as.rank() - 1);
    return {MakeGemmKernel(op.name, batch, m, nn, k, DTypeSize(out.dtype), addresses, a.name,
                           b.name, out.name, /*efficiency=*/0.83)};
  }

  // One stitched kernel for the MI ops in [begin, end): intermediates stay
  // on chip; only run-boundary tensors move through global memory.
  static KernelSpec PlanMiRun(const Graph& graph, int begin, int end, AddressMap* addresses) {
    std::vector<bool> produced(graph.tensors().size(), false);
    for (int i = begin; i < end; ++i) {
      produced[static_cast<size_t>(graph.op(i).output)] = true;
    }
    std::vector<NamedBytes> reads;
    std::vector<NamedBytes> writes;
    std::int64_t flops = 0;
    for (int i = begin; i < end; ++i) {
      const Op& op = graph.op(i);
      flops += graph.tensor(op.output).shape.volume();
      for (TensorId in : op.inputs) {
        const TensorInfo& t = graph.tensor(in);
        if (produced[static_cast<size_t>(in)] || t.kind == TensorKind::kConstant) {
          continue;
        }
        bool seen = false;
        for (const NamedBytes& r : reads) {
          if (r.name == t.name) {
            seen = true;
          }
        }
        if (!seen) {
          reads.push_back({t.name, t.bytes(), 1.0, false});
        }
      }
      const TensorInfo& out = graph.tensor(op.output);
      bool escapes = out.kind == TensorKind::kOutput;
      for (OpId consumer : graph.consumers(op.output)) {
        if (consumer >= end) {
          escapes = true;
        }
      }
      if (escapes) {
        writes.push_back({out.name, out.bytes(), 1.0, false});
      }
    }
    return MakeMemoryBoundKernel(StrCat(graph.name(), ".stitched_", begin), reads, writes,
                                 addresses, flops);
  }
};

// ---------------------------------------------------------------------------
// Welder (NNFusion)
// ---------------------------------------------------------------------------
class WelderBaseline : public Baseline {
 public:
  std::string name() const override { return "NNFusion"; }

  bool Supports(const Graph& graph, const GpuArch& arch) const override {
    // The paper's NNFusion setup only runs on Volta.
    return arch.name == "Volta";
  }

  std::vector<KernelSpec> Plan(const Graph& graph, const GpuArch& arch,
                               AddressMap* addresses) const override {
    SlicingOptions options;
    options.allow_uta = false;      // no dependency transformation
    options.search.min_block = 16;  // hardware-aligned tiles only
    ResourceConfig rc = ResourceConfig::FromArch(arch);
    CostModel cost(arch);

    std::vector<SlicingResult> sliced_kernels;
    for (const Graph& component : SplitConnectedComponents(graph)) {
      StatusOr<PipelineResult> pipeline = RunSlicingPipeline(component, rc, options);
      if (!pipeline.ok()) {
        // Tile-graph scheduling failed outright: fall back to unfused.
        return PlanUnfused(graph, addresses, 0.82);
      }
      for (SlicingResult& kr : pipeline->candidates.front().kernels) {
        sliced_kernels.push_back(std::move(kr));
      }
    }

    std::vector<KernelSpec> kernels;
    for (SlicingResult& kr : sliced_kernels) {
      // Hand-tuned block sizes: best config under the cost model.
      const ScheduleConfig* best = nullptr;
      double best_time = 0.0;
      for (const ScheduleConfig& c : kr.configs) {
        kr.schedule.ApplyConfig(c);
        PlanMemory(&kr.schedule, rc);
        AddressMap probe;
        KernelSpec spec = LowerSchedule(kr.schedule, &probe);
        double t = cost.EstimateKernel(spec).time_us;
        if (best == nullptr || t < best_time) {
          best = &c;
          best_time = t;
        }
      }
      SF_CHECK(best != nullptr);
      kr.schedule.ApplyConfig(*best);
      PlanMemory(&kr.schedule, rc);
      kernels.push_back(LowerSchedule(kr.schedule, addresses));
    }
    return kernels;
  }
};

// ---------------------------------------------------------------------------
// TensorRT / Kernl pattern libraries
// ---------------------------------------------------------------------------
struct EngineProfile {
  std::string name;
  double mha_efficiency;     // fused attention kernel quality
  bool mha_parallel_seq;     // FA2-style parallelism
  double ln_passes;          // fused LN input passes
  double gemm_efficiency;
  bool fuse_gemm_epilogue;
};

class EngineBaseline : public Baseline {
 public:
  explicit EngineBaseline(EngineProfile profile) : profile_(std::move(profile)) {}

  std::string name() const override { return profile_.name; }

  std::vector<KernelSpec> Plan(const Graph& graph, const GpuArch& arch,
                               AddressMap* addresses) const override {
    switch (DetectPattern(graph)) {
      case GraphPattern::kMha:
        return PlanFusedMha(graph, addresses);
      case GraphPattern::kLayerNorm:
        return PlanFusedLn(graph, addresses);
      case GraphPattern::kGemmChain:
        if (profile_.fuse_gemm_epilogue) {
          return MakeCublasLtBaseline()->Plan(graph, arch, addresses);
        }
        return PlanUnfused(graph, addresses, profile_.gemm_efficiency);
      case GraphPattern::kElementwise:
      case GraphPattern::kGeneric:
        return PlanStitchedElementwise(graph, arch, addresses);
    }
    return PlanUnfused(graph, addresses, profile_.gemm_efficiency);
  }

 private:
  std::vector<KernelSpec> PlanFusedMha(const Graph& graph, AddressMap* addresses) const {
    MhaDims d = ExtractMhaDims(graph);
    const std::int64_t eb = 2;
    KernelSpec spec;
    spec.name = StrCat(profile_.name, ".fused_mha");
    spec.grid = profile_.mha_parallel_seq
                    ? d.batch_heads * std::max<std::int64_t>(1, d.seq_q / 128)
                    : d.batch_heads;
    spec.threads_per_block = 256;
    spec.smem_per_block = 48 * 1024;
    spec.regs_per_block_bytes = 128 * 1024;
    spec.flops = 4 * d.batch_heads * d.seq_q * d.seq_kv * d.head_dim;
    spec.compute_efficiency = profile_.mha_efficiency;

    std::int64_t q_bytes = d.batch_heads * d.seq_q * d.head_dim * eb;
    std::int64_t kv_bytes = d.batch_heads * d.seq_kv * d.head_dim * eb;
    int idx = 0;
    for (TensorId in : graph.InputIds()) {
      const TensorInfo& t = graph.tensor(in);
      TensorTraffic r;
      r.tensor = t.name;
      r.unique_bytes = idx == 0 ? q_bytes : kv_bytes;
      r.per_block_bytes = std::max<std::int64_t>(1, r.unique_bytes / std::max<std::int64_t>(
                                                         1, d.batch_heads));
      r.shared_across_blocks = profile_.mha_parallel_seq;
      r.base_address = addresses->Assign(t.name, t.bytes());
      spec.reads.push_back(std::move(r));
      ++idx;
    }
    const TensorInfo& out = graph.tensor(graph.OutputIds().front());
    TensorTraffic w;
    w.tensor = out.name;
    w.unique_bytes = out.bytes();
    w.per_block_bytes = std::max<std::int64_t>(1, out.bytes() / spec.grid);
    w.base_address = addresses->Assign(out.name, w.unique_bytes);
    spec.writes.push_back(std::move(w));
    return {spec};
  }

  std::vector<KernelSpec> PlanFusedLn(const Graph& graph, AddressMap* addresses) const {
    std::vector<NamedBytes> reads;
    std::vector<NamedBytes> writes;
    for (const TensorInfo& t : graph.tensors()) {
      if (t.kind == TensorKind::kInput) {
        reads.push_back({t.name, t.bytes(), profile_.ln_passes, false});
      } else if (t.kind == TensorKind::kWeight) {
        reads.push_back({t.name, t.bytes(), 1.0, true});
      } else if (t.kind == TensorKind::kOutput) {
        writes.push_back({t.name, t.bytes(), 1.0, false});
      }
    }
    return {MakeMemoryBoundKernel(StrCat(profile_.name, ".fused_ln"), reads, writes, addresses,
                                  0)};
  }

  std::vector<KernelSpec> PlanStitchedElementwise(const Graph& graph, const GpuArch& arch,
                                                  AddressMap* addresses) const {
    return AStitchBaseline().Plan(graph, arch, addresses);
  }

  EngineProfile profile_;
};

}  // namespace

std::unique_ptr<Baseline> MakeAStitchBaseline() { return std::make_unique<AStitchBaseline>(); }
std::unique_ptr<Baseline> MakeWelderBaseline() { return std::make_unique<WelderBaseline>(); }

std::unique_ptr<Baseline> MakeTensorRtBaseline() {
  EngineProfile p;
  p.name = "TensorRT";
  p.mha_efficiency = 0.62;
  p.mha_parallel_seq = true;
  p.ln_passes = 1.15;
  p.gemm_efficiency = 0.87;
  p.fuse_gemm_epilogue = true;
  return std::make_unique<EngineBaseline>(std::move(p));
}

std::unique_ptr<Baseline> MakeKernlBaseline() {
  EngineProfile p;
  p.name = "Kernl";
  p.mha_efficiency = 0.55;
  p.mha_parallel_seq = true;
  p.ln_passes = 1.3;
  p.gemm_efficiency = 0.78;
  p.fuse_gemm_epilogue = false;
  return std::make_unique<EngineBaseline>(std::move(p));
}

}  // namespace spacefusion
