#include "src/baselines/patterns.h"

namespace spacefusion {

const char* GraphPatternName(GraphPattern pattern) {
  switch (pattern) {
    case GraphPattern::kMha:
      return "mha";
    case GraphPattern::kLayerNorm:
      return "layernorm";
    case GraphPattern::kGemmChain:
      return "gemm-chain";
    case GraphPattern::kElementwise:
      return "elementwise";
    case GraphPattern::kGeneric:
      return "generic";
  }
  return "?";
}

namespace {

bool HasSoftmaxCore(const Graph& graph) {
  // max -> sub -> exp -> sum -> div along a single chain.
  for (const Op& op : graph.ops()) {
    if (op.kind != OpKind::kReduce || op.attrs.reduce != ReduceKind::kMax) {
      continue;
    }
    for (OpId sub_id : graph.consumers(op.output)) {
      const Op& sub = graph.op(sub_id);
      if (sub.kind != OpKind::kBinary || sub.attrs.binary != BinaryKind::kSub) {
        continue;
      }
      for (OpId exp_id : graph.consumers(sub.output)) {
        const Op& exp = graph.op(exp_id);
        if (exp.kind != OpKind::kUnary || exp.attrs.unary != UnaryKind::kExp) {
          continue;
        }
        for (OpId sum_id : graph.consumers(exp.output)) {
          const Op& sum = graph.op(sum_id);
          if (sum.kind == OpKind::kReduce && sum.attrs.reduce == ReduceKind::kSum) {
            return true;
          }
        }
      }
    }
  }
  return false;
}

bool HasVarianceCore(const Graph& graph) {
  // mean -> sub -> square -> mean (the LayerNorm variance chain).
  for (const Op& op : graph.ops()) {
    if (op.kind != OpKind::kReduce || op.attrs.reduce != ReduceKind::kMean) {
      continue;
    }
    for (OpId sub_id : graph.consumers(op.output)) {
      const Op& sub = graph.op(sub_id);
      if (sub.kind != OpKind::kBinary || sub.attrs.binary != BinaryKind::kSub) {
        continue;
      }
      for (OpId sq_id : graph.consumers(sub.output)) {
        const Op& sq = graph.op(sq_id);
        if (sq.kind == OpKind::kUnary && sq.attrs.unary == UnaryKind::kSquare) {
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

GraphPattern DetectPattern(const Graph& graph) {
  int matmuls = 0;
  for (const Op& op : graph.ops()) {
    if (op.kind == OpKind::kMatMul) {
      ++matmuls;
    }
  }
  if (matmuls >= 2 && HasSoftmaxCore(graph)) {
    return GraphPattern::kMha;
  }
  if (matmuls == 0 && HasVarianceCore(graph)) {
    return GraphPattern::kLayerNorm;
  }
  if (matmuls > 0) {
    return GraphPattern::kGemmChain;
  }
  return GraphPattern::kElementwise;
}

MhaDims ExtractMhaDims(const Graph& graph) {
  MhaDims dims;
  for (const Op& op : graph.ops()) {
    if (op.kind != OpKind::kMatMul) {
      continue;
    }
    const Shape& out = graph.tensor(op.output).shape;
    const Shape& a = graph.tensor(op.inputs[0]).shape;
    // The first matmul (QK^T): out [bh, sq, skv].
    std::int64_t batch = 1;
    for (int i = 0; i < out.rank() - 2; ++i) {
      batch *= out.dim(i);
    }
    dims.batch_heads = batch;
    dims.seq_q = out.dim(out.rank() - 2);
    dims.seq_kv = out.dim(out.rank() - 1);
    dims.head_dim = op.attrs.transpose_a ? a.dim(a.rank() - 2) : a.dim(a.rank() - 1);
    break;
  }
  return dims;
}

}  // namespace spacefusion
