// Hand-fused LayerNorm baselines (paper Fig. 12).
//
// All three fuse the nine MI ops of the LN subgraph into one kernel; they
// differ in how many passes over the input their algorithms make and in the
// achieved bandwidth of their implementations:
//   * PyTorch Op (torch.nn.functional.layer_norm): Welford single-pass,
//     well-tuned CUDA;
//   * NVIDIA Apex: two-pass (mean, then variance) persistent kernel;
//   * Triton tutorial LN: two-pass with a less-tuned access pattern.
#include "src/baselines/baseline.h"
#include "src/baselines/patterns.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

// Shapes of the LN problem: total input bytes, rows.
struct LnShape {
  std::int64_t in_bytes = 0;
  std::int64_t out_bytes = 0;
  std::int64_t weight_bytes = 0;
  std::string in_name, out_name;
};

LnShape ExtractLn(const Graph& graph) {
  LnShape s;
  for (const TensorInfo& t : graph.tensors()) {
    if (t.kind == TensorKind::kInput) {
      s.in_bytes = t.bytes();
      s.in_name = t.name;
    } else if (t.kind == TensorKind::kOutput) {
      s.out_bytes = t.bytes();
      s.out_name = t.name;
    } else if (t.kind == TensorKind::kWeight) {
      s.weight_bytes += t.bytes();
    }
  }
  return s;
}

class FusedLnBaseline : public Baseline {
 public:
  FusedLnBaseline(std::string name, double input_passes, double efficiency)
      : name_(std::move(name)), input_passes_(input_passes), efficiency_(efficiency) {}

  std::string name() const override { return name_; }

  bool Supports(const Graph& graph, const GpuArch& arch) const override {
    return DetectPattern(graph) == GraphPattern::kLayerNorm;
  }

  std::vector<KernelSpec> Plan(const Graph& graph, const GpuArch& arch,
                               AddressMap* addresses) const override {
    LnShape s = ExtractLn(graph);
    std::vector<NamedBytes> reads;
    reads.push_back({s.in_name, s.in_bytes, input_passes_, false});
    if (s.weight_bytes > 0) {
      reads.push_back({StrCat(graph.name(), ".gamma_beta"), s.weight_bytes, 1.0, true});
    }
    KernelSpec spec = MakeMemoryBoundKernel(StrCat(name_, ".layer_norm"), reads,
                                            {{s.out_name, s.out_bytes, 1.0, false}}, addresses,
                                            /*flops=*/s.in_bytes * 4);
    spec.bandwidth_efficiency = efficiency_;
    return {spec};
  }

 private:
  std::string name_;
  double input_passes_;
  double efficiency_;
};

}  // namespace

std::unique_ptr<Baseline> MakeTorchOpLayerNorm() {
  return std::make_unique<FusedLnBaseline>("PyTorch Op", /*input_passes=*/1.12,
                                           /*efficiency=*/0.88);
}

std::unique_ptr<Baseline> MakeApexLayerNorm() {
  return std::make_unique<FusedLnBaseline>("NVIDIA Apex", /*input_passes=*/2.0,
                                           /*efficiency=*/0.8);
}

std::unique_ptr<Baseline> MakeTritonLayerNorm() {
  return std::make_unique<FusedLnBaseline>("LN Triton", /*input_passes=*/2.6,
                                           /*efficiency=*/0.62);
}

}  // namespace spacefusion
