#include "src/baselines/kernel_library.h"

#include <algorithm>

#include "src/support/math_util.h"
#include "src/support/string_util.h"

namespace spacefusion {

std::int64_t TensorBytes(const Graph& graph, TensorId id) { return graph.tensor(id).bytes(); }

bool IsSharedBroadcastOperand(const Shape& operand, const Shape& out) {
  if (operand == out) {
    return false;
  }
  if (operand.rank() < out.rank()) {
    return true;  // broadcasts along leading dims: every block re-reads it
  }
  // Same rank: the operand is partitioned iff its broadcast (1-extent) axes
  // all come *after* its last matching axis — then it lays out contiguously
  // with the row-major output blocks ([M,1] vs [M,N]). A broadcast axis
  // before a matching one ([1,N] vs [M,N]) makes every block re-read it.
  int last_match = -1;
  for (int i = 0; i < operand.rank(); ++i) {
    if (operand.dim(i) == out.dim(i) && out.dim(i) > 1) {
      last_match = i;
    }
  }
  for (int i = 0; i < last_match; ++i) {
    if (operand.dim(i) == 1 && out.dim(i) > 1) {
      return true;
    }
  }
  return false;
}

KernelSpec MakeGemmKernel(const std::string& name, std::int64_t batch, std::int64_t m,
                          std::int64_t n, std::int64_t k, std::int64_t elem_bytes,
                          AddressMap* addresses, const std::string& a_name,
                          const std::string& b_name, const std::string& out_name,
                          double efficiency) {
  KernelSpec spec;
  spec.name = name;
  // Library GEMMs tile the output at 128x128, shrinking tiles for skinny
  // problems until the launch can fill the machine (cuBLAS heuristics).
  std::int64_t tile_m = std::min<std::int64_t>(128, m);
  std::int64_t tile_n = std::min<std::int64_t>(128, n);
  auto grid_of = [&]() { return batch * CeilDiv(m, tile_m) * CeilDiv(n, tile_n); };
  while (grid_of() < 128 && std::max(tile_m, tile_n) > 32) {
    if (tile_m >= tile_n) {
      tile_m /= 2;
    } else {
      tile_n /= 2;
    }
  }
  spec.grid = grid_of();
  spec.threads_per_block = 256;
  spec.smem_per_block = std::min<std::int64_t>(
      64 * 1024, (tile_m + tile_n) * std::min<std::int64_t>(k, 64) * elem_bytes);
  spec.regs_per_block_bytes = 128 * 1024;
  spec.flops = 2 * batch * m * n * k;
  // Efficiency degrades for skinny problems that cannot fill the MMA tiles.
  double shape_eff = std::min(1.0, static_cast<double>(std::min(m, n)) / 64.0);
  spec.compute_efficiency = efficiency * std::max(0.25, shape_eff);
  spec.bandwidth_efficiency = 0.9;

  TensorTraffic ra;
  ra.tensor = a_name;
  ra.unique_bytes = batch * m * k * elem_bytes;
  ra.per_block_bytes = tile_m * k * elem_bytes;
  ra.touches_per_byte = 1.0;
  ra.shared_across_blocks = CeilDiv(n, tile_n) > 1;
  ra.base_address = addresses->Assign(a_name, ra.unique_bytes);
  spec.reads.push_back(ra);

  TensorTraffic rb;
  rb.tensor = b_name;
  rb.unique_bytes = (batch > 1 ? batch : 1) * n * k * elem_bytes;
  rb.per_block_bytes = tile_n * k * elem_bytes;
  rb.touches_per_byte = 1.0;
  rb.shared_across_blocks = CeilDiv(m, tile_m) > 1;
  rb.base_address = addresses->Assign(b_name, rb.unique_bytes);
  spec.reads.push_back(rb);

  TensorTraffic wo;
  wo.tensor = out_name;
  wo.unique_bytes = batch * m * n * elem_bytes;
  wo.per_block_bytes = tile_m * tile_n * elem_bytes;
  wo.base_address = addresses->Assign(out_name, wo.unique_bytes);
  spec.writes.push_back(wo);
  return spec;
}

KernelSpec MakeMemoryBoundKernel(const std::string& name, const std::vector<NamedBytes>& reads,
                                 const std::vector<NamedBytes>& writes, AddressMap* addresses,
                                 std::int64_t flops) {
  KernelSpec spec;
  spec.name = name;
  std::int64_t biggest = 1;
  for (const NamedBytes& r : reads) {
    biggest = std::max(biggest, r.bytes);
  }
  for (const NamedBytes& w : writes) {
    biggest = std::max(biggest, w.bytes);
  }
  // One block per ~32KB of the dominant stream.
  spec.grid = std::max<std::int64_t>(1, biggest / (32 * 1024));
  spec.threads_per_block = 256;
  spec.smem_per_block = 8 * 1024;
  spec.regs_per_block_bytes = 32 * 1024;
  spec.flops = flops;
  spec.compute_efficiency = 0.5;

  for (const NamedBytes& r : reads) {
    TensorTraffic t;
    t.tensor = r.name;
    t.unique_bytes = r.bytes;
    t.per_block_bytes =
        r.shared ? r.bytes : std::max<std::int64_t>(1, r.bytes / spec.grid);
    t.touches_per_byte = r.touches;
    t.shared_across_blocks = r.shared;
    t.base_address = addresses->Assign(r.name, r.bytes);
    spec.reads.push_back(std::move(t));
  }
  for (const NamedBytes& w : writes) {
    TensorTraffic t;
    t.tensor = w.name;
    t.unique_bytes = w.bytes;
    t.per_block_bytes = std::max<std::int64_t>(1, w.bytes / spec.grid);
    t.base_address = addresses->Assign(w.name, w.bytes);
    spec.writes.push_back(std::move(t));
  }
  return spec;
}

namespace {

// Detects the max/sub/exp/sum/div decomposition starting at op `i`; returns
// the index of the div op, or -1.
int MatchSoftmaxChain(const Graph& graph, int i) {
  const int n = static_cast<int>(graph.ops().size());
  if (i + 4 >= n) {
    return -1;
  }
  const Op& mx = graph.op(i);
  const Op& sub = graph.op(i + 1);
  const Op& exp = graph.op(i + 2);
  const Op& sum = graph.op(i + 3);
  const Op& div = graph.op(i + 4);
  bool ok = mx.kind == OpKind::kReduce && mx.attrs.reduce == ReduceKind::kMax &&
            sub.kind == OpKind::kBinary && sub.attrs.binary == BinaryKind::kSub &&
            sub.inputs.size() == 2 && sub.inputs[0] == mx.inputs[0] &&
            sub.inputs[1] == mx.output && exp.kind == OpKind::kUnary &&
            exp.attrs.unary == UnaryKind::kExp && exp.inputs[0] == sub.output &&
            sum.kind == OpKind::kReduce && sum.attrs.reduce == ReduceKind::kSum &&
            sum.inputs[0] == exp.output && div.kind == OpKind::kBinary &&
            div.attrs.binary == BinaryKind::kDiv && div.inputs[0] == exp.output &&
            div.inputs[1] == sum.output;
  return ok ? i + 4 : -1;
}

}  // namespace

std::vector<KernelSpec> PlanUnfused(const Graph& graph, AddressMap* addresses,
                                    double gemm_efficiency, bool fuse_softmax) {
  std::vector<KernelSpec> kernels;
  // Multiply-by-scalar-constant ops following a matmul are folded into the
  // GEMM's alpha (torch.baddbmm); their outputs alias the GEMM output.
  std::vector<bool> folded(graph.ops().size(), false);
  std::vector<TensorId> alias(graph.tensors().size(), kInvalidTensor);
  for (const Op& op : graph.ops()) {
    if (op.kind != OpKind::kBinary || op.attrs.binary != BinaryKind::kMul ||
        op.inputs.size() != 2) {
      continue;
    }
    TensorId value = op.inputs[0];
    TensorId scalar = op.inputs[1];
    if (graph.tensor(scalar).kind != TensorKind::kConstant) {
      continue;
    }
    OpId prod = graph.producer(value);
    if (prod >= 0 && graph.op(prod).kind == OpKind::kMatMul) {
      folded[static_cast<size_t>(op.id)] = true;
      alias[static_cast<size_t>(op.output)] = value;
    }
  }

  auto resolve = [&alias](TensorId id) {
    while (alias[static_cast<size_t>(id)] != kInvalidTensor) {
      id = alias[static_cast<size_t>(id)];
    }
    return id;
  };

  for (int op_index = 0; op_index < static_cast<int>(graph.ops().size()); ++op_index) {
    const Op& op = graph.op(op_index);
    const TensorInfo& out = graph.tensor(op.output);
    if (folded[static_cast<size_t>(op.id)]) {
      continue;
    }
    if (fuse_softmax) {
      int div_index = MatchSoftmaxChain(graph, op_index);
      if (div_index >= 0) {
        // torch.softmax: one kernel that reads the logits and writes the
        // probabilities (row statistics stay on chip).
        const TensorInfo& in = graph.tensor(resolve(op.inputs[0]));
        const TensorInfo& probs = graph.tensor(graph.op(div_index).output);
        std::vector<NamedBytes> reads{{in.name, in.bytes(), 1.0, false}};
        kernels.push_back(MakeMemoryBoundKernel("softmax", reads,
                                                {{probs.name, probs.bytes(), 1.0, false}},
                                                addresses, in.shape.volume() * 10));
        op_index = div_index;
        continue;
      }
    }
    if (op.kind == OpKind::kMatMul) {
      const TensorInfo& a = graph.tensor(resolve(op.inputs[0]));
      const TensorInfo& b = graph.tensor(resolve(op.inputs[1]));
      const Shape& os = out.shape;
      std::int64_t m = os.dim(os.rank() - 2);
      std::int64_t n = os.dim(os.rank() - 1);
      std::int64_t batch = os.volume() / (m * n);
      const Shape& as = a.shape;
      std::int64_t k = op.attrs.transpose_a ? as.dim(as.rank() - 2) : as.dim(as.rank() - 1);
      kernels.push_back(MakeGemmKernel(op.name, batch, m, n, k, DTypeSize(out.dtype), addresses,
                                       a.name, b.name, out.name, gemm_efficiency));
      continue;
    }
    // Memory-intensive op: stream inputs, write output through global memory.
    std::vector<NamedBytes> reads;
    for (TensorId in : op.inputs) {
      const TensorInfo& t = graph.tensor(resolve(in));
      if (t.kind == TensorKind::kConstant) {
        continue;
      }
      NamedBytes r;
      r.name = t.name;
      r.bytes = t.bytes();
      r.shared = IsSharedBroadcastOperand(t.shape, out.shape);
      reads.push_back(std::move(r));
    }
    std::vector<NamedBytes> writes;
    writes.push_back({out.name, out.bytes(), 1.0, false});
    std::int64_t flops = out.shape.volume();
    if (op.kind == OpKind::kReduce) {
      const TensorInfo& in = graph.tensor(op.inputs[0]);
      flops = in.shape.volume();
    }
    kernels.push_back(MakeMemoryBoundKernel(op.name, reads, writes, addresses, flops));
  }
  return kernels;
}

}  // namespace spacefusion
