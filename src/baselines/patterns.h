// Structural pattern detection over operator graphs.
//
// Library-backed baselines (TensorRT, Kernl, FlashAttention) dispatch on
// *recognized* computation patterns rather than scheduling arbitrary graphs;
// this module detects those patterns structurally (not by name) so the
// baseline planners behave like their real counterparts: great on matched
// patterns, generic elsewhere.
#ifndef SPACEFUSION_SRC_BASELINES_PATTERNS_H_
#define SPACEFUSION_SRC_BASELINES_PATTERNS_H_

#include <cstdint>

#include "src/graph/graph.h"

namespace spacefusion {

enum class GraphPattern {
  kMha,        // matmul .. softmax(max/sub/exp/sum/div) .. matmul
  kLayerNorm,  // mean/sub/square/mean/sqrt normalization chain
  kGemmChain,  // matmuls with element-wise epilogues (MLP / LSTM / FFN)
  kElementwise,  // MI ops only
  kGeneric,
};

const char* GraphPatternName(GraphPattern pattern);

GraphPattern DetectPattern(const Graph& graph);

// MHA geometry extracted from a detected attention graph.
struct MhaDims {
  std::int64_t batch_heads = 1;
  std::int64_t seq_q = 1;
  std::int64_t seq_kv = 1;
  std::int64_t head_dim = 1;
};

// Valid only when DetectPattern(graph) == kMha.
MhaDims ExtractMhaDims(const Graph& graph);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_BASELINES_PATTERNS_H_
