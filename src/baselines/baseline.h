// Baseline implementations the paper evaluates against (Sec. 6).
//
// Every baseline is a *planner*: it maps an operator graph to the kernel
// sequence its real counterpart would launch. What distinguishes baselines
// is exactly what the paper measures — which fusions each can express:
//   * PyTorch eager          — one kernel per operator
//   * cuBLAS                 — unfused, library GEMMs
//   * cuBLASLt               — GEMM + element-wise epilogue fusion
//   * PyTorch Op / Apex / Triton LayerNorm — hand-fused LN kernels
//   * FlashAttention (1, 2, Triton)        — hand-fused MHA kernels
//   * AStitch (BladeDISC)    — fuses memory-intensive ops only
//   * Welder (NNFusion)      — tile-graph fusion, no dependency transforms
//   * TensorRT / Kernl       — pattern libraries of hand-tuned kernels
#ifndef SPACEFUSION_SRC_BASELINES_BASELINE_H_
#define SPACEFUSION_SRC_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/kernel_library.h"
#include "src/graph/graph.h"
#include "src/sim/arch.h"

namespace spacefusion {

class Baseline {
 public:
  virtual ~Baseline() = default;

  virtual std::string name() const = 0;

  // Architecture/pattern support gaps of the real systems (e.g.
  // FlashAttention's CUDA kernels do not support Volta; NNFusion and
  // BladeDISC lack full Ampere/Hopper support in the paper's setup).
  virtual bool Supports(const Graph& graph, const GpuArch& arch) const { return true; }

  // Kernel sequence for one subprogram.
  virtual std::vector<KernelSpec> Plan(const Graph& graph, const GpuArch& arch,
                                       AddressMap* addresses) const = 0;
};

// --- Unfused / library baselines -----------------------------------------
std::unique_ptr<Baseline> MakePyTorchBaseline();
std::unique_ptr<Baseline> MakeCublasBaseline();
std::unique_ptr<Baseline> MakeCublasLtBaseline();

// --- Hand-fused LayerNorm kernels -----------------------------------------
std::unique_ptr<Baseline> MakeTorchOpLayerNorm();
std::unique_ptr<Baseline> MakeApexLayerNorm();
std::unique_ptr<Baseline> MakeTritonLayerNorm();

// --- Hand-fused attention kernels ------------------------------------------
std::unique_ptr<Baseline> MakeFlashAttention1();
std::unique_ptr<Baseline> MakeFlashAttention2();
std::unique_ptr<Baseline> MakeTritonFlashAttention();

// --- Compiler baselines -----------------------------------------------------
std::unique_ptr<Baseline> MakeAStitchBaseline();   // BladeDISC
std::unique_ptr<Baseline> MakeWelderBaseline();    // NNFusion
std::unique_ptr<Baseline> MakeTensorRtBaseline();
std::unique_ptr<Baseline> MakeKernlBaseline();

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_BASELINES_BASELINE_H_
