#include "src/baselines/baseline.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

class PyTorchBaseline : public Baseline {
 public:
  std::string name() const override { return "PyTorch"; }
  std::vector<KernelSpec> Plan(const Graph& graph, const GpuArch& arch,
                               AddressMap* addresses) const override {
    return PlanUnfused(graph, addresses, /*gemm_efficiency=*/0.78);
  }
};

class CublasBaseline : public Baseline {
 public:
  std::string name() const override { return "cuBLAS"; }
  std::vector<KernelSpec> Plan(const Graph& graph, const GpuArch& arch,
                               AddressMap* addresses) const override {
    return PlanUnfused(graph, addresses, /*gemm_efficiency=*/0.85);
  }
};

// cuBLASLt: each GEMM absorbs the single-consumer chain of element-wise ops
// that follows it (bias add, activation, residual) into its epilogue.
class CublasLtBaseline : public Baseline {
 public:
  std::string name() const override { return "cuBLASLt"; }

  std::vector<KernelSpec> Plan(const Graph& graph, const GpuArch& arch,
                               AddressMap* addresses) const override {
    std::vector<bool> absorbed(graph.ops().size(), false);

    // Mark epilogue ops: walk forward from each matmul while the chain is a
    // single-consumer element-wise op.
    std::vector<TensorId> gemm_final_output(graph.ops().size(), kInvalidTensor);
    std::vector<std::vector<TensorId>> gemm_extra_reads(graph.ops().size());
    for (const Op& op : graph.ops()) {
      if (op.kind != OpKind::kMatMul) {
        continue;
      }
      TensorId cursor = op.output;
      gemm_final_output[static_cast<size_t>(op.id)] = cursor;
      while (true) {
        const std::vector<OpId>& consumers = graph.consumers(cursor);
        if (consumers.size() != 1) {
          break;
        }
        const Op& next = graph.op(consumers[0]);
        if (next.kind != OpKind::kUnary && next.kind != OpKind::kBinary) {
          break;
        }
        // The epilogue operand must be available before the GEMM launches:
        // a kernel input (bias, residual) or an intermediate produced by an
        // *earlier* kernel (beta=1 accumulation — this is how cuBLASLt adds
        // the first GEMM's output inside the second GEMM of the LSTM cell).
        bool ok = true;
        for (TensorId in : next.inputs) {
          if (in == cursor) {
            continue;
          }
          const TensorInfo& t = graph.tensor(in);
          bool intermediate = t.kind == TensorKind::kIntermediate || t.kind == TensorKind::kOutput;
          if (intermediate && (graph.producer(in) < 0 || graph.producer(in) >= op.id ||
                               next.attrs.binary != BinaryKind::kAdd ||
                               next.kind != OpKind::kBinary)) {
            ok = false;
          } else if (t.kind != TensorKind::kConstant) {
            gemm_extra_reads[static_cast<size_t>(op.id)].push_back(in);
          }
        }
        if (!ok) {
          break;
        }
        absorbed[static_cast<size_t>(next.id)] = true;
        cursor = next.output;
        gemm_final_output[static_cast<size_t>(op.id)] = cursor;
      }
    }

    std::vector<KernelSpec> kernels;
    for (const Op& op : graph.ops()) {
      if (absorbed[static_cast<size_t>(op.id)]) {
        continue;
      }
      if (op.kind == OpKind::kMatMul) {
        const TensorInfo& a = graph.tensor(op.inputs[0]);
        const TensorInfo& b = graph.tensor(op.inputs[1]);
        const TensorInfo& out = graph.tensor(gemm_final_output[static_cast<size_t>(op.id)]);
        const Shape& os = graph.tensor(op.output).shape;
        std::int64_t m = os.dim(os.rank() - 2);
        std::int64_t n = os.dim(os.rank() - 1);
        std::int64_t batch = os.volume() / (m * n);
        const Shape& as = a.shape;
        std::int64_t k = op.attrs.transpose_a ? as.dim(as.rank() - 2) : as.dim(as.rank() - 1);
        KernelSpec spec = MakeGemmKernel(StrCat(op.name, "+epilogue"), batch, m, n, k,
                                         DTypeSize(out.dtype), addresses, a.name, b.name,
                                         out.name, /*efficiency=*/0.85);
        for (TensorId extra : gemm_extra_reads[static_cast<size_t>(op.id)]) {
          const TensorInfo& t = graph.tensor(extra);
          TensorTraffic r;
          r.tensor = t.name;
          r.unique_bytes = t.bytes();
          r.per_block_bytes = std::max<std::int64_t>(
              1, t.bytes() / std::max<std::int64_t>(1, spec.grid));
          r.shared_across_blocks = IsSharedBroadcastOperand(t.shape, os);
          r.base_address = addresses->Assign(t.name, r.unique_bytes);
          spec.reads.push_back(std::move(r));
        }
        kernels.push_back(std::move(spec));
        continue;
      }
      // Non-absorbed MI op: one memory-bound kernel.
      std::vector<NamedBytes> reads;
      for (TensorId in : op.inputs) {
        const TensorInfo& t = graph.tensor(in);
        if (t.kind == TensorKind::kConstant) {
          continue;
        }
        NamedBytes r;
        r.name = t.name;
        r.bytes = t.bytes();
        r.shared = IsSharedBroadcastOperand(t.shape, graph.tensor(op.output).shape);
        reads.push_back(std::move(r));
      }
      const TensorInfo& out = graph.tensor(op.output);
      kernels.push_back(MakeMemoryBoundKernel(op.name, reads, {{out.name, out.bytes(), 1.0, false}},
                                              addresses, out.shape.volume()));
    }
    return kernels;
  }
};

}  // namespace

std::unique_ptr<Baseline> MakePyTorchBaseline() { return std::make_unique<PyTorchBaseline>(); }
std::unique_ptr<Baseline> MakeCublasBaseline() { return std::make_unique<CublasBaseline>(); }
std::unique_ptr<Baseline> MakeCublasLtBaseline() { return std::make_unique<CublasLtBaseline>(); }

}  // namespace spacefusion
