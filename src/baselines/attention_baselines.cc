// Hand-fused attention baselines (paper Fig. 13): FlashAttention CUDA v1/v2
// and the Triton FlashAttention implementation.
//
// All three avoid materializing the seq_q x seq_kv probability matrix via
// online softmax. They differ in parallelization and tuning:
//   * FlashAttention 1 parallelizes over (batch x heads) only — long on
//     locality, short on occupancy at small batch;
//   * FlashAttention 2 additionally parallelizes the query dimension and
//     reaches higher MMA efficiency;
//   * the Triton version matches FA1's dataflow with hand-tuned block sizes.
// The CUDA kernels require SM80+ (no Volta support — the paper's Fig. 13
// notes the absent data points).
#include <cmath>

#include "src/baselines/baseline.h"
#include "src/baselines/patterns.h"
#include "src/support/math_util.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

struct FlashConfig {
  std::string name;
  bool parallel_seq_q = false;  // FA2-style extra parallelism
  double efficiency = 0.55;
  bool needs_sm80 = true;       // CUDA kernels: Ampere or newer
  std::int64_t q_tile = 128;
};

class FlashAttentionBaseline : public Baseline {
 public:
  explicit FlashAttentionBaseline(FlashConfig config) : config_(std::move(config)) {}

  std::string name() const override { return config_.name; }

  bool Supports(const Graph& graph, const GpuArch& arch) const override {
    if (DetectPattern(graph) != GraphPattern::kMha) {
      return false;
    }
    if (config_.needs_sm80 && arch.name == "Volta") {
      return false;
    }
    return true;
  }

  std::vector<KernelSpec> Plan(const Graph& graph, const GpuArch& arch,
                               AddressMap* addresses) const override {
    MhaDims d = ExtractMhaDims(graph);
    const std::int64_t eb = 2;  // fp16

    KernelSpec spec;
    spec.name = StrCat(config_.name, ".fused_mha");
    spec.grid = config_.parallel_seq_q ? d.batch_heads * CeilDiv(d.seq_q, config_.q_tile)
                                       : d.batch_heads;
    spec.threads_per_block = 256;
    spec.smem_per_block = 48 * 1024;
    spec.regs_per_block_bytes = 128 * 1024;
    spec.flops = 4 * d.batch_heads * d.seq_q * d.seq_kv * d.head_dim +
                 5 * d.batch_heads * d.seq_q * d.seq_kv;
    spec.compute_efficiency = config_.efficiency;
    spec.bandwidth_efficiency = 0.9;

    auto add_read = [&](const std::string& tname, std::int64_t bytes, std::int64_t per_block,
                        bool shared) {
      TensorTraffic r;
      r.tensor = tname;
      r.unique_bytes = bytes;
      r.per_block_bytes = per_block;
      r.shared_across_blocks = shared;
      r.base_address = addresses->Assign(tname, bytes);
      spec.reads.push_back(std::move(r));
    };

    std::int64_t q_bytes = d.batch_heads * d.seq_q * d.head_dim * eb;
    std::int64_t kv_bytes = d.batch_heads * d.seq_kv * d.head_dim * eb;
    std::int64_t q_per_block = config_.parallel_seq_q ? config_.q_tile * d.head_dim * eb
                                                      : d.seq_q * d.head_dim * eb;
    // K/V are streamed fully by every block that shares the head.
    std::int64_t kv_per_block = d.seq_kv * d.head_dim * eb;
    add_read(GraphInputName(graph, 0), q_bytes, q_per_block, false);
    add_read(GraphInputName(graph, 1), kv_bytes, kv_per_block, config_.parallel_seq_q);
    add_read(GraphInputName(graph, 2), kv_bytes, kv_per_block, config_.parallel_seq_q);

    TensorTraffic w;
    const TensorInfo& out = graph.tensor(graph.OutputIds().front());
    w.tensor = out.name;
    w.unique_bytes = out.bytes();
    w.per_block_bytes = std::max<std::int64_t>(1, out.bytes() / spec.grid);
    w.base_address = addresses->Assign(out.name, w.unique_bytes);
    spec.writes.push_back(std::move(w));

    // Row statistics (m, l) spilled to global memory by the v1 dataflow.
    if (!config_.parallel_seq_q) {
      TensorTraffic stats;
      stats.tensor = StrCat(graph.name(), ".softmax_stats");
      stats.unique_bytes = d.batch_heads * d.seq_q * 8;
      stats.per_block_bytes = std::max<std::int64_t>(1, stats.unique_bytes / spec.grid);
      stats.base_address = addresses->Assign(stats.tensor, stats.unique_bytes);
      spec.writes.push_back(std::move(stats));
    }
    return {spec};
  }

 private:
  static std::string GraphInputName(const Graph& graph, int index) {
    std::vector<TensorId> inputs = graph.InputIds();
    if (index < static_cast<int>(inputs.size())) {
      return graph.tensor(inputs[static_cast<size_t>(index)]).name;
    }
    return StrCat(graph.name(), ".in", index);
  }

  FlashConfig config_;
};

}  // namespace

std::unique_ptr<Baseline> MakeFlashAttention1() {
  FlashConfig c;
  c.name = "FlashAttention";
  c.parallel_seq_q = false;
  c.efficiency = 0.5;
  c.needs_sm80 = true;
  return std::make_unique<FlashAttentionBaseline>(std::move(c));
}

std::unique_ptr<Baseline> MakeFlashAttention2() {
  FlashConfig c;
  c.name = "FlashAttention 2";
  c.parallel_seq_q = true;
  c.efficiency = 0.7;
  c.needs_sm80 = true;
  return std::make_unique<FlashAttentionBaseline>(std::move(c));
}

std::unique_ptr<Baseline> MakeTritonFlashAttention() {
  FlashConfig c;
  c.name = "Triton FlashAttention";
  c.parallel_seq_q = true;
  c.efficiency = 0.52;
  c.needs_sm80 = false;
  return std::make_unique<FlashAttentionBaseline>(std::move(c));
}

}  // namespace spacefusion
