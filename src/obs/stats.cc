#include "src/obs/stats.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/support/json.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

std::string FormatNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound(StrCat("cannot read ", path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Series name for one report. Request ids are deterministic across
// identical runs, so keying by them keeps two runs of the same workload
// diffable; the model name is kept as a prefix for readability.
std::string ReportKeyBase(const CompileReport& report) {
  return report.model.empty() ? report.request_id
                              : StrCat(report.model, "/", report.request_id);
}

void AddReportSeries(const CompileReport& report, std::map<std::string, double>* series) {
  const std::string base = ReportKeyBase(report);
  (*series)[StrCat(base, "/wall/compile_ms")] = report.wall_ms;
  (*series)[StrCat(base, "/tuning_seconds")] = report.tuning_seconds;
  (*series)[StrCat(base, "/configs_enumerated")] = static_cast<double>(report.configs_enumerated);
  (*series)[StrCat(base, "/configs_screened")] = static_cast<double>(report.configs_screened);
  (*series)[StrCat(base, "/configs_admitted")] = static_cast<double>(report.configs_admitted);
  (*series)[StrCat(base, "/modeled_time_us")] = report.modeled_time_us;
  // Only the *built* count and the (wall) build time: jit_kernels_cached
  // grows as caches warm, so diffing it cold-vs-warm would flag the warm
  // run's extra hits as a "regression".
  (*series)[StrCat(base, "/jit_kernels_built")] = static_cast<double>(report.jit_kernels_built);
  (*series)[StrCat(base, "/wall/jit_build_ms")] = report.jit_build_ms;
  // Shape-bucketed requests: deterministic routing/transfer counters (a
  // cold-vs-warm diff catching a bucket that re-tuned is the point), only
  // present when the report was bucket-routed.
  if (!report.bucket.empty()) {
    (*series)[StrCat(base, "/bucket/hits")] = report.bucket_hit ? 1.0 : 0.0;
    (*series)[StrCat(base, "/bucket/misses")] = report.bucket_hit ? 0.0 : 1.0;
    (*series)[StrCat(base, "/bucket/transfer_seeded")] =
        static_cast<double>(report.transfer_seeded);
  }
  // Host wall-clock calibration ratio (fig_wallclock); wall-gated like
  // every other measured quantity.
  if (report.measured_speedup != 0.0) {
    (*series)[StrCat(base, "/wall/measured_speedup")] = report.measured_speedup;
  }
  for (const PassReportEntry& pass : report.passes) {
    (*series)[StrCat(base, "/wall/pass/", pass.pass)] = pass.wall_ms;
  }
}

// One BENCH_exec.json entry (a workload or the jit_cache block): every
// numeric field becomes a series. Microsecond/millisecond fields and the
// speedup ratios derived from them are host wall-clock, so they go under
// "wall/" and only an --include-wall diff (the generously thresholded
// jit-exec gate) compares them.
void AddExecSeries(const std::string& prefix, const JsonValue& entry,
                   std::map<std::string, double>* series) {
  for (const auto& [field, value] : entry.members()) {
    if (!value.is_number()) {
      continue;
    }
    const bool wall =
        (field.size() > 3 && (field.compare(field.size() - 3, 3, "_us") == 0 ||
                              field.compare(field.size() - 3, 3, "_ms") == 0)) ||
        field.find("speedup") != std::string::npos;
    (*series)[wall ? StrCat(prefix, "/wall/", field) : StrCat(prefix, "/", field)] =
        value.number();
  }
}

}  // namespace

bool IsWallClockKey(const std::string& key) {
  size_t pos = 0;
  while (pos <= key.size()) {
    size_t end = key.find('/', pos);
    if (end == std::string::npos) {
      end = key.size();
    }
    if (key.compare(pos, end - pos, "wall") == 0) {
      return true;
    }
    pos = end + 1;
  }
  return false;
}

StatusOr<RunStats> LoadReportDirStats(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return NotFound(StrCat("cannot list report directory ", dir, ": ", ec.message()));
  }
  std::vector<std::string> paths;
  for (const std::filesystem::directory_entry& entry : it) {
    std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.size() > 12 &&
        name.compare(name.size() - 12, 12, ".report.json") == 0) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());  // directory order is unspecified

  RunStats run;
  run.source = dir;
  run.format = "report_dir";
  for (const std::string& path : paths) {
    SF_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
    SF_ASSIGN_OR_RETURN(CompileReport report, CompileReport::FromJson(text));
    AddReportSeries(report, &run.series);
    run.reports.push_back(std::move(report));
  }
  return run;
}

StatusOr<RunStats> LoadCompileJsonStats(const std::string& path) {
  SF_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  SF_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(text));
  const JsonValue* models = doc.Get("models");
  if (models == nullptr || !models->is_array()) {
    return InvalidArgument(StrCat(path, ": not an sf-compile --json document"));
  }
  RunStats run;
  run.source = path;
  run.format = "compile_json";
  for (const JsonValue& model : models->items()) {
    std::string name = model.GetString("model", "unnamed");
    if (model.GetString("status") != "OK") {
      run.series[StrCat(name, "/failed")] = 1.0;
      continue;
    }
    run.series[StrCat(name, "/wall/compile_ms")] = model.GetNumber("wall_ms");
    run.series[StrCat(name, "/configs_screened")] = model.GetNumber("configs_screened");
    run.series[StrCat(name, "/configs_admitted")] = model.GetNumber("configs_tried");
    run.series[StrCat(name, "/modeled_time_us")] = model.GetNumber("estimate_us");
    if (const JsonValue* compile = model.Get("compile");
        compile != nullptr && compile->is_object()) {
      run.series[StrCat(name, "/modeled_compile_s")] = compile->GetNumber("total_s");
      run.series[StrCat(name, "/tuning_seconds")] = compile->GetNumber("tuning_s");
    }
    if (const JsonValue* passes = model.Get("passes"); passes != nullptr && passes->is_object()) {
      for (const auto& [pass, value] : passes->members()) {
        run.series[StrCat(name, "/wall/pass/", pass)] = value.number();
      }
    }
  }
  return run;
}

StatusOr<RunStats> LoadBenchJsonStats(const std::string& path) {
  SF_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  SF_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(text));
  const JsonValue* models = doc.Get("models");
  if (models == nullptr || !models->is_object()) {
    return InvalidArgument(StrCat(path, ": not a BENCH_compile.json document"));
  }
  RunStats run;
  run.source = path;
  run.format = "bench_json";
  for (const auto& [name, model] : models->members()) {
    for (const char* mode : {"screened", "exhaustive"}) {
      const JsonValue* entry = model.Get(mode);
      if (entry == nullptr || !entry->is_object()) {
        continue;
      }
      run.series[StrCat(name, "/", mode, "/modeled_compile_s")] =
          entry->GetNumber("modeled_compile_s");
      run.series[StrCat(name, "/", mode, "/configs_screened")] =
          entry->GetNumber("configs_screened");
      run.series[StrCat(name, "/", mode, "/configs_evaluated")] =
          entry->GetNumber("configs_evaluated");
      run.series[StrCat(name, "/", mode, "/wall/compile_ms")] = entry->GetNumber("compile_ms");
    }
  }
  return run;
}

StatusOr<RunStats> LoadExecJsonStats(const std::string& path) {
  SF_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  SF_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(text));
  const JsonValue* workloads = doc.Get("workloads");
  if (workloads == nullptr || !workloads->is_object()) {
    return InvalidArgument(StrCat(path, ": not a BENCH_exec.json document"));
  }
  RunStats run;
  run.source = path;
  run.format = "exec_json";
  for (const auto& [name, entry] : workloads->members()) {
    if (entry.is_object()) {
      AddExecSeries(name, entry, &run.series);
    }
  }
  if (const JsonValue* cache = doc.Get("jit_cache"); cache != nullptr && cache->is_object()) {
    AddExecSeries("jit_cache", *cache, &run.series);
  }
  return run;
}

StatusOr<RunStats> LoadRunStats(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return LoadReportDirStats(path);
  }
  SF_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  SF_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(text));
  if (doc.Get("workloads") != nullptr) {
    return LoadExecJsonStats(path);
  }
  if (const JsonValue* models = doc.Get("models"); models != nullptr) {
    return models->is_array() ? LoadCompileJsonStats(path) : LoadBenchJsonStats(path);
  }
  if (doc.Get("request_id") != nullptr) {
    SF_ASSIGN_OR_RETURN(CompileReport report, CompileReport::FromJson(text));
    RunStats run;
    run.source = path;
    run.format = "report";
    AddReportSeries(report, &run.series);
    run.reports.push_back(std::move(report));
    return run;
  }
  return InvalidArgument(
      StrCat(path, ": unrecognized document (expected a report directory, a CompileReport, "
                   "sf-compile --json output, or BENCH_compile.json)"));
}

DiffResult DiffRuns(const RunStats& base, const RunStats& current, const DiffOptions& options) {
  DiffResult result;
  for (const auto& [key, base_value] : base.series) {
    if (!options.include_wall && IsWallClockKey(key)) {
      continue;
    }
    auto it = current.series.find(key);
    if (it == current.series.end()) {
      result.only_base.push_back(key);
      continue;
    }
    DiffEntry entry;
    entry.key = key;
    entry.base = base_value;
    entry.current = it->second;
    entry.delta_pct = base_value != 0.0 ? 100.0 * (entry.current - base_value) / base_value : 0.0;
    entry.regression = entry.current > base_value * (1.0 + options.threshold) &&
                       entry.current - base_value > options.min_abs_delta;
    if (entry.regression) {
      ++result.regressions;
    }
    result.entries.push_back(std::move(entry));
  }
  for (const auto& [key, value] : current.series) {
    if (!options.include_wall && IsWallClockKey(key)) {
      continue;
    }
    if (base.series.find(key) == base.series.end()) {
      result.only_current.push_back(key);
    }
  }
  return result;
}

std::string RenderSummary(const RunStats& run, int top_n) {
  std::string out = StrCat("run: ", run.source, " (", run.format, ")\n");

  if (!run.reports.empty()) {
    int cold = 0;
    int hits = 0;
    int errors = 0;
    int collisions = 0;
    int bucketed = 0;
    int bucket_hits = 0;
    long long transfer_seeded = 0;
    for (const CompileReport& report : run.reports) {
      if (report.outcome == "cold") {
        ++cold;
      } else if (report.outcome == "cache_hit") {
        ++hits;
      } else if (report.outcome == "error") {
        ++errors;
      }
      if (report.cache_collision) {
        ++collisions;
      }
      if (!report.bucket.empty()) {
        ++bucketed;
        if (report.bucket_hit) {
          ++bucket_hits;
        }
        transfer_seeded += report.transfer_seeded;
      }
    }
    out += StrCat("reports: ", run.reports.size(), " (", cold, " cold, ", hits, " cache hit(s), ",
                  errors, " error(s), ", collisions, " collision(s))\n");
    if (bucketed > 0) {
      out += StrCat("shape buckets: ", bucketed, " bucketed report(s), ", bucket_hits,
                    " bucket hit(s), ", transfer_seeded, " transfer-seeded config(s)\n");
    }
    for (const CompileReport& report : run.reports) {
      if (report.outcome == "error") {
        out += StrCat("  failed ", report.request_id,
                      report.model.empty() ? "" : StrCat(" (", report.model, ")"), ": ",
                      report.status_message, "\n");
      }
    }
  }

  // Slowest models by end-to-end wall, slowest passes by summed wall. The
  // label is everything before the wall suffix — "Bert/req-000002" for a
  // report key, "Bert/screened" for a bench key — so per-request entries
  // stay distinguishable.
  constexpr const char* kWallSuffix = "/wall/compile_ms";
  const size_t suffix_len = std::char_traits<char>::length(kWallSuffix);
  std::vector<std::pair<std::string, double>> models;
  std::map<std::string, double> pass_totals;
  for (const auto& [key, value] : run.series) {
    if (key.size() > suffix_len &&
        key.compare(key.size() - suffix_len, suffix_len, kWallSuffix) == 0) {
      models.emplace_back(key.substr(0, key.size() - suffix_len), value);
    }
    size_t pass_pos = key.rfind("/pass/");
    if (pass_pos != std::string::npos) {
      pass_totals[key.substr(pass_pos + 6)] += value;
    }
  }
  std::sort(models.begin(), models.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (!models.empty()) {
    out += StrCat("slowest models (wall ms):\n");
    for (size_t i = 0; i < models.size() && i < static_cast<size_t>(top_n); ++i) {
      out += StrCat("  ", models[i].first, "  ", FormatNumber(models[i].second), "\n");
    }
  }
  std::vector<std::pair<std::string, double>> passes(pass_totals.begin(), pass_totals.end());
  std::sort(passes.begin(), passes.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (!passes.empty()) {
    out += "slowest passes (summed wall ms):\n";
    for (size_t i = 0; i < passes.size() && i < static_cast<size_t>(top_n); ++i) {
      out += StrCat("  ", passes[i].first, "  ", FormatNumber(passes[i].second), "\n");
    }
  }

  // Exec benches carry no CompileReports or pass keys; summarize the
  // slowest execution times and the jit cache hit rate instead.
  if (run.format == "exec_json") {
    std::vector<std::pair<std::string, double>> walls;
    for (const auto& [key, value] : run.series) {
      if (key.size() > 3 && key.compare(key.size() - 3, 3, "_us") == 0) {
        walls.emplace_back(key, value);
      }
    }
    std::sort(walls.begin(), walls.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (!walls.empty()) {
      out += "slowest executions (wall us):\n";
      for (size_t i = 0; i < walls.size() && i < static_cast<size_t>(top_n); ++i) {
        out += StrCat("  ", walls[i].first, "  ", FormatNumber(walls[i].second), "\n");
      }
    }
    auto hit_rate = run.series.find("jit_cache/hit_rate");
    if (hit_rate != run.series.end()) {
      out += StrCat("jit cache hit rate: ", FormatNumber(hit_rate->second), "\n");
    }
  }
  return out;
}

std::string RenderDiff(const DiffResult& diff, const DiffOptions& options) {
  std::string out;
  char pct[32];
  std::snprintf(pct, sizeof(pct), "%.0f%%", options.threshold * 100.0);
  for (const DiffEntry& entry : diff.entries) {
    if (!entry.regression) {
      continue;
    }
    out += StrCat("REGRESSION ", entry.key, ": ", FormatNumber(entry.base), " -> ",
                  FormatNumber(entry.current), " (+", FormatNumber(entry.delta_pct), "%)\n");
  }
  int improved = 0;
  int unchanged = 0;
  for (const DiffEntry& entry : diff.entries) {
    if (entry.regression) {
      continue;
    }
    if (entry.current < entry.base) {
      ++improved;
    } else {
      ++unchanged;
    }
  }
  out += StrCat(diff.regressions, " regression(s) over ", pct, " threshold, ", improved,
                " improved, ", unchanged, " unchanged-or-within-threshold (",
                diff.entries.size(), " compared key(s))\n");
  if (!diff.only_base.empty()) {
    out += StrCat("  ", diff.only_base.size(), " key(s) only in baseline, e.g. ",
                  diff.only_base.front(), "\n");
  }
  if (!diff.only_current.empty()) {
    out += StrCat("  ", diff.only_current.size(), " key(s) only in current, e.g. ",
                  diff.only_current.front(), "\n");
  }
  return out;
}

}  // namespace spacefusion
