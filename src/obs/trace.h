// Compiler-wide scoped-span tracing with Chrome trace-event export.
//
// Every phase of the compile-and-estimate path is wrapped in an
// SF_TRACE_SPAN("phase.name") RAII span. Spans nest naturally (they are
// serialized as complete "X" events with start + duration, which
// chrome://tracing and Perfetto stack by timestamp) and may carry typed
// key/value args. Capture is off by default and the disabled path is one
// relaxed atomic load plus a thread-local read, so instrumentation can stay
// in hot code.
//
// Two ways to capture:
//   * SPACEFUSION_TRACE=<path> in the environment: a process-wide session
//     starts before main() and the JSON is written at exit.
//   * TraceSession session("out.json"): scoped capture; the file is written
//     when the session stops (or is destroyed). With an empty path the
//     events stay in memory for inspection (tests, custom sinks).
//
// Independent of full tracing, a PhaseAccumulator collects per-span-name
// wall-clock totals on the current thread; the compiler derives its
// CompileTimeBreakdown (Table 4/5) from these span totals instead of
// hand-threaded stopwatches.
#ifndef SPACEFUSION_SRC_OBS_TRACE_H_
#define SPACEFUSION_SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/support/status.h"
#include "src/support/thread_annotations.h"

namespace spacefusion {

// One span argument, with the value already rendered as a JSON literal
// (numbers verbatim, strings escaped and quoted).
struct TraceArg {
  std::string key;
  std::string json_value;
};

// One completed span. Timestamps are microseconds relative to the start of
// the capture session.
struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  std::vector<TraceArg> args;
};

class PhaseAccumulator;

namespace obs_internal {

extern std::atomic<bool> g_trace_active;

// True when a span started now would be recorded anywhere (trace session
// active, or a PhaseAccumulator open on this thread).
bool SpanCaptureActive();

void RecordSpan(const char* name, const char* cat,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end, std::vector<TraceArg>&& args);

// Small dense id for the calling thread (Chrome traces want integer tids).
int CurrentThreadId();

// Top of the calling thread's PhaseAccumulator stack (nullptr when none is
// open). Capture before handing work to a thread pool, then install on the
// worker with ScopedPhaseHandoff so spans completed there still land in the
// caller's CompileTimeBreakdown totals.
PhaseAccumulator* CurrentPhaseAccumulator();

}  // namespace obs_internal

// Installs a (possibly foreign-thread) accumulator stack as the current
// thread's for the lifetime of this object. Used inside thread-pool task
// bodies; accumulator updates are mutex-guarded, so several workers may
// share one handed-off stack. A nullptr stack is a no-op install.
class ScopedPhaseHandoff {
 public:
  explicit ScopedPhaseHandoff(PhaseAccumulator* stack_top);
  ~ScopedPhaseHandoff();

  ScopedPhaseHandoff(const ScopedPhaseHandoff&) = delete;
  ScopedPhaseHandoff& operator=(const ScopedPhaseHandoff&) = delete;

 private:
  PhaseAccumulator* saved_;
};

// True while a trace session (API or SPACEFUSION_TRACE) is capturing.
inline bool TracingEnabled() {
  return obs_internal::g_trace_active.load(std::memory_order_relaxed);
}

// RAII span. Construct on the stack (normally via SF_TRACE_SPAN); the span
// covers the enclosing scope. Args attached while inactive are dropped.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "compile") {
    if (obs_internal::SpanCaptureActive()) {
      active_ = true;
      name_ = name;
      cat_ = cat;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedSpan() {
    if (active_) {
      obs_internal::RecordSpan(name_, cat_, start_, std::chrono::steady_clock::now(),
                               std::move(args_));
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ScopedSpan& Arg(const char* key, std::int64_t value);
  ScopedSpan& Arg(const char* key, int value) { return Arg(key, static_cast<std::int64_t>(value)); }
  ScopedSpan& Arg(const char* key, double value);
  ScopedSpan& Arg(const char* key, const std::string& value);
  ScopedSpan& Arg(const char* key, const char* value) { return Arg(key, std::string(value)); }

  bool active() const { return active_; }

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  std::vector<TraceArg> args_;
};

#define SF_OBS_CONCAT_INNER(a, b) a##b
#define SF_OBS_CONCAT(a, b) SF_OBS_CONCAT_INNER(a, b)

// Anonymous scoped span covering the rest of the enclosing scope:
//   SF_TRACE_SPAN("tuner.measure");
//   SF_TRACE_SPAN("compiler.compile", "compile");  // explicit category
#define SF_TRACE_SPAN(...) \
  ::spacefusion::ScopedSpan SF_OBS_CONCAT(sf_trace_span_, __LINE__)(__VA_ARGS__)

// Scoped capture session. Only one session (API or env) can be active at a
// time; constructing a second one aborts. Stop() (or destruction) ends the
// capture, writes Chrome trace JSON to `path` when non-empty, and makes the
// collected events available via events()/ToJson().
class TraceSession {
 public:
  explicit TraceSession(std::string path = "");
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Idempotent. Returns the status of the file write (Ok for in-memory
  // sessions or on success).
  Status Stop();

  // Valid after Stop(); spans are in completion order.
  const std::vector<TraceEvent>& events() const { return events_; }
  std::string ToJson() const;

 private:
  std::string path_;
  bool stopped_ = false;
  std::vector<TraceEvent> events_;
};

// Serializes completed spans as Chrome trace-event JSON (the
// {"traceEvents": [...]} object form; load in chrome://tracing or
// https://ui.perfetto.dev).
std::string TraceEventsToJson(const std::vector<TraceEvent>& events);

// Starts the process-wide session from SPACEFUSION_TRACE if the variable is
// set, non-empty, and no session is active. Called from a static
// initializer; exposed (with FlushEnvTrace) so tests can drive the env
// activation path deterministically. Returns true if a capture started.
bool StartTraceFromEnv();

// Stops the env-activated session (if any) and writes its JSON file.
// Returns the write status; Ok when no env session was active.
Status FlushEnvTrace();

// Collects per-span-name wall-clock totals for spans completed on this
// thread while the accumulator is open. Accumulators nest (each sees every
// span), and they make spans record even with tracing disabled — they are
// the measurement substrate for CompileTimeBreakdown. Updates are
// mutex-guarded so a stack handed to pool workers (ScopedPhaseHandoff) may
// be fed from several threads at once; the totals then sum CPU time across
// workers, like the serial compile summed it on one thread.
class PhaseAccumulator {
 public:
  PhaseAccumulator();
  ~PhaseAccumulator();

  PhaseAccumulator(const PhaseAccumulator&) = delete;
  PhaseAccumulator& operator=(const PhaseAccumulator&) = delete;

  // Total duration of all completed spans named exactly `name`, in ms.
  double TotalMs(const std::string& name) const;
  // Number of completed spans named `name`.
  std::int64_t SpanCount(const std::string& name) const;
  // Snapshot of every span-name total, in ms. Lets a caller that outlives
  // the accumulator (e.g. the PassManager) keep the whole breakdown.
  std::map<std::string, double> AllTotalsMs() const;

 private:
  friend void obs_internal::RecordSpan(const char*, const char*,
                                       std::chrono::steady_clock::time_point,
                                       std::chrono::steady_clock::time_point,
                                       std::vector<TraceArg>&&);

  struct PhaseTotal {
    double total_ms = 0.0;
    std::int64_t count = 0;
  };
  mutable Mutex mu_;
  std::map<std::string, PhaseTotal> totals_ SF_GUARDED_BY(mu_);
  PhaseAccumulator* parent_ = nullptr;  // next accumulator down the stack
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_OBS_TRACE_H_
