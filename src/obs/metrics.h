// Process-wide metrics registry: named counters, gauges, and histograms.
//
// The compiler, scheduler, tuner, simulators, and executor increment these
// as they run (configs tried / early-quit, partition rounds, compile-cache
// hits, graph splits, simulated DRAM bytes, cache hit rates, kernel
// launches, ...). A MetricsSnapshot freezes every value and serializes to
// JSON — CompiledModel carries one, and the bench harness writes one next
// to each table/figure's timings.
//
// All types are thread-safe. Metric objects are never destroyed or
// re-created once registered (Reset() zeroes values in place), so hot paths
// may cache references:
//
//   SF_COUNTER_ADD("tuner.configs_tried", n);
//   SF_GAUGE_SET("sim.l2_hit_rate", rate);
//   SF_HISTOGRAM_OBSERVE("search.configs_per_kernel", configs.size());
#ifndef SPACEFUSION_SRC_OBS_METRICS_H_
#define SPACEFUSION_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spacefusion {

class Counter {
 public:
  void Increment(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramStats {
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  // bucket_counts[i] counts observations with value <= 4^i; the final
  // bucket is the +Inf overflow.
  std::vector<std::int64_t> bucket_counts;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

// Exponential-bucket histogram (upper bounds 1, 4, 16, ..., 4^15, +Inf) —
// wide enough for microsecond timings and DRAM byte counts alike.
class Histogram {
 public:
  static constexpr int kNumBuckets = 17;  // 16 finite bounds + overflow

  void Observe(double value);
  HistogramStats stats() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  HistogramStats stats_;
};

// A frozen copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  // Missing names read as zero, so callers need no existence checks.
  std::int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  // The process-wide registry every SF_*-macro records into.
  static MetricsRegistry& Global();

  // Finds or creates; the returned reference stays valid for the registry's
  // lifetime. A name registers at most one kind (counter xor gauge xor
  // histogram); reusing it as another kind aborts.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // Zeroes every metric in place (bench / test isolation). References
  // handed out earlier remain valid.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void CheckKind(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace spacefusion

// Hot-path helpers: the registry lookup happens once per call site.
#define SF_COUNTER_ADD(name, delta)                                    \
  do {                                                                 \
    static ::spacefusion::Counter& sf_counter_ref_ =                   \
        ::spacefusion::MetricsRegistry::Global().GetCounter(name);     \
    sf_counter_ref_.Increment(delta);                                  \
  } while (0)

#define SF_GAUGE_SET(name, value)                                      \
  do {                                                                 \
    static ::spacefusion::Gauge& sf_gauge_ref_ =                       \
        ::spacefusion::MetricsRegistry::Global().GetGauge(name);       \
    sf_gauge_ref_.Set(value);                                          \
  } while (0)

#define SF_HISTOGRAM_OBSERVE(name, value)                              \
  do {                                                                 \
    static ::spacefusion::Histogram& sf_histogram_ref_ =               \
        ::spacefusion::MetricsRegistry::Global().GetHistogram(name);   \
    sf_histogram_ref_.Observe(value);                                  \
  } while (0)

#endif  // SPACEFUSION_SRC_OBS_METRICS_H_
