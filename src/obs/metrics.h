// Process-wide metrics registry: named counters, gauges, and histograms.
//
// The compiler, scheduler, tuner, simulators, and executor increment these
// as they run (configs tried / early-quit, partition rounds, compile-cache
// hits, graph splits, simulated DRAM bytes, cache hit rates, kernel
// launches, ...). A MetricsSnapshot freezes every value and serializes to
// JSON — CompiledModel carries one, and the bench harness writes one next
// to each table/figure's timings.
//
// All types are thread-safe. Metric objects are never destroyed or
// re-created once registered (Reset() zeroes values in place), so hot paths
// may cache references:
//
//   SF_COUNTER_ADD("tuner.configs_tried", n);
//   SF_GAUGE_SET("sim.l2_hit_rate", rate);
//   SF_HISTOGRAM_OBSERVE("search.configs_per_kernel", configs.size());
#ifndef SPACEFUSION_SRC_OBS_METRICS_H_
#define SPACEFUSION_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/support/thread_annotations.h"

namespace spacefusion {

class Counter {
 public:
  void Increment(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramStats {
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  // bucket_counts[i] counts observations with value <= 4^i; the final
  // bucket is the +Inf overflow.
  std::vector<std::int64_t> bucket_counts;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  // Quantile estimate from the bucket counts: the target rank's bucket is
  // found by cumulative count and the value interpolated linearly between
  // the bucket bounds, clamped to the observed [min, max]. Exact for empty
  // (0) and single-sample histograms; q is clamped to [0, 1].
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
};

// Exponential-bucket histogram (upper bounds 1, 4, 16, ..., 4^15, +Inf) —
// wide enough for microsecond timings and DRAM byte counts alike.
// Non-finite observations (NaN, ±Inf) are rejected: they would poison sum /
// min / max and have no bucket.
class Histogram {
 public:
  static constexpr int kNumBuckets = 17;  // 16 finite bounds + overflow

  void Observe(double value);
  HistogramStats stats() const;
  void Reset();

 private:
  mutable Mutex mu_;
  HistogramStats stats_ SF_GUARDED_BY(mu_);
};

// A frozen copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  // Missing names read as zero, so callers need no existence checks.
  std::int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  std::string ToJson() const;
  // Human-readable rendering (one metric per line) for CLI --metrics flags.
  std::string ToText() const;
};

// Renders a snapshot as OpenMetrics / Prometheus text exposition: metric
// names are sanitized to [a-zA-Z0-9_:] ("engine.cache.hits" becomes family
// "engine_cache_hits" with a "_total" counter sample), histograms expose
// cumulative le="" buckets plus _sum/_count, and a label block embedded in
// the metric name (see LabeledMetricName) is emitted verbatim on the
// samples. The document always ends with "# EOF".
std::string RenderOpenMetrics(const MetricsSnapshot& snapshot);

// Builds a labeled metric name: LabeledMetricName("engine.cache.hits",
// "request_id", "req-000001") == R"(engine.cache.hits{request_id="req-000001"})".
// The registry treats the result as an independent metric (a time series in
// Prometheus terms); RenderOpenMetrics groups it under the base family.
// Label values are escaped; keep cardinality bounded — label per-request
// metrics only behind an explicit opt-in.
std::string LabeledMetricName(const std::string& base, const std::string& label_key,
                              const std::string& label_value);

class MetricsRegistry {
 public:
  // The process-wide registry every SF_*-macro records into.
  static MetricsRegistry& Global();

  // Finds or creates; the returned reference stays valid for the registry's
  // lifetime. A name registers at most one kind (counter xor gauge xor
  // histogram); reusing it as another kind aborts.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  // Snapshot rendered as OpenMetrics text (scrape endpoint payload).
  std::string RenderOpenMetrics() const { return ::spacefusion::RenderOpenMetrics(Snapshot()); }

  // Zeroes every metric in place (bench / test isolation). References
  // handed out earlier remain valid. Excluded against in-flight compiles:
  // Reset waits for every open ObsCompileLock, so a concurrent
  // CompilerEngine request is never half-zeroed.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void CheckKind(const std::string& name, Kind kind) SF_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Kind> kinds_ SF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Counter>> counters_ SF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ SF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ SF_GUARDED_BY(mu_);
};

namespace obs_internal {

// Reader/writer lock serializing whole-subsystem observability mutations
// (MetricsRegistry::Reset, TraceSession start/stop) against in-flight
// compiles. Compiles take the shared side via ObsCompileLock; the mutators
// take the exclusive side internally. Leaked, like the registries, so it is
// usable during static destruction.
SharedMutex& ObsStateMutex();

}  // namespace obs_internal

// Held (shared) by CompilerEngine for the duration of one uncached compile:
// a concurrent MetricsRegistry::Reset() or TraceSession start/stop blocks
// until the compile finishes instead of tearing its metrics/spans in half.
// Not recursive — acquire once per compile request, never nested. Opaque to
// thread-safety analysis: no data is SF_GUARDED_BY the obs mutex (it orders
// whole-subsystem mutations, not field access), so the shared hold is not a
// capability any caller needs to see.
class ObsCompileLock {
 public:
  ObsCompileLock() SF_NO_THREAD_SAFETY_ANALYSIS { obs_internal::ObsStateMutex().lock_shared(); }
  ~ObsCompileLock() SF_NO_THREAD_SAFETY_ANALYSIS { obs_internal::ObsStateMutex().unlock_shared(); }

  ObsCompileLock(const ObsCompileLock&) = delete;
  ObsCompileLock& operator=(const ObsCompileLock&) = delete;
};

}  // namespace spacefusion

// Hot-path helpers: the registry lookup happens once per call site.
#define SF_COUNTER_ADD(name, delta)                                    \
  do {                                                                 \
    static ::spacefusion::Counter& sf_counter_ref_ =                   \
        ::spacefusion::MetricsRegistry::Global().GetCounter(name);     \
    sf_counter_ref_.Increment(delta);                                  \
  } while (0)

#define SF_GAUGE_SET(name, value)                                      \
  do {                                                                 \
    static ::spacefusion::Gauge& sf_gauge_ref_ =                       \
        ::spacefusion::MetricsRegistry::Global().GetGauge(name);       \
    sf_gauge_ref_.Set(value);                                          \
  } while (0)

#define SF_HISTOGRAM_OBSERVE(name, value)                              \
  do {                                                                 \
    static ::spacefusion::Histogram& sf_histogram_ref_ =               \
        ::spacefusion::MetricsRegistry::Global().GetHistogram(name);   \
    sf_histogram_ref_.Observe(value);                                  \
  } while (0)

#endif  // SPACEFUSION_SRC_OBS_METRICS_H_
