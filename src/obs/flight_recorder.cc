#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

std::string FlightEvent::ToString() const {
  char header[64];
  std::snprintf(header, sizeof(header), "#%06lld +%.3fms", static_cast<long long>(seq),
                elapsed_ms);
  std::string out = header;
  if (!request_id.empty()) {
    out += StrCat(" [", request_id, "]");
  }
  out += StrCat(" ", category, ": ", message);
  return out;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)), epoch_(std::chrono::steady_clock::now()) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked: usable at exit
  return *recorder;
}

void FlightRecorder::Record(std::string request_id, std::string category, std::string message) {
  FlightEvent event;
  event.request_id = std::move(request_id);
  event.category = std::move(category);
  event.message = std::move(message);

  MutexLock lock(mu_);
  // Timestamp under the lock, where the seq is assigned: stamping it before
  // acquisition let two racing Record calls commit with seq order inverted
  // relative to elapsed_ms order, so a rendered log could appear to travel
  // back in time. Inside the critical section both are assigned atomically,
  // making elapsed_ms non-decreasing in seq.
  event.elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - epoch_)
          .count();
  event.seq = next_seq_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[static_cast<size_t>(next_seq_) % capacity_] = std::move(event);
    ++base_seq_;
  }
  ++next_seq_;
}

std::vector<FlightEvent> FlightRecorder::SnapshotLocked() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  for (std::int64_t seq = base_seq_; seq < next_seq_; ++seq) {
    out.push_back(ring_[static_cast<size_t>(seq) % capacity_]);
  }
  return out;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  MutexLock lock(mu_);
  return SnapshotLocked();
}

std::int64_t FlightRecorder::dropped() const {
  MutexLock lock(mu_);
  return base_seq_;
}

void FlightRecorder::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_seq_ = 0;
  base_seq_ = 0;
}

std::string FlightRecorder::Render() const {
  // One critical section: snapshotting and reading the drop count under
  // separate acquisitions let a concurrent Record slip in between, so the
  // header could claim a drop count inconsistent with the listed events.
  std::vector<FlightEvent> events;
  std::int64_t n_dropped = 0;
  {
    MutexLock lock(mu_);
    events = SnapshotLocked();
    n_dropped = base_seq_;
  }
  std::string out =
      StrCat("flight recorder: ", events.size(), " event(s)",
             n_dropped > 0 ? StrCat(" (", n_dropped, " older event(s) overwritten)") : "", "\n");
  for (const FlightEvent& event : events) {
    out += event.ToString();
    out += "\n";
  }
  return out;
}

void FlightRecorder::DumpToFailureLog(const std::string& request_id,
                                      const std::string& reason) const {
  std::string body = StrCat("flight dump for ", request_id, ": ", reason, "\n", Render());
  const char* dir = std::getenv("SPACEFUSION_REPORT_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // ok if it already exists
    std::string name;
    for (char c : request_id) {
      bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                  c == '-' || c == '_';
      name.push_back(safe ? c : '_');
    }
    std::string path = StrCat(dir, "/flight-", name.empty() ? "unnamed" : name, ".log");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      return;
    }
    SF_LOG(Warning) << "cannot write flight dump " << path << "; dumping to stderr";
  }
  std::fprintf(stderr, "%s", body.c_str());
}

}  // namespace spacefusion
