#include "src/obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

// Index of the first bucket whose upper bound (4^i) holds `value`.
int BucketIndex(double value) {
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    if (value <= std::pow(4.0, i)) {
      return i;
    }
  }
  return Histogram::kNumBuckets - 1;
}

std::string FormatNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.bucket_counts.empty()) {
    stats_.bucket_counts.assign(kNumBuckets, 0);
  }
  if (stats_.count == 0 || value < stats_.min) {
    stats_.min = value;
  }
  if (stats_.count == 0 || value > stats_.max) {
    stats_.max = value;
  }
  ++stats_.count;
  stats_.sum += value;
  ++stats_.bucket_counts[static_cast<size_t>(BucketIndex(value))];
}

HistogramStats Histogram::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramStats copy = stats_;
  if (copy.bucket_counts.empty()) {
    copy.bucket_counts.assign(kNumBuckets, 0);
  }
  return copy;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = HistogramStats();
}

std::int64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrCat("\"", name, "\":", value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrCat("\"", name, "\":", FormatNumber(value));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrCat("\"", name, "\":{\"count\":", h.count, ",\"sum\":", FormatNumber(h.sum),
                  ",\"min\":", FormatNumber(h.min), ",\"max\":", FormatNumber(h.max),
                  ",\"mean\":", FormatNumber(h.mean()), ",\"buckets\":[",
                  StrJoin(h.bucket_counts, ","), "]}");
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: usable at exit
  return *registry;
}

void MetricsRegistry::CheckKind(const std::string& name, Kind kind) {
  auto [it, inserted] = kinds_.emplace(name, kind);
  SF_CHECK(it->second == kind) << "metric " << name << " already registered as another kind";
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckKind(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckKind(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckKind(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->stats());
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace spacefusion
