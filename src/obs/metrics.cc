#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

// Index of the first bucket whose upper bound (4^i) holds `value`.
int BucketIndex(double value) {
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    if (value <= std::pow(4.0, i)) {
      return i;
    }
  }
  return Histogram::kNumBuckets - 1;
}

std::string FormatNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void Histogram::Observe(double value) {
  if (!std::isfinite(value)) {
    return;  // NaN/Inf would poison sum, min/max, and have no bucket
  }
  MutexLock lock(mu_);
  if (stats_.bucket_counts.empty()) {
    stats_.bucket_counts.assign(kNumBuckets, 0);
  }
  if (stats_.count == 0 || value < stats_.min) {
    stats_.min = value;
  }
  if (stats_.count == 0 || value > stats_.max) {
    stats_.max = value;
  }
  ++stats_.count;
  stats_.sum += value;
  ++stats_.bucket_counts[static_cast<size_t>(BucketIndex(value))];
}

HistogramStats Histogram::stats() const {
  MutexLock lock(mu_);
  HistogramStats copy = stats_;
  if (copy.bucket_counts.empty()) {
    copy.bucket_counts.assign(kNumBuckets, 0);
  }
  return copy;
}

void Histogram::Reset() {
  MutexLock lock(mu_);
  stats_ = HistogramStats();
}

double HistogramStats::quantile(double q) const {
  if (count == 0 || bucket_counts.empty()) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  // Continuous target rank in (0, count]; walk the cumulative bucket counts
  // to the bucket containing it, then interpolate between the bucket's
  // bounds by the rank's position inside the bucket.
  const double rank = std::max(q * static_cast<double>(count), 1e-9);
  std::int64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const std::int64_t in_bucket = bucket_counts[i];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Bucket i spans (4^(i-1), 4^i]; the first and last occupied buckets
      // are truncated to the observed min/max so the estimate never leaves
      // the data range (and single-sample histograms are exact).
      const double lo = i == 0 ? min : std::pow(4.0, static_cast<double>(i) - 1.0);
      const double hi =
          i + 1 == bucket_counts.size() ? max : std::pow(4.0, static_cast<double>(i));
      const double fraction = (rank - static_cast<double>(cumulative)) /
                              static_cast<double>(in_bucket);
      const double estimate = lo + (hi - lo) * fraction;
      return std::min(max, std::max(min, estimate));
    }
    cumulative += in_bucket;
  }
  return max;
}

std::int64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrCat("\"", name, "\":", value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrCat("\"", name, "\":", FormatNumber(value));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrCat("\"", name, "\":{\"count\":", h.count, ",\"sum\":", FormatNumber(h.sum),
                  ",\"min\":", FormatNumber(h.min), ",\"max\":", FormatNumber(h.max),
                  ",\"mean\":", FormatNumber(h.mean()), ",\"p50\":", FormatNumber(h.p50()),
                  ",\"p95\":", FormatNumber(h.p95()), ",\"p99\":", FormatNumber(h.p99()),
                  ",\"buckets\":[", StrJoin(h.bucket_counts, ","), "]}");
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += StrCat(name, " ", value, "\n");
  }
  for (const auto& [name, value] : gauges) {
    out += StrCat(name, " ", FormatNumber(value), "\n");
  }
  for (const auto& [name, h] : histograms) {
    out += StrCat(name, " count=", h.count, " sum=", FormatNumber(h.sum),
                  " mean=", FormatNumber(h.mean()), " p50=", FormatNumber(h.p50()),
                  " p95=", FormatNumber(h.p95()), " p99=", FormatNumber(h.p99()),
                  " min=", FormatNumber(h.min), " max=", FormatNumber(h.max), "\n");
  }
  return out;
}

namespace {

// Splits "engine.cache.hits{request_id=\"r\"}" into the sanitized family
// name and the verbatim label block ("" when unlabeled).
struct MetricNameParts {
  std::string family;
  std::string labels;  // includes the surrounding braces
};

MetricNameParts SplitMetricName(const std::string& name) {
  MetricNameParts parts;
  size_t brace = name.find('{');
  std::string base = brace == std::string::npos ? name : name.substr(0, brace);
  if (brace != std::string::npos) {
    parts.labels = name.substr(brace);
  }
  parts.family.reserve(base.size());
  for (char c : base) {
    bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                 c == '_' || c == ':';
    parts.family.push_back(valid ? c : '_');
  }
  if (parts.family.empty() || (parts.family[0] >= '0' && parts.family[0] <= '9')) {
    parts.family.insert(parts.family.begin(), '_');
  }
  return parts;
}

// Merges an extra label into a (possibly empty) verbatim label block.
std::string WithExtraLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) {
    return StrCat("{", extra, "}");
  }
  // Insert before the closing brace.
  return StrCat(labels.substr(0, labels.size() - 1), ",", extra, "}");
}

}  // namespace

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  // Group label variants under one family so each family gets exactly one
  // TYPE line. std::map keys keep families sorted.
  struct Series {
    std::string labels;
    const std::int64_t* counter = nullptr;
    const double* gauge = nullptr;
    const HistogramStats* histogram = nullptr;
  };
  std::map<std::string, std::pair<const char*, std::vector<Series>>> families;
  for (const auto& [name, value] : snapshot.counters) {
    MetricNameParts parts = SplitMetricName(name);
    auto& family = families[parts.family];
    family.first = "counter";
    family.second.push_back({parts.labels, &value, nullptr, nullptr});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    MetricNameParts parts = SplitMetricName(name);
    auto& family = families[parts.family];
    family.first = "gauge";
    family.second.push_back({parts.labels, nullptr, &value, nullptr});
  }
  for (const auto& [name, h] : snapshot.histograms) {
    MetricNameParts parts = SplitMetricName(name);
    auto& family = families[parts.family];
    family.first = "histogram";
    family.second.push_back({parts.labels, nullptr, nullptr, &h});
  }

  for (const auto& [family, entry] : families) {
    out += StrCat("# TYPE ", family, " ", entry.first, "\n");
    for (const Series& series : entry.second) {
      if (series.counter != nullptr) {
        out += StrCat(family, "_total", series.labels, " ", *series.counter, "\n");
      } else if (series.gauge != nullptr) {
        out += StrCat(family, series.labels, " ", FormatNumber(*series.gauge), "\n");
      } else {
        const HistogramStats& h = *series.histogram;
        std::int64_t cumulative = 0;
        for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
          cumulative += h.bucket_counts[i];
          std::string le = i + 1 == h.bucket_counts.size()
                               ? std::string("+Inf")
                               : FormatNumber(std::pow(4.0, static_cast<double>(i)));
          out += StrCat(family, "_bucket", WithExtraLabel(series.labels, StrCat("le=\"", le, "\"")),
                        " ", cumulative, "\n");
        }
        if (h.bucket_counts.empty()) {
          out += StrCat(family, "_bucket", WithExtraLabel(series.labels, "le=\"+Inf\""), " 0\n");
        }
        out += StrCat(family, "_sum", series.labels, " ", FormatNumber(h.sum), "\n");
        out += StrCat(family, "_count", series.labels, " ", h.count, "\n");
      }
    }
  }
  out += "# EOF\n";
  return out;
}

std::string LabeledMetricName(const std::string& base, const std::string& label_key,
                              const std::string& label_value) {
  std::string escaped;
  escaped.reserve(label_value.size());
  for (char c : label_value) {
    if (c == '"' || c == '\\') {
      escaped.push_back('\\');
    }
    escaped.push_back(c == '\n' ? ' ' : c);
  }
  return StrCat(base, "{", label_key, "=\"", escaped, "\"}");
}

namespace obs_internal {

SharedMutex& ObsStateMutex() {
  static SharedMutex* mu = new SharedMutex();  // leaked: usable at exit
  return *mu;
}

}  // namespace obs_internal

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: usable at exit
  return *registry;
}

void MetricsRegistry::CheckKind(const std::string& name, Kind kind) {
  auto [it, inserted] = kinds_.emplace(name, kind);
  SF_CHECK(it->second == kind) << "metric " << name << " already registered as another kind";
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  CheckKind(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  CheckKind(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  CheckKind(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->stats());
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  // Exclusive against ObsCompileLock holders: wait out in-flight compiles so
  // no request sees a half-zeroed registry. Lock order: obs mutex before the
  // registry's own mu_ (TraceSession start/stop uses the same order).
  WriterMutexLock obs_lock(obs_internal::ObsStateMutex());
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace spacefusion
