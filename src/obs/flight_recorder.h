// Bounded in-memory flight recorder for post-mortem compile debugging.
//
// The engine and pass pipeline append one-line events (request started,
// pass finished, cache outcome, verifier rejection) to a fixed-capacity
// ring buffer; old events are overwritten, so steady-state cost is constant
// and the recorder is always on. When a compile fails, a verifier rejects,
// or the engine confirms a cache collision, the engine dumps the recorder —
// to <SPACEFUSION_REPORT_DIR>/flight-<request_id>.log when the variable is
// set, else to stderr — capturing the events leading up to the failure,
// including those of concurrent requests (each event carries its request
// id, so interleavings are attributable).
#ifndef SPACEFUSION_SRC_OBS_FLIGHT_RECORDER_H_
#define SPACEFUSION_SRC_OBS_FLIGHT_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/support/thread_annotations.h"

namespace spacefusion {

struct FlightEvent {
  std::int64_t seq = 0;        // monotone per recorder, never reused
  double elapsed_ms = 0.0;     // since recorder construction (steady clock)
  std::string request_id;      // "" for process-scoped events
  std::string category;        // "engine" | "pass" | "verify" | ...
  std::string message;

  // "#000017 +12.3ms [req-000002] pass: Tune done in 8.1ms"
  std::string ToString() const;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  // The process-wide recorder the engine records into. Leaked, like the
  // metrics registry, so it is usable during static destruction.
  static FlightRecorder& Global();

  void Record(std::string request_id, std::string category, std::string message);

  // Buffered events, oldest first. At most capacity() entries.
  std::vector<FlightEvent> Snapshot() const;
  // Events overwritten since construction / the last Clear.
  std::int64_t dropped() const;
  size_t capacity() const { return capacity_; }
  void Clear();

  // One event per line, prefixed with a header noting how many earlier
  // events were dropped.
  std::string Render() const;

  // Writes Render() to <SPACEFUSION_REPORT_DIR>/flight-<request_id>.log, or
  // to stderr when the variable is unset. Never throws or fails the caller.
  void DumpToFailureLog(const std::string& request_id, const std::string& reason) const;

 private:
  std::vector<FlightEvent> SnapshotLocked() const SF_REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_;
  std::vector<FlightEvent> ring_ SF_GUARDED_BY(mu_);  // ring_[seq % capacity_]
  std::int64_t next_seq_ SF_GUARDED_BY(mu_) = 0;
  std::int64_t base_seq_ SF_GUARDED_BY(mu_) = 0;  // seq of oldest retained event
  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_OBS_FLIGHT_RECORDER_H_
