// Structured per-compile reports (the serving-grade observability record).
//
// Every CompilerEngine request — cold compile, cache hit, or failure —
// produces one CompileReport: request id, graph fingerprint and options
// digest (the engine-cache key), per-pass wall/CPU timings, cache outcome,
// tuning funnel (enumerated → screened → admitted), verifier diagnostics,
// and a memory-plan summary. Reports serialize to JSON and round-trip
// through FromJson, so sf-stats can aggregate them across runs and CI can
// diff them against a checked-in baseline.
//
// Emission is pluggable: the engine forwards each finished report to the
// ReportSink in its options (tests install capturing sinks) and, when
// SPACEFUSION_REPORT_DIR is set, also writes
// <dir>/<request_id>.report.json. CompiledModel carries the merged report
// of its compile so callers need no sink to inspect one run.
#ifndef SPACEFUSION_SRC_OBS_REPORT_H_
#define SPACEFUSION_SRC_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace spacefusion {

// One pass execution inside a compile: wall-clock and CPU time. CPU < wall
// signals the pass blocked (I/O, lock contention); CPU > wall signals
// parallel work (the tuner's worker pool).
struct PassReportEntry {
  std::string pass;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
};

// One rendered verifier diagnostic ("SFV0103 [error] graph(m): ...").
// Reports keep the rendered line plus the stable code so sf-stats can
// bucket failures without re-parsing free text.
struct ReportDiagnostic {
  std::string code;
  std::string severity;  // "error" | "warning"
  std::string message;   // full rendered line
};

struct CompileReport {
  // Schema version; bump when fields change incompatibly.
  static constexpr int kSchemaVersion = 1;

  std::string request_id;            // "req-000042", unique per engine request
  std::string model;                 // caller-supplied model/graph name ("" if unnamed)
  std::uint64_t graph_fingerprint = 0;   // Graph::StructuralHash
  std::uint64_t options_digest = 0;      // CompileOptionsDigest
  // "cold" (pipeline ran), "cache_hit" (structural cache), "error".
  std::string outcome;
  std::string status_message;        // "" on success, rendered Status otherwise
  bool cache_collision = false;      // canonical-form confirmation mismatched

  double wall_ms = 0.0;              // end-to-end request wall time
  std::vector<PassReportEntry> passes;

  // Tuning funnel: configs enumerated by the search space, scored by the
  // analytical screen, and admitted to full-fidelity evaluation.
  std::int64_t configs_enumerated = 0;
  std::int64_t configs_screened = 0;
  std::int64_t configs_admitted = 0;
  double tuning_seconds = 0.0;       // emulated measurement wall-clock

  int verifier_errors = 0;
  int verifier_warnings = 0;
  std::vector<ReportDiagnostic> diagnostics;

  // Memory-plan summary of the winning program (maxima across kernels).
  int kernels = 0;
  std::int64_t smem_bytes = 0;
  std::int64_t reg_bytes = 0;
  double modeled_time_us = 0.0;      // simulator estimate of one execution

  // Native-kernel prewarm (engines with prewarm_jit): how many of this
  // program's kernels the JIT cache built with the toolchain vs served
  // warm (memory or disk), and the toolchain wall time spent. All zero
  // when prewarm is off. A warm serve restart shows built == 0.
  std::int64_t jit_kernels_built = 0;
  std::int64_t jit_kernels_cached = 0;
  double jit_build_ms = 0.0;

  // Dynamic shapes. For a shape-routed request (CompileModelForShape):
  // `shape` is the request's ShapeKey label, `bucket` the bucket it was
  // routed to, bucket_hit whether the whole request was served without a
  // tuner invocation, and transfer_seeded how many admitted configs the
  // tuner measured first on a neighboring bucket's recommendation. All
  // empty/zero for shape-agnostic compiles, and absent fields default when
  // parsing pre-bucket documents.
  std::string shape;
  std::string bucket;
  bool bucket_hit = false;
  std::int64_t transfer_seeded = 0;

  // Measured fused/unfused wall-clock ratio from a real execution of this
  // program (bench/fig_wallclock); 0 when never measured. The calibration
  // signal for the modeled-time cost path.
  double measured_speedup = 0.0;

  std::string ToJson() const;
  // Inverse of ToJson; rejects documents whose schema_version is newer than
  // this build understands.
  static StatusOr<CompileReport> FromJson(const std::string& json);

  // Wall-clock of one pass by name (0 when absent).
  double PassWallMs(const std::string& pass_name) const;
};

// Where finished reports go. Emit must be thread-safe: concurrent engine
// requests finish concurrently.
class ReportSink {
 public:
  virtual ~ReportSink() = default;
  virtual void Emit(const CompileReport& report) = 0;
};

// Writes <dir>/<request_id>.report.json per report (directory created on
// first emit). Write failures log a warning and drop the report — the
// compile itself must never fail because a report could not be persisted.
class DirectoryReportSink : public ReportSink {
 public:
  explicit DirectoryReportSink(std::string dir) : dir_(std::move(dir)) {}
  void Emit(const CompileReport& report) override;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

// Process-wide sink backed by SPACEFUSION_REPORT_DIR, or nullptr when the
// variable is unset/empty. Read once and cached.
ReportSink* EnvReportSink();

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_OBS_REPORT_H_
