#include "src/obs/trace.h"

#include <cstdio>
#include <cstdlib>

#include "src/obs/metrics.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"
#include "src/support/thread_annotations.h"

namespace spacefusion {

namespace {

// Global capture state. Function-local statics keep initialization order
// safe for the pre-main env bootstrap below.
struct CaptureState {
  Mutex mu;
  bool active SF_GUARDED_BY(mu) = false;  // mirrored in g_trace_active
  bool env_started SF_GUARDED_BY(mu) = false;  // session from SPACEFUSION_TRACE
  std::string env_path SF_GUARDED_BY(mu);
  std::chrono::steady_clock::time_point epoch SF_GUARDED_BY(mu);
  std::vector<TraceEvent> events SF_GUARDED_BY(mu);
};

CaptureState& State() {
  static CaptureState* state = new CaptureState();  // leaked: usable at exit
  return *state;
}

thread_local PhaseAccumulator* tl_accumulator = nullptr;

std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// Starts capture into the global event store. Caller holds no locks.
bool StartCapture() {
  CaptureState& state = State();
  MutexLock lock(state.mu);
  if (state.active) {
    return false;
  }
  state.active = true;
  state.env_started = false;
  state.epoch = std::chrono::steady_clock::now();
  state.events.clear();
  obs_internal::g_trace_active.store(true, std::memory_order_relaxed);
  return true;
}

std::vector<TraceEvent> StopCapture() {
  CaptureState& state = State();
  MutexLock lock(state.mu);
  obs_internal::g_trace_active.store(false, std::memory_order_relaxed);
  state.active = false;
  state.env_started = false;
  return std::move(state.events);
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal(StrCat("cannot open trace file ", path));
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int rc = std::fclose(f);
  if (written != contents.size() || rc != 0) {
    return Internal(StrCat("short write to trace file ", path));
  }
  return Status::Ok();
}

// Starts (before main) and flushes (after main) the SPACEFUSION_TRACE
// session, so examples and benches need no code to participate.
struct EnvTraceBootstrap {
  EnvTraceBootstrap() { StartTraceFromEnv(); }
  ~EnvTraceBootstrap() {
    Status st = FlushEnvTrace();
    if (!st.ok()) {
      std::fprintf(stderr, "[W trace] %s\n", st.ToString().c_str());
    }
  }
} g_env_trace_bootstrap;

}  // namespace

namespace obs_internal {

std::atomic<bool> g_trace_active{false};

bool SpanCaptureActive() {
  return g_trace_active.load(std::memory_order_relaxed) || tl_accumulator != nullptr;
}

int CurrentThreadId() {
  static std::atomic<int> next_id{1};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void RecordSpan(const char* name, const char* cat,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end, std::vector<TraceArg>&& args) {
  double dur_us = std::chrono::duration<double, std::micro>(end - start).count();

  for (PhaseAccumulator* acc = tl_accumulator; acc != nullptr; acc = acc->parent_) {
    MutexLock lock(acc->mu_);
    PhaseAccumulator::PhaseTotal& total = acc->totals_[name];
    total.total_ms += dur_us * 1e-3;
    ++total.count;
  }

  if (!g_trace_active.load(std::memory_order_relaxed)) {
    return;
  }
  CaptureState& state = State();
  MutexLock lock(state.mu);
  if (!state.active) {
    return;  // session stopped between the check and the lock
  }
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ts_us = std::chrono::duration<double, std::micro>(start - state.epoch).count();
  event.dur_us = dur_us;
  event.tid = CurrentThreadId();
  event.args = std::move(args);
  state.events.push_back(std::move(event));
}

}  // namespace obs_internal

ScopedSpan& ScopedSpan::Arg(const char* key, std::int64_t value) {
  if (active_) {
    args_.push_back({key, StrCat(value)});
  }
  return *this;
}

ScopedSpan& ScopedSpan::Arg(const char* key, double value) {
  if (active_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    args_.push_back({key, buf});
  }
  return *this;
}

ScopedSpan& ScopedSpan::Arg(const char* key, const std::string& value) {
  if (active_) {
    args_.push_back({key, StrCat("\"", EscapeJson(value), "\"")});
  }
  return *this;
}

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
  // Exclusive against ObsCompileLock holders: starting capture mid-compile
  // would record a torn prefix of that request's spans.
  WriterMutexLock obs_lock(obs_internal::ObsStateMutex());
  SF_CHECK(StartCapture()) << "a trace session is already active";
}

TraceSession::~TraceSession() {
  Status st = Stop();
  if (!st.ok()) {
    SF_LOG(Warning) << st.ToString();
  }
}

Status TraceSession::Stop() {
  if (stopped_) {
    return Status::Ok();
  }
  stopped_ = true;
  {
    // Wait out in-flight compiles so a session never ends with half of a
    // request's spans captured and the rest dropped.
    WriterMutexLock obs_lock(obs_internal::ObsStateMutex());
    events_ = StopCapture();
  }
  if (path_.empty()) {
    return Status::Ok();
  }
  return WriteFile(path_, ToJson());
}

std::string TraceSession::ToJson() const { return TraceEventsToJson(events_); }

std::string TraceEventsToJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += StrCat("{\"name\":\"", EscapeJson(e.name), "\",\"cat\":\"", EscapeJson(e.cat),
                  "\",\"ph\":\"X\",\"ts\":", FormatDouble(e.ts_us),
                  ",\"dur\":", FormatDouble(e.dur_us), ",\"pid\":1,\"tid\":", e.tid);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += StrCat("\"", EscapeJson(e.args[i].key), "\":", e.args[i].json_value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool StartTraceFromEnv() {
  const char* path = std::getenv("SPACEFUSION_TRACE");
  if (path == nullptr || path[0] == '\0') {
    return false;
  }
  if (!StartCapture()) {
    return false;
  }
  CaptureState& state = State();
  MutexLock lock(state.mu);
  state.env_started = true;
  state.env_path = path;
  return true;
}

Status FlushEnvTrace() {
  std::string path;
  {
    CaptureState& state = State();
    MutexLock lock(state.mu);
    if (!state.active || !state.env_started) {
      return Status::Ok();
    }
    path = state.env_path;
  }
  std::vector<TraceEvent> events = StopCapture();
  return WriteFile(path, TraceEventsToJson(events));
}

PhaseAccumulator::PhaseAccumulator() : parent_(tl_accumulator) { tl_accumulator = this; }

PhaseAccumulator::~PhaseAccumulator() { tl_accumulator = parent_; }

double PhaseAccumulator::TotalMs(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = totals_.find(name);
  return it == totals_.end() ? 0.0 : it->second.total_ms;
}

std::int64_t PhaseAccumulator::SpanCount(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = totals_.find(name);
  return it == totals_.end() ? 0 : it->second.count;
}

std::map<std::string, double> PhaseAccumulator::AllTotalsMs() const {
  MutexLock lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, total] : totals_) {
    out.emplace(name, total.total_ms);
  }
  return out;
}

namespace obs_internal {

PhaseAccumulator* CurrentPhaseAccumulator() { return tl_accumulator; }

}  // namespace obs_internal

ScopedPhaseHandoff::ScopedPhaseHandoff(PhaseAccumulator* stack_top) : saved_(tl_accumulator) {
  if (stack_top != nullptr) {
    tl_accumulator = stack_top;
  }
}

ScopedPhaseHandoff::~ScopedPhaseHandoff() { tl_accumulator = saved_; }

}  // namespace spacefusion
