#include "src/obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>

#include "src/support/file_util.h"
#include "src/support/json.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

std::string FormatNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// 64-bit values exceed JSON's interoperable integer range, so fingerprints
// and digests travel as decimal strings.
std::string U64String(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t ParseU64(const std::string& text) {
  return static_cast<std::uint64_t>(std::strtoull(text.c_str(), nullptr, 10));
}

}  // namespace

std::string CompileReport::ToJson() const {
  std::string out = StrCat(
      "{\"schema_version\":", kSchemaVersion,
      ",\"request_id\":\"", JsonEscape(request_id),
      "\",\"model\":\"", JsonEscape(model),
      "\",\"graph_fingerprint\":\"", U64String(graph_fingerprint),
      "\",\"options_digest\":\"", U64String(options_digest),
      "\",\"outcome\":\"", JsonEscape(outcome),
      "\",\"status_message\":\"", JsonEscape(status_message),
      "\",\"cache_collision\":", cache_collision ? "true" : "false",
      ",\"wall_ms\":", FormatNumber(wall_ms), ",\"passes\":[");
  for (size_t i = 0; i < passes.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += StrCat("{\"pass\":\"", JsonEscape(passes[i].pass),
                  "\",\"wall_ms\":", FormatNumber(passes[i].wall_ms),
                  ",\"cpu_ms\":", FormatNumber(passes[i].cpu_ms), "}");
  }
  out += StrCat("],\"tuning\":{\"configs_enumerated\":", configs_enumerated,
                ",\"configs_screened\":", configs_screened,
                ",\"configs_admitted\":", configs_admitted,
                ",\"tuning_seconds\":", FormatNumber(tuning_seconds),
                "},\"verifier\":{\"errors\":", verifier_errors,
                ",\"warnings\":", verifier_warnings, ",\"diagnostics\":[");
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += StrCat("{\"code\":\"", JsonEscape(diagnostics[i].code),
                  "\",\"severity\":\"", JsonEscape(diagnostics[i].severity),
                  "\",\"message\":\"", JsonEscape(diagnostics[i].message), "\"}");
  }
  out += StrCat("]},\"memory\":{\"kernels\":", kernels, ",\"smem_bytes\":", smem_bytes,
                ",\"reg_bytes\":", reg_bytes,
                "},\"jit\":{\"kernels_built\":", jit_kernels_built,
                ",\"kernels_cached\":", jit_kernels_cached,
                ",\"build_ms\":", FormatNumber(jit_build_ms),
                "},\"modeled_time_us\":", FormatNumber(modeled_time_us),
                ",\"shape\":\"", JsonEscape(shape),
                "\",\"bucket\":\"", JsonEscape(bucket),
                "\",\"bucket_hit\":", bucket_hit ? "true" : "false",
                ",\"transfer_seeded\":", transfer_seeded,
                ",\"measured_speedup\":", FormatNumber(measured_speedup), "}");
  return out;
}

StatusOr<CompileReport> CompileReport::FromJson(const std::string& json) {
  SF_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(json));
  if (!doc.is_object()) {
    return InvalidArgument("compile report: document is not an object");
  }
  const std::int64_t version = static_cast<std::int64_t>(doc.GetNumber("schema_version", 0));
  if (version > kSchemaVersion) {
    return InvalidArgument(
        StrCat("compile report: schema_version ", version, " is newer than supported version ",
               kSchemaVersion));
  }
  CompileReport report;
  report.request_id = doc.GetString("request_id");
  report.model = doc.GetString("model");
  report.graph_fingerprint = ParseU64(doc.GetString("graph_fingerprint", "0"));
  report.options_digest = ParseU64(doc.GetString("options_digest", "0"));
  report.outcome = doc.GetString("outcome");
  report.status_message = doc.GetString("status_message");
  const JsonValue* collision = doc.Get("cache_collision");
  report.cache_collision = collision != nullptr && collision->boolean();
  report.wall_ms = doc.GetNumber("wall_ms");
  if (const JsonValue* passes = doc.Get("passes"); passes != nullptr && passes->is_array()) {
    for (const JsonValue& entry : passes->items()) {
      PassReportEntry pass;
      pass.pass = entry.GetString("pass");
      pass.wall_ms = entry.GetNumber("wall_ms");
      pass.cpu_ms = entry.GetNumber("cpu_ms");
      report.passes.push_back(std::move(pass));
    }
  }
  if (const JsonValue* tuning = doc.Get("tuning"); tuning != nullptr && tuning->is_object()) {
    report.configs_enumerated = static_cast<std::int64_t>(tuning->GetNumber("configs_enumerated"));
    report.configs_screened = static_cast<std::int64_t>(tuning->GetNumber("configs_screened"));
    report.configs_admitted = static_cast<std::int64_t>(tuning->GetNumber("configs_admitted"));
    report.tuning_seconds = tuning->GetNumber("tuning_seconds");
  }
  if (const JsonValue* verifier = doc.Get("verifier"); verifier != nullptr && verifier->is_object()) {
    report.verifier_errors = static_cast<int>(verifier->GetNumber("errors"));
    report.verifier_warnings = static_cast<int>(verifier->GetNumber("warnings"));
    if (const JsonValue* diags = verifier->Get("diagnostics");
        diags != nullptr && diags->is_array()) {
      for (const JsonValue& entry : diags->items()) {
        ReportDiagnostic diag;
        diag.code = entry.GetString("code");
        diag.severity = entry.GetString("severity");
        diag.message = entry.GetString("message");
        report.diagnostics.push_back(std::move(diag));
      }
    }
  }
  if (const JsonValue* memory = doc.Get("memory"); memory != nullptr && memory->is_object()) {
    report.kernels = static_cast<int>(memory->GetNumber("kernels"));
    report.smem_bytes = static_cast<std::int64_t>(memory->GetNumber("smem_bytes"));
    report.reg_bytes = static_cast<std::int64_t>(memory->GetNumber("reg_bytes"));
  }
  // Absent in pre-jit documents: fields default to zero.
  if (const JsonValue* jit = doc.Get("jit"); jit != nullptr && jit->is_object()) {
    report.jit_kernels_built = static_cast<std::int64_t>(jit->GetNumber("kernels_built"));
    report.jit_kernels_cached = static_cast<std::int64_t>(jit->GetNumber("kernels_cached"));
    report.jit_build_ms = jit->GetNumber("build_ms");
  }
  report.modeled_time_us = doc.GetNumber("modeled_time_us");
  // Absent in pre-bucket documents: fields default to empty/zero.
  report.shape = doc.GetString("shape");
  report.bucket = doc.GetString("bucket");
  const JsonValue* bucket_hit = doc.Get("bucket_hit");
  report.bucket_hit = bucket_hit != nullptr && bucket_hit->boolean();
  report.transfer_seeded = static_cast<std::int64_t>(doc.GetNumber("transfer_seeded"));
  report.measured_speedup = doc.GetNumber("measured_speedup");
  return report;
}

double CompileReport::PassWallMs(const std::string& pass_name) const {
  for (const PassReportEntry& entry : passes) {
    if (entry.pass == pass_name) {
      return entry.wall_ms;
    }
  }
  return 0.0;
}

void DirectoryReportSink::Emit(const CompileReport& report) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // ok if it already exists
  // Request ids are engine-generated ("req-%06d") but sanitize anyway so a
  // hand-built report cannot escape the directory.
  std::string name;
  for (char c : report.request_id) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                c == '-' || c == '_' || c == '.';
    name.push_back(safe ? c : '_');
  }
  if (name.empty()) {
    name = "unnamed";
  }
  std::string path = StrCat(dir_, "/", name, ".report.json");
  // Atomic write-then-rename: an interrupted writer must not leave a torso
  // where sf-stats or a report differ would read it.
  Status written = AtomicWriteFile(path, report.ToJson() + "\n");
  if (!written.ok()) {
    SF_LOG(Warning) << "cannot write compile report " << path << ": " << written.ToString();
  }
}

ReportSink* EnvReportSink() {
  static std::once_flag once;
  static ReportSink* sink = nullptr;
  std::call_once(once, [] {
    const char* dir = std::getenv("SPACEFUSION_REPORT_DIR");
    if (dir != nullptr && dir[0] != '\0') {
      sink = new DirectoryReportSink(dir);  // leaked: usable at exit
    }
  });
  return sink;
}

}  // namespace spacefusion
