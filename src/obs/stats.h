// Aggregation and regression-diff over compile observability artifacts.
//
// sf-stats is a thin CLI over this library: it loads a "run" from any of
// the formats the toolchain emits — a SPACEFUSION_REPORT_DIR full of
// *.report.json CompileReports, an sf-compile --json file, or a
// BENCH_compile.json from sf-bench-json — normalizes it into named numeric
// series, and either summarizes one run (top-N slowest passes / models,
// outcome counts) or diffs two runs flagging compile-time regressions.
//
// Series keys are hierarchical, "<model>/<metric>" (e.g.
// "bert/modeled_compile_s", "bert/pass/Tune"). Keys measuring host
// wall-clock carry a "wall/" component ("bert/wall/compile_ms"); diffs skip
// them by default so a CI gate against a checked-in baseline only compares
// deterministic modeled quantities and never trips on machine speed.
#ifndef SPACEFUSION_SRC_OBS_STATS_H_
#define SPACEFUSION_SRC_OBS_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "src/obs/report.h"
#include "src/support/status.h"

namespace spacefusion {

// One loaded run: the normalized series plus (for report directories) the
// parsed reports themselves.
struct RunStats {
  std::string source;                    // path the run was loaded from
  std::string format;  // "report_dir" | "compile_json" | "bench_json" | "exec_json" | "report"
  std::vector<CompileReport> reports;    // empty unless format uses CompileReports
  std::map<std::string, double> series;  // key -> value, keys sorted
};

// True when `key` measures host wall-clock (any "wall" path component).
bool IsWallClockKey(const std::string& key);

// Loads a run, dispatching on shape: a directory is read as a report dir
// (every *.report.json inside); a file is parsed and classified by its
// top-level keys ("models" array = sf-compile --json, "models" object =
// BENCH_compile.json, "request_id" = a single CompileReport).
StatusOr<RunStats> LoadRunStats(const std::string& path);

StatusOr<RunStats> LoadReportDirStats(const std::string& dir);
StatusOr<RunStats> LoadCompileJsonStats(const std::string& path);
StatusOr<RunStats> LoadBenchJsonStats(const std::string& path);
// BENCH_exec.json from bench/fig_wallclock (top-level "workloads" object):
// real wall-clock of fused-jit vs unfused-jit vs interpreter execution per
// workload/model, plus the jit cache hit rate.
StatusOr<RunStats> LoadExecJsonStats(const std::string& path);

struct DiffOptions {
  // A key regresses when current > base * (1 + threshold) and the absolute
  // growth exceeds min_abs_delta (guards 0-vs-epsilon noise).
  double threshold = 0.10;
  double min_abs_delta = 1e-6;
  // Compare "wall/" keys too. Off by default: wall times are machine
  // dependent, and the CI baseline gate must not depend on runner speed.
  bool include_wall = false;
};

struct DiffEntry {
  std::string key;
  double base = 0.0;
  double current = 0.0;
  double delta_pct = 0.0;  // 100 * (current - base) / base; 0 when base == 0
  bool regression = false;
};

struct DiffResult {
  std::vector<DiffEntry> entries;         // keys in both runs, sorted
  std::vector<std::string> only_base;     // keys missing from current
  std::vector<std::string> only_current;  // keys missing from base
  int regressions = 0;
};

DiffResult DiffRuns(const RunStats& base, const RunStats& current, const DiffOptions& options);

// Human-readable single-run summary: outcome counts, top-N slowest models
// and passes, tuning funnel totals.
std::string RenderSummary(const RunStats& run, int top_n);

// Human-readable diff: regressed keys first, then improvements/unchanged
// counts and key-coverage mismatches.
std::string RenderDiff(const DiffResult& diff, const DiffOptions& options);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_OBS_STATS_H_
