// Schedule intermediate representation: the result of slicing an SMG.
//
// An SmgSchedule records which dims were spatially sliced (grid dims), the
// optional temporal dim with its aggregation plan, the chosen block sizes,
// and the memory-hierarchy placement of every tensor (paper Sec. 5.4).
#ifndef SPACEFUSION_SRC_SCHEDULE_SCHEDULE_IR_H_
#define SPACEFUSION_SRC_SCHEDULE_SCHEDULE_IR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/slicing/update_functions.h"
#include "src/smg/smg_builder.h"

namespace spacefusion {

// Where a tensor's working tile lives during kernel execution (Sec. 5.4).
enum class MemLevel {
  kRegister,        // O2O-connected intermediates, accumulators
  kShared,          // O2A sources / A2O sinks / staged input tiles
  kGlobal,          // kernel inputs & outputs (tiled per block)
  kGlobalStreamed,  // large shared operands streamed through L2 (weights)
};

const char* MemLevelName(MemLevel level);

struct MemoryPlan {
  std::vector<MemLevel> tensor_level;  // indexed by TensorId
  std::int64_t smem_bytes = 0;         // peak live shared-memory per block
  std::int64_t reg_bytes = 0;          // register bytes per block
};

// Tile extent chosen for one sliced dim.
struct DimSlice {
  DimId dim = kNoDim;
  std::int64_t block = 1;
};

// Candidate block-size assignment enumerated by the search space.
struct ScheduleConfig {
  std::vector<std::int64_t> spatial_blocks;  // parallel to SmgSchedule::spatial
  std::int64_t temporal_step = 0;            // 0 => temporal slicing disabled
  bool use_temporal = false;

  std::string ToString() const;
};

// Cheap per-config summary captured at enumeration time (while the config is
// applied and memory-planned): the inputs to the tuner's screening estimate
// and to dominance pruning, so neither has to re-run ApplyConfig, PlanMemory,
// or lowering per config.
struct ConfigFootprint {
  std::int64_t smem_bytes = 0;          // shared memory per block (post-plan)
  std::int64_t reg_bytes = 0;           // register bytes per block (post-plan)
  std::int64_t grid = 1;                // parallelism: number of SMG blocks
  std::int64_t intra_steps = 1;         // serial intra-blocks (1 w/o temporal)
  std::int64_t max_tile_elems = 0;      // biggest op tile (thread-count proxy)
  std::int64_t read_traffic_bytes = 0;  // L2-level read traffic, summed exactly
  std::int64_t read_dram_lb_bytes = 0;  // per-operand min(unique, traffic) sum
  double compute_eff = 1.0;             // matmul tile efficiency under config
};

struct SmgSchedule {
  Graph graph;
  SmgBuildResult built;

  std::vector<DimSlice> spatial;      // spatially sliced dims with block sizes
  bool has_temporal = false;
  DimSlice temporal;                  // valid when has_temporal
  TemporalPlan plan;                  // aggregation plan for the temporal dim

  MemoryPlan memory;

  // Grid size: number of independent SMG blocks.
  std::int64_t NumBlocks() const;
  // Number of serial intra-blocks along the temporal dim (1 when disabled).
  std::int64_t NumIntraBlocks() const;

  // The tile extent of `dim` inside one SMG block (block size if spatially
  // sliced, step if temporal, full extent otherwise).
  std::int64_t TileExtent(DimId dim) const;

  // Applies a config's block sizes (memory plan must be recomputed after).
  void ApplyConfig(const ScheduleConfig& config);

  std::string ToString() const;
};

// A compiled subprogram: one kernel per partition, executed in sequence.
struct ScheduledProgram {
  std::vector<SmgSchedule> kernels;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SCHEDULE_SCHEDULE_IR_H_
