#include "src/schedule/memory_planner.h"

#include <algorithm>

#include "src/support/logging.h"

namespace spacefusion {

namespace {

// Tile bytes of a tensor's data space under the schedule's current slicing.
std::int64_t TileBytes(const SmgSchedule& sched, TensorId tensor) {
  SpaceId sid = sched.built.tensor_space[static_cast<size_t>(tensor)];
  const Space& space = sched.built.smg.space(sid);
  std::int64_t elems = 1;
  for (DimId d : space.dims) {
    elems *= sched.TileExtent(d);
  }
  return elems * space.elem_bytes;
}

// True if every mapping incident to the tensor's data space is One-to-One.
bool OnlyOneToOne(const SmgSchedule& sched, TensorId tensor) {
  const Smg& smg = sched.built.smg;
  SpaceId sid = sched.built.tensor_space[static_cast<size_t>(tensor)];
  for (MappingId mid : smg.outgoing(sid)) {
    if (smg.mapping(mid).kind != MappingKind::kOneToOne) {
      return false;
    }
  }
  for (MappingId mid : smg.incoming(sid)) {
    if (smg.mapping(mid).kind != MappingKind::kOneToOne) {
      return false;
    }
  }
  return true;
}

// True if the tensor is the sink of an All-to-One (a running accumulator).
bool IsReductionSink(const SmgSchedule& sched, TensorId tensor) {
  const Smg& smg = sched.built.smg;
  SpaceId sid = sched.built.tensor_space[static_cast<size_t>(tensor)];
  for (MappingId mid : smg.incoming(sid)) {
    if (smg.mapping(mid).kind == MappingKind::kAllToOne) {
      return true;
    }
  }
  return false;
}

// True if a reduction-bearing op executes between the tensor's producer and
// its last consumer: the value cannot stay in flight-through registers, it
// must be materialized across the reduction barrier.
bool CrossesReduction(const SmgSchedule& sched, TensorId tensor) {
  const Graph& graph = sched.graph;
  OpId prod = graph.producer(tensor);
  const std::vector<OpId>& consumers = graph.consumers(tensor);
  if (prod < 0 || consumers.empty()) {
    return false;
  }
  OpId last = *std::max_element(consumers.begin(), consumers.end());
  for (OpId i = prod + 1; i < last; ++i) {
    OpKind kind = graph.op(i).kind;
    if (kind == OpKind::kReduce || kind == OpKind::kMatMul) {
      return true;
    }
  }
  return false;
}

// Shared-memory arenas of transient register values: a nominal per-tensor
// charge reflecting per-thread live registers, not a whole materialized tile.
constexpr std::int64_t kTransientRegisterBytes = 2048;

}  // namespace

std::int64_t OnChipElemBytes(MemLevel level, std::int64_t storage_bytes) {
  // Register-resident values (accumulators in particular) are FP32.
  return level == MemLevel::kRegister ? 4 : storage_bytes;
}

void PlanMemory(SmgSchedule* schedule, const ResourceConfig& rc) {
  const Graph& graph = schedule->graph;
  MemoryPlan plan;
  plan.tensor_level.assign(graph.tensors().size(), MemLevel::kGlobal);

  // Inputs are staged into shared memory while a tile fits in half the
  // block budget (single-pass access); weights prefer streaming through L2
  // (they are reused across many blocks anyway) unless they are tiny.
  const std::int64_t input_stage_threshold = rc.smem_per_block_max / 2;
  const std::int64_t weight_stage_threshold = 16 * 1024;

  for (const TensorInfo& t : graph.tensors()) {
    switch (t.kind) {
      case TensorKind::kConstant:
        plan.tensor_level[static_cast<size_t>(t.id)] = MemLevel::kRegister;
        break;
      case TensorKind::kInput:
      case TensorKind::kWeight: {
        std::int64_t tile = TileBytes(*schedule, t.id);
        std::int64_t threshold =
            t.kind == TensorKind::kInput ? input_stage_threshold : weight_stage_threshold;
        plan.tensor_level[static_cast<size_t>(t.id)] =
            tile <= threshold ? MemLevel::kShared : MemLevel::kGlobalStreamed;
        break;
      }
      case TensorKind::kOutput:
        plan.tensor_level[static_cast<size_t>(t.id)] =
            IsReductionSink(*schedule, t.id) ? MemLevel::kRegister : MemLevel::kGlobal;
        break;
      case TensorKind::kIntermediate:
        if (IsReductionSink(*schedule, t.id)) {
          plan.tensor_level[static_cast<size_t>(t.id)] = MemLevel::kRegister;
        } else if (OnlyOneToOne(*schedule, t.id) &&
                   !CrossesReduction(*schedule, t.id)) {
          // Pure streaming value: consumed as it is produced, lives in
          // per-thread registers only (never materialized as a tile).
          plan.tensor_level[static_cast<size_t>(t.id)] = MemLevel::kRegister;
        } else {
          // Must survive a reduction barrier (e.g. exp values consumed
          // again after the row sum) or feeds/absorbs a directional
          // mapping: the whole tile is materialized in shared memory.
          plan.tensor_level[static_cast<size_t>(t.id)] = MemLevel::kShared;
        }
        break;
    }
  }

  // Liveness pass: an op-indexed timeline; tensor t is live from its
  // producer (or 0 for inputs) until its last consumer (or the end for
  // outputs). Peak simultaneous footprint per level bounds the block.
  const int num_ops = static_cast<int>(graph.ops().size());
  std::vector<std::int64_t> smem_delta(static_cast<size_t>(num_ops) + 2, 0);
  std::vector<std::int64_t> reg_delta(static_cast<size_t>(num_ops) + 2, 0);

  for (const TensorInfo& t : graph.tensors()) {
    MemLevel level = plan.tensor_level[static_cast<size_t>(t.id)];
    if (level != MemLevel::kShared && level != MemLevel::kRegister) {
      continue;
    }
    if (t.kind == TensorKind::kConstant) {
      continue;  // negligible
    }
    std::int64_t elems = TileBytes(*schedule, t.id) /
                         std::max<std::int64_t>(1, DTypeSize(t.dtype));
    std::int64_t bytes = elems * OnChipElemBytes(level, DTypeSize(t.dtype));
    if (level == MemLevel::kRegister && !IsReductionSink(*schedule, t.id)) {
      // Streaming value: only a per-thread window is ever live.
      bytes = std::min(bytes, kTransientRegisterBytes);
    }

    const std::vector<OpId>& consumers = graph.consumers(t.id);
    int start = 0;
    OpId prod = graph.producer(t.id);
    if (prod >= 0) {
      start = prod;
    } else if (!consumers.empty()) {
      // Staged inputs are loaded right before their first use, not at
      // kernel start — deep fused chains (20 MLP layers) would otherwise
      // hold every future tile simultaneously.
      start = *std::min_element(consumers.begin(), consumers.end());
    }
    int end = num_ops;  // outputs and unconsumed tensors live to the end
    if (!consumers.empty() &&
        (t.kind == TensorKind::kIntermediate || t.kind == TensorKind::kInput ||
         t.kind == TensorKind::kWeight)) {
      end = *std::max_element(consumers.begin(), consumers.end()) + 1;
    }
    if (level == MemLevel::kShared) {
      smem_delta[static_cast<size_t>(start)] += bytes;
      smem_delta[static_cast<size_t>(end)] -= bytes;
    } else {
      reg_delta[static_cast<size_t>(start)] += bytes;
      reg_delta[static_cast<size_t>(end)] -= bytes;
    }
  }

  std::int64_t smem_cur = 0, smem_peak = 0, reg_cur = 0, reg_peak = 0;
  for (size_t i = 0; i < smem_delta.size(); ++i) {
    smem_cur += smem_delta[i];
    reg_cur += reg_delta[i];
    smem_peak = std::max(smem_peak, smem_cur);
    reg_peak = std::max(reg_peak, reg_cur);
  }
  plan.smem_bytes = smem_peak;
  plan.reg_bytes = reg_peak;
  schedule->memory = std::move(plan);
}

bool CheckResources(const SmgSchedule& schedule, const ResourceConfig& rc) {
  return schedule.memory.smem_bytes <= rc.smem_per_block_max &&
         schedule.memory.reg_bytes <= rc.reg_per_block_max;
}

}  // namespace spacefusion
