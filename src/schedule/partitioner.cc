#include "src/schedule/partitioner.h"

#include <algorithm>
#include <map>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {
bool HasAllToOne(const Op& op) {
  return op.kind == OpKind::kMatMul || op.kind == OpKind::kReduce;
}
}  // namespace

std::vector<int> SubSmgBoundaries(const Graph& graph) {
  std::vector<int> boundaries;
  const int n = static_cast<int>(graph.ops().size());
  for (int i = 1; i < n; ++i) {
    const Op& prev = graph.op(i - 1);
    const Op& cur = graph.op(i);
    // A boundary exists wherever a reduction sub-SMG starts or ends; runs of
    // non-A2O ops form single sub-SMGs with no interior boundaries.
    if (HasAllToOne(prev) || HasAllToOne(cur)) {
      boundaries.push_back(i);
    }
  }
  return boundaries;
}

bool SegmentIsNonA2o(const Graph& graph, int begin, int end) {
  for (int i = begin; i < end; ++i) {
    if (HasAllToOne(graph.op(i))) {
      return false;
    }
  }
  return begin < end;
}

std::pair<Graph, Graph> SplitGraph(const Graph& graph, int prefix_ops) {
  SF_TRACE_SPAN("partition.split_graph", "partition");
  SF_COUNTER_ADD("partition.graph_splits", 1);
  const int n = static_cast<int>(graph.ops().size());
  SF_CHECK_GT(prefix_ops, 0);
  SF_CHECK_LT(prefix_ops, n);

  // Which tensors cross the cut (produced by the prefix, needed later)?
  std::vector<bool> needed_by_suffix(graph.tensors().size(), false);
  for (int i = prefix_ops; i < n; ++i) {
    for (TensorId in : graph.op(i).inputs) {
      needed_by_suffix[static_cast<size_t>(in)] = true;
    }
  }

  Graph front(StrCat(graph.name(), ".f"));
  Graph back(StrCat(graph.name(), ".l"));
  std::vector<TensorId> front_id(graph.tensors().size(), kInvalidTensor);
  std::vector<TensorId> back_id(graph.tensors().size(), kInvalidTensor);

  auto import_tensor = [&graph](Graph* dst, std::vector<TensorId>* ids, TensorId old,
                                TensorKind kind_override, bool use_override) {
    if ((*ids)[static_cast<size_t>(old)] != kInvalidTensor) {
      return (*ids)[static_cast<size_t>(old)];
    }
    TensorInfo info = graph.tensor(old);
    if (use_override) {
      info.kind = kind_override;
    }
    TensorId fresh = dst->AddTensor(std::move(info));
    (*ids)[static_cast<size_t>(old)] = fresh;
    return fresh;
  };

  for (int i = 0; i < n; ++i) {
    const Op& op = graph.op(i);
    bool in_front = i < prefix_ops;
    Graph* dst = in_front ? &front : &back;
    std::vector<TensorId>* ids = in_front ? &front_id : &back_id;

    Op copy = op;
    copy.inputs.clear();
    for (TensorId in : op.inputs) {
      const TensorInfo& t = graph.tensor(in);
      bool produced_in_front = graph.producer(in) >= 0 && graph.producer(in) < prefix_ops;
      if (!in_front && produced_in_front) {
        // Cut tensor: duplicated as a fresh input of the latter graph.
        copy.inputs.push_back(
            import_tensor(&back, &back_id, in, TensorKind::kInput, /*use_override=*/true));
      } else {
        copy.inputs.push_back(import_tensor(dst, ids, in, t.kind, /*use_override=*/false));
      }
    }

    const TensorInfo& out = graph.tensor(op.output);
    bool cut_output = in_front && (needed_by_suffix[static_cast<size_t>(op.output)]);
    TensorKind out_kind = out.kind;
    if (cut_output && out_kind == TensorKind::kIntermediate) {
      out_kind = TensorKind::kOutput;  // must be materialized for the suffix
    }
    copy.output = import_tensor(dst, ids, op.output, out_kind, /*use_override=*/true);
    dst->AddOp(std::move(copy));
  }

  Status fs = front.Validate();
  SF_CHECK(fs.ok()) << fs.ToString();
  Status bs = back.Validate();
  SF_CHECK(bs.ok()) << bs.ToString();
  return {std::move(front), std::move(back)};
}

std::vector<Graph> SplitAtComputeBoundaries(const Graph& graph) {
  const int n = static_cast<int>(graph.ops().size());
  // Segment lengths: matmul singletons and maximal non-matmul runs.
  std::vector<int> lengths;
  int i = 0;
  while (i < n) {
    if (graph.op(i).kind == OpKind::kMatMul) {
      lengths.push_back(1);
      ++i;
      continue;
    }
    int j = i;
    while (j < n && graph.op(j).kind != OpKind::kMatMul) {
      ++j;
    }
    lengths.push_back(j - i);
    i = j;
  }
  if (lengths.size() <= 1) {
    return {graph};
  }
  std::vector<Graph> out;
  Graph remaining = graph;
  for (size_t s = 0; s + 1 < lengths.size(); ++s) {
    auto [front, rest] = SplitGraph(remaining, lengths[s]);
    out.push_back(std::move(front));
    remaining = std::move(rest);
  }
  out.push_back(std::move(remaining));
  return out;
}

StatusOr<PartitionOutcome> PartitionOnce(const Graph& graph, const ResourceConfig& rc,
                                         const SlicingOptions& options) {
  ScopedSpan span("partition.partition_once", "partition");
  span.Arg("graph", graph.name());
  std::vector<int> cuts = SubSmgBoundaries(graph);
  span.Arg("boundaries", static_cast<std::int64_t>(cuts.size()));
  if (cuts.empty()) {
    return Unschedulable(
        StrCat("SMG ", graph.name(), " cannot be partitioned further (single sub-SMG)"));
  }

  // Gf starts as the whole graph; move the last sub-SMG to Gl until Gf is
  // schedulable (Algorithm 2's loop, expressed as descending cut points).
  for (int ci = static_cast<int>(cuts.size()) - 1; ci >= 0; --ci) {
    int cut = cuts[static_cast<size_t>(ci)];
    auto [front_graph, back_graph] = SplitGraph(graph, cut);
    StatusOr<SlicingResult> sliced = ResourceAwareSlicing(front_graph, rc, options);
    if (!sliced.ok()) {
      continue;
    }
    PartitionOutcome outcome;
    outcome.front = std::move(sliced).value();
    outcome.rest = std::move(back_graph);
    outcome.has_rest = true;
    // Sec. 5.3: one further exploration level — if the sub-SMG just before
    // the cut is non-A2O, moving it to Gl as well forms a second candidate.
    if (ci > 0) {
      int prev_cut = cuts[static_cast<size_t>(ci - 1)];
      if (SegmentIsNonA2o(graph, prev_cut, cut)) {
        outcome.alternative_cuts.push_back(prev_cut);
      }
    }
    return outcome;
  }
  return Unschedulable(StrCat("no schedulable prefix exists for SMG ", graph.name()));
}

}  // namespace spacefusion
