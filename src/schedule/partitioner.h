// SMG partitioning — the paper's Algorithm 2 plus the candidate-schedule
// exploration of Sec. 5.3.
//
// When resource-aware slicing declares an SMG unschedulable (the fusion was
// too aggressive), the SMG is reorganized into sub-SMGs — each All-to-One
// (reduction-bearing operator) forms its own sub-SMG, maximal runs of
// non-reduction operators form non-All-to-One sub-SMGs — and split into a
// schedulable former part Gf and a latter part Gl that re-enters slicing.
// The intermediate tensors at the cut are duplicated (outputs of Gf, inputs
// of Gl).
#ifndef SPACEFUSION_SRC_SCHEDULE_PARTITIONER_H_
#define SPACEFUSION_SRC_SCHEDULE_PARTITIONER_H_

#include <utility>
#include <vector>

#include "src/schedule/resource_aware.h"

namespace spacefusion {

// Valid split points: prefix op counts at sub-SMG boundaries, ascending,
// excluding 0 and the full op count.
std::vector<int> SubSmgBoundaries(const Graph& graph);

// True when the ops in [begin, end) contain no All-to-One-bearing operator
// (used by Sec. 5.3 candidate exploration: non-A2O sub-SMGs are the ones
// worth re-attaching to the latter SMG).
bool SegmentIsNonA2o(const Graph& graph, int begin, int end);

// Splits at `prefix_ops`: the first graph contains ops [0, prefix_ops), the
// second the rest; cut tensors are duplicated as outputs/inputs.
std::pair<Graph, Graph> SplitGraph(const Graph& graph, int prefix_ops);

// One round of Algorithm 2: finds the largest schedulable prefix. Returns
// the sliced front, its search space, and the remaining latter graph.
struct PartitionOutcome {
  SlicingResult front;
  Graph rest;
  bool has_rest = false;
  // Sec. 5.3: an alternative cut one non-A2O sub-SMG earlier, when legal.
  // Tuning picks between the two candidates.
  std::vector<int> alternative_cuts;
};

StatusOr<PartitionOutcome> PartitionOnce(const Graph& graph, const ResourceConfig& rc,
                                         const SlicingOptions& options);

// Splits at every compute-intensity boundary: each matmul becomes its own
// graph, maximal runs of memory-intensive ops stay together. This is the
// conservative candidate program of Sec. 5.3's exploration — aggressive
// fusion is not always profitable (e.g. giant-weight GEMM chains whose
// operands exceed L2), and the tuner picks between the fused and the split
// candidates by measurement.
std::vector<Graph> SplitAtComputeBoundaries(const Graph& graph);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SCHEDULE_PARTITIONER_H_
