#include "src/schedule/pipeline.h"

#include <optional>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"
#include "src/support/thread_pool.h"

namespace spacefusion {

namespace {

// Compiles `graph` into a kernel sequence, partitioning as needed. On the
// first partition round that offers an alternative cut, `alt_cut` receives
// it (only the first is explored — deeper enumeration showed no gains in the
// paper's experiments).
Status CompileChain(const Graph& graph, const ResourceConfig& rc, const SlicingOptions& options,
                    ProgramCandidate* out, int* alt_cut, Graph* alt_graph) {
  ScopedSpan chain_span("pipeline.compile_chain");
  chain_span.Arg("graph", graph.name());
  Graph current = graph;
  for (int round = 0; round < 64; ++round) {
    StatusOr<SlicingResult> sliced = ResourceAwareSlicing(current, rc, options);
    if (sliced.ok()) {
      out->kernels.push_back(std::move(sliced).value());
      chain_span.Arg("partition_rounds", out->partition_rounds);
      return Status::Ok();
    }
    if (sliced.status().code() != StatusCode::kUnschedulable) {
      return sliced.status();
    }
    SF_ASSIGN_OR_RETURN(PartitionOutcome part, PartitionOnce(current, rc, options));
    ++out->partition_rounds;
    SF_COUNTER_ADD("pipeline.partition_rounds", 1);
    // Alternatives are only explored for the first cut; the rebuilt
    // candidate re-compiles the whole chain from that cut, so a later-round
    // alternative would discard the kernels already emitted before it.
    if (alt_cut != nullptr && *alt_cut < 0 && out->kernels.empty() &&
        !part.alternative_cuts.empty()) {
      *alt_cut = part.alternative_cuts.front();
      *alt_graph = current;
    }
    out->kernels.push_back(std::move(part.front));
    if (!part.has_rest) {
      chain_span.Arg("partition_rounds", out->partition_rounds);
      return Status::Ok();
    }
    current = std::move(part.rest);
  }
  return Internal(StrCat("partitioning of ", graph.name(), " did not converge"));
}

}  // namespace

StatusOr<PipelineResult> RunSlicingPipeline(const Graph& graph, const ResourceConfig& rc,
                                            const SlicingOptions& options) {
  PipelineResult result;

  ProgramCandidate primary;
  int alt_cut = -1;
  Graph alt_graph;
  SF_RETURN_IF_ERROR(CompileChain(graph, rc, options, &primary, &alt_cut, &alt_graph));
  result.candidates.push_back(std::move(primary));

  // Sec. 5.3 candidate exploration: re-run with the alternative cut applied
  // up-front (the non-A2O sub-SMG joins the latter graph).
  if (alt_cut > 0) {
    SF_TRACE_SPAN("pipeline.alternative_candidate");
    SF_COUNTER_ADD("pipeline.alternative_candidates", 1);
    auto [front, back] = SplitGraph(alt_graph, alt_cut);
    // The front slice and the back chain touch disjoint graphs, so they
    // compile concurrently; the merge below reads both results only after
    // the ParallelFor barrier.
    std::optional<StatusOr<SlicingResult>> front_sliced;
    ProgramCandidate back_chain;
    Status back_status;
    PhaseAccumulator* phase_stack = obs_internal::CurrentPhaseAccumulator();
    GlobalThreadPool().ParallelFor(2, [&, phase_stack](std::int64_t begin, std::int64_t end) {
      ScopedPhaseHandoff handoff(phase_stack);
      for (std::int64_t i = begin; i < end; ++i) {
        if (i == 0) {
          front_sliced = ResourceAwareSlicing(front, rc, options);
        } else {
          back_status = CompileChain(back, rc, options, &back_chain, nullptr, nullptr);
        }
      }
    });
    if (front_sliced->ok() && back_status.ok()) {
      ProgramCandidate alternative;
      alternative.kernels.push_back(std::move(*front_sliced).value());
      for (SlicingResult& kernel : back_chain.kernels) {
        alternative.kernels.push_back(std::move(kernel));
      }
      alternative.partition_rounds = 1 + back_chain.partition_rounds;
      result.candidates.push_back(std::move(alternative));
    }
  }
  return result;
}

}  // namespace spacefusion
