#include "src/schedule/serialize.h"

#include "src/support/string_util.h"

namespace spacefusion {

namespace {

// Enum fields travel as one byte; readers must range-check before the
// static_cast because a corrupted byte would otherwise become an
// out-of-range enum value (UB, and switch-based consumers would misbehave).
template <typename E>
Status ReadEnum(ByteReader* r, E* out, std::uint8_t num_values, const char* what) {
  std::uint8_t v = 0;
  SF_RETURN_IF_ERROR(r->U8(&v));
  if (v >= num_values) {
    return DataLoss(StrCat("invalid ", what, " value ", static_cast<int>(v)));
  }
  *out = static_cast<E>(v);
  return Status::Ok();
}

template <typename E>
void WriteEnum(ByteWriter* w, E v) {
  w->U8(static_cast<std::uint8_t>(v));
}

Status CheckIndex(std::int64_t value, std::int64_t limit, const char* what) {
  if (value < 0 || value >= limit) {
    return DataLoss(StrCat("invalid ", what, " index ", value, " (limit ", limit, ")"));
  }
  return Status::Ok();
}

// kNoDim / kInvalidTensor style fields: -1 is legal, anything else must be a
// valid index.
Status CheckIndexOrNone(std::int64_t value, std::int64_t limit, const char* what) {
  if (value == -1) {
    return Status::Ok();
  }
  return CheckIndex(value, limit, what);
}

}  // namespace

// --- Graph ------------------------------------------------------------------

void SerializeGraph(const Graph& graph, ByteWriter* w) {
  w->Str(graph.name());
  w->U64(graph.tensors().size());
  for (const TensorInfo& t : graph.tensors()) {
    w->Str(t.name);
    w->I64Vec(t.shape.dims());
    WriteEnum(w, t.dtype);
    WriteEnum(w, t.kind);
    w->F32(t.constant_value);
  }
  w->U64(graph.ops().size());
  for (const Op& op : graph.ops()) {
    w->Str(op.name);
    WriteEnum(w, op.kind);
    WriteEnum(w, op.attrs.unary);
    WriteEnum(w, op.attrs.binary);
    WriteEnum(w, op.attrs.reduce);
    w->Bool(op.attrs.transpose_a);
    w->Bool(op.attrs.transpose_b);
    w->I32Vec(op.inputs);
    w->I32(op.output);
  }
}

Status DeserializeGraph(ByteReader* r, Graph* graph) {
  std::string name;
  SF_RETURN_IF_ERROR(r->Str(&name));
  Graph out(std::move(name));

  std::uint64_t num_tensors = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_tensors, 1));
  for (std::uint64_t i = 0; i < num_tensors; ++i) {
    TensorInfo t;
    SF_RETURN_IF_ERROR(r->Str(&t.name));
    std::vector<std::int64_t> dims;
    SF_RETURN_IF_ERROR(r->I64Vec(&dims));
    for (std::int64_t d : dims) {
      if (d < 0) {
        return DataLoss(StrCat("negative tensor extent ", d));
      }
    }
    t.shape = Shape(std::move(dims));
    SF_RETURN_IF_ERROR(ReadEnum(r, &t.dtype, 3, "dtype"));
    SF_RETURN_IF_ERROR(ReadEnum(r, &t.kind, 5, "tensor kind"));
    SF_RETURN_IF_ERROR(r->F32(&t.constant_value));
    out.AddTensor(std::move(t));
  }

  std::uint64_t num_ops = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_ops, 1));
  const std::int64_t tensor_limit = static_cast<std::int64_t>(num_tensors);
  std::vector<bool> produced(num_tensors, false);
  for (std::uint64_t i = 0; i < num_ops; ++i) {
    Op op;
    SF_RETURN_IF_ERROR(r->Str(&op.name));
    SF_RETURN_IF_ERROR(ReadEnum(r, &op.kind, 4, "op kind"));
    SF_RETURN_IF_ERROR(ReadEnum(r, &op.attrs.unary, 10, "unary kind"));
    SF_RETURN_IF_ERROR(ReadEnum(r, &op.attrs.binary, 5, "binary kind"));
    SF_RETURN_IF_ERROR(ReadEnum(r, &op.attrs.reduce, 3, "reduce kind"));
    SF_RETURN_IF_ERROR(r->Bool(&op.attrs.transpose_a));
    SF_RETURN_IF_ERROR(r->Bool(&op.attrs.transpose_b));
    SF_RETURN_IF_ERROR(r->I32Vec(&op.inputs));
    for (TensorId in : op.inputs) {
      SF_RETURN_IF_ERROR(CheckIndex(in, tensor_limit, "op input tensor"));
    }
    SF_RETURN_IF_ERROR(r->I32(&op.output));
    SF_RETURN_IF_ERROR(CheckIndex(op.output, tensor_limit, "op output tensor"));
    if (produced[static_cast<size_t>(op.output)]) {
      return DataLoss(StrCat("tensor ", op.output, " produced twice"));
    }
    produced[static_cast<size_t>(op.output)] = true;
    out.AddOp(std::move(op));
  }
  // Catches everything index checks cannot: non-topological op order and
  // shapes inconsistent with op semantics.
  Status valid = out.Validate();
  if (!valid.ok()) {
    return DataLoss(StrCat("deserialized graph fails validation: ", valid.message()));
  }
  *graph = std::move(out);
  return Status::Ok();
}

// --- Smg --------------------------------------------------------------------

void SerializeSmg(const Smg& smg, ByteWriter* w) {
  w->Str(smg.name());
  w->U64(smg.dims().size());
  for (const FusedDim& d : smg.dims()) {
    w->Str(d.name);
    w->I64(d.extent);
  }
  w->U64(smg.spaces().size());
  for (const Space& s : smg.spaces()) {
    w->Str(s.name);
    WriteEnum(w, s.kind);
    WriteEnum(w, s.role);
    w->I32Vec(s.dims);
    w->I32(s.tensor);
    w->I32(s.op);
    w->I64(s.elem_bytes);
  }
  w->U64(smg.mappings().size());
  for (const Mapping& m : smg.mappings()) {
    w->I32(m.src);
    w->I32(m.dst);
    WriteEnum(w, m.kind);
    w->I32(m.dim);
    WriteEnum(w, m.reduce);
    w->I32(m.op);
  }
}

Status DeserializeSmg(ByteReader* r, Smg* smg) {
  std::string name;
  SF_RETURN_IF_ERROR(r->Str(&name));
  Smg out(std::move(name));

  std::uint64_t num_dims = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_dims, 1));
  for (std::uint64_t i = 0; i < num_dims; ++i) {
    std::string dim_name;
    std::int64_t extent = 0;
    SF_RETURN_IF_ERROR(r->Str(&dim_name));
    SF_RETURN_IF_ERROR(r->I64(&extent));
    if (extent < 1) {
      return DataLoss(StrCat("invalid fused-dim extent ", extent));
    }
    out.AddDim(std::move(dim_name), extent);
  }

  std::uint64_t num_spaces = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_spaces, 1));
  const std::int64_t dim_limit = static_cast<std::int64_t>(num_dims);
  for (std::uint64_t i = 0; i < num_spaces; ++i) {
    Space s;
    SF_RETURN_IF_ERROR(r->Str(&s.name));
    SF_RETURN_IF_ERROR(ReadEnum(r, &s.kind, 2, "space kind"));
    SF_RETURN_IF_ERROR(ReadEnum(r, &s.role, 6, "data role"));
    SF_RETURN_IF_ERROR(r->I32Vec(&s.dims));
    for (DimId d : s.dims) {
      SF_RETURN_IF_ERROR(CheckIndex(d, dim_limit, "space dim"));
    }
    SF_RETURN_IF_ERROR(r->I32(&s.tensor));
    SF_RETURN_IF_ERROR(r->I32(&s.op));
    SF_RETURN_IF_ERROR(r->I64(&s.elem_bytes));
    if (s.tensor < -1 || s.op < -1 || s.elem_bytes < 0) {
      return DataLoss("invalid space back-links");
    }
    // AddSpace sorts dims; a blob whose dims were not sorted would not
    // re-serialize canonically, so reject it outright.
    for (size_t d = 1; d < s.dims.size(); ++d) {
      if (s.dims[d - 1] >= s.dims[d]) {
        return DataLoss("space dims not strictly ascending");
      }
    }
    out.AddSpace(std::move(s));
  }

  std::uint64_t num_mappings = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_mappings, 1));
  const std::int64_t space_limit = static_cast<std::int64_t>(num_spaces);
  for (std::uint64_t i = 0; i < num_mappings; ++i) {
    Mapping m;
    SF_RETURN_IF_ERROR(r->I32(&m.src));
    SF_RETURN_IF_ERROR(r->I32(&m.dst));
    SF_RETURN_IF_ERROR(ReadEnum(r, &m.kind, 3, "mapping kind"));
    SF_RETURN_IF_ERROR(r->I32(&m.dim));
    SF_RETURN_IF_ERROR(ReadEnum(r, &m.reduce, 4, "reduce-op kind"));
    SF_RETURN_IF_ERROR(r->I32(&m.op));
    SF_RETURN_IF_ERROR(CheckIndex(m.src, space_limit, "mapping src"));
    SF_RETURN_IF_ERROR(CheckIndex(m.dst, space_limit, "mapping dst"));
    if (m.op < -1) {
      return DataLoss(StrCat("invalid mapping op ", m.op));
    }
    if (m.kind == MappingKind::kOneToOne) {
      SF_RETURN_IF_ERROR(CheckIndexOrNone(m.dim, dim_limit, "mapping dim"));
    } else {
      // Smg::AddMapping SF_CHECKs that directional mappings carry a dim.
      SF_RETURN_IF_ERROR(CheckIndex(m.dim, dim_limit, "directional mapping dim"));
    }
    out.AddMapping(m);
  }
  *smg = std::move(out);
  return Status::Ok();
}

// --- SmgBuildResult ---------------------------------------------------------

void SerializeSmgBuildResult(const SmgBuildResult& built, ByteWriter* w) {
  SerializeSmg(built.smg, w);
  w->I32Vec(built.tensor_space);
  w->I32Vec(built.op_space);
  w->U64(built.tensor_axis_dims.size());
  for (const std::vector<DimId>& axis_dims : built.tensor_axis_dims) {
    w->I32Vec(axis_dims);
  }
}

Status DeserializeSmgBuildResult(ByteReader* r, SmgBuildResult* built) {
  SmgBuildResult out;
  SF_RETURN_IF_ERROR(DeserializeSmg(r, &out.smg));
  const std::int64_t space_limit = static_cast<std::int64_t>(out.smg.spaces().size());
  const std::int64_t dim_limit = out.smg.num_dims();
  SF_RETURN_IF_ERROR(r->I32Vec(&out.tensor_space));
  for (SpaceId s : out.tensor_space) {
    SF_RETURN_IF_ERROR(CheckIndexOrNone(s, space_limit, "tensor space"));
  }
  SF_RETURN_IF_ERROR(r->I32Vec(&out.op_space));
  for (SpaceId s : out.op_space) {
    SF_RETURN_IF_ERROR(CheckIndexOrNone(s, space_limit, "op space"));
  }
  std::uint64_t num_axis_lists = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_axis_lists, 1));
  out.tensor_axis_dims.resize(num_axis_lists);
  for (std::uint64_t i = 0; i < num_axis_lists; ++i) {
    SF_RETURN_IF_ERROR(r->I32Vec(&out.tensor_axis_dims[i]));
    for (DimId d : out.tensor_axis_dims[i]) {
      SF_RETURN_IF_ERROR(CheckIndexOrNone(d, dim_limit, "tensor axis dim"));
    }
  }
  *built = std::move(out);
  return Status::Ok();
}

// --- TemporalPlan -----------------------------------------------------------

void SerializeTemporalPlan(const TemporalPlan& plan, ByteWriter* w) {
  w->I32(plan.dim);
  w->U64(plan.aggregations.size());
  for (const ReductionAggregation& agg : plan.aggregations) {
    w->I32(agg.op);
    WriteEnum(w, agg.combiner);
    w->Bool(agg.finalize_divide_by_extent);
    w->U64(agg.update.size());
    for (const UpdateFactor& f : agg.update) {
      WriteEnum(w, f.prim);
      w->I32(f.source);
      w->I32(f.power);
    }
  }
}

Status DeserializeTemporalPlan(ByteReader* r, TemporalPlan* plan) {
  TemporalPlan out;
  SF_RETURN_IF_ERROR(r->I32(&out.dim));
  if (out.dim < -1) {
    return DataLoss(StrCat("invalid temporal dim ", out.dim));
  }
  std::uint64_t num_aggs = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_aggs, 1));
  out.aggregations.resize(num_aggs);
  for (std::uint64_t i = 0; i < num_aggs; ++i) {
    ReductionAggregation& agg = out.aggregations[i];
    SF_RETURN_IF_ERROR(r->I32(&agg.op));
    SF_RETURN_IF_ERROR(ReadEnum(r, &agg.combiner, 4, "aggregation combiner"));
    SF_RETURN_IF_ERROR(r->Bool(&agg.finalize_divide_by_extent));
    std::uint64_t num_factors = 0;
    SF_RETURN_IF_ERROR(r->Count(&num_factors, 1));
    agg.update.resize(num_factors);
    for (std::uint64_t j = 0; j < num_factors; ++j) {
      UpdateFactor& f = agg.update[j];
      SF_RETURN_IF_ERROR(ReadEnum(r, &f.prim, 2, "update factor primitive"));
      SF_RETURN_IF_ERROR(r->I32(&f.source));
      SF_RETURN_IF_ERROR(r->I32(&f.power));
    }
  }
  *plan = std::move(out);
  return Status::Ok();
}

// --- SmgSchedule / ScheduledProgram -----------------------------------------

namespace {

void SerializeDimSlice(const DimSlice& slice, ByteWriter* w) {
  w->I32(slice.dim);
  w->I64(slice.block);
}

Status DeserializeDimSlice(ByteReader* r, std::int64_t dim_limit, DimSlice* slice) {
  SF_RETURN_IF_ERROR(r->I32(&slice->dim));
  SF_RETURN_IF_ERROR(r->I64(&slice->block));
  SF_RETURN_IF_ERROR(CheckIndexOrNone(slice->dim, dim_limit, "sliced dim"));
  if (slice->block < 1) {
    return DataLoss(StrCat("invalid block size ", slice->block));
  }
  return Status::Ok();
}

}  // namespace

void SerializeSmgSchedule(const SmgSchedule& schedule, ByteWriter* w) {
  SerializeGraph(schedule.graph, w);
  SerializeSmgBuildResult(schedule.built, w);
  w->U64(schedule.spatial.size());
  for (const DimSlice& slice : schedule.spatial) {
    SerializeDimSlice(slice, w);
  }
  w->Bool(schedule.has_temporal);
  SerializeDimSlice(schedule.temporal, w);
  SerializeTemporalPlan(schedule.plan, w);
  w->U64(schedule.memory.tensor_level.size());
  for (MemLevel level : schedule.memory.tensor_level) {
    WriteEnum(w, level);
  }
  w->I64(schedule.memory.smem_bytes);
  w->I64(schedule.memory.reg_bytes);
}

Status DeserializeSmgSchedule(ByteReader* r, SmgSchedule* schedule) {
  SmgSchedule out;
  SF_RETURN_IF_ERROR(DeserializeGraph(r, &out.graph));
  SF_RETURN_IF_ERROR(DeserializeSmgBuildResult(r, &out.built));
  // The build result must be sized for this graph: downstream consumers index
  // tensor_space / op_space / tensor_axis_dims by TensorId / OpId unchecked.
  const size_t num_tensors = out.graph.tensors().size();
  const size_t num_ops = out.graph.ops().size();
  if (out.built.tensor_space.size() != num_tensors || out.built.op_space.size() != num_ops ||
      out.built.tensor_axis_dims.size() != num_tensors) {
    return DataLoss("SMG build result not sized for its graph");
  }
  for (size_t t = 0; t < num_tensors; ++t) {
    if (out.built.tensor_axis_dims[t].size() !=
        static_cast<size_t>(out.graph.tensor(static_cast<TensorId>(t)).shape.rank())) {
      return DataLoss("tensor axis dims not sized for tensor rank");
    }
  }
  // Smg back-links into the graph can only be range-checked here, where both
  // sides are visible; lowering dereferences them unchecked.
  const std::int64_t tensor_limit = static_cast<std::int64_t>(num_tensors);
  for (const Space& s : out.built.smg.spaces()) {
    SF_RETURN_IF_ERROR(CheckIndexOrNone(s.tensor, tensor_limit, "space tensor back-link"));
    SF_RETURN_IF_ERROR(
        CheckIndexOrNone(s.op, static_cast<std::int64_t>(num_ops), "space op back-link"));
  }
  for (const Mapping& m : out.built.smg.mappings()) {
    SF_RETURN_IF_ERROR(
        CheckIndexOrNone(m.op, static_cast<std::int64_t>(num_ops), "mapping op back-link"));
  }
  const std::int64_t dim_limit = out.built.smg.num_dims();
  std::uint64_t num_spatial = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_spatial, 1));
  out.spatial.resize(num_spatial);
  for (std::uint64_t i = 0; i < num_spatial; ++i) {
    SF_RETURN_IF_ERROR(DeserializeDimSlice(r, dim_limit, &out.spatial[i]));
  }
  SF_RETURN_IF_ERROR(r->Bool(&out.has_temporal));
  SF_RETURN_IF_ERROR(DeserializeDimSlice(r, dim_limit, &out.temporal));
  SF_RETURN_IF_ERROR(DeserializeTemporalPlan(r, &out.plan));
  SF_RETURN_IF_ERROR(CheckIndexOrNone(out.plan.dim, dim_limit, "temporal plan dim"));
  const std::int64_t op_limit = static_cast<std::int64_t>(num_ops);
  for (const ReductionAggregation& agg : out.plan.aggregations) {
    SF_RETURN_IF_ERROR(CheckIndex(agg.op, op_limit, "aggregation op"));
    for (const UpdateFactor& f : agg.update) {
      SF_RETURN_IF_ERROR(CheckIndexOrNone(f.source, op_limit, "update factor source"));
    }
  }
  std::uint64_t num_levels = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_levels, 1));
  // tensor_level is indexed by TensorId; an unplanned (empty) map is the only
  // other legal shape.
  if (num_levels != 0 && num_levels != num_tensors) {
    return DataLoss("memory plan not sized for its graph");
  }
  out.memory.tensor_level.resize(num_levels);
  for (std::uint64_t i = 0; i < num_levels; ++i) {
    SF_RETURN_IF_ERROR(ReadEnum(r, &out.memory.tensor_level[i], 4, "memory level"));
  }
  SF_RETURN_IF_ERROR(r->I64(&out.memory.smem_bytes));
  SF_RETURN_IF_ERROR(r->I64(&out.memory.reg_bytes));
  *schedule = std::move(out);
  return Status::Ok();
}

void SerializeScheduledProgram(const ScheduledProgram& program, ByteWriter* w) {
  w->U64(program.kernels.size());
  for (const SmgSchedule& kernel : program.kernels) {
    SerializeSmgSchedule(kernel, w);
  }
}

Status DeserializeScheduledProgram(ByteReader* r, ScheduledProgram* program) {
  std::uint64_t num_kernels = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_kernels, 1));
  program->kernels.resize(num_kernels);
  for (std::uint64_t i = 0; i < num_kernels; ++i) {
    SF_RETURN_IF_ERROR(DeserializeSmgSchedule(r, &program->kernels[i]));
  }
  return Status::Ok();
}

// --- KernelSpec / ExecutionReport -------------------------------------------

namespace {

void SerializeTraffic(const TensorTraffic& t, ByteWriter* w) {
  w->Str(t.tensor);
  w->I64(t.unique_bytes);
  w->I64(t.per_block_bytes);
  w->F64(t.touches_per_byte);
  w->Bool(t.shared_across_blocks);
  w->I64(t.base_address);
}

Status DeserializeTraffic(ByteReader* r, TensorTraffic* t) {
  SF_RETURN_IF_ERROR(r->Str(&t->tensor));
  SF_RETURN_IF_ERROR(r->I64(&t->unique_bytes));
  SF_RETURN_IF_ERROR(r->I64(&t->per_block_bytes));
  SF_RETURN_IF_ERROR(r->F64(&t->touches_per_byte));
  SF_RETURN_IF_ERROR(r->Bool(&t->shared_across_blocks));
  SF_RETURN_IF_ERROR(r->I64(&t->base_address));
  if (t->unique_bytes < 0 || t->per_block_bytes < 0 || t->base_address < 0) {
    return DataLoss("negative traffic bytes");
  }
  return Status::Ok();
}

}  // namespace

void SerializeKernelSpec(const KernelSpec& kernel, ByteWriter* w) {
  w->Str(kernel.name);
  w->I64(kernel.grid);
  w->I32(kernel.threads_per_block);
  w->I64(kernel.smem_per_block);
  w->I64(kernel.regs_per_block_bytes);
  w->I64(kernel.flops);
  w->F64(kernel.compute_efficiency);
  w->F64(kernel.bandwidth_efficiency);
  w->U64(kernel.reads.size());
  for (const TensorTraffic& t : kernel.reads) {
    SerializeTraffic(t, w);
  }
  w->U64(kernel.writes.size());
  for (const TensorTraffic& t : kernel.writes) {
    SerializeTraffic(t, w);
  }
}

Status DeserializeKernelSpec(ByteReader* r, KernelSpec* kernel) {
  KernelSpec out;
  SF_RETURN_IF_ERROR(r->Str(&out.name));
  SF_RETURN_IF_ERROR(r->I64(&out.grid));
  SF_RETURN_IF_ERROR(r->I32(&out.threads_per_block));
  SF_RETURN_IF_ERROR(r->I64(&out.smem_per_block));
  SF_RETURN_IF_ERROR(r->I64(&out.regs_per_block_bytes));
  SF_RETURN_IF_ERROR(r->I64(&out.flops));
  SF_RETURN_IF_ERROR(r->F64(&out.compute_efficiency));
  SF_RETURN_IF_ERROR(r->F64(&out.bandwidth_efficiency));
  if (out.grid < 1 || out.threads_per_block < 1 || out.smem_per_block < 0 || out.flops < 0) {
    return DataLoss("invalid kernel geometry");
  }
  std::uint64_t num_reads = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_reads, 1));
  out.reads.resize(num_reads);
  for (std::uint64_t i = 0; i < num_reads; ++i) {
    SF_RETURN_IF_ERROR(DeserializeTraffic(r, &out.reads[i]));
  }
  std::uint64_t num_writes = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_writes, 1));
  out.writes.resize(num_writes);
  for (std::uint64_t i = 0; i < num_writes; ++i) {
    SF_RETURN_IF_ERROR(DeserializeTraffic(r, &out.writes[i]));
  }
  *kernel = std::move(out);
  return Status::Ok();
}

void SerializeExecutionReport(const ExecutionReport& report, ByteWriter* w) {
  w->F64(report.time_us);
  w->I32(report.kernel_count);
  w->I64(report.flops);
  w->I64(report.dram_bytes);
  w->I64(report.l1_accesses);
  w->I64(report.l1_misses);
  w->I64(report.l2_accesses);
  w->I64(report.l2_misses);
}

Status DeserializeExecutionReport(ByteReader* r, ExecutionReport* report) {
  SF_RETURN_IF_ERROR(r->F64(&report->time_us));
  SF_RETURN_IF_ERROR(r->I32(&report->kernel_count));
  SF_RETURN_IF_ERROR(r->I64(&report->flops));
  SF_RETURN_IF_ERROR(r->I64(&report->dram_bytes));
  SF_RETURN_IF_ERROR(r->I64(&report->l1_accesses));
  SF_RETURN_IF_ERROR(r->I64(&report->l1_misses));
  SF_RETURN_IF_ERROR(r->I64(&report->l2_accesses));
  SF_RETURN_IF_ERROR(r->I64(&report->l2_misses));
  return Status::Ok();
}

}  // namespace spacefusion
