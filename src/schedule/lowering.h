// Lowers an SmgSchedule to a simulator KernelSpec.
//
// This is the analogue of the paper's code-generation stage (which emits
// Triton): it translates slicing decisions and the memory plan into the
// grid geometry, resource usage, arithmetic work, and global-memory traffic
// that the GPU simulator executes.
#ifndef SPACEFUSION_SRC_SCHEDULE_LOWERING_H_
#define SPACEFUSION_SRC_SCHEDULE_LOWERING_H_

#include "src/schedule/schedule_ir.h"
#include "src/sim/kernel.h"

namespace spacefusion {

// Lowers one scheduled SMG (one fused kernel). `addresses` assigns stable
// simulated addresses across kernels so the trace simulator sees
// producer-consumer reuse.
KernelSpec LowerSchedule(const SmgSchedule& schedule, AddressMap* addresses);

// Lowers a partitioned program: one kernel per SmgSchedule.
std::vector<KernelSpec> LowerProgram(const ScheduledProgram& program, AddressMap* addresses);

// Block-shape-dependent fraction of tensor-core peak a matmul tile reaches.
double MatmulTileEfficiency(std::int64_t tile_m, std::int64_t tile_n);

// ---- Staged-fidelity screening ---------------------------------------------
//
// The tuner's cheap first stage avoids full lowering per config: the
// config-independent work is hoisted into a ScreenContext once per kernel,
// the config-dependent part is the ConfigFootprint captured at enumeration
// time, and LowerForScreening combines them into a relaxed KernelSpec in
// O(1). CostModel::ScreenKernel of that spec is a lower bound on
// CostModel::EstimateKernel of the fully lowered spec for the same config
// (arithmetic work omits epilogue-update flops, read traffic uses the
// no-reuse DRAM lower bound; occupancy inputs are exact).

// Config-independent screening ingredients, computed once per kernel.
struct ScreenContext {
  std::int64_t flops_static = 0;    // executed once regardless of the config
  std::int64_t flops_temporal = 0;  // re-executed once per serial intra-block
  std::int64_t write_bytes = 0;     // output traffic (config-independent)
};

ScreenContext MakeScreenContext(const SmgSchedule& schedule);

// Summarizes the schedule's CURRENTLY APPLIED config (ApplyConfig +
// PlanMemory must have run) into a screening footprint.
ConfigFootprint ComputeConfigFootprint(const SmgSchedule& schedule);

// Builds the relaxed KernelSpec the screening stage scores.
KernelSpec LowerForScreening(const ScreenContext& ctx, const ConfigFootprint& fp);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SCHEDULE_LOWERING_H_
