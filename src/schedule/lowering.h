// Lowers an SmgSchedule to a simulator KernelSpec.
//
// This is the analogue of the paper's code-generation stage (which emits
// Triton): it translates slicing decisions and the memory plan into the
// grid geometry, resource usage, arithmetic work, and global-memory traffic
// that the GPU simulator executes.
#ifndef SPACEFUSION_SRC_SCHEDULE_LOWERING_H_
#define SPACEFUSION_SRC_SCHEDULE_LOWERING_H_

#include "src/schedule/schedule_ir.h"
#include "src/sim/kernel.h"

namespace spacefusion {

// Lowers one scheduled SMG (one fused kernel). `addresses` assigns stable
// simulated addresses across kernels so the trace simulator sees
// producer-consumer reuse.
KernelSpec LowerSchedule(const SmgSchedule& schedule, AddressMap* addresses);

// Lowers a partitioned program: one kernel per SmgSchedule.
std::vector<KernelSpec> LowerProgram(const ScheduledProgram& program, AddressMap* addresses);

// Block-shape-dependent fraction of tensor-core peak a matmul tile reaches.
double MatmulTileEfficiency(std::int64_t tile_m, std::int64_t tile_n);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SCHEDULE_LOWERING_H_
