#include "src/schedule/resource_aware.h"

#include "src/slicing/slicers.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

StatusOr<SlicingResult> ResourceAwareSlicing(const Graph& graph, const ResourceConfig& rc,
                                             const SlicingOptions& options) {
  SF_ASSIGN_OR_RETURN(SmgBuildResult built, BuildSmg(graph));

  SlicingResult result;
  result.schedule.graph = graph;
  result.schedule.built = std::move(built);
  SmgSchedule& sched = result.schedule;

  // --- Spatial slicing (Alg. 1 lines 3-8) --------------------------------
  std::vector<DimId> spatial_dims = SpatialSlicer::GetDims(sched.built.smg);
  if (spatial_dims.empty()) {
    return Unschedulable(
        StrCat("SMG ", graph.name(), " has no spatially sliceable dim; cannot parallelize"));
  }
  for (DimId d : spatial_dims) {
    DimSlice s;
    s.dim = d;
    s.block = 1;
    sched.spatial.push_back(s);
  }

  std::vector<ScheduleConfig> spatial_configs =
      EnumerateConfigs(&sched, rc, /*include_temporal=*/false, options.search);
  for (ScheduleConfig& c : spatial_configs) {
    result.configs.push_back(std::move(c));
  }

  // --- Temporal slicing (Alg. 1 lines 9-14) ------------------------------
  // Attempted whether or not spatial slicing alone met the resource bounds:
  // some SMGs only become efficient (or feasible at all) once serialized.
  if (options.enable_temporal) {
    StatusOr<TemporalChoice> choice =
        TemporalSlicer::GetPriorDim(graph, sched.built, spatial_dims, options.allow_uta);
    if (choice.ok()) {
      sched.has_temporal = true;
      sched.temporal.dim = choice->dim;
      sched.temporal.block = sched.built.smg.dim(choice->dim).extent;
      sched.plan = choice->plan;
      std::vector<ScheduleConfig> temporal_configs =
          EnumerateConfigs(&sched, rc, /*include_temporal=*/true, options.search);
      for (ScheduleConfig& c : temporal_configs) {
        result.configs.push_back(std::move(c));
      }
    }
  }

  if (result.configs.empty()) {
    return Unschedulable(StrCat("SMG ", graph.name(),
                                " exceeds hardware resource bounds under every enumerated "
                                "configuration"));
  }
  // Leave the schedule on its first feasible config so callers always see a
  // consistent memory plan.
  sched.ApplyConfig(result.configs.front());
  PlanMemory(&sched, rc);
  return result;
}

}  // namespace spacefusion
