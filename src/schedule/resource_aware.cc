#include "src/schedule/resource_aware.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/slicing/slicers.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

StatusOr<SlicingResult> ResourceAwareSlicing(const Graph& graph, const ResourceConfig& rc,
                                             const SlicingOptions& options) {
  ScopedSpan slicing_span("slicing.resource_aware", "slicing");
  slicing_span.Arg("graph", graph.name());

  SmgBuildResult built;
  {
    SF_TRACE_SPAN("slicing.build_smg", "slicing");
    SF_ASSIGN_OR_RETURN(built, BuildSmg(graph));
  }
  SF_COUNTER_ADD("slicing.smgs_built", 1);

  SlicingResult result;
  result.schedule.graph = graph;
  result.schedule.built = std::move(built);
  SmgSchedule& sched = result.schedule;

  // --- Spatial slicing (Alg. 1 lines 3-8) --------------------------------
  {
    SF_TRACE_SPAN("slicing.spatial", "slicing");
    std::vector<DimId> spatial_dims = SpatialSlicer::GetDims(sched.built.smg);
    if (spatial_dims.empty()) {
      SF_COUNTER_ADD("slicing.unschedulable", 1);
      return Unschedulable(
          StrCat("SMG ", graph.name(), " has no spatially sliceable dim; cannot parallelize"));
    }
    for (DimId d : spatial_dims) {
      DimSlice s;
      s.dim = d;
      s.block = 1;
      sched.spatial.push_back(s);
    }

    std::vector<ScheduleConfig> spatial_configs = EnumerateConfigs(
        &sched, rc, /*include_temporal=*/false, options.search, &result.footprints);
    for (ScheduleConfig& c : spatial_configs) {
      result.configs.push_back(std::move(c));
    }
  }

  // --- Temporal slicing (Alg. 1 lines 9-14) ------------------------------
  // Attempted whether or not spatial slicing alone met the resource bounds:
  // some SMGs only become efficient (or feasible at all) once serialized.
  if (options.enable_temporal) {
    SF_TRACE_SPAN("slicing.temporal", "slicing");
    std::vector<DimId> spatial_dims;
    for (const DimSlice& s : sched.spatial) {
      spatial_dims.push_back(s.dim);
    }
    StatusOr<TemporalChoice> choice =
        TemporalSlicer::GetPriorDim(graph, sched.built, spatial_dims, options.allow_uta);
    if (choice.ok()) {
      sched.has_temporal = true;
      sched.temporal.dim = choice->dim;
      sched.temporal.block = sched.built.smg.dim(choice->dim).extent;
      sched.plan = choice->plan;
      std::vector<ScheduleConfig> temporal_configs = EnumerateConfigs(
          &sched, rc, /*include_temporal=*/true, options.search, &result.footprints);
      for (ScheduleConfig& c : temporal_configs) {
        result.configs.push_back(std::move(c));
      }
    }
  }
  slicing_span.Arg("configs", static_cast<std::int64_t>(result.configs.size()));

  if (result.configs.empty()) {
    SF_COUNTER_ADD("slicing.unschedulable", 1);
    return Unschedulable(StrCat("SMG ", graph.name(),
                                " exceeds hardware resource bounds under every enumerated "
                                "configuration"));
  }
  // Leave the schedule on its first feasible config so callers always see a
  // consistent memory plan.
  sched.ApplyConfig(result.configs.front());
  PlanMemory(&sched, rc);
  return result;
}

}  // namespace spacefusion
