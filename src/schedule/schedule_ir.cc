#include "src/schedule/schedule_ir.h"

#include "src/support/logging.h"
#include "src/support/math_util.h"
#include "src/support/string_util.h"

namespace spacefusion {

const char* MemLevelName(MemLevel level) {
  switch (level) {
    case MemLevel::kRegister:
      return "reg";
    case MemLevel::kShared:
      return "smem";
    case MemLevel::kGlobal:
      return "global";
    case MemLevel::kGlobalStreamed:
      return "global-streamed";
  }
  return "?";
}

std::string ScheduleConfig::ToString() const {
  std::ostringstream out;
  out << "spatial[" << StrJoin(spatial_blocks, ",") << "]";
  if (use_temporal) {
    out << " temporal_step=" << temporal_step;
  }
  return out.str();
}

std::int64_t SmgSchedule::NumBlocks() const {
  std::int64_t blocks = 1;
  for (const DimSlice& s : spatial) {
    blocks *= CeilDiv(built.smg.dim(s.dim).extent, s.block);
  }
  return blocks;
}

std::int64_t SmgSchedule::NumIntraBlocks() const {
  if (!has_temporal || temporal.block <= 0) {
    return 1;
  }
  return CeilDiv(built.smg.dim(temporal.dim).extent, temporal.block);
}

std::int64_t SmgSchedule::TileExtent(DimId dim) const {
  for (const DimSlice& s : spatial) {
    if (s.dim == dim) {
      return std::min(s.block, built.smg.dim(dim).extent);
    }
  }
  if (has_temporal && temporal.dim == dim) {
    return std::min(temporal.block, built.smg.dim(dim).extent);
  }
  return built.smg.dim(dim).extent;
}

void SmgSchedule::ApplyConfig(const ScheduleConfig& config) {
  SF_CHECK_EQ(config.spatial_blocks.size(), spatial.size());
  for (size_t i = 0; i < spatial.size(); ++i) {
    spatial[i].block = config.spatial_blocks[i];
  }
  if (has_temporal) {
    if (config.use_temporal && config.temporal_step > 0) {
      temporal.block = config.temporal_step;
    } else {
      // Temporal slicing disabled for this config: a single intra-block
      // spanning the whole dim.
      temporal.block = built.smg.dim(temporal.dim).extent;
    }
  }
}

std::string SmgSchedule::ToString() const {
  std::ostringstream out;
  out << "schedule " << graph.name() << ": grid=" << NumBlocks() << " [";
  for (const DimSlice& s : spatial) {
    out << " " << built.smg.dim(s.dim).name << "/" << s.block;
  }
  out << " ]";
  if (has_temporal) {
    out << " temporal " << built.smg.dim(temporal.dim).name << "/" << temporal.block << " x"
        << NumIntraBlocks();
  }
  out << " smem=" << memory.smem_bytes << "B regs=" << memory.reg_bytes << "B";
  return out.str();
}

}  // namespace spacefusion
