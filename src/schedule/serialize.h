// Binary (de)serialization of the schedule IR: everything a compiled
// program is made of — operator graphs, fused SMGs, slicing decisions,
// temporal aggregation plans, memory plans, lowered kernel specs, and
// simulator reports.
//
// This is the substrate of the persistent program cache (src/core
// program_store.h wraps it in a versioned, checksummed container): a
// schedule written by one process and read by another must behave
// bit-identically, so every double travels as its raw IEEE-754 bits and
// every structure serializes all the fields later stages read.
//
// Deserializers are built for untrusted bytes: they return Status (never
// crash) and validate cross-references — tensor/op/space/dim indices, enum
// ranges, producer uniqueness — before reconstructing, because Graph::AddOp
// and Smg::AddMapping enforce their invariants with SF_CHECK aborts.
// Serialization is canonical: deserializing and re-serializing any accepted
// blob reproduces the input bytes exactly.
#ifndef SPACEFUSION_SRC_SCHEDULE_SERIALIZE_H_
#define SPACEFUSION_SRC_SCHEDULE_SERIALIZE_H_

#include "src/schedule/schedule_ir.h"
#include "src/sim/kernel.h"
#include "src/support/binary_io.h"

namespace spacefusion {

void SerializeGraph(const Graph& graph, ByteWriter* w);
Status DeserializeGraph(ByteReader* r, Graph* graph);

void SerializeSmg(const Smg& smg, ByteWriter* w);
Status DeserializeSmg(ByteReader* r, Smg* smg);

void SerializeSmgBuildResult(const SmgBuildResult& built, ByteWriter* w);
Status DeserializeSmgBuildResult(ByteReader* r, SmgBuildResult* built);

void SerializeTemporalPlan(const TemporalPlan& plan, ByteWriter* w);
Status DeserializeTemporalPlan(ByteReader* r, TemporalPlan* plan);

void SerializeSmgSchedule(const SmgSchedule& schedule, ByteWriter* w);
Status DeserializeSmgSchedule(ByteReader* r, SmgSchedule* schedule);

void SerializeScheduledProgram(const ScheduledProgram& program, ByteWriter* w);
Status DeserializeScheduledProgram(ByteReader* r, ScheduledProgram* program);

void SerializeKernelSpec(const KernelSpec& kernel, ByteWriter* w);
Status DeserializeKernelSpec(ByteReader* r, KernelSpec* kernel);

void SerializeExecutionReport(const ExecutionReport& report, ByteWriter* w);
Status DeserializeExecutionReport(ByteReader* r, ExecutionReport* report);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SCHEDULE_SERIALIZE_H_
