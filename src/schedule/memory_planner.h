// Memory-hierarchy scheduling (paper Sec. 5.4) and the per-block resource
// accounting behind checkRsrc() in Algorithm 1.
//
// Placement rules:
//  * data spaces connected only through One-to-One mappings live in
//    registers (per-thread values, matmul accumulators);
//  * sources of One-to-Alls and sinks of All-to-Ones live in shared memory
//    (repeated access, inter-thread communication);
//  * kernel inputs/outputs live in global memory; small input tiles are
//    staged into shared memory, oversized shared operands (large weights)
//    are streamed through L2 instead.
// Footprints are computed with a liveness pass over the op sequence, so
// long chains (e.g. 20 fused MLP layers) only pay for the tiles that are
// simultaneously live.
#ifndef SPACEFUSION_SRC_SCHEDULE_MEMORY_PLANNER_H_
#define SPACEFUSION_SRC_SCHEDULE_MEMORY_PLANNER_H_

#include "src/schedule/schedule_ir.h"
#include "src/sim/arch.h"

namespace spacefusion {

// The hardware resource configuration (RCfg) that bounds a schedule.
struct ResourceConfig {
  std::int64_t smem_per_block_max = 96 * 1024;
  std::int64_t reg_per_block_max = 256 * 1024;

  static ResourceConfig FromArch(const GpuArch& arch) {
    ResourceConfig rc;
    rc.smem_per_block_max = arch.smem_per_block_max;
    rc.reg_per_block_max = arch.reg_per_block_max;
    return rc;
  }
};

// Computes level assignments and peak footprints for the schedule's current
// block sizes; stores the result into schedule->memory.
void PlanMemory(SmgSchedule* schedule, const ResourceConfig& rc);

// True when the planned footprints respect the per-block bounds.
bool CheckResources(const SmgSchedule& schedule, const ResourceConfig& rc);

// Bytes of one on-chip element of a tensor at a given level (accumulators
// are kept in FP32).
std::int64_t OnChipElemBytes(MemLevel level, std::int64_t storage_bytes);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SCHEDULE_MEMORY_PLANNER_H_
