// Resource-aware slicing — the paper's Algorithm 1.
//
// Spatial slicing first (all eligible dims), then temporal slicing of the
// highest-priority remaining dim; each stage enumerates the block-size
// configurations that respect the hardware resource bounds. The result is a
// schedule template plus its feasible search space; an empty search space
// means the SMG is unschedulable and must be partitioned (Algorithm 2).
#ifndef SPACEFUSION_SRC_SCHEDULE_RESOURCE_AWARE_H_
#define SPACEFUSION_SRC_SCHEDULE_RESOURCE_AWARE_H_

#include "src/schedule/search_space.h"
#include "src/support/status.h"

namespace spacefusion {

struct SlicingOptions {
  // Ablation toggles (paper Sec. 6.4): Base(SS) disables both; Base+AS
  // keeps auto-scheduling but no temporal slicing; Base+TS the reverse.
  bool enable_temporal = true;
  // false: dependency transformation (UTA) is unavailable — models Welder-
  // class tile-stitching compilers.
  bool allow_uta = true;
  SearchOptions search;
};

struct SlicingResult {
  SmgSchedule schedule;                 // slicing decisions (block sizes TBD)
  std::vector<ScheduleConfig> configs;  // feasible search space
  // Parallel to `configs`: the screening footprint captured while each
  // config was applied during enumeration (tuner stage-1 input).
  std::vector<ConfigFootprint> footprints;
};

// Runs Algorithm 1 on a subprogram. Fails with kUnschedulable when the SMG
// has no parallelizable dim or no config fits the resource bounds.
StatusOr<SlicingResult> ResourceAwareSlicing(const Graph& graph, const ResourceConfig& rc,
                                             const SlicingOptions& options = SlicingOptions());

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SCHEDULE_RESOURCE_AWARE_H_
