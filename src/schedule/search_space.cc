#include "src/schedule/search_space.h"

#include <algorithm>
#include <cstdlib>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/schedule/lowering.h"
#include "src/slicing/dim_analysis.h"
#include "src/support/math_util.h"

namespace spacefusion {

bool PruneDominatedFromEnv() {
  static const bool cached = [] {
    const char* env = std::getenv("SPACEFUSION_PRUNE_DOMINATED");
    return env != nullptr && *env != '\0' && *env != '0';
  }();
  return cached;
}

namespace {

// True when `fp` is dominated by an already-kept config of this enumeration
// pass (entries from `first` on): no better on any performance-relevant axis
// and strictly worse on at least one of the pruning axes (smem footprint,
// projected read traffic, parallelism).
bool IsDominated(const ConfigFootprint& fp, const std::vector<ConfigFootprint>& kept,
                 size_t first) {
  for (size_t i = first; i < kept.size(); ++i) {
    const ConfigFootprint& g = kept[i];
    bool no_better = g.smem_bytes <= fp.smem_bytes && g.reg_bytes <= fp.reg_bytes &&
                     g.read_traffic_bytes <= fp.read_traffic_bytes && g.grid >= fp.grid &&
                     g.intra_steps <= fp.intra_steps && g.compute_eff >= fp.compute_eff;
    bool strictly_worse = g.smem_bytes < fp.smem_bytes ||
                          g.read_traffic_bytes < fp.read_traffic_bytes || g.grid > fp.grid;
    if (no_better && strictly_worse) {
      return true;
    }
  }
  return false;
}

// Candidate tile extents for one spatial dim.
std::vector<std::int64_t> SpatialCandidates(const Smg& smg, DimId dim, std::int64_t max_block,
                                            std::int64_t min_block) {
  std::int64_t extent = smg.dim(dim).extent;
  DimClass cls = AnalyzeDim(smg, dim).cls;
  if (cls == DimClass::kFree) {
    // Dependency-free dims (batch, heads) parallelize fully; tiling them
    // only reduces parallelism without any locality benefit.
    return {1};
  }
  std::vector<std::int64_t> out;
  for (std::int64_t b = min_block; b <= std::min(extent, max_block); b *= 2) {
    out.push_back(b);
  }
  if (out.empty()) {
    out.push_back(std::min(extent, min_block));
  }
  if (extent <= max_block && out.back() != extent) {
    out.push_back(extent);
  }
  return out;
}

std::vector<std::int64_t> TemporalCandidates(const Smg& smg, DimId dim, std::int64_t max_block) {
  std::int64_t extent = smg.dim(dim).extent;
  std::vector<std::int64_t> out;
  for (std::int64_t b = 16; b <= std::min(extent, max_block); b *= 2) {
    out.push_back(b);
  }
  if (out.empty()) {
    out.push_back(extent);
  }
  return out;
}

}  // namespace

std::vector<ScheduleConfig> EnumerateConfigs(SmgSchedule* schedule, const ResourceConfig& rc,
                                             bool include_temporal, const SearchOptions& options,
                                             std::vector<ConfigFootprint>* footprints) {
  // The span name is load-bearing: the compiler's Table 4 "enumCfg" column
  // is the accumulated duration of "search.enum_cfg" spans.
  ScopedSpan span("search.enum_cfg", "search");
  span.Arg("graph", schedule->graph.name()).Arg("temporal", include_temporal ? 1 : 0);
  const Smg& smg = schedule->built.smg;

  std::vector<std::vector<std::int64_t>> per_dim;
  per_dim.reserve(schedule->spatial.size());
  for (const DimSlice& s : schedule->spatial) {
    per_dim.push_back(SpatialCandidates(smg, s.dim, options.max_block, options.min_block));
  }

  std::vector<std::int64_t> temporal_steps;
  if (include_temporal && schedule->has_temporal) {
    temporal_steps = TemporalCandidates(smg, schedule->temporal.dim, options.max_block);
  } else {
    temporal_steps = {0};  // sentinel: temporal disabled
  }

  // Footprints of kept configs: needed for the screening caller and for the
  // dominance filter. Kept locally when the caller passed none.
  std::vector<ConfigFootprint> local_footprints;
  std::vector<ConfigFootprint>* kept_footprints = footprints != nullptr ? footprints : &local_footprints;
  const size_t footprint_base = kept_footprints->size();
  const bool want_footprints = footprints != nullptr || options.prune_dominated;

  std::vector<ScheduleConfig> feasible;
  std::int64_t pruned = 0;
  bool capped = false;
  std::vector<size_t> index(per_dim.size(), 0);
  bool done = per_dim.empty() && temporal_steps.empty();
  while (!done && !capped) {
    for (std::int64_t step : temporal_steps) {
      ScheduleConfig config;
      config.spatial_blocks.reserve(per_dim.size());
      for (size_t i = 0; i < per_dim.size(); ++i) {
        config.spatial_blocks.push_back(per_dim[i][index[i]]);
      }
      config.use_temporal = step > 0;
      config.temporal_step = step;

      schedule->ApplyConfig(config);
      PlanMemory(schedule, rc);
      if (!CheckResources(*schedule, rc)) {
        continue;
      }
      if (want_footprints) {
        ConfigFootprint fp = ComputeConfigFootprint(*schedule);
        if (options.prune_dominated && IsDominated(fp, *kept_footprints, footprint_base)) {
          ++pruned;
          continue;
        }
        kept_footprints->push_back(fp);
      }
      feasible.push_back(std::move(config));
      if (static_cast<int>(feasible.size()) >= options.max_configs) {
        capped = true;
        break;
      }
    }
    // Advance the cartesian iterator.
    done = true;
    for (size_t i = 0; i < index.size(); ++i) {
      if (++index[i] < per_dim[i].size()) {
        done = false;
        break;
      }
      index[i] = 0;
    }
    if (per_dim.empty()) {
      break;
    }
  }
  span.Arg("configs", static_cast<std::int64_t>(feasible.size()));
  if (capped) {
    span.Arg("capped", 1);
  }
  if (pruned > 0) {
    span.Arg("pruned", pruned);
  }
  SF_COUNTER_ADD("search.configs_enumerated", static_cast<std::int64_t>(feasible.size()));
  SF_COUNTER_ADD("search.configs_pruned", pruned);
  SF_HISTOGRAM_OBSERVE("search.configs_per_kernel", static_cast<double>(feasible.size()));
  return feasible;
}

}  // namespace spacefusion
