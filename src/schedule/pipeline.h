// The slicing <-> partitioning state machine of the system overview
// (paper Fig. 9): resource-aware slicing on each SMG; on failure, partition
// and resubmit the parts, until every SMG has a schedule and search space.
//
// Sec. 5.3: when a partition round reports an alternative cut (a non-A2O
// sub-SMG that can move to the latter graph), a second complete program
// candidate is produced; the tuner picks between candidates.
#ifndef SPACEFUSION_SRC_SCHEDULE_PIPELINE_H_
#define SPACEFUSION_SRC_SCHEDULE_PIPELINE_H_

#include "src/schedule/partitioner.h"

namespace spacefusion {

// One fully scheduled program candidate: the kernels (with search spaces)
// that together compute the original subprogram.
struct ProgramCandidate {
  std::vector<SlicingResult> kernels;
  int partition_rounds = 0;
};

struct PipelineResult {
  std::vector<ProgramCandidate> candidates;  // >= 1 on success
};

StatusOr<PipelineResult> RunSlicingPipeline(const Graph& graph, const ResourceConfig& rc,
                                            const SlicingOptions& options);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SCHEDULE_PIPELINE_H_
