// Schedule search-space generation (paper Sec. 5.1, last paragraph).
//
// Block sizes are enumerated exponentially (powers of two) per sliced dim
// and intersected with the shared-memory / register bounds, which keeps the
// search space small enough to exhaustively measure (Table 4).
#ifndef SPACEFUSION_SRC_SCHEDULE_SEARCH_SPACE_H_
#define SPACEFUSION_SRC_SCHEDULE_SEARCH_SPACE_H_

#include <vector>

#include "src/schedule/memory_planner.h"
#include "src/schedule/schedule_ir.h"

namespace spacefusion {

// Default for SearchOptions::prune_dominated, from SPACEFUSION_PRUNE_DOMINATED
// (unset/0 => false). Cached after the first read.
bool PruneDominatedFromEnv();

struct SearchOptions {
  // Largest tile extent enumerated along any dim.
  std::int64_t max_block = 256;
  // Smallest tile extent for non-free dims (tile-graph compilers align to
  // hardware MMA tiles and cannot shrink below 16).
  std::int64_t min_block = 1;
  // Hard cap on emitted configs (exhaustive tuning stays cheap).
  int max_configs = 256;
  // Skip configs whose footprint is strictly dominated in (smem footprint,
  // projected read traffic, parallelism) by an already-kept feasible config.
  // Off by default: pruning shrinks the enumerated space itself, which the
  // Table 4/5 sweep sizes and the full-mode verifier observe.
  bool prune_dominated = PruneDominatedFromEnv();
};

// Enumerates resource-feasible block-size configurations for the schedule.
// `include_temporal` additionally sweeps the temporal step when the
// schedule has a temporal dim. The schedule's block sizes are left at the
// last probed config; callers re-apply the chosen config.
//
// When `footprints` is non-null a ConfigFootprint is appended for every
// returned config (same order), captured while the config was applied — the
// input to the tuner's screening stage.
std::vector<ScheduleConfig> EnumerateConfigs(SmgSchedule* schedule, const ResourceConfig& rc,
                                             bool include_temporal,
                                             const SearchOptions& options = SearchOptions(),
                                             std::vector<ConfigFootprint>* footprints = nullptr);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SCHEDULE_SEARCH_SPACE_H_
