#include "src/schedule/lowering.h"

#include <algorithm>
#include <cmath>

#include "src/support/logging.h"
#include "src/support/math_util.h"

namespace spacefusion {

double MatmulTileEfficiency(std::int64_t tile_m, std::int64_t tile_n) {
  std::int64_t t = std::min(tile_m, tile_n);
  if (t >= 64) {
    return 0.80;
  }
  if (t >= 32) {
    return 0.65;
  }
  if (t >= 16) {
    return 0.50;
  }
  if (t >= 8) {
    return 0.35;
  }
  return 0.22;
}

namespace {

// Per-op total FLOPs over the whole problem.
std::int64_t FullOpFlops(const Graph& graph, const Op& op) {
  const Shape& out = graph.tensor(op.output).shape;
  std::int64_t contraction = 1;
  if (op.kind == OpKind::kMatMul) {
    const Shape& a = graph.tensor(op.inputs[0]).shape;
    contraction = op.attrs.transpose_a ? a.dim(a.rank() - 2) : a.dim(a.rank() - 1);
  } else if (op.kind == OpKind::kReduce) {
    const Shape& in = graph.tensor(op.inputs[0]).shape;
    contraction = in.dim(in.rank() - 1);
  }
  return OpFlops(op, out.volume(), contraction);
}

// Tensors downstream of any running reduction of the temporal plan.
std::vector<bool> DownstreamOfRunningReductions(const SmgSchedule& sched) {
  const Graph& graph = sched.graph;
  std::vector<bool> downstream(graph.tensors().size(), false);
  if (!sched.has_temporal) {
    return downstream;
  }
  for (const ReductionAggregation& agg : sched.plan.aggregations) {
    downstream[static_cast<size_t>(graph.op(agg.op).output)] = true;
  }
  for (const Op& op : graph.ops()) {
    for (TensorId in : op.inputs) {
      if (downstream[static_cast<size_t>(in)]) {
        downstream[static_cast<size_t>(op.output)] = true;
        break;
      }
    }
  }
  return downstream;
}

}  // namespace

KernelSpec LowerSchedule(const SmgSchedule& schedule, AddressMap* addresses) {
  const Graph& graph = schedule.graph;
  const Smg& smg = schedule.built.smg;

  KernelSpec spec;
  spec.name = graph.name();
  spec.grid = schedule.NumBlocks();
  spec.smem_per_block = std::max<std::int64_t>(schedule.memory.smem_bytes, 1024);
  spec.regs_per_block_bytes = std::max<std::int64_t>(schedule.memory.reg_bytes, 16 * 1024);

  const std::int64_t steps = schedule.NumIntraBlocks();
  std::vector<bool> downstream = DownstreamOfRunningReductions(schedule);

  // ---- Arithmetic work ----------------------------------------------------
  std::int64_t flops = 0;
  std::int64_t biggest_tile = 0;
  double min_eff = 1.0;
  bool has_matmul = false;
  for (const Op& op : graph.ops()) {
    std::int64_t base = FullOpFlops(graph, op);
    SpaceId iter = schedule.built.op_space[static_cast<size_t>(op.id)];
    bool in_temporal = schedule.has_temporal && smg.space(iter).HasDim(schedule.temporal.dim);
    bool recomputed = false;
    if (schedule.has_temporal && !in_temporal) {
      // Ops outside the temporal dim that consume running values are
      // re-evaluated every intra-block (epilogue recomputation).
      for (TensorId in : op.inputs) {
        if (downstream[static_cast<size_t>(in)]) {
          recomputed = true;
          break;
        }
      }
    }
    flops += recomputed ? base * steps : base;

    std::int64_t tile = 1;
    for (DimId d : smg.space(iter).dims) {
      tile *= schedule.TileExtent(d);
    }
    biggest_tile = std::max(biggest_tile, tile);

    if (op.kind == OpKind::kMatMul) {
      has_matmul = true;
      const Shape& out = graph.tensor(op.output).shape;
      // The matmul output tile's M/N extents under the schedule.
      std::int64_t m_full = out.dim(out.rank() - 2);
      std::int64_t n_full = out.dim(out.rank() - 1);
      std::int64_t tile_m = m_full;
      std::int64_t tile_n = n_full;
      // Tile extents of the output space's two largest dims approximate the
      // M/N tile shape the tensor-core pipeline sees.
      SpaceId out_space = schedule.built.tensor_space[static_cast<size_t>(op.output)];
      std::vector<std::int64_t> tiles;
      for (DimId d : smg.space(out_space).dims) {
        tiles.push_back(schedule.TileExtent(d));
      }
      if (tiles.size() >= 2) {
        std::sort(tiles.begin(), tiles.end());
        tile_m = tiles[tiles.size() - 2];
        tile_n = tiles[tiles.size() - 1];
      } else if (tiles.size() == 1) {
        tile_m = tiles[0];
        tile_n = tiles[0];
      }
      min_eff = std::min(min_eff, MatmulTileEfficiency(tile_m, tile_n));
    }
  }
  // Update-function application cost: per intra-block, per aggregation.
  if (schedule.has_temporal) {
    for (const ReductionAggregation& agg : schedule.plan.aggregations) {
      if (!agg.NeedsUpdate()) {
        continue;
      }
      SpaceId sink = schedule.built.tensor_space[static_cast<size_t>(graph.op(agg.op).output)];
      std::int64_t tile = 1;
      for (DimId d : smg.space(sink).dims) {
        tile *= schedule.TileExtent(d);
      }
      flops += tile * static_cast<std::int64_t>(agg.update.size()) * 4 * steps * spec.grid;
    }
  }
  spec.flops = flops;
  spec.compute_efficiency = has_matmul ? min_eff : 0.5;
  spec.bandwidth_efficiency = 0.92;  // auto-tuned vectorized accesses

  spec.threads_per_block = biggest_tile >= 16384 ? 256 : 128;

  // ---- Global-memory traffic ----------------------------------------------
  for (const TensorInfo& t : graph.tensors()) {
    if (t.kind == TensorKind::kConstant) {
      continue;
    }
    SpaceId sid = schedule.built.tensor_space[static_cast<size_t>(t.id)];
    const Space& space = smg.space(sid);

    if (t.kind == TensorKind::kInput || t.kind == TensorKind::kWeight) {
      TensorTraffic read;
      read.tensor = t.name;
      read.unique_bytes = t.bytes();
      std::int64_t per_block = space.elem_bytes;
      for (DimId d : space.dims) {
        bool is_spatial = false;
        for (const DimSlice& s : schedule.spatial) {
          if (s.dim == d) {
            per_block *= std::min(s.block, smg.dim(d).extent);
            is_spatial = true;
            break;
          }
        }
        if (!is_spatial) {
          per_block *= smg.dim(d).extent;  // streamed across intra-blocks
        }
      }
      read.per_block_bytes = per_block;
      // A tensor missing some spatial dim is re-read by every block along it.
      bool shared = false;
      for (const DimSlice& s : schedule.spatial) {
        if (!space.HasDim(s.dim) && smg.dim(s.dim).extent > s.block) {
          shared = true;
        }
      }
      read.shared_across_blocks = shared;
      MemLevel level = schedule.memory.tensor_level[static_cast<size_t>(t.id)];
      read.touches_per_byte =
          level == MemLevel::kGlobalStreamed
              ? static_cast<double>(std::max<size_t>(1, graph.consumers(t.id).size()))
              : 1.0;
      read.base_address = addresses->Assign(t.name, read.unique_bytes);
      spec.reads.push_back(std::move(read));
    } else if (t.kind == TensorKind::kOutput) {
      TensorTraffic write;
      write.tensor = t.name;
      write.unique_bytes = t.bytes();
      write.per_block_bytes = std::max<std::int64_t>(1, t.bytes() / std::max<std::int64_t>(1, spec.grid));
      write.base_address = addresses->Assign(t.name, write.unique_bytes);
      spec.writes.push_back(std::move(write));
    }
    // Intermediates never reach global memory in a fused kernel.
  }
  return spec;
}

ScreenContext MakeScreenContext(const SmgSchedule& schedule) {
  const Graph& graph = schedule.graph;
  ScreenContext ctx;
  std::vector<bool> downstream = DownstreamOfRunningReductions(schedule);
  for (const Op& op : graph.ops()) {
    std::int64_t base = FullOpFlops(graph, op);
    SpaceId iter = schedule.built.op_space[static_cast<size_t>(op.id)];
    bool in_temporal =
        schedule.has_temporal && schedule.built.smg.space(iter).HasDim(schedule.temporal.dim);
    bool recomputed = false;
    if (schedule.has_temporal && !in_temporal) {
      for (TensorId in : op.inputs) {
        if (downstream[static_cast<size_t>(in)]) {
          recomputed = true;
          break;
        }
      }
    }
    if (recomputed) {
      ctx.flops_temporal += base;
    } else {
      ctx.flops_static += base;
    }
  }
  for (const TensorInfo& t : graph.tensors()) {
    if (t.kind == TensorKind::kOutput) {
      ctx.write_bytes += t.bytes();
    }
  }
  return ctx;
}

ConfigFootprint ComputeConfigFootprint(const SmgSchedule& schedule) {
  const Graph& graph = schedule.graph;
  const Smg& smg = schedule.built.smg;

  ConfigFootprint fp;
  fp.grid = schedule.NumBlocks();
  fp.intra_steps = schedule.NumIntraBlocks();
  // Same floors LowerSchedule applies, so occupancy math matches exactly.
  fp.smem_bytes = std::max<std::int64_t>(schedule.memory.smem_bytes, 1024);
  fp.reg_bytes = std::max<std::int64_t>(schedule.memory.reg_bytes, 16 * 1024);

  double min_eff = 1.0;
  bool has_matmul = false;
  for (const Op& op : graph.ops()) {
    SpaceId iter = schedule.built.op_space[static_cast<size_t>(op.id)];
    std::int64_t tile = 1;
    for (DimId d : smg.space(iter).dims) {
      tile *= schedule.TileExtent(d);
    }
    fp.max_tile_elems = std::max(fp.max_tile_elems, tile);

    if (op.kind == OpKind::kMatMul) {
      has_matmul = true;
      const Shape& out = graph.tensor(op.output).shape;
      std::int64_t tile_m = out.dim(out.rank() - 2);
      std::int64_t tile_n = out.dim(out.rank() - 1);
      SpaceId out_space = schedule.built.tensor_space[static_cast<size_t>(op.output)];
      std::vector<std::int64_t> tiles;
      for (DimId d : smg.space(out_space).dims) {
        tiles.push_back(schedule.TileExtent(d));
      }
      if (tiles.size() >= 2) {
        std::sort(tiles.begin(), tiles.end());
        tile_m = tiles[tiles.size() - 2];
        tile_n = tiles[tiles.size() - 1];
      } else if (tiles.size() == 1) {
        tile_m = tiles[0];
        tile_n = tiles[0];
      }
      min_eff = std::min(min_eff, MatmulTileEfficiency(tile_m, tile_n));
    }
  }
  fp.compute_eff = has_matmul ? min_eff : 0.5;

  for (const TensorInfo& t : graph.tensors()) {
    if (t.kind != TensorKind::kInput && t.kind != TensorKind::kWeight) {
      continue;
    }
    SpaceId sid = schedule.built.tensor_space[static_cast<size_t>(t.id)];
    const Space& space = smg.space(sid);
    std::int64_t per_block = space.elem_bytes;
    for (DimId d : space.dims) {
      bool is_spatial = false;
      for (const DimSlice& s : schedule.spatial) {
        if (s.dim == d) {
          per_block *= std::min(s.block, smg.dim(d).extent);
          is_spatial = true;
          break;
        }
      }
      if (!is_spatial) {
        per_block *= smg.dim(d).extent;
      }
    }
    MemLevel level = schedule.memory.tensor_level[static_cast<size_t>(t.id)];
    double touches = level == MemLevel::kGlobalStreamed
                         ? static_cast<double>(std::max<size_t>(1, graph.consumers(t.id).size()))
                         : 1.0;
    double total = static_cast<double>(per_block) * static_cast<double>(fp.grid) *
                   std::max(1.0, touches);
    fp.read_traffic_bytes += static_cast<std::int64_t>(total);
    fp.read_dram_lb_bytes += std::min(t.bytes(), static_cast<std::int64_t>(total));
  }
  return fp;
}

KernelSpec LowerForScreening(const ScreenContext& ctx, const ConfigFootprint& fp) {
  KernelSpec spec;
  spec.grid = fp.grid;
  spec.threads_per_block = fp.max_tile_elems >= 16384 ? 256 : 128;
  spec.smem_per_block = fp.smem_bytes;
  spec.regs_per_block_bytes = fp.reg_bytes;
  spec.flops = ctx.flops_static + ctx.flops_temporal * fp.intra_steps;
  spec.compute_efficiency = fp.compute_eff;
  spec.bandwidth_efficiency = 0.92;  // matches LowerSchedule
  if (fp.read_traffic_bytes > 0) {
    TensorTraffic read;
    // One aggregated operand. per_block is floor-divided so the L2 term stays
    // a lower bound of the exact per-operand sum; unique carries the
    // no-reuse DRAM lower bound computed per operand at enumeration time.
    read.unique_bytes = fp.read_dram_lb_bytes;
    read.per_block_bytes = fp.read_traffic_bytes / std::max<std::int64_t>(1, fp.grid);
    spec.reads.push_back(std::move(read));
  }
  if (ctx.write_bytes > 0) {
    TensorTraffic write;
    write.unique_bytes = ctx.write_bytes;
    write.per_block_bytes =
        std::max<std::int64_t>(1, ctx.write_bytes / std::max<std::int64_t>(1, fp.grid));
    spec.writes.push_back(std::move(write));
  }
  return spec;
}

std::vector<KernelSpec> LowerProgram(const ScheduledProgram& program, AddressMap* addresses) {
  std::vector<KernelSpec> kernels;
  kernels.reserve(program.kernels.size());
  for (const SmgSchedule& sched : program.kernels) {
    kernels.push_back(LowerSchedule(sched, addresses));
  }
  return kernels;
}

}  // namespace spacefusion
