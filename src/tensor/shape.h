// Dense row-major tensor shapes.
#ifndef SPACEFUSION_SRC_TENSOR_SHAPE_H_
#define SPACEFUSION_SRC_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace spacefusion {

// An immutable list of dimension extents. Rank-0 shapes describe scalars.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  std::int64_t dim(int i) const { return dims_[static_cast<size_t>(i)]; }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  // Total element count (1 for scalars).
  std::int64_t volume() const;

  // Row-major strides; stride of the last dim is 1.
  std::vector<std::int64_t> strides() const;

  // Flat offset of a multi-index (must have length == rank()).
  std::int64_t FlatIndex(const std::vector<std::int64_t>& index) const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return dims_ != other.dims_; }

  // "[2, 3, 4]"
  std::string ToString() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_TENSOR_SHAPE_H_
