#include "src/tensor/shape.h"

#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

std::int64_t Shape::volume() const {
  std::int64_t v = 1;
  for (std::int64_t d : dims_) {
    v *= d;
  }
  return v;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size(), 1);
  for (int i = rank() - 2; i >= 0; --i) {
    s[static_cast<size_t>(i)] = s[static_cast<size_t>(i + 1)] * dims_[static_cast<size_t>(i + 1)];
  }
  return s;
}

std::int64_t Shape::FlatIndex(const std::vector<std::int64_t>& index) const {
  SF_CHECK_EQ(static_cast<int>(index.size()), rank());
  std::int64_t flat = 0;
  std::int64_t stride = 1;
  for (int i = rank() - 1; i >= 0; --i) {
    SF_CHECK_GE(index[static_cast<size_t>(i)], 0);
    SF_CHECK_LT(index[static_cast<size_t>(i)], dims_[static_cast<size_t>(i)]);
    flat += index[static_cast<size_t>(i)] * stride;
    stride *= dims_[static_cast<size_t>(i)];
  }
  return flat;
}

std::string Shape::ToString() const { return StrCat("[", StrJoin(dims_, ", "), "]"); }

}  // namespace spacefusion
