// Element types. All host computation is done in float (F32 accumulate), but
// the declared dtype drives byte accounting in the memory/cache simulator —
// the paper evaluates everything in FP16.
#ifndef SPACEFUSION_SRC_TENSOR_DTYPE_H_
#define SPACEFUSION_SRC_TENSOR_DTYPE_H_

#include <cstdint>
#include <string>

namespace spacefusion {

enum class DType { kF16, kF32, kI32 };

inline std::int64_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kF16:
      return 2;
    case DType::kF32:
      return 4;
    case DType::kI32:
      return 4;
  }
  return 4;
}

inline const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF16:
      return "f16";
    case DType::kF32:
      return "f32";
    case DType::kI32:
      return "i32";
  }
  return "?";
}

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_TENSOR_DTYPE_H_
