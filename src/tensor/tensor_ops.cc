#include "src/tensor/tensor_ops.h"

#include <cmath>
#include <limits>

#include "src/support/logging.h"

namespace spacefusion {

const char* UnaryKindName(UnaryKind kind) {
  switch (kind) {
    case UnaryKind::kExp:
      return "exp";
    case UnaryKind::kRelu:
      return "relu";
    case UnaryKind::kGelu:
      return "gelu";
    case UnaryKind::kSigmoid:
      return "sigmoid";
    case UnaryKind::kTanh:
      return "tanh";
    case UnaryKind::kSqrt:
      return "sqrt";
    case UnaryKind::kRsqrt:
      return "rsqrt";
    case UnaryKind::kNeg:
      return "neg";
    case UnaryKind::kSquare:
      return "square";
    case UnaryKind::kRecip:
      return "recip";
  }
  return "?";
}

const char* BinaryKindName(BinaryKind kind) {
  switch (kind) {
    case BinaryKind::kAdd:
      return "add";
    case BinaryKind::kSub:
      return "sub";
    case BinaryKind::kMul:
      return "mul";
    case BinaryKind::kDiv:
      return "div";
    case BinaryKind::kMax:
      return "max";
  }
  return "?";
}

const char* ReduceKindName(ReduceKind kind) {
  switch (kind) {
    case ReduceKind::kMax:
      return "reduce_max";
    case ReduceKind::kSum:
      return "reduce_sum";
    case ReduceKind::kMean:
      return "reduce_mean";
  }
  return "?";
}

float EvalUnary(UnaryKind kind, float x) {
  switch (kind) {
    case UnaryKind::kExp:
      return std::exp(x);
    case UnaryKind::kRelu:
      return x > 0.0f ? x : 0.0f;
    case UnaryKind::kGelu: {
      // tanh approximation, as used by BERT-family models.
      const float kC = 0.7978845608f;  // sqrt(2/pi)
      return 0.5f * x * (1.0f + std::tanh(kC * (x + 0.044715f * x * x * x)));
    }
    case UnaryKind::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case UnaryKind::kTanh:
      return std::tanh(x);
    case UnaryKind::kSqrt:
      return std::sqrt(x);
    case UnaryKind::kRsqrt:
      return 1.0f / std::sqrt(x);
    case UnaryKind::kNeg:
      return -x;
    case UnaryKind::kSquare:
      return x * x;
    case UnaryKind::kRecip:
      return 1.0f / x;
  }
  return x;
}

float EvalBinary(BinaryKind kind, float a, float b) {
  switch (kind) {
    case BinaryKind::kAdd:
      return a + b;
    case BinaryKind::kSub:
      return a - b;
    case BinaryKind::kMul:
      return a * b;
    case BinaryKind::kDiv:
      return a / b;
    case BinaryKind::kMax:
      return a > b ? a : b;
  }
  return a;
}

Shape BroadcastShape(const Shape& a, const Shape& b) {
  int rank = std::max(a.rank(), b.rank());
  std::vector<std::int64_t> dims(static_cast<size_t>(rank), 1);
  for (int i = 0; i < rank; ++i) {
    std::int64_t da = i < a.rank() ? a.dim(a.rank() - 1 - i) : 1;
    std::int64_t db = i < b.rank() ? b.dim(b.rank() - 1 - i) : 1;
    SF_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast: " << a.ToString() << " vs " << b.ToString();
    dims[static_cast<size_t>(rank - 1 - i)] = std::max(da, db);
  }
  return Shape(dims);
}

namespace {

// Maps a flat index in `out_shape` to the flat index of the broadcast operand.
std::int64_t BroadcastSourceIndex(const Shape& out_shape, std::int64_t out_flat,
                                  const Shape& src_shape) {
  std::int64_t src_flat = 0;
  std::int64_t src_stride = 1;
  std::int64_t rem = out_flat;
  for (int i = out_shape.rank() - 1; i >= 0; --i) {
    std::int64_t coord = rem % out_shape.dim(i);
    rem /= out_shape.dim(i);
    int src_axis = i - (out_shape.rank() - src_shape.rank());
    if (src_axis >= 0) {
      std::int64_t extent = src_shape.dim(src_axis);
      std::int64_t src_coord = extent == 1 ? 0 : coord;
      src_flat += src_coord * src_stride;
      src_stride *= extent;
    }
  }
  return src_flat;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b, bool transpose_a, bool transpose_b) {
  SF_CHECK_GE(a.shape().rank(), 2);
  SF_CHECK_GE(b.shape().rank(), 2);
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  std::int64_t m = transpose_a ? sa.dim(sa.rank() - 1) : sa.dim(sa.rank() - 2);
  std::int64_t k = transpose_a ? sa.dim(sa.rank() - 2) : sa.dim(sa.rank() - 1);
  std::int64_t kb = transpose_b ? sb.dim(sb.rank() - 1) : sb.dim(sb.rank() - 2);
  std::int64_t n = transpose_b ? sb.dim(sb.rank() - 2) : sb.dim(sb.rank() - 1);
  SF_CHECK_EQ(k, kb) << "matmul contraction mismatch";

  // Broadcast batch dims.
  Shape batch_a(std::vector<std::int64_t>(sa.dims().begin(), sa.dims().end() - 2));
  Shape batch_b(std::vector<std::int64_t>(sb.dims().begin(), sb.dims().end() - 2));
  Shape batch = BroadcastShape(batch_a, batch_b);

  std::vector<std::int64_t> out_dims = batch.dims();
  out_dims.push_back(m);
  out_dims.push_back(n);
  Tensor out(Shape(out_dims), a.dtype());

  std::int64_t batch_count = batch.volume();
  std::int64_t a_mat = m * k;
  std::int64_t b_mat = k * n;
  for (std::int64_t batch_i = 0; batch_i < batch_count; ++batch_i) {
    std::int64_t a_base = BroadcastSourceIndex(batch, batch_i, batch_a) * a_mat;
    std::int64_t b_base = BroadcastSourceIndex(batch, batch_i, batch_b) * b_mat;
    std::int64_t o_base = batch_i * m * n;
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          float av = transpose_a ? a.at(a_base + kk * m + i) : a.at(a_base + i * k + kk);
          float bv = transpose_b ? b.at(b_base + j * k + kk) : b.at(b_base + kk * n + j);
          acc += av * bv;
        }
        out.at(o_base + i * n + j) = acc;
      }
    }
  }
  return out;
}

Tensor Unary(UnaryKind kind, const Tensor& x) {
  Tensor out(x.shape(), x.dtype());
  for (std::int64_t i = 0; i < x.volume(); ++i) {
    out.at(i) = EvalUnary(kind, x.at(i));
  }
  return out;
}

Tensor Binary(BinaryKind kind, const Tensor& a, const Tensor& b) {
  Shape out_shape = BroadcastShape(a.shape(), b.shape());
  Tensor out(out_shape, a.dtype());
  for (std::int64_t i = 0; i < out.volume(); ++i) {
    float av = a.at(BroadcastSourceIndex(out_shape, i, a.shape()));
    float bv = b.at(BroadcastSourceIndex(out_shape, i, b.shape()));
    out.at(i) = EvalBinary(kind, av, bv);
  }
  return out;
}

Tensor Reduce(ReduceKind kind, const Tensor& x) {
  SF_CHECK_GE(x.shape().rank(), 1);
  std::int64_t last = x.shape().dim(x.shape().rank() - 1);
  std::vector<std::int64_t> out_dims = x.shape().dims();
  out_dims.back() = 1;
  Tensor out(Shape(out_dims), x.dtype());
  std::int64_t rows = x.volume() / last;
  for (std::int64_t r = 0; r < rows; ++r) {
    float acc = kind == ReduceKind::kMax ? -std::numeric_limits<float>::infinity() : 0.0f;
    for (std::int64_t c = 0; c < last; ++c) {
      float v = x.at(r * last + c);
      if (kind == ReduceKind::kMax) {
        acc = std::max(acc, v);
      } else {
        acc += v;
      }
    }
    if (kind == ReduceKind::kMean) {
      acc /= static_cast<float>(last);
    }
    out.at(r) = acc;
  }
  return out;
}

Tensor Softmax(const Tensor& x) {
  Tensor row_max = Reduce(ReduceKind::kMax, x);
  Tensor shifted = Binary(BinaryKind::kSub, x, row_max);
  Tensor exps = Unary(UnaryKind::kExp, shifted);
  Tensor row_sum = Reduce(ReduceKind::kSum, exps);
  return Binary(BinaryKind::kDiv, exps, row_sum);
}

Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps) {
  Tensor mean = Reduce(ReduceKind::kMean, x);
  Tensor centered = Binary(BinaryKind::kSub, x, mean);
  Tensor var = Reduce(ReduceKind::kMean, Unary(UnaryKind::kSquare, centered));
  Tensor denom = Unary(UnaryKind::kSqrt, Binary(BinaryKind::kAdd, var, Tensor::Full({1}, eps)));
  Tensor normed = Binary(BinaryKind::kDiv, centered, denom);
  if (gamma.defined()) {
    normed = Binary(BinaryKind::kMul, normed, gamma);
  }
  if (beta.defined()) {
    normed = Binary(BinaryKind::kAdd, normed, beta);
  }
  return normed;
}

Tensor Scale(const Tensor& x, float scalar) {
  return Binary(BinaryKind::kMul, x, Tensor::Full({1}, scalar));
}

Tensor Transpose(const Tensor& x) {
  SF_CHECK_GE(x.shape().rank(), 2);
  std::vector<std::int64_t> out_dims = x.shape().dims();
  std::swap(out_dims[out_dims.size() - 1], out_dims[out_dims.size() - 2]);
  Tensor out(Shape(out_dims), x.dtype());
  std::int64_t rows = x.shape().dim(x.shape().rank() - 2);
  std::int64_t cols = x.shape().dim(x.shape().rank() - 1);
  std::int64_t batch = x.volume() / (rows * cols);
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t i = 0; i < rows; ++i) {
      for (std::int64_t j = 0; j < cols; ++j) {
        out.at(b * rows * cols + j * rows + i) = x.at(b * rows * cols + i * cols + j);
      }
    }
  }
  return out;
}

}  // namespace spacefusion
