#include "src/tensor/tensor.h"

#include <cmath>

#include "src/support/logging.h"

namespace spacefusion {

namespace {
// SplitMix64: tiny deterministic generator, independent of libstdc++ version.
std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Tensor::Tensor(Shape shape, DType dtype)
    : shape_(std::move(shape)),
      dtype_(dtype),
      data_(std::make_shared<std::vector<float>>(static_cast<size_t>(shape_.volume()), 0.0f)) {}

Tensor Tensor::Zeros(Shape shape, DType dtype) { return Tensor(std::move(shape), dtype); }

Tensor Tensor::Full(Shape shape, float value, DType dtype) {
  Tensor t(std::move(shape), dtype);
  for (auto& v : *t.data_) {
    v = value;
  }
  return t;
}

Tensor Tensor::Random(Shape shape, std::uint64_t seed, DType dtype) {
  Tensor t(std::move(shape), dtype);
  std::uint64_t state = seed * 0x9E3779B97F4A7C15ULL + 1;
  for (auto& v : *t.data_) {
    std::uint64_t bits = SplitMix64(state);
    v = static_cast<float>(static_cast<double>(bits >> 11) / static_cast<double>(1ULL << 53)) *
            2.0f -
        1.0f;
  }
  return t;
}

Tensor Tensor::Clone() const {
  Tensor out;
  out.shape_ = shape_;
  out.dtype_ = dtype_;
  out.data_ = std::make_shared<std::vector<float>>(*data_);
  return out;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  SF_CHECK(a.shape() == b.shape()) << a.shape().ToString() << " vs " << b.shape().ToString();
  float max_diff = 0.0f;
  for (std::int64_t i = 0; i < a.volume(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.at(i) - b.at(i)));
  }
  return max_diff;
}

float MaxRelDiff(const Tensor& a, const Tensor& b, float eps) {
  SF_CHECK(a.shape() == b.shape()) << a.shape().ToString() << " vs " << b.shape().ToString();
  float max_diff = 0.0f;
  for (std::int64_t i = 0; i < a.volume(); ++i) {
    float diff = std::fabs(a.at(i) - b.at(i)) / (std::fabs(b.at(i)) + eps);
    max_diff = std::max(max_diff, diff);
  }
  return max_diff;
}

}  // namespace spacefusion
