// Host tensors. Values are stored as float regardless of declared dtype; the
// dtype only affects how many bytes the simulator charges per element.
#ifndef SPACEFUSION_SRC_TENSOR_TENSOR_H_
#define SPACEFUSION_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/dtype.h"
#include "src/tensor/shape.h"

namespace spacefusion {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, DType dtype = DType::kF16);

  static Tensor Zeros(Shape shape, DType dtype = DType::kF16);
  static Tensor Full(Shape shape, float value, DType dtype = DType::kF16);
  // Deterministic pseudo-random uniform values in [-1, 1).
  static Tensor Random(Shape shape, std::uint64_t seed, DType dtype = DType::kF16);

  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  std::int64_t volume() const { return shape_.volume(); }
  std::int64_t bytes() const { return volume() * DTypeSize(dtype_); }

  float* data() { return data_->data(); }
  const float* data() const { return data_->data(); }

  float at(std::int64_t flat) const { return (*data_)[static_cast<size_t>(flat)]; }
  float& at(std::int64_t flat) { return (*data_)[static_cast<size_t>(flat)]; }

  float at(const std::vector<std::int64_t>& index) const {
    return (*data_)[static_cast<size_t>(shape_.FlatIndex(index))];
  }
  float& at(const std::vector<std::int64_t>& index) {
    return (*data_)[static_cast<size_t>(shape_.FlatIndex(index))];
  }

  bool defined() const { return data_ != nullptr; }

  // Deep copy (buffers are otherwise shared between Tensor copies).
  Tensor Clone() const;

 private:
  Shape shape_;
  DType dtype_ = DType::kF16;
  std::shared_ptr<std::vector<float>> data_;
};

// Largest absolute element-wise difference between two same-shaped tensors.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

// max |a-b| / (|b| + eps): scale-aware comparison for fused-vs-reference.
float MaxRelDiff(const Tensor& a, const Tensor& b, float eps = 1e-5f);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_TENSOR_TENSOR_H_
