// Reference (unfused, straightforward) implementations of every tensor
// operator used by SpaceFusion graphs. These define numerical ground truth
// for the fused-schedule executor.
//
// Conventions:
//  * matmul treats all but the last two dims as batch dims (right-aligned,
//    broadcastable);
//  * reductions operate on the LAST axis and keep it with extent 1, so that
//    the reduced result broadcasts back against its source;
//  * binary ops use numpy-style right-aligned broadcasting.
#ifndef SPACEFUSION_SRC_TENSOR_TENSOR_OPS_H_
#define SPACEFUSION_SRC_TENSOR_TENSOR_OPS_H_

#include "src/tensor/tensor.h"

namespace spacefusion {

enum class UnaryKind { kExp, kRelu, kGelu, kSigmoid, kTanh, kSqrt, kRsqrt, kNeg, kSquare, kRecip };
enum class BinaryKind { kAdd, kSub, kMul, kDiv, kMax };
enum class ReduceKind { kMax, kSum, kMean };

const char* UnaryKindName(UnaryKind kind);
const char* BinaryKindName(BinaryKind kind);
const char* ReduceKindName(ReduceKind kind);

// Scalar evaluation hooks (shared with the fused executor).
float EvalUnary(UnaryKind kind, float x);
float EvalBinary(BinaryKind kind, float a, float b);

// C[..., M, N] = A[..., M, K] @ B[..., K, N]; transpose flags swap the last
// two dims of the corresponding operand before the contraction.
Tensor MatMul(const Tensor& a, const Tensor& b, bool transpose_a = false,
              bool transpose_b = false);

Tensor Unary(UnaryKind kind, const Tensor& x);

// Numpy-style broadcasting binary op.
Tensor Binary(BinaryKind kind, const Tensor& a, const Tensor& b);

// Reduce the last axis, keeping it with extent 1.
Tensor Reduce(ReduceKind kind, const Tensor& x);

// Softmax over the last axis (numerically stable: max-subtracted).
Tensor Softmax(const Tensor& x);

// LayerNorm over the last axis: (x - mean) / sqrt(var + eps) * gamma + beta.
// gamma/beta have shape [last_dim]; pass undefined tensors to skip them.
Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps = 1e-5f);

// x * scalar.
Tensor Scale(const Tensor& x, float scalar);

// Swap the last two axes.
Tensor Transpose(const Tensor& x);

// Shape of the result of broadcasting a against b (empty optional semantics
// are avoided: dies on incompatible shapes).
Shape BroadcastShape(const Shape& a, const Shape& b);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_TENSOR_TENSOR_OPS_H_
